package crashresist

// Property harness for the generated target universe (-scale, DESIGN.md
// §12). Generated corpora have no golden files; correctness is instead a
// set of properties checked against the generators' own declarations:
//
//   - worker invariance: normalized reports are byte-identical at 1, 4
//     and 8 workers (and across repeated runs);
//   - conservation: every generated target appears exactly once in the
//     report, in exactly the disposition its generator declared — every
//     DLL's Tables II/III row equals its GenDLLSpec, every on-path site
//     yields exactly one candidate, every server/syscall cell matches its
//     GenServerProfile;
//   - provenance completeness: one evidence chain per candidate/finding;
//   - cache equivalence: off, cold and warm runs produce byte-identical
//     reports, with hit counters > 0 on the warm run;
//   - chaos determinism: a fixed chaos seed degrades identically at
//     every worker count.
//
// The default `go test` run uses a trimmed generated population so tier-1
// stays fast. `make scale` sets CRASHRESIST_SCALE=large for the full
// ≥10×-paper corpus (1,870 generated DLLs on top of the 187 hand-built
// ones, a 60-server generated fleet); CRASHRESIST_SCALE_N overrides the
// generated DLL count directly.

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"crashresist/internal/targets"
)

// scaleFull selects the full ≥10× generated corpus (`make scale`).
var scaleFull = os.Getenv("CRASHRESIST_SCALE") == "large"

// scaleDLLCount returns the generated-DLL population size for this run.
func scaleDLLCount(t testing.TB) int {
	if s := os.Getenv("CRASHRESIST_SCALE_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CRASHRESIST_SCALE_N %q", s)
		}
		return n
	}
	if scaleFull {
		return targets.GenDLLsLarge
	}
	return 96
}

// scaleServerCount sizes the generated server fleet relative to the DLL
// population, between the small and large fleet sizes.
func scaleServerCount(nDLLs int) int {
	n := nDLLs / 24
	if n < targets.GenServersSmall {
		n = targets.GenServersSmall
	}
	if n > targets.GenServersLarge {
		n = targets.GenServersLarge
	}
	return n
}

// scaleBrowserParams extends the base corpus with n generated DLLs. At
// full scale with no override this is exactly LargeBrowserParams().
func scaleBrowserParams(n int) BrowserParams {
	p := SmallBrowserParams()
	if scaleFull {
		p = PaperBrowserParams()
	}
	p.Corpus.GenSeed = DefaultGenSeed
	p.Corpus.GenDLLs = n
	return p
}

func scaleCandidateKey(module string, scope int) string {
	return fmt.Sprintf("%s/scope-%d", module, scope)
}

// TestScaleSEHProperties runs the SEH pipeline over the generated-scale
// corpus: worker invariance plus conservation against every GenDLLSpec.
func TestScaleSEHProperties(t *testing.T) {
	n := scaleDLLCount(t)
	params := scaleBrowserParams(n)
	br, err := IE(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Plan.Gen) != n {
		t.Fatalf("plan declares %d generated DLLs, want %d", len(br.Plan.Gen), n)
	}

	var rep *SEHReport
	sweep(t, "seh-gen", func(workers int) (any, error) {
		r, err := AnalyzeBrowserSEH(br, 42, WithWorkers(workers))
		if err == nil && rep == nil {
			rep = r
		}
		return r, err
	})

	// Conservation: every module appears exactly once; every generated
	// module's measured row equals its declared spec.
	rows := make(map[string]ModuleSEH, len(rep.Modules))
	for _, m := range rep.Modules {
		if _, dup := rows[m.Module]; dup {
			t.Errorf("module %s appears twice in the report", m.Module)
		}
		rows[m.Module] = m
	}
	unknown := make(map[string]bool, len(rep.UnknownFilterModules))
	for _, m := range rep.UnknownFilterModules {
		unknown[m] = true
	}
	for _, g := range br.Plan.Gen {
		row, ok := rows[g.Name]
		if !ok {
			t.Errorf("generated module %s missing from the report", g.Name)
			continue
		}
		want := ModuleSEH{
			Module:   g.Name,
			Handlers: g.Handlers, AVHandlers: g.AVHandlers, OnPath: g.OnPath,
			Filters: g.Filters, AVFilters: g.AVFilters,
			UnknownFilters: g.UnknownFilters, CatchAll: g.CatchAll,
		}
		if row != want {
			t.Errorf("module %s measured %+v, generator declared %+v", g.Name, row, want)
		}
		if g.UnknownFilters > 0 && !unknown[g.Name] {
			t.Errorf("module %s has unknown filters but is not flagged for manual vetting", g.Name)
		}
	}

	// Totals = hand-built + generated declarations.
	bh, bf, baf, bah, bp := br.Plan.Totals()
	gh, gf, gaf, gah, gp := br.Plan.GenTotals()
	totals := [][3]int{
		{rep.TotalHandlers, bh + gh, 0},
		{rep.TotalFilters, bf + gf, 1},
		{rep.TotalAVFilters, baf + gaf, 2},
		{rep.TotalAVHandlers, bah + gah, 3},
		{rep.TotalOnPath, bp + gp, 4},
	}
	names := []string{"handlers", "filters", "av_filters", "av_handlers", "on_path"}
	for _, tc := range totals {
		if tc[0] != tc[1] {
			t.Errorf("total %s = %d, want %d", names[tc[2]], tc[0], tc[1])
		}
	}
	if rep.TotalModules != len(br.Plan.Specs)+n {
		t.Errorf("total modules = %d, want %d", rep.TotalModules, len(br.Plan.Specs)+n)
	}

	// Candidate conservation: every planned browse site appears exactly
	// once, nothing else does, and every candidate was actually hit.
	cands := make(map[string]int, len(rep.Candidates))
	for _, c := range rep.Candidates {
		cands[scaleCandidateKey(c.Module, c.Scope)]++
		if c.Hits == 0 {
			t.Errorf("candidate %s/%d reported with zero hits", c.Module, c.Scope)
		}
	}
	if len(rep.Candidates) != len(br.Plan.Sites) {
		t.Errorf("%d candidates, want one per planned site (%d)", len(rep.Candidates), len(br.Plan.Sites))
	}
	for _, s := range br.Plan.Sites {
		if got := cands[scaleCandidateKey(s.Module, s.Scope)]; got != 1 {
			t.Errorf("site %s/%d appears %d times in candidates, want 1", s.Module, s.Scope, got)
		}
	}

	// Trigger conservation: the browse workload distributes TriggerTotal
	// over the sites with a floor of one call each.
	var wantTriggers uint64
	nSites := len(br.Plan.Sites)
	per, rem := params.TriggerTotal/nSites, params.TriggerTotal%nSites
	for i := 0; i < nSites; i++ {
		c := per
		if i < rem {
			c++
		}
		if c <= 0 {
			c = 1
		}
		wantTriggers += uint64(c)
	}
	if rep.TriggerEvents != wantTriggers {
		t.Errorf("trigger events = %d, want %d", rep.TriggerEvents, wantTriggers)
	}

	// Provenance completeness: one chain per candidate, each with the
	// extract → symex → crossref evidence.
	prov := make(map[string]int, len(rep.Provenance))
	for _, p := range rep.Provenance {
		prov[p.Primitive]++
		if len(p.Chain) != 3 {
			t.Errorf("provenance %s has %d steps, want 3", p.Primitive, len(p.Chain))
		}
	}
	for _, c := range rep.Candidates {
		if got := prov[scaleCandidateKey(c.Module, c.Scope)]; got != 1 {
			t.Errorf("candidate %s/%d has %d provenance chains, want 1", c.Module, c.Scope, got)
		}
	}
}

// TestScaleSyscallProperties runs the syscall pipeline over the generated
// server fleet: worker invariance, input-order conservation, declared
// dispositions, and per-finding provenance.
func TestScaleSyscallProperties(t *testing.T) {
	n := scaleServerCount(scaleDLLCount(t))
	servers, err := GenServers(DefaultGenSeed, n)
	if err != nil {
		t.Fatal(err)
	}
	profiles := GenServerProfiles(DefaultGenSeed, n)

	var reports []*SyscallReport
	var base []string
	for _, workers := range []int{1, 4, 8} {
		reps, err := AnalyzeServers(servers, 42, WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(reps) != n {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(reps), n)
		}
		norm := make([]string, n)
		for i, r := range reps {
			norm[i] = normalize(t, r)
		}
		if base == nil {
			base, reports = norm, reps
			continue
		}
		for i := range norm {
			if norm[i] != base[i] {
				t.Errorf("workers=%d: report %d differs from 1-worker run", workers, i)
			}
		}
	}

	for i, rep := range reports {
		p := profiles[i]
		if rep.Server != p.Name {
			t.Errorf("report %d is for %q, want %q (input order)", i, rep.Server, p.Name)
			continue
		}
		check := func(list []string, want SyscallStatus, label string) {
			for _, s := range list {
				if got := rep.Status[s]; got != want {
					t.Errorf("%s: %s classified %v, generator declared %s", p.Name, s, got, label)
				}
			}
		}
		check(p.Usable, StatusUsable, "usable")
		check(p.Invalid, StatusInvalidCandidate, "invalid")
		check(p.Observed, StatusObserved, "observed-only")

		if len(rep.Provenance) != len(rep.Findings) {
			t.Errorf("%s: %d provenance chains for %d findings", p.Name, len(rep.Provenance), len(rep.Findings))
		}
		for _, pr := range rep.Provenance {
			if len(pr.Chain) != 2 {
				t.Errorf("%s: provenance %s has %d steps, want taint+validate", p.Name, pr.Primitive, len(pr.Chain))
			}
		}
	}
}

// TestScaleAPIFunnelProperties runs the API pipeline in the
// generated-scale browser: worker invariance plus funnel monotonicity.
func TestScaleAPIFunnelProperties(t *testing.T) {
	params := scaleBrowserParams(scaleDLLCount(t))
	br, err := IE(params)
	if err != nil {
		t.Fatal(err)
	}
	var rep *APIFunnelReport
	sweep(t, "api-gen", func(workers int) (any, error) {
		r, err := AnalyzeBrowserAPIs(br, 42, WithWorkers(workers))
		if err == nil && rep == nil {
			rep = r
		}
		return r, err
	})
	if rep.Total != params.API.Total {
		t.Errorf("funnel total = %d, want corpus size %d", rep.Total, params.API.Total)
	}
	chain := []int{rep.Total, rep.WithPointer, rep.CrashResistant, rep.OnPath, rep.JSContext, rep.Controllable}
	for i := 1; i < len(chain); i++ {
		if chain[i] > chain[i-1] {
			t.Fatalf("funnel not monotone: %v", chain)
		}
	}
	if len(rep.OnPathAPIs) != rep.OnPath {
		t.Errorf("%d on-path APIs listed, count says %d", len(rep.OnPathAPIs), rep.OnPath)
	}
	if len(rep.JSContextAPIs) != rep.JSContext {
		t.Errorf("%d js-context APIs listed, count says %d", len(rep.JSContextAPIs), rep.JSContext)
	}
}

// TestScaleCacheEquivalence proves cache-off, cold and warm runs are
// byte-identical at generated scale, with misses recorded on the cold run
// and hits on the warm one (the generated corpus keeps a pure-module
// majority, so the SEH pipeline always has persistable entries).
func TestScaleCacheEquivalence(t *testing.T) {
	n := scaleDLLCount(t)
	br, err := IE(scaleBrowserParams(n))
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenAnalysisCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	off, err := AnalyzeBrowserSEH(br, 42)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := AnalyzeBrowserSEH(br, 42, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := AnalyzeBrowserSEH(br, 42, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	want := normalize(t, off)
	if got := normalize(t, cold); got != want {
		t.Error("cold cached run differs from cache-off run")
	}
	if got := normalize(t, warm); got != want {
		t.Error("warm cached run differs from cache-off run")
	}
	if misses := cold.Stats.Counter(CtrCacheMisses); misses == 0 {
		t.Error("cold run recorded no cache misses")
	}
	if hits := warm.Stats.Counter(CtrCacheHits); hits == 0 {
		t.Error("warm run recorded no cache hits")
	}

	// Same equivalence for a generated server through the syscall
	// pipeline's validation cache.
	srv, err := GenServer(DefaultGenSeed, 0)
	if err != nil {
		t.Fatal(err)
	}
	soff, err := AnalyzeServer(srv, 42)
	if err != nil {
		t.Fatal(err)
	}
	scold, err := AnalyzeServer(srv, 42, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	swarm, err := AnalyzeServer(srv, 42, WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	wantS := normalize(t, soff)
	if got := normalize(t, scold); got != wantS {
		t.Error("cold cached server run differs from cache-off run")
	}
	if got := normalize(t, swarm); got != wantS {
		t.Error("warm cached server run differs from cache-off run")
	}
	if hits := swarm.Stats.Counter(CtrCacheHits); hits == 0 {
		t.Error("warm server run recorded no cache hits")
	}
}

// TestScaleChaosDeterminism proves a fixed chaos seed produces the same
// degraded report at every worker count, at generated scale.
func TestScaleChaosDeterminism(t *testing.T) {
	br, err := IE(scaleBrowserParams(scaleDLLCount(t)))
	if err != nil {
		t.Fatal(err)
	}
	sweep(t, "chaos-gen", func(workers int) (any, error) {
		return AnalyzeBrowserSEH(br, 42,
			WithWorkers(workers), WithFaultPlan(DefaultFaultPlan(7)), WithRetry(2))
	})
}
