package crashresist

import (
	"strings"
	"testing"
)

func TestPublicServerWorkflow(t *testing.T) {
	srv, err := Server("nginx")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeServer(srv, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Usable(); len(got) != 1 || got[0] != "recv" {
		t.Errorf("usable = %v", got)
	}
}

func TestPublicBrowserWorkflow(t *testing.T) {
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	funnel, err := AnalyzeBrowserAPIs(br, 12)
	if err != nil {
		t.Fatal(err)
	}
	if funnel.Controllable != 0 {
		t.Errorf("controllable = %d", funnel.Controllable)
	}
	sehRep, err := AnalyzeBrowserSEH(br, 13)
	if err != nil {
		t.Fatal(err)
	}
	pw := PriorWork(sehRep)
	if !pw.IECatchAllFound {
		t.Error("MUTX catch-all not found via public API")
	}
}

func TestPublicOracleWorkflow(t *testing.T) {
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	env, err := br.NewEnv(14)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Start(); err != nil {
		t.Fatal(err)
	}
	hidden, err := PlantHiddenRegion(env.Proc, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewIEOracle(env)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanner(o)
	res, err := s.Probe(hidden)
	if err != nil || res != ProbeMapped {
		t.Errorf("hidden region probe = %v %v", res, err)
	}
	if s.Stats.Crashes != 0 {
		t.Errorf("crashes = %d", s.Stats.Crashes)
	}
}

func TestFormatTableI(t *testing.T) {
	servers, err := Servers()
	if err != nil {
		t.Fatal(err)
	}
	var reports []*SyscallReport
	for _, srv := range servers[:2] { // nginx + cherokee keep the test quick
		rep, err := AnalyzeServer(srv, 15)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	table := FormatTableI(reports)
	for _, want := range []string{"nginx", "cherokee", "recv", "epoll_wait", "⊕", "±"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestFormatTablesIIAndIII(t *testing.T) {
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeBrowserSEH(br, 16)
	if err != nil {
		t.Fatal(err)
	}
	t2 := FormatTableII(rep, NamedDLLs())
	t3 := FormatTableIII(rep, NamedDLLs())
	if !strings.Contains(t2, "jscript9.dll") || !strings.Contains(t3, "ntdll.dll") {
		t.Errorf("tables missing named DLLs:\n%s\n%s", t2, t3)
	}
	if !strings.Contains(t3, "totals:") {
		t.Error("table III missing totals line")
	}
}

func TestFormatFunnel(t *testing.T) {
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeBrowserAPIs(br, 17)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFunnel(rep)
	for _, want := range []string{"crash-resistant", "JS context", "controllable"} {
		if !strings.Contains(out, want) {
			t.Errorf("funnel missing %q:\n%s", want, out)
		}
	}
}

func TestTableISyscalls(t *testing.T) {
	rows := TableISyscalls()
	if len(rows) != 13 {
		t.Errorf("Table I rows = %d, want 13", len(rows))
	}
}
