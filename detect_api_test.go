package crashresist

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestRunIncludeDetect covers the wire surface: a request with
// IncludeDetect gets the run's detectability report embedded in the Result
// (surviving a JSON round trip); one without stays clean.
func TestRunIncludeDetect(t *testing.T) {
	req := Request{Target: "nginx", Seed: 42, Scale: "small", IncludeDetect: true}
	res, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detect == nil {
		t.Fatal("IncludeDetect set but Result.Detect is nil")
	}
	if res.Detect.Schema != DetectSchema {
		t.Errorf("detect schema = %q", res.Detect.Schema)
	}
	if len(res.Detect.Sections) != 1 || res.Detect.Sections[0].Pipeline != "syscall" {
		t.Fatalf("detect sections = %+v", res.Detect.Sections)
	}
	sec := res.Detect.Sections[0]
	if len(sec.Rows) == 0 {
		t.Error("embedded report has no detectability rows")
	}
	if sec.Baseline == nil {
		t.Error("embedded report has no benign baseline")
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Detect == nil || len(back.Detect.Sections) != len(res.Detect.Sections) {
		t.Errorf("detect report lost in round trip: %+v", back.Detect)
	}

	plain, err := Run(context.Background(), Request{Target: "nginx", Seed: 42, Scale: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Detect != nil {
		t.Error("Result.Detect present without IncludeDetect")
	}
}

// TestDetectNeverChangesReport: the same request produces byte-identical
// report JSON with and without the detection engine watching. Run
// wall-clock stats are stripped first — they differ between ANY two runs
// and are already kept out of artifact bytes by design.
func TestDetectNeverChangesReport(t *testing.T) {
	for _, tc := range []struct {
		pipeline, target string
	}{
		{"syscall", "nginx"},
		{"api", "ie"},
		{"seh", "ie"},
	} {
		tc := tc
		t.Run(tc.pipeline+"/"+tc.target, func(t *testing.T) {
			run := func(d *Detect) []byte {
				t.Helper()
				req := Request{Pipeline: tc.pipeline, Target: tc.target, Seed: 42, Scale: "small", Detect: d}
				res, err := Run(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				raw, err := json.Marshal(res.Report())
				if err != nil {
					t.Fatal(err)
				}
				return stripRunStats(t, raw)
			}
			without := run(nil)
			with := run(NewDetect())
			if !bytes.Equal(without, with) {
				t.Error("attaching the detection engine changed the report bytes")
			}
		})
	}
}

// stripRunStats removes every "stats" key from a marshaled report, the
// same normalization the service equivalence tests use.
func stripRunStats(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var walk func(v any)
	walk = func(v any) {
		switch vv := v.(type) {
		case map[string]any:
			delete(vv, "stats")
			for _, child := range vv {
				walk(child)
			}
		case []any:
			for _, child := range vv {
				walk(child)
			}
		}
	}
	walk(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDetectDeterministicWorkersAndCache is the engine's invariance gate:
// for every pipeline the embedded detectability report — rows, baseline,
// live series, and the DetectionEvent sequence — is byte-identical at 1, 4
// and 8 workers and with the analysis cache off, cold, or warm.
func TestDetectDeterministicWorkersAndCache(t *testing.T) {
	for _, tc := range []struct {
		pipeline, target string
	}{
		{"syscall", "nginx"},
		{"api", "ie"},
		{"seh", "ie"},
	} {
		tc := tc
		t.Run(tc.pipeline+"/"+tc.target, func(t *testing.T) {
			detectJSON := func(workers int, cache *AnalysisCache) []byte {
				t.Helper()
				req := Request{
					Pipeline: tc.pipeline, Target: tc.target, Seed: 42, Scale: "small",
					Workers: workers, Cache: cache, IncludeDetect: true,
				}
				res, err := Run(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				raw, err := json.Marshal(res.Detect)
				if err != nil {
					t.Fatal(err)
				}
				return raw
			}

			want := detectJSON(1, nil)
			cache, err := OpenAnalysisCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if got := detectJSON(1, cache); !bytes.Equal(got, want) {
				t.Errorf("cold-cache detect report differs from cache-off:\n%s\nvs\n%s", got, want)
			}
			for _, workers := range []int{1, 4, 8} {
				if got := detectJSON(workers, cache); !bytes.Equal(got, want) {
					t.Errorf("warm-cache detect report (workers=%d) differs from cache-off baseline", workers)
				}
			}
		})
	}
}

// TestSharedDetectAccumulates: one observer across two identical runs holds
// exactly twice each row's probe totals while every derived ratio — fault
// rate, stealth margin, trip ticks — stays identical; n-fold accumulation
// never shifts a verdict.
func TestSharedDetectAccumulates(t *testing.T) {
	one := NewDetect()
	if _, err := Run(context.Background(), Request{Target: "nginx", Seed: 42, Scale: "small", Detect: one}); err != nil {
		t.Fatal(err)
	}
	two := NewDetect()
	for i := 0; i < 2; i++ {
		if _, err := Run(context.Background(), Request{Target: "nginx", Seed: 42, Scale: "small", Detect: two}); err != nil {
			t.Fatal(err)
		}
	}
	s1, s2 := one.Snapshot(), two.Snapshot()
	if len(s1.Sections) == 0 || len(s1.Sections) != len(s2.Sections) {
		t.Fatalf("section counts: one run %d, two runs %d", len(s1.Sections), len(s2.Sections))
	}
	r1, r2 := s1.Sections[0].Rows, s2.Sections[0].Rows
	if len(r1) == 0 || len(r1) != len(r2) {
		t.Fatalf("row counts: one run %d, two runs %d", len(r1), len(r2))
	}
	for i := range r1 {
		a, b := r1[i], r2[i]
		if b.Probes != 2*a.Probes || b.Faults != 2*a.Faults || b.Ticks != 2*a.Ticks {
			t.Errorf("row %s: totals did not double: %+v vs %+v", a.Primitive, a, b)
		}
		if b.FaultRate != a.FaultRate || b.StealthMargin != a.StealthMargin || b.Undetectable != a.Undetectable {
			t.Errorf("row %s: derived ratios drifted under accumulation", a.Primitive)
		}
		if len(a.Trips) != len(b.Trips) {
			t.Errorf("row %s: trip panel changed: %+v vs %+v", a.Primitive, a.Trips, b.Trips)
		}
	}
}

// TestDetectTableIStealthMargins is the §VII-C acceptance criterion at
// test scale. Every Table I server's benign request-handling baseline must
// raise zero detections, and every faulting primitive must carry a finite
// stealth margin and fall on the right side of the paper's dichotomy: a
// full-speed scan either trips the §VII-C default, or the primitive's own
// probe loop is so slow (the cherokee/memcached timing channels spend
// virtual seconds per probe) that the sustained rate genuinely stays under
// the threshold — stealthy only because the scan takes impractically long.
func TestDetectTableIStealthMargins(t *testing.T) {
	servers, err := Servers()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetect()
	for _, srv := range servers {
		if _, err := AnalyzeServer(srv, 42, WithDetect(d)); err != nil {
			t.Fatalf("%s: %v", srv.Name, err)
		}
	}
	def := DefaultCalibration()
	for _, srv := range servers {
		sec := d.Section("syscall", srv.Name)
		if sec == nil {
			t.Errorf("%s: no detection section", srv.Name)
			continue
		}
		if sec.Baseline == nil {
			t.Errorf("%s: no benign baseline", srv.Name)
		} else if len(sec.Baseline.Events) != 0 {
			t.Errorf("%s: benign baseline flagged: %+v", srv.Name, sec.Baseline.Events)
		}
		flagged := 0
		for _, row := range sec.Rows {
			if row.Faults == 0 {
				continue
			}
			if row.StealthMargin == 0 {
				t.Errorf("%s/%s: faulting primitive with no stealth margin", srv.Name, row.Primitive)
			}
			tripped := false
			for _, trip := range row.Trips {
				if trip.Detector == def.Name {
					tripped = true
				}
			}
			windowFaults := row.Faults * def.WindowTicks / row.Ticks
			if tripped {
				flagged++
				if windowFaults <= def.Threshold {
					t.Errorf("%s/%s: tripped at %d faults/window, at or under threshold %d",
						srv.Name, row.Primitive, windowFaults, def.Threshold)
				}
			} else if windowFaults > def.Threshold {
				t.Errorf("%s/%s: sustains %d faults/window over threshold %d yet never trips",
					srv.Name, row.Primitive, windowFaults, def.Threshold)
			}
		}
		if flagged == 0 {
			t.Errorf("%s: no primitive trips the §VII-C default at full speed", srv.Name)
		}
	}
}
