package crashresist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"crashresist"
)

// updateSchema rewrites the schema goldens from the current output:
//
//	go test -run TestSchemaV1Golden -update-schema
var updateSchema = flag.Bool("update-schema", false, "rewrite schema v1 golden files")

// schemaNormalize removes every "stats" key (the one run-dependent part
// of a report) and re-marshals indented with sorted keys, giving a stable
// byte form to pin.
func schemaNormalize(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var walk func(v any)
	walk = func(v any) {
		switch vv := v.(type) {
		case map[string]any:
			delete(vv, "stats")
			for _, child := range vv {
				walk(child)
			}
		case []any:
			for _, child := range vv {
				walk(child)
			}
		}
	}
	walk(doc)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestSchemaV1Golden pins the v1 wire format — every snake_case field
// name, enum token and envelope shape — against golden JSON, and proves
// the documents round-trip through the typed structs. A diff here is a
// schema change: either fix the regression or consciously bump the
// schema and regenerate with -update-schema.
func TestSchemaV1Golden(t *testing.T) {
	cases := []struct {
		name string
		req  crashresist.Request
	}{
		{"result_syscall", crashresist.Request{Pipeline: "syscall", Target: "nginx", Seed: 42}},
		{"result_api", crashresist.Request{Pipeline: "api", Target: "ie", Scale: "small", Seed: 42}},
		{"result_seh", crashresist.Request{Pipeline: "seh", Target: "ie", Scale: "small", Seed: 42}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := crashresist.Run(context.Background(), tc.req)
			if err != nil {
				t.Fatal(err)
			}
			got := schemaNormalize(t, res)
			path := filepath.Join("testdata", "golden", "schema_"+tc.name+".json")
			if *updateSchema {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update-schema to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("schema drift against %s:\n got %d bytes\nwant %d bytes\n(diff the file after -update-schema to inspect)", path, len(got), len(want))
			}

			// Round-trip: the golden must decode into the typed envelope
			// and re-marshal to the identical bytes, proving the tags
			// decode as well as encode.
			var back crashresist.Result
			if err := json.Unmarshal(want, &back); err != nil {
				t.Fatalf("golden does not decode into Result: %v", err)
			}
			if back.Schema != crashresist.SchemaV1 {
				t.Fatalf("golden schema %q, want %q", back.Schema, crashresist.SchemaV1)
			}
			again := schemaNormalize(t, &back)
			if !bytes.Equal(again, want) {
				t.Error("Result does not round-trip through its JSON tags")
			}
		})
	}
}

// TestSchemaV1RequestRoundTrip pins the serializable Request subset: the
// wire field names, and that attachments (targets, cache, callbacks)
// never leak into JSON.
func TestSchemaV1RequestRoundTrip(t *testing.T) {
	req := crashresist.Request{
		Pipeline:  "seh",
		Target:    "ie",
		Scale:     "small",
		Seed:      42,
		Workers:   4,
		Retries:   2,
		ChaosSeed: 7,
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"pipeline":"seh","target":"ie","scale":"small","seed":42,"workers":4,"retries":2,"chaos_seed":7}`
	if string(raw) != want {
		t.Errorf("Request wire form drifted:\n got %s\nwant %s", raw, want)
	}
	var back crashresist.Request
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != want {
		t.Errorf("Request does not round-trip: %s", again)
	}
}
