package crashresist

// Sentinel-error contract: every typed sentinel must survive arbitrary %w
// wrapping depth (errors.Is through the chain), the sentinels must stay
// distinct from each other, and reports that carry Degraded records — the
// JSON-facing trace of ErrDegraded conditions — must round-trip through
// encoding/json without losing them.

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

var sentinels = []struct {
	name string
	err  error
}{
	{"ErrUnknownServer", ErrUnknownServer},
	{"ErrUnknownTable", ErrUnknownTable},
	{"ErrBadParams", ErrBadParams},
	{"ErrDegraded", ErrDegraded},
	{"ErrInjectedFault", ErrInjectedFault},
}

func TestSentinelsSurviveWrapping(t *testing.T) {
	for _, s := range sentinels {
		wrapped := fmt.Errorf("cli: %w", fmt.Errorf("pipeline %q: %w", "x", fmt.Errorf("stage: %w", s.err)))
		if !errors.Is(wrapped, s.err) {
			t.Errorf("%s lost through three layers of %%w wrapping: %v", s.name, wrapped)
		}
		for _, other := range sentinels {
			if other.err != s.err && errors.Is(wrapped, other.err) {
				t.Errorf("wrapped %s also matches %s", s.name, other.name)
			}
		}
	}
}

func TestSentinelErrorsAreOneLine(t *testing.T) {
	for _, s := range sentinels {
		if strings.ContainsRune(s.err.Error(), '\n') {
			t.Errorf("%s message spans lines: %q", s.name, s.err.Error())
		}
	}
}

func TestUnknownServerWrapsSentinel(t *testing.T) {
	_, err := Server("no-such-server")
	if err == nil {
		t.Fatal("Server accepted an unknown name")
	}
	if !errors.Is(err, ErrUnknownServer) {
		t.Errorf("error %v does not wrap ErrUnknownServer", err)
	}
	if !strings.Contains(err.Error(), "no-such-server") {
		t.Errorf("error %v does not name the offending server", err)
	}
}

// TestDegradedReportJSONRoundTrip runs a chaos-seeded analysis until a
// report carries Degraded records, then checks the full report — records
// included — survives marshal → unmarshal with nothing lost. The Err field
// is the injected fault's text, so the ErrInjectedFault provenance stays
// legible after transport.
func TestDegradedReportJSONRoundTrip(t *testing.T) {
	servers, err := Servers()
	if err != nil {
		t.Fatal(err)
	}
	var rep *SyscallReport
	for seed := int64(1); seed <= 16 && rep == nil; seed++ {
		for _, srv := range servers {
			r, err := AnalyzeServer(srv, 42,
				WithFaultPlan(DefaultFaultPlan(seed)), WithRetry(0))
			if err != nil {
				t.Fatalf("%s seed %d: %v", srv.Name, seed, err)
			}
			if len(r.Degraded) > 0 {
				rep = r
				break
			}
		}
	}
	if rep == nil {
		t.Fatal("no seed in [1,16] degraded any job at retry budget 0")
	}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back SyscallReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(back.Degraded, rep.Degraded) {
		t.Errorf("degraded records changed across JSON round-trip:\n got %+v\nwant %+v", back.Degraded, rep.Degraded)
	}
	if back.Server != rep.Server || !reflect.DeepEqual(back.Status, rep.Status) ||
		!reflect.DeepEqual(back.Findings, rep.Findings) {
		t.Error("report body changed across JSON round-trip")
	}
	for _, d := range back.Degraded {
		if d.Err == "" {
			t.Errorf("record %+v lost its error text", d)
		}
	}
}

// TestDegradedRecordFields pins the wire names of a Degraded record so the
// JSON surface can't drift silently.
func TestDegradedRecordFields(t *testing.T) {
	raw, err := json.Marshal(Degraded{Stage: "validate", Key: "read/1", Job: 3, Attempts: 2, Err: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"stage":"validate","key":"read/1","job":3,"attempts":2,"error":"boom"}`
	if string(raw) != want {
		t.Errorf("wire form = %s, want %s", raw, want)
	}
}
