package crashresist

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestErrorSentinels(t *testing.T) {
	if _, err := Server("nosuch"); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("Server(nosuch) = %v, want ErrUnknownServer", err)
	}
	if _, err := Server("nginx"); err != nil {
		t.Errorf("Server(nginx) = %v", err)
	}
}

func TestContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	srv, err := Server("nginx")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := AnalyzeServerContext(ctx, srv, 11); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeServerContext = %v, want context.Canceled", err)
	}
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeBrowserAPIsContext(ctx, br, 12); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeBrowserAPIsContext = %v, want context.Canceled", err)
	}
	if _, err := AnalyzeBrowserSEHContext(ctx, br, 13); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeBrowserSEHContext = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("pre-cancelled runs took %v, want a prompt return", elapsed)
	}
}

// TestContextCancelMidRun cancels a paper-scale SEH analysis from its own
// progress stream and expects the pipeline to stop instead of finishing
// the remaining stages.
func TestContextCancelMidRun(t *testing.T) {
	br, err := IE(PaperBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var ended atomic.Int32
	rep, err := AnalyzeBrowserSEHContext(ctx, br, 13,
		WithWorkers(4),
		WithProgress(func(ev StageEvent) {
			if ev.Kind == StageEnd {
				ended.Add(1)
			}
			// Cancel as soon as the symbolic-execution stage starts; the
			// cross-ref stage must never run to completion.
			if ev.Stage == "symex" && ev.Kind == StageBegin {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeBrowserSEHContext = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Errorf("cancelled run returned a report")
	}
	if n := ended.Load(); n >= 4 {
		t.Errorf("all %d stages ended despite cancellation", n)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	srv, err := Server("nginx")
	if err != nil {
		t.Fatal(err)
	}
	sysRep, err := AnalyzeServer(srv, 11)
	if err != nil {
		t.Fatal(err)
	}
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	apiRep, err := AnalyzeBrowserAPIs(br, 12)
	if err != nil {
		t.Fatal(err)
	}
	sehRep, err := AnalyzeBrowserSEH(br, 13)
	if err != nil {
		t.Fatal(err)
	}

	roundTrip := func(name string, in, out any) {
		t.Helper()
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("%s marshal: %v", name, err)
		}
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%s did not round-trip:\n in: %+v\nout: %+v", name, in, out)
		}
	}
	roundTrip("SyscallReport", sysRep, &SyscallReport{})
	roundTrip("APIFunnelReport", apiRep, &APIFunnelReport{})
	roundTrip("SEHReport", sehRep, &SEHReport{})
	roundTrip("RunStats", sysRep.Stats, &RunStats{})
}

func TestProgressEventsAndSinks(t *testing.T) {
	srv, err := Server("nginx")
	if err != nil {
		t.Fatal(err)
	}
	sink := NewMemorySink()
	var events []StageEvent
	rep, err := AnalyzeServer(srv, 11,
		WithSink(sink),
		WithProgress(func(ev StageEvent) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}

	if rep.Stats == nil {
		t.Fatal("report carries no RunStats")
	}
	if rep.Stats.Pipeline != "syscall" || rep.Stats.Target != "nginx" {
		t.Errorf("stats identity = %s/%s", rep.Stats.Pipeline, rep.Stats.Target)
	}
	if rep.Stats.Counter(CtrInstructions) == 0 {
		t.Error("no instructions counted")
	}
	if rep.Stats.Counter(CtrEFAULTReturns) == 0 {
		t.Error("no EFAULT returns counted on a server with usable primitives")
	}

	seen := map[string]bool{}
	for _, ev := range events {
		if ev.Kind == StageEnd {
			seen[ev.Stage] = true
		}
	}
	for _, stage := range []string{"taint", "candidate", "validate"} {
		if !seen[stage] {
			t.Errorf("no end event for stage %q (events: %v)", stage, events)
		}
	}

	runs := sink.Runs()
	if len(runs) != 1 {
		t.Fatalf("sink flushed %d runs, want 1", len(runs))
	}
	if !reflect.DeepEqual(runs[0], rep.Stats) {
		t.Errorf("sink snapshot differs from report stats")
	}
	if len(sink.Events()) == 0 {
		t.Error("sink saw no stage events")
	}
}

// TestStatsDeterministicCounters proves the determinism contract: counter
// totals and stage job counts are identical at any worker count; only
// wall-clock and shard splits may differ.
func TestStatsDeterministicCounters(t *testing.T) {
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	normalize := func(st *RunStats) *RunStats {
		cp := *st
		cp.WallNS = 0
		cp.Workers = 0
		cp.Stages = append([]StageStats(nil), st.Stages...)
		for i := range cp.Stages {
			cp.Stages[i].WallNS = 0
			cp.Stages[i].ShardTasks = nil
		}
		// Span wall-clock fields and shard placement are scheduling-
		// dependent by design; latency histograms are not and stay in.
		cp.Spans = nil
		cp.SpansDropped = 0
		return &cp
	}
	var want *RunStats
	for _, workers := range []int{1, 4} {
		rep, err := AnalyzeBrowserSEH(br, 16, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		got := normalize(rep.Stats)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("normalized stats differ between worker counts:\n want: %+v\n  got: %+v", want, got)
		}
	}
}
