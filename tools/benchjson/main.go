// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark manifest on stdout, so CI can archive machine-readable results
// (BENCH_PR9.json) next to the raw benchstat-comparable text:
//
//	go test -bench=. -benchtime=1x -count=1 ./... | tee bench.txt | benchjson > BENCH_PR9.json
//
// The parser understands the standard benchmark result line — name,
// iteration count, then (value, unit) pairs such as ns/op, B/op, allocs/op
// and any custom ReportMetric units — and passes everything else through to
// the "log" field untouched, so failures stay visible in the artifact.
//
// With -compare it is the CI regression gate instead: stdin (bench text or
// a previously written manifest) is compared against a committed baseline
// manifest, and the command exits nonzero when any benchmark's ns/op grew
// by more than -tolerance percent:
//
//	benchjson -compare BENCH_PR9.json -tolerance 150 < bench.txt
//
// Benchmarks present on only one side are reported but never fail the
// gate, so adding or retiring a benchmark does not need a baseline dance
// in the same change.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with its -cpu suffix intact
	// (e.g. "BenchmarkTableIII-8").
	Name string `json:"name"`
	// Package is the enclosing "pkg:" context, when the stream carried one.
	Package string `json:"package,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every (value, unit) pair on the line.
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the output manifest.
type Doc struct {
	// Goos/Goarch echo the stream's platform header lines, when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	// Results lists the parsed benchmark lines in input order.
	Results []Result `json:"results"`
	// Log keeps the unparsed remainder (ok/FAIL lines, failures).
	Log []string `json:"log,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errRegression) {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
		}
		os.Exit(1)
	}
}

// errRegression marks a failed -compare gate; its detail has already been
// written to stdout, so main only needs the nonzero exit.
var errRegression = errors.New("benchmark regression")

// run is the whole command behind process setup, testable end to end.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		compare   = fs.String("compare", "", "baseline manifest to gate against; exit nonzero when ns/op regresses past -tolerance")
		tolerance = fs.Float64("tolerance", 20, "allowed ns/op growth over the baseline, in percent")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	doc, err := parseAny(stdin)
	if err != nil {
		return err
	}
	if *compare == "" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	f, err := os.Open(*compare)
	if err != nil {
		return err
	}
	base, err := decodeDoc(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("baseline %s: %w", *compare, err)
	}
	regressions, notes := compareDocs(base, doc, *tolerance)
	for _, n := range notes {
		fmt.Fprintln(stderr, "benchjson:", n)
	}
	for _, r := range regressions {
		fmt.Fprintln(stdout, "REGRESSION:", r)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stdout, "benchjson: %d benchmark(s) regressed past %.0f%% tolerance\n", len(regressions), *tolerance)
		return errRegression
	}
	fmt.Fprintf(stdout, "benchjson: no ns/op regression past %.0f%% tolerance\n", *tolerance)
	return nil
}

// parseAny accepts either raw `go test -bench` text or an already-written
// manifest (first non-space byte '{'), so the gate can consume bench.txt
// and committed baselines alike.
func parseAny(r io.Reader) (*Doc, error) {
	br := bufio.NewReaderSize(r, 1024*1024)
	for {
		b, err := br.Peek(1)
		if err != nil {
			if err == io.EOF {
				return &Doc{Results: []Result{}}, nil
			}
			return nil, err
		}
		switch b[0] {
		case ' ', '\t', '\r', '\n':
			br.Discard(1)
			continue
		case '{':
			return decodeDoc(br)
		default:
			return parse(br)
		}
	}
}

// decodeDoc reads one JSON manifest.
func decodeDoc(r io.Reader) (*Doc, error) {
	var doc Doc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// nsPerOp averages ns/op per benchmark name (-count > 1 repeats names).
func nsPerOp(doc *Doc) map[string]float64 {
	sum := map[string]float64{}
	n := map[string]int{}
	for _, res := range doc.Results {
		v, ok := res.Metrics["ns/op"]
		if !ok {
			continue
		}
		sum[res.Name] += v
		n[res.Name]++
	}
	out := make(map[string]float64, len(sum))
	for name, s := range sum {
		out[name] = s / float64(n[name])
	}
	return out
}

// compareDocs gates cur against base: a benchmark regresses when its mean
// ns/op exceeds the baseline's by more than tolPct percent. Benchmarks on
// only one side are returned as notes, never as regressions.
func compareDocs(base, cur *Doc, tolPct float64) (regressions, notes []string) {
	bv, cv := nsPerOp(base), nsPerOp(cur)
	names := make([]string, 0, len(bv))
	for name := range bv {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		old := bv[name]
		now, ok := cv[name]
		if !ok {
			notes = append(notes, fmt.Sprintf("baseline benchmark %s missing from the new run", name))
			continue
		}
		limit := old * (1 + tolPct/100)
		if now > limit {
			regressions = append(regressions, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
				name, now, old, (now/old-1)*100, tolPct))
		}
	}
	extra := make([]string, 0)
	for name := range cv {
		if _, ok := bv[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		notes = append(notes, fmt.Sprintf("new benchmark %s has no baseline yet", name))
	}
	return regressions, notes
}

// parse consumes a benchmark stream and builds the manifest.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				doc.Log = append(doc.Log, line)
				continue
			}
			res.Package = pkg
			doc.Results = append(doc.Results, res)
		case strings.TrimSpace(line) == "" || strings.HasPrefix(line, "cpu: "):
			// drop noise
		default:
			doc.Log = append(doc.Log, line)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one "BenchmarkName-8  10  123 ns/op  4 B/op" line.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// name, iterations, then at least one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
