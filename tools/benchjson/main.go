// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark manifest on stdout, so CI can archive machine-readable results
// (BENCH_PR5.json) next to the raw benchstat-comparable text:
//
//	go test -bench=. -benchtime=1x -count=1 ./... | tee bench.txt | benchjson > BENCH_PR5.json
//
// The parser understands the standard benchmark result line — name,
// iteration count, then (value, unit) pairs such as ns/op, B/op, allocs/op
// and any custom ReportMetric units — and passes everything else through to
// the "log" field untouched, so failures stay visible in the artifact.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with its -cpu suffix intact
	// (e.g. "BenchmarkTableIII-8").
	Name string `json:"name"`
	// Package is the enclosing "pkg:" context, when the stream carried one.
	Package string `json:"package,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every (value, unit) pair on the line.
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the output manifest.
type Doc struct {
	// Goos/Goarch echo the stream's platform header lines, when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	// Results lists the parsed benchmark lines in input order.
	Results []Result `json:"results"`
	// Log keeps the unparsed remainder (ok/FAIL lines, failures).
	Log []string `json:"log,omitempty"`
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes a benchmark stream and builds the manifest.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				doc.Log = append(doc.Log, line)
				continue
			}
			res.Package = pkg
			doc.Results = append(doc.Results, res)
		case strings.TrimSpace(line) == "" || strings.HasPrefix(line, "cpu: "):
			// drop noise
		default:
			doc.Log = append(doc.Log, line)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one "BenchmarkName-8  10  123 ns/op  4 B/op" line.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// name, iterations, then at least one value/unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
