package main

import (
	"reflect"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: crashresist
cpu: some cpu model
BenchmarkTableIII-8   	       1	 512345678 ns/op	  736512 trigger-events	      42 candidates
BenchmarkTableI-8     	       2	 100000000 ns/op
BenchmarkTableIIIWarmCache-8  	       3	  52345678 ns/op	     186.0 cache-hits
BenchmarkTableIIIGenLarge-8   	       1	 694874812 ns/op	    1870 gen-modules	  736512 triggers
PASS
ok  	crashresist	1.234s
`

func TestParseStream(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("platform = %s/%s", doc.Goos, doc.Goarch)
	}
	if len(doc.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(doc.Results))
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkTableIII-8" || r.Package != "crashresist" || r.Iterations != 1 {
		t.Errorf("result 0 header = %+v", r)
	}
	want := map[string]float64{"ns/op": 512345678, "trigger-events": 736512, "candidates": 42}
	if !reflect.DeepEqual(r.Metrics, want) {
		t.Errorf("metrics = %v, want %v", r.Metrics, want)
	}
	if doc.Results[1].Metrics["ns/op"] != 100000000 {
		t.Errorf("result 1 metrics = %v", doc.Results[1].Metrics)
	}
	if doc.Results[2].Metrics["cache-hits"] != 186 {
		t.Errorf("result 2 metrics = %v", doc.Results[2].Metrics)
	}
	if doc.Results[3].Metrics["gen-modules"] != 1870 || doc.Results[3].Metrics["triggers"] != 736512 {
		t.Errorf("result 3 metrics = %v", doc.Results[3].Metrics)
	}
	// PASS/ok lines land in the log, cpu/blank lines are dropped.
	if len(doc.Log) != 2 || doc.Log[0] != "PASS" {
		t.Errorf("log = %q", doc.Log)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	doc, err := parse(strings.NewReader("BenchmarkBroken-8 not-a-number 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Errorf("malformed line parsed: %+v", doc.Results)
	}
	if len(doc.Log) != 1 {
		t.Errorf("malformed line not preserved in log: %q", doc.Log)
	}
}

func TestParseEmpty(t *testing.T) {
	doc, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 || len(doc.Log) != 0 {
		t.Errorf("empty stream produced %+v", doc)
	}
}
