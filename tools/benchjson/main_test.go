package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: crashresist
cpu: some cpu model
BenchmarkTableIII-8   	       1	 512345678 ns/op	  736512 trigger-events	      42 candidates
BenchmarkTableI-8     	       2	 100000000 ns/op
BenchmarkTableIIIWarmCache-8  	       3	  52345678 ns/op	     186.0 cache-hits
BenchmarkTableIIIGenLarge-8   	       1	 694874812 ns/op	    1870 gen-modules	  736512 triggers
PASS
ok  	crashresist	1.234s
`

func TestParseStream(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("platform = %s/%s", doc.Goos, doc.Goarch)
	}
	if len(doc.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(doc.Results))
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkTableIII-8" || r.Package != "crashresist" || r.Iterations != 1 {
		t.Errorf("result 0 header = %+v", r)
	}
	want := map[string]float64{"ns/op": 512345678, "trigger-events": 736512, "candidates": 42}
	if !reflect.DeepEqual(r.Metrics, want) {
		t.Errorf("metrics = %v, want %v", r.Metrics, want)
	}
	if doc.Results[1].Metrics["ns/op"] != 100000000 {
		t.Errorf("result 1 metrics = %v", doc.Results[1].Metrics)
	}
	if doc.Results[2].Metrics["cache-hits"] != 186 {
		t.Errorf("result 2 metrics = %v", doc.Results[2].Metrics)
	}
	if doc.Results[3].Metrics["gen-modules"] != 1870 || doc.Results[3].Metrics["triggers"] != 736512 {
		t.Errorf("result 3 metrics = %v", doc.Results[3].Metrics)
	}
	// PASS/ok lines land in the log, cpu/blank lines are dropped.
	if len(doc.Log) != 2 || doc.Log[0] != "PASS" {
		t.Errorf("log = %q", doc.Log)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	doc, err := parse(strings.NewReader("BenchmarkBroken-8 not-a-number 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Errorf("malformed line parsed: %+v", doc.Results)
	}
	if len(doc.Log) != 1 {
		t.Errorf("malformed line not preserved in log: %q", doc.Log)
	}
}

func TestParseEmpty(t *testing.T) {
	doc, err := parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 || len(doc.Log) != 0 {
		t.Errorf("empty stream produced %+v", doc)
	}
}

// bench builds one single-metric result for comparison tests.
func bench(name string, ns float64) Result {
	return Result{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns}}
}

func TestCompareDocs(t *testing.T) {
	base := &Doc{Results: []Result{bench("BenchmarkA-8", 100), bench("BenchmarkB-8", 200), bench("BenchmarkGone-8", 50)}}
	cur := &Doc{Results: []Result{bench("BenchmarkA-8", 115), bench("BenchmarkB-8", 400), bench("BenchmarkNew-8", 10)}}

	regs, notes := compareDocs(base, cur, 20)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkB-8") {
		t.Errorf("regressions = %q, want exactly BenchmarkB-8", regs)
	}
	// Missing and new benchmarks are notes, never failures.
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "BenchmarkGone-8") || !strings.Contains(joined, "BenchmarkNew-8") {
		t.Errorf("notes = %q, want mentions of BenchmarkGone-8 and BenchmarkNew-8", notes)
	}

	// A wider tolerance admits the 2x growth.
	if regs, _ := compareDocs(base, cur, 150); len(regs) != 0 {
		t.Errorf("tolerance 150%% still flags %q", regs)
	}
}

func TestCompareAveragesRepeatedNames(t *testing.T) {
	// -count=3 repeats names; the gate compares means, so one noisy
	// repetition does not fail an otherwise stable benchmark.
	base := &Doc{Results: []Result{bench("BenchmarkA-8", 100)}}
	cur := &Doc{Results: []Result{bench("BenchmarkA-8", 90), bench("BenchmarkA-8", 110), bench("BenchmarkA-8", 130)}}
	if regs, _ := compareDocs(base, cur, 20); len(regs) != 0 {
		t.Errorf("mean 110 vs 100 at 20%% tolerance flagged: %q", regs)
	}
}

// writeBaseline marshals a manifest to a temp file and returns its path.
func writeBaseline(t *testing.T, doc *Doc) string {
	t.Helper()
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunCompareGate(t *testing.T) {
	baseline := writeBaseline(t, &Doc{Results: []Result{bench("BenchmarkTableI-8", 100000000)}})

	// The committed sample stream matches its own baseline: gate passes.
	var stdout, stderr bytes.Buffer
	err := run([]string{"-compare", baseline, "-tolerance", "20"},
		strings.NewReader(sampleStream), &stdout, &stderr)
	if err != nil {
		t.Fatalf("gate failed against matching baseline: %v\nstdout: %s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "no ns/op regression") {
		t.Errorf("stdout = %q", stdout.String())
	}

	// A deliberately shrunken baseline (the CI dry run) must fail the gate.
	regressed := writeBaseline(t, &Doc{Results: []Result{bench("BenchmarkTableI-8", 1000000)}})
	stdout.Reset()
	err = run([]string{"-compare", regressed, "-tolerance", "20"},
		strings.NewReader(sampleStream), &stdout, &stderr)
	if !errors.Is(err, errRegression) {
		t.Fatalf("gate err = %v, want errRegression\nstdout: %s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSION: BenchmarkTableI-8") {
		t.Errorf("stdout = %q", stdout.String())
	}
}

func TestRunCompareAcceptsManifestStdin(t *testing.T) {
	doc := &Doc{Results: []Result{bench("BenchmarkA-8", 100)}}
	baseline := writeBaseline(t, doc)
	b, _ := json.Marshal(doc)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-compare", baseline}, bytes.NewReader(b), &stdout, &stderr); err != nil {
		t.Fatalf("manifest-vs-itself failed: %v", err)
	}
}

func TestRunWithoutCompareEmitsManifest(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, strings.NewReader(sampleStream), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 4 {
		t.Errorf("results = %d, want 4", len(doc.Results))
	}
}
