package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"crashresist"
)

// profileOutputs runs emit with a fresh profile attached and returns the
// artifact bytes plus the profile's ranked and folded renderings.
func profileOutputs(t *testing.T, cfg config) (tables, top, folded string) {
	t.Helper()
	if cfg.profile == nil {
		cfg.profile = crashresist.NewProfile()
	}
	if cfg.metricsW == nil {
		cfg.metricsW = io.Discard
	}
	var buf bytes.Buffer
	if err := emit(&buf, cfg); err != nil {
		t.Fatalf("emit: %v", err)
	}
	snap := cfg.profile.Snapshot()
	var tb, fb bytes.Buffer
	if err := snap.WriteTop(&tb, 0); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteFolded(&fb); err != nil {
		t.Fatal(err)
	}
	return buf.String(), tb.String(), fb.String()
}

// profileSweepTable is the artifact scope for the paper-scale profile
// sweeps: every table normally, the (cheap, symex-heavy) Table III alone
// under the race detector so cmd/crtables stays inside the package test
// timeout with -race. The properties themselves are scope-independent.
func profileSweepTable() string {
	if raceDetectorEnabled {
		return "3"
	}
	return "all"
}

// TestProfileGoldenUnchanged proves that attaching a profile never leaks
// into the artifact writer: every paper-scale golden still matches
// byte-for-byte with profiling ON, and the profile itself is non-empty.
func TestProfileGoldenUnchanged(t *testing.T) {
	cases := []struct {
		name  string
		table string
	}{
		{"table1", "1"},
		{"funnel", "funnel"},
		{"table2", "2"},
		{"table3", "3"},
	}
	if raceDetectorEnabled {
		cases = cases[len(cases)-1:]
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tables, _, folded := profileOutputs(t, config{
				table: tc.table, scale: "paper", format: "text",
				seed: goldenSeed, workers: 4,
			})
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.name+".golden"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if tables != string(want) {
				t.Errorf("profiled output differs from golden:\n%s", diffLines(string(want), tables))
			}
			if strings.TrimSpace(folded) == "" {
				t.Error("profile stayed empty over a full artifact run")
			}
		})
	}
}

// TestProfileWorkerInvariance is the tentpole determinism claim: the exact
// profile is byte-identical (ranked and folded) at 1, 4 and 8 workers, and
// the ranked symex section is dominated (≥50%) by the reject-proof verdict
// class, the paper's actual hot spot.
func TestProfileWorkerInvariance(t *testing.T) {
	base := config{table: profileSweepTable(), scale: "paper", format: "text", seed: goldenSeed}

	cfg := base
	cfg.workers = 1
	_, top1, folded1 := profileOutputs(t, cfg)

	for _, workers := range []int{4, 8} {
		cfg := base
		cfg.workers = workers
		_, top, folded := profileOutputs(t, cfg)
		if top != top1 {
			t.Errorf("workers=%d ranked profile differs from workers=1:\n%s", workers, diffLines(top1, top))
		}
		if folded != folded1 {
			t.Errorf("workers=%d folded profile differs from workers=1:\n%s", workers, diffLines(folded1, folded))
		}
	}

	checkSymexHotSpot(t, top1)
}

// checkSymexHotSpot asserts the ranked symex_steps section's top entry is
// the rejects-av verdict class with at least half the kind's total.
func checkSymexHotSpot(t *testing.T, top string) {
	t.Helper()
	lines := strings.Split(top, "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "== symex_steps:") {
			continue
		}
		if i+1 >= len(lines) {
			t.Fatal("symex_steps section has no rows")
		}
		row := lines[i+1]
		if !strings.Contains(row, "filter:rejects-av") {
			t.Errorf("top symex entry is not the reject class: %q", row)
		}
		fields := strings.Fields(row)
		share, err := strconv.ParseFloat(strings.TrimSuffix(fields[0], "%"), 64)
		if err != nil {
			t.Fatalf("unparseable share in %q: %v", row, err)
		}
		if share < 50 {
			t.Errorf("top symex entry holds %.1f%% of steps, want ≥50%%", share)
		}
		return
	}
	t.Fatalf("no symex_steps section in ranked profile:\n%s", top)
}

// TestProfileCacheInvariance pins the cache transparency claim: the ranked
// profile (which excludes cache-traffic bytes) is byte-identical with the
// cache off, cold and warm, and the full folded profile — cache bytes
// included — is byte-identical between the cold run that wrote the
// entries and the warm run that replayed them.
func TestProfileCacheInvariance(t *testing.T) {
	base := config{table: profileSweepTable(), scale: "paper", format: "text", seed: goldenSeed, workers: 4}

	_, topOff, _ := profileOutputs(t, base)

	cache, err := crashresist.OpenAnalysisCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := base
	cold.cache = cache
	_, topCold, foldedCold := profileOutputs(t, cold)

	warm := base
	warm.cache = cache
	_, topWarm, foldedWarm := profileOutputs(t, warm)

	if topCold != topOff {
		t.Errorf("cold-cache ranked profile differs from cache-off:\n%s", diffLines(topOff, topCold))
	}
	if topWarm != topOff {
		t.Errorf("warm-cache ranked profile differs from cache-off:\n%s", diffLines(topOff, topWarm))
	}
	if foldedWarm != foldedCold {
		t.Errorf("warm folded profile differs from cold (cache bytes included):\n%s", diffLines(foldedCold, foldedWarm))
	}
}

// TestProfileChaosStable pins profile determinism under fault injection:
// the same -chaos-seed yields byte-identical folded profiles, retries and
// backoff included.
func TestProfileChaosStable(t *testing.T) {
	cfg := config{table: "3", scale: "paper", format: "text", seed: goldenSeed, workers: 4, chaosSeed: 7}
	_, top1, folded1 := profileOutputs(t, cfg)
	_, top2, folded2 := profileOutputs(t, cfg)
	if folded1 != folded2 {
		t.Errorf("folded profile unstable across identical chaos runs:\n%s", diffLines(folded1, folded2))
	}
	if top1 != top2 {
		t.Errorf("ranked profile unstable across identical chaos runs:\n%s", diffLines(top1, top2))
	}
	if !strings.Contains(folded1, "retries;") && !strings.Contains(folded1, "\nretries") {
		// Retries are plan-dependent; only assert when the plan injected any.
		t.Logf("chaos plan injected no retries at this seed; folded:\n%.400s", folded1)
	}
}
