package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden files from the current (sequential) output:
//
//	go test ./cmd/crtables -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenSeed pins the fixtures' ASLR layout; changing it invalidates every
// golden file.
const goldenSeed = 42

// emitString renders one artifact with metrics collection enabled (routed
// to a discarded stream), so the goldens prove the observability layer
// never leaks into table bytes.
func emitString(t *testing.T, table string, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	cfg := config{
		table:    table,
		scale:    "paper",
		format:   "text",
		seed:     goldenSeed,
		workers:  workers,
		metricsW: io.Discard,
	}
	if err := emit(&buf, cfg); err != nil {
		t.Fatalf("emit %s (workers=%d): %v", table, workers, err)
	}
	return buf.String()
}

// TestGolden snapshots the paper-scale crtables output for Tables I/II/III
// and the §V-B funnel, then proves the parallel pipelines reproduce the
// snapshot byte-for-byte at 1, 4 and 8 workers. Any scheduling dependence
// in the discovery pipelines — map-order leaks, append-under-lock merges,
// worker-env layout drift — shows up here as a diff.
func TestGolden(t *testing.T) {
	cases := []struct {
		name  string
		table string
	}{
		{"table1", "1"},
		{"funnel", "funnel"},
		{"table2", "2"},
		{"table3", "3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := emitString(t, tc.table, 1)
			path := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(seq), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if seq != string(want) {
				t.Errorf("sequential output differs from golden %s:\n%s", path, diffLines(string(want), seq))
			}
			for _, workers := range []int{4, 8} {
				got := emitString(t, tc.table, workers)
				if got != seq {
					t.Errorf("workers=%d output differs from workers=1:\n%s", workers, diffLines(seq, got))
				}
			}
		})
	}
}

// diffLines renders a minimal first-divergence diff for test failures.
func diffLines(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d lines, got %d", len(w), len(g))
}
