// Command crtables regenerates every table and figure of the paper's
// evaluation in one run:
//
//	crtables -table all            # everything, paper scale
//	crtables -table 1              # Table I only
//	crtables -table funnel -scale small
//	crtables -table 3 -workers 8   # parallel SEH pipeline
//	crtables -table all -format json > eval.json
//	crtables -table 3 -metrics     # run stats on stderr
//
// Tables: 1 (syscall candidates), funnel (§V-B API funnel), 2 (guarded code
// locations), 3 (unique exception filters), prior (§VII-A rediscovery),
// rate (§VII-C fault rates).
//
// Output is deterministic: for a fixed -seed and -scale, every -workers
// value produces byte-identical tables (see the golden regression tests).
// Run metrics (-metrics) go to a separate stream precisely so the table
// bytes stay stable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"crashresist"
	"crashresist/cmd/internal/cliflags"
)

func main() {
	var (
		an  cliflags.Analysis
		out cliflags.Output
		prf cliflags.Profiling
		det cliflags.Detection
	)
	table := flag.String("table", "all", "which artifact: 1, funnel, 2, 3, prior, rate, all")
	an.RegisterScale(flag.CommandLine, "paper")
	an.RegisterSeed(flag.CommandLine)
	an.RegisterPool(flag.CommandLine)
	an.RegisterChaos(flag.CommandLine)
	out.Register(flag.CommandLine)
	prf.Register(flag.CommandLine)
	det.Register(flag.CommandLine)
	flag.Parse()

	cfg := config{
		table:       *table,
		scale:       an.Scale,
		format:      out.Format,
		seed:        an.Seed,
		workers:     an.Workers,
		chaosSeed:   an.ChaosSeed,
		profile:     prf.Profile(),
		profileMode: prf.Mode,
		detect:      det.Detect(),
		detectMode:  det.Mode,
	}
	if out.Metrics {
		cfg.metricsW = os.Stderr
	}
	cfg.cache = openCacheOrWarn(os.Stderr, an.CacheDir)
	if an.Trace != "" {
		f, err := os.Create(an.Trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crtables:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.traceW = f
	}
	if err := emit(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "crtables:", err)
		os.Exit(1)
	}
}

// config selects the artifacts, scale and rendering of one emit call.
type config struct {
	table   string
	scale   string
	format  string
	seed    int64
	workers int
	// chaosSeed, when non-zero, runs every pipeline under the default
	// fault plan seeded with it, plus a retry budget; degraded jobs are
	// rendered after the affected artifact.
	chaosSeed int64
	// metricsW receives each run's stats as text; nil suppresses them.
	// Metrics never go to the artifact writer, keeping goldens stable.
	metricsW io.Writer
	// traceW receives the runs' span trees as one Chrome trace-event JSON
	// document; nil suppresses the export. Like metricsW it never touches
	// the artifact writer.
	traceW io.Writer
	// cache, when non-nil, persists per-unit analysis results across
	// invocations. A missing or broken cache only costs recomputation;
	// it never changes the artifact bytes.
	cache *crashresist.AnalysisCache
	// profile, when non-nil, receives every run's exact virtual costs.
	// Attaching a profile never touches the artifact writer — the golden
	// tests pin that tables render byte-identically with profiling on.
	profile *crashresist.Profile
	// profileMode, when non-empty (top, folded or json), writes the
	// accumulated profile to the artifact writer INSTEAD of the tables,
	// so `crtables -profile=folded | flamegraph.pl` pipes cleanly.
	profileMode string
	// detect, when non-nil, watches every run with the defense detection
	// engine. Like profile it never touches the artifact bytes — the
	// golden tests pin that tables render byte-identically with it on.
	detect *crashresist.Detect
	// detectMode, when non-empty (top or json), appends the accumulated
	// detectability report to the artifact writer after the tables.
	detectMode string
}

// openCacheOrWarn opens the persistent analysis cache at dir. An empty dir
// means caching is off. Failure to open is a warning, not an error: the
// command degrades to cold computation and still exits 0.
func openCacheOrWarn(errW io.Writer, dir string) *crashresist.AnalysisCache {
	a := cliflags.Analysis{CacheDir: dir}
	return a.OpenCache(errW, "crtables")
}

// document is the -format=json artifact bundle. Only requested artifacts
// are present.
type document struct {
	Schema string                       `json:"schema"`
	TableI []*crashresist.SyscallReport `json:"table1,omitempty"`
	Funnel *crashresist.APIFunnelReport `json:"funnel,omitempty"`
	SEH    *crashresist.SEHReport       `json:"seh,omitempty"`
	Prior  *priorDoc                    `json:"prior,omitempty"`
	Rate   *rateDoc                     `json:"rate,omitempty"`
}

// priorDoc bundles the §VII-A rediscovery checks.
type priorDoc struct {
	IE      crashresist.PriorWorkFindings `json:"ie"`
	Firefox crashresist.PriorWorkFindings `json:"firefox"`
}

// rateDoc is the §VII-C fault-rate experiment result.
type rateDoc struct {
	BrowsePeak    uint64 `json:"browse_peak"`
	AsmPeak       uint64 `json:"asm_peak"`
	Threshold     uint64 `json:"threshold"`
	ScanPeak      uint64 `json:"scan_peak"`
	ScanDetected  bool   `json:"scan_detected"`
	StealthProbes uint64 `json:"stealth_probes"`
	StealthTicks  uint64 `json:"stealth_ticks"`
}

// emit computes the selected artifacts and writes them to w. It is the
// whole command behind the flag parsing, so tests can snapshot output
// byte-for-byte.
func emit(w io.Writer, cfg config) error {
	params, err := crashresist.BrowserParamsForScale(cfg.scale)
	if err != nil {
		return fmt.Errorf("bad -scale: %w", err)
	}

	switch cfg.table {
	case "all", "1", "funnel", "2", "3", "prior", "rate":
	default:
		return fmt.Errorf("%w %q (want 1, funnel, 2, 3, prior, rate, or all)", crashresist.ErrUnknownTable, cfg.table)
	}

	switch cfg.format {
	case "text", "json":
	default:
		return fmt.Errorf("%w: unknown -format %q (want text or json)", crashresist.ErrBadParams, cfg.format)
	}

	switch cfg.profileMode {
	case "", "top", "folded", "json":
	default:
		return fmt.Errorf("%w: unknown -profile %q (want top, folded or json)", crashresist.ErrBadParams, cfg.profileMode)
	}
	if cfg.profileMode != "" && cfg.profile == nil {
		cfg.profile = crashresist.NewProfile()
	}

	switch cfg.detectMode {
	case "", "top", "json":
	default:
		return fmt.Errorf("%w: unknown -detect %q (want top or json)", crashresist.ErrBadParams, cfg.detectMode)
	}
	if cfg.detectMode != "" && cfg.detect == nil {
		cfg.detect = crashresist.NewDetect()
	}

	want := func(name string) bool { return cfg.table == "all" || cfg.table == name }
	opts := []crashresist.Option{crashresist.WithWorkers(cfg.workers)}
	if cfg.cache != nil {
		opts = append(opts, crashresist.WithCache(cfg.cache))
	}
	if cfg.chaosSeed != 0 {
		opts = append(opts,
			crashresist.WithFaultPlan(crashresist.DefaultFaultPlan(cfg.chaosSeed)),
			crashresist.WithRetry(2))
	}
	if cfg.profile != nil {
		opts = append(opts, crashresist.WithProfile(cfg.profile))
	}
	if cfg.detect != nil {
		opts = append(opts, crashresist.WithDetect(cfg.detect))
	}

	doc := document{Schema: crashresist.SchemaV1}
	var runs []*crashresist.RunStats

	if want("1") {
		servers, err := crashresist.Servers()
		if err != nil {
			return err
		}
		// At generated scales Table I fans out over the synthesized fleet
		// too; small/paper keep the exact five-server goldens.
		if cfg.scale == crashresist.ScaleLarge || cfg.scale == crashresist.ScaleMega {
			n, err := crashresist.GenServerCount(cfg.scale)
			if err != nil {
				return err
			}
			gen, err := crashresist.GenServers(crashresist.DefaultGenSeed, n)
			if err != nil {
				return err
			}
			servers = append(servers, gen...)
		}
		reports, err := crashresist.AnalyzeServers(servers, cfg.seed, opts...)
		if err != nil {
			return err
		}
		doc.TableI = reports
		for _, rep := range reports {
			runs = append(runs, rep.Stats)
		}
	}
	if want("funnel") {
		br, err := crashresist.IE(params)
		if err != nil {
			return err
		}
		rep, err := crashresist.AnalyzeBrowserAPIs(br, cfg.seed, opts...)
		if err != nil {
			return err
		}
		doc.Funnel = rep
		runs = append(runs, rep.Stats)
	}
	if want("2") || want("3") {
		br, err := crashresist.IE(params)
		if err != nil {
			return err
		}
		rep, err := crashresist.AnalyzeBrowserSEH(br, cfg.seed, opts...)
		if err != nil {
			return err
		}
		doc.SEH = rep
		runs = append(runs, rep.Stats)
	}
	if want("prior") {
		ie, err := crashresist.IE(params)
		if err != nil {
			return err
		}
		ieRep, err := crashresist.AnalyzeBrowserSEH(ie, cfg.seed, opts...)
		if err != nil {
			return err
		}
		ff, err := crashresist.Firefox(params)
		if err != nil {
			return err
		}
		ffRep, err := crashresist.AnalyzeBrowserSEH(ff, cfg.seed, opts...)
		if err != nil {
			return err
		}
		doc.Prior = &priorDoc{IE: crashresist.PriorWork(ieRep), Firefox: crashresist.PriorWork(ffRep)}
		runs = append(runs, ieRep.Stats, ffRep.Stats)
	}
	if want("rate") {
		rate, err := computeRates(params, cfg.seed)
		if err != nil {
			return err
		}
		doc.Rate = rate
	}

	if cfg.metricsW != nil {
		for _, st := range runs {
			fmt.Fprint(cfg.metricsW, st.Format())
		}
	}
	if cfg.traceW != nil {
		if err := crashresist.WriteChromeTrace(cfg.traceW, runs...); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}

	if cfg.profileMode != "" {
		// The profile replaces the artifact on stdout; the tables were
		// still computed in full, so the profile covers every run above.
		return writeProfile(w, cfg.profile, cfg.profileMode)
	}
	if cfg.format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&doc); err != nil {
			return err
		}
	} else if err := renderText(w, &doc, cfg.table); err != nil {
		return err
	}
	if cfg.detectMode != "" {
		// The detectability report appends after the tables; the table
		// bytes above are unchanged, so `crtables -detect=top` shows the
		// artifacts and their defender's view in one pass.
		return writeDetect(w, cfg.detect, cfg.detectMode)
	}
	return nil
}

// writeDetect renders the accumulated detectability report.
func writeDetect(w io.Writer, d *crashresist.Detect, mode string) error {
	rep := d.Snapshot()
	if mode == "top" {
		return rep.WriteTop(w)
	}
	return rep.WriteJSON(w)
}

// writeProfile renders the accumulated cost profile in the selected mode.
func writeProfile(w io.Writer, p *crashresist.Profile, mode string) error {
	snap := p.Snapshot()
	switch mode {
	case "top":
		return snap.WriteTop(w, 0)
	case "folded":
		return snap.WriteFolded(w)
	default:
		return snap.WriteJSON(w)
	}
}

// renderText writes the classic table output, byte-identical to the
// pre-observability command.
func renderText(w io.Writer, doc *document, table string) error {
	want := func(name string) bool { return table == "all" || table == name }

	if doc.TableI != nil {
		fmt.Fprintln(w, crashresist.FormatTableI(doc.TableI))
		for _, rep := range doc.TableI {
			fmt.Fprintf(w, "%s usable: %v\n", rep.Server, rep.Usable())
		}
		for _, rep := range doc.TableI {
			renderDegraded(w, "table1/"+rep.Server, rep.Degraded)
		}
		fmt.Fprintln(w)
	}
	if doc.Funnel != nil {
		fmt.Fprintln(w, crashresist.FormatFunnel(doc.Funnel))
		renderDegraded(w, "funnel", doc.Funnel.Degraded)
	}
	if doc.SEH != nil {
		if want("2") {
			fmt.Fprintln(w, crashresist.FormatTableII(doc.SEH, crashresist.NamedDLLs()))
		}
		if want("3") {
			fmt.Fprintln(w, crashresist.FormatTableIII(doc.SEH, crashresist.NamedDLLs()))
		}
		renderDegraded(w, "seh", doc.SEH.Degraded)
	}
	if doc.Prior != nil {
		fmt.Fprintln(w, "§VII-A prior-primitive rediscovery")
		fmt.Fprintf(w, "  IE MUTX::Enter catch-all found automatically:   %v\n", doc.Prior.IE.IECatchAllFound)
		fmt.Fprintf(w, "  IE post-update filter needs manual vetting:     %v\n", doc.Prior.IE.IEPostUpdateNeedsManual)
		fmt.Fprintf(w, "  Firefox runtime VEH invisible to scope tables:  %v\n", doc.Prior.Firefox.FirefoxVEHMissed)
		fmt.Fprintf(w, "  ... recovered by the registration-scan extension: %v\n", doc.Prior.Firefox.FirefoxVEHFoundByExtension)
		fmt.Fprintln(w)
	}
	if doc.Rate != nil {
		fmt.Fprintln(w, "§VII-C access-violation rates (peak events per window)")
		fmt.Fprintf(w, "  normal browsing: %d\n", doc.Rate.BrowsePeak)
		fmt.Fprintf(w, "  asm.js stress:   %d (bursts, below threshold %d)\n", doc.Rate.AsmPeak, doc.Rate.Threshold)
		fmt.Fprintf(w, "  scanning attack: %d (detected: %v)\n", doc.Rate.ScanPeak, doc.Rate.ScanDetected)
		// The closing argument: a detector-evading scan becomes impractical.
		fmt.Fprintf(w, "  sub-threshold full-arena scan: %d probes ≥ %.1f virtual hours\n",
			doc.Rate.StealthProbes, float64(doc.Rate.StealthTicks)/(3600*1_000_000))
		fmt.Fprintln(w)
	}
	return nil
}

// renderDegraded lists an artifact's dropped jobs. Clean runs print
// nothing, keeping the injection-off goldens byte-identical.
func renderDegraded(w io.Writer, artifact string, degraded []crashresist.Degraded) {
	if len(degraded) == 0 {
		return
	}
	fmt.Fprintf(w, "%s degraded jobs (%d):\n", artifact, len(degraded))
	for _, d := range degraded {
		fmt.Fprintf(w, "  %-10s %-24s attempts=%d  %s\n", d.Stage, d.Key, d.Attempts, d.Err)
	}
}

// computeRates runs the §VII-C fault-rate experiment on Firefox.
func computeRates(params crashresist.BrowserParams, seed int64) (*rateDoc, error) {
	br, err := crashresist.Firefox(params)
	if err != nil {
		return nil, err
	}
	env, err := br.NewEnv(seed)
	if err != nil {
		return nil, err
	}
	rec := crashresist.NewExceptionRecorder()
	rec.Attach(env.Proc)
	if err := env.Start(); err != nil {
		return nil, err
	}
	det := crashresist.DefaultRateDetector()
	out := &rateDoc{Threshold: det.Threshold}

	if err := env.Browse(); err != nil {
		return nil, err
	}
	out.BrowsePeak = det.Peak(rec.Exceptions())

	rec.ResetExceptions()
	if _, err := env.Call("xul.dll", "asmjs_run", 20); err != nil {
		return nil, err
	}
	out.AsmPeak = det.Peak(rec.Exceptions())

	rec.ResetExceptions()
	o, err := crashresist.NewFirefoxOracle(env)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 500; i++ {
		if _, err := o.Probe(0xdead0000 + uint64(i)*0x1000); err != nil {
			return nil, err
		}
	}
	out.ScanPeak = det.Peak(rec.Exceptions())
	out.ScanDetected = det.Detect(rec.Exceptions())

	out.StealthProbes = crashresist.ProbesToCover(1<<43, 8<<20)
	out.StealthTicks = det.StealthScanTicks(out.StealthProbes)
	return out, nil
}
