// Command crtables regenerates every table and figure of the paper's
// evaluation in one run:
//
//	crtables -table all            # everything, paper scale
//	crtables -table 1              # Table I only
//	crtables -table funnel -scale small
//	crtables -table 3 -workers 8   # parallel SEH pipeline
//
// Tables: 1 (syscall candidates), funnel (§V-B API funnel), 2 (guarded code
// locations), 3 (unique exception filters), prior (§VII-A rediscovery),
// rate (§VII-C fault rates).
//
// Output is deterministic: for a fixed -seed and -scale, every -workers
// value produces byte-identical tables (see the golden regression tests).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"crashresist"
)

func main() {
	var (
		table   = flag.String("table", "all", "which artifact: 1, funnel, 2, 3, prior, rate, all")
		scale   = flag.String("scale", "paper", "corpus scale: paper or small")
		seed    = flag.Int64("seed", 42, "analysis seed (fixes ASLR)")
		workers = flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if err := emit(os.Stdout, *table, *scale, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "crtables:", err)
		os.Exit(1)
	}
}

// emit writes the selected artifacts to w. It is the whole command behind
// the flag parsing, so tests can snapshot output byte-for-byte.
func emit(w io.Writer, table, scale string, seed int64, workers int) error {
	var params crashresist.BrowserParams
	switch scale {
	case "paper":
		params = crashresist.PaperBrowserParams()
	case "small":
		params = crashresist.SmallBrowserParams()
	default:
		return fmt.Errorf("unknown -scale %q (want paper or small)", scale)
	}

	switch table {
	case "all", "1", "funnel", "2", "3", "prior", "rate":
	default:
		return fmt.Errorf("unknown -table %q (want 1, funnel, 2, 3, prior, rate, or all)", table)
	}

	want := func(name string) bool { return table == "all" || table == name }

	if want("1") {
		if err := printTableI(w, seed, workers); err != nil {
			return err
		}
	}
	if want("funnel") {
		if err := printFunnel(w, params, seed, workers); err != nil {
			return err
		}
	}
	if want("2") || want("3") {
		if err := printSEHTables(w, params, seed, workers, want("2"), want("3")); err != nil {
			return err
		}
	}
	if want("prior") {
		if err := printPriorWork(w, params, seed, workers); err != nil {
			return err
		}
	}
	if want("rate") {
		if err := printRates(w, params, seed); err != nil {
			return err
		}
	}
	return nil
}

func printTableI(w io.Writer, seed int64, workers int) error {
	servers, err := crashresist.Servers()
	if err != nil {
		return err
	}
	reports, err := crashresist.AnalyzeServers(servers, seed, crashresist.WithWorkers(workers))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, crashresist.FormatTableI(reports))
	for _, rep := range reports {
		fmt.Fprintf(w, "%s usable: %v\n", rep.Server, rep.Usable())
	}
	fmt.Fprintln(w)
	return nil
}

func printFunnel(w io.Writer, params crashresist.BrowserParams, seed int64, workers int) error {
	br, err := crashresist.IE(params)
	if err != nil {
		return err
	}
	rep, err := crashresist.AnalyzeBrowserAPIs(br, seed, crashresist.WithWorkers(workers))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, crashresist.FormatFunnel(rep))
	return nil
}

func printSEHTables(w io.Writer, params crashresist.BrowserParams, seed int64, workers int, t2, t3 bool) error {
	br, err := crashresist.IE(params)
	if err != nil {
		return err
	}
	rep, err := crashresist.AnalyzeBrowserSEH(br, seed, crashresist.WithWorkers(workers))
	if err != nil {
		return err
	}
	if t2 {
		fmt.Fprintln(w, crashresist.FormatTableII(rep, crashresist.NamedDLLs()))
	}
	if t3 {
		fmt.Fprintln(w, crashresist.FormatTableIII(rep, crashresist.NamedDLLs()))
	}
	return nil
}

func printPriorWork(w io.Writer, params crashresist.BrowserParams, seed int64, workers int) error {
	ie, err := crashresist.IE(params)
	if err != nil {
		return err
	}
	ieRep, err := crashresist.AnalyzeBrowserSEH(ie, seed, crashresist.WithWorkers(workers))
	if err != nil {
		return err
	}
	ff, err := crashresist.Firefox(params)
	if err != nil {
		return err
	}
	ffRep, err := crashresist.AnalyzeBrowserSEH(ff, seed, crashresist.WithWorkers(workers))
	if err != nil {
		return err
	}
	iePW := crashresist.PriorWork(ieRep)
	ffPW := crashresist.PriorWork(ffRep)
	fmt.Fprintln(w, "§VII-A prior-primitive rediscovery")
	fmt.Fprintf(w, "  IE MUTX::Enter catch-all found automatically:   %v\n", iePW.IECatchAllFound)
	fmt.Fprintf(w, "  IE post-update filter needs manual vetting:     %v\n", iePW.IEPostUpdateNeedsManual)
	fmt.Fprintf(w, "  Firefox runtime VEH invisible to scope tables:  %v\n", ffPW.FirefoxVEHMissed)
	fmt.Fprintf(w, "  ... recovered by the registration-scan extension: %v\n", ffPW.FirefoxVEHFoundByExtension)
	fmt.Fprintln(w)
	return nil
}

func printRates(w io.Writer, params crashresist.BrowserParams, seed int64) error {
	br, err := crashresist.Firefox(params)
	if err != nil {
		return err
	}
	env, err := br.NewEnv(seed)
	if err != nil {
		return err
	}
	rec := crashresist.NewExceptionRecorder()
	rec.Attach(env.Proc)
	if err := env.Start(); err != nil {
		return err
	}
	det := crashresist.DefaultRateDetector()

	if err := env.Browse(); err != nil {
		return err
	}
	browsePeak := det.Peak(rec.Exceptions())

	rec.ResetExceptions()
	if _, err := env.Call("xul.dll", "asmjs_run", 20); err != nil {
		return err
	}
	asmPeak := det.Peak(rec.Exceptions())

	rec.ResetExceptions()
	o, err := crashresist.NewFirefoxOracle(env)
	if err != nil {
		return err
	}
	for i := 0; i < 500; i++ {
		if _, err := o.Probe(0xdead0000 + uint64(i)*0x1000); err != nil {
			return err
		}
	}
	scanPeak := det.Peak(rec.Exceptions())

	fmt.Fprintln(w, "§VII-C access-violation rates (peak events per window)")
	fmt.Fprintf(w, "  normal browsing: %d\n", browsePeak)
	fmt.Fprintf(w, "  asm.js stress:   %d (bursts, below threshold %d)\n", asmPeak, det.Threshold)
	fmt.Fprintf(w, "  scanning attack: %d (detected: %v)\n", scanPeak, det.Detect(rec.Exceptions()))

	// The closing argument: a detector-evading scan becomes impractical.
	probes := crashresist.ProbesToCover(1<<43, 8<<20)
	ticks := det.StealthScanTicks(probes)
	fmt.Fprintf(w, "  sub-threshold full-arena scan: %d probes ≥ %.1f virtual hours\n",
		probes, float64(ticks)/(3600*1_000_000))
	fmt.Fprintln(w)
	return nil
}
