// Command crtables regenerates every table and figure of the paper's
// evaluation in one run:
//
//	crtables -table all            # everything, paper scale
//	crtables -table 1              # Table I only
//	crtables -table funnel -scale small
//
// Tables: 1 (syscall candidates), funnel (§V-B API funnel), 2 (guarded code
// locations), 3 (unique exception filters), prior (§VII-A rediscovery),
// rate (§VII-C fault rates).
package main

import (
	"flag"
	"fmt"
	"os"

	"crashresist"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crtables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table = flag.String("table", "all", "which artifact: 1, funnel, 2, 3, prior, rate, all")
		scale = flag.String("scale", "paper", "corpus scale: paper or small")
		seed  = flag.Int64("seed", 42, "analysis seed (fixes ASLR)")
	)
	flag.Parse()

	params := crashresist.PaperBrowserParams()
	if *scale == "small" {
		params = crashresist.SmallBrowserParams()
	}

	want := func(name string) bool { return *table == "all" || *table == name }

	if want("1") {
		if err := printTableI(*seed); err != nil {
			return err
		}
	}
	if want("funnel") {
		if err := printFunnel(params, *seed); err != nil {
			return err
		}
	}
	if want("2") || want("3") {
		if err := printSEHTables(params, *seed, want("2"), want("3")); err != nil {
			return err
		}
	}
	if want("prior") {
		if err := printPriorWork(params, *seed); err != nil {
			return err
		}
	}
	if want("rate") {
		if err := printRates(params, *seed); err != nil {
			return err
		}
	}
	return nil
}

func printTableI(seed int64) error {
	servers, err := crashresist.Servers()
	if err != nil {
		return err
	}
	var reports []*crashresist.SyscallReport
	for _, srv := range servers {
		rep, err := crashresist.AnalyzeServer(srv, seed)
		if err != nil {
			return fmt.Errorf("analyze %s: %w", srv.Name, err)
		}
		reports = append(reports, rep)
	}
	fmt.Println(crashresist.FormatTableI(reports))
	for _, rep := range reports {
		fmt.Printf("%s usable: %v\n", rep.Server, rep.Usable())
	}
	fmt.Println()
	return nil
}

func printFunnel(params crashresist.BrowserParams, seed int64) error {
	br, err := crashresist.IE(params)
	if err != nil {
		return err
	}
	rep, err := crashresist.AnalyzeBrowserAPIs(br, seed)
	if err != nil {
		return err
	}
	fmt.Println(crashresist.FormatFunnel(rep))
	return nil
}

func printSEHTables(params crashresist.BrowserParams, seed int64, t2, t3 bool) error {
	br, err := crashresist.IE(params)
	if err != nil {
		return err
	}
	rep, err := crashresist.AnalyzeBrowserSEH(br, seed)
	if err != nil {
		return err
	}
	if t2 {
		fmt.Println(crashresist.FormatTableII(rep, crashresist.NamedDLLs()))
	}
	if t3 {
		fmt.Println(crashresist.FormatTableIII(rep, crashresist.NamedDLLs()))
	}
	return nil
}

func printPriorWork(params crashresist.BrowserParams, seed int64) error {
	ie, err := crashresist.IE(params)
	if err != nil {
		return err
	}
	ieRep, err := crashresist.AnalyzeBrowserSEH(ie, seed)
	if err != nil {
		return err
	}
	ff, err := crashresist.Firefox(params)
	if err != nil {
		return err
	}
	ffRep, err := crashresist.AnalyzeBrowserSEH(ff, seed)
	if err != nil {
		return err
	}
	iePW := crashresist.PriorWork(ieRep)
	ffPW := crashresist.PriorWork(ffRep)
	fmt.Println("§VII-A prior-primitive rediscovery")
	fmt.Printf("  IE MUTX::Enter catch-all found automatically:   %v\n", iePW.IECatchAllFound)
	fmt.Printf("  IE post-update filter needs manual vetting:     %v\n", iePW.IEPostUpdateNeedsManual)
	fmt.Printf("  Firefox runtime VEH invisible to scope tables:  %v\n", ffPW.FirefoxVEHMissed)
	fmt.Printf("  ... recovered by the registration-scan extension: %v\n", ffPW.FirefoxVEHFoundByExtension)
	fmt.Println()
	return nil
}

func printRates(params crashresist.BrowserParams, seed int64) error {
	br, err := crashresist.Firefox(params)
	if err != nil {
		return err
	}
	env, err := br.NewEnv(seed)
	if err != nil {
		return err
	}
	rec := crashresist.NewExceptionRecorder()
	rec.Attach(env.Proc)
	if err := env.Start(); err != nil {
		return err
	}
	det := crashresist.DefaultRateDetector()

	if err := env.Browse(); err != nil {
		return err
	}
	browsePeak := det.Peak(rec.Exceptions())

	rec.ResetExceptions()
	if _, err := env.Call("xul.dll", "asmjs_run", 20); err != nil {
		return err
	}
	asmPeak := det.Peak(rec.Exceptions())

	rec.ResetExceptions()
	o, err := crashresist.NewFirefoxOracle(env)
	if err != nil {
		return err
	}
	for i := 0; i < 500; i++ {
		if _, err := o.Probe(0xdead0000 + uint64(i)*0x1000); err != nil {
			return err
		}
	}
	scanPeak := det.Peak(rec.Exceptions())

	fmt.Println("§VII-C access-violation rates (peak events per window)")
	fmt.Printf("  normal browsing: %d\n", browsePeak)
	fmt.Printf("  asm.js stress:   %d (bursts, below threshold %d)\n", asmPeak, det.Threshold)
	fmt.Printf("  scanning attack: %d (detected: %v)\n", scanPeak, det.Detect(rec.Exceptions()))

	// The closing argument: a detector-evading scan becomes impractical.
	probes := crashresist.ProbesToCover(1<<43, 8<<20)
	ticks := det.StealthScanTicks(probes)
	fmt.Printf("  sub-threshold full-arena scan: %d probes ≥ %.1f virtual hours\n",
		probes, float64(ticks)/(3600*1_000_000))
	fmt.Println()
	return nil
}
