//go:build !race

package main

const raceDetectorEnabled = false
