package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"crashresist"
)

func TestEmitErrorSentinels(t *testing.T) {
	cases := []struct {
		name string
		cfg  config
		want error
	}{
		{"unknown table", config{table: "9", scale: "small", format: "text"}, crashresist.ErrUnknownTable},
		{"unknown scale", config{table: "1", scale: "huge", format: "text"}, crashresist.ErrBadParams},
		{"unknown format", config{table: "1", scale: "small", format: "xml"}, crashresist.ErrBadParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := emit(io.Discard, tc.cfg)
			if !errors.Is(err, tc.want) {
				t.Errorf("emit(%+v) = %v, want %v", tc.cfg, err, tc.want)
			}
		})
	}
}

// TestEmitJSON checks the machine-readable rendering: the funnel artifact
// decodes into the document shape and carries its run stats.
func TestEmitJSON(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{table: "funnel", scale: "small", format: "json", seed: goldenSeed, workers: 2}
	if err := emit(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if doc.Funnel == nil {
		t.Fatal("document missing funnel artifact")
	}
	if doc.TableI != nil || doc.SEH != nil || doc.Prior != nil || doc.Rate != nil {
		t.Error("unrequested artifacts present in document")
	}
	if doc.Funnel.Stats == nil || doc.Funnel.Stats.Pipeline != "api" {
		t.Errorf("funnel stats = %+v, want api pipeline record", doc.Funnel.Stats)
	}
	if doc.Funnel.Stats.Counter(crashresist.CtrProbes) == 0 {
		t.Error("no fuzzing probes counted")
	}
}
