package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"crashresist"
)

func TestEmitErrorSentinels(t *testing.T) {
	cases := []struct {
		name string
		cfg  config
		want error
	}{
		{"unknown table", config{table: "9", scale: "small", format: "text"}, crashresist.ErrUnknownTable},
		{"unknown scale", config{table: "1", scale: "huge", format: "text"}, crashresist.ErrBadParams},
		{"unknown format", config{table: "1", scale: "small", format: "xml"}, crashresist.ErrBadParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := emit(io.Discard, tc.cfg)
			if !errors.Is(err, tc.want) {
				t.Errorf("emit(%+v) = %v, want %v", tc.cfg, err, tc.want)
			}
		})
	}
}

// TestEmitJSON checks the machine-readable rendering: the funnel artifact
// decodes into the document shape and carries its run stats.
func TestEmitJSON(t *testing.T) {
	var buf bytes.Buffer
	cfg := config{table: "funnel", scale: "small", format: "json", seed: goldenSeed, workers: 2}
	if err := emit(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if doc.Funnel == nil {
		t.Fatal("document missing funnel artifact")
	}
	if doc.TableI != nil || doc.SEH != nil || doc.Prior != nil || doc.Rate != nil {
		t.Error("unrequested artifacts present in document")
	}
	if doc.Funnel.Stats == nil || doc.Funnel.Stats.Pipeline != "api" {
		t.Errorf("funnel stats = %+v, want api pipeline record", doc.Funnel.Stats)
	}
	if doc.Funnel.Stats.Counter(crashresist.CtrProbes) == 0 {
		t.Error("no fuzzing probes counted")
	}
}

// TestTraceExportAndProvenancePaperScale runs the full paper-scale artifact
// bundle once with the trace writer attached and checks the two
// machine-readable acceptance surfaces: the Chrome trace validates as JSON
// with at least one span per pipeline stage of every run, and every
// primitive row of Tables I/II/III carries a non-empty provenance chain.
func TestTraceExportAndProvenancePaperScale(t *testing.T) {
	var out, trace bytes.Buffer
	cfg := config{table: "all", scale: "paper", format: "json", seed: goldenSeed, workers: 4, traceW: &trace}
	if err := emit(&out, cfg); err != nil {
		t.Fatal(err)
	}

	var tdoc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &tdoc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	stagesPerRun := map[int]map[string]bool{}
	kinds := map[string]bool{}
	for _, ev := range tdoc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		kinds[ev.Cat] = true
		if ev.Cat == "stage" {
			if stagesPerRun[ev.Pid] == nil {
				stagesPerRun[ev.Pid] = map[string]bool{}
			}
			stagesPerRun[ev.Pid][ev.Name] = true
		}
	}
	for _, k := range []string{"run", "pipeline", "stage", "shard", "job"} {
		if !kinds[k] {
			t.Errorf("trace missing %q spans", k)
		}
	}
	// 9 runs feed the bundle: 5 servers, IE funnel, IE SEH, and the prior-
	// work IE+Firefox pair. Each must contribute at least one stage span.
	if len(stagesPerRun) < 9 {
		t.Errorf("trace covers %d runs, want >= 9", len(stagesPerRun))
	}
	for pid, stages := range stagesPerRun {
		if len(stages) == 0 {
			t.Errorf("run pid=%d has no stage spans", pid)
		}
	}

	var doc document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("decode document: %v", err)
	}
	for _, rep := range doc.TableI {
		if len(rep.Findings) != len(rep.Provenance) {
			t.Errorf("%s: %d findings, %d provenance chains", rep.Server, len(rep.Findings), len(rep.Provenance))
		}
		for _, p := range rep.Provenance {
			if len(p.Chain) == 0 {
				t.Errorf("%s: primitive %q has an empty chain", rep.Server, p.Primitive)
			}
		}
	}
	if doc.Funnel == nil || len(doc.Funnel.Provenance) != len(doc.Funnel.Classifications) {
		t.Error("funnel provenance does not cover the classifications")
	}
	if doc.SEH == nil || len(doc.SEH.Provenance) != len(doc.SEH.Candidates) {
		t.Error("SEH provenance does not cover the candidates")
	}
	if doc.SEH != nil {
		for _, p := range doc.SEH.Provenance {
			if len(p.Chain) == 0 {
				t.Errorf("SEH primitive %q has an empty chain", p.Primitive)
			}
		}
	}
}
