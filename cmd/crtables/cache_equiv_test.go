package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"crashresist"
)

// emitCachedString renders one artifact like emitString but with the
// persistent cache attached.
func emitCachedString(t *testing.T, table string, workers int, cache *crashresist.AnalysisCache) string {
	t.Helper()
	var buf bytes.Buffer
	cfg := config{
		table:    table,
		scale:    "paper",
		format:   "text",
		seed:     goldenSeed,
		workers:  workers,
		metricsW: io.Discard,
		cache:    cache,
	}
	if err := emit(&buf, cfg); err != nil {
		t.Fatalf("emit %s (workers=%d, cached): %v", table, workers, err)
	}
	return buf.String()
}

// TestCacheEquivalence is the headline correctness harness for the
// persistent cache: for every paper artifact, a cold populating run and
// warm runs at 1, 4 and 8 workers must all match the cache-off golden
// bytes exactly. The cache may only change how a result is obtained,
// never what it is.
func TestCacheEquivalence(t *testing.T) {
	cacheDir := t.TempDir()
	cache, err := crashresist.OpenAnalysisCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		table string
	}{
		{"table1", "1"},
		{"funnel", "funnel"},
		{"table2", "2"},
		{"table3", "3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.name+".golden"))
			if err != nil {
				t.Fatalf("missing golden (run TestGolden with -update): %v", err)
			}
			cold := emitCachedString(t, tc.table, 1, cache)
			if cold != string(want) {
				t.Errorf("cold cached output differs from golden:\n%s", diffLines(string(want), cold))
			}
			for _, workers := range []int{1, 4, 8} {
				warm := emitCachedString(t, tc.table, workers, cache)
				if warm != string(want) {
					t.Errorf("warm cached output (workers=%d) differs from golden:\n%s",
						workers, diffLines(string(want), warm))
				}
			}
		})
	}
	if st := cache.Stats(); st.Hits == 0 || st.BadEntries != 0 {
		t.Errorf("cache stats after equivalence sweep = %+v; want hits and no bad entries", st)
	}
}

// TestCacheWarmRunServesSymexFromDisk proves the warm Table III run really
// skips the expensive stage: after one cold run, a warm run must serve the
// per-DLL symbolic-execution results (almost) entirely from disk. Only
// jscript9.dll — whose filter analysis depends on the module base, not just
// its body bytes — legitimately recomputes every run.
func TestCacheWarmRunServesSymexFromDisk(t *testing.T) {
	cache, err := crashresist.OpenAnalysisCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	emitCachedString(t, "3", 1, cache)
	coldSt := cache.Stats()

	emitCachedString(t, "3", 4, cache)
	warmSt := cache.Stats()

	hits := warmSt.Hits - coldSt.Hits
	misses := warmSt.Misses - coldSt.Misses
	// Paper scale loads 187 DLLs; the warm run may miss only the handful of
	// modules whose results are not body-pure.
	if hits < 180 {
		t.Errorf("warm run hit %d cached modules, want >= 180", hits)
	}
	if misses > 7 {
		t.Errorf("warm run missed %d times, want <= 7 (impure modules only)", misses)
	}
	if warmSt.BadEntries != coldSt.BadEntries {
		t.Errorf("warm run flagged %d bad entries", warmSt.BadEntries-coldSt.BadEntries)
	}
}
