package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crashresist"
)

// TestOpenCacheOrWarn covers the CLI's degrade-don't-fail contract for
// -cache-dir: empty means off, a usable path opens, an unusable path warns
// to stderr and returns nil so the run proceeds uncached.
func TestOpenCacheOrWarn(t *testing.T) {
	var warnings bytes.Buffer
	if c := openCacheOrWarn(&warnings, ""); c != nil {
		t.Error("empty dir should disable the cache")
	}
	if warnings.Len() != 0 {
		t.Errorf("empty dir warned: %s", warnings.String())
	}

	dir := t.TempDir()
	c := openCacheOrWarn(&warnings, dir)
	if c == nil {
		t.Fatal("usable dir did not open")
	}
	if c.Dir() != dir {
		t.Errorf("cache rooted at %q, want %q", c.Dir(), dir)
	}
	if warnings.Len() != 0 {
		t.Errorf("usable dir warned: %s", warnings.String())
	}

	occupied := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if c := openCacheOrWarn(&warnings, filepath.Join(occupied, "cache")); c != nil {
		t.Error("unusable dir should return nil")
	}
	if !strings.Contains(warnings.String(), "cache disabled") {
		t.Errorf("unusable dir did not warn: %q", warnings.String())
	}
}

// TestEmitWithCacheLifecycle runs one artifact at small scale through the
// fresh → reused → disabled cache lifecycle and checks the bytes never
// change. A nil cache (what openCacheOrWarn returns for a broken path) is
// the disabled stage.
func TestEmitWithCacheLifecycle(t *testing.T) {
	render := func(cache *crashresist.AnalysisCache) string {
		var buf bytes.Buffer
		cfg := config{table: "1", scale: "small", format: "text", seed: 42, cache: cache}
		if err := emit(&buf, cfg); err != nil {
			t.Fatalf("emit: %v", err)
		}
		return buf.String()
	}

	baseline := render(nil)

	dir := t.TempDir()
	var warnings bytes.Buffer
	cache := openCacheOrWarn(&warnings, dir)
	if fresh := render(cache); fresh != baseline {
		t.Error("fresh-cache emit differs from uncached emit")
	}
	if st := cache.Stats(); st.Hits != 0 {
		t.Errorf("fresh cache hit %d times", st.Hits)
	}
	// A second Cache instance over the same dir — the reused-directory
	// case of the CLI lifecycle.
	reusedCache := openCacheOrWarn(&warnings, dir)
	if reused := render(reusedCache); reused != baseline {
		t.Error("reused-cache emit differs from uncached emit")
	}
	if st := reusedCache.Stats(); st.Hits == 0 {
		t.Error("reused cache dir never hit")
	}
	if warnings.Len() != 0 {
		t.Errorf("healthy lifecycle warned: %s", warnings.String())
	}
}
