//go:build race

package main

// raceDetectorEnabled reports whether the test binary was built with
// -race. The race detector multiplies paper-scale runs ~10×, so the
// heaviest sweeps shrink their table scope under it; the full matrix
// runs in the regular suite and in the CI profiling job.
const raceDetectorEnabled = true
