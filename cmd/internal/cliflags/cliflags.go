// Package cliflags holds the flag definitions and option plumbing shared
// by the crashresist commands (crtables, crdiscover, crmon, crprobe), so
// `-workers` or `-cache-dir` means exactly the same thing — same default,
// same help text, same behavior on a broken cache directory — no matter
// which tool it is passed to.
package cliflags

import (
	"flag"
	"fmt"
	"io"

	"crashresist"
)

// Analysis groups the analysis-tuning flags. Register the subsets a
// command supports, Parse, then build library options with Options.
type Analysis struct {
	Seed      int64
	Workers   int
	ChaosSeed int64
	CacheDir  string
	Trace     string
	Scale     string
}

// RegisterSeed adds -seed.
func (a *Analysis) RegisterSeed(fs *flag.FlagSet) {
	fs.Int64Var(&a.Seed, "seed", 42, "analysis seed (fixes ASLR)")
}

// RegisterScale adds -scale with the given default. The knob sizes both
// the browser corpus (small/paper hand-built and golden-pinned;
// large/mega append seeded generated DLLs, property-checked) and the
// generated server fleet ("gen", "gen-<i>" targets).
func (a *Analysis) RegisterScale(fs *flag.FlagSet, def string) {
	fs.StringVar(&a.Scale, "scale", def,
		"corpus scale: small, paper, large or mega (large/mega add generated targets at 10-100x paper size)")
}

// RegisterPool adds -workers and -cache-dir.
func (a *Analysis) RegisterPool(fs *flag.FlagSet) {
	fs.IntVar(&a.Workers, "workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	fs.StringVar(&a.CacheDir, "cache-dir", "", "persist per-unit analysis results under this directory and reuse them on later runs")
}

// RegisterChaos adds -chaos-seed and -trace.
func (a *Analysis) RegisterChaos(fs *flag.FlagSet) {
	fs.Int64Var(&a.ChaosSeed, "chaos-seed", 0, "inject deterministic faults from this seed, with retry and graceful degradation (0 = off)")
	fs.StringVar(&a.Trace, "trace", "", "write the run span trees to this file as Chrome trace-event JSON")
}

// OpenCache opens -cache-dir, or returns nil (with a warning on stderr)
// when the flag is unset or the directory is unusable: a broken cache dir
// costs recomputation, never the run.
func (a *Analysis) OpenCache(stderr io.Writer, tool string) *crashresist.AnalysisCache {
	if a.CacheDir == "" {
		return nil
	}
	c, err := crashresist.OpenAnalysisCache(a.CacheDir)
	if err != nil {
		fmt.Fprintf(stderr, "%s: cache disabled: %v\n", tool, err)
		return nil
	}
	return c
}

// Options translates the parsed flags into library options: the worker
// pool, the persistent cache (when -cache-dir opens), and — under
// -chaos-seed — the default fault plan with two retries.
func (a *Analysis) Options(stderr io.Writer, tool string) []crashresist.Option {
	opts := []crashresist.Option{crashresist.WithWorkers(a.Workers)}
	if c := a.OpenCache(stderr, tool); c != nil {
		opts = append(opts, crashresist.WithCache(c))
	}
	if a.ChaosSeed != 0 {
		opts = append(opts,
			crashresist.WithFaultPlan(crashresist.DefaultFaultPlan(a.ChaosSeed)),
			crashresist.WithRetry(2))
	}
	return opts
}

// Profiling groups the exact-cost-profiler flags shared by the analysis
// CLIs. The zero value (no -profile) disables profiling entirely.
type Profiling struct {
	Mode string
	p    *crashresist.Profile
}

// Register adds -profile.
func (p *Profiling) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.Mode, "profile", "",
		"write the run's exact virtual-cost profile to stdout instead of the report: top (ranked hot spots), folded (flamegraph.pl input) or json")
}

// Validate rejects unknown -profile values.
func (p *Profiling) Validate() error {
	switch p.Mode {
	case "", "top", "folded", "json":
		return nil
	default:
		return fmt.Errorf("%w: unknown -profile %q (want top, folded or json)", crashresist.ErrBadParams, p.Mode)
	}
}

// Enabled reports whether -profile was given.
func (p *Profiling) Enabled() bool { return p.Mode != "" }

// Profile returns the live profile the run should charge into, creating
// it on first use; nil when profiling is off.
func (p *Profiling) Profile() *crashresist.Profile {
	if !p.Enabled() {
		return nil
	}
	if p.p == nil {
		p.p = crashresist.NewProfile()
	}
	return p.p
}

// Options returns the option list attaching the profile; empty when off.
func (p *Profiling) Options() []crashresist.Option {
	if !p.Enabled() {
		return nil
	}
	return []crashresist.Option{crashresist.WithProfile(p.Profile())}
}

// Emit writes the accumulated profile to w in the selected mode. A no-op
// when profiling is off.
func (p *Profiling) Emit(w io.Writer) error {
	if !p.Enabled() {
		return nil
	}
	snap := p.Profile().Snapshot()
	switch p.Mode {
	case "top":
		return snap.WriteTop(w, 0)
	case "folded":
		return snap.WriteFolded(w)
	case "json":
		return snap.WriteJSON(w)
	}
	return nil
}

// Detection groups the defense-observatory flags shared by the analysis
// CLIs. The zero value (no -detect) disables detection entirely.
type Detection struct {
	Mode string
	d    *crashresist.Detect
}

// Register adds -detect.
func (d *Detection) Register(fs *flag.FlagSet) {
	fs.StringVar(&d.Mode, "detect", "",
		"watch the run with the defense detection engine and write the detectability report to stdout after the report: top (ranked text) or json")
}

// Validate rejects unknown -detect values.
func (d *Detection) Validate() error {
	switch d.Mode {
	case "", "top", "json":
		return nil
	default:
		return fmt.Errorf("%w: unknown -detect %q (want top or json)", crashresist.ErrBadParams, d.Mode)
	}
}

// Enabled reports whether -detect was given.
func (d *Detection) Enabled() bool { return d.Mode != "" }

// Detect returns the live observer the run should stream into, creating it
// on first use (default calibration panel); nil when detection is off.
func (d *Detection) Detect() *crashresist.Detect {
	if !d.Enabled() {
		return nil
	}
	if d.d == nil {
		d.d = crashresist.NewDetect()
	}
	return d.d
}

// Options returns the option list attaching the observer; empty when off.
func (d *Detection) Options() []crashresist.Option {
	if !d.Enabled() {
		return nil
	}
	return []crashresist.Option{crashresist.WithDetect(d.Detect())}
}

// Emit writes the accumulated detectability report to w in the selected
// mode. A no-op when detection is off.
func (d *Detection) Emit(w io.Writer) error {
	if !d.Enabled() {
		return nil
	}
	rep := d.Detect().Snapshot()
	switch d.Mode {
	case "top":
		return rep.WriteTop(w)
	case "json":
		return rep.WriteJSON(w)
	}
	return nil
}

// Output groups the report-rendering flags.
type Output struct {
	Format  string
	Metrics bool
}

// Register adds -format and -metrics.
func (o *Output) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Format, "format", "text", "output format: text or json")
	fs.BoolVar(&o.Metrics, "metrics", false, "print run stats to stderr")
}

// Validate rejects unknown -format values.
func (o *Output) Validate() error {
	switch o.Format {
	case "text", "json":
		return nil
	default:
		return fmt.Errorf("%w: unknown -format %q (want text or json)", crashresist.ErrBadParams, o.Format)
	}
}

// JSON reports whether -format json was selected.
func (o *Output) JSON() bool { return o.Format == "json" }

// EmitStats writes run stats to w when -metrics is on.
func (o *Output) EmitStats(w io.Writer, st *crashresist.RunStats) {
	if o.Metrics && st != nil {
		fmt.Fprint(w, st.Format())
	}
}
