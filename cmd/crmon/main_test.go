package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"crashresist"
)

// TestServeAndAnalyze drives the monitor end to end: bind an ephemeral
// port, run one analysis, then check every endpoint while the server keeps
// serving, and finally interrupt it via context cancellation.
func TestServeAndAnalyze(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-target", "nginx", "-runs", "1"},
			func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the listener")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// The analysis completes asynchronously; poll /metrics until the run
	// lands in the registry.
	deadline := time.Now().Add(30 * time.Second)
	var metricsBody string
	for {
		metricsBody = get("/metrics")
		if strings.Contains(metricsBody, "crashresist_runs_total") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never showed a completed run:\n%s", metricsBody)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(metricsBody, `crashresist_runs_total{pipeline="syscall",target="nginx"} 1`) {
		t.Errorf("/metrics missing the nginx run:\n%s", metricsBody)
	}
	if !strings.Contains(metricsBody, "crashresist_stage_latency_ticks") {
		t.Errorf("/metrics missing latency summary:\n%s", metricsBody)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(get("/trace.json")), &trace); err != nil {
		t.Fatalf("/trace.json not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("/trace.json carries no events after a completed run")
	}

	if body := get("/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}
	if body := get("/debug/vars"); !json.Valid([]byte(body)) {
		t.Error("/debug/vars not valid JSON")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("run returned %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
}

// TestCacheCountersExposed runs two analyses against one cache dir and
// checks the cache counter families surface on /metrics: the first run
// misses and populates, the second hits, and both flow through the
// per-run collector into the Prometheus exposition.
func TestCacheCountersExposed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-target", "nginx", "-runs", "2",
			"-cache-dir", t.TempDir()},
			func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the listener")
	}

	deadline := time.Now().Add(30 * time.Second)
	var body string
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body = string(raw)
		if strings.Contains(body, `crashresist_runs_total{pipeline="syscall",target="nginx"} 2`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never showed both runs:\n%s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	for _, family := range []string{
		"crashresist_cache_hits_total",
		"crashresist_cache_misses_total",
		"crashresist_cache_bytes_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s:\n%s", family, body)
		}
	}
	if strings.Contains(body, "crashresist_cache_bad_entries_total") &&
		!strings.Contains(body, `crashresist_cache_bad_entries_total{pipeline="syscall",target="nginx"} 0`) {
		t.Errorf("/metrics reports corrupted cache entries on a healthy dir:\n%s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("run returned %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
}

// TestBadCacheDirDegrades proves an unusable -cache-dir is a warning, not
// a failure: the monitor still completes its run uncached.
func TestBadCacheDirDegrades(t *testing.T) {
	file := t.TempDir() + "/occupied"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-target", "nginx", "-runs", "1",
			"-cache-dir", file + "/cache"},
			func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the listener")
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(raw), `crashresist_runs_total{pipeline="syscall",target="nginx"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run with broken cache dir never completed:\n%s", raw)
		}
		time.Sleep(50 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("run with broken cache dir returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
}

// TestBadParams checks flag validation without binding a port.
func TestBadParams(t *testing.T) {
	cases := [][]string{
		{"-target", "nginx", "-pipeline", "seh"}, // server target, browser pipeline
		{"-target", "ie", "-pipeline", "bogus"},
		{"-target", "nosuch"},
	}
	for _, args := range cases {
		err := run(context.Background(), args, nil)
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
			continue
		}
		if strings.Contains(fmt.Sprint(args), "nosuch") {
			if !errors.Is(err, crashresist.ErrUnknownServer) {
				t.Errorf("run(%v) = %v, want ErrUnknownServer", args, err)
			}
		} else if !errors.Is(err, crashresist.ErrBadParams) {
			t.Errorf("run(%v) = %v, want ErrBadParams", args, err)
		}
	}
}

// TestServeJobAPI drives -serve end to end: submit a job over HTTP, poll
// it to completion, check the result envelope and the job metric
// families, then interrupt the server.
func TestServeJobAPI(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-serve", "-cache-dir", t.TempDir()},
			func(addr string) { addrCh <- addr })
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the listener")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"schema":"v1","tenant":"smoke","target":"nginx","seed":42}`))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID     string          `json:"id"`
		State  string          `json:"state"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || view.ID == "" {
		t.Fatalf("submit: status %d view %+v err %v", resp.StatusCode, view, err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for view.State != "done" {
		if view.State == "failed" || view.State == "canceled" {
			t.Fatalf("job ended %s: %s", view.State, view.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", view.State)
		}
		time.Sleep(20 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	var result struct {
		Schema   string `json:"schema"`
		Pipeline string `json:"pipeline"`
	}
	if err := json.Unmarshal(view.Result, &result); err != nil {
		t.Fatalf("result: %v", err)
	}
	if result.Schema != "v1" || result.Pipeline != "syscall" {
		t.Fatalf("result envelope: %+v", result)
	}

	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`crashresist_jobs_completed_total{tenant="smoke"} 1`,
		`crashresist_runs_total{pipeline="syscall",target="nginx"} 1`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("run returned %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
}
