// Command crmon is the long-running discovery monitor and service: it
// serves live metrics endpoints and either repeatedly runs one discovery
// pipeline (monitor mode) or accepts discovery jobs over a multi-tenant
// HTTP/JSON API (-serve mode):
//
//	crmon -addr :9090 -target nginx              # loop the syscall pipeline
//	crmon -addr :9090 -target ie -pipeline seh -runs 3
//	crmon -addr :9090 -serve                     # discovery-as-a-service
//	curl localhost:9090/metrics                  # Prometheus text format
//	curl localhost:9090/profile                  # exact virtual-cost profile
//	curl localhost:9090/trace.json               # Chrome trace-event JSON
//	curl localhost:9090/debug/vars               # expvar
//	curl localhost:9090/debug/pprof/             # runtime profiles
//
// In -serve mode the job API is live on the same address:
//
//	curl -X POST localhost:9090/v1/jobs -d '{"tenant":"t1","target":"nginx","seed":42}'
//	curl localhost:9090/v1/jobs/j00000001        # status + result
//	curl localhost:9090/v1/jobs/j00000001/events # SSE progress stream
//	curl 'localhost:9090/v1/jobs?tenant=t1'      # tenant listing
//
// Endpoints are live from before the first analysis starts. With -runs 0
// (the default) crmon keeps analyzing until interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"crashresist"
	"crashresist/cmd/internal/cliflags"
	"crashresist/internal/metrics"
	"crashresist/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "crmon:", err)
		os.Exit(1)
	}
}

// run drives the whole command. ready, when non-nil, receives the bound
// listen address once the endpoints are serving — the test hook that makes
// `-addr 127.0.0.1:0` usable.
func run(ctx context.Context, args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("crmon", flag.ContinueOnError)
	var an cliflags.Analysis
	var (
		addr     = fs.String("addr", ":9090", "listen address for /metrics, /profile, /trace.json, /debug/vars, /debug/pprof")
		serve    = fs.Bool("serve", false, "serve the multi-tenant job API (POST /v1/jobs) instead of looping one pipeline")
		target   = fs.String("target", "nginx", "nginx|cherokee|lighttpd|memcached|postgresql|ie|firefox|gen-<i>")
		pipeline = fs.String("pipeline", "", "syscall|api|seh (default: syscall for servers, seh for browsers)")
		runs     = fs.Int("runs", 0, "stop after this many analysis runs (0 = loop until interrupted)")
		budget   = fs.Int("budget", 0, "serve: worker-token budget shared by concurrent jobs (0 = max(4, GOMAXPROCS))")
		maxQueue = fs.Int("max-queue", 0, "serve: queued-job bound before 429 backpressure (0 = 256)")
		retain   = fs.Int("retain", 0, "serve: completed jobs retained for GET before eviction (0 = 1024)")
	)
	an.RegisterScale(fs, "small")
	an.RegisterSeed(fs)
	an.RegisterPool(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cache := an.OpenCache(os.Stderr, "crmon")
	reg := crashresist.NewMetricsRegistry()

	if *serve {
		return serveJobs(ctx, *addr, reg, cache, service.Config{
			Budget:   *budget,
			MaxQueue: *maxQueue,
			Retain:   *retain,
		}, ready)
	}

	isBrowser := *target == "ie" || *target == "firefox"
	pl := *pipeline
	if pl == "" {
		if isBrowser {
			pl = "seh"
		} else {
			pl = "syscall"
		}
	}
	if !isBrowser && pl != "syscall" {
		return fmt.Errorf("%w: pipeline %q needs a browser target", crashresist.ErrBadParams, pl)
	}

	req := crashresist.Request{
		Pipeline: pl,
		Target:   *target,
		Scale:    an.Scale,
		Seed:     an.Seed,
		Workers:  an.Workers,
	}
	if err := req.Validate(); err != nil {
		return err
	}
	if cache != nil {
		req.Cache = cache
	}
	req.Sinks = append(req.Sinks, reg)
	// The monitor profiles every run into one cumulative profile served at
	// /profile — profiling never changes report contents, so it is always on.
	req.Profile = crashresist.NewProfile()
	reg.SetProfile(req.Profile)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: reg.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "crmon: serving http://%s/metrics (%s pipeline, target %s)\n", ln.Addr(), pl, *target)
	if ready != nil {
		ready(ln.Addr().String())
	}

	for n := 0; *runs == 0 || n < *runs; n++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := crashresist.Run(ctx, req); err != nil {
			if errors.Is(err, context.Canceled) {
				return err
			}
			return fmt.Errorf("run %d: %w", n+1, err)
		}
		select {
		case err := <-serveErr:
			return fmt.Errorf("serve: %w", err)
		default:
		}
	}
	fmt.Fprintf(os.Stderr, "crmon: %d run(s) complete; serving until interrupted\n", *runs)
	<-ctx.Done()
	return ctx.Err()
}

// serveJobs runs the discovery-as-a-service mode: the job API plus the
// observability endpoints on one listener, until the context is done.
func serveJobs(ctx context.Context, addr string, reg *metrics.Registry, cache *crashresist.AnalysisCache, cfg service.Config, ready func(addr string)) error {
	cfg.Cache = cache
	cfg.Registry = reg
	svc := service.New(cfg)
	defer svc.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "crmon: job API serving http://%s/v1/jobs (budget %d)\n", ln.Addr(), svc.Budget())
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case <-ctx.Done():
		return ctx.Err()
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	}
}
