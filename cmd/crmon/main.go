// Command crmon is the long-running discovery monitor: it serves live
// metrics endpoints and repeatedly runs a discovery pipeline, folding each
// completed run into the exposition registry. It exists so the pipelines
// can be watched like a serving stack — Prometheus scrapes /metrics, a
// Chrome trace of the recent runs is one GET away, and pprof is wired in:
//
//	crmon -addr :9090 -target nginx              # loop the syscall pipeline
//	crmon -addr :9090 -target ie -pipeline seh -runs 3
//	curl localhost:9090/metrics                  # Prometheus text format
//	curl localhost:9090/trace.json               # Chrome trace-event JSON
//	curl localhost:9090/debug/vars               # expvar
//	curl localhost:9090/debug/pprof/             # runtime profiles
//
// Endpoints are live from before the first analysis starts. With -runs 0
// (the default) crmon keeps analyzing until interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"crashresist"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "crmon:", err)
		os.Exit(1)
	}
}

// run drives the whole command. ready, when non-nil, receives the bound
// listen address once the endpoints are serving — the test hook that makes
// `-addr 127.0.0.1:0` usable.
func run(ctx context.Context, args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("crmon", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":9090", "listen address for /metrics, /trace.json, /debug/vars, /debug/pprof")
		target   = fs.String("target", "nginx", "nginx|cherokee|lighttpd|memcached|postgresql|ie|firefox")
		pipeline = fs.String("pipeline", "", "syscall|api|seh (default: syscall for servers, seh for browsers)")
		scale    = fs.String("scale", "small", "browser corpus scale: paper or small")
		seed     = fs.Int64("seed", 42, "analysis seed")
		workers  = fs.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
		runs     = fs.Int("runs", 0, "stop after this many analysis runs (0 = loop until interrupted)")
		cacheDir = fs.String("cache-dir", "", "persist per-unit analysis results under this directory and reuse them on later runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cache *crashresist.AnalysisCache
	if *cacheDir != "" {
		c, err := crashresist.OpenAnalysisCache(*cacheDir)
		if err != nil {
			// A broken cache dir costs recomputation, never the monitor.
			fmt.Fprintf(os.Stderr, "crmon: cache disabled: %v\n", err)
		} else {
			cache = c
		}
	}

	isBrowser := *target == "ie" || *target == "firefox"
	pl := *pipeline
	if pl == "" {
		if isBrowser {
			pl = "seh"
		} else {
			pl = "syscall"
		}
	}
	if !isBrowser && pl != "syscall" {
		return fmt.Errorf("%w: pipeline %q needs a browser target", crashresist.ErrBadParams, pl)
	}

	analyze, err := buildAnalysis(*target, pl, *scale, *seed, *workers, cache)
	if err != nil {
		return err
	}

	reg := crashresist.NewMetricsRegistry()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: reg.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "crmon: serving http://%s/metrics (%s pipeline, target %s)\n", ln.Addr(), pl, *target)
	if ready != nil {
		ready(ln.Addr().String())
	}

	for n := 0; *runs == 0 || n < *runs; n++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := analyze(ctx, reg); err != nil {
			if errors.Is(err, context.Canceled) {
				return err
			}
			return fmt.Errorf("run %d: %w", n+1, err)
		}
		select {
		case err := <-serveErr:
			return fmt.Errorf("serve: %w", err)
		default:
		}
	}
	fmt.Fprintf(os.Stderr, "crmon: %d run(s) complete; serving until interrupted\n", *runs)
	<-ctx.Done()
	return ctx.Err()
}

// buildAnalysis resolves the target once and returns a closure running one
// analysis with the registry attached as a sink.
func buildAnalysis(target, pl, scale string, seed int64, workers int, cache *crashresist.AnalysisCache) (func(context.Context, *crashresist.MetricsRegistry) error, error) {
	opts := func(reg *crashresist.MetricsRegistry) []crashresist.Option {
		o := []crashresist.Option{crashresist.WithWorkers(workers), crashresist.WithSink(reg)}
		if cache != nil {
			o = append(o, crashresist.WithCache(cache))
		}
		return o
	}
	if target != "ie" && target != "firefox" {
		srv, err := crashresist.Server(target)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context, reg *crashresist.MetricsRegistry) error {
			_, err := crashresist.AnalyzeServerContext(ctx, srv, seed, opts(reg)...)
			return err
		}, nil
	}

	params := crashresist.SmallBrowserParams()
	if scale == "paper" {
		params = crashresist.PaperBrowserParams()
	}
	var (
		br  *crashresist.BrowserTarget
		err error
	)
	if target == "ie" {
		br, err = crashresist.IE(params)
	} else {
		br, err = crashresist.Firefox(params)
	}
	if err != nil {
		return nil, err
	}
	switch pl {
	case "api":
		return func(ctx context.Context, reg *crashresist.MetricsRegistry) error {
			_, err := crashresist.AnalyzeBrowserAPIsContext(ctx, br, seed, opts(reg)...)
			return err
		}, nil
	case "seh":
		return func(ctx context.Context, reg *crashresist.MetricsRegistry) error {
			_, err := crashresist.AnalyzeBrowserSEHContext(ctx, br, seed, opts(reg)...)
			return err
		}, nil
	default:
		return nil, fmt.Errorf("%w: unknown pipeline %q", crashresist.ErrBadParams, pl)
	}
}
