// Command crasm assembles, inspects, exports and runs CRX binary images:
//
//	crasm -assemble prog.s -o prog.crx  # M64 assembler source → CRX
//	crasm -emit nginx -o nginx.crx      # write a target's image to disk
//	crasm -dump nginx.crx               # headers, sections, scope table
//	crasm -dump nginx.crx -disasm       # plus full disassembly
//	crasm -run prog.crx                 # execute (Windows model), print exit
package main

import (
	"flag"
	"fmt"
	"os"

	"crashresist"
	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crasm:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		assemble = flag.String("assemble", "", "M64 assembler source file to build")
		emit     = flag.String("emit", "", "export a built-in target image: nginx|cherokee|lighttpd|memcached|postgresql")
		out      = flag.String("o", "", "output path for -assemble/-emit")
		dump     = flag.String("dump", "", "CRX file to inspect")
		disasm   = flag.Bool("disasm", false, "include full disassembly in -dump")
		runFile  = flag.String("run", "", "CRX executable to run (Windows model)")
	)
	flag.Parse()

	switch {
	case *assemble != "":
		if *out == "" {
			*out = *assemble + ".crx"
		}
		return assembleFile(*assemble, *out)
	case *emit != "":
		if *out == "" {
			*out = *emit + ".crx"
		}
		return emitTarget(*emit, *out)
	case *dump != "":
		return dumpFile(*dump, *disasm)
	case *runFile != "":
		return runImage(*runFile)
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -assemble, -emit, -dump or -run")
	}
}

func assembleFile(src, out string) error {
	source, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	img, err := asm.Assemble(string(source))
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	blob, err := bin.Marshal(img)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("assembled %s → %s (%d bytes text, %d bytes image)\n",
		src, out, len(img.Text), len(blob))
	return nil
}

func runImage(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	img, err := bin.Unmarshal(blob)
	if err != nil {
		return err
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 1})
	if _, err := p.LoadImage(img); err != nil {
		return err
	}
	if _, err := p.Start(); err != nil {
		return err
	}
	res := p.RunUntilIdle(100_000_000)
	fmt.Printf("state=%v exit=%d instructions=%d faults=%d/%d handled\n",
		res.State, p.ExitCode, p.Stats.Instructions, p.Stats.FaultsHandled, p.Stats.Faults)
	if p.Crash != nil {
		fmt.Printf("crash: %v (%s)\n", p.Crash, p.SymbolAt(p.Crash.Exc.PC))
	}
	return nil
}

func emitTarget(name, out string) error {
	srv, err := crashresist.Server(name)
	if err != nil {
		return err
	}
	blob, err := bin.Marshal(srv.Image)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", out, len(blob))
	return nil
}

func dumpFile(path string, disasm bool) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	img, err := bin.Unmarshal(blob)
	if err != nil {
		return err
	}

	fmt.Printf("%s: %s, entry %#x\n", img.Name, img.Kind, img.Entry)
	fmt.Printf("  text %d bytes, data %d bytes (at %#x), bss %d bytes (at %#x), span %#x\n",
		len(img.Text), len(img.Data), img.DataStart(), img.BSSSize, img.BSSStart(), img.Span())

	if len(img.Imports) > 0 {
		fmt.Printf("imports (%d):\n", len(img.Imports))
		for i, imp := range img.Imports {
			fmt.Printf("  #%-3d %s\n", i, imp)
		}
	}
	if len(img.Exports) > 0 {
		fmt.Printf("exports (%d):\n", len(img.Exports))
		for name, off := range img.Exports {
			fmt.Printf("  %#08x %s\n", off, name)
		}
	}
	if len(img.Symbols) > 0 {
		fmt.Printf("symbols (%d):\n", len(img.Symbols))
		for _, s := range img.Symbols {
			fmt.Printf("  %#08x +%-6d %s\n", s.Offset, s.Size, s.Name)
		}
	}
	if len(img.Scopes) > 0 {
		fmt.Printf("scope table (%d entries):\n", len(img.Scopes))
		for i, s := range img.Scopes {
			filter := fmt.Sprintf("filter@%#x", s.Filter)
			if s.IsCatchAll() {
				filter = "catch-all"
			}
			fn := fmt.Sprintf("%#x", s.Func)
			if sym, ok := img.SymbolAt(s.Func); ok {
				fn = sym.Name
			}
			fmt.Printf("  #%-3d %-20s [%#x, %#x) %-14s target %#x\n",
				i, fn, s.Begin, s.End, filter, s.Target)
		}
	}
	if disasm {
		fmt.Println("disassembly:")
		fmt.Print(isa.Disassemble(img.Text))
	}
	return nil
}
