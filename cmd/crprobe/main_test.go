package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"crashresist"
)

// TestUnknownTarget checks that a bogus -target fails with a one-line error
// wrapping the ErrBadParams sentinel (main turns that into exit code 1).
func TestUnknownTarget(t *testing.T) {
	err := run([]string{"-target", "bogus"})
	if err == nil {
		t.Fatal("run(-target bogus) succeeded, want error")
	}
	if !errors.Is(err, crashresist.ErrBadParams) {
		t.Errorf("error %v does not wrap ErrBadParams", err)
	}
}

// TestBadFlag checks that flag parse failures surface as errors marked for
// the flag package's conventional exit code 2 rather than exiting in run.
func TestBadFlag(t *testing.T) {
	err := run([]string{"-no-such-flag"})
	if err == nil {
		t.Fatal("run(-no-such-flag) succeeded, want error")
	}
	if !errors.Is(err, errFlagParse) {
		t.Errorf("error %v does not wrap errFlagParse", err)
	}
}

// TestSmokeNginx runs the nginx proof of concept end to end: boot, plant a
// hidden region, locate it through the oracle without crashes.
func TestSmokeNginx(t *testing.T) {
	if err := run([]string{"-target", "nginx"}); err != nil {
		t.Fatalf("run(-target nginx): %v", err)
	}
}

// TestBadFormat checks -format validation wraps ErrBadParams.
func TestBadFormat(t *testing.T) {
	err := run([]string{"-format", "xml"})
	if !errors.Is(err, crashresist.ErrBadParams) {
		t.Errorf("run(-format xml) = %v, want ErrBadParams", err)
	}
}

// TestJSONOutput checks -format=json emits only the machine-readable result
// document on stdout, with the located region and the run stats attached.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := runTo([]string{"-target", "nginx", "-format", "json"}, &stdout, &stderr); err != nil {
		t.Fatalf("runTo: %v", err)
	}
	var doc probeDoc
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("stdout not valid JSON: %v\n%s", err, stdout.String())
	}
	if doc.Target != "nginx" || !doc.Located {
		t.Errorf("doc = %+v, want located nginx result", doc)
	}
	if doc.LocatedVA != doc.HiddenVA || doc.HiddenVA == 0 {
		t.Errorf("located %#x, hidden %#x", doc.LocatedVA, doc.HiddenVA)
	}
	if doc.Probes == 0 || doc.Crashes != 0 {
		t.Errorf("probes=%d crashes=%d, want >0 probes and zero crashes", doc.Probes, doc.Crashes)
	}
	if doc.Stats == nil {
		t.Fatal("doc carries no run stats")
	}
	if doc.Stats.Counter(crashresist.CtrProbes) == 0 {
		t.Error("stats counted no probes")
	}
	// The narrative must not pollute the JSON stream.
	if strings.Contains(stdout.String(), "[attack]") {
		t.Error("narrative lines leaked into JSON stdout")
	}
}

// TestJSONOutputCherokee covers the timing-side-channel result shape.
func TestJSONOutputCherokee(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := runTo([]string{"-target", "cherokee", "-format", "json"}, &stdout, &stderr); err != nil {
		t.Fatalf("runTo: %v", err)
	}
	var doc probeDoc
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("stdout not valid JSON: %v", err)
	}
	if doc.BaselineTicks == 0 || doc.MappedTicks == 0 || doc.UnmappedTicks == 0 {
		t.Errorf("timing fields = %d/%d/%d, want all non-zero",
			doc.BaselineTicks, doc.MappedTicks, doc.UnmappedTicks)
	}
	if doc.UnmappedTicks <= doc.MappedTicks {
		t.Errorf("unmapped %d not slower than mapped %d", doc.UnmappedTicks, doc.MappedTicks)
	}
}

// TestMetricsFlag checks -metrics writes the run-stats block to stderr and
// leaves stdout's narrative intact.
func TestMetricsFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := runTo([]string{"-target", "nginx", "-metrics"}, &stdout, &stderr); err != nil {
		t.Fatalf("runTo: %v", err)
	}
	if !strings.Contains(stderr.String(), "run stats") {
		t.Errorf("stderr missing run stats block:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "probes=") {
		t.Errorf("stderr missing probe counter:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "information hiding bypassed") {
		t.Errorf("stdout narrative missing:\n%s", stdout.String())
	}
}

// TestProfileFlag checks -profile replaces the narrative with the probe
// pipeline's boot/scan cost split.
func TestProfileFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := runTo([]string{"-target", "nginx", "-profile", "folded"}, &stdout, &stderr); err != nil {
		t.Fatalf("runTo: %v", err)
	}
	out := stdout.String()
	if strings.Contains(out, "information hiding bypassed") {
		t.Errorf("-profile output still carries the narrative:\n%s", out)
	}
	for _, want := range []string{
		"vm_instructions;probe;boot;nginx;env ",
		"vm_instructions;probe;scan;nginx;",
		"clock_ticks;probe;scan;nginx;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("folded profile missing %q:\n%s", want, out)
		}
	}
	if err := runTo([]string{"-target", "nginx", "-profile", "bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown -profile value accepted")
	}
}
