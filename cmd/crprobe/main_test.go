package main

import (
	"errors"
	"testing"

	"crashresist"
)

// TestUnknownTarget checks that a bogus -target fails with a one-line error
// wrapping the ErrBadParams sentinel (main turns that into exit code 1).
func TestUnknownTarget(t *testing.T) {
	err := run([]string{"-target", "bogus"})
	if err == nil {
		t.Fatal("run(-target bogus) succeeded, want error")
	}
	if !errors.Is(err, crashresist.ErrBadParams) {
		t.Errorf("error %v does not wrap ErrBadParams", err)
	}
}

// TestBadFlag checks that flag parse failures surface as errors marked for
// the flag package's conventional exit code 2 rather than exiting in run.
func TestBadFlag(t *testing.T) {
	err := run([]string{"-no-such-flag"})
	if err == nil {
		t.Fatal("run(-no-such-flag) succeeded, want error")
	}
	if !errors.Is(err, errFlagParse) {
		t.Errorf("error %v does not wrap errFlagParse", err)
	}
}

// TestSmokeNginx runs the nginx proof of concept end to end: boot, plant a
// hidden region, locate it through the oracle without crashes.
func TestSmokeNginx(t *testing.T) {
	if err := run([]string{"-target", "nginx"}); err != nil {
		t.Fatalf("run(-target nginx): %v", err)
	}
}
