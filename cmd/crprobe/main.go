// Command crprobe runs a §VI proof-of-concept exploit end to end: it boots
// the target, plants a reference-less hidden region (the information-hiding
// defense's secret), builds the discovered memory oracle, and locates the
// region without a single crash:
//
//	crprobe -target ie
//	crprobe -target nginx -size 262144
//	crprobe -target cherokee -requests 100   # timing side channel
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"crashresist"
	"crashresist/internal/mem"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		// The flag package already printed usage; keep its conventional
		// exit code so all four CLIs agree on flag errors.
		if errors.Is(err, flag.ErrHelp) || errors.Is(err, errFlagParse) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "crprobe:", err)
		os.Exit(1)
	}
}

// errFlagParse marks a flag-parsing failure, whose message the flag
// package has already written to stderr alongside the usage text.
var errFlagParse = errors.New("flag parse error")

// run is the whole command behind argument parsing, returning an error
// (wrapping the crashresist sentinels where one applies) instead of
// exiting, so tests can drive it directly.
func run(args []string) error {
	fs := flag.NewFlagSet("crprobe", flag.ContinueOnError)
	var (
		target   = fs.String("target", "ie", "ie|firefox|nginx|cherokee")
		size     = fs.Uint64("size", 64*4096, "hidden region size in bytes")
		window   = fs.Uint64("window", 64, "search window in multiples of the region size")
		requests = fs.Int("requests", 50, "cherokee: requests per timing batch")
		seed     = fs.Int64("seed", 42, "ASLR seed")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}

	switch *target {
	case "ie", "firefox":
		return probeBrowser(*target, *size, *window, *seed)
	case "nginx":
		return probeNginx(*size, *window, *seed)
	case "cherokee":
		return probeCherokee(*requests, *seed)
	default:
		return fmt.Errorf("%w: unknown -target %q (want ie, firefox, nginx or cherokee)", crashresist.ErrBadParams, *target)
	}
}

func probeBrowser(name string, size, window uint64, seed int64) error {
	params := crashresist.SmallBrowserParams()
	var (
		br  *crashresist.BrowserTarget
		err error
	)
	if name == "ie" {
		br, err = crashresist.IE(params)
	} else {
		br, err = crashresist.Firefox(params)
	}
	if err != nil {
		return err
	}
	env, err := br.NewEnv(seed)
	if err != nil {
		return err
	}
	if err := env.Start(); err != nil {
		return err
	}
	hidden, err := crashresist.PlantHiddenRegion(env.Proc, size)
	if err != nil {
		return err
	}
	fmt.Printf("[defense] hidden region planted (base withheld from attacker)\n")

	var o crashresist.Oracle
	if name == "ie" {
		o, err = crashresist.NewIEOracle(env)
	} else {
		o, err = crashresist.NewFirefoxOracle(env)
	}
	if err != nil {
		return err
	}
	return locate(o, env, hidden, size, window)
}

func probeNginx(size, window uint64, seed int64) error {
	srv, err := crashresist.Server("nginx")
	if err != nil {
		return err
	}
	env, err := srv.NewEnv(seed)
	if err != nil {
		return err
	}
	hidden, err := crashresist.PlantHiddenRegion(env.Proc, size)
	if err != nil {
		return err
	}
	fmt.Printf("[defense] hidden region planted (base withheld from attacker)\n")
	o := crashresist.NewNginxOracle(env)
	return locateRange(o, hidden, size, window, func() error {
		if !srv.ServiceCheck(env) {
			return fmt.Errorf("nginx no longer serves after probing")
		}
		fmt.Println("[target]  nginx still serves clients after the scan")
		return nil
	})
}

func probeCherokee(requests int, seed int64) error {
	srv, err := crashresist.Server("cherokee")
	if err != nil {
		return err
	}
	env, err := srv.NewEnv(seed)
	if err != nil {
		return err
	}
	o, err := crashresist.NewCherokeeOracle(env, requests)
	if err != nil {
		return err
	}
	fmt.Printf("[oracle]  %s calibrated: baseline %d ticks per %d-request batch\n",
		o.Name(), o.Baseline(), o.Requests)

	mod := env.Proc.Modules()[0]
	mapped := mod.VA(srv.Image.BSSStart())
	fast, err := o.MeasureWith(mapped)
	if err != nil {
		return err
	}
	slow, err := o.MeasureWith(0xdead0000)
	if err != nil {
		return err
	}
	fmt.Printf("[probe]   mapped   %#x: %d ticks (x%.2f)\n", mapped, fast, float64(fast)/float64(o.Baseline()))
	fmt.Printf("[probe]   unmapped %#x: %d ticks (x%.2f)\n", uint64(0xdead0000), slow, float64(slow)/float64(o.Baseline()))
	if env.Proc.Crash != nil {
		return fmt.Errorf("target crashed: %v", env.Proc.Crash)
	}
	fmt.Println("[result]  timing side channel distinguishes mapped from unmapped; zero crashes")
	return nil
}

type envLike interface{ Alive() bool }

func locate(o crashresist.Oracle, env envLike, hidden, size, window uint64) error {
	return locateRange(o, hidden, size, window, func() error {
		if !env.Alive() {
			return fmt.Errorf("target died during the scan")
		}
		return nil
	})
}

func locateRange(o crashresist.Oracle, hidden, size, window uint64, liveness func() error) error {
	s := crashresist.NewScanner(o)
	lo := hidden - window/2*size
	hi := hidden + window/2*size
	if lo < mem.PageSize {
		lo = mem.PageSize
	}
	fmt.Printf("[attack]  scanning [%#x, %#x) with stride %#x via %s\n", lo, hi, size, o.Name())
	base, err := s.LocateHiddenRegion(lo, hi, size)
	if err != nil {
		return fmt.Errorf("scan failed after %d probes: %w", s.Stats.Probes, err)
	}
	fmt.Printf("[attack]  hidden region found at %#x after %d probes (%d mapped hits, %d crashes)\n",
		base, s.Stats.Probes, s.Stats.Mapped, s.Stats.Crashes)
	if base != hidden {
		return fmt.Errorf("located %#x but the defense planted %#x", base, hidden)
	}
	if s.Stats.Crashes != 0 {
		return fmt.Errorf("%d crashes observed — not crash resistant", s.Stats.Crashes)
	}
	fmt.Println("[result]  information hiding bypassed without a single crash")
	return liveness()
}
