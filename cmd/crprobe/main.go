// Command crprobe runs a §VI proof-of-concept exploit end to end: it boots
// the target, plants a reference-less hidden region (the information-hiding
// defense's secret), builds the discovered memory oracle, and locates the
// region without a single crash:
//
//	crprobe -target ie
//	crprobe -target nginx -size 262144
//	crprobe -target cherokee -requests 100   # timing side channel
//	crprobe -target nginx -format json       # machine-readable result
//	crprobe -target ie -metrics              # run stats on stderr
//	crprobe -target ie -profile top          # boot/scan virtual-cost split
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"crashresist"
	"crashresist/cmd/internal/cliflags"
	"crashresist/internal/mem"
	"crashresist/internal/metrics"
	"crashresist/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		// The flag package already printed usage; keep its conventional
		// exit code so all four CLIs agree on flag errors.
		if errors.Is(err, flag.ErrHelp) || errors.Is(err, errFlagParse) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "crprobe:", err)
		os.Exit(1)
	}
}

// errFlagParse marks a flag-parsing failure, whose message the flag
// package has already written to stderr alongside the usage text.
var errFlagParse = errors.New("flag parse error")

// probeDoc is the -format=json result document.
type probeDoc struct {
	Schema string `json:"schema"`
	Target string `json:"target"`
	Oracle string `json:"oracle,omitempty"`
	// Locate-style attacks (ie, firefox, nginx).
	Located   bool   `json:"located,omitempty"`
	HiddenVA  uint64 `json:"hidden_va,omitempty"`
	LocatedVA uint64 `json:"located_va,omitempty"`
	Probes    int    `json:"probes,omitempty"`
	Mapped    int    `json:"mapped,omitempty"`
	Crashes   int    `json:"crashes"`
	// Timing side channel (cherokee).
	BaselineTicks uint64 `json:"baseline_ticks,omitempty"`
	MappedTicks   uint64 `json:"mapped_ticks,omitempty"`
	UnmappedTicks uint64 `json:"unmapped_ticks,omitempty"`
	// Stats is the run's observability record.
	Stats *crashresist.RunStats `json:"stats,omitempty"`
}

// probeRun carries one invocation's narrative stream, result document and
// metrics collector through the probe helpers.
type probeRun struct {
	w    io.Writer // narrative output; io.Discard under -format=json
	doc  probeDoc
	col  *metrics.Collector
	prof *crashresist.Profile // nil unless -profile is set

	// boot marks the target's counters at the moment probing began, so
	// the profiler can split the long-lived process's exact costs into a
	// boot phase and a scan phase (vm.Stats.Minus).
	boot      vm.Stats
	bootClock uint64
	// scanClock is the scan phase's virtual duration, recorded at harvest
	// for the detectability row (-detect).
	scanClock uint64
}

// harvest folds a probed process's VM counters into the run collector.
func (pr *probeRun) harvest(p *vm.Process) {
	st := p.Stats
	pr.col.Add(metrics.CtrInstructions, st.Instructions)
	pr.col.Add(metrics.CtrFaults, st.Faults)
	pr.col.Add(metrics.CtrFaultsUnmapped, st.FaultsUnmapped)
	pr.col.Add(metrics.CtrFaultsHandled, st.FaultsHandled)
	pr.col.Add(metrics.CtrFaultsInjected, st.FaultsInjected)
	pr.col.Add(metrics.CtrSyscalls, st.Syscalls)
	pr.col.Add(metrics.CtrAPICalls, st.APICalls)
	pr.scanClock = p.Clock - pr.bootClock
	pr.profilePhases(p)
}

// markBoot records the boundary between the target's boot and the scan.
func (pr *probeRun) markBoot(p *vm.Process) {
	pr.boot = p.Stats
	pr.bootClock = p.Clock
}

// profilePhases charges the probed process's exact costs to the probe
// pipeline: everything up to markBoot under the boot stage, the rest under
// the scan stage, with the oracle (when one was built) as the scan unit.
func (pr *probeRun) profilePhases(p *vm.Process) {
	if pr.prof == nil {
		return
	}
	unit := pr.doc.Oracle
	if unit == "" {
		unit = "env"
	}
	add := func(stage, unit string, k crashresist.ProfileKind, n uint64) {
		pr.prof.Add(crashresist.ProfileStack{
			Pipeline: "probe", Stage: stage, Target: pr.doc.Target, Unit: unit,
		}, k, n)
	}
	add("boot", "env", crashresist.ProfVMInstructions, pr.boot.Instructions)
	add("boot", "env", crashresist.ProfClockTicks, pr.bootClock)
	scan := p.Stats.Minus(pr.boot)
	add("scan", unit, crashresist.ProfVMInstructions, scan.Instructions)
	add("scan", unit, crashresist.ProfClockTicks, p.Clock-pr.bootClock)
}

// run is the whole command behind argument parsing, returning an error
// (wrapping the crashresist sentinels where one applies) instead of
// exiting, so tests can drive it directly.
func run(args []string) error {
	return runTo(args, os.Stdout, os.Stderr)
}

// runTo is run with explicit output streams for the CLI smoke tests.
func runTo(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crprobe", flag.ContinueOnError)
	var (
		an  cliflags.Analysis
		out cliflags.Output
		prf cliflags.Profiling
		det cliflags.Detection
	)
	var (
		target   = fs.String("target", "ie", "ie|firefox|nginx|cherokee")
		size     = fs.Uint64("size", 64*4096, "hidden region size in bytes")
		window   = fs.Uint64("window", 64, "search window in multiples of the region size")
		requests = fs.Int("requests", 50, "cherokee: requests per timing batch")
	)
	an.RegisterScale(fs, "small")
	an.RegisterSeed(fs)
	out.Register(fs)
	prf.Register(fs)
	det.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errFlagParse, err)
	}
	if err := out.Validate(); err != nil {
		return err
	}
	if err := prf.Validate(); err != nil {
		return err
	}
	if err := det.Validate(); err != nil {
		return err
	}

	pr := &probeRun{w: stdout, col: metrics.NewCollector("probe", *target, 1), prof: prf.Profile()}
	if prf.Enabled() {
		// The profile replaces the narrative/result on stdout.
		pr.w = io.Discard
	}
	if out.JSON() {
		pr.w = io.Discard
	}
	pr.doc.Schema = crashresist.SchemaV1
	pr.doc.Target = *target

	var err error
	switch *target {
	case "ie", "firefox":
		err = pr.probeBrowser(*target, an.Scale, *size, *window, an.Seed)
	case "nginx":
		err = pr.probeNginx(*size, *window, an.Seed)
	case "cherokee":
		err = pr.probeCherokee(*requests, an.Seed)
	default:
		return fmt.Errorf("%w: unknown -target %q (want ie, firefox, nginx or cherokee)", crashresist.ErrBadParams, *target)
	}
	if err != nil {
		return err
	}

	stats := pr.col.Snapshot()
	out.EmitStats(stderr, stats)
	if det.Enabled() && pr.doc.Probes > 0 {
		// The attack campaign as one detectability row: every unmapped
		// probe is a defender-visible fault, over the scan's virtual time.
		det.Detect().AddPrimitive("probe", *target, pr.doc.Oracle,
			uint64(pr.doc.Probes), uint64(pr.doc.Probes-pr.doc.Mapped), pr.scanClock, nil)
	}
	if prf.Enabled() {
		// The profile replaces the narrative/result on stdout.
		return prf.Emit(stdout)
	}
	if out.JSON() {
		pr.doc.Stats = stats
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&pr.doc); err != nil {
			return err
		}
		return det.Emit(stdout)
	}
	return det.Emit(stdout)
}

func (pr *probeRun) probeBrowser(name, scale string, size, window uint64, seed int64) error {
	params, err := crashresist.BrowserParamsForScale(scale)
	if err != nil {
		return fmt.Errorf("bad -scale: %w", err)
	}
	var br *crashresist.BrowserTarget
	if name == "ie" {
		br, err = crashresist.IE(params)
	} else {
		br, err = crashresist.Firefox(params)
	}
	if err != nil {
		return err
	}
	env, err := br.NewEnv(seed)
	if err != nil {
		return err
	}
	if err := env.Start(); err != nil {
		return err
	}
	pr.markBoot(env.Proc)
	defer pr.harvest(env.Proc)
	hidden, err := crashresist.PlantHiddenRegion(env.Proc, size)
	if err != nil {
		return err
	}
	fmt.Fprintf(pr.w, "[defense] hidden region planted (base withheld from attacker)\n")

	var o crashresist.Oracle
	if name == "ie" {
		o, err = crashresist.NewIEOracle(env)
	} else {
		o, err = crashresist.NewFirefoxOracle(env)
	}
	if err != nil {
		return err
	}
	return pr.locate(o, env, hidden, size, window)
}

func (pr *probeRun) probeNginx(size, window uint64, seed int64) error {
	srv, err := crashresist.Server("nginx")
	if err != nil {
		return err
	}
	env, err := srv.NewEnv(seed)
	if err != nil {
		return err
	}
	pr.markBoot(env.Proc)
	defer pr.harvest(env.Proc)
	hidden, err := crashresist.PlantHiddenRegion(env.Proc, size)
	if err != nil {
		return err
	}
	fmt.Fprintf(pr.w, "[defense] hidden region planted (base withheld from attacker)\n")
	o := crashresist.NewNginxOracle(env)
	return pr.locateRange(o, hidden, size, window, func() error {
		if !srv.ServiceCheck(env) {
			return fmt.Errorf("nginx no longer serves after probing")
		}
		fmt.Fprintln(pr.w, "[target]  nginx still serves clients after the scan")
		return nil
	})
}

func (pr *probeRun) probeCherokee(requests int, seed int64) error {
	srv, err := crashresist.Server("cherokee")
	if err != nil {
		return err
	}
	env, err := srv.NewEnv(seed)
	if err != nil {
		return err
	}
	pr.markBoot(env.Proc)
	defer pr.harvest(env.Proc)
	o, err := crashresist.NewCherokeeOracle(env, requests)
	if err != nil {
		return err
	}
	fmt.Fprintf(pr.w, "[oracle]  %s calibrated: baseline %d ticks per %d-request batch\n",
		o.Name(), o.Baseline(), o.Requests)

	mod := env.Proc.Modules()[0]
	mapped := mod.VA(srv.Image.BSSStart())
	fast, err := o.MeasureWith(mapped)
	if err != nil {
		return err
	}
	slow, err := o.MeasureWith(0xdead0000)
	if err != nil {
		return err
	}
	fmt.Fprintf(pr.w, "[probe]   mapped   %#x: %d ticks (x%.2f)\n", mapped, fast, float64(fast)/float64(o.Baseline()))
	fmt.Fprintf(pr.w, "[probe]   unmapped %#x: %d ticks (x%.2f)\n", uint64(0xdead0000), slow, float64(slow)/float64(o.Baseline()))
	if env.Proc.Crash != nil {
		return fmt.Errorf("target crashed: %v", env.Proc.Crash)
	}
	fmt.Fprintln(pr.w, "[result]  timing side channel distinguishes mapped from unmapped; zero crashes")
	pr.doc.Oracle = o.Name()
	pr.doc.BaselineTicks = o.Baseline()
	pr.doc.MappedTicks = fast
	pr.doc.UnmappedTicks = slow
	return nil
}

type envLike interface{ Alive() bool }

func (pr *probeRun) locate(o crashresist.Oracle, env envLike, hidden, size, window uint64) error {
	return pr.locateRange(o, hidden, size, window, func() error {
		if !env.Alive() {
			return fmt.Errorf("target died during the scan")
		}
		return nil
	})
}

func (pr *probeRun) locateRange(o crashresist.Oracle, hidden, size, window uint64, liveness func() error) error {
	s := crashresist.NewScanner(o)
	s.Metrics = pr.col
	lo := hidden - window/2*size
	hi := hidden + window/2*size
	if lo < mem.PageSize {
		lo = mem.PageSize
	}
	fmt.Fprintf(pr.w, "[attack]  scanning [%#x, %#x) with stride %#x via %s\n", lo, hi, size, o.Name())
	base, err := s.LocateHiddenRegion(lo, hi, size)
	pr.doc.Oracle = o.Name()
	pr.doc.HiddenVA = hidden
	pr.doc.Probes = s.Stats.Probes
	pr.doc.Mapped = s.Stats.Mapped
	pr.doc.Crashes = s.Stats.Crashes
	if err != nil {
		return fmt.Errorf("scan failed after %d probes: %w", s.Stats.Probes, err)
	}
	pr.doc.LocatedVA = base
	fmt.Fprintf(pr.w, "[attack]  hidden region found at %#x after %d probes (%d mapped hits, %d crashes)\n",
		base, s.Stats.Probes, s.Stats.Mapped, s.Stats.Crashes)
	if base != hidden {
		return fmt.Errorf("located %#x but the defense planted %#x", base, hidden)
	}
	if s.Stats.Crashes != 0 {
		return fmt.Errorf("%d crashes observed — not crash resistant", s.Stats.Crashes)
	}
	pr.doc.Located = true
	fmt.Fprintln(pr.w, "[result]  information hiding bypassed without a single crash")
	return liveness()
}
