package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runString drives the whole command and returns stdout, stderr and the
// error.
func runString(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

func TestRunServerText(t *testing.T) {
	out, _, err := runString(t, "-target", "nginx")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "syscall pipeline report for nginx") {
		t.Errorf("missing report header:\n%s", out)
	}
	if !strings.Contains(out, "usable crash-resistant primitives") {
		t.Errorf("missing usable summary:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if _, _, err := runString(t, "-target", "nginx", "-pipeline", "seh"); err == nil {
		t.Error("browser pipeline on a server target should fail")
	}
	if _, _, err := runString(t, "-target", "nginx", "-format", "xml"); err == nil {
		t.Error("unknown format should fail")
	}
}

// TestCacheDirSmoke covers the -cache-dir lifecycles: a fresh directory
// populates, a reused directory serves hits, and an unusable path warns
// on stderr while the analysis still succeeds — output identical in all
// three cases.
func TestCacheDirSmoke(t *testing.T) {
	baseline, _, err := runString(t, "-target", "nginx")
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fresh, stderr, err := runString(t, "-target", "nginx", "-cache-dir", dir)
	if err != nil {
		t.Fatalf("fresh cache dir: %v", err)
	}
	if fresh != baseline {
		t.Error("fresh-cache output differs from uncached output")
	}
	if strings.Contains(stderr, "cache disabled") {
		t.Errorf("fresh cache dir warned:\n%s", stderr)
	}
	var entries int
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".cce") {
			entries++
		}
		return nil
	})
	if entries == 0 {
		t.Error("fresh run published no cache entries")
	}

	reused, _, err := runString(t, "-target", "nginx", "-cache-dir", dir)
	if err != nil {
		t.Fatalf("reused cache dir: %v", err)
	}
	if reused != baseline {
		t.Error("warm-cache output differs from uncached output")
	}

	occupied := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	degraded, stderr, err := runString(t, "-target", "nginx", "-cache-dir", filepath.Join(occupied, "cache"))
	if err != nil {
		t.Fatalf("unusable cache dir must degrade, got: %v", err)
	}
	if !strings.Contains(stderr, "cache disabled") {
		t.Errorf("unusable cache dir did not warn:\n%s", stderr)
	}
	if degraded != baseline {
		t.Error("degraded-cache output differs from uncached output")
	}
}

// TestCacheDirBrowserPipelines runs the seh and api pipelines twice
// against one cache dir, asserting byte-identical stdout.
func TestCacheDirBrowserPipelines(t *testing.T) {
	for _, pl := range []string{"seh", "api"} {
		pl := pl
		t.Run(pl, func(t *testing.T) {
			dir := t.TempDir()
			cold, _, err := runString(t, "-target", "ie", "-pipeline", pl, "-cache-dir", dir)
			if err != nil {
				t.Fatal(err)
			}
			warm, _, err := runString(t, "-target", "ie", "-pipeline", pl, "-cache-dir", dir)
			if err != nil {
				t.Fatal(err)
			}
			if warm != cold {
				t.Error("warm run output differs from cold run output")
			}
		})
	}
}

// TestProfileFlag checks -profile replaces the report on stdout with the
// selected rendering, byte-stable across repeated identical runs.
func TestProfileFlag(t *testing.T) {
	folded1, _, err := runString(t, "-target", "ie", "-pipeline", "seh", "-profile", "folded")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(folded1, "unique exception filters") {
		t.Errorf("-profile output still carries the report:\n%.300s", folded1)
	}
	if !strings.Contains(folded1, "symex_steps;seh;symex;iexplore;filter:") {
		t.Errorf("folded output missing symex verdict-class stacks:\n%.300s", folded1)
	}
	folded2, _, err := runString(t, "-target", "ie", "-pipeline", "seh", "-profile", "folded")
	if err != nil {
		t.Fatal(err)
	}
	if folded1 != folded2 {
		t.Error("identical runs produced different folded profiles")
	}

	top, _, err := runString(t, "-target", "ie", "-pipeline", "seh", "-profile", "top")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(top, "== symex_steps: total") {
		t.Errorf("-profile top missing ranked sections:\n%.300s", top)
	}

	if _, _, err := runString(t, "-target", "ie", "-profile", "bogus"); err == nil {
		t.Error("unknown -profile value accepted")
	}
}
