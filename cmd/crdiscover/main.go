// Command crdiscover runs one discovery pipeline against one target and
// prints the full report:
//
//	crdiscover -target nginx                 # syscall pipeline
//	crdiscover -target ie -pipeline api      # §V-B funnel
//	crdiscover -target firefox -pipeline seh # Tables II/III inventory
//	crdiscover -target nginx -format json    # machine-readable report
//	crdiscover -target ie -metrics           # run stats on stderr
//	crdiscover -target ie -trace t.json      # Chrome trace-event export
//	crdiscover -target ie -serve :9090       # live /metrics, /profile,
//	                                         # /trace.json, /debug/vars,
//	                                         # /debug/pprof
//	crdiscover -target nginx -cache-dir ~/.cache/crashresist
//	crdiscover -target ie -profile top       # ranked virtual-cost hot spots
//	crdiscover -target ie -profile folded    # flamegraph.pl input
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"crashresist"
	"crashresist/cmd/internal/cliflags"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "crdiscover:", err)
		os.Exit(1)
	}
}

// run is the whole command behind process setup: it parses args with its
// own FlagSet and writes the report to stdout and diagnostics to stderr,
// so tests can drive it end to end without exec'ing the binary.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crdiscover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		an  cliflags.Analysis
		out cliflags.Output
		prf cliflags.Profiling
		det cliflags.Detection
	)
	var (
		target    = fs.String("target", "nginx", "nginx|cherokee|lighttpd|memcached|postgresql|ie|firefox|all|gen|gen-<i>")
		pipeline  = fs.String("pipeline", "", "syscall|api|seh (default: syscall for servers, seh for browsers)")
		serveAddr = fs.String("serve", "", "serve /metrics, /profile, /trace.json, /debug/vars and /debug/pprof on this address, and keep serving after the analysis until interrupted")
	)
	an.RegisterScale(fs, "small")
	an.RegisterSeed(fs)
	an.RegisterPool(fs)
	an.RegisterChaos(fs)
	out.Register(fs)
	prf.Register(fs)
	det.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := out.Validate(); err != nil {
		return err
	}
	if err := prf.Validate(); err != nil {
		return err
	}
	if err := det.Validate(); err != nil {
		return err
	}

	opts := an.Options(stderr, "crdiscover")
	opts = append(opts, prf.Options()...)
	opts = append(opts, det.Options()...)

	// Trace export and live serving both ride a metrics registry sink. The
	// listener binds before the analysis so scrapes work while it runs.
	var reg *crashresist.MetricsRegistry
	if an.Trace != "" || *serveAddr != "" {
		reg = crashresist.NewMetricsRegistry()
		opts = append(opts, crashresist.WithSink(reg))
	}
	if *serveAddr != "" {
		// Serve the live profile alongside /metrics. With -profile unset
		// /profile serves an empty document; with it set, scrapes see
		// charges accumulate while the analysis runs.
		reg.SetProfile(prf.Profile())
	}
	finish := func() error { return finishObservability(stderr, reg, an.Trace, *serveAddr != "") }
	if *serveAddr != "" {
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "crdiscover: serving http://%s/metrics\n", ln.Addr())
		go func() { _ = http.Serve(ln, reg.Handler()) }()
	}

	res, err := crashresist.Run(context.Background(), crashresist.Request{
		Pipeline: *pipeline,
		Target:   *target,
		Scale:    an.Scale,
		Seed:     an.Seed,
		Options:  opts,
	})
	if err != nil {
		return err
	}
	for _, st := range res.RunStats() {
		out.EmitStats(stderr, st)
	}

	if prf.Enabled() {
		// The profile replaces the report on stdout, so
		// `crdiscover -profile=folded | flamegraph.pl` pipes cleanly.
		if err := prf.Emit(stdout); err != nil {
			return err
		}
		return finish()
	}
	if out.JSON() {
		if err := printJSON(stdout, res.Report()); err != nil {
			return err
		}
		if err := det.Emit(stdout); err != nil {
			return err
		}
		return finish()
	}
	switch {
	case res.Syscall != nil:
		printServerReport(stdout, res.Syscall)
	case res.Servers != nil:
		for i, rep := range res.Servers {
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			printServerReport(stdout, rep)
		}
	case res.Funnel != nil:
		fmt.Fprintln(stdout, crashresist.FormatFunnel(res.Funnel))
		printDegraded(stdout, res.Funnel.Degraded)
	case res.SEH != nil:
		printSEHReport(stdout, res.SEH)
	}
	// The detectability report appends after the report bytes, which stay
	// identical with detection on or off.
	if err := det.Emit(stdout); err != nil {
		return err
	}
	return finish()
}

// finishObservability runs after a successful analysis: it writes the
// requested Chrome trace from the registry's recorded runs and, in -serve
// mode, blocks until the process is interrupted so the endpoints stay up.
func finishObservability(stderr io.Writer, reg *crashresist.MetricsRegistry, traceFile string, serving bool) error {
	if reg == nil {
		return nil
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := crashresist.WriteChromeTrace(f, reg.Runs()...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "crdiscover: wrote Chrome trace to %s\n", traceFile)
	}
	if serving {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Fprintln(stderr, "crdiscover: analysis complete; serving until interrupted")
		<-ctx.Done()
	}
	return nil
}

// printServerReport renders one syscall-pipeline report as text.
func printServerReport(stdout io.Writer, rep *crashresist.SyscallReport) {
	fmt.Fprintf(stdout, "syscall pipeline report for %s\n\n", rep.Server)
	fmt.Fprintf(stdout, "%-12s %-18s\n", "syscall", "status")
	for _, sc := range crashresist.TableISyscalls() {
		fmt.Fprintf(stdout, "%-12s %-18s\n", sc, rep.Status[sc])
	}
	fmt.Fprintf(stdout, "\nvalidated candidates (%d):\n", len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Fprintf(stdout, "  %-12s arg%d prov=%#x taint=%#x seen=%d → %s\n     %s\n",
			f.Syscall, f.ArgIndex, f.Provenance, f.TaintMask, f.Count, f.Status, f.Detail)
	}
	fmt.Fprintf(stdout, "\nusable crash-resistant primitives: %v\n", rep.Usable())
	printDegraded(stdout, rep.Degraded)
}

// printSEHReport renders the Tables II/III inventory as text.
func printSEHReport(stdout io.Writer, rep *crashresist.SEHReport) {
	fmt.Fprintln(stdout, crashresist.FormatTableII(rep, crashresist.NamedDLLs()))
	fmt.Fprintln(stdout, crashresist.FormatTableIII(rep, crashresist.NamedDLLs()))
	fmt.Fprintf(stdout, "on-path candidates (%d):\n", len(rep.Candidates))
	for _, c := range rep.Candidates {
		kind := "filter"
		if c.CatchAll {
			kind = "catch-all"
		}
		fmt.Fprintf(stdout, "  %-16s scope %-4d %-24s %-9s hits %d\n",
			c.Module, c.Scope, c.FuncName, kind, c.Hits)
	}
	if len(rep.VEHFindings) > 0 {
		fmt.Fprintf(stdout, "\nvectored-handler registrations (static scan, §VII-A extension):\n")
		for _, f := range rep.VEHFindings {
			fmt.Fprintf(stdout, "  %s\n", f)
		}
	}
	pw := crashresist.PriorWork(rep)
	fmt.Fprintf(stdout, "\nprior work: IE catch-all=%v, post-update-manual=%v, VEH-missed=%v, VEH-found-by-extension=%v\n",
		pw.IECatchAllFound, pw.IEPostUpdateNeedsManual, pw.FirefoxVEHMissed, pw.FirefoxVEHFoundByExtension)
	printDegraded(stdout, rep.Degraded)
}

// printDegraded lists jobs dropped by graceful degradation. Prints nothing
// for a clean run, so injection-off output is unchanged.
func printDegraded(w io.Writer, degraded []crashresist.Degraded) {
	if len(degraded) == 0 {
		return
	}
	fmt.Fprintf(w, "\ndegraded jobs (%d):\n", len(degraded))
	for _, d := range degraded {
		fmt.Fprintf(w, "  %-10s %-24s attempts=%d  %s\n", d.Stage, d.Key, d.Attempts, d.Err)
	}
}

// printJSON writes an indented JSON report to w.
func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
