// Command crdiscover runs one discovery pipeline against one target and
// prints the full report:
//
//	crdiscover -target nginx                 # syscall pipeline
//	crdiscover -target ie -pipeline api      # §V-B funnel
//	crdiscover -target firefox -pipeline seh # Tables II/III inventory
package main

import (
	"flag"
	"fmt"
	"os"

	"crashresist"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crdiscover:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target   = flag.String("target", "nginx", "nginx|cherokee|lighttpd|memcached|postgresql|ie|firefox")
		pipeline = flag.String("pipeline", "", "syscall|api|seh (default: syscall for servers, seh for browsers)")
		scale    = flag.String("scale", "small", "browser corpus scale: paper or small")
		seed     = flag.Int64("seed", 42, "analysis seed")
		workers  = flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	isBrowser := *target == "ie" || *target == "firefox"
	pl := *pipeline
	if pl == "" {
		if isBrowser {
			pl = "seh"
		} else {
			pl = "syscall"
		}
	}

	if !isBrowser {
		if pl != "syscall" {
			return fmt.Errorf("pipeline %q needs a browser target", pl)
		}
		return runServer(*target, *seed, *workers)
	}

	params := crashresist.SmallBrowserParams()
	if *scale == "paper" {
		params = crashresist.PaperBrowserParams()
	}
	var (
		br  *crashresist.BrowserTarget
		err error
	)
	if *target == "ie" {
		br, err = crashresist.IE(params)
	} else {
		br, err = crashresist.Firefox(params)
	}
	if err != nil {
		return err
	}

	switch pl {
	case "api":
		rep, err := crashresist.AnalyzeBrowserAPIs(br, *seed, crashresist.WithWorkers(*workers))
		if err != nil {
			return err
		}
		fmt.Println(crashresist.FormatFunnel(rep))
		return nil
	case "seh":
		rep, err := crashresist.AnalyzeBrowserSEH(br, *seed, crashresist.WithWorkers(*workers))
		if err != nil {
			return err
		}
		fmt.Println(crashresist.FormatTableII(rep, crashresist.NamedDLLs()))
		fmt.Println(crashresist.FormatTableIII(rep, crashresist.NamedDLLs()))
		fmt.Printf("on-path candidates (%d):\n", len(rep.Candidates))
		for _, c := range rep.Candidates {
			kind := "filter"
			if c.CatchAll {
				kind = "catch-all"
			}
			fmt.Printf("  %-16s scope %-4d %-24s %-9s hits %d\n",
				c.Module, c.Scope, c.FuncName, kind, c.Hits)
			if len(rep.Candidates) > 40 && c.Hits > 0 {
				// keep terminal output bounded at paper scale
			}
		}
		if len(rep.VEHFindings) > 0 {
			fmt.Printf("\nvectored-handler registrations (static scan, §VII-A extension):\n")
			for _, f := range rep.VEHFindings {
				fmt.Printf("  %s\n", f)
			}
		}
		pw := crashresist.PriorWork(rep)
		fmt.Printf("\nprior work: IE catch-all=%v, post-update-manual=%v, VEH-missed=%v, VEH-found-by-extension=%v\n",
			pw.IECatchAllFound, pw.IEPostUpdateNeedsManual, pw.FirefoxVEHMissed, pw.FirefoxVEHFoundByExtension)
		return nil
	default:
		return fmt.Errorf("unknown pipeline %q", pl)
	}
}

func runServer(name string, seed int64, workers int) error {
	srv, err := crashresist.Server(name)
	if err != nil {
		return err
	}
	rep, err := crashresist.AnalyzeServer(srv, seed, crashresist.WithWorkers(workers))
	if err != nil {
		return err
	}
	fmt.Printf("syscall pipeline report for %s\n\n", rep.Server)
	fmt.Printf("%-12s %-18s\n", "syscall", "status")
	for _, sc := range crashresist.TableISyscalls() {
		fmt.Printf("%-12s %-18s\n", sc, rep.Status[sc])
	}
	fmt.Printf("\nvalidated candidates (%d):\n", len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Printf("  %-12s arg%d prov=%#x taint=%#x seen=%d → %s\n     %s\n",
			f.Syscall, f.ArgIndex, f.Provenance, f.TaintMask, f.Count, f.Status, f.Detail)
	}
	fmt.Printf("\nusable crash-resistant primitives: %v\n", rep.Usable())
	return nil
}
