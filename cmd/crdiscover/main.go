// Command crdiscover runs one discovery pipeline against one target and
// prints the full report:
//
//	crdiscover -target nginx                 # syscall pipeline
//	crdiscover -target ie -pipeline api      # §V-B funnel
//	crdiscover -target firefox -pipeline seh # Tables II/III inventory
//	crdiscover -target nginx -format json    # machine-readable report
//	crdiscover -target ie -metrics           # run stats on stderr
//	crdiscover -target ie -trace t.json      # Chrome trace-event export
//	crdiscover -target ie -serve :9090       # live /metrics, /trace.json,
//	                                         # /debug/vars, /debug/pprof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"crashresist"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crdiscover:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target      = flag.String("target", "nginx", "nginx|cherokee|lighttpd|memcached|postgresql|ie|firefox")
		pipeline    = flag.String("pipeline", "", "syscall|api|seh (default: syscall for servers, seh for browsers)")
		scale       = flag.String("scale", "small", "browser corpus scale: paper or small")
		seed        = flag.Int64("seed", 42, "analysis seed")
		workers     = flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
		format      = flag.String("format", "text", "output format: text or json")
		showMetrics = flag.Bool("metrics", false, "print run stats to stderr")
		chaosSeed   = flag.Int64("chaos-seed", 0, "inject deterministic faults from this seed, with retry and graceful degradation (0 = off)")
		traceFile   = flag.String("trace", "", "write the run's span tree to this file as Chrome trace-event JSON")
		serveAddr   = flag.String("serve", "", "serve /metrics, /trace.json, /debug/vars and /debug/pprof on this address, and keep serving after the analysis until interrupted")
	)
	flag.Parse()

	opts := []crashresist.Option{crashresist.WithWorkers(*workers)}
	if *chaosSeed != 0 {
		opts = append(opts,
			crashresist.WithFaultPlan(crashresist.DefaultFaultPlan(*chaosSeed)),
			crashresist.WithRetry(2))
	}

	// Trace export and live serving both ride a metrics registry sink. The
	// listener binds before the analysis so scrapes work while it runs.
	var reg *crashresist.MetricsRegistry
	if *traceFile != "" || *serveAddr != "" {
		reg = crashresist.NewMetricsRegistry()
		opts = append(opts, crashresist.WithSink(reg))
	}
	finish := func() error { return finishObservability(reg, *traceFile, *serveAddr != "") }
	if *serveAddr != "" {
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "crdiscover: serving http://%s/metrics\n", ln.Addr())
		go func() { _ = http.Serve(ln, reg.Handler()) }()
	}

	switch *format {
	case "text", "json":
	default:
		return fmt.Errorf("%w: unknown -format %q (want text or json)", crashresist.ErrBadParams, *format)
	}

	isBrowser := *target == "ie" || *target == "firefox"
	pl := *pipeline
	if pl == "" {
		if isBrowser {
			pl = "seh"
		} else {
			pl = "syscall"
		}
	}

	if !isBrowser {
		if pl != "syscall" {
			return fmt.Errorf("%w: pipeline %q needs a browser target", crashresist.ErrBadParams, pl)
		}
		if err := runServer(*target, *seed, opts, *format, *showMetrics); err != nil {
			return err
		}
		return finish()
	}

	params := crashresist.SmallBrowserParams()
	if *scale == "paper" {
		params = crashresist.PaperBrowserParams()
	}
	var (
		br  *crashresist.BrowserTarget
		err error
	)
	if *target == "ie" {
		br, err = crashresist.IE(params)
	} else {
		br, err = crashresist.Firefox(params)
	}
	if err != nil {
		return err
	}

	switch pl {
	case "api":
		rep, err := crashresist.AnalyzeBrowserAPIs(br, *seed, opts...)
		if err != nil {
			return err
		}
		emitMetrics(rep.Stats, *showMetrics)
		if *format == "json" {
			if err := printJSON(rep); err != nil {
				return err
			}
			return finish()
		}
		fmt.Println(crashresist.FormatFunnel(rep))
		printDegraded(rep.Degraded)
		return finish()
	case "seh":
		rep, err := crashresist.AnalyzeBrowserSEH(br, *seed, opts...)
		if err != nil {
			return err
		}
		emitMetrics(rep.Stats, *showMetrics)
		if *format == "json" {
			if err := printJSON(rep); err != nil {
				return err
			}
			return finish()
		}
		fmt.Println(crashresist.FormatTableII(rep, crashresist.NamedDLLs()))
		fmt.Println(crashresist.FormatTableIII(rep, crashresist.NamedDLLs()))
		fmt.Printf("on-path candidates (%d):\n", len(rep.Candidates))
		for _, c := range rep.Candidates {
			kind := "filter"
			if c.CatchAll {
				kind = "catch-all"
			}
			fmt.Printf("  %-16s scope %-4d %-24s %-9s hits %d\n",
				c.Module, c.Scope, c.FuncName, kind, c.Hits)
			if len(rep.Candidates) > 40 && c.Hits > 0 {
				// keep terminal output bounded at paper scale
			}
		}
		if len(rep.VEHFindings) > 0 {
			fmt.Printf("\nvectored-handler registrations (static scan, §VII-A extension):\n")
			for _, f := range rep.VEHFindings {
				fmt.Printf("  %s\n", f)
			}
		}
		pw := crashresist.PriorWork(rep)
		fmt.Printf("\nprior work: IE catch-all=%v, post-update-manual=%v, VEH-missed=%v, VEH-found-by-extension=%v\n",
			pw.IECatchAllFound, pw.IEPostUpdateNeedsManual, pw.FirefoxVEHMissed, pw.FirefoxVEHFoundByExtension)
		printDegraded(rep.Degraded)
		return finish()
	default:
		return fmt.Errorf("%w: unknown pipeline %q", crashresist.ErrBadParams, pl)
	}
}

// finishObservability runs after a successful analysis: it writes the
// requested Chrome trace from the registry's recorded runs and, in -serve
// mode, blocks until the process is interrupted so the endpoints stay up.
func finishObservability(reg *crashresist.MetricsRegistry, traceFile string, serving bool) error {
	if reg == nil {
		return nil
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := crashresist.WriteChromeTrace(f, reg.Runs()...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "crdiscover: wrote Chrome trace to %s\n", traceFile)
	}
	if serving {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Fprintln(os.Stderr, "crdiscover: analysis complete; serving until interrupted")
		<-ctx.Done()
	}
	return nil
}

func runServer(name string, seed int64, opts []crashresist.Option, format string, showMetrics bool) error {
	srv, err := crashresist.Server(name)
	if err != nil {
		return err
	}
	rep, err := crashresist.AnalyzeServer(srv, seed, opts...)
	if err != nil {
		return err
	}
	emitMetrics(rep.Stats, showMetrics)
	if format == "json" {
		return printJSON(rep)
	}
	fmt.Printf("syscall pipeline report for %s\n\n", rep.Server)
	fmt.Printf("%-12s %-18s\n", "syscall", "status")
	for _, sc := range crashresist.TableISyscalls() {
		fmt.Printf("%-12s %-18s\n", sc, rep.Status[sc])
	}
	fmt.Printf("\nvalidated candidates (%d):\n", len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Printf("  %-12s arg%d prov=%#x taint=%#x seen=%d → %s\n     %s\n",
			f.Syscall, f.ArgIndex, f.Provenance, f.TaintMask, f.Count, f.Status, f.Detail)
	}
	fmt.Printf("\nusable crash-resistant primitives: %v\n", rep.Usable())
	printDegraded(rep.Degraded)
	return nil
}

// printDegraded lists jobs dropped by graceful degradation. Prints nothing
// for a clean run, so injection-off output is unchanged.
func printDegraded(degraded []crashresist.Degraded) {
	if len(degraded) == 0 {
		return
	}
	fmt.Printf("\ndegraded jobs (%d):\n", len(degraded))
	for _, d := range degraded {
		fmt.Printf("  %-10s %-24s attempts=%d  %s\n", d.Stage, d.Key, d.Attempts, d.Err)
	}
}

// printJSON writes an indented JSON report to stdout.
func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// emitMetrics writes run stats to stderr when requested.
func emitMetrics(st *crashresist.RunStats, show bool) {
	if show && st != nil {
		fmt.Fprint(os.Stderr, st.Format())
	}
}
