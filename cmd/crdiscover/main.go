// Command crdiscover runs one discovery pipeline against one target and
// prints the full report:
//
//	crdiscover -target nginx                 # syscall pipeline
//	crdiscover -target ie -pipeline api      # §V-B funnel
//	crdiscover -target firefox -pipeline seh # Tables II/III inventory
//	crdiscover -target nginx -format json    # machine-readable report
//	crdiscover -target ie -metrics           # run stats on stderr
//	crdiscover -target ie -trace t.json      # Chrome trace-event export
//	crdiscover -target ie -serve :9090       # live /metrics, /trace.json,
//	                                         # /debug/vars, /debug/pprof
//	crdiscover -target nginx -cache-dir ~/.cache/crashresist
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"crashresist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "crdiscover:", err)
		os.Exit(1)
	}
}

// run is the whole command behind process setup: it parses args with its
// own FlagSet and writes the report to stdout and diagnostics to stderr,
// so tests can drive it end to end without exec'ing the binary.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crdiscover", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target      = fs.String("target", "nginx", "nginx|cherokee|lighttpd|memcached|postgresql|ie|firefox")
		pipeline    = fs.String("pipeline", "", "syscall|api|seh (default: syscall for servers, seh for browsers)")
		scale       = fs.String("scale", "small", "browser corpus scale: paper or small")
		seed        = fs.Int64("seed", 42, "analysis seed")
		workers     = fs.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
		format      = fs.String("format", "text", "output format: text or json")
		showMetrics = fs.Bool("metrics", false, "print run stats to stderr")
		chaosSeed   = fs.Int64("chaos-seed", 0, "inject deterministic faults from this seed, with retry and graceful degradation (0 = off)")
		traceFile   = fs.String("trace", "", "write the run's span tree to this file as Chrome trace-event JSON")
		serveAddr   = fs.String("serve", "", "serve /metrics, /trace.json, /debug/vars and /debug/pprof on this address, and keep serving after the analysis until interrupted")
		cacheDir    = fs.String("cache-dir", "", "persist per-unit analysis results under this directory and reuse them on later runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := []crashresist.Option{crashresist.WithWorkers(*workers)}
	if *cacheDir != "" {
		if c, err := crashresist.OpenAnalysisCache(*cacheDir); err != nil {
			// A broken cache dir costs recomputation, never the run.
			fmt.Fprintf(stderr, "crdiscover: cache disabled: %v\n", err)
		} else {
			opts = append(opts, crashresist.WithCache(c))
		}
	}
	if *chaosSeed != 0 {
		opts = append(opts,
			crashresist.WithFaultPlan(crashresist.DefaultFaultPlan(*chaosSeed)),
			crashresist.WithRetry(2))
	}

	// Trace export and live serving both ride a metrics registry sink. The
	// listener binds before the analysis so scrapes work while it runs.
	var reg *crashresist.MetricsRegistry
	if *traceFile != "" || *serveAddr != "" {
		reg = crashresist.NewMetricsRegistry()
		opts = append(opts, crashresist.WithSink(reg))
	}
	finish := func() error { return finishObservability(stderr, reg, *traceFile, *serveAddr != "") }
	if *serveAddr != "" {
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "crdiscover: serving http://%s/metrics\n", ln.Addr())
		go func() { _ = http.Serve(ln, reg.Handler()) }()
	}

	switch *format {
	case "text", "json":
	default:
		return fmt.Errorf("%w: unknown -format %q (want text or json)", crashresist.ErrBadParams, *format)
	}

	isBrowser := *target == "ie" || *target == "firefox"
	pl := *pipeline
	if pl == "" {
		if isBrowser {
			pl = "seh"
		} else {
			pl = "syscall"
		}
	}

	if !isBrowser {
		if pl != "syscall" {
			return fmt.Errorf("%w: pipeline %q needs a browser target", crashresist.ErrBadParams, pl)
		}
		if err := runServer(stdout, stderr, *target, *seed, opts, *format, *showMetrics); err != nil {
			return err
		}
		return finish()
	}

	params := crashresist.SmallBrowserParams()
	if *scale == "paper" {
		params = crashresist.PaperBrowserParams()
	}
	var (
		br  *crashresist.BrowserTarget
		err error
	)
	if *target == "ie" {
		br, err = crashresist.IE(params)
	} else {
		br, err = crashresist.Firefox(params)
	}
	if err != nil {
		return err
	}

	switch pl {
	case "api":
		rep, err := crashresist.AnalyzeBrowserAPIs(br, *seed, opts...)
		if err != nil {
			return err
		}
		emitMetrics(stderr, rep.Stats, *showMetrics)
		if *format == "json" {
			if err := printJSON(stdout, rep); err != nil {
				return err
			}
			return finish()
		}
		fmt.Fprintln(stdout, crashresist.FormatFunnel(rep))
		printDegraded(stdout, rep.Degraded)
		return finish()
	case "seh":
		rep, err := crashresist.AnalyzeBrowserSEH(br, *seed, opts...)
		if err != nil {
			return err
		}
		emitMetrics(stderr, rep.Stats, *showMetrics)
		if *format == "json" {
			if err := printJSON(stdout, rep); err != nil {
				return err
			}
			return finish()
		}
		fmt.Fprintln(stdout, crashresist.FormatTableII(rep, crashresist.NamedDLLs()))
		fmt.Fprintln(stdout, crashresist.FormatTableIII(rep, crashresist.NamedDLLs()))
		fmt.Fprintf(stdout, "on-path candidates (%d):\n", len(rep.Candidates))
		for _, c := range rep.Candidates {
			kind := "filter"
			if c.CatchAll {
				kind = "catch-all"
			}
			fmt.Fprintf(stdout, "  %-16s scope %-4d %-24s %-9s hits %d\n",
				c.Module, c.Scope, c.FuncName, kind, c.Hits)
			if len(rep.Candidates) > 40 && c.Hits > 0 {
				// keep terminal output bounded at paper scale
			}
		}
		if len(rep.VEHFindings) > 0 {
			fmt.Fprintf(stdout, "\nvectored-handler registrations (static scan, §VII-A extension):\n")
			for _, f := range rep.VEHFindings {
				fmt.Fprintf(stdout, "  %s\n", f)
			}
		}
		pw := crashresist.PriorWork(rep)
		fmt.Fprintf(stdout, "\nprior work: IE catch-all=%v, post-update-manual=%v, VEH-missed=%v, VEH-found-by-extension=%v\n",
			pw.IECatchAllFound, pw.IEPostUpdateNeedsManual, pw.FirefoxVEHMissed, pw.FirefoxVEHFoundByExtension)
		printDegraded(stdout, rep.Degraded)
		return finish()
	default:
		return fmt.Errorf("%w: unknown pipeline %q", crashresist.ErrBadParams, pl)
	}
}

// finishObservability runs after a successful analysis: it writes the
// requested Chrome trace from the registry's recorded runs and, in -serve
// mode, blocks until the process is interrupted so the endpoints stay up.
func finishObservability(stderr io.Writer, reg *crashresist.MetricsRegistry, traceFile string, serving bool) error {
	if reg == nil {
		return nil
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := crashresist.WriteChromeTrace(f, reg.Runs()...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "crdiscover: wrote Chrome trace to %s\n", traceFile)
	}
	if serving {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		fmt.Fprintln(stderr, "crdiscover: analysis complete; serving until interrupted")
		<-ctx.Done()
	}
	return nil
}

func runServer(stdout, stderr io.Writer, name string, seed int64, opts []crashresist.Option, format string, showMetrics bool) error {
	srv, err := crashresist.Server(name)
	if err != nil {
		return err
	}
	rep, err := crashresist.AnalyzeServer(srv, seed, opts...)
	if err != nil {
		return err
	}
	emitMetrics(stderr, rep.Stats, showMetrics)
	if format == "json" {
		return printJSON(stdout, rep)
	}
	fmt.Fprintf(stdout, "syscall pipeline report for %s\n\n", rep.Server)
	fmt.Fprintf(stdout, "%-12s %-18s\n", "syscall", "status")
	for _, sc := range crashresist.TableISyscalls() {
		fmt.Fprintf(stdout, "%-12s %-18s\n", sc, rep.Status[sc])
	}
	fmt.Fprintf(stdout, "\nvalidated candidates (%d):\n", len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Fprintf(stdout, "  %-12s arg%d prov=%#x taint=%#x seen=%d → %s\n     %s\n",
			f.Syscall, f.ArgIndex, f.Provenance, f.TaintMask, f.Count, f.Status, f.Detail)
	}
	fmt.Fprintf(stdout, "\nusable crash-resistant primitives: %v\n", rep.Usable())
	printDegraded(stdout, rep.Degraded)
	return nil
}

// printDegraded lists jobs dropped by graceful degradation. Prints nothing
// for a clean run, so injection-off output is unchanged.
func printDegraded(w io.Writer, degraded []crashresist.Degraded) {
	if len(degraded) == 0 {
		return
	}
	fmt.Fprintf(w, "\ndegraded jobs (%d):\n", len(degraded))
	for _, d := range degraded {
		fmt.Fprintf(w, "  %-10s %-24s attempts=%d  %s\n", d.Stage, d.Key, d.Attempts, d.Err)
	}
}

// printJSON writes an indented JSON report to w.
func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// emitMetrics writes run stats to stderr when requested.
func emitMetrics(w io.Writer, st *crashresist.RunStats, show bool) {
	if show && st != nil {
		fmt.Fprint(w, st.Format())
	}
}
