package crashresist_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"crashresist"
)

// TestValidateScale table-drives Request.Validate over the scale wire
// field and the generated-target references it gates. The scale knob is
// part of the schema-v1 job surface, so unknown values must fail with
// ErrBadParams (a 400, not a 500, at the service layer) and every
// accepted value must round-trip.
func TestValidateScale(t *testing.T) {
	cases := []struct {
		name    string
		req     crashresist.Request
		wantErr error // nil means the request must validate
	}{
		{"empty scale defaults small", crashresist.Request{Target: "lighttpd"}, nil},
		{"small", crashresist.Request{Scale: crashresist.ScaleSmall, Target: "lighttpd"}, nil},
		{"paper", crashresist.Request{Scale: crashresist.ScalePaper, Target: "ie", Pipeline: crashresist.PipelineSEH}, nil},
		{"large", crashresist.Request{Scale: crashresist.ScaleLarge, Target: "ie", Pipeline: crashresist.PipelineSEH}, nil},
		{"mega", crashresist.Request{Scale: crashresist.ScaleMega, Target: "ie", Pipeline: crashresist.PipelineSEH}, nil},
		{"unknown scale", crashresist.Request{Scale: "jumbo", Target: "lighttpd"}, crashresist.ErrBadParams},
		{"scale is case-sensitive", crashresist.Request{Scale: "Large", Target: "lighttpd"}, crashresist.ErrBadParams},

		{"gen fleet default scale", crashresist.Request{Target: "gen"}, nil},
		{"gen fleet mega", crashresist.Request{Scale: crashresist.ScaleMega, Target: "gen"}, nil},
		{"gen fleet wrong pipeline", crashresist.Request{Target: "gen", Pipeline: crashresist.PipelineSEH}, crashresist.ErrBadParams},

		{"gen-0 at small", crashresist.Request{Target: "gen-0"}, nil},
		{"gen-3 at small (fleet of 4)", crashresist.Request{Target: "gen-3"}, nil},
		{"gen-4 out of range at small", crashresist.Request{Target: "gen-4"}, crashresist.ErrBadParams},
		{"gen-59 at large", crashresist.Request{Scale: crashresist.ScaleLarge, Target: "gen-59"}, nil},
		{"gen-60 out of range at large", crashresist.Request{Scale: crashresist.ScaleLarge, Target: "gen-60"}, crashresist.ErrBadParams},
		{"gen-599 at mega", crashresist.Request{Scale: crashresist.ScaleMega, Target: "gen-599"}, nil},
		// "gen-01" is not canonical (GenServerName(1) == "gen-1"), so it
		// falls through reference parsing to the unknown-server path.
		{"non-canonical gen ref", crashresist.Request{Target: "gen-01"}, crashresist.ErrUnknownServer},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestScaleWireRoundTrip pins that the scale field survives the schema-v1
// JSON wire format verbatim, including the new large/mega values.
func TestScaleWireRoundTrip(t *testing.T) {
	for _, scale := range []string{
		crashresist.ScaleSmall, crashresist.ScalePaper,
		crashresist.ScaleLarge, crashresist.ScaleMega,
	} {
		req := crashresist.Request{
			Pipeline: crashresist.PipelineSyscall,
			Target:   "gen-0",
			Scale:    scale,
			Seed:     42,
		}
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var got crashresist.Request
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got.Scale != scale {
			t.Errorf("scale %q round-tripped to %q", scale, got.Scale)
		}
	}

	// A mega request's wire form is exactly the schema-v1 field set.
	req := crashresist.Request{Pipeline: "syscall", Target: "gen-7", Scale: "mega", Seed: 1}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"pipeline":"syscall","target":"gen-7","scale":"mega","seed":1}`
	if string(data) != want {
		t.Errorf("mega request wire form\n got  %s\n want %s", data, want)
	}
}

// TestGenServerCount pins the fleet size at each scale and the error on
// unknown scales.
func TestGenServerCount(t *testing.T) {
	cases := []struct {
		scale string
		n     int
		ok    bool
	}{
		{"", 4, true},
		{crashresist.ScaleSmall, 4, true},
		{crashresist.ScalePaper, 6, true},
		{crashresist.ScaleLarge, 60, true},
		{crashresist.ScaleMega, 600, true},
		{"jumbo", 0, false},
	}
	for _, tc := range cases {
		n, err := crashresist.GenServerCount(tc.scale)
		if tc.ok && (err != nil || n != tc.n) {
			t.Errorf("GenServerCount(%q) = (%d, %v), want (%d, nil)", tc.scale, n, err, tc.n)
		}
		if !tc.ok && !errors.Is(err, crashresist.ErrBadParams) {
			t.Errorf("GenServerCount(%q) err = %v, want ErrBadParams", tc.scale, err)
		}
	}
}

// TestRunRejectsUnknownScale pins that Run itself (not just Validate)
// refuses an unknown scale on every dispatch path, including plain
// server targets that never consult the scale otherwise.
func TestRunRejectsUnknownScale(t *testing.T) {
	for _, target := range []string{"lighttpd", "gen", "gen-0", "ie", "all"} {
		_, err := crashresist.Run(context.Background(), crashresist.Request{Target: target, Scale: "jumbo", Seed: 42})
		if !errors.Is(err, crashresist.ErrBadParams) {
			t.Errorf("Run(target=%q, scale=jumbo) err = %v, want ErrBadParams", target, err)
		}
	}
}

// TestRunGenServerByRef runs one generated server end to end through the
// Request surface and checks the result is the same report a direct
// pipeline call produces.
func TestRunGenServerByRef(t *testing.T) {
	res, err := crashresist.Run(context.Background(), crashresist.Request{Target: "gen-1", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Syscall == nil {
		t.Fatal("no syscall report for gen-1")
	}
	srv, err := crashresist.GenServer(crashresist.DefaultGenSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := crashresist.AnalyzeServer(srv, 42)
	if err != nil {
		t.Fatal(err)
	}
	viaRun, err := json.Marshal(stripStats(t, res.Syscall))
	if err != nil {
		t.Fatal(err)
	}
	viaDirect, err := json.Marshal(stripStats(t, direct))
	if err != nil {
		t.Fatal(err)
	}
	if string(viaRun) != string(viaDirect) {
		t.Error("Run(gen-1) report differs from direct AnalyzeServer")
	}
}

// TestRunGenFleet runs the whole generated fleet at the default (small)
// scale through the Request surface.
func TestRunGenFleet(t *testing.T) {
	res, err := crashresist.Run(context.Background(), crashresist.Request{Target: "gen", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Servers) != 4 {
		t.Fatalf("gen fleet at small scale returned %d reports, want 4", len(res.Servers))
	}
	for i, rep := range res.Servers {
		if want := "gen-" + string(rune('0'+i)); rep.Server != want {
			t.Errorf("report %d is for %q, want %q (input order)", i, rep.Server, want)
		}
	}
}

// stripStats drops the run-dependent stats key so reports from different
// runs can be compared byte-for-byte.
func stripStats(t *testing.T, v any) map[string]json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "stats")
	return m
}
