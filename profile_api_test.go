package crashresist

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestRunIncludeProfile covers the wire surface: a request with
// IncludeProfile gets the run's exact-cost snapshot embedded in the
// Result (and surviving a JSON round trip); one without stays clean.
func TestRunIncludeProfile(t *testing.T) {
	req := Request{Target: "nginx", Seed: 42, Scale: "small", IncludeProfile: true}
	res, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("IncludeProfile set but Result.Profile is nil")
	}
	if len(res.Profile.Samples) == 0 {
		t.Error("embedded profile has no samples")
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Profile == nil || len(back.Profile.Samples) != len(res.Profile.Samples) {
		t.Errorf("profile lost in round trip: %+v", back.Profile)
	}

	plain, err := Run(context.Background(), Request{Target: "nginx", Seed: 42, Scale: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Profile != nil {
		t.Error("Result.Profile present without IncludeProfile")
	}
}

// TestProfileNeverChangesReport: the same request produces byte-identical
// report JSON with and without a profile attached. Run wall-clock stats
// are stripped first — they differ between ANY two runs and are already
// kept out of artifact bytes by design.
func TestProfileNeverChangesReport(t *testing.T) {
	run := func(p *Profile) []byte {
		t.Helper()
		req := Request{Target: "nginx", Seed: 42, Scale: "small", Profile: p}
		res, err := Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		rep := *res.Syscall
		rep.Stats = nil
		raw, err := json.Marshal(&rep)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	without := run(nil)
	with := run(NewProfile())
	if !bytes.Equal(without, with) {
		t.Error("attaching a profile changed the report bytes")
	}
}

// TestSharedProfileAccumulates: one profile attached to two identical runs
// holds exactly twice each sample of a single run — Add commutes and
// merges are lossless across Run boundaries.
func TestSharedProfileAccumulates(t *testing.T) {
	one := NewProfile()
	if _, err := Run(context.Background(), Request{Target: "nginx", Seed: 42, Scale: "small", Profile: one}); err != nil {
		t.Fatal(err)
	}
	two := NewProfile()
	for i := 0; i < 2; i++ {
		if _, err := Run(context.Background(), Request{Target: "nginx", Seed: 42, Scale: "small", Profile: two}); err != nil {
			t.Fatal(err)
		}
	}
	s1, s2 := one.Snapshot(), two.Snapshot()
	if len(s1.Samples) == 0 || len(s1.Samples) != len(s2.Samples) {
		t.Fatalf("sample counts: one run %d, two runs %d", len(s1.Samples), len(s2.Samples))
	}
	for i := range s1.Samples {
		a, b := s1.Samples[i], s2.Samples[i]
		av, bv := a.Value, b.Value
		a.Value, b.Value = 0, 0
		if a != b || 2*av != bv {
			t.Errorf("sample %d: one run %+v (%d), two runs %+v (%d)", i, a, av, b, bv)
		}
	}
}
