package crashresist

// Correctness harness for the persistent content-addressed cache: every
// pipeline must produce the same report with the cache cold, warm, absent,
// degraded by injected cache faults, or bypassed — the cache only ever
// changes how fast a result arrives, never the result. Reports are
// compared via normalize (chaos_test.go), which strips only Stats, where
// timings and cache hit ratios live by design.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/faultinject"
)

// cachePipelines enumerates the three discovery pipelines against small
// fixed targets, each closed over an option slice so callers can vary
// worker counts and cache wiring per run.
func cachePipelines(t *testing.T) []struct {
	name    string
	analyze func(opts ...Option) (any, error)
} {
	t.Helper()
	srv, err := Server("nginx")
	if err != nil {
		t.Fatal(err)
	}
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name    string
		analyze func(opts ...Option) (any, error)
	}{
		{"syscall", func(opts ...Option) (any, error) { return AnalyzeServer(srv, 42, opts...) }},
		{"api", func(opts ...Option) (any, error) { return AnalyzeBrowserAPIs(br, 42, opts...) }},
		{"seh", func(opts ...Option) (any, error) { return AnalyzeBrowserSEH(br, 42, opts...) }},
	}
}

// statsOf pulls the RunStats out of any pipeline report.
func statsOf(t *testing.T, rep any) *RunStats {
	t.Helper()
	switch r := rep.(type) {
	case *SyscallReport:
		return r.Stats
	case *APIFunnelReport:
		return r.Stats
	case *SEHReport:
		return r.Stats
	}
	t.Fatalf("unknown report type %T", rep)
	return nil
}

// TestCacheEquivalenceAllPipelines runs each pipeline cache-off, then cold
// and warm against one cache directory at 1, 4 and 8 workers, and asserts
// every normalized report is identical. It also proves the per-run counter
// wiring: the cold run only misses, warm runs hit, and nothing is ever
// flagged as a bad entry.
func TestCacheEquivalenceAllPipelines(t *testing.T) {
	for _, pl := range cachePipelines(t) {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			cache, err := OpenAnalysisCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}

			baseline, err := pl.analyze(WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			want := normalize(t, baseline)
			if h := statsOf(t, baseline).Counter(CtrCacheHits); h != 0 {
				t.Errorf("cache-off run counted %d cache hits", h)
			}

			cold, err := pl.analyze(WithWorkers(1), WithCache(cache))
			if err != nil {
				t.Fatal(err)
			}
			if got := normalize(t, cold); got != want {
				t.Errorf("cold cached report differs from cache-off report")
			}
			coldStats := statsOf(t, cold)
			if coldStats.Counter(CtrCacheHits) != 0 || coldStats.Counter(CtrCacheMisses) == 0 {
				t.Errorf("cold run: hits=%d misses=%d, want 0 hits and some misses",
					coldStats.Counter(CtrCacheHits), coldStats.Counter(CtrCacheMisses))
			}

			for _, workers := range []int{1, 4, 8} {
				warm, err := pl.analyze(WithWorkers(workers), WithCache(cache))
				if err != nil {
					t.Fatal(err)
				}
				if got := normalize(t, warm); got != want {
					t.Errorf("warm cached report (workers=%d) differs from cache-off report", workers)
				}
				st := statsOf(t, warm)
				if st.Counter(CtrCacheHits) == 0 {
					t.Errorf("warm run (workers=%d) never hit the cache", workers)
				}
				if st.Counter(CtrCacheBadEntries) != 0 {
					t.Errorf("warm run (workers=%d) flagged %d bad entries",
						workers, st.Counter(CtrCacheBadEntries))
				}
				if st.Counter(CtrCacheBytes) == 0 {
					t.Errorf("warm run (workers=%d) counted no cache bytes", workers)
				}
			}
			if st := cache.Stats(); st.BadEntries != 0 {
				t.Errorf("cache-level bad entries = %d", st.BadEntries)
			}
		})
	}
}

// TestWithCacheDirOption covers the directory-based option: a good dir
// caches, an unusable dir silently degrades to an uncached (but correct)
// run.
func TestWithCacheDirOption(t *testing.T) {
	srv, err := Server("nginx")
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := AnalyzeServer(srv, 42, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want := normalize(t, baseline)

	dir := t.TempDir()
	for run := 0; run < 2; run++ {
		rep, err := AnalyzeServer(srv, 42, WithWorkers(1), WithCacheDir(dir))
		if err != nil {
			t.Fatal(err)
		}
		if got := normalize(t, rep); got != want {
			t.Errorf("run %d with cache dir differs from baseline", run)
		}
		if run == 1 && rep.Stats.Counter(CtrCacheHits) == 0 {
			t.Error("second run against the same dir never hit")
		}
	}

	// A path that cannot be a directory: WithCacheDir must degrade, not fail.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeServer(srv, 42, WithWorkers(1), WithCacheDir(filepath.Join(file, "cache")))
	if err != nil {
		t.Fatalf("unusable cache dir failed the analysis: %v", err)
	}
	if got := normalize(t, rep); got != want {
		t.Errorf("degraded-cache report differs from baseline")
	}
	if rep.Stats.Counter(CtrCacheHits) != 0 || rep.Stats.Counter(CtrCacheMisses) != 0 {
		t.Error("degraded cache still counted traffic")
	}
}

// TestChaosCacheDegradesToRecompute attaches a fault plan to the cache
// itself (the cas.read / cas.write sites), sweeping seeds and worker
// counts: injected cache faults may only cost recomputation — every report
// stays identical to the fault-free baseline. The TestChaos prefix pulls
// it into the `make chaos` paper-scale gate.
func TestChaosCacheDegradesToRecompute(t *testing.T) {
	for _, pl := range cachePipelines(t) {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			baseline, err := pl.analyze(WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			want := normalize(t, baseline)

			for _, seed := range chaosSeedSet() {
				cache, err := OpenAnalysisCache(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				plan := faultinject.New(seed).
					Enable(faultinject.SiteCASRead, faultinject.SiteConfig{Rate: 0.4, Mode: faultinject.ModePermanent}).
					Enable(faultinject.SiteCASWrite, faultinject.SiteConfig{Rate: 0.4, Mode: faultinject.ModePermanent})
				cache.SetFaultPlan(plan)

				for _, workers := range chaosWorkerCounts {
					rep, err := pl.analyze(WithWorkers(workers), WithCache(cache))
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, workers, err)
					}
					if got := normalize(t, rep); got != want {
						t.Errorf("seed %d workers %d: cache faults changed the report", seed, workers)
					}
				}
				if plan.Stats()[faultinject.SiteCASRead]+plan.Stats()[faultinject.SiteCASWrite] == 0 {
					t.Errorf("seed %d: no cache faults fired; chaos wiring broken", seed)
				}
			}
		})
	}
}

// TestPipelineChaosBypassesCache checks the poisoning guard: while a fault
// plan is injecting into a pipeline, results may be partial or degraded, so
// the pipeline must not read from or publish into the persistent cache.
func TestPipelineChaosBypassesCache(t *testing.T) {
	srv, err := Server("nginx")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cache, err := OpenAnalysisCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeServer(srv, 42, WithWorkers(4), WithCache(cache),
		WithFaultPlan(DefaultFaultPlan(1)), WithRetry(2))
	if err != nil {
		t.Fatal(err)
	}
	if h, m := rep.Stats.Counter(CtrCacheHits), rep.Stats.Counter(CtrCacheMisses); h != 0 || m != 0 {
		t.Errorf("chaos run touched the cache: hits=%d misses=%d", h, m)
	}
	var entries int
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			entries++
		}
		return nil
	})
	if entries != 0 {
		t.Errorf("chaos run published %d entries into the cache", entries)
	}
}

// TestCorruptedEntriesNeverChangeReports populates a cache, damages every
// published entry in place (bit flips, truncation and zero fills, cycling
// per file), and re-runs each pipeline: all damage must be detected and
// counted, the reports must stay identical, and the recompute must leave
// the directory healthy again.
func TestCorruptedEntriesNeverChangeReports(t *testing.T) {
	for _, pl := range cachePipelines(t) {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			dir := t.TempDir()
			cache, err := OpenAnalysisCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := pl.analyze(WithWorkers(1), WithCache(cache))
			if err != nil {
				t.Fatal(err)
			}
			want := normalize(t, cold)

			var entries []string
			filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
				if err == nil && !info.IsDir() && strings.HasSuffix(path, ".cce") {
					entries = append(entries, path)
				}
				return nil
			})
			if len(entries) == 0 {
				t.Fatal("cold run published no entries")
			}
			for i, path := range entries {
				switch i % 3 {
				case 0: // bit flip
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					data[len(data)/2] ^= 0x10
					if err := os.WriteFile(path, data, 0o644); err != nil {
						t.Fatal(err)
					}
				case 1: // truncate
					if err := os.Truncate(path, 10); err != nil {
						t.Fatal(err)
					}
				case 2: // zero fill
					st, err := os.Stat(path)
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, make([]byte, st.Size()), 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}

			warm, err := pl.analyze(WithWorkers(4), WithCache(cache))
			if err != nil {
				t.Fatal(err)
			}
			if got := normalize(t, warm); got != want {
				t.Error("corrupted cache changed the report")
			}
			st := statsOf(t, warm)
			if st.Counter(CtrCacheBadEntries) != uint64(len(entries)) {
				t.Errorf("detected %d bad entries, corrupted %d",
					st.Counter(CtrCacheBadEntries), len(entries))
			}
			if st.Counter(CtrCacheHits) != 0 {
				t.Errorf("%d hits served from a fully corrupted dir", st.Counter(CtrCacheHits))
			}

			// The recompute rewrote every entry: a third run is all hits.
			healed, err := pl.analyze(WithWorkers(1), WithCache(cache))
			if err != nil {
				t.Fatal(err)
			}
			if got := normalize(t, healed); got != want {
				t.Error("healed cache changed the report")
			}
			hst := statsOf(t, healed)
			if hst.Counter(CtrCacheBadEntries) != 0 {
				t.Errorf("healed run still saw %d bad entries", hst.Counter(CtrCacheBadEntries))
			}
			if hst.Counter(CtrCacheHits) == 0 {
				t.Error("healed run never hit")
			}
		})
	}
}

// TestIncrementalRediscovery is the paper-scale invalidation test: after a
// cold Table III run, mutate 5 of the 187 DLLs (a trailing unguarded nop —
// content-visible but semantically inert) and re-run warm. Only the
// changed DLLs (plus the known-impure jscript9) may recompute, and the
// report must not change at all.
func TestIncrementalRediscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale corpus build")
	}
	cache, err := OpenAnalysisCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	br, err := IE(PaperBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := AnalyzeBrowserSEH(br, 42, WithWorkers(4), WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	coldMisses := cold.Stats.Counter(CtrCacheMisses)
	if coldMisses == 0 {
		t.Fatal("cold run recorded no cache misses")
	}

	mutated := []string{"user32.dll", "kernel32.dll", "msvcrt.dll", "rpcrt4.dll", "ws2_32.dll"}
	params := PaperBrowserParams()
	params.Corpus.Extend = make(map[string]func(*asm.Builder), len(mutated))
	for _, name := range mutated {
		params.Corpus.Extend[name] = func(b *asm.Builder) { b.Nop() }
	}
	br2, err := IE(params)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := AnalyzeBrowserSEH(br2, 42, WithWorkers(4), WithCache(cache))
	if err != nil {
		t.Fatal(err)
	}

	if got, want := normalize(t, warm), normalize(t, cold); got != want {
		t.Error("inert mutation changed the report")
	}
	hits := warm.Stats.Counter(CtrCacheHits)
	misses := warm.Stats.Counter(CtrCacheMisses)
	if hits+misses != coldMisses {
		t.Errorf("warm run looked up %d modules, cold analyzed %d", hits+misses, coldMisses)
	}
	// The acceptance bar: a 5-of-187 mutation must re-execute at most 10%
	// of the cold run's analyses.
	if misses*10 > coldMisses {
		t.Errorf("warm run recomputed %d of %d modules, want <= 10%%", misses, coldMisses)
	}
	// And precisely: the 5 mutated DLLs plus the impure jscript9.
	if misses != uint64(len(mutated))+1 {
		t.Errorf("warm misses = %d, want %d (5 mutated + jscript9)", misses, len(mutated)+1)
	}
	t.Logf("incremental re-discovery: %d/%d modules recomputed (%d served from cache)",
		misses, coldMisses, hits)
}

// TestCacheSurvivesCorpusPermutations re-checks determinism across cache
// generations: entries written by a workers=8 run must satisfy a workers=1
// reader and vice versa, across distinct Cache instances over one dir.
func TestCacheSurvivesCorpusPermutations(t *testing.T) {
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var want string
	for i, workers := range []int{8, 1, 4} {
		cache, err := OpenAnalysisCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeBrowserSEH(br, 42, WithWorkers(workers), WithCache(cache))
		if err != nil {
			t.Fatal(err)
		}
		got := normalize(t, rep)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d report over shared cache differs", workers)
		}
		if rep.Stats.Counter(CtrCacheHits) == 0 {
			t.Errorf("workers=%d run over a warm dir never hit", workers)
		}
	}
}
