package crashresist_test

import (
	"context"
	"fmt"

	"crashresist"
)

// The Linux pipeline on the Nginx model finds the recv primitive of §VI-C.
func ExampleAnalyzeServer() {
	srv, err := crashresist.Server("nginx")
	if err != nil {
		fmt.Println(err)
		return
	}
	report, err := crashresist.AnalyzeServer(srv, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(report.Usable())
	fmt.Println(report.Status["write"])
	// Output:
	// [recv]
	// invalid(±)
}

// A discovered primitive probes memory without crashing the target.
func ExampleScanner_Probe() {
	br, err := crashresist.IE(crashresist.SmallBrowserParams())
	if err != nil {
		fmt.Println(err)
		return
	}
	env, err := br.NewEnv(42)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := env.Start(); err != nil {
		fmt.Println(err)
		return
	}
	oracle, err := crashresist.NewIEOracle(env)
	if err != nil {
		fmt.Println(err)
		return
	}
	s := crashresist.NewScanner(oracle)
	res, err := s.Probe(0xdead0000) // never mapped in the user arena
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res, s.Stats.Crashes)
	// Output: unmapped 0
}

// The §V-B funnel collapses to zero controllable primitives.
func ExampleAnalyzeBrowserAPIs() {
	br, err := crashresist.IE(crashresist.SmallBrowserParams())
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := crashresist.AnalyzeBrowserAPIs(br, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(rep.Controllable)
	// Output: 0
}

// Run is the unified entry point behind every pipeline: name a target,
// get back the typed result envelope. The per-pipeline Analyze* functions
// are thin wrappers over it.
func ExampleRun() {
	res, err := crashresist.Run(context.Background(), crashresist.Request{
		Target: "nginx",
		Seed:   42,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Schema, res.Pipeline, res.Target)
	fmt.Println(res.Syscall.Usable())
	// Output:
	// v1 syscall nginx
	// [recv]
}
