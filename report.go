package crashresist

import (
	"fmt"
	"sort"
	"strings"

	"crashresist/internal/kernel"
)

// TableISyscalls lists Table I's 13 rows in the paper's (alphabetical)
// order. The kernel model exposes two more EFAULT-capable calls (access,
// epoll_ctl) which the full reports include, but the paper's table does not
// row them.
func TableISyscalls() []string {
	return []string{
		"chmod", "connect", "epoll_wait", "mkdir", "open", "read",
		"recv", "recvfrom", "send", "sendmsg", "symlink", "unlink", "write",
	}
}

// AllEFAULTSyscalls lists every syscall the kernel model can fail with
// -EFAULT, beyond Table I's rows.
func AllEFAULTSyscalls() []string {
	var out []string
	for _, s := range kernel.Specs() {
		if s.CanEFAULT {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// FormatTableI renders the Table I matrix from per-server reports.
// Legend: ⊕ usable primitive, ± candidate that crashes on corruption,
// ✗ false positive, · observed without a corruptible pointer, ? candidate
// whose corrupted replay never reached the syscall.
func FormatTableI(reports []*SyscallReport) string {
	var b strings.Builder
	b.WriteString("Table I — syscall probing candidates per server\n")
	fmt.Fprintf(&b, "%-12s", "syscall")
	for _, r := range reports {
		fmt.Fprintf(&b, " %-11s", r.Server)
	}
	b.WriteString("\n")
	for _, sc := range TableISyscalls() {
		fmt.Fprintf(&b, "%-12s", sc)
		for _, r := range reports {
			fmt.Fprintf(&b, " %-11s", r.Status[sc].Mark())
		}
		b.WriteString("\n")
	}
	b.WriteString("legend: ⊕ usable  ± crashes on corruption  ✗ false positive  · observed only\n")
	return b.String()
}

// FormatFunnel renders the §V-B API funnel.
func FormatFunnel(rep *APIFunnelReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§V-B Windows API funnel (%s)\n", rep.Browser)
	fmt.Fprintf(&b, "  API functions in corpus:        %6d\n", rep.Total)
	fmt.Fprintf(&b, "  with pointer argument:          %6d\n", rep.WithPointer)
	fmt.Fprintf(&b, "  crash-resistant (fuzzed):       %6d\n", rep.CrashResistant)
	fmt.Fprintf(&b, "  on browse execution path:       %6d\n", rep.OnPath)
	fmt.Fprintf(&b, "  reachable from JS context:      %6d\n", rep.JSContext)
	fmt.Fprintf(&b, "  with controllable pointer:      %6d\n", rep.Controllable)
	if len(rep.Classifications) > 0 {
		b.WriteString("  exclusion reasons:\n")
		for _, c := range rep.Classifications {
			fmt.Fprintf(&b, "    %-28s %s\n", c.API, c.Reason)
		}
	}
	return b.String()
}

// FormatTableII renders the guarded-code-location table for the named DLLs.
func FormatTableII(rep *SEHReport, modules []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — guarded code locations (%s run)\n", rep.Browser)
	fmt.Fprintf(&b, "%-16s %10s %10s %10s\n", "DLL", "before SE", "after SE", "on path")
	for _, name := range modules {
		row, ok := rep.Row(name)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-16s %10d %10d %10d\n", row.Module, row.Handlers, row.AVHandlers, row.OnPath)
	}
	return b.String()
}

// FormatTableIII renders the unique-filter-function table for the named
// DLLs plus the corpus totals.
func FormatTableIII(rep *SEHReport, modules []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — unique exception filters (%s run)\n", rep.Browser)
	fmt.Fprintf(&b, "%-16s %10s %10s %10s\n", "DLL", "before SE", "after SE", "unknown")
	for _, name := range modules {
		row, ok := rep.Row(name)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-16s %10d %10d %10d\n", row.Module, row.Filters, row.AVFilters, row.UnknownFilters)
	}
	fmt.Fprintf(&b, "totals: %d modules, %d handlers, %d filter functions, %d accept AV (used by %d handlers)\n",
		rep.TotalModules, rep.TotalHandlers, rep.TotalFilters, rep.TotalAVFilters, rep.TotalAVHandlers)
	fmt.Fprintf(&b, "execution path: %d guarded locations, triggered %d times\n",
		rep.TotalOnPath, rep.TriggerEvents)
	return b.String()
}

// NamedDLLs returns the DLLs Tables II and III report individually, in
// table order.
func NamedDLLs() []string {
	return []string{
		"user32.dll", "kernel32.dll", "msvcrt.dll", "jscript9.dll",
		"rpcrt4.dll", "sechost.dll", "ws2_32.dll", "xmllite.dll",
		"kernelbase.dll", "ntdll.dll",
	}
}
