package crashresist

// The unified analysis entry point: one Request struct and one Run call
// subsume the per-pipeline Analyze*Context variants. Request doubles as
// the wire shape of the discovery service's job submissions (the
// serializable subset) — internal/service decodes a Request straight off
// POST /v1/jobs — so library callers and API tenants share one surface.

import (
	"context"
	"fmt"
	"slices"
	"time"

	"crashresist/internal/discover"
	"crashresist/internal/targets"
)

// SchemaV1 is the wire-format version stamped on every JSON document the
// toolkit emits: pipeline reports, Result envelopes, the crtables/crprobe
// artifact bundles, and the job API payloads. See DESIGN.md §11.
const SchemaV1 = discover.WireSchemaV1

// Pipeline selectors for Request.Pipeline.
const (
	// PipelineSyscall is the Linux syscall pipeline (Table I).
	PipelineSyscall = "syscall"
	// PipelineAPI is the Windows API pipeline (the §V-B funnel).
	PipelineAPI = "api"
	// PipelineSEH is the exception-handler pipeline (Tables II/III).
	PipelineSEH = "seh"
)

// Scale selectors for Request.Scale. Small and paper are the hand-built,
// golden-pinned corpora; large and mega extend them with generated
// populations (≥10× and ≥100× the paper corpus) whose results are
// property-checked rather than golden-filed.
const (
	ScaleSmall = "small"
	ScalePaper = "paper"
	ScaleLarge = "large"
	ScaleMega  = "mega"
)

// Request describes one analysis run for Run. The zero value is not
// runnable — at minimum a target must be named or attached.
//
// The exported, json-tagged fields form the v1 wire schema used by the
// discovery service's job API; the `json:"-"` fields are in-process
// attachments (pre-built targets, live callbacks, an open cache) that
// never cross the wire. When both a wire field and its attachment are set,
// the attachment wins.
type Request struct {
	// Pipeline selects syscall, api or seh. Empty infers it from the
	// target: servers run syscall, browsers run seh.
	Pipeline string `json:"pipeline,omitempty"`
	// Target names the analysis subject: one of the Table I servers
	// (nginx, cherokee, lighttpd, memcached, postgresql), a browser (ie,
	// firefox), "all" for every Table I server in parallel, a generated
	// server ("gen-<i>"), or "gen" for the whole generated fleet at the
	// request's Scale (syscall pipeline only). Ignored when Server,
	// Servers or Browser is attached.
	Target string `json:"target,omitempty"`
	// Scale sizes the analysis corpus: "small" (the default), "paper",
	// "large" or "mega". For browsers it selects the DLL corpus
	// (large/mega append generated populations); for the generated server
	// targets ("gen", "gen-<i>") it sizes the fleet. The hand-built
	// Table I servers ignore it.
	Scale string `json:"scale,omitempty"`
	// Seed fixes ASLR and every derived RNG; reports are byte-identical
	// per seed at any worker count.
	Seed int64 `json:"seed"`
	// Workers bounds the analysis worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Retries bounds per-job re-runs after transient failures (see
	// WithRetry). With ChaosSeed set and Retries zero, 2 is used.
	Retries int `json:"retries,omitempty"`
	// StageTimeout bounds each fanned-out pipeline stage (see
	// WithStageTimeout). Serialized in nanoseconds.
	StageTimeout time.Duration `json:"stage_timeout_ns,omitempty"`
	// ChaosSeed, when non-zero, runs the analysis under the default fault
	// plan seeded with it (chaos mode). Ignored when FaultPlan is attached.
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
	// CacheDir roots a persistent analysis cache, degrading silently to an
	// uncached run when unusable (see WithCacheDir). Ignored when Cache is
	// attached.
	CacheDir string `json:"cache_dir,omitempty"`
	// IncludeProfile asks Run to cost-profile the analysis and embed the
	// resulting ProfileSnapshot in the Result (and thus in the service's
	// stored job result). Profiling never changes report bytes.
	IncludeProfile bool `json:"profile,omitempty"`
	// IncludeDetect asks Run to watch the analysis with the detection
	// engine and embed the resulting DetectReport in the Result (and thus
	// in the service's stored job result). Detection trips also stream as
	// typed StageEvents. Detection never changes report bytes.
	IncludeDetect bool `json:"detect,omitempty"`

	// Server attaches a pre-built server target (syscall pipeline).
	Server *ServerTarget `json:"-"`
	// Servers attaches several pre-built server targets, analyzed in
	// parallel with results in input order (syscall pipeline).
	Servers []*ServerTarget `json:"-"`
	// Browser attaches a pre-built browser target (api or seh pipeline).
	Browser *BrowserTarget `json:"-"`
	// FaultPlan attaches a fault injection plan (see WithFaultPlan).
	FaultPlan *FaultPlan `json:"-"`
	// Cache attaches an open persistent analysis cache (see WithCache).
	Cache *AnalysisCache `json:"-"`
	// Profile attaches a live cost profile (see WithProfile). When set,
	// the run charges into it; combined with IncludeProfile the Result
	// also embeds its snapshot. When only IncludeProfile is set, Run
	// profiles into a fresh private profile.
	Profile *Profile `json:"-"`
	// Detect attaches a live detection observer (see WithDetect). When
	// set, the run streams into it; combined with IncludeDetect the Result
	// also embeds its snapshot. When only IncludeDetect is set, Run
	// watches with a fresh observer on the default calibration panel.
	Detect *Detect `json:"-"`
	// Progress receives live StageEvents (see WithProgress).
	Progress func(StageEvent) `json:"-"`
	// Sinks receive live events and the final RunStats (see WithSink).
	Sinks []MetricSink `json:"-"`
	// Options are functional options applied after — and therefore
	// overriding — the fields above. They exist so the legacy
	// Analyze*Context entry points can be thin wrappers over Run.
	Options []Option `json:"-"`
}

// Result is Run's envelope: exactly one report field matching the resolved
// pipeline is populated (Servers for the multi-server syscall mode). Its
// JSON form — schema-stamped, snake_case — is what the discovery service
// stores and serves as a completed job's result.
type Result struct {
	// Schema is the wire-format version (SchemaV1).
	Schema string `json:"schema"`
	// Pipeline is the resolved pipeline: syscall, api or seh.
	Pipeline string `json:"pipeline"`
	// Target is the resolved target name ("all" for the multi-server run).
	Target string `json:"target"`
	// Syscall is the single-server Table I report.
	Syscall *SyscallReport `json:"syscall,omitempty"`
	// Servers holds the multi-server Table I reports in input order.
	Servers []*SyscallReport `json:"servers,omitempty"`
	// Funnel is the §V-B API funnel report.
	Funnel *APIFunnelReport `json:"funnel,omitempty"`
	// SEH is the Tables II/III report.
	SEH *SEHReport `json:"seh,omitempty"`
	// Profile is the run's cost-profile snapshot, present only when the
	// request set IncludeProfile. Like Stats it lives outside the report
	// fields, so report bytes are identical with profiling on or off.
	Profile *ProfileSnapshot `json:"profile,omitempty"`
	// Detect is the run's detectability report, present only when the
	// request set IncludeDetect. Like Stats it lives outside the report
	// fields, so report bytes are identical with detection on or off.
	Detect *DetectReport `json:"detect,omitempty"`
}

// Report returns the populated report: *SyscallReport, []*SyscallReport,
// *APIFunnelReport or *SEHReport.
func (r *Result) Report() any {
	switch {
	case r == nil:
		return nil
	case r.Syscall != nil:
		return r.Syscall
	case r.Servers != nil:
		return r.Servers
	case r.Funnel != nil:
		return r.Funnel
	case r.SEH != nil:
		return r.SEH
	}
	return nil
}

// RunStats returns the observability records of every run in the result
// (one per analyzed target).
func (r *Result) RunStats() []*RunStats {
	if r == nil {
		return nil
	}
	var out []*RunStats
	switch {
	case r.Syscall != nil:
		out = append(out, r.Syscall.Stats)
	case r.Servers != nil:
		for _, rep := range r.Servers {
			out = append(out, rep.Stats)
		}
	case r.Funnel != nil:
		out = append(out, r.Funnel.Stats)
	case r.SEH != nil:
		out = append(out, r.SEH.Stats)
	}
	return out
}

// DegradedJobs returns every job dropped by graceful degradation across
// the result's reports; empty for clean runs.
func (r *Result) DegradedJobs() []Degraded {
	if r == nil {
		return nil
	}
	var out []Degraded
	switch {
	case r.Syscall != nil:
		out = append(out, r.Syscall.Degraded...)
	case r.Servers != nil:
		for _, rep := range r.Servers {
			out = append(out, rep.Degraded...)
		}
	case r.Funnel != nil:
		out = append(out, r.Funnel.Degraded...)
	case r.SEH != nil:
		out = append(out, r.SEH.Degraded...)
	}
	return out
}

// options converts the request's declarative fields into the option list
// the pipelines consume, with req.Options appended last so functional
// options override fields.
func (req Request) options() []Option {
	opts := []Option{WithWorkers(req.Workers)}
	retries := req.Retries
	plan := req.FaultPlan
	if plan == nil && req.ChaosSeed != 0 {
		plan = DefaultFaultPlan(req.ChaosSeed)
	}
	if plan != nil {
		opts = append(opts, WithFaultPlan(plan))
		if retries == 0 {
			// Chaos without a retry budget degrades every injected fault
			// into a dropped job; mirror the CLIs' default budget instead.
			retries = 2
		}
	}
	if retries != 0 {
		opts = append(opts, WithRetry(retries))
	}
	if req.StageTimeout != 0 {
		opts = append(opts, WithStageTimeout(req.StageTimeout))
	}
	switch {
	case req.Cache != nil:
		opts = append(opts, WithCache(req.Cache))
	case req.CacheDir != "":
		opts = append(opts, WithCacheDir(req.CacheDir))
	}
	if req.Profile != nil {
		opts = append(opts, WithProfile(req.Profile))
	}
	if req.Detect != nil {
		opts = append(opts, WithDetect(req.Detect))
	}
	if req.Progress != nil {
		opts = append(opts, WithProgress(req.Progress))
	}
	for _, s := range req.Sinks {
		opts = append(opts, WithSink(s))
	}
	return append(opts, req.Options...)
}

// Validate checks the request's declarative fields without building any
// target: pipeline and scale selectors must be known, a target must be
// named or attached, and the pipeline must suit the target kind. Run
// performs the same checks; Validate exists so services can reject a bad
// request before queueing it. Errors match ErrBadParams or
// ErrUnknownServer via errors.Is.
func (req Request) Validate() error {
	switch req.Pipeline {
	case "", PipelineSyscall, PipelineAPI, PipelineSEH:
	default:
		return fmt.Errorf("%w: unknown pipeline %q (want syscall, api or seh)", ErrBadParams, req.Pipeline)
	}
	switch req.Scale {
	case "", ScaleSmall, ScalePaper, ScaleLarge, ScaleMega:
	default:
		return fmt.Errorf("%w: unknown scale %q (want small, paper, large or mega)", ErrBadParams, req.Scale)
	}
	browser := false
	switch {
	case req.Servers != nil, req.Server != nil:
	case req.Browser != nil:
		browser = true
	default:
		switch req.Target {
		case "":
			return fmt.Errorf("%w: request names no target", ErrBadParams)
		case "all", "gen":
		case "ie", "firefox":
			browser = true
		default:
			if idx, ok := targets.ParseGenServerRef(req.Target); ok {
				// Scale is already validated, so the count resolves.
				if n, _ := GenServerCount(req.Scale); idx >= n {
					return fmt.Errorf("%w: generated server %q out of range at scale %q (fleet size %d)",
						ErrBadParams, req.Target, req.Scale, n)
				}
			} else if !slices.Contains(targets.ServerNames(), req.Target) {
				return fmt.Errorf("%w: %q", ErrUnknownServer, req.Target)
			}
		}
	}
	if browser && req.Pipeline == PipelineSyscall {
		return fmt.Errorf("%w: the syscall pipeline needs a server target", ErrBadParams)
	}
	if !browser && (req.Pipeline == PipelineAPI || req.Pipeline == PipelineSEH) {
		return fmt.Errorf("%w: pipeline %q needs a browser target", ErrBadParams, req.Pipeline)
	}
	return nil
}

// browserParams resolves the request's Scale.
func (req Request) browserParams() (BrowserParams, error) {
	return BrowserParamsForScale(req.Scale)
}

// Run executes one analysis described by req and returns its result
// envelope. It is the single entry point behind every pipeline — the
// legacy Analyze*Context functions are thin wrappers over it — and the
// execution core of the discovery service's job API.
//
// Resolution rules: an attached Server/Servers/Browser wins over the
// Target name; an empty Pipeline defaults to syscall for servers and seh
// for browsers; Target "all" fans the syscall pipeline out over every
// Table I server. Mismatches (a server target with the seh pipeline, an
// unknown name) return errors matching ErrBadParams or ErrUnknownServer.
//
// Determinism contract: for a fixed request, the result's reports are
// byte-identical (Stats aside) at any Workers value, with any cache state,
// and whether invoked directly or through the service. The embedded
// profile snapshot (IncludeProfile) shares the contract: identical at any
// worker count, and — ranked report and every cache-invariant kind —
// across cache states.
func Run(ctx context.Context, req Request) (*Result, error) {
	if req.IncludeProfile && req.Profile == nil {
		req.Profile = NewProfile()
	}
	if req.IncludeDetect && req.Detect == nil {
		req.Detect = NewDetect()
	}
	res, err := run(ctx, req)
	if err != nil {
		return nil, err
	}
	if req.IncludeProfile {
		res.Profile = req.Profile.Snapshot()
	}
	if req.IncludeDetect {
		res.Detect = req.Detect.Snapshot()
	}
	return res, nil
}

// run resolves and executes the request, leaving profile embedding to Run.
func run(ctx context.Context, req Request) (*Result, error) {
	opts := req.options()

	// Scale gates every dispatch path (browser corpus size, generated
	// fleet size), so reject unknown values before touching any target.
	switch req.Scale {
	case "", ScaleSmall, ScalePaper, ScaleLarge, ScaleMega:
	default:
		return nil, fmt.Errorf("%w: unknown scale %q (want small, paper, large or mega)", ErrBadParams, req.Scale)
	}

	// Attachment-mode requests.
	switch {
	case req.Servers != nil:
		if req.Pipeline != "" && req.Pipeline != PipelineSyscall {
			return nil, fmt.Errorf("%w: pipeline %q cannot analyze server targets", ErrBadParams, req.Pipeline)
		}
		reports, err := analyzeServersContext(ctx, req.Servers, req.Seed, opts)
		if err != nil {
			return nil, err
		}
		target := "all"
		if len(req.Servers) == 1 {
			target = req.Servers[0].Name
		}
		return &Result{Schema: SchemaV1, Pipeline: PipelineSyscall, Target: target, Servers: reports}, nil
	case req.Server != nil:
		if req.Pipeline != "" && req.Pipeline != PipelineSyscall {
			return nil, fmt.Errorf("%w: pipeline %q cannot analyze server targets", ErrBadParams, req.Pipeline)
		}
		rep, err := analyzeServerContext(ctx, req.Server, req.Seed, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: SchemaV1, Pipeline: PipelineSyscall, Target: req.Server.Name, Syscall: rep}, nil
	case req.Browser != nil:
		return runBrowser(ctx, req, req.Browser, req.Browser.Name, opts)
	}

	// Name-mode requests.
	switch req.Target {
	case "":
		return nil, fmt.Errorf("%w: request names no target", ErrBadParams)
	case "all":
		if req.Pipeline != "" && req.Pipeline != PipelineSyscall {
			return nil, fmt.Errorf("%w: target \"all\" runs the syscall pipeline, not %q", ErrBadParams, req.Pipeline)
		}
		servers, err := Servers()
		if err != nil {
			return nil, err
		}
		reports, err := analyzeServersContext(ctx, servers, req.Seed, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: SchemaV1, Pipeline: PipelineSyscall, Target: "all", Servers: reports}, nil
	case "gen":
		if req.Pipeline != "" && req.Pipeline != PipelineSyscall {
			return nil, fmt.Errorf("%w: target \"gen\" runs the syscall pipeline, not %q", ErrBadParams, req.Pipeline)
		}
		n, err := GenServerCount(req.Scale)
		if err != nil {
			return nil, err
		}
		servers, err := GenServers(DefaultGenSeed, n)
		if err != nil {
			return nil, err
		}
		reports, err := analyzeServersContext(ctx, servers, req.Seed, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: SchemaV1, Pipeline: PipelineSyscall, Target: "gen", Servers: reports}, nil
	case "ie", "firefox":
		params, err := req.browserParams()
		if err != nil {
			return nil, err
		}
		var br *BrowserTarget
		if req.Target == "ie" {
			br, err = IE(params)
		} else {
			br, err = Firefox(params)
		}
		if err != nil {
			return nil, err
		}
		return runBrowser(ctx, req, br, req.Target, opts)
	default:
		if req.Pipeline != "" && req.Pipeline != PipelineSyscall {
			return nil, fmt.Errorf("%w: pipeline %q needs a browser target, got %q", ErrBadParams, req.Pipeline, req.Target)
		}
		if idx, ok := targets.ParseGenServerRef(req.Target); ok {
			if n, nerr := GenServerCount(req.Scale); nerr == nil && idx >= n {
				return nil, fmt.Errorf("%w: generated server %q out of range at scale %q (fleet size %d)",
					ErrBadParams, req.Target, req.Scale, n)
			}
		}
		srv, err := Server(req.Target)
		if err != nil {
			return nil, err
		}
		rep, err := analyzeServerContext(ctx, srv, req.Seed, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: SchemaV1, Pipeline: PipelineSyscall, Target: srv.Name, Syscall: rep}, nil
	}
}

// runBrowser dispatches a browser target to the api or seh pipeline.
func runBrowser(ctx context.Context, req Request, br *BrowserTarget, target string, opts []Option) (*Result, error) {
	pl := req.Pipeline
	if pl == "" {
		pl = PipelineSEH
	}
	switch pl {
	case PipelineAPI:
		rep, err := analyzeBrowserAPIsContext(ctx, br, req.Seed, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: SchemaV1, Pipeline: PipelineAPI, Target: target, Funnel: rep}, nil
	case PipelineSEH:
		rep, err := analyzeBrowserSEHContext(ctx, br, req.Seed, opts)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: SchemaV1, Pipeline: PipelineSEH, Target: target, SEH: rep}, nil
	case PipelineSyscall:
		return nil, fmt.Errorf("%w: the syscall pipeline needs a server target, got browser %q", ErrBadParams, target)
	default:
		return nil, fmt.Errorf("%w: unknown pipeline %q (want syscall, api or seh)", ErrBadParams, pl)
	}
}

// The pipeline cores, shared by Run and the legacy wrappers. Each builds
// its analyzer from the resolved option set and runs it.

func analyzeServerContext(ctx context.Context, srv *ServerTarget, seed int64, opts []Option) (*SyscallReport, error) {
	return buildOptions(opts).syscallAnalyzer(seed).AnalyzeContext(ctx, srv)
}

func analyzeServersContext(ctx context.Context, servers []*ServerTarget, seed int64, opts []Option) ([]*SyscallReport, error) {
	return buildOptions(opts).syscallAnalyzer(seed).AnalyzeAllContext(ctx, servers)
}

func analyzeBrowserAPIsContext(ctx context.Context, br *BrowserTarget, seed int64, opts []Option) (*APIFunnelReport, error) {
	o := buildOptions(opts)
	a := &discover.APIAnalyzer{
		Seed: seed, Workers: o.workers, Progress: o.progress, Sinks: o.sinks,
		FaultPlan: o.plan, Retries: o.retries, StageTimeout: o.stageTimeout,
		Cache: o.cache, Profile: o.profile, Detect: o.detect,
	}
	return a.AnalyzeContext(ctx, br)
}

func analyzeBrowserSEHContext(ctx context.Context, br *BrowserTarget, seed int64, opts []Option) (*SEHReport, error) {
	o := buildOptions(opts)
	a := &discover.SEHAnalyzer{
		Seed: seed, Workers: o.workers, Progress: o.progress, Sinks: o.sinks,
		FaultPlan: o.plan, Retries: o.retries, StageTimeout: o.stageTimeout,
		Cache: o.cache, Profile: o.profile, Detect: o.detect,
	}
	return a.AnalyzeContext(ctx, br)
}
