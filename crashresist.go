// Package crashresist is the public API of the crash-resistant-primitive
// discovery toolkit, a reproduction of "Towards Automated Discovery of
// Crash-Resistant Primitives in Binary Executables" (Kollenda et al.,
// DSN 2017).
//
// The toolkit runs entirely on a simulated substrate: M64 binaries execute
// inside a deterministic process emulator with a Linux-model syscall layer
// and a Windows-model API/SEH layer. Three discovery pipelines locate
// crash-resistant primitives in those binaries:
//
//   - AnalyzeServer: the Linux syscall pipeline (taint tracking + pointer
//     corruption validation) — Table I.
//   - AnalyzeBrowserAPIs: the Windows API pipeline (black-box fuzzing +
//     call-site harvesting + controllability classification) — the §V-B
//     funnel.
//   - AnalyzeBrowserSEH: the exception-handler pipeline (scope-table
//     extraction + symbolic filter execution + coverage cross-reference) —
//     Tables II and III.
//
// Discovered primitives become memory oracles (package-level *Oracle types)
// that probe the address space without crashing, defeating
// information-hiding defenses; the defense side (RateDetector,
// MappedOnlyPolicy, Rerandomizer) reproduces §VII's countermeasures.
//
// Typical usage:
//
//	srv, _ := crashresist.Server("nginx")
//	report, _ := crashresist.AnalyzeServer(srv, 42)
//	fmt.Println(report.Usable()) // [recv]
package crashresist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"crashresist/internal/cas"
	"crashresist/internal/defense"
	"crashresist/internal/discover"
	"crashresist/internal/faultinject"
	"crashresist/internal/metrics"
	"crashresist/internal/oracle"
	"crashresist/internal/prof"
	"crashresist/internal/targets"
	"crashresist/internal/trace"
	"crashresist/internal/vm"
	"crashresist/internal/winapi"
)

// Typed sentinel errors, matchable with errors.Is.
var (
	// ErrUnknownServer is returned (wrapped) by Server for names outside
	// the Table I set.
	ErrUnknownServer = targets.ErrUnknownServer
	// ErrUnknownTable is returned (wrapped) for artifact selectors outside
	// 1, funnel, 2, 3, prior, rate, all.
	ErrUnknownTable = errors.New("unknown table")
	// ErrBadParams is returned (wrapped) for invalid analysis parameters,
	// e.g. an unrecognized corpus scale.
	ErrBadParams = errors.New("bad parameters")
	// ErrDegraded marks a pipeline result that is partial because one or
	// more jobs exhausted their retry budget (see WithFaultPlan/WithRetry).
	ErrDegraded = discover.ErrDegraded
	// ErrInjectedFault is the root sentinel of every error produced by a
	// fault plan; errors.Is matches it through any wrapping.
	ErrInjectedFault = faultinject.ErrInjected
)

// Target construction.
type (
	// ServerTarget is one of the five Table I server models.
	ServerTarget = targets.Server
	// ServerEnv is a booted server instance.
	ServerEnv = targets.ServerEnv
	// BrowserTarget is one of the two browser models.
	BrowserTarget = targets.Browser
	// BrowserEnv is a booted browser instance.
	BrowserEnv = targets.BrowserEnv
	// BrowserParams sizes a browser model and its DLL/API corpora.
	BrowserParams = targets.BrowserParams
	// CorpusParams sizes the system-DLL corpus.
	CorpusParams = targets.CorpusParams
	// DLLSpec sizes one DLL's exception-handler population.
	DLLSpec = targets.DLLSpec
	// APICorpusParams sizes the platform-API corpus.
	APICorpusParams = winapi.CorpusParams
)

// Discovery pipeline reports.
type (
	// SyscallReport is the per-server Table I result.
	SyscallReport = discover.SyscallReport
	// SyscallStatus classifies one server/syscall cell.
	SyscallStatus = discover.SyscallStatus
	// Finding is one validated syscall candidate.
	Finding = discover.Finding
	// APIFunnelReport is the §V-B funnel result.
	APIFunnelReport = discover.APIFunnelReport
	// APIClassification explains one JS-context API's fate.
	APIClassification = discover.APIClassification
	// SEHReport is the Tables II/III result.
	SEHReport = discover.SEHReport
	// ModuleSEH is one module row of Tables II/III.
	ModuleSEH = discover.ModuleSEH
	// PriorWorkFindings is the §VII-A verification result.
	PriorWorkFindings = discover.PriorWorkFindings
)

// Fault injection & graceful degradation (see DESIGN.md §8).
type (
	// FaultPlan is a deterministic, seed-driven fault injection plan.
	// Attach one with WithFaultPlan to run an analysis in chaos mode.
	FaultPlan = faultinject.Plan
	// FaultSite names an injection point (vm.load, kernel.syscall, ...).
	FaultSite = faultinject.Site
	// FaultSiteConfig tunes one site's rate, mode and try budget.
	FaultSiteConfig = faultinject.SiteConfig
	// Degraded records one job dropped from a report after exhausting its
	// retry budget; reports carry these in their Degraded field.
	Degraded = discover.Degraded
)

// NewFaultPlan returns an empty plan seeded with seed; enable sites with
// its Enable method.
func NewFaultPlan(seed int64) *FaultPlan { return faultinject.New(seed) }

// DefaultFaultPlan returns a plan with every injection site enabled at
// rates tuned for paper-scale chaos runs.
func DefaultFaultPlan(seed int64) *FaultPlan { return faultinject.Default(seed) }

// Observability layer (see DESIGN.md §7).
type (
	// RunStats is the per-run observability record attached to every
	// report's Stats field: counter totals, stage spans, wall clock.
	RunStats = metrics.RunStats
	// StageStats is one completed stage span inside a RunStats.
	StageStats = metrics.StageStats
	// StageEvent is one live progress notification (see WithProgress).
	StageEvent = metrics.StageEvent
	// MetricSink receives live stage events and final run snapshots.
	MetricSink = metrics.Sink
	// MemorySink retains events and snapshots in memory.
	MemorySink = metrics.MemorySink
	// JSONSink writes each run's RunStats as one JSON document.
	JSONSink = metrics.JSONSink
	// ExpvarSink publishes counter totals to /debug/vars.
	ExpvarSink = metrics.ExpvarSink
	// MetricCounter identifies one run counter (CtrInstructions, ...).
	MetricCounter = metrics.Counter
	// TraceSpan is one node of a run's span tree (run → pipeline → stage →
	// shard → job), carried in RunStats.Spans.
	TraceSpan = metrics.Span
	// LatencySnapshot is a stage's frozen per-job virtual-cost histogram
	// with p50/p95/p99/max, carried in StageStats.Latency.
	LatencySnapshot = metrics.HistSnapshot
	// MetricsRegistry accumulates completed runs for live exposition:
	// Prometheus text on /metrics, recent-run Chrome traces on /trace.json.
	MetricsRegistry = metrics.Registry
	// PrimitiveProvenance is one report row's evidence chain.
	PrimitiveProvenance = discover.PrimitiveProvenance
	// EvidenceStep is one link of a provenance chain.
	EvidenceStep = discover.EvidenceStep
)

// Cost profiling (see DESIGN.md §13): an exact, deterministic profiler
// attributing the pipelines' virtual costs (symex steps, VM instructions,
// clock ticks, cache bytes, retries, backoff ticks) to semantic stacks
// pipeline → stage → target → unit. For a fixed request the profile is
// byte-identical at any worker count and with any cache state.
type (
	// Profile accumulates exact virtual-cost samples across one or more
	// runs. Attach one with WithProfile; read it with Snapshot.
	Profile = prof.Profile
	// ProfileSnapshot is a profile's immutable, deterministically ordered
	// export, rendering as folded stacks (flamegraph.pl), a ranked top-N
	// report, or JSON.
	ProfileSnapshot = prof.Snapshot
	// ProfileStack is one sample's semantic attribution path.
	ProfileStack = prof.Stack
	// ProfileKind is one of the virtual cost dimensions (ProfSymexSteps,
	// ProfVMInstructions, ...).
	ProfileKind = prof.Kind
)

// Profile cost kinds.
const (
	ProfSymexSteps     = prof.KindSymexSteps
	ProfVMInstructions = prof.KindVMInstructions
	ProfClockTicks     = prof.KindClockTicks
	ProfRetries        = prof.KindRetries
	ProfBackoffTicks   = prof.KindBackoffTicks
	ProfCacheBytes     = prof.KindCacheBytes
)

// NewProfile returns an empty cost profile.
func NewProfile() *Profile { return prof.New() }

// Run counters, usable with RunStats.Counter.
const (
	CtrInstructions          = metrics.CtrInstructions
	CtrFaults                = metrics.CtrFaults
	CtrFaultsUnmapped        = metrics.CtrFaultsUnmapped
	CtrFaultsHandled         = metrics.CtrFaultsHandled
	CtrSyscalls              = metrics.CtrSyscalls
	CtrEFAULTReturns         = metrics.CtrEFAULTReturns
	CtrAPICalls              = metrics.CtrAPICalls
	CtrProbes                = metrics.CtrProbes
	CtrProbesMapped          = metrics.CtrProbesMapped
	CtrSymexCacheHits        = metrics.CtrSymexCacheHits
	CtrSymexCacheMisses      = metrics.CtrSymexCacheMisses
	CtrSymexCacheUncacheable = metrics.CtrSymexCacheUncacheable
	CtrPoolTasks             = metrics.CtrPoolTasks
	CtrFaultsInjected        = metrics.CtrFaultsInjected
	CtrRetries               = metrics.CtrRetries
	CtrBackoffTicks          = metrics.CtrBackoffTicks
	CtrDegraded              = metrics.CtrDegraded
	CtrCacheHits             = metrics.CtrCacheHits
	CtrCacheMisses           = metrics.CtrCacheMisses
	CtrCacheBadEntries       = metrics.CtrCacheBadEntries
	CtrCacheBytes            = metrics.CtrCacheBytes
	CtrDetections            = metrics.CtrDetections
)

// Stage event kinds.
const (
	StageBegin     = metrics.StageBegin
	StageProgress  = metrics.StageProgress
	StageEnd       = metrics.StageEnd
	StageDetection = metrics.StageDetection
)

// NewMemorySink returns an empty in-memory metric sink.
func NewMemorySink() *MemorySink { return metrics.NewMemorySink() }

// NewJSONSink returns a sink writing one RunStats JSON document per
// completed run to w.
func NewJSONSink(w io.Writer) *JSONSink { return metrics.NewJSONSink(w) }

// NewExpvarSink publishes (or reuses) the named expvar map and accumulates
// counter totals into it. Safe to call repeatedly with the same name, even
// concurrently.
func NewExpvarSink(name string) *ExpvarSink { return metrics.NewExpvarSink(name) }

// NewMetricsRegistry returns an empty live-exposition registry. Attach it
// with WithSink, then serve registry.Handler() (used by cmd/crmon and
// `crdiscover -serve`).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// WriteChromeTrace writes the runs' span trees to w as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, runs ...*RunStats) error {
	return metrics.WriteChromeTrace(w, runs...)
}

// Syscall pipeline statuses (Table I cell legend).
const (
	StatusNotObserved      = discover.StatusNotObserved
	StatusObserved         = discover.StatusObserved
	StatusUntriggered      = discover.StatusUntriggered
	StatusInvalidCandidate = discover.StatusInvalidCandidate
	StatusFalsePositive    = discover.StatusFalsePositive
	StatusUsable           = discover.StatusUsable
)

// Oracles and attacks.
type (
	// Oracle is a crash-resistant memory probing primitive.
	Oracle = oracle.Oracle
	// ProbeResult is the outcome of one probe.
	ProbeResult = oracle.ProbeResult
	// Scanner drives an oracle across address ranges.
	Scanner = oracle.Scanner
	// IEOracle is the §VI-A proof of concept.
	IEOracle = oracle.IEOracle
	// FirefoxOracle is the §VI-B proof of concept.
	FirefoxOracle = oracle.FirefoxOracle
	// NginxOracle is the §VI-C proof of concept.
	NginxOracle = oracle.NginxOracle
	// CherokeeOracle is the §VI-D proof of concept.
	CherokeeOracle = oracle.CherokeeOracle
)

// Probe outcomes.
const (
	ProbeMapped   = oracle.ProbeMapped
	ProbeUnmapped = oracle.ProbeUnmapped
)

// Defenses.
type (
	// RateDetector is the §VII-C fault-rate anomaly detector.
	RateDetector = defense.RateDetector
	// Rerandomizer relocates a hidden region at run time.
	Rerandomizer = defense.Rerandomizer
)

// Defense observatory (DESIGN.md §14): the online detection engine and the
// Table VII-style detectability report. Attach a Detect observer with
// WithDetect (or set Request.IncludeDetect); the rendered section rides
// RunStats/Result, never the report tables.
type (
	// Detect is the streaming detection observer shared across runs; fold
	// points are commutative, so sections are worker- and cache-invariant.
	Detect = defense.Detect
	// DetectReport is the multi-section detectability report (Snapshot).
	DetectReport = defense.Report
	// DetectSection is one pipeline/target's detection record: calibration
	// panel, benign baseline, per-primitive rows, live stream verdicts.
	DetectSection = defense.Section
	// Detectability is one primitive's Table VII-style row.
	Detectability = defense.Detectability
	// DetectionEvent is one detector trip, also emitted as a typed
	// StageEvent (KindDetection) on the live stream.
	DetectionEvent = defense.DetectionEvent
	// Calibration is one detector configuration in the panel.
	Calibration = defense.Calibration
)

// DetectSchema versions the detectability report JSON.
const DetectSchema = defense.DetectSchema

// NewDetect returns a detection observer evaluating the given calibration
// panel; with no arguments it uses DefaultCalibrations.
func NewDetect(cals ...Calibration) *Detect { return defense.NewDetect(cals...) }

// DefaultCalibrations is the standard panel: the §VII-C default window
// detector plus a wide window and an EWMA variant.
func DefaultCalibrations() []Calibration { return defense.DefaultCalibrations() }

// DefaultCalibration is the §VII-C default alone: 64 faults per virtual
// second over a 1-second sliding window.
func DefaultCalibration() Calibration { return defense.DefaultCalibration() }

// Servers builds the five Table I server targets.
func Servers() ([]*ServerTarget, error) { return targets.AllServers() }

// Server builds one server target by name: nginx, cherokee, lighttpd,
// memcached or postgresql.
func Server(name string) (*ServerTarget, error) { return targets.ServerByName(name) }

// IE builds the Internet Explorer 11 browser model.
func IE(params BrowserParams) (*BrowserTarget, error) { return targets.IE(params) }

// Firefox builds the Firefox 46 browser model.
func Firefox(params BrowserParams) (*BrowserTarget, error) { return targets.Firefox(params) }

// PaperBrowserParams returns the full evaluation scale (187 DLLs, 20,672
// APIs, 736,512 trigger events).
func PaperBrowserParams() BrowserParams { return targets.PaperBrowserParams() }

// SmallBrowserParams returns a quick test scale.
func SmallBrowserParams() BrowserParams { return targets.SmallBrowserParams() }

// Generated target universe (DESIGN.md §12): seeded deterministic
// populations behind the -scale knob. Generated corpora have no golden
// files — their results are property-checked against the generators'
// declared specs (worker invariance, cache equivalence, conservation,
// provenance completeness).

// DefaultGenSeed seeds the generated populations used by the large and
// mega scales and the "gen"/"gen-<i>" targets.
const DefaultGenSeed = targets.DefaultGenSeed

type (
	// GenDLLSpec is a generated DLL's declared Tables II/III row.
	GenDLLSpec = targets.GenDLLSpec
	// GenServerProfile is a generated server's declared Table I
	// dispositions.
	GenServerProfile = targets.GenServerProfile
)

// LargeBrowserParams returns the paper corpus extended with a 10×
// generated DLL population (2,057 modules).
func LargeBrowserParams() BrowserParams { return targets.LargeBrowserParams() }

// MegaBrowserParams returns the paper corpus extended with a 100×
// generated DLL population (18,887 modules).
func MegaBrowserParams() BrowserParams { return targets.MegaBrowserParams() }

// BrowserParamsForScale maps a Request.Scale value ("", small, paper,
// large, mega) to browser corpus params; unknown scales match ErrBadParams.
func BrowserParamsForScale(scale string) (BrowserParams, error) {
	switch scale {
	case "", ScaleSmall:
		return SmallBrowserParams(), nil
	case ScalePaper:
		return PaperBrowserParams(), nil
	case ScaleLarge:
		return LargeBrowserParams(), nil
	case ScaleMega:
		return MegaBrowserParams(), nil
	}
	return BrowserParams{}, fmt.Errorf("%w: unknown scale %q (want small, paper, large or mega)", ErrBadParams, scale)
}

// GenServerCount returns the generated server fleet size for a scale
// (the size of the "gen" target); unknown scales match ErrBadParams.
func GenServerCount(scale string) (int, error) {
	switch scale {
	case "", ScaleSmall:
		return targets.GenServersSmall, nil
	case ScalePaper:
		return targets.GenServersPaper, nil
	case ScaleLarge:
		return targets.GenServersLarge, nil
	case ScaleMega:
		return targets.GenServersMega, nil
	}
	return 0, fmt.Errorf("%w: unknown scale %q (want small, paper, large or mega)", ErrBadParams, scale)
}

// GenServer builds one generated server (index i of the seed's universe).
func GenServer(seed int64, index int) (*ServerTarget, error) { return targets.GenServer(seed, index) }

// GenServers builds generated servers 0..n-1 in index order.
func GenServers(seed int64, n int) ([]*ServerTarget, error) { return targets.GenServers(seed, n) }

// GenServerProfiles returns the declared Table I dispositions of
// generated servers 0..n-1 without building the images.
func GenServerProfiles(seed int64, n int) []GenServerProfile {
	return targets.GenServerProfiles(seed, n)
}

// Option tunes an analysis run. All pipelines are deterministic for a
// given seed: every option combination yields byte-identical reports.
// Observability options (WithProgress, WithSink) never change report
// contents — metrics live only in the report's Stats field.
type Option func(*options)

type options struct {
	workers      int
	progress     func(StageEvent)
	sinks        []MetricSink
	plan         *FaultPlan
	retries      int
	stageTimeout time.Duration
	cache        *AnalysisCache
	profile      *Profile
	detect       *Detect
}

// AnalysisCache is a persistent, content-addressed store for analysis
// results (see internal/cas): per-DLL symex verdicts, fuzzing batteries,
// controllability classifications, and syscall validation outcomes. Warm
// runs replay cached results byte-identically; any miss, corruption, or
// I/O error silently degrades to recompute. A nil *AnalysisCache is a
// valid always-miss cache.
type AnalysisCache = cas.Cache

// CacheStats are an AnalysisCache's lifetime hit/miss/corruption counters.
type CacheStats = cas.Stats

// OpenAnalysisCache roots a persistent analysis cache at dir, creating the
// directory if needed. The error reports an unusable (e.g. unwritable)
// directory; callers may warn and proceed without a cache — analyses run
// identically, just cold.
func OpenAnalysisCache(dir string) (*AnalysisCache, error) { return cas.Open(dir) }

// WithCache attaches a persistent analysis cache to the run. Cached
// results are keyed by content hashes of their inputs (target bytes, seed,
// corruption address), so a changed input re-analyzes exactly the changed
// units. Caching never changes report bytes — only the cache_* counters in
// the report's Stats. Runs with a fault plan bypass the cache entirely.
func WithCache(c *AnalysisCache) Option {
	return func(o *options) { o.cache = c }
}

// WithCacheDir is WithCache over OpenAnalysisCache(dir), degrading silently
// to an uncached run when the directory is unusable. CLIs that want to warn
// on a bad directory open explicitly and use WithCache.
func WithCacheDir(dir string) Option {
	return func(o *options) {
		if c, err := cas.Open(dir); err == nil {
			o.cache = c
		}
	}
}

// WithWorkers bounds an analysis's worker pool. Values <= 0 (and omitting
// the option) select GOMAXPROCS. The worker count affects wall-clock time
// only, never report contents.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithProgress installs a live progress callback receiving StageEvents as
// the pipeline moves through its stages. Invocations are serialized — even
// when AnalyzeServers interleaves events from parallel per-server runs —
// so fn needs no locking of its own.
func WithProgress(fn func(StageEvent)) Option {
	return func(o *options) { o.progress = fn }
}

// WithSink attaches a metric sink receiving the run's live events and
// final RunStats. May be given multiple times.
func WithSink(s MetricSink) Option {
	return func(o *options) { o.sinks = append(o.sinks, s) }
}

// WithProfile attaches an exact cost profiler to the run. Every pipeline
// charges its deterministic virtual costs to p's semantic stacks; one
// profile may span several runs (charges accumulate). Profiling never
// changes report contents — like metrics, costs live outside the report
// bytes — and for a fixed request the accumulated profile is identical at
// any worker count and with any cache state.
func WithProfile(p *Profile) Option {
	return func(o *options) { o.profile = p }
}

// WithDetect attaches a detection observer to the run. Every pipeline
// feeds it its fault streams (benign baselines, per-primitive probe
// batteries, the run-level series the online detector watches); one
// observer may span several runs (sections accumulate per pipeline/target).
// Detection never changes report contents — the rendered section rides
// RunStats.Detect — and for a fixed request the section is identical at
// any worker count and with any cache state.
func WithDetect(d *Detect) Option {
	return func(o *options) { o.detect = d }
}

// WithFaultPlan attaches a deterministic fault injection plan to the run
// (chaos mode). Injected failures ride the normal error paths; combined
// with WithRetry the pipelines degrade gracefully, recording dropped jobs
// in the report's Degraded field instead of aborting. For a fixed plan
// seed the degraded set is identical at every worker count.
func WithFaultPlan(p *FaultPlan) Option {
	return func(o *options) { o.plan = p }
}

// WithRetry bounds per-job re-runs after a transient failure (n retries
// after the first attempt). Setting a retry budget — or any fault plan —
// switches job failures from aborting the analysis to degrading it.
// Backoff between attempts is virtual: deterministic ticks are counted in
// CtrBackoffTicks, no wall-clock sleeping happens.
func WithRetry(n int) Option {
	return func(o *options) { o.retries = n }
}

// WithStageTimeout bounds each fanned-out pipeline stage; a stage that
// exceeds d is cancelled and the analysis returns a context error. Zero
// (and omitting the option) means no limit.
func WithStageTimeout(d time.Duration) Option {
	return func(o *options) { o.stageTimeout = d }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.progress != nil {
		// One analysis call may run several collectors concurrently
		// (AnalyzeServers); serialize the user's callback across them.
		var mu sync.Mutex
		fn := o.progress
		o.progress = func(ev StageEvent) {
			mu.Lock()
			defer mu.Unlock()
			fn(ev)
		}
	}
	return o
}

func (o options) syscallAnalyzer(seed int64) *discover.SyscallAnalyzer {
	return &discover.SyscallAnalyzer{
		Seed: seed, Workers: o.workers, Progress: o.progress, Sinks: o.sinks,
		FaultPlan: o.plan, Retries: o.retries, StageTimeout: o.stageTimeout,
		Cache: o.cache, Profile: o.profile, Detect: o.detect,
	}
}

// AnalyzeServer runs the Linux syscall pipeline against one server target.
// The seed fixes ASLR across the observation and validation runs.
//
// It is a convenience wrapper over Run: equivalent to running
// Request{Server: srv, Seed: seed} with the options as functional
// overrides. New code may prefer Run directly.
func AnalyzeServer(srv *ServerTarget, seed int64, opts ...Option) (*SyscallReport, error) {
	return AnalyzeServerContext(context.Background(), srv, seed, opts...)
}

// AnalyzeServerContext is AnalyzeServer with cancellation: the pipeline
// checks ctx between stages and before each validation replay, returning
// ctx.Err() once it is done. It wraps Run(ctx, Request{Server: srv, ...}).
func AnalyzeServerContext(ctx context.Context, srv *ServerTarget, seed int64, opts ...Option) (*SyscallReport, error) {
	res, err := Run(ctx, Request{Server: srv, Seed: seed, Options: opts})
	if err != nil {
		return nil, err
	}
	return res.Syscall, nil
}

// AnalyzeServers runs the Linux syscall pipeline against every server in
// parallel, returning reports in input order.
//
// It is a convenience wrapper over Run: equivalent to running
// Request{Servers: servers, Seed: seed}. New code may prefer Run directly.
func AnalyzeServers(servers []*ServerTarget, seed int64, opts ...Option) ([]*SyscallReport, error) {
	return AnalyzeServersContext(context.Background(), servers, seed, opts...)
}

// AnalyzeServersContext is AnalyzeServers with cancellation. It wraps
// Run(ctx, Request{Servers: servers, ...}).
func AnalyzeServersContext(ctx context.Context, servers []*ServerTarget, seed int64, opts ...Option) ([]*SyscallReport, error) {
	res, err := Run(ctx, Request{Servers: servers, Seed: seed, Options: opts})
	if err != nil {
		return nil, err
	}
	return res.Servers, nil
}

// AnalyzeBrowserAPIs runs the Windows API pipeline against a browser target.
//
// It is a convenience wrapper over Run: equivalent to running
// Request{Pipeline: PipelineAPI, Browser: br, Seed: seed}. New code may
// prefer Run directly.
func AnalyzeBrowserAPIs(br *BrowserTarget, seed int64, opts ...Option) (*APIFunnelReport, error) {
	return AnalyzeBrowserAPIsContext(context.Background(), br, seed, opts...)
}

// AnalyzeBrowserAPIsContext is AnalyzeBrowserAPIs with cancellation: the
// pipeline checks ctx between stages and before each fuzzing or
// classification job. It wraps Run(ctx, Request{Pipeline: PipelineAPI, ...}).
func AnalyzeBrowserAPIsContext(ctx context.Context, br *BrowserTarget, seed int64, opts ...Option) (*APIFunnelReport, error) {
	res, err := Run(ctx, Request{Pipeline: PipelineAPI, Browser: br, Seed: seed, Options: opts})
	if err != nil {
		return nil, err
	}
	return res.Funnel, nil
}

// AnalyzeBrowserSEH runs the exception-handler pipeline against a browser
// target.
//
// It is a convenience wrapper over Run: equivalent to running
// Request{Pipeline: PipelineSEH, Browser: br, Seed: seed}. New code may
// prefer Run directly.
func AnalyzeBrowserSEH(br *BrowserTarget, seed int64, opts ...Option) (*SEHReport, error) {
	return AnalyzeBrowserSEHContext(context.Background(), br, seed, opts...)
}

// AnalyzeBrowserSEHContext is AnalyzeBrowserSEH with cancellation: the
// pipeline checks ctx between stages and before each per-DLL symex job. It
// wraps Run(ctx, Request{Pipeline: PipelineSEH, ...}).
func AnalyzeBrowserSEHContext(ctx context.Context, br *BrowserTarget, seed int64, opts ...Option) (*SEHReport, error) {
	res, err := Run(ctx, Request{Pipeline: PipelineSEH, Browser: br, Seed: seed, Options: opts})
	if err != nil {
		return nil, err
	}
	return res.SEH, nil
}

// PriorWork checks an SEH report for the §VII-A previously-published
// primitives.
func PriorWork(rep *SEHReport) PriorWorkFindings { return discover.PriorWork(rep) }

// NewScanner wraps an oracle with probing statistics.
func NewScanner(o Oracle) *Scanner { return oracle.NewScanner(o) }

// PlantHiddenRegion maps a reference-less region (the SafeStack/CPI-metadata
// stand-in) into a process and returns its secret base.
func PlantHiddenRegion(p *vm.Process, size uint64) (uint64, error) {
	return oracle.PlantHiddenRegion(p, size)
}

// NewIEOracle builds the §VI-A oracle on a started IE environment.
func NewIEOracle(env *BrowserEnv) (*IEOracle, error) { return oracle.NewIEOracle(env) }

// NewFirefoxOracle builds the §VI-B oracle on a started Firefox environment.
func NewFirefoxOracle(env *BrowserEnv) (*FirefoxOracle, error) { return oracle.NewFirefoxOracle(env) }

// NewNginxOracle builds the §VI-C oracle on a running nginx environment.
func NewNginxOracle(env *ServerEnv) *NginxOracle { return oracle.NewNginxOracle(env) }

// NewCherokeeOracle builds the §VI-D timing oracle; requests is the batch
// size per measurement (1,000 in the paper).
func NewCherokeeOracle(env *ServerEnv, requests int) (*CherokeeOracle, error) {
	return oracle.NewCherokeeOracle(env, requests)
}

// DefaultRateDetector returns the §VII-C calibration.
func DefaultRateDetector() RateDetector { return defense.DefaultRateDetector() }

// ProbesToCover returns how many stride-sized probes cover an address range.
func ProbesToCover(rangeBytes, stride uint64) uint64 {
	return defense.ProbesToCover(rangeBytes, stride)
}

// MappedOnlyPolicy returns the VM policy making unmapped access violations
// unrecoverable (§VII-C).
func MappedOnlyPolicy() vm.Policy { return defense.MappedOnlyPolicy() }

// NewRerandomizer plants a relocatable hidden region.
func NewRerandomizer(p *vm.Process, size uint64) (*Rerandomizer, error) {
	return defense.NewRerandomizer(p, size)
}

// NewExceptionRecorder returns a tracer recording exception events for the
// rate-detection experiments; attach it to a process before running a
// workload.
func NewExceptionRecorder() *trace.Recorder {
	rec := trace.NewRecorder()
	rec.EnableExceptionLog()
	return rec
}
