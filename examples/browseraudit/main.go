// Browseraudit runs both Windows-side pipelines against the Internet
// Explorer model: the §V-B API funnel and the Tables II/III exception-
// handler inventory, finishing with the §VII-A prior-work checks against
// the Firefox model.
//
//	go run ./examples/browseraudit            # test scale
//	go run ./examples/browseraudit -paper     # full 187-DLL / 20,672-API scale
package main

import (
	"flag"
	"fmt"
	"log"

	"crashresist"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	paper := flag.Bool("paper", false, "use the full paper-scale corpora")
	flag.Parse()

	params := crashresist.SmallBrowserParams()
	if *paper {
		params = crashresist.PaperBrowserParams()
	}

	fmt.Println("building Internet Explorer 11 model ...")
	ie, err := crashresist.IE(params)
	if err != nil {
		return err
	}

	fmt.Println("pipeline 2: Windows API fuzzing + call-site harvesting ...")
	funnel, err := crashresist.AnalyzeBrowserAPIs(ie, 42)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(crashresist.FormatFunnel(funnel))

	fmt.Println("pipeline 3: scope-table extraction + symbolic filter execution ...")
	sehRep, err := crashresist.AnalyzeBrowserSEH(ie, 42)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(crashresist.FormatTableII(sehRep, crashresist.NamedDLLs()))
	fmt.Println(crashresist.FormatTableIII(sehRep, crashresist.NamedDLLs()))

	fmt.Printf("candidates for manual vetting: %d on-path accepting handlers\n",
		len(sehRep.Candidates))

	fmt.Println("\n§VII-A: locating the previously published primitives ...")
	iePW := crashresist.PriorWork(sehRep)
	fmt.Printf("  IE MUTX::Enter catch-all rediscovered automatically: %v\n", iePW.IECatchAllFound)
	fmt.Printf("  IE post-update filter flagged for manual analysis:   %v\n", iePW.IEPostUpdateNeedsManual)

	ff, err := crashresist.Firefox(params)
	if err != nil {
		return err
	}
	ffRep, err := crashresist.AnalyzeBrowserSEH(ff, 42)
	if err != nil {
		return err
	}
	ffPW := crashresist.PriorWork(ffRep)
	fmt.Printf("  Firefox VEH primitive missed by the static pipeline: %v\n", ffPW.FirefoxVEHMissed)
	return nil
}
