// Browseraudit runs both Windows-side pipelines against the Internet
// Explorer model: the §V-B API funnel and the Tables II/III exception-
// handler inventory, finishing with the §VII-A prior-work checks against
// the Firefox model.
//
//	go run ./examples/browseraudit            # test scale
//	go run ./examples/browseraudit -paper     # full 187-DLL / 20,672-API scale
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"crashresist"
)

func main() {
	paper := flag.Bool("paper", false, "use the full paper-scale corpora")
	flag.Parse()
	if err := run(os.Stdout, *paper); err != nil {
		log.Fatal(err)
	}
}

// Run executes the audit at test scale, writing its report to w. It is
// exported so the smoke tests can drive the whole flow in-process.
func Run(w io.Writer) error { return run(w, false) }

func run(w io.Writer, paper bool) error {
	params := crashresist.SmallBrowserParams()
	if paper {
		params = crashresist.PaperBrowserParams()
	}

	fmt.Fprintln(w, "building Internet Explorer 11 model ...")
	ie, err := crashresist.IE(params)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "pipeline 2: Windows API fuzzing + call-site harvesting ...")
	funnel, err := crashresist.AnalyzeBrowserAPIs(ie, 42)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, crashresist.FormatFunnel(funnel))

	fmt.Fprintln(w, "pipeline 3: scope-table extraction + symbolic filter execution ...")
	sehRep, err := crashresist.AnalyzeBrowserSEH(ie, 42)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, crashresist.FormatTableII(sehRep, crashresist.NamedDLLs()))
	fmt.Fprintln(w, crashresist.FormatTableIII(sehRep, crashresist.NamedDLLs()))

	fmt.Fprintf(w, "candidates for manual vetting: %d on-path accepting handlers\n",
		len(sehRep.Candidates))

	fmt.Fprintln(w, "\n§VII-A: locating the previously published primitives ...")
	iePW := crashresist.PriorWork(sehRep)
	fmt.Fprintf(w, "  IE MUTX::Enter catch-all rediscovered automatically: %v\n", iePW.IECatchAllFound)
	fmt.Fprintf(w, "  IE post-update filter flagged for manual analysis:   %v\n", iePW.IEPostUpdateNeedsManual)

	ff, err := crashresist.Firefox(params)
	if err != nil {
		return err
	}
	ffRep, err := crashresist.AnalyzeBrowserSEH(ff, 42)
	if err != nil {
		return err
	}
	ffPW := crashresist.PriorWork(ffRep)
	fmt.Fprintf(w, "  Firefox VEH primitive missed by the static pipeline: %v\n", ffPW.FirefoxVEHMissed)
	return nil
}
