package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives both Windows pipelines at test scale: the funnel and
// Tables II/III render, and all three §VII-A prior-work checks come back
// true.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf); err != nil {
		t.Fatalf("Run: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"§V-B Windows API funnel (iexplore)",
		"Table II — guarded code locations (iexplore run)",
		"Table III — unique exception filters (iexplore run)",
		"IE MUTX::Enter catch-all rediscovered automatically: true",
		"IE post-update filter flagged for manual analysis:   true",
		"Firefox VEH primitive missed by the static pipeline: true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
