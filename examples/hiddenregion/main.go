// Hiddenregion demonstrates the attack-versus-defense arms race around
// information hiding (§II-B and §VII):
//
//  1. A browser hides a SafeStack-style region; the attacker's oracle finds
//     it without a crash.
//
//  2. Runtime re-randomization moves the region; the leaked address goes
//     stale and the attacker must re-scan.
//
//  3. The mapped-only exception policy terminates the scan at its first
//     unmapped probe.
//
//  4. The fault-rate detector flags the scan long before it completes.
//
//     go run ./examples/hiddenregion
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"crashresist"
	"crashresist/internal/vm"
)

const regionSize = 32 * 4096

func main() {
	if err := Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Run executes all four acts, writing the narration to w. It is exported
// so the smoke tests can drive the whole flow in-process.
func Run(w io.Writer) error {
	if err := actOne(w); err != nil {
		return fmt.Errorf("act 1: %w", err)
	}
	if err := actTwo(w); err != nil {
		return fmt.Errorf("act 2: %w", err)
	}
	if err := actThree(w); err != nil {
		return fmt.Errorf("act 3: %w", err)
	}
	return actFour(w)
}

// newFirefox boots a Firefox-model environment.
func newFirefox(seed int64, policy vm.Policy) (*crashresist.BrowserEnv, error) {
	br, err := crashresist.Firefox(crashresist.SmallBrowserParams())
	if err != nil {
		return nil, err
	}
	env, err := br.NewEnv(seed)
	if err != nil {
		return nil, err
	}
	env.Proc.Policy = policy
	if err := env.Start(); err != nil {
		return nil, err
	}
	return env, nil
}

func actOne(w io.Writer) error {
	fmt.Fprintln(w, "--- act 1: crash resistance defeats information hiding ---")
	env, err := newFirefox(1, vm.Policy{})
	if err != nil {
		return err
	}
	hidden, err := crashresist.PlantHiddenRegion(env.Proc, regionSize)
	if err != nil {
		return err
	}
	o, err := crashresist.NewFirefoxOracle(env)
	if err != nil {
		return err
	}
	s := crashresist.NewScanner(o)
	base, err := s.LocateHiddenRegion(hidden-16*regionSize, hidden+16*regionSize, regionSize)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hidden region found at %#x in %d probes, %d crashes\n\n",
		base, s.Stats.Probes, s.Stats.Crashes)
	return nil
}

func actTwo(w io.Writer) error {
	fmt.Fprintln(w, "--- act 2: re-randomization stales the leak ---")
	env, err := newFirefox(2, vm.Policy{})
	if err != nil {
		return err
	}
	rr, err := crashresist.NewRerandomizer(env.Proc, regionSize)
	if err != nil {
		return err
	}
	o, err := crashresist.NewFirefoxOracle(env)
	if err != nil {
		return err
	}
	leaked := rr.Base()
	res, err := o.Probe(leaked)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "probe of leaked base %#x before move: %v\n", leaked, res)
	if err := rr.Move(); err != nil {
		return err
	}
	res, err = o.Probe(leaked)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "probe of stale base %#x after move:  %v (region now at a new secret base)\n\n",
		leaked, res)
	return nil
}

func actThree(w io.Writer) error {
	fmt.Fprintln(w, "--- act 3: mapped-only AV policy kills the scan ---")
	env, err := newFirefox(3, crashresist.MappedOnlyPolicy())
	if err != nil {
		return err
	}
	// Guard-page optimizations still work ...
	if _, err := env.Call("xul.dll", "asmjs_run", 5); err != nil {
		return err
	}
	fmt.Fprintln(w, "asm.js guard-page faults: still handled")
	// ... but the first unmapped probe is fatal.
	o, err := crashresist.NewFirefoxOracle(env)
	if err != nil {
		return err
	}
	o.Probe(0xdead0000)
	fmt.Fprintf(w, "first unmapped probe: process state = %v\n\n", env.Proc.State)
	return nil
}

func actFour(w io.Writer) error {
	fmt.Fprintln(w, "--- act 4: fault-rate detection flags the scan ---")
	env, err := newFirefox(4, vm.Policy{})
	if err != nil {
		return err
	}
	rec := crashresist.NewExceptionRecorder()
	rec.Attach(env.Proc)
	det := crashresist.DefaultRateDetector()

	if err := env.Browse(); err != nil {
		return err
	}
	fmt.Fprintf(w, "normal browsing: peak AV rate %d (detected: %v)\n",
		det.Peak(rec.Exceptions()), det.Detect(rec.Exceptions()))

	rec.ResetExceptions()
	if _, err := env.Call("xul.dll", "asmjs_run", 20); err != nil {
		return err
	}
	fmt.Fprintf(w, "asm.js stress:   peak AV rate %d (detected: %v)\n",
		det.Peak(rec.Exceptions()), det.Detect(rec.Exceptions()))

	rec.ResetExceptions()
	o, err := crashresist.NewFirefoxOracle(env)
	if err != nil {
		return err
	}
	for i := 0; i < 128; i++ {
		if _, err := o.Probe(0xdead0000 + uint64(i)*0x1000); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "scanning attack: peak AV rate %d (detected: %v)\n",
		det.Peak(rec.Exceptions()), det.Detect(rec.Exceptions()))
	return nil
}
