package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives all four acts in-process: the attack lands without a
// crash, re-randomization stales the leak, the mapped-only policy kills
// the scan, and the rate detector flags it.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf); err != nil {
		t.Fatalf("Run: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"hidden region found at",
		"probe of stale base",
		"asm.js guard-page faults: still handled",
		"scanning attack: peak AV rate 101 (detected: true)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "crashes: 1") {
		t.Errorf("act 1 scan crashed the browser:\n%s", out)
	}
}
