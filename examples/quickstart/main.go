// Quickstart: discover a crash-resistant primitive in one server and use it
// as a memory oracle — the paper's complete loop in under a minute.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"crashresist"
)

func main() {
	if err := Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Run executes the example, writing its report to w. It is exported so the
// smoke tests can drive the whole flow in-process.
func Run(w io.Writer) error {
	// 1. Build the Nginx 1.9 model — a real M64 binary with the
	//    connection-buffer architecture of §VI-C.
	srv, err := crashresist.Server("nginx")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "target: %s (%d bytes of code, %d functions)\n",
		srv.Name, len(srv.Image.Text), len(srv.Image.Symbols))

	// 2. Run the discovery pipeline: taint-tracked test suite, candidate
	//    extraction, corruption validation.
	report, err := crashresist.AnalyzeServer(srv, 42)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\ndiscovery results:")
	for _, f := range report.Findings {
		fmt.Fprintf(w, "  %-10s → %-20s (%s)\n", f.Syscall, f.Status, f.Detail)
	}
	usable := report.Usable()
	if len(usable) == 0 {
		return fmt.Errorf("no usable primitive found")
	}
	fmt.Fprintf(w, "\nusable crash-resistant primitive: %s\n", usable[0])

	// 3. Weaponize it: boot a victim instance, hide a SafeStack-style
	//    region, and let the oracle find it without crashing the server.
	env, err := srv.NewEnv(42)
	if err != nil {
		return err
	}
	const regionSize = 32 * 4096
	hidden, err := crashresist.PlantHiddenRegion(env.Proc, regionSize)
	if err != nil {
		return err
	}

	scanner := crashresist.NewScanner(crashresist.NewNginxOracle(env))
	base, err := scanner.LocateHiddenRegion(hidden-16*regionSize, hidden+16*regionSize, regionSize)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nprobing via %s:\n", scanner.Oracle.Name())
	fmt.Fprintf(w, "  hidden region located at %#x (truth: %#x)\n", base, hidden)
	fmt.Fprintf(w, "  probes: %d, crashes: %d\n", scanner.Stats.Probes, scanner.Stats.Crashes)
	if !srv.ServiceCheck(env) {
		return fmt.Errorf("server stopped serving")
	}
	fmt.Fprintln(w, "  server still serves clients — the scan was invisible")
	return nil
}
