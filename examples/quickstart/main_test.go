package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the full example in-process: discovery must find the
// recv primitive, the oracle must locate the hidden region, and the server
// must survive the scan.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf); err != nil {
		t.Fatalf("Run: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"target: nginx",
		"usable crash-resistant primitive: recv",
		"crashes: 0",
		"server still serves clients — the scan was invisible",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
