package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the Table I audit in-process: the matrix renders,
// the memcached false positive is called out, and the headline count (one
// usable primitive per server) holds.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf); err != nil {
		t.Fatalf("Run: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"Table I — syscall probing candidates per server",
		"FALSE POSITIVE: epoll_wait",
		"total usable crash-resistant primitives across servers: 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
