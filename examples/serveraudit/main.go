// Serveraudit reproduces Table I end to end: the Linux syscall pipeline runs
// over all five server models, and the resulting candidate matrix is printed
// in the paper's format together with the per-server findings.
//
//	go run ./examples/serveraudit
package main

import (
	"fmt"
	"log"

	"crashresist"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	servers, err := crashresist.Servers()
	if err != nil {
		return err
	}

	var reports []*crashresist.SyscallReport
	for _, srv := range servers {
		fmt.Printf("auditing %s ...\n", srv.Name)
		rep, err := crashresist.AnalyzeServer(srv, 42)
		if err != nil {
			return fmt.Errorf("audit %s: %w", srv.Name, err)
		}
		reports = append(reports, rep)
	}

	fmt.Println()
	fmt.Println(crashresist.FormatTableI(reports))

	fmt.Println("per-server detail:")
	for _, rep := range reports {
		fmt.Printf("\n%s:\n", rep.Server)
		fmt.Printf("  usable primitives: %v\n", rep.Usable())
		fmt.Printf("  observed-only syscalls: %v\n", rep.ObservedOnly)
		for _, f := range rep.Findings {
			if f.Status == crashresist.StatusFalsePositive {
				fmt.Printf("  FALSE POSITIVE: %s — %s\n", f.Syscall, f.Detail)
			}
		}
	}

	// The paper's headline: one usable primitive per server, plus the
	// Memcached false positive that only a service-level check exposes.
	total := 0
	for _, rep := range reports {
		total += len(rep.Usable())
	}
	fmt.Printf("\ntotal usable crash-resistant primitives across servers: %d\n", total)
	return nil
}
