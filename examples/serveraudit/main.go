// Serveraudit reproduces Table I end to end: the Linux syscall pipeline runs
// over all five server models, and the resulting candidate matrix is printed
// in the paper's format together with the per-server findings.
//
//	go run ./examples/serveraudit
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"crashresist"
)

func main() {
	if err := Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Run executes the audit, writing its report to w. It is exported so the
// smoke tests can drive the whole flow in-process.
func Run(w io.Writer) error {
	servers, err := crashresist.Servers()
	if err != nil {
		return err
	}

	for _, srv := range servers {
		fmt.Fprintf(w, "auditing %s ...\n", srv.Name)
	}
	// All five pipelines fan out across the worker pool; reports come
	// back in server order regardless of scheduling.
	reports, err := crashresist.AnalyzeServers(servers, 42)
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, crashresist.FormatTableI(reports))

	fmt.Fprintln(w, "per-server detail:")
	for _, rep := range reports {
		fmt.Fprintf(w, "\n%s:\n", rep.Server)
		fmt.Fprintf(w, "  usable primitives: %v\n", rep.Usable())
		fmt.Fprintf(w, "  observed-only syscalls: %v\n", rep.ObservedOnly)
		for _, f := range rep.Findings {
			if f.Status == crashresist.StatusFalsePositive {
				fmt.Fprintf(w, "  FALSE POSITIVE: %s — %s\n", f.Syscall, f.Detail)
			}
		}
	}

	// The paper's headline: one usable primitive per server, plus the
	// Memcached false positive that only a service-level check exposes.
	total := 0
	for _, rep := range reports {
		total += len(rep.Usable())
	}
	fmt.Fprintf(w, "\ntotal usable crash-resistant primitives across servers: %d\n", total)
	return nil
}
