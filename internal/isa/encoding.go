package isa

import (
	"encoding/binary"
	"fmt"
)

// Encoding errors.
type (
	// InvalidOpError reports an undefined opcode byte.
	InvalidOpError struct{ Op Op }
	// TruncatedError reports a byte stream too short for the opcode's layout.
	TruncatedError struct {
		Op   Op
		Need int
		Have int
	}
	// BadRegisterError reports a register operand out of range.
	BadRegisterError struct {
		Op  Op
		Reg Register
	}
)

func (e *InvalidOpError) Error() string { return fmt.Sprintf("invalid opcode %#x", uint8(e.Op)) }

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("truncated %s: need %d bytes, have %d", e.Op, e.Need, e.Have)
}

func (e *BadRegisterError) Error() string {
	return fmt.Sprintf("%s: bad register operand %d", e.Op, e.Reg)
}

// Encode appends the binary encoding of ins to dst and returns the extended
// slice. It returns an error if the instruction is malformed.
func Encode(dst []byte, ins Instruction) ([]byte, error) {
	layout := LayoutOf(ins.Op)
	if layout == 0 {
		return dst, &InvalidOpError{Op: ins.Op}
	}
	if needsA(layout) && !ins.A.Valid() {
		return dst, &BadRegisterError{Op: ins.Op, Reg: ins.A}
	}
	if needsB(layout) && !ins.B.Valid() {
		return dst, &BadRegisterError{Op: ins.Op, Reg: ins.B}
	}

	dst = append(dst, byte(ins.Op))
	switch layout {
	case LayoutNone:
	case LayoutR:
		dst = append(dst, byte(ins.A))
	case LayoutRR:
		dst = append(dst, byte(ins.A), byte(ins.B))
	case LayoutRI64:
		dst = append(dst, byte(ins.A))
		dst = binary.LittleEndian.AppendUint64(dst, ins.Imm)
	case LayoutRI32:
		dst = append(dst, byte(ins.A))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(ins.Disp))
	case LayoutRRD:
		dst = append(dst, byte(ins.A), byte(ins.B))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(ins.Disp))
	case LayoutD32:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(ins.Disp))
	}
	return dst, nil
}

// Decode decodes one instruction from the front of buf. It returns the
// instruction and its encoded size.
func Decode(buf []byte) (Instruction, int, error) {
	if len(buf) == 0 {
		return Instruction{}, 0, &TruncatedError{Need: 1}
	}
	op := Op(buf[0])
	layout := LayoutOf(op)
	if layout == 0 {
		return Instruction{}, 0, &InvalidOpError{Op: op}
	}
	size := layout.Size()
	if len(buf) < size {
		return Instruction{}, 0, &TruncatedError{Op: op, Need: size, Have: len(buf)}
	}

	ins := Instruction{Op: op}
	switch layout {
	case LayoutNone:
	case LayoutR:
		ins.A = Register(buf[1])
	case LayoutRR:
		ins.A = Register(buf[1])
		ins.B = Register(buf[2])
	case LayoutRI64:
		ins.A = Register(buf[1])
		ins.Imm = binary.LittleEndian.Uint64(buf[2:])
	case LayoutRI32:
		ins.A = Register(buf[1])
		ins.Disp = int32(binary.LittleEndian.Uint32(buf[2:]))
	case LayoutRRD:
		ins.A = Register(buf[1])
		ins.B = Register(buf[2])
		ins.Disp = int32(binary.LittleEndian.Uint32(buf[3:]))
	case LayoutD32:
		ins.Disp = int32(binary.LittleEndian.Uint32(buf[1:]))
	}
	if needsA(layout) && !ins.A.Valid() {
		return Instruction{}, 0, &BadRegisterError{Op: op, Reg: ins.A}
	}
	if needsB(layout) && !ins.B.Valid() {
		return Instruction{}, 0, &BadRegisterError{Op: op, Reg: ins.B}
	}
	return ins, size, nil
}

// EncodeAll encodes a sequence of instructions into a fresh byte slice.
func EncodeAll(prog []Instruction) ([]byte, error) {
	var (
		out []byte
		err error
	)
	for i, ins := range prog {
		out, err = Encode(out, ins)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
	}
	return out, nil
}

// DecodeAll decodes instructions until buf is exhausted.
func DecodeAll(buf []byte) ([]Instruction, error) {
	var out []Instruction
	for off := 0; off < len(buf); {
		ins, n, err := Decode(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("offset %d: %w", off, err)
		}
		out = append(out, ins)
		off += n
	}
	return out, nil
}

func needsA(l Layout) bool { return l != LayoutNone && l != LayoutD32 }
func needsB(l Layout) bool { return l == LayoutRR || l == LayoutRRD }
