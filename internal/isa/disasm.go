package isa

import (
	"fmt"
	"strings"
)

// DisasmLine is one line of disassembly output.
type DisasmLine struct {
	Offset int
	Ins    Instruction
}

// Disassemble decodes code and renders it as offset-annotated assembler text.
// Decoding stops at the first invalid byte, which is reported in the output
// rather than returned as an error so partial dumps remain useful.
func Disassemble(code []byte) string {
	var b strings.Builder
	for off := 0; off < len(code); {
		ins, n, err := Decode(code[off:])
		if err != nil {
			fmt.Fprintf(&b, "%6d: <%v>\n", off, err)
			break
		}
		fmt.Fprintf(&b, "%6d: %s\n", off, ins)
		off += n
	}
	return b.String()
}

// Scan decodes code into offset/instruction pairs, stopping at the first
// decoding error. The error (if any) is returned alongside whatever was
// decoded successfully.
func Scan(code []byte) ([]DisasmLine, error) {
	var out []DisasmLine
	for off := 0; off < len(code); {
		ins, n, err := Decode(code[off:])
		if err != nil {
			return out, fmt.Errorf("offset %d: %w", off, err)
		}
		out = append(out, DisasmLine{Offset: off, Ins: ins})
		off += n
	}
	return out, nil
}
