package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisterString(t *testing.T) {
	tests := []struct {
		give Register
		want string
	}{
		{R0, "r0"},
		{R15, "r15"},
		{SP, "sp"},
		{Register(42), "reg?42"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Register(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestRegisterValid(t *testing.T) {
	if !R0.Valid() || !SP.Valid() {
		t.Error("R0 and SP must be valid")
	}
	if Register(NumRegisters).Valid() {
		t.Error("register beyond SP must be invalid")
	}
}

func TestLayoutSizes(t *testing.T) {
	tests := []struct {
		give Layout
		want int
	}{
		{LayoutNone, 1},
		{LayoutR, 2},
		{LayoutRR, 3},
		{LayoutRI64, 10},
		{LayoutRI32, 6},
		{LayoutRRD, 7},
		{LayoutD32, 5},
		{Layout(0), 0},
	}
	for _, tt := range tests {
		if got := tt.give.Size(); got != tt.want {
			t.Errorf("Layout(%d).Size() = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestEveryOpcodeHasLayoutAndName(t *testing.T) {
	for op := OpNop; op < opMax; op++ {
		if LayoutOf(op) == 0 {
			t.Errorf("opcode %d has no layout", op)
		}
		if strings.HasPrefix(op.String(), "op?") {
			t.Errorf("opcode %d has no name", op)
		}
		if !op.Valid() {
			t.Errorf("opcode %d should be valid", op)
		}
	}
	if Op(0).Valid() || opMax.Valid() {
		t.Error("0 and opMax must be invalid opcodes")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Instruction{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpRet},
		{Op: OpSyscall},
		{Op: OpYield},
		{Op: OpPush, A: R3},
		{Op: OpPop, A: SP},
		{Op: OpCallR, A: R9},
		{Op: OpJmpR, A: R1},
		{Op: OpNot, A: R2},
		{Op: OpNeg, A: R15},
		{Op: OpMovRR, A: R1, B: R2},
		{Op: OpAddRR, A: R0, B: SP},
		{Op: OpDivRR, A: R4, B: R5},
		{Op: OpCmpRR, A: R6, B: R7},
		{Op: OpTestRR, A: R8, B: R9},
		{Op: OpMovRI, A: R1, Imm: math.MaxUint64},
		{Op: OpMovRI, A: R1, Imm: 0},
		{Op: OpAddRI, A: R1, Disp: -1},
		{Op: OpCmpRI, A: R2, Disp: math.MaxInt32},
		{Op: OpTestRI, A: R2, Disp: math.MinInt32},
		{Op: OpLea, A: R3, Disp: -128},
		{Op: OpLoad1, A: R0, B: R1, Disp: 16},
		{Op: OpLoad8, A: R0, B: SP, Disp: -8},
		{Op: OpStore4, A: R1, B: R2, Disp: 1 << 20},
		{Op: OpJmp, Disp: -5},
		{Op: OpJz, Disp: 100},
		{Op: OpCall, Disp: 0},
		{Op: OpCallI, Disp: 12345},
		{Op: OpRaise, Disp: CodeToDisp(0xC0000005)},
	}
	for _, tt := range tests {
		t.Run(tt.String(), func(t *testing.T) {
			enc, err := Encode(nil, tt)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if len(enc) != tt.Size() {
				t.Fatalf("encoded size = %d, want %d", len(enc), tt.Size())
			}
			dec, n, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if n != len(enc) {
				t.Fatalf("decoded size = %d, want %d", n, len(enc))
			}
			if dec != tt {
				t.Fatalf("round trip: got %+v, want %+v", dec, tt)
			}
		})
	}
}

func TestEncodeRejectsBadRegister(t *testing.T) {
	tests := []Instruction{
		{Op: OpPush, A: Register(200)},
		{Op: OpMovRR, A: R0, B: Register(17)},
		{Op: OpLoad8, A: Register(99), B: R0},
	}
	for _, tt := range tests {
		if _, err := Encode(nil, tt); err == nil {
			t.Errorf("Encode(%+v) should fail", tt)
		}
	}
}

func TestEncodeRejectsInvalidOp(t *testing.T) {
	if _, err := Encode(nil, Instruction{Op: Op(0)}); err == nil {
		t.Error("Encode with op 0 should fail")
	}
	if _, err := Encode(nil, Instruction{Op: opMax}); err == nil {
		t.Error("Encode with opMax should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc, err := Encode(nil, Instruction{Op: OpMovRI, A: R1, Imm: 42})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes should fail", cut, len(enc))
		}
	}
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode of empty buffer should fail")
	}
}

func TestDecodeRejectsBadRegisterByte(t *testing.T) {
	buf := []byte{byte(OpPush), 0xFF}
	if _, _, err := Decode(buf); err == nil {
		t.Error("Decode push with register 255 should fail")
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	prog := []Instruction{
		{Op: OpMovRI, A: R1, Imm: 0xdeadbeef},
		{Op: OpAddRI, A: R1, Disp: 1},
		{Op: OpSyscall},
		{Op: OpHalt},
	}
	enc, err := EncodeAll(prog)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAll(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(prog) {
		t.Fatalf("decoded %d instructions, want %d", len(dec), len(prog))
	}
	for i := range prog {
		if dec[i] != prog[i] {
			t.Errorf("instruction %d: got %+v, want %+v", i, dec[i], prog[i])
		}
	}
}

func TestDecodeAllReportsOffset(t *testing.T) {
	enc, err := EncodeAll([]Instruction{{Op: OpNop}, {Op: OpNop}})
	if err != nil {
		t.Fatal(err)
	}
	enc = append(enc, 0) // invalid opcode at offset 2
	if _, err := DecodeAll(enc); err == nil || !strings.Contains(err.Error(), "offset 2") {
		t.Errorf("DecodeAll error = %v, want offset 2 mention", err)
	}
}

// TestQuickEncodeDecode property-tests the round trip for arbitrary valid
// instructions.
func TestQuickEncodeDecode(t *testing.T) {
	f := func(opRaw, aRaw, bRaw uint8, imm uint64, disp int32) bool {
		op := OpNop + Op(opRaw)%(opMax-OpNop)
		ins := Instruction{
			Op: op,
			A:  Register(aRaw % NumRegisters),
			B:  Register(bRaw % NumRegisters),
		}
		// Only keep the operands the layout carries, so equality holds.
		switch LayoutOf(op) {
		case LayoutNone:
			ins.A, ins.B = 0, 0
		case LayoutR:
			ins.B = 0
		case LayoutRI64:
			ins.B = 0
			ins.Imm = imm
		case LayoutRI32:
			ins.B = 0
			ins.Disp = disp
		case LayoutRRD:
			ins.Disp = disp
		case LayoutD32:
			ins.A, ins.B = 0, 0
			ins.Disp = disp
		}
		enc, err := Encode(nil, ins)
		if err != nil {
			return false
		}
		dec, n, err := Decode(enc)
		return err == nil && n == len(enc) && dec == ins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstructionPredicates(t *testing.T) {
	if !(Instruction{Op: OpJmp}).IsBranch() || !(Instruction{Op: OpRet}).IsBranch() {
		t.Error("jmp and ret are branches")
	}
	if (Instruction{Op: OpAddRR}).IsBranch() {
		t.Error("add is not a branch")
	}
	if !(Instruction{Op: OpJz}).IsCond() || (Instruction{Op: OpJmp}).IsCond() {
		t.Error("jz is conditional, jmp is not")
	}
	if got := (Instruction{Op: OpLoad4}).LoadSize(); got != 4 {
		t.Errorf("load4 size = %d, want 4", got)
	}
	if got := (Instruction{Op: OpStore2}).StoreSize(); got != 2 {
		t.Errorf("store2 size = %d, want 2", got)
	}
	if got := (Instruction{Op: OpAddRR}).LoadSize(); got != 0 {
		t.Errorf("add load size = %d, want 0", got)
	}
}

func TestDisassemble(t *testing.T) {
	enc, err := EncodeAll([]Instruction{
		{Op: OpMovRI, A: R1, Imm: 0x10},
		{Op: OpLoad8, A: R0, B: R1, Disp: 8},
		{Op: OpHalt},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(enc)
	for _, want := range []string{"mov r1, 0x10", "load8 r0, [r1+8]", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestDisassembleStopsAtGarbage(t *testing.T) {
	text := Disassemble([]byte{byte(OpNop), 0xFE})
	if !strings.Contains(text, "nop") || !strings.Contains(text, "invalid opcode") {
		t.Errorf("unexpected disassembly:\n%s", text)
	}
}

func TestScan(t *testing.T) {
	enc, err := EncodeAll([]Instruction{{Op: OpNop}, {Op: OpRet}})
	if err != nil {
		t.Fatal(err)
	}
	lines, err := Scan(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[1].Offset != 1 || lines[1].Ins.Op != OpRet {
		t.Errorf("Scan = %+v", lines)
	}
	if _, err := Scan([]byte{0xFE}); err == nil {
		t.Error("Scan of garbage should fail")
	}
}

func TestInstructionStringForms(t *testing.T) {
	tests := []struct {
		give Instruction
		want string
	}{
		{Instruction{Op: OpStore8, A: R1, B: R2, Disp: -16}, "store8 [r1-16], r2"},
		{Instruction{Op: OpLea, A: R4, Disp: 32}, "lea r4, [pc+32]"},
		{Instruction{Op: OpCallI, Disp: 7}, "calli #7"},
		{Instruction{Op: OpRaise, Disp: CodeToDisp(0xC0000005)}, "raise 0xc0000005"},
		{Instruction{Op: OpJnz, Disp: -9}, "jnz -9"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
