package isa

import (
	"bytes"
	"testing"
)

// FuzzDecodeRoundTrip feeds arbitrary bytes to the decoder and checks the
// canonical-encoding contract: whatever Decode accepts, Encode must
// reproduce byte-exactly, and re-decoding the encoding must yield the same
// instruction. Neither direction may panic on any input.
func FuzzDecodeRoundTrip(f *testing.F) {
	// Seed with one encoding of every opcode so the fuzzer starts from
	// the full layout space rather than rediscovering it.
	for op := OpNop; op < opMax; op++ {
		ins := Instruction{Op: op, A: R1, B: R2, Imm: 0x1122334455667788, Disp: -16}
		if enc, err := Encode(nil, ins); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		ins, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		enc, err := Encode(nil, ins)
		if err != nil {
			t.Fatalf("decoded %v from %x but Encode rejects it: %v", ins, data[:n], err)
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("round trip not byte-exact: decoded %v from %x, re-encoded to %x", ins, data[:n], enc)
		}
		ins2, n2, err := Decode(enc)
		if err != nil || n2 != n || ins2 != ins {
			t.Fatalf("re-decode mismatch: %v/%d/%v, want %v/%d", ins2, n2, err, ins, n)
		}
	})
}
