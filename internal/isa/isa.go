// Package isa defines M64, the synthetic 64-bit instruction set used by every
// binary artifact in this repository.
//
// M64 is a compact register machine standing in for x86-64 in the paper's
// pipeline: it has byte/word/dword/qword loads and stores (so taint tracking
// can be byte granular), PC-relative addressing (so images are position
// independent under ASLR), calls through an import table (so the Windows-API
// pipeline can observe API call sites), a SYSCALL instruction (for the Linux
// pipeline), and an explicit RAISE instruction for software exceptions.
//
// Every instruction has a fixed layout determined by its opcode, which keeps
// the encoder, decoder, disassembler, concrete emulator, taint propagation
// and symbolic executor in exact agreement about operand semantics.
package isa

import (
	"fmt"
	"strconv"
)

// Register identifies one of the machine registers. R0..R15 are general
// purpose; SP is the stack pointer. By convention R0 carries return values
// and the syscall number, and R1..R5 carry call/syscall arguments.
type Register uint8

// Machine registers.
const (
	R0 Register = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	SP

	// NumRegisters is the size of a register file array.
	NumRegisters = 17
)

// String returns the assembler name of the register.
func (r Register) String() string {
	if r == SP {
		return "sp"
	}
	if r < SP {
		return "r" + strconv.Itoa(int(r))
	}
	return "reg?" + strconv.Itoa(int(r))
}

// Valid reports whether r names an actual machine register.
func (r Register) Valid() bool { return r < NumRegisters }

// Op is an M64 opcode.
type Op uint8

// Opcodes. The numeric values are part of the CRX image format and must not
// be reordered.
const (
	// No operands.
	OpNop Op = iota + 1
	OpHalt
	OpRet
	OpSyscall
	OpYield

	// One register operand (A).
	OpPush
	OpPop
	OpCallR
	OpJmpR
	OpNot
	OpNeg

	// Two register operands (A, B).
	OpMovRR
	OpAddRR
	OpSubRR
	OpAndRR
	OpOrRR
	OpXorRR
	OpShlRR
	OpShrRR
	OpMulRR
	OpDivRR
	OpCmpRR
	OpTestRR

	// Register + 64-bit immediate (A, Imm).
	OpMovRI

	// Register + 32-bit signed immediate (A, Disp).
	OpAddRI
	OpSubRI
	OpAndRI
	OpOrRI
	OpXorRI
	OpShlRI
	OpShrRI
	OpMulRI
	OpCmpRI
	OpTestRI

	// Register + PC-relative 32-bit displacement (A, Disp): A = next_pc + Disp.
	OpLea

	// Memory: two registers + displacement (A, B, Disp).
	// Loads: A = mem[B + Disp]; stores: mem[A + Disp] = B.
	OpLoad1
	OpLoad2
	OpLoad4
	OpLoad8
	OpStore1
	OpStore2
	OpStore4
	OpStore8

	// PC-relative 32-bit displacement only (Disp).
	OpJmp
	OpJz
	OpJnz
	OpJl
	OpJge
	OpJle
	OpJg
	OpJb
	OpJae
	OpCall

	// 32-bit immediate only (Disp reused as payload).
	OpCallI // call through import slot Disp
	OpRaise // raise software exception with code uint32(Disp)

	opMax // sentinel; keep last
)

var opNames = map[Op]string{
	OpNop: "nop", OpHalt: "halt", OpRet: "ret", OpSyscall: "syscall", OpYield: "yield",
	OpPush: "push", OpPop: "pop", OpCallR: "callr", OpJmpR: "jmpr", OpNot: "not", OpNeg: "neg",
	OpMovRR: "mov", OpAddRR: "add", OpSubRR: "sub", OpAndRR: "and", OpOrRR: "or",
	OpXorRR: "xor", OpShlRR: "shl", OpShrRR: "shr", OpMulRR: "mul", OpDivRR: "div",
	OpCmpRR: "cmp", OpTestRR: "test",
	OpMovRI: "mov",
	OpAddRI: "add", OpSubRI: "sub", OpAndRI: "and", OpOrRI: "or", OpXorRI: "xor",
	OpShlRI: "shl", OpShrRI: "shr", OpMulRI: "mul", OpCmpRI: "cmp", OpTestRI: "test",
	OpLea:   "lea",
	OpLoad1: "load1", OpLoad2: "load2", OpLoad4: "load4", OpLoad8: "load8",
	OpStore1: "store1", OpStore2: "store2", OpStore4: "store4", OpStore8: "store8",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpJl: "jl", OpJge: "jge",
	OpJle: "jle", OpJg: "jg", OpJb: "jb", OpJae: "jae", OpCall: "call",
	OpCallI: "calli", OpRaise: "raise",
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "op?" + strconv.Itoa(int(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o >= OpNop && o < opMax }

// Layout describes the operand encoding class of an opcode.
type Layout uint8

// Operand layouts.
const (
	LayoutNone Layout = iota + 1 // 1 byte: op
	LayoutR                      // 2 bytes: op A
	LayoutRR                     // 3 bytes: op A B
	LayoutRI64                   // 10 bytes: op A imm64
	LayoutRI32                   // 6 bytes: op A disp32
	LayoutRRD                    // 7 bytes: op A B disp32
	LayoutD32                    // 5 bytes: op disp32
)

// Size returns the encoded size in bytes of an instruction with this layout.
func (l Layout) Size() int {
	switch l {
	case LayoutNone:
		return 1
	case LayoutR:
		return 2
	case LayoutRR:
		return 3
	case LayoutRI64:
		return 10
	case LayoutRI32, LayoutRRD:
		if l == LayoutRRD {
			return 7
		}
		return 6
	case LayoutD32:
		return 5
	default:
		return 0
	}
}

// LayoutOf returns the operand layout for an opcode.
func LayoutOf(op Op) Layout {
	switch {
	case op >= OpNop && op <= OpYield:
		return LayoutNone
	case op >= OpPush && op <= OpNeg:
		return LayoutR
	case op >= OpMovRR && op <= OpTestRR:
		return LayoutRR
	case op == OpMovRI:
		return LayoutRI64
	case op >= OpAddRI && op <= OpTestRI, op == OpLea:
		return LayoutRI32
	case op >= OpLoad1 && op <= OpStore8:
		return LayoutRRD
	case op >= OpJmp && op <= OpRaise:
		return LayoutD32
	default:
		return 0
	}
}

// CodeToDisp reinterprets a 32-bit exception code (e.g. 0xC0000005) as the
// signed Disp operand field carried by OpRaise.
func CodeToDisp(code uint32) int32 { return int32(code) }

// DispToCode is the inverse of CodeToDisp.
func DispToCode(disp int32) uint32 { return uint32(disp) }

// Instruction is a decoded M64 instruction.
type Instruction struct {
	Op   Op
	A    Register // first register operand
	B    Register // second register operand
	Imm  uint64   // 64-bit immediate (OpMovRI)
	Disp int32    // 32-bit displacement / immediate / import slot / code
}

// Size returns the encoded size of the instruction in bytes.
func (i Instruction) Size() int { return LayoutOf(i.Op).Size() }

// IsBranch reports whether the instruction may transfer control somewhere
// other than the next instruction.
func (i Instruction) IsBranch() bool {
	switch i.Op {
	case OpJmp, OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg, OpJb, OpJae,
		OpCall, OpCallR, OpCallI, OpJmpR, OpRet, OpHalt, OpRaise:
		return true
	}
	return false
}

// IsCond reports whether the instruction is a conditional branch.
func (i Instruction) IsCond() bool {
	switch i.Op {
	case OpJz, OpJnz, OpJl, OpJge, OpJle, OpJg, OpJb, OpJae:
		return true
	}
	return false
}

// LoadSize returns the access width in bytes of a load opcode, or 0.
func (i Instruction) LoadSize() int {
	switch i.Op {
	case OpLoad1:
		return 1
	case OpLoad2:
		return 2
	case OpLoad4:
		return 4
	case OpLoad8:
		return 8
	}
	return 0
}

// StoreSize returns the access width in bytes of a store opcode, or 0.
func (i Instruction) StoreSize() int {
	switch i.Op {
	case OpStore1:
		return 1
	case OpStore2:
		return 2
	case OpStore4:
		return 4
	case OpStore8:
		return 8
	}
	return 0
}

// String renders the instruction in assembler syntax.
func (i Instruction) String() string {
	switch LayoutOf(i.Op) {
	case LayoutNone:
		return i.Op.String()
	case LayoutR:
		return fmt.Sprintf("%s %s", i.Op, i.A)
	case LayoutRR:
		return fmt.Sprintf("%s %s, %s", i.Op, i.A, i.B)
	case LayoutRI64:
		return fmt.Sprintf("%s %s, %#x", i.Op, i.A, i.Imm)
	case LayoutRI32:
		if i.Op == OpLea {
			return fmt.Sprintf("lea %s, [pc%+d]", i.A, i.Disp)
		}
		return fmt.Sprintf("%s %s, %d", i.Op, i.A, i.Disp)
	case LayoutRRD:
		if i.LoadSize() != 0 {
			return fmt.Sprintf("%s %s, [%s%+d]", i.Op, i.A, i.B, i.Disp)
		}
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, i.A, i.Disp, i.B)
	case LayoutD32:
		switch i.Op {
		case OpCallI:
			return fmt.Sprintf("calli #%d", i.Disp)
		case OpRaise:
			return fmt.Sprintf("raise %#x", uint32(i.Disp))
		default:
			return fmt.Sprintf("%s %+d", i.Op, i.Disp)
		}
	default:
		return fmt.Sprintf("invalid(%d)", i.Op)
	}
}
