package isa

import "testing"

func benchProgram() []Instruction {
	return []Instruction{
		{Op: OpMovRI, A: R1, Imm: 0xdeadbeef},
		{Op: OpLoad8, A: R2, B: R1, Disp: 16},
		{Op: OpAddRR, A: R2, B: R1},
		{Op: OpCmpRI, A: R2, Disp: 100},
		{Op: OpJnz, Disp: -24},
		{Op: OpCall, Disp: 64},
		{Op: OpRet},
	}
}

func BenchmarkEncode(b *testing.B) {
	prog := benchProgram()
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for _, ins := range prog {
			var err error
			buf, err = Encode(buf, ins)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	enc, err := EncodeAll(benchProgram())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off := 0
		for off < len(enc) {
			_, n, err := Decode(enc[off:])
			if err != nil {
				b.Fatal(err)
			}
			off += n
		}
	}
}

func BenchmarkDisassemble(b *testing.B) {
	enc, err := EncodeAll(benchProgram())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if Disassemble(enc) == "" {
			b.Fatal("empty disassembly")
		}
	}
}
