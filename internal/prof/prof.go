// Package prof implements an exact, deterministic cost profiler for the
// discovery pipelines.
//
// Unlike a sampling profiler, prof attributes the pipelines' *virtual*
// costs — symbolic-execution steps, VM instructions, environment clock
// ticks, cache bytes, retries and backoff ticks — to semantic stacks
//
//	pipeline → stage → target → unit [→ sub]
//
// where the unit is the thing a worker was charged for: an exception-filter
// class, an API descriptor, a syscall candidate, a probe scan. Because
// every cost is a deterministic function of the analysis inputs (the VM has
// no wall clock) and accumulation is a commutative sum per stack, the
// resulting profile is byte-identical at any worker count and — since the
// content-addressed cache replays the stored Steps/Stats on hits — on warm
// cache runs too.
//
// One Profile exports three ways: folded-stacks text for flamegraph.pl,
// a ranked top-N hot-spot report, and a JSON snapshot for HTTP serving.
package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// SchemaV1 identifies the JSON snapshot layout.
const SchemaV1 = "crashresist/profile/v1"

// Kind enumerates the virtual cost dimensions a sample can carry.
type Kind uint8

// Cost kinds.
const (
	// KindSymexSteps counts symbolic-execution steps (internal/sym).
	KindSymexSteps Kind = iota
	// KindVMInstructions counts emulated instructions (internal/vm).
	KindVMInstructions
	// KindClockTicks counts virtual environment clock ticks.
	KindClockTicks
	// KindRetries counts retried job attempts (resilience layer).
	KindRetries
	// KindBackoffTicks counts virtual backoff ticks between retries.
	KindBackoffTicks
	// KindCacheBytes counts content-addressed cache entry bytes
	// transferred (read on hit, written on store). Unlike every other
	// kind it necessarily depends on the cache state — a cacheless run
	// transfers nothing — so ranked reports exclude it; see WriteTop.
	KindCacheBytes

	numKinds
)

var kindNames = [numKinds]string{
	"symex_steps",
	"vm_instructions",
	"clock_ticks",
	"retries",
	"backoff_ticks",
	"cache_bytes",
}

// String returns the kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind_%d", uint8(k))
}

// cacheInvariant reports whether the kind's totals are independent of the
// cache state (off, cold or warm). Every virtual-work kind is: the CAS
// replays stored costs on hits, and retries are a pure function of the
// fault plan. Cache byte traffic is the one exception.
func (k Kind) cacheInvariant() bool { return k != KindCacheBytes }

// Stack is the semantic attribution path of a sample. Sub is an optional
// drill-down frame below the unit (for example the module a filter-class
// observation came from); ranked reports aggregate over it, folded stacks
// keep it as a deeper frame.
type Stack struct {
	Pipeline string
	Stage    string
	Target   string
	Unit     string
	Sub      string
}

// Profile accumulates cost samples. The zero value is not usable; call
// New. All methods are safe for concurrent use and safe on a nil
// receiver, so pipelines can thread an optional *Profile without guards.
type Profile struct {
	mu      sync.Mutex
	samples map[Stack]*[numKinds]uint64
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{samples: make(map[Stack]*[numKinds]uint64)}
}

// Add charges n units of kind k to the stack. Additions commute, so any
// interleaving of concurrent workers yields the same profile. A nil
// profile or a zero n records nothing.
func (p *Profile) Add(s Stack, k Kind, n uint64) {
	if p == nil || n == 0 || k >= numKinds {
		return
	}
	p.mu.Lock()
	cell := p.samples[s]
	if cell == nil {
		cell = new([numKinds]uint64)
		p.samples[s] = cell
	}
	cell[k] += n
	p.mu.Unlock()
}

// Merge folds every sample of q into p. Merging commutes and is safe
// while both profiles are concurrently written.
func (p *Profile) Merge(q *Profile) {
	if p == nil || q == nil || p == q {
		return
	}
	for _, sm := range q.Snapshot().Samples {
		p.Add(Stack{sm.Pipeline, sm.Stage, sm.Target, sm.Unit, sm.Sub}, sm.kind, sm.Value)
	}
}

// Sample is one (stack, kind) cost observation in a snapshot.
type Sample struct {
	Kind     string `json:"kind"`
	Pipeline string `json:"pipeline"`
	Stage    string `json:"stage"`
	Target   string `json:"target"`
	Unit     string `json:"unit"`
	Sub      string `json:"sub,omitempty"`
	Value    uint64 `json:"value"`

	kind Kind
}

// Snapshot is an immutable, deterministically ordered view of a profile.
type Snapshot struct {
	Schema  string            `json:"schema"`
	Samples []Sample          `json:"samples"`
	Totals  map[string]uint64 `json:"totals"`
}

// Snapshot captures the profile's current contents, sorted by
// (kind, pipeline, stage, target, unit, sub) so equal profiles render
// byte-identical output. A nil profile snapshots empty.
func (p *Profile) Snapshot() *Snapshot {
	snap := &Snapshot{Schema: SchemaV1, Totals: make(map[string]uint64)}
	if p == nil {
		return snap
	}
	p.mu.Lock()
	for st, cell := range p.samples {
		for k := Kind(0); k < numKinds; k++ {
			if cell[k] == 0 {
				continue
			}
			snap.Samples = append(snap.Samples, Sample{
				Kind:     k.String(),
				Pipeline: st.Pipeline,
				Stage:    st.Stage,
				Target:   st.Target,
				Unit:     st.Unit,
				Sub:      st.Sub,
				Value:    cell[k],
				kind:     k,
			})
			snap.Totals[k.String()] += cell[k]
		}
	}
	p.mu.Unlock()
	sort.Slice(snap.Samples, func(i, j int) bool { return snap.Samples[i].less(&snap.Samples[j]) })
	return snap
}

func (s *Sample) less(o *Sample) bool {
	if s.kind != o.kind {
		return s.kind < o.kind
	}
	if s.Pipeline != o.Pipeline {
		return s.Pipeline < o.Pipeline
	}
	if s.Stage != o.Stage {
		return s.Stage < o.Stage
	}
	if s.Target != o.Target {
		return s.Target < o.Target
	}
	if s.Unit != o.Unit {
		return s.Unit < o.Unit
	}
	return s.Sub < o.Sub
}

// frames renders the sample's folded frame path (without the value).
func (s *Sample) frames() string {
	parts := []string{s.Kind, s.Pipeline, s.Stage, s.Target, s.Unit}
	if s.Sub != "" {
		parts = append(parts, s.Sub)
	}
	return strings.Join(parts, ";")
}

// WriteFolded writes the snapshot as folded stacks, one
// "kind;pipeline;stage;target;unit[;sub] value" line per sample, the
// format flamegraph.pl consumes. The cost kind is the root frame so each
// kind forms its own subtree and sums stay unit-consistent.
func (s *Snapshot) WriteFolded(w io.Writer) error {
	for i := range s.Samples {
		sm := &s.Samples[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", sm.frames(), sm.Value); err != nil {
			return err
		}
	}
	return nil
}

// topRow is one aggregated entry of the ranked report.
type topRow struct {
	key   Sample // Sub cleared; Value is the aggregate
	value uint64
}

// WriteTop writes a ranked hot-spot report: per cost kind, the top n
// stacks by value (aggregated over sub-frames) with their share of the
// kind's total. Cache byte traffic is excluded — it is the one kind whose
// totals legitimately differ between cacheless, cold- and warm-cache runs,
// and this report is specified to be byte-identical across all three (it
// remains visible in the folded and JSON exports).
func (s *Snapshot) WriteTop(w io.Writer, n int) error {
	if n <= 0 {
		n = 30
	}
	byKind := make(map[Kind][]topRow)
	agg := make(map[Sample]uint64)
	for i := range s.Samples {
		sm := s.Samples[i]
		if !sm.kind.cacheInvariant() {
			continue
		}
		sm.Sub = ""
		sm.Value = 0
		agg[sm] += s.Samples[i].Value
	}
	for key, v := range agg {
		byKind[key.kind] = append(byKind[key.kind], topRow{key: key, value: v})
	}
	if _, err := fmt.Fprintf(w, "# crashresist cost profile — deterministic virtual costs, ranked\n"); err != nil {
		return err
	}
	for k := Kind(0); k < numKinds; k++ {
		rows := byKind[k]
		if len(rows) == 0 {
			continue
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].value != rows[j].value {
				return rows[i].value > rows[j].value
			}
			return rows[i].key.less(&rows[j].key)
		})
		var total uint64
		for _, r := range rows {
			total += r.value
		}
		fmt.Fprintf(w, "\n== %s: total %d over %d stacks\n", k, total, len(rows))
		for i, r := range rows {
			if i >= n {
				fmt.Fprintf(w, "   ... %d more\n", len(rows)-n)
				break
			}
			fmt.Fprintf(w, "  %5.1f%%  %12d  %s;%s;%s;%s\n",
				100*float64(r.value)/float64(total), r.value,
				r.key.Pipeline, r.key.Stage, r.key.Target, r.key.Unit)
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// UnmarshalJSON restores a snapshot, recovering the private kind index
// from the wire name so re-exported reports stay ordered.
func (s *Snapshot) UnmarshalJSON(b []byte) error {
	type wire Snapshot
	if err := json.Unmarshal(b, (*wire)(s)); err != nil {
		return err
	}
	for i := range s.Samples {
		s.Samples[i].kind = kindFromName(s.Samples[i].Kind)
	}
	return nil
}

func kindFromName(name string) Kind {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == name {
			return k
		}
	}
	return numKinds
}
