package prof

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func sampleCharges() []struct {
	s Stack
	k Kind
	n uint64
} {
	return []struct {
		s Stack
		k Kind
		n uint64
	}{
		{Stack{"seh", "symex", "ie", "filter:rejects-av", "kernel32.dll"}, KindSymexSteps, 700},
		{Stack{"seh", "symex", "ie", "filter:rejects-av", "user32.dll"}, KindSymexSteps, 150},
		{Stack{"seh", "symex", "ie", "filter:accepts-av", "kernel32.dll"}, KindSymexSteps, 150},
		{Stack{"seh", "browse", "ie", "browse", ""}, KindVMInstructions, 9001},
		{Stack{"seh", "browse", "ie", "browse", ""}, KindClockTicks, 42},
		{Stack{"api", "fuzz", "firefox", "CreateFileA", ""}, KindVMInstructions, 512},
		{Stack{"api", "fuzz", "firefox", "CreateFileA", ""}, KindCacheBytes, 2048},
		{Stack{"syscall", "validate", "nginx", "recv/1", ""}, KindRetries, 3},
		{Stack{"syscall", "validate", "nginx", "recv/1", ""}, KindBackoffTicks, 7},
	}
}

func buildProfile(order []int) *Profile {
	p := New()
	ch := sampleCharges()
	for _, i := range order {
		c := ch[i]
		p.Add(c.s, c.k, c.n)
	}
	return p
}

func foldedOf(t *testing.T, p *Profile) string {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Snapshot().WriteFolded(&buf); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	return buf.String()
}

// TestAddCommutes checks the core determinism property: any insertion
// order — and any interleaving of concurrent writers — yields the same
// snapshot bytes.
func TestAddCommutes(t *testing.T) {
	n := len(sampleCharges())
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	want := foldedOf(t, buildProfile(base))

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		order := append([]int(nil), base...)
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		if got := foldedOf(t, buildProfile(order)); got != want {
			t.Fatalf("order %v changed folded output:\n%s\nwant:\n%s", order, got, want)
		}
	}

	// Concurrent writers, one goroutine per charge.
	p := New()
	var wg sync.WaitGroup
	for _, c := range sampleCharges() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Add(c.s, c.k, c.n)
		}()
	}
	wg.Wait()
	if got := foldedOf(t, p); got != want {
		t.Fatalf("concurrent adds changed folded output:\n%s", got)
	}
}

// TestMergeCommutes checks that sharded accumulation (one profile per
// worker, merged at the end) equals direct accumulation, regardless of
// merge order.
func TestMergeCommutes(t *testing.T) {
	ch := sampleCharges()
	direct := buildProfile([]int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	want := foldedOf(t, direct)

	shard := func(idx ...int) *Profile { return buildProfile(idx) }
	a := shard(0, 3, 6)
	b := shard(1, 4, 7)
	c := shard(2, 5, 8)

	m1 := New()
	m1.Merge(a)
	m1.Merge(b)
	m1.Merge(c)
	m2 := New()
	m2.Merge(c)
	m2.Merge(a)
	m2.Merge(b)
	if got := foldedOf(t, m1); got != want {
		t.Fatalf("merge a,b,c != direct:\n%s\nwant:\n%s", got, want)
	}
	if got := foldedOf(t, m2); got != foldedOf(t, m1) {
		t.Fatalf("merge order changed output")
	}
	_ = ch
}

func TestNilAndZeroSafe(t *testing.T) {
	var p *Profile
	p.Add(Stack{Pipeline: "x"}, KindSymexSteps, 1) // must not panic
	p.Merge(New())
	snap := p.Snapshot()
	if len(snap.Samples) != 0 {
		t.Fatalf("nil profile snapshot has samples: %+v", snap.Samples)
	}

	q := New()
	q.Add(Stack{Pipeline: "x"}, KindSymexSteps, 0) // zero charge records nothing
	q.Add(Stack{Pipeline: "x"}, numKinds, 5)       // out-of-range kind ignored
	if got := q.Snapshot().Samples; len(got) != 0 {
		t.Fatalf("zero/invalid adds recorded samples: %+v", got)
	}
}

func TestWriteFoldedFormat(t *testing.T) {
	p := New()
	p.Add(Stack{"seh", "symex", "ie", "filter:rejects-av", "mod.dll"}, KindSymexSteps, 10)
	p.Add(Stack{"seh", "browse", "ie", "browse", ""}, KindClockTicks, 3)
	got := foldedOf(t, p)
	// Kind order is the enum order (symex_steps first), not lexical.
	want := "symex_steps;seh;symex;ie;filter:rejects-av;mod.dll 10\n" +
		"clock_ticks;seh;browse;ie;browse 3\n"
	if got != want {
		t.Fatalf("folded output:\n%q\nwant:\n%q", got, want)
	}
}

// TestWriteTopExcludesCacheBytes checks the ranked report's cache-state
// invariance: cache_bytes samples never appear, while the same snapshot's
// folded and JSON exports keep them.
func TestWriteTopExcludesCacheBytes(t *testing.T) {
	p := buildProfile([]int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	snap := p.Snapshot()

	var top bytes.Buffer
	if err := snap.WriteTop(&top, 0); err != nil {
		t.Fatalf("WriteTop: %v", err)
	}
	if strings.Contains(top.String(), "cache_bytes") {
		t.Fatalf("ranked report leaks cache_bytes:\n%s", top.String())
	}
	if !strings.Contains(top.String(), "== symex_steps: total 1000 over 2 stacks") {
		t.Fatalf("ranked report missing aggregated symex section:\n%s", top.String())
	}
	// Sub frames aggregate: rejects-av 700+150=850 of 1000.
	if !strings.Contains(top.String(), "85.0%") {
		t.Fatalf("ranked report missing 85.0%% share:\n%s", top.String())
	}

	var folded bytes.Buffer
	if err := snap.WriteFolded(&folded); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	if !strings.Contains(folded.String(), "cache_bytes;api;fuzz;firefox;CreateFileA 2048") {
		t.Fatalf("folded output lost cache_bytes:\n%s", folded.String())
	}
	if snap.Totals["cache_bytes"] != 2048 {
		t.Fatalf("totals lost cache_bytes: %v", snap.Totals)
	}
}

func TestWriteTopTruncation(t *testing.T) {
	p := New()
	for _, unit := range []string{"a", "b", "c", "d"} {
		p.Add(Stack{"seh", "symex", "ie", unit, ""}, KindSymexSteps, 1)
	}
	var buf bytes.Buffer
	if err := p.Snapshot().WriteTop(&buf, 2); err != nil {
		t.Fatalf("WriteTop: %v", err)
	}
	if !strings.Contains(buf.String(), "... 2 more") {
		t.Fatalf("missing truncation marker:\n%s", buf.String())
	}
}

// TestJSONRoundTrip checks that a snapshot survives the wire: re-exported
// folded and ranked output is byte-identical to the original's.
func TestJSONRoundTrip(t *testing.T) {
	p := buildProfile([]int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	snap := p.Snapshot()

	var wire bytes.Buffer
	if err := snap.WriteJSON(&wire); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(wire.Bytes(), &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Schema != SchemaV1 {
		t.Fatalf("schema = %q, want %q", back.Schema, SchemaV1)
	}

	render := func(s *Snapshot) (string, string) {
		var f, top bytes.Buffer
		if err := s.WriteFolded(&f); err != nil {
			t.Fatalf("WriteFolded: %v", err)
		}
		if err := s.WriteTop(&top, 0); err != nil {
			t.Fatalf("WriteTop: %v", err)
		}
		return f.String(), top.String()
	}
	f0, t0 := render(snap)
	f1, t1 := render(&back)
	if f0 != f1 {
		t.Fatalf("folded output changed across JSON round trip:\n%s\nvs\n%s", f0, f1)
	}
	if t0 != t1 {
		t.Fatalf("ranked output changed across JSON round trip:\n%s\nvs\n%s", t0, t1)
	}
}
