package defense

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"crashresist/internal/kernel"
	"crashresist/internal/trace"
)

// This file is the online detection engine behind the defender's
// observability plane: pluggable fault-rate detector calibrations evaluated
// over virtual-time fault series (the kernel's EFAULTBuckets and the VM
// tracer's exception log), typed DetectionEvents, and the Table VII-style
// per-primitive detectability report with stealth margins.
//
// Everything is computed over virtual clocks with integer arithmetic only,
// so for a fixed request the detection record is byte-identical at any
// worker count and with the analysis cache off, cold, or warm.

// DetectSchema versions the detectability report JSON.
const DetectSchema = "crashresist/detect/v1"

// scanProbes is the paper's reference scan budget: covering the 8 TiB
// user-space region at the 8 MiB allocation-granularity stride of §VI
// takes this many probes. Stealth-scan durations are quoted against it.
var scanProbes = ProbesToCover(1<<43, 8<<20)

// Calibration is one named detector configuration. Kind selects the
// detector math: "window" is the sliding-window rate detector of §VII-C,
// "ewma" an exponentially-weighted moving average of the per-virtual-second
// fault counts (fixed-point, alpha = 1/2^AlphaShift).
type Calibration struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	WindowTicks uint64 `json:"window_ticks"`
	Threshold   uint64 `json:"threshold"`
	AlphaShift  uint   `json:"alpha_shift,omitempty"`
}

// Calibration kinds.
const (
	KindWindow = "window"
	KindEWMA   = "ewma"
)

// ewmaScale is the fixed-point scale of the EWMA detector (16 fractional
// bits). Integer-only smoothing keeps the detector deterministic.
const ewmaScale = 16

// DefaultCalibration is the §VII-C calibration: one-virtual-second window,
// threshold 64 — comfortably above the asm.js burst peak of ~20, orders of
// magnitude below a scan.
func DefaultCalibration() Calibration {
	d := DefaultRateDetector()
	return Calibration{Name: "vii-c-default", Kind: KindWindow, WindowTicks: d.Window, Threshold: d.Threshold}
}

// DefaultCalibrations returns the engine's standard panel: the §VII-C
// default, a patient 8-second window at the same threshold (catches scans
// throttled below 64/s but above 8/s), and a fixed-point EWMA that needs
// the rate to be *sustained* before it trips.
func DefaultCalibrations() []Calibration {
	return []Calibration{
		DefaultCalibration(),
		{Name: "window-8s", Kind: KindWindow, WindowTicks: 8 * kernel.TicksPerSecond, Threshold: 64},
		{Name: "ewma-alpha8", Kind: KindEWMA, WindowTicks: kernel.TicksPerSecond, Threshold: 64, AlphaShift: 3},
	}
}

// DetectionEvent is one typed detector verdict: the named calibration
// tripped for pipeline/target at Tick (virtual), observing WindowRate
// faults per window at that moment.
type DetectionEvent struct {
	Pipeline   string `json:"pipeline"`
	Target     string `json:"target"`
	Detector   string `json:"detector"`
	Tick       uint64 `json:"tick"`
	WindowRate uint64 `json:"window_rate"`
}

// Trip records one calibration tripping for a primitive's extrapolated
// full-speed scan: the virtual tick of detection and the window rate seen.
type Trip struct {
	Detector   string `json:"detector"`
	Tick       uint64 `json:"tick"`
	WindowRate uint64 `json:"window_rate"`
}

// Detectability is one Table VII-style row: how visible one discovered
// primitive is to the detector panel when an attacker drives it at full
// speed, and the stealth margin for evading the §VII-C default.
type Detectability struct {
	// Primitive names the Table I–III row (syscall, API function, or
	// module!handler).
	Primitive string `json:"primitive"`
	// Probes/Faults/Ticks are the measured totals the extrapolation rests
	// on: probe invocations issued during analysis, the faults they
	// raised, and the virtual ticks they took.
	Probes uint64 `json:"probes"`
	Faults uint64 `json:"faults"`
	Ticks  uint64 `json:"ticks"`
	// FaultRate is the extrapolated full-speed fault rate in faults per
	// virtual second: an attacker repeating the measured probe loop
	// back-to-back sustains this rate.
	FaultRate uint64 `json:"fault_rate"`
	// Profile is the observed fault-count series during analysis, bucketed
	// by virtual second (present when the pipeline records one).
	Profile map[uint64]uint64 `json:"profile,omitempty"`
	// Trips lists the calibrations the full-speed scan would trip, with
	// the virtual tick of first detection.
	Trips []Trip `json:"trips,omitempty"`
	// StealthMargin is the maximum probe rate (probes per virtual second)
	// that stays under the §VII-C default threshold — the attacker's
	// evasion budget. Zero when the primitive raised no faults at all
	// (see Undetectable).
	StealthMargin uint64 `json:"stealth_margin"`
	// StealthScanTicks is the virtual time a full reference scan
	// (8 TiB at 8 MiB stride) takes at StealthMargin — §VII-C's "too
	// high to be practical" figure, per primitive.
	StealthScanTicks uint64 `json:"stealth_scan_ticks,omitempty"`
	// Undetectable marks primitives whose probes raised no faults; the
	// fault-rate detector cannot see them at any rate.
	Undetectable bool `json:"undetectable,omitempty"`
}

// Baseline summarizes the benign phase of a pipeline (server request
// handling for syscall, browsing for the browser pipelines): the detector
// panel evaluated over the benign fault series. Events stays empty when the
// baseline is clean — the false-positive check of §VII-C.
type Baseline struct {
	Phase  string            `json:"phase"`
	Faults uint64            `json:"faults"`
	Ticks  uint64            `json:"ticks"`
	Peak   uint64            `json:"peak"`
	Series map[uint64]uint64 `json:"series,omitempty"`
	Events []DetectionEvent  `json:"events,omitempty"`
}

// Section is one pipeline/target's detection record: the calibration
// panel, the benign baseline, the per-primitive detectability rows, the
// run-level fault series the engine watched, and the detections it raised
// over that live series.
type Section struct {
	Pipeline     string            `json:"pipeline"`
	Target       string            `json:"target"`
	Calibrations []Calibration     `json:"calibrations"`
	Baseline     *Baseline         `json:"baseline,omitempty"`
	Rows         []Detectability   `json:"rows,omitempty"`
	Series       map[uint64]uint64 `json:"series,omitempty"`
	Events       []DetectionEvent  `json:"events,omitempty"`
}

// Report is the detectability report: one section per analyzed
// pipeline/target, sorted, schema-tagged, stable to marshal.
type Report struct {
	Schema   string    `json:"schema"`
	Sections []Section `json:"sections"`
}

// Evaluate runs every calibration over a fault series bucketed by virtual
// second (bucket b covers ticks [b*TicksPerSecond, (b+1)*TicksPerSecond) —
// the same half-open convention as trace.RatePerSecond) and returns at most
// one DetectionEvent per calibration: the first window whose rate crosses
// the threshold. Event order follows calibration order; the scan itself is
// over sorted buckets, so the result is independent of map iteration.
func Evaluate(pipeline, target string, series map[uint64]uint64, cals []Calibration) []DetectionEvent {
	if len(series) == 0 {
		return nil
	}
	buckets := make([]uint64, 0, len(series))
	for b := range series {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	var events []DetectionEvent
	for _, cal := range cals {
		var ev *DetectionEvent
		switch cal.Kind {
		case KindEWMA:
			ev = evalEWMA(series, buckets, cal)
		default:
			ev = evalWindow(series, buckets, cal)
		}
		if ev != nil {
			ev.Pipeline, ev.Target, ev.Detector = pipeline, target, cal.Name
			events = append(events, *ev)
		}
	}
	return events
}

// evalWindow slides a half-open window of cal.WindowTicks over the bucket
// series and reports the first crossing.
func evalWindow(series map[uint64]uint64, buckets []uint64, cal Calibration) *DetectionEvent {
	w := cal.WindowTicks / kernel.TicksPerSecond
	if w == 0 {
		w = 1
	}
	var sum uint64
	lo := 0
	for _, b := range buckets {
		sum += series[b]
		// Keep only buckets inside the half-open window (b-w, b].
		for buckets[lo]+w <= b {
			sum -= series[buckets[lo]]
			lo++
		}
		if sum > cal.Threshold {
			// The detector notices as bucket b completes.
			return &DetectionEvent{Tick: (b + 1) * kernel.TicksPerSecond, WindowRate: sum}
		}
	}
	return nil
}

// evalEWMA folds the per-second counts through a fixed-point
// exponentially-weighted moving average (alpha = 1/2^AlphaShift) and
// reports the first tick the smoothed rate crosses the threshold. Empty
// seconds between occupied buckets decay the average.
func evalEWMA(series map[uint64]uint64, buckets []uint64, cal Calibration) *DetectionEvent {
	shift := cal.AlphaShift
	if shift == 0 {
		shift = 3
	}
	limit := cal.Threshold << ewmaScale
	var ewma uint64
	for b := buckets[0]; b <= buckets[len(buckets)-1]; b++ {
		x := series[b] << ewmaScale
		if x >= ewma {
			ewma += (x - ewma) >> shift
		} else {
			ewma -= (ewma - x) >> shift
		}
		if ewma > limit {
			return &DetectionEvent{Tick: (b + 1) * kernel.TicksPerSecond, WindowRate: ewma >> ewmaScale}
		}
	}
	return nil
}

// BucketExc folds a tracer exception log into the kernel's per-virtual-
// second fault-series shape, counting access violations only.
func BucketExc(events []trace.ExcEvent) map[uint64]uint64 {
	av := filterAV(events)
	if len(av) == 0 {
		return nil
	}
	out := make(map[uint64]uint64, len(av))
	for _, e := range av {
		out[e.Clock/kernel.TicksPerSecond]++
	}
	return out
}

// --- extrapolation -------------------------------------------------------

// extrapolate derives a primitive's detectability row values from its
// measured probe totals: the attacker repeats the measured loop
// back-to-back, sustaining faults*TicksPerSecond/ticks faults per virtual
// second, and each calibration is solved analytically (window) or stepped
// (EWMA) against that sustained rate.
func extrapolate(row *Detectability, cals []Calibration) {
	if row.Faults == 0 {
		row.Undetectable = true
		return
	}
	ticks := row.Ticks
	if ticks == 0 {
		ticks = 1
	}
	row.FaultRate = row.Faults * kernel.TicksPerSecond / ticks
	for _, cal := range cals {
		switch cal.Kind {
		case KindEWMA:
			if t := ewmaTripTick(row.FaultRate, cal); t != 0 {
				row.Trips = append(row.Trips, Trip{Detector: cal.Name, Tick: t, WindowRate: row.FaultRate})
			}
		default:
			// Sustained faults per window; trips when it crosses the
			// threshold, at the tick the (threshold+1)-th fault lands.
			count := row.Faults * cal.WindowTicks / ticks
			if count > cal.Threshold {
				trip := ((cal.Threshold+1)*ticks + row.Faults - 1) / row.Faults
				row.Trips = append(row.Trips, Trip{Detector: cal.Name, Tick: trip, WindowRate: count})
			}
		}
	}
	def := DefaultCalibration()
	probes := row.Probes
	if probes == 0 {
		probes = 1
	}
	row.StealthMargin = def.Threshold * probes * kernel.TicksPerSecond / (row.Faults * def.WindowTicks)
	if row.StealthMargin > 0 {
		seconds := (scanProbes + row.StealthMargin - 1) / row.StealthMargin
		row.StealthScanTicks = seconds * kernel.TicksPerSecond
	}
}

// ewmaTripTick steps the EWMA against a sustained per-second rate and
// returns the virtual tick of the first crossing (0 when the rate never
// crosses — the average converges to the rate itself).
func ewmaTripTick(rate uint64, cal Calibration) uint64 {
	if rate <= cal.Threshold {
		return 0
	}
	shift := cal.AlphaShift
	if shift == 0 {
		shift = 3
	}
	limit := cal.Threshold << ewmaScale
	x := rate << ewmaScale
	var ewma uint64
	for step := uint64(1); step <= 256; step++ {
		ewma += (x - ewma) >> shift
		if ewma > limit {
			return step * kernel.TicksPerSecond
		}
	}
	return 0
}

// --- the observer --------------------------------------------------------

// Detect accumulates detection inputs across one or more runs and renders
// them as a Report. All Add methods fold commutatively (rows are keyed,
// counts sum), so concurrent per-job contributions in any order produce the
// same snapshot — the engine's worker-count and cache invariance rests on
// this, exactly like the metrics collector's fault series.
type Detect struct {
	mu   sync.Mutex
	cals []Calibration
	secs map[string]*secAccum
}

type secAccum struct {
	pipeline, target string
	rows             map[string]*rowAccum
	series           map[uint64]uint64
	baseline         *baseAccum
}

type rowAccum struct {
	probes, faults, ticks uint64
	profile               map[uint64]uint64
}

type baseAccum struct {
	phase         string
	faults, ticks uint64
	series        map[uint64]uint64
}

// NewDetect creates an observer over the given calibration panel
// (DefaultCalibrations when none are given).
func NewDetect(cals ...Calibration) *Detect {
	if len(cals) == 0 {
		cals = DefaultCalibrations()
	}
	return &Detect{cals: cals, secs: make(map[string]*secAccum)}
}

func (d *Detect) sec(pipeline, target string) *secAccum {
	key := pipeline + "\x00" + target
	s, ok := d.secs[key]
	if !ok {
		s = &secAccum{pipeline: pipeline, target: target, rows: make(map[string]*rowAccum)}
		d.secs[key] = s
	}
	return s
}

// AddPrimitive folds one primitive's measured probe totals into its
// detectability row. Repeat calls for the same primitive sum — the derived
// rates and margins are ratios, so folding n identical runs leaves them
// unchanged.
func (d *Detect) AddPrimitive(pipeline, target, primitive string, probes, faults, ticks uint64, profile map[uint64]uint64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.sec(pipeline, target)
	r, ok := s.rows[primitive]
	if !ok {
		r = &rowAccum{}
		s.rows[primitive] = r
	}
	r.probes += probes
	r.faults += faults
	r.ticks += ticks
	if len(profile) > 0 {
		if r.profile == nil {
			r.profile = make(map[uint64]uint64, len(profile))
		}
		for b, n := range profile {
			r.profile[b] += n
		}
	}
}

// AddSeries folds a fault series (per-virtual-second buckets) into the
// section's run-level stream — what the online detector watches live.
func (d *Detect) AddSeries(pipeline, target string, buckets map[uint64]uint64) {
	if d == nil || len(buckets) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.sec(pipeline, target)
	if s.series == nil {
		s.series = make(map[uint64]uint64, len(buckets))
	}
	for b, n := range buckets {
		s.series[b] += n
	}
}

// AddBaseline folds the benign phase's fault series into the section
// baseline. The phase name of the first call sticks.
func (d *Detect) AddBaseline(pipeline, target, phase string, faults, ticks uint64, series map[uint64]uint64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.sec(pipeline, target)
	if s.baseline == nil {
		s.baseline = &baseAccum{phase: phase}
	}
	s.baseline.faults += faults
	s.baseline.ticks += ticks
	if len(series) > 0 {
		if s.baseline.series == nil {
			s.baseline.series = make(map[uint64]uint64, len(series))
		}
		for b, n := range series {
			s.baseline.series[b] += n
		}
	}
}

// FoldSection merges an already-rendered section back into the observer —
// how the metrics registry accumulates detection records across runs.
func (d *Detect) FoldSection(sec *Section) {
	if d == nil || sec == nil {
		return
	}
	for _, row := range sec.Rows {
		d.AddPrimitive(sec.Pipeline, sec.Target, row.Primitive, row.Probes, row.Faults, row.Ticks, row.Profile)
	}
	d.AddSeries(sec.Pipeline, sec.Target, sec.Series)
	if b := sec.Baseline; b != nil {
		d.AddBaseline(sec.Pipeline, sec.Target, b.Phase, b.Faults, b.Ticks, b.Series)
	}
}

// Section renders one pipeline/target's current record: rows extrapolated
// and sorted, the run-level series evaluated against the panel, the
// baseline evaluated separately. Returns nil when the section has no data.
func (d *Detect) Section(pipeline, target string) *Section {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.secs[pipeline+"\x00"+target]
	if !ok {
		return nil
	}
	return d.render(s)
}

// render snapshots one accumulated section; the caller holds d.mu.
func (d *Detect) render(s *secAccum) *Section {
	out := &Section{
		Pipeline:     s.pipeline,
		Target:       s.target,
		Calibrations: append([]Calibration(nil), d.cals...),
	}
	names := make([]string, 0, len(s.rows))
	for name := range s.rows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := s.rows[name]
		row := Detectability{
			Primitive: name,
			Probes:    r.probes,
			Faults:    r.faults,
			Ticks:     r.ticks,
			Profile:   cloneBuckets(r.profile),
		}
		extrapolate(&row, d.cals)
		out.Rows = append(out.Rows, row)
	}
	out.Series = cloneBuckets(s.series)
	out.Events = Evaluate(s.pipeline, s.target, s.series, d.cals)
	if s.baseline != nil {
		def := DefaultCalibration()
		b := &Baseline{
			Phase:  s.baseline.phase,
			Faults: s.baseline.faults,
			Ticks:  s.baseline.ticks,
			Peak:   peakOverBuckets(s.baseline.series, def.WindowTicks),
			Series: cloneBuckets(s.baseline.series),
			Events: Evaluate(s.pipeline, s.target, s.baseline.series, d.cals),
		}
		out.Baseline = b
	}
	return out
}

// peakOverBuckets is the bucket-granular peak window rate: the maximum sum
// over any half-open window of the given width.
func peakOverBuckets(series map[uint64]uint64, windowTicks uint64) uint64 {
	if len(series) == 0 {
		return 0
	}
	buckets := make([]uint64, 0, len(series))
	for b := range series {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	w := windowTicks / kernel.TicksPerSecond
	if w == 0 {
		w = 1
	}
	var sum, peak uint64
	lo := 0
	for _, b := range buckets {
		sum += series[b]
		for buckets[lo]+w <= b {
			sum -= series[buckets[lo]]
			lo++
		}
		if sum > peak {
			peak = sum
		}
	}
	return peak
}

func cloneBuckets(m map[uint64]uint64) map[uint64]uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Snapshot renders the full detectability report: every section, sorted by
// pipeline then target. The observer keeps accumulating afterwards.
func (d *Detect) Snapshot() *Report {
	rep := &Report{Schema: DetectSchema, Sections: []Section{}}
	if d == nil {
		return rep
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	keys := make([]string, 0, len(d.secs))
	for k := range d.secs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rep.Sections = append(rep.Sections, *d.render(d.secs[k]))
	}
	return rep
}

// --- rendering -----------------------------------------------------------

// WriteJSON writes the indented report JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTop writes the human summary: per section, the baseline verdict and
// the rows ranked by extrapolated fault rate (most detectable first).
func (r *Report) WriteTop(w io.Writer) error {
	for i := range r.Sections {
		sec := &r.Sections[i]
		if _, err := fmt.Fprintf(w, "== detect: %s/%s ==\n", sec.Pipeline, sec.Target); err != nil {
			return err
		}
		if b := sec.Baseline; b != nil {
			verdict := "clean"
			if len(b.Events) > 0 {
				verdict = fmt.Sprintf("FLAGGED by %d detector(s)", len(b.Events))
			}
			fmt.Fprintf(w, "baseline %-8s %8d faults  peak %d/s  %s\n", b.Phase, b.Faults, b.Peak, verdict)
		}
		if len(sec.Events) > 0 {
			for _, ev := range sec.Events {
				fmt.Fprintf(w, "live     %-16s tripped at t=%dt  rate %d/window\n", ev.Detector, ev.Tick, ev.WindowRate)
			}
		}
		rows := append([]Detectability(nil), sec.Rows...)
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].FaultRate > rows[j].FaultRate })
		for _, row := range rows {
			trips := "evades all"
			if row.Undetectable {
				trips = "no faults — invisible"
			} else if len(row.Trips) > 0 {
				trips = ""
				for i, t := range row.Trips {
					if i > 0 {
						trips += " "
					}
					trips += fmt.Sprintf("%s@%dt", t.Detector, t.Tick)
				}
			}
			fmt.Fprintf(w, "  %-40s rate %8d/s  margin %5d/s  %s\n", row.Primitive, row.FaultRate, row.StealthMargin, trips)
		}
	}
	return nil
}
