package defense_test

import (
	"testing"

	"crashresist/internal/defense"

	"crashresist/internal/oracle"
	"crashresist/internal/targets"
	"crashresist/internal/trace"
	"crashresist/internal/vm"
)

func avEvents(clocks ...uint64) []trace.ExcEvent {
	out := make([]trace.ExcEvent, len(clocks))
	for i, c := range clocks {
		out[i] = trace.ExcEvent{Clock: c, Code: vm.ExcAccessViolation}
	}
	return out
}

func TestRateDetectorThresholds(t *testing.T) {
	d := defense.RateDetector{Window: 100, Threshold: 3}

	if d.Detect(nil) {
		t.Error("empty stream detected")
	}
	// Burst of 3 within the window: at threshold, not above.
	if d.Detect(avEvents(1, 2, 3)) {
		t.Error("at-threshold burst detected")
	}
	// Burst of 4: above.
	if !d.Detect(avEvents(1, 2, 3, 4)) {
		t.Error("above-threshold burst missed")
	}
	// Spread out: never above.
	if d.Detect(avEvents(0, 1000, 2000, 3000, 4000)) {
		t.Error("slow drip misdetected")
	}
	// Non-AV events are ignored.
	evs := []trace.ExcEvent{
		{Clock: 1, Code: vm.ExcDivideByZero},
		{Clock: 2, Code: vm.ExcDivideByZero},
		{Clock: 3, Code: vm.ExcDivideByZero},
		{Clock: 4, Code: vm.ExcDivideByZero},
	}
	if d.Detect(evs) {
		t.Error("non-AV events counted")
	}
}

func TestRateDetectorOnWorkloads(t *testing.T) {
	// The §VII-C experiment at test scale: browsing produces zero AVs,
	// asm.js produces a burst below threshold, scanning exceeds it.
	br, err := targets.Firefox(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	env, err := br.NewEnv(333)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	rec.EnableExceptionLog()
	rec.Attach(env.Proc)
	if err := env.Start(); err != nil {
		t.Fatal(err)
	}
	det := defense.DefaultRateDetector()

	// Baseline browse: no access violations at all.
	if err := env.Browse(); err != nil {
		t.Fatal(err)
	}
	browseEvents := rec.Exceptions()
	if got := det.Peak(browseEvents); got != 0 {
		t.Errorf("browse AV peak = %d, want 0", got)
	}

	// asm.js burst: 20 guard faults, under the threshold.
	rec.ResetExceptions()
	if _, err := env.Call("xul.dll", "asmjs_run", 20); err != nil {
		t.Fatal(err)
	}
	asmEvents := rec.Exceptions()
	peak := det.Peak(asmEvents)
	if peak == 0 {
		t.Error("asm.js produced no faults")
	}
	if det.Detect(asmEvents) {
		t.Errorf("asm.js burst (peak %d) misdetected as attack", peak)
	}

	// Scanning attack: hundreds of probes, detected.
	rec.ResetExceptions()
	o, err := oracle.NewFirefoxOracle(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := o.Probe(0xdead0000 + uint64(i)*0x1000); err != nil {
			t.Fatal(err)
		}
	}
	scanEvents := rec.Exceptions()
	if !det.Detect(scanEvents) {
		t.Errorf("scan (peak %d) not detected", det.Peak(scanEvents))
	}
	if det.Peak(scanEvents) <= peak {
		t.Errorf("scan peak %d not above asm.js peak %d", det.Peak(scanEvents), peak)
	}
}

func TestMappedOnlyPolicyStopsScanning(t *testing.T) {
	// With the policy on, the first unmapped probe kills the process —
	// while the asm.js guard-page trick keeps working.
	br, err := targets.Firefox(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	env, err := br.NewEnv(334)
	if err != nil {
		t.Fatal(err)
	}
	env.Proc.Policy = defense.MappedOnlyPolicy()
	if err := env.Start(); err != nil {
		t.Fatal(err)
	}

	// Guard-page faults (mapped, protected) still recoverable.
	if _, err := env.Call("xul.dll", "asmjs_run", 5); err != nil {
		t.Fatalf("asm.js under policy: %v (crash=%v)", err, env.Proc.Crash)
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatal("guard faults crashed under policy")
	}

	// One unmapped probe is fatal.
	o, err := oracle.NewFirefoxOracle(env)
	if err != nil {
		t.Fatal(err)
	}
	res, probeErr := o.Probe(0xdead0000)
	if env.Proc.State != vm.ProcCrashed {
		t.Errorf("unmapped probe survived under policy (res=%v err=%v)", res, probeErr)
	}
}

func TestRerandomizerInvalidatesLeak(t *testing.T) {
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 55})
	r, err := defense.NewRerandomizer(p, 8192)
	if err != nil {
		t.Fatal(err)
	}
	old := r.Base()
	if err := p.AS.WriteUint(old, 8, 0x1234); err != nil {
		t.Fatal(err)
	}
	if err := r.Move(); err != nil {
		t.Fatal(err)
	}
	if r.Base() == old {
		t.Error("region did not move")
	}
	if p.AS.Mapped(old) {
		t.Error("old region still mapped (stale address remains usable)")
	}
	v, err := p.AS.ReadUint(r.Base(), 8)
	if err != nil || v != 0x1234 {
		t.Errorf("contents lost: %#x %v", v, err)
	}
	if r.Moves != 1 {
		t.Errorf("moves = %d", r.Moves)
	}
}

// TestRerandomizationRace models §II-B's "moving target" argument: a scan
// result goes stale when the defense moves the region, but a persistent
// attacker who re-verifies and re-scans eventually wins between moves.
func TestRerandomizationRace(t *testing.T) {
	br, err := targets.Firefox(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	env, err := br.NewEnv(335)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Start(); err != nil {
		t.Fatal(err)
	}
	const size = 32 * 4096
	rr, err := defense.NewRerandomizer(env.Proc, size)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.NewFirefoxOracle(env)
	if err != nil {
		t.Fatal(err)
	}

	// The attacker learns the base, the defense moves, the knowledge is
	// stale.
	leaked := rr.Base()
	if res, _ := o.Probe(leaked); res != oracle.ProbeMapped {
		t.Fatalf("fresh leak probe = %v", res)
	}
	if err := rr.Move(); err != nil {
		t.Fatal(err)
	}
	if res, _ := o.Probe(leaked); res != oracle.ProbeUnmapped {
		t.Fatalf("stale leak probe = %v, want unmapped", res)
	}

	// Persistent attacker: scan, verify, repeat. The defense moves after
	// every scan; because the verify happens within the same "epoch",
	// the attacker eventually catches the region between moves.
	won := false
	for round := 0; round < 8 && !won; round++ {
		base := rr.Base() // epoch layout (unknown to attacker; used only to bound the window)
		s := oracle.NewScanner(o)
		found, err := s.LocateHiddenRegion(base-8*size, base+8*size, size)
		if err != nil {
			// Scan window missed after a move; try again.
			if err := rr.Move(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		// Use the find immediately, before the next move.
		if res, _ := o.Probe(found); res == oracle.ProbeMapped && found == rr.Base() {
			won = true
			break
		}
		if err := rr.Move(); err != nil {
			t.Fatal(err)
		}
	}
	if !won {
		t.Error("persistent attacker never caught the region between moves")
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatal("race crashed the browser")
	}
}

func TestStealthScanTicks(t *testing.T) {
	d := defense.RateDetector{Window: 1000, Threshold: 10}
	tests := []struct {
		probes uint64
		want   uint64
	}{
		{0, 0},
		{1, 1000},
		{10, 1000},
		{11, 2000},
		{100, 10_000},
	}
	for _, tt := range tests {
		if got := d.StealthScanTicks(tt.probes); got != tt.want {
			t.Errorf("StealthScanTicks(%d) = %d, want %d", tt.probes, got, tt.want)
		}
	}
	if (defense.RateDetector{}).StealthScanTicks(5) != 0 {
		t.Error("zero threshold should yield 0")
	}
}

func TestProbesToCover(t *testing.T) {
	if defense.ProbesToCover(1<<30, 1<<18) != 1<<12 {
		t.Error("cover count wrong")
	}
	if defense.ProbesToCover(100, 0) != 0 {
		t.Error("zero stride should yield 0")
	}
	if defense.ProbesToCover(100, 64) != 2 {
		t.Error("rounding wrong")
	}
}

// TestStealthScanIsImpractical checks the §VII-C conclusion numerically: a
// detector calibrated above the asm.js burst still forces a sub-threshold
// scan of a 47-bit user arena with SafeStack-sized strides to take years of
// virtual time.
func TestStealthScanIsImpractical(t *testing.T) {
	det := defense.DefaultRateDetector()
	const (
		arena  = uint64(1) << 43 // user address arena span
		stride = uint64(8) << 20 // generous 8 MiB hidden region
	)
	probes := defense.ProbesToCover(arena, stride)
	ticks := det.StealthScanTicks(probes)
	// One virtual second is 1e6 ticks; the stealth scan must need at
	// least multiple virtual hours, orders of magnitude beyond the
	// seconds an unthrottled scan takes.
	const ticksPerHour = 3600 * 1_000_000
	if ticks < 4*ticksPerHour {
		t.Errorf("stealth scan = %d ticks (%.1f hours), expected impractically long",
			ticks, float64(ticks)/ticksPerHour)
	}
}
