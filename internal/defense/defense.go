// Package defense implements the countermeasures of §VII-C and the
// re-randomization defense of §II-B, together with the measurement hooks
// the defense experiments use:
//
//   - RateDetector: anomaly detection on the access-violation rate. Normal
//     browsing produces none; asm.js-style workloads produce short bursts;
//     scanning attacks produce orders of magnitude more.
//   - MappedOnlyPolicy: the system-level policy that makes unmapped access
//     violations unrecoverable while keeping guard-page tricks working.
//   - Rerandomizer: periodically relocates a hidden region, invalidating an
//     attacker's partial scan results.
package defense

import (
	"fmt"

	"crashresist/internal/mem"
	"crashresist/internal/trace"
	"crashresist/internal/vm"
)

// RateDetector flags processes whose handled-fault rate exceeds a threshold
// within a sliding window of virtual time.
type RateDetector struct {
	// Window is the sliding-window width in virtual ticks.
	Window uint64
	// Threshold is the number of access-violation events within one
	// window that triggers detection.
	Threshold uint64
}

// DefaultRateDetector returns the calibration from §VII-C: the asm.js
// stress test produced bursts of up to 20 faults, so the threshold sits
// comfortably above that peak while real scans exceed it by orders of
// magnitude.
func DefaultRateDetector() RateDetector {
	return RateDetector{Window: 1_000_000, Threshold: 64}
}

// Peak returns the maximum number of access-violation events observed in
// any window.
func (d RateDetector) Peak(events []trace.ExcEvent) uint64 {
	return trace.RatePerSecond(filterAV(events), d.Window)
}

// Detect reports whether the event stream crosses the threshold.
func (d RateDetector) Detect(events []trace.ExcEvent) bool {
	return d.Peak(events) > d.Threshold
}

func filterAV(events []trace.ExcEvent) []trace.ExcEvent {
	out := make([]trace.ExcEvent, 0, len(events))
	for _, e := range events {
		if e.Code == vm.ExcAccessViolation {
			out = append(out, e)
		}
	}
	return out
}

// MappedOnlyPolicy returns the VM policy that terminates the process on any
// unmapped access violation, before any handler runs — §VII-C's
// "restricting access violations". Faults on mapped-but-protected pages
// (guard-page optimizations) remain recoverable.
func MappedOnlyPolicy() vm.Policy {
	return vm.Policy{MappedOnlyAV: true}
}

// StealthScanTicks quantifies §VII-C's closing argument: an attacker who
// stays below the detector's threshold can issue at most Threshold faulting
// probes per Window, so covering the given number of probes needs at least
// the returned virtual time. With realistic windows this "slows the scan to
// a level where the duration will most likely be too high to be practical".
func (d RateDetector) StealthScanTicks(probes uint64) uint64 {
	if probes == 0 || d.Threshold == 0 {
		return 0
	}
	windows := (probes + d.Threshold - 1) / d.Threshold
	return windows * d.Window
}

// ProbesToCover returns how many stride-sized probes cover an address range
// — the scan budget the paper's entropy discussion trades against stride.
func ProbesToCover(rangeBytes, stride uint64) uint64 {
	if stride == 0 {
		return 0
	}
	return (rangeBytes + stride - 1) / stride
}

// Rerandomizer owns a hidden region and relocates it on demand, modelling
// runtime re-randomization. Only the defense knows the current base.
type Rerandomizer struct {
	proc *vm.Process
	size uint64
	base uint64
	// Moves counts completed relocations.
	Moves int
}

// NewRerandomizer plants the initial hidden region.
func NewRerandomizer(p *vm.Process, size uint64) (*Rerandomizer, error) {
	size = mem.RoundUp(size)
	base, err := p.Alloc.Alloc(size, mem.PermRW)
	if err != nil {
		return nil, fmt.Errorf("rerandomizer: %w", err)
	}
	return &Rerandomizer{proc: p, size: size, base: base}, nil
}

// Base returns the current (secret) region base.
func (r *Rerandomizer) Base() uint64 { return r.base }

// Size returns the region size.
func (r *Rerandomizer) Size() uint64 { return r.size }

// Move relocates the region: contents are copied to a fresh randomized
// mapping and the old one disappears, so any address an attacker learned is
// stale.
func (r *Rerandomizer) Move() error {
	contents, err := r.proc.AS.Read(r.base, r.size)
	if err != nil {
		return fmt.Errorf("rerandomizer read: %w", err)
	}
	newBase, err := r.proc.Alloc.Alloc(r.size, mem.PermRW)
	if err != nil {
		return fmt.Errorf("rerandomizer alloc: %w", err)
	}
	if err := r.proc.AS.Write(newBase, contents); err != nil {
		return err
	}
	if err := r.proc.AS.Unmap(r.base, r.size); err != nil {
		return err
	}
	r.base = newBase
	r.Moves++
	return nil
}
