package defense

import (
	"bytes"
	"encoding/json"
	"testing"

	"crashresist/internal/kernel"
	"crashresist/internal/trace"
	"crashresist/internal/vm"
)

func windowCal(name string, windowTicks, threshold uint64) Calibration {
	return Calibration{Name: name, Kind: KindWindow, WindowTicks: windowTicks, Threshold: threshold}
}

func TestEvaluateWindow(t *testing.T) {
	cal1 := windowCal("w1", kernel.TicksPerSecond, 3)
	cal2 := windowCal("w2", 2*kernel.TicksPerSecond, 3)

	// Above threshold in one bucket: detected as the bucket completes.
	evs := Evaluate("p", "t", map[uint64]uint64{0: 4}, []Calibration{cal1})
	if len(evs) != 1 || evs[0].Tick != kernel.TicksPerSecond || evs[0].WindowRate != 4 {
		t.Fatalf("burst events = %+v", evs)
	}
	if evs[0].Pipeline != "p" || evs[0].Target != "t" || evs[0].Detector != "w1" {
		t.Fatalf("event labels = %+v", evs[0])
	}

	// Exactly at threshold: not above, no event.
	if evs := Evaluate("p", "t", map[uint64]uint64{0: 3}, []Calibration{cal1}); len(evs) != 0 {
		t.Fatalf("at-threshold events = %+v", evs)
	}

	// Spread across adjacent one-second windows: each window holds 2.
	spread := map[uint64]uint64{0: 2, 1: 2}
	if evs := Evaluate("p", "t", spread, []Calibration{cal1}); len(evs) != 0 {
		t.Fatalf("spread misdetected at 1s window: %+v", evs)
	}
	// The 2-second window sums both buckets and trips as bucket 1 ends.
	evs = Evaluate("p", "t", spread, []Calibration{cal2})
	if len(evs) != 1 || evs[0].Tick != 2*kernel.TicksPerSecond || evs[0].WindowRate != 4 {
		t.Fatalf("2s-window events = %+v", evs)
	}

	// Half-open window (b-w, b]: buckets exactly w apart never share one.
	if evs := Evaluate("p", "t", map[uint64]uint64{0: 2, 2: 2}, []Calibration{cal2}); len(evs) != 0 {
		t.Fatalf("half-open violated, w-apart buckets shared a window: %+v", evs)
	}

	// Empty series: nothing to detect.
	if evs := Evaluate("p", "t", nil, DefaultCalibrations()); evs != nil {
		t.Fatalf("empty-series events = %+v", evs)
	}
}

func TestEvaluateEWMA(t *testing.T) {
	cal := Calibration{Name: "e", Kind: KindEWMA, WindowTicks: kernel.TicksPerSecond, Threshold: 64, AlphaShift: 3}

	// A single one-second spike of 500 smooths to 500/8 = 62(.5) < 64: the
	// EWMA needs the rate sustained, unlike the sliding window.
	if evs := Evaluate("p", "t", map[uint64]uint64{0: 500}, []Calibration{cal}); len(evs) != 0 {
		t.Fatalf("single spike tripped the EWMA: %+v", evs)
	}
	// Two consecutive seconds at 500: the average reaches 117 and trips as
	// the second bucket completes.
	evs := Evaluate("p", "t", map[uint64]uint64{0: 500, 1: 500}, []Calibration{cal})
	if len(evs) != 1 || evs[0].Tick != 2*kernel.TicksPerSecond || evs[0].WindowRate != 117 {
		t.Fatalf("sustained-rate events = %+v", evs)
	}
	// A rate at the threshold converges to it from below and never crosses.
	atLimit := make(map[uint64]uint64)
	for b := uint64(0); b < 64; b++ {
		atLimit[b] = 64
	}
	if evs := Evaluate("p", "t", atLimit, []Calibration{cal}); len(evs) != 0 {
		t.Fatalf("at-threshold rate tripped the EWMA: %+v", evs)
	}
}

func TestEvaluatePanelOrder(t *testing.T) {
	// One hot series trips every default calibration; events follow
	// calibration order with at most one event each.
	evs := Evaluate("seh", "ie", map[uint64]uint64{0: 1000}, DefaultCalibrations())
	if len(evs) != len(DefaultCalibrations()) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(DefaultCalibrations()), evs)
	}
	for i, cal := range DefaultCalibrations() {
		if evs[i].Detector != cal.Name {
			t.Errorf("event %d detector = %s, want %s", i, evs[i].Detector, cal.Name)
		}
	}
}

func TestExtrapolate(t *testing.T) {
	// The nginx recv/arg1 measurement: 1 probe, 1 fault, 774 virtual ticks.
	row := Detectability{Primitive: "recv/arg1", Probes: 1, Faults: 1, Ticks: 774}
	extrapolate(&row, DefaultCalibrations())
	if row.FaultRate != 1291 {
		t.Errorf("fault rate = %d, want 1291", row.FaultRate)
	}
	if row.StealthMargin != 64 {
		t.Errorf("stealth margin = %d, want 64", row.StealthMargin)
	}
	// 2^20 reference probes at 64/s is 16384 virtual seconds.
	if want := uint64(16384) * kernel.TicksPerSecond; row.StealthScanTicks != want {
		t.Errorf("stealth scan = %d ticks, want %d", row.StealthScanTicks, want)
	}
	if len(row.Trips) != 3 {
		t.Fatalf("trips = %+v, want all three default calibrations", row.Trips)
	}
	// The full-speed scan trips the window detectors when the 65th fault
	// lands: ceil(65*774/1) ticks. The EWMA crosses after its first step.
	for _, trip := range row.Trips[:2] {
		if trip.Tick != 50310 {
			t.Errorf("%s trip tick = %d, want 50310", trip.Detector, trip.Tick)
		}
	}
	if ew := row.Trips[2]; ew.Detector != "ewma-alpha8" || ew.Tick != kernel.TicksPerSecond {
		t.Errorf("ewma trip = %+v", ew)
	}
	if row.Undetectable {
		t.Error("faulting row marked undetectable")
	}

	// No faults at all: the rate detector cannot see it at any speed.
	clean := Detectability{Primitive: "epoll_wait/arg1", Probes: 10, Ticks: 500}
	extrapolate(&clean, DefaultCalibrations())
	if !clean.Undetectable || clean.FaultRate != 0 || len(clean.Trips) != 0 || clean.StealthMargin != 0 {
		t.Errorf("no-fault row = %+v", clean)
	}

	// Degenerate totals: zero ticks and zero probes floor to 1 instead of
	// dividing by zero.
	degen := Detectability{Primitive: "x", Faults: 2}
	extrapolate(&degen, DefaultCalibrations())
	if degen.FaultRate != 2*kernel.TicksPerSecond {
		t.Errorf("zero-tick fault rate = %d", degen.FaultRate)
	}
	if degen.StealthMargin != 32 {
		t.Errorf("zero-probe margin = %d, want 32", degen.StealthMargin)
	}
}

func TestBucketExc(t *testing.T) {
	events := []trace.ExcEvent{
		{Clock: 0, Code: vm.ExcAccessViolation},
		{Clock: kernel.TicksPerSecond - 1, Code: vm.ExcAccessViolation},
		{Clock: kernel.TicksPerSecond, Code: vm.ExcAccessViolation},
		{Clock: 2*kernel.TicksPerSecond + kernel.TicksPerSecond/2, Code: vm.ExcAccessViolation},
		{Clock: 10, Code: vm.ExcDivideByZero}, // not an AV: ignored
	}
	got := BucketExc(events)
	want := map[uint64]uint64{0: 2, 1: 1, 2: 1}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for b, n := range want {
		if got[b] != n {
			t.Errorf("bucket %d = %d, want %d", b, got[b], n)
		}
	}
	if BucketExc(nil) != nil {
		t.Error("empty log should bucket to nil")
	}
}

// TestDetectAccumulationKeepsRatios pins the fold-idempotence the
// worker/cache invariance rests on: folding the same measurement n times
// scales the totals but leaves every derived ratio — fault rate, stealth
// margin, trip ticks — unchanged.
func TestDetectAccumulationKeepsRatios(t *testing.T) {
	one := NewDetect()
	one.AddPrimitive("syscall", "nginx", "recv/arg1", 1, 1, 774, map[uint64]uint64{0: 1})

	two := NewDetect()
	for i := 0; i < 2; i++ {
		two.AddPrimitive("syscall", "nginx", "recv/arg1", 1, 1, 774, map[uint64]uint64{0: 1})
	}

	r1 := one.Section("syscall", "nginx").Rows[0]
	r2 := two.Section("syscall", "nginx").Rows[0]
	if r2.Probes != 2*r1.Probes || r2.Faults != 2*r1.Faults || r2.Ticks != 2*r1.Ticks {
		t.Errorf("totals did not sum: %+v vs %+v", r1, r2)
	}
	if r2.FaultRate != r1.FaultRate || r2.StealthMargin != r1.StealthMargin {
		t.Errorf("ratios changed under accumulation: %+v vs %+v", r1, r2)
	}
	if len(r1.Trips) != len(r2.Trips) {
		t.Fatalf("trip counts differ: %d vs %d", len(r1.Trips), len(r2.Trips))
	}
	for i := range r1.Trips {
		if r1.Trips[i] != r2.Trips[i] {
			t.Errorf("trip %d changed: %+v vs %+v", i, r1.Trips[i], r2.Trips[i])
		}
	}
}

// TestFoldSectionRoundTrip: rendering a section and folding it into a fresh
// observer reproduces the snapshot byte for byte.
func TestFoldSectionRoundTrip(t *testing.T) {
	src := NewDetect()
	src.AddPrimitive("seh", "ie", "mshtml.dll/scope-2", 25, 25, 2*kernel.TicksPerSecond, nil)
	src.AddPrimitive("seh", "ie", "user32.dll/scope-0", 40, 40, kernel.TicksPerSecond, map[uint64]uint64{0: 40})
	src.AddSeries("seh", "ie", map[uint64]uint64{0: 70, 1: 70})
	src.AddBaseline("seh", "ie", "browse", 3, 5*kernel.TicksPerSecond, map[uint64]uint64{1: 3})

	dst := NewDetect()
	dst.FoldSection(src.Section("seh", "ie"))

	var a, b bytes.Buffer
	if err := src.Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := dst.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("fold round trip diverged:\n%s\nvs\n%s", a.String(), b.String())
	}

	// Nil section and nil observer are no-ops, not panics.
	dst.FoldSection(nil)
	(*Detect)(nil).FoldSection(src.Section("seh", "ie"))
	(*Detect)(nil).AddPrimitive("p", "t", "x", 1, 1, 1, nil)
	if (*Detect)(nil).Section("p", "t") != nil {
		t.Error("nil observer rendered a section")
	}
	if rep := (*Detect)(nil).Snapshot(); rep == nil || rep.Sections == nil || len(rep.Sections) != 0 {
		t.Errorf("nil observer snapshot = %+v", rep)
	}
}

// TestSnapshotStable: insertion order never leaks into the report — two
// observers fed the same data in different orders marshal identically, and
// Sections is [] (never null) when empty.
func TestSnapshotStable(t *testing.T) {
	feed := func(d *Detect, reverse bool) {
		adds := []func(){
			func() { d.AddPrimitive("syscall", "nginx", "recv/arg1", 1, 1, 774, nil) },
			func() { d.AddPrimitive("api", "ie", "VirtualQuery", 4, 4, 8, nil) },
			func() { d.AddSeries("api", "ie", map[uint64]uint64{0: 56}) },
			func() { d.AddBaseline("syscall", "nginx", "observe", 0, 1000, nil) },
		}
		if reverse {
			for i := len(adds) - 1; i >= 0; i-- {
				adds[i]()
			}
		} else {
			for _, f := range adds {
				f()
			}
		}
	}
	fwd, rev := NewDetect(), NewDetect()
	feed(fwd, false)
	feed(rev, true)
	fj, err := json.Marshal(fwd.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	rj, err := json.Marshal(rev.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fj, rj) {
		t.Errorf("insertion order changed the snapshot:\n%s\nvs\n%s", fj, rj)
	}

	empty, err := json.Marshal(NewDetect().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != `{"schema":"crashresist/detect/v1","sections":[]}` {
		t.Errorf("empty snapshot = %s", empty)
	}
}

// FuzzRateDetector drives the window and EWMA detectors with arbitrary
// event streams and calibrations: no input may panic, Detect must agree
// with Peak, and for the window detector the detection tick must be
// monotone in the threshold — a stricter detector can only fire later (or
// not at all), never earlier.
func FuzzRateDetector(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint64(1_000_000), uint64(3), uint64(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0}, uint64(100), uint64(0), uint64(1))
	f.Add([]byte{255, 1, 255, 1, 9}, uint64(8_000_000), uint64(64), uint64(64))
	f.Add([]byte{}, uint64(0), uint64(5), uint64(7))

	f.Fuzz(func(t *testing.T, data []byte, window, threshold, delta uint64) {
		// Bound the knobs: thresholds stay clear of the EWMA fixed-point
		// shift overflow, the window stays inside the bucket span the
		// synthesized clocks can reach.
		threshold %= 1 << 40
		hi := threshold + delta%(1<<16) + 1
		window = window%(16*kernel.TicksPerSecond) + 1

		// Synthesize a monotone event stream: each byte advances the clock
		// and its low bit picks the exception code. The cap bounds the
		// virtual-time span so the EWMA's bucket walk stays fast.
		if len(data) > 4096 {
			data = data[:4096]
		}
		var clock uint64
		events := make([]trace.ExcEvent, 0, len(data))
		for _, b := range data {
			clock += uint64(b) * 50_000
			code := vm.ExcAccessViolation
			if b&1 == 1 {
				code = vm.ExcDivideByZero
			}
			events = append(events, trace.ExcEvent{Clock: clock, Code: code})
		}

		det := RateDetector{Window: window, Threshold: threshold}
		peak := det.Peak(events)
		if det.Detect(events) != (peak > threshold) {
			t.Fatalf("Detect disagrees with Peak %d at threshold %d", peak, threshold)
		}
		// A stricter detector never flags what a looser one misses.
		if (RateDetector{Window: window, Threshold: hi}).Detect(events) && !det.Detect(events) {
			t.Fatalf("threshold %d detected but %d did not (peak %d)", hi, threshold, peak)
		}

		series := BucketExc(events)
		for _, kind := range []string{KindWindow, KindEWMA} {
			loose := Calibration{Name: "lo", Kind: kind, WindowTicks: window, Threshold: threshold, AlphaShift: 3}
			strict := Calibration{Name: "hi", Kind: kind, WindowTicks: window, Threshold: hi, AlphaShift: 3}
			evs := Evaluate("fuzz", "fuzz", series, []Calibration{loose, strict})
			byName := make(map[string]DetectionEvent, len(evs))
			for _, ev := range evs {
				byName[ev.Detector] = ev
			}
			evHi, hiTripped := byName["hi"]
			evLo, loTripped := byName["lo"]
			if hiTripped {
				if !loTripped {
					t.Fatalf("%s: threshold %d tripped but %d did not", kind, hi, threshold)
				}
				if evLo.Tick > evHi.Tick {
					t.Fatalf("%s: detection tick not monotone: t(%d)=%d > t(%d)=%d",
						kind, threshold, evLo.Tick, hi, evHi.Tick)
				}
			}
		}
	})
}
