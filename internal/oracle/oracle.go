// Package oracle turns discovered crash-resistant primitives into working
// memory oracles and probing attacks — the exploitation half of the paper
// (§III's three-step workflow and the four §VI proof-of-concept exploits).
//
// Every oracle implements the same interface: Probe(addr) reports whether
// the address is accessible, without ever crashing the target. The package
// also provides the address-space scanner that locates reference-less hidden
// regions (SafeStack/CPI-style) and the statistics the defense experiments
// consume.
package oracle

import (
	"fmt"

	"crashresist/internal/mem"
	"crashresist/internal/metrics"
	"crashresist/internal/vm"
)

// ProbeResult is the outcome of one memory probe.
type ProbeResult uint8

// Probe outcomes.
const (
	// ProbeMapped: the target address is accessible to the probing
	// primitive's access kind.
	ProbeMapped ProbeResult = iota + 1
	// ProbeUnmapped: the access failed (unmapped or protected).
	ProbeUnmapped
)

// String renders the result.
func (r ProbeResult) String() string {
	switch r {
	case ProbeMapped:
		return "mapped"
	case ProbeUnmapped:
		return "unmapped"
	default:
		return "probe?"
	}
}

// Oracle is a crash-resistant memory probing primitive.
type Oracle interface {
	// Name identifies the primitive.
	Name() string
	// Probe tests one address. It must not crash the target process; a
	// returned error means the oracle machinery itself broke (e.g. the
	// target died), which the caller should treat as detection failure.
	Probe(addr uint64) (ProbeResult, error)
}

// Stats aggregates a probing campaign.
type Stats struct {
	Probes  int
	Mapped  int
	Crashes int // target crashes observed (must stay 0 for crash resistance)
}

// Scanner drives an oracle across address ranges.
type Scanner struct {
	Oracle Oracle
	Stats  Stats
	// Metrics, when set, mirrors probe counts into a run collector
	// (CtrProbes / CtrProbesMapped). Nil disables mirroring.
	Metrics *metrics.Collector
}

// NewScanner wraps an oracle.
func NewScanner(o Oracle) *Scanner { return &Scanner{Oracle: o} }

// Probe tests one address, accumulating stats.
func (s *Scanner) Probe(addr uint64) (ProbeResult, error) {
	s.Stats.Probes++
	s.Metrics.Add(metrics.CtrProbes, 1)
	res, err := s.Oracle.Probe(addr)
	if err != nil {
		s.Stats.Crashes++
		return ProbeUnmapped, err
	}
	if res == ProbeMapped {
		s.Stats.Mapped++
		s.Metrics.Add(metrics.CtrProbesMapped, 1)
	}
	return res, nil
}

// LocateHiddenRegion scans [lo, hi) with stride regionSize — guaranteed to
// land inside any mapped region of at least that size, the paper's
// entropy-versus-probes trade-off — then refines backward page by page to
// the region's start. It returns the region base.
func (s *Scanner) LocateHiddenRegion(lo, hi, regionSize uint64) (uint64, error) {
	if regionSize == 0 || lo >= hi {
		return 0, fmt.Errorf("locate: bad range [%#x,%#x) size %#x", lo, hi, regionSize)
	}
	hit := uint64(0)
	found := false
	for addr := lo; addr < hi; addr += regionSize {
		res, err := s.Probe(addr)
		if err != nil {
			return 0, fmt.Errorf("probe %#x: %w", addr, err)
		}
		if res == ProbeMapped {
			hit = addr
			found = true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("locate: no mapped region in [%#x,%#x)", lo, hi)
	}
	// Refine to the first mapped page of the region.
	base := hit &^ uint64(mem.PageSize-1)
	for base >= lo+mem.PageSize {
		res, err := s.Probe(base - mem.PageSize)
		if err != nil {
			return 0, err
		}
		if res == ProbeUnmapped {
			break
		}
		base -= mem.PageSize
	}
	return base, nil
}

// PlantHiddenRegion maps a reference-less region in the process — the
// SafeStack/CPI-metadata stand-in the information-hiding defenses rely on.
// Only the caller learns the base; no pointer to it exists in the process.
func PlantHiddenRegion(p *vm.Process, size uint64) (uint64, error) {
	base, err := p.Alloc.Alloc(size, mem.PermRW)
	if err != nil {
		return 0, fmt.Errorf("plant hidden region: %w", err)
	}
	// A recognizable pattern so exploit demos can verify the find.
	if err := p.AS.WriteUint(base, 8, 0x5AFE57AC6D5AFE57); err != nil {
		return 0, err
	}
	return base, nil
}
