package oracle

import (
	"bytes"
	"fmt"

	"crashresist/internal/mem"
	"crashresist/internal/targets"
	"crashresist/internal/vm"
)

// The four §VI proof-of-concept exploits. Each assumes the paper's threat
// model: an arbitrary read/write primitive (emulated by direct address-space
// access, exactly as the paper patched its targets) plus an information leak
// for ordinary, non-hidden objects.

// IEOracle is the §VI-A exploit: jscript9's MUTX::Enter wraps an
// EnterCriticalSection-style call in a catch-all scope; the CRITICAL_SECTION
// debug-information pointer is attacker-reachable, and the ScriptEngine
// status field reveals whether the guarded call faulted.
type IEOracle struct {
	env      *targets.BrowserEnv
	dbgPtrVA uint64
	statusVA uint64
}

// NewIEOracle locates the ScriptEngine object (the "information leak") and
// returns the ready oracle.
func NewIEOracle(env *targets.BrowserEnv) (*IEOracle, error) {
	critsec, err := env.ExportVA("jscript9.dll", "critsec")
	if err != nil {
		return nil, err
	}
	engine, err := env.ExportVA("jscript9.dll", "script_engine")
	if err != nil {
		return nil, err
	}
	return &IEOracle{
		env:      env,
		dbgPtrVA: critsec + 16, // debug_info field
		statusVA: engine + 8,   // status field
	}, nil
}

// Name implements Oracle.
func (o *IEOracle) Name() string { return "ie11-mutx-enter" }

// Probe implements Oracle: overwrite debug_info with addr-0x10, add a new
// script (js_run), read back the status field.
func (o *IEOracle) Probe(addr uint64) (ProbeResult, error) {
	if err := o.env.Proc.AS.WriteUint(o.dbgPtrVA, 8, addr-16); err != nil {
		return ProbeUnmapped, fmt.Errorf("ie probe: corrupt debug_info: %w", err)
	}
	if _, err := o.env.Call("jscript9.dll", "js_run", 1); err != nil {
		return ProbeUnmapped, fmt.Errorf("ie probe: trigger: %w", err)
	}
	status, err := o.env.Proc.AS.ReadUint(o.statusVA, 8)
	if err != nil {
		return ProbeUnmapped, err
	}
	if status == 0 {
		return ProbeMapped, nil
	}
	return ProbeUnmapped, nil
}

// FirefoxOracle is the §VI-B exploit: a background thread continuously
// services probe requests through an ntdll exception handler; the attacker
// only writes the target address into the probe object and reads the result
// back.
type FirefoxOracle struct {
	env      *targets.BrowserEnv
	slotVA   uint64
	resultVA uint64
}

// NewFirefoxOracle locates the probe object.
func NewFirefoxOracle(env *targets.BrowserEnv) (*FirefoxOracle, error) {
	slot, err := env.ExportVA("xul.dll", "probe_slot")
	if err != nil {
		return nil, err
	}
	result, err := env.ExportVA("xul.dll", "probe_result")
	if err != nil {
		return nil, err
	}
	return &FirefoxOracle{env: env, slotVA: slot, resultVA: result}, nil
}

// Name implements Oracle.
func (o *FirefoxOracle) Name() string { return "firefox46-ntdll-worker" }

// Probe implements Oracle: write the address, let the background thread act,
// read the result. A result of all-ones means the handler ran (fault);
// anything else is the probed memory's content. (A mapped word that happens
// to hold all-ones is misclassified — an inherent limitation of this
// primitive, present in the original too.)
func (o *FirefoxOracle) Probe(addr uint64) (ProbeResult, error) {
	if addr == 0 {
		return ProbeUnmapped, nil // slot value 0 means "idle"
	}
	if err := o.env.Proc.AS.WriteUint(o.slotVA, 8, addr); err != nil {
		return ProbeUnmapped, fmt.Errorf("firefox probe: %w", err)
	}
	for i := 0; i < 200; i++ {
		o.env.Proc.Run(10_000)
		if !o.env.Proc.Alive() {
			return ProbeUnmapped, fmt.Errorf("firefox died: %v", o.env.Proc.Crash)
		}
		v, err := o.env.Proc.AS.ReadUint(o.slotVA, 8)
		if err != nil {
			return ProbeUnmapped, err
		}
		if v == 0 {
			break
		}
	}
	res, err := o.env.Proc.AS.ReadUint(o.resultVA, 8)
	if err != nil {
		return ProbeUnmapped, err
	}
	if res == ^uint64(0) {
		return ProbeUnmapped, nil
	}
	return ProbeMapped, nil
}

// NginxOracle is the §VI-C exploit: a partial request keeps a
// connection-buffer object alive; the attacker leaks it by scanning for a
// signature, rewrites the buffer pointer to the probe target, completes the
// request, and reads the connection's fate (response = accessible, graceful
// close = not).
//
// Note this primitive probes for *writable* memory: a mapped probe makes
// recv() deposit the completion bytes at the target.
type NginxOracle struct {
	env     *targets.ServerEnv
	counter int
}

// NewNginxOracle wraps a running nginx-model environment.
func NewNginxOracle(env *targets.ServerEnv) *NginxOracle {
	return &NginxOracle{env: env}
}

// Name implements Oracle.
func (o *NginxOracle) Name() string { return "nginx19-recv" }

// Probe implements Oracle with the four-step §VI-C dance.
func (o *NginxOracle) Probe(addr uint64) (ProbeResult, error) {
	o.counter++
	sig := []byte(fmt.Sprintf("SIGNATURE%06d", o.counter))

	// Step 1: partial request carrying the signature over connection A.
	cc, err := o.env.Kern.Connect(targets.HTTPPort)
	if err != nil {
		return ProbeUnmapped, fmt.Errorf("nginx probe: connect: %w", err)
	}
	cc.Send(sig)
	o.env.Proc.Run(200_000)

	// Step 2: leak the buffer holding the signature (arbitrary read).
	bufAddr, ok := findBytes(o.env.Proc, sig)
	if !ok {
		cc.Close()
		return ProbeUnmapped, fmt.Errorf("nginx probe: signature not found")
	}

	// Step 3: find the stored pointer to that buffer (the ngx_buf_t
	// field) and overwrite it with the probe target (arbitrary write).
	ptrLoc, ok := findPointer(o.env.Proc, bufAddr)
	if !ok {
		cc.Close()
		return ProbeUnmapped, fmt.Errorf("nginx probe: buffer pointer not found")
	}
	if err := o.env.Proc.AS.WriteUint(ptrLoc, 8, addr); err != nil {
		return ProbeUnmapped, err
	}
	// Also reset the fill offset so the completion lands at the probe
	// target itself.
	if err := o.env.Proc.AS.WriteUint(ptrLoc+16, 8, 0); err != nil {
		return ProbeUnmapped, err
	}

	// Step 4: complete the request; response vs. graceful close is the
	// oracle.
	cc.Send([]byte("XY\n\n"))
	o.env.Proc.Run(500_000)
	resp := cc.Recv()
	served := len(resp) > 0
	cc.Close()
	o.env.Proc.Run(100_000)

	if !o.env.Proc.Alive() {
		return ProbeUnmapped, fmt.Errorf("nginx died: %v", o.env.Proc.Crash)
	}
	if served {
		return ProbeMapped, nil
	}
	return ProbeUnmapped, nil
}

// CherokeeOracle is the §VI-D exploit: corrupting one worker's epoll event
// pointer turns that worker into a tight failing loop; the time the server
// needs to answer a fixed batch of requests is the side channel.
type CherokeeOracle struct {
	env *targets.ServerEnv
	// ctxVA is the leaked location of worker 0's event-array pointer.
	ctxVA   uint64
	validEv uint64
	// Requests per measurement batch (1,000 in the paper).
	Requests int
	baseline uint64
}

// NewCherokeeOracle leaks the worker context and calibrates the baseline.
func NewCherokeeOracle(env *targets.ServerEnv, requests int) (*CherokeeOracle, error) {
	if requests <= 0 {
		requests = 20
	}
	mod := env.Proc.Modules()[0]
	off, ok := mod.Image.Export("thread_ctxs")
	if !ok {
		return nil, fmt.Errorf("cherokee oracle: no thread_ctxs export")
	}
	ctxVA := mod.VA(off)
	validEv, err := env.Proc.AS.ReadUint(ctxVA, 8)
	if err != nil {
		return nil, err
	}
	o := &CherokeeOracle{env: env, ctxVA: ctxVA, validEv: validEv, Requests: requests}
	o.baseline = o.measure()
	if o.baseline == 0 {
		return nil, fmt.Errorf("cherokee oracle: baseline measurement failed")
	}
	return o, nil
}

// Name implements Oracle.
func (o *CherokeeOracle) Name() string { return "cherokee12-epoll-wait" }

// Baseline returns the calibration time for one request batch.
func (o *CherokeeOracle) Baseline() uint64 { return o.baseline }

// MeasureWith corrupts the worker pointer with addr, measures a batch, then
// restores the worker. Exposed for the timing-curve experiment.
func (o *CherokeeOracle) MeasureWith(addr uint64) (uint64, error) {
	if err := o.env.Proc.AS.WriteUint(o.ctxVA, 8, addr); err != nil {
		return 0, err
	}
	elapsed := o.measure()
	// Restore: the worker reloads the pointer on its next iteration.
	if err := o.env.Proc.AS.WriteUint(o.ctxVA, 8, o.validEv); err != nil {
		return 0, err
	}
	o.env.Proc.Run(100_000)
	if !o.env.Proc.Alive() {
		return 0, fmt.Errorf("cherokee died: %v", o.env.Proc.Crash)
	}
	return elapsed, nil
}

// Probe implements Oracle: a batch that takes markedly longer than the
// baseline means the worker stalled in failing epoll_wait calls — the
// target is inaccessible.
func (o *CherokeeOracle) Probe(addr uint64) (ProbeResult, error) {
	elapsed, err := o.MeasureWith(addr)
	if err != nil {
		return ProbeUnmapped, err
	}
	if elapsed > o.baseline*3 {
		return ProbeUnmapped, nil
	}
	return ProbeMapped, nil
}

// measure times one batch of requests in virtual ticks.
func (o *CherokeeOracle) measure() uint64 {
	var total uint64
	for i := 0; i < o.Requests; i++ {
		_, ticks, _ := o.env.RequestTimed(targets.HTTPPort, []byte("GET /probe\n\n"))
		total += ticks
	}
	return total
}

// findBytes scans writable memory for a byte pattern (the attacker's
// arbitrary-read leak loop).
func findBytes(p *vm.Process, pattern []byte) (uint64, bool) {
	for _, r := range p.AS.Regions() {
		if r.Perm&mem.PermWrite == 0 {
			continue
		}
		data, err := p.AS.Read(r.Addr, r.Length)
		if err != nil {
			continue
		}
		if idx := bytes.Index(data, pattern); idx >= 0 {
			return r.Addr + uint64(idx), true
		}
	}
	return 0, false
}

// findPointer scans writable memory for an 8-byte little-endian value equal
// to target.
func findPointer(p *vm.Process, target uint64) (uint64, bool) {
	var pat [8]byte
	for i := 0; i < 8; i++ {
		pat[i] = byte(target >> (8 * i))
	}
	return findBytesAligned(p, pat[:])
}

func findBytesAligned(p *vm.Process, pattern []byte) (uint64, bool) {
	for _, r := range p.AS.Regions() {
		if r.Perm&mem.PermWrite == 0 {
			continue
		}
		data, err := p.AS.Read(r.Addr, r.Length)
		if err != nil {
			continue
		}
		for off := 0; off+len(pattern) <= len(data); off += 8 {
			if bytes.Equal(data[off:off+len(pattern)], pattern) {
				return r.Addr + uint64(off), true
			}
		}
	}
	return 0, false
}
