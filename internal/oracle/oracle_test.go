package oracle

import (
	"testing"

	"crashresist/internal/mem"
	"crashresist/internal/targets"
	"crashresist/internal/vm"
)

func ieEnv(t *testing.T) *targets.BrowserEnv {
	t.Helper()
	br, err := targets.IE(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	env, err := br.NewEnv(777)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Start(); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestIEOracleProbe(t *testing.T) {
	env := ieEnv(t)
	o, err := NewIEOracle(env)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := env.ExportVA("jscript9.dll", "debug_info")
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Probe(mapped)
	if err != nil || res != ProbeMapped {
		t.Errorf("mapped probe = %v %v", res, err)
	}
	res, err = o.Probe(0xdead0000)
	if err != nil || res != ProbeUnmapped {
		t.Errorf("unmapped probe = %v %v", res, err)
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("probing crashed IE: %v", env.Proc.Crash)
	}
}

func TestIEOracleLocatesHiddenRegion(t *testing.T) {
	env := ieEnv(t)
	const size = 16 * mem.PageSize
	hidden, err := PlantHiddenRegion(env.Proc, size)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewIEOracle(env)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanner(o)
	// Scan a window around the hidden region (the full arena would take
	// minutes at test scale; the bench does a bigger sweep).
	lo := hidden &^ (size - 1)
	if lo < mem.PageSize {
		lo = mem.PageSize
	}
	base, err := s.LocateHiddenRegion(lo-4*size, hidden+4*size, size)
	if err != nil {
		t.Fatalf("locate: %v (stats %+v)", err, s.Stats)
	}
	if base != hidden {
		t.Errorf("located %#x, want %#x", base, hidden)
	}
	if s.Stats.Crashes != 0 {
		t.Errorf("crashes = %d, want 0", s.Stats.Crashes)
	}
	if s.Stats.Probes == 0 {
		t.Error("no probes recorded")
	}
	// The marker confirms the region is the planted one.
	v, err := env.Proc.AS.ReadUint(base, 8)
	if err != nil || v != 0x5AFE57AC6D5AFE57 {
		t.Errorf("marker = %#x %v", v, err)
	}
}

func TestFirefoxOracleProbe(t *testing.T) {
	br, err := targets.Firefox(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	env, err := br.NewEnv(778)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Start(); err != nil {
		t.Fatal(err)
	}
	o, err := NewFirefoxOracle(env)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := env.ExportVA("xul.dll", "probe_result")
	if err != nil {
		t.Fatal(err)
	}
	// Ensure the probed word does not hold the all-ones sentinel.
	if err := env.Proc.AS.WriteUint(mapped, 8, 0); err != nil {
		t.Fatal(err)
	}
	// Probe an adjacent mapped address instead of the result cell itself
	// (the worker writes the result there).
	res, err := o.Probe(mapped + 8)
	if err != nil || res != ProbeMapped {
		t.Errorf("mapped probe = %v %v", res, err)
	}
	res, err = o.Probe(0xdead0000)
	if err != nil || res != ProbeUnmapped {
		t.Errorf("unmapped probe = %v %v", res, err)
	}
	if res, err := o.Probe(0); err != nil || res != ProbeUnmapped {
		t.Errorf("null probe = %v %v", res, err)
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("probing crashed firefox: %v", env.Proc.Crash)
	}
}

func TestNginxOracleProbe(t *testing.T) {
	srv, err := targets.Nginx()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(779)
	if err != nil {
		t.Fatal(err)
	}
	o := NewNginxOracle(env)

	// A mapped, writable target: the server's own config buffer.
	mod := env.Proc.Modules()[0]
	mapped := mod.VA(mod.Image.BSSStart())
	res, err := o.Probe(mapped)
	if err != nil || res != ProbeMapped {
		t.Errorf("mapped probe = %v %v", res, err)
	}
	res, err = o.Probe(0xdead0000)
	if err != nil || res != ProbeUnmapped {
		t.Errorf("unmapped probe = %v %v", res, err)
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("probing crashed nginx: %v", env.Proc.Crash)
	}
	// The server must still serve normal clients afterwards.
	if !srv.ServiceCheck(env) {
		t.Error("nginx no longer serves after probes")
	}
}

func TestCherokeeOracleProbe(t *testing.T) {
	srv, err := targets.Cherokee()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(780)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewCherokeeOracle(env, 8)
	if err != nil {
		t.Fatal(err)
	}
	if o.Baseline() == 0 {
		t.Fatal("zero baseline")
	}

	mod := env.Proc.Modules()[0]
	mapped := mod.VA(mod.Image.BSSStart())
	res, err := o.Probe(mapped)
	if err != nil || res != ProbeMapped {
		t.Errorf("mapped probe = %v %v", res, err)
	}
	res, err = o.Probe(0xdead0000)
	if err != nil || res != ProbeUnmapped {
		t.Errorf("unmapped probe = %v %v", res, err)
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("probing crashed cherokee: %v", env.Proc.Crash)
	}
}

func TestScannerStats(t *testing.T) {
	env := ieEnv(t)
	o, err := NewIEOracle(env)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanner(o)
	if _, err := s.Probe(0xdead0000); err != nil {
		t.Fatal(err)
	}
	mapped, _ := env.ExportVA("jscript9.dll", "debug_info")
	if _, err := s.Probe(mapped); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Probes != 2 || s.Stats.Mapped != 1 || s.Stats.Crashes != 0 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

func TestLocateHiddenRegionErrors(t *testing.T) {
	env := ieEnv(t)
	o, err := NewIEOracle(env)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanner(o)
	if _, err := s.LocateHiddenRegion(10, 5, 100); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := s.LocateHiddenRegion(0x10000, 0x20000, 0); err == nil {
		t.Error("zero region size should fail")
	}
	// A window with nothing mapped.
	if _, err := s.LocateHiddenRegion(0x10000, 0x40000, 0x10000); err == nil {
		t.Error("empty window should report no region")
	}
}

func TestProbeResultString(t *testing.T) {
	if ProbeMapped.String() != "mapped" || ProbeUnmapped.String() != "unmapped" || ProbeResult(9).String() != "probe?" {
		t.Error("probe result strings wrong")
	}
}

func TestOracleNames(t *testing.T) {
	srv, err := targets.Nginx()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(781)
	if err != nil {
		t.Fatal(err)
	}
	if got := NewNginxOracle(env).Name(); got != "nginx19-recv" {
		t.Errorf("nginx oracle name = %q", got)
	}
	benv := ieEnv(t)
	ie, err := NewIEOracle(benv)
	if err != nil {
		t.Fatal(err)
	}
	if ie.Name() != "ie11-mutx-enter" {
		t.Errorf("ie oracle name = %q", ie.Name())
	}

	fbr, err := targets.Firefox(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	fenv, err := fbr.NewEnv(782)
	if err != nil {
		t.Fatal(err)
	}
	if err := fenv.Start(); err != nil {
		t.Fatal(err)
	}
	ff, err := NewFirefoxOracle(fenv)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Name() != "firefox46-ntdll-worker" {
		t.Errorf("firefox oracle name = %q", ff.Name())
	}

	csrv, err := targets.Cherokee()
	if err != nil {
		t.Fatal(err)
	}
	cenv, err := csrv.NewEnv(783)
	if err != nil {
		t.Fatal(err)
	}
	co, err := NewCherokeeOracle(cenv, 5)
	if err != nil {
		t.Fatal(err)
	}
	if co.Name() != "cherokee12-epoll-wait" {
		t.Errorf("cherokee oracle name = %q", co.Name())
	}
}

func TestPlantHiddenRegionTooLarge(t *testing.T) {
	env := ieEnv(t)
	if _, err := PlantHiddenRegion(env.Proc, 1<<60); err == nil {
		t.Error("absurd region size should fail")
	}
}
