package oracle

// Property test: the scanner's verdict over randomized memory layouts must
// agree with brute-force ground truth from the address space itself. Each
// layout allocates a fresh 16-page window and randomly leaves pages
// readable, strips their permissions (guard pages), or unmaps them; the
// oracle must call every page correctly — a single false mapped or false
// unmapped verdict breaks the §VI attack's bisection — and the probed
// process must survive the whole campaign without a crash.

import (
	"math/rand"
	"testing"

	"crashresist/internal/mem"
	"crashresist/internal/vm"
)

// pageFate is what a layout did to one page.
type pageFate uint8

const (
	fateReadable pageFate = iota // mapped, PermRW
	fateGuard                    // mapped, no permissions
	fateUnmapped                 // unmapped
)

func TestScannerMatchesGroundTruthOverRandomLayouts(t *testing.T) {
	layouts := 200
	if testing.Short() {
		layouts = 40
	}
	const pages = 16

	env := ieEnv(t)
	o, err := NewIEOracle(env)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanner(o)
	as := env.Proc.AS

	var falseMapped, falseUnmapped int
	for li := 0; li < layouts; li++ {
		rng := rand.New(rand.NewSource(9000 + int64(li)))
		base, err := env.Proc.Alloc.Alloc(pages*mem.PageSize, mem.PermRW)
		if err != nil {
			t.Fatalf("layout %d: alloc: %v", li, err)
		}
		fates := make([]pageFate, pages)
		for pi := range fates {
			addr := base + uint64(pi)*mem.PageSize
			switch fates[pi] = pageFate(rng.Intn(3)); fates[pi] {
			case fateReadable:
				// leave as allocated
			case fateGuard:
				if err := as.Protect(addr, mem.PageSize, 0); err != nil {
					t.Fatalf("layout %d page %d: protect: %v", li, pi, err)
				}
			case fateUnmapped:
				if err := as.Unmap(addr, mem.PageSize); err != nil {
					t.Fatalf("layout %d page %d: unmap: %v", li, pi, err)
				}
			}
		}

		for pi := 0; pi < pages; pi++ {
			addr := base + uint64(pi)*mem.PageSize
			// Brute-force ground truth straight from the address space:
			// the oracle reports "mapped" exactly for readable memory.
			perm, mapped := as.PermAt(addr)
			want := ProbeUnmapped
			if mapped && perm&mem.PermRead != 0 {
				want = ProbeMapped
			}
			got, err := s.Probe(addr)
			if err != nil {
				t.Fatalf("layout %d page %d (%v): probe %#x: %v", li, pi, fates[pi], addr, err)
			}
			if got != want {
				switch want {
				case ProbeMapped:
					falseUnmapped++
				case ProbeUnmapped:
					falseMapped++
				}
				t.Errorf("layout %d page %d (%v): probe %#x = %v, want %v", li, pi, fates[pi], addr, got, want)
			}
		}
		if env.Proc.State == vm.ProcCrashed {
			t.Fatalf("layout %d crashed the target: %v", li, env.Proc.Crash)
		}
	}

	if falseMapped != 0 || falseUnmapped != 0 {
		t.Errorf("verdict errors: %d false mapped, %d false unmapped (want 0/0)", falseMapped, falseUnmapped)
	}
	if s.Stats.Crashes != 0 {
		t.Errorf("scanner recorded %d crashes, want 0", s.Stats.Crashes)
	}
	if want := layouts * pages; s.Stats.Probes != want {
		t.Errorf("probes = %d, want %d", s.Stats.Probes, want)
	}
}
