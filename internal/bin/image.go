// Package bin defines CRX, the binary image format for M64 executables and
// libraries, together with its loader.
//
// A CRX image is the synthetic analogue of an ELF binary or PE DLL. It
// carries exactly the metadata the paper's discovery pipelines consume:
//
//   - an executable text section (M64 code, position independent),
//   - an initialized data section plus BSS,
//   - an import table (system APIs or module!symbol references) driving the
//     CALLI instruction, so call-site harvesting can attribute API calls,
//   - an export table and function symbols,
//   - data relocations for absolute pointers embedded in data,
//   - a scope table equivalent to the PE .pdata/.xdata exception metadata:
//     guarded [begin,end) code ranges, each with a filter (a real function in
//     the image, or the catch-all marker) and a handler landing pad.
//
// Image offsets are "flat": text occupies [0, len(Text)), data starts at
// DataStart(), BSS at BSSStart(). A loaded module's virtual address for flat
// offset o is simply base+o.
package bin

import (
	"fmt"
	"sort"

	"crashresist/internal/mem"
)

// Kind distinguishes executables from libraries.
type Kind uint8

// Image kinds.
const (
	KindExecutable Kind = iota + 1
	KindLibrary
)

// String returns "exe" or "dll".
func (k Kind) String() string {
	switch k {
	case KindExecutable:
		return "exe"
	case KindLibrary:
		return "dll"
	default:
		return "kind?"
	}
}

// FilterCatchAll is the distinguished scope-table filter value meaning "all
// exceptions are caught and execution resumes at the handler", mirroring the
// constant-1 filter field the paper found in jscript9's MUTX::Enter scope
// table.
const FilterCatchAll uint32 = 1

// ScopeEntry is one guarded code region with its exception filter and
// handler, the CRX equivalent of a C-specific SEH scope-table record.
type ScopeEntry struct {
	// Func is the flat offset of the function containing the guarded
	// region; exception dispatch unwinds to this function's frame.
	Func uint32
	// Begin and End delimit the guarded instruction range [Begin, End).
	Begin uint32
	End   uint32
	// Filter is the flat offset of the filter function, or FilterCatchAll.
	// A filter function receives the exception code in R1 and the fault
	// address in R2 and returns the SEH disposition in R0.
	Filter uint32
	// Target is the flat offset of the handler landing pad inside Func.
	Target uint32
}

// Covers reports whether the guarded range contains the flat offset.
func (s ScopeEntry) Covers(off uint32) bool { return off >= s.Begin && off < s.End }

// IsCatchAll reports whether the entry catches every exception class.
func (s ScopeEntry) IsCatchAll() bool { return s.Filter == FilterCatchAll }

// Import names a symbol resolved at load time. A zero-length Module means a
// system API provided natively by the platform layer (Windows-model API or a
// kernel-provided vector); otherwise the loader binds to Module's export.
type Import struct {
	Module string
	Symbol string
}

// String renders "module!symbol" or "api:symbol".
func (i Import) String() string {
	if i.Module == "" {
		return "api:" + i.Symbol
	}
	return i.Module + "!" + i.Symbol
}

// Reloc instructs the loader to write base+Target (8 bytes little endian) at
// flat offset Offset, which must lie in the data section.
type Reloc struct {
	Offset uint32
	Target uint32
}

// Symbol is a named function or data object, used for reporting and for
// locating code in analyses.
type Symbol struct {
	Name   string
	Offset uint32
	Size   uint32
}

// Image is a CRX binary image.
type Image struct {
	Name    string
	Kind    Kind
	Entry   uint32 // flat offset of the entry point (executables)
	Text    []byte
	Data    []byte
	BSSSize uint32
	Imports []Import
	Exports map[string]uint32 // name → flat offset
	Symbols []Symbol
	Relocs  []Reloc
	Scopes  []ScopeEntry
}

// DataStart returns the flat offset where the data section begins.
func (img *Image) DataStart() uint32 {
	return uint32(mem.RoundUp(uint64(len(img.Text))))
}

// BSSStart returns the flat offset where the BSS begins.
func (img *Image) BSSStart() uint32 {
	return img.DataStart() + uint32(mem.RoundUp(uint64(len(img.Data))))
}

// Span returns the total mapped size of the image in bytes (page rounded).
func (img *Image) Span() uint64 {
	return uint64(img.BSSStart()) + mem.RoundUp(uint64(img.BSSSize))
}

// Export looks up an exported symbol's flat offset.
func (img *Image) Export(name string) (uint32, bool) {
	off, ok := img.Exports[name]
	return off, ok
}

// SymbolAt returns the function symbol containing the flat offset, if any.
func (img *Image) SymbolAt(off uint32) (Symbol, bool) {
	best := -1
	for i, s := range img.Symbols {
		if off >= s.Offset && (s.Size == 0 || off < s.Offset+s.Size) {
			if best < 0 || s.Offset > img.Symbols[best].Offset {
				best = i
			}
		}
	}
	if best < 0 {
		return Symbol{}, false
	}
	return img.Symbols[best], true
}

// Validate performs structural sanity checks and returns the first problem
// found, or nil. Loaders call this before mapping.
func (img *Image) Validate() error {
	if img.Name == "" {
		return fmt.Errorf("image has no name")
	}
	if img.Kind != KindExecutable && img.Kind != KindLibrary {
		return fmt.Errorf("%s: invalid kind %d", img.Name, img.Kind)
	}
	if img.Kind == KindExecutable && int(img.Entry) >= len(img.Text) {
		return fmt.Errorf("%s: entry %#x outside text (%#x)", img.Name, img.Entry, len(img.Text))
	}
	textEnd := uint32(len(img.Text))
	dataStart, bssStart := img.DataStart(), img.BSSStart()
	for name, off := range img.Exports {
		if off >= bssStart+img.BSSSize {
			return fmt.Errorf("%s: export %q offset %#x out of range", img.Name, name, off)
		}
	}
	for i, r := range img.Relocs {
		if r.Offset < dataStart || r.Offset+8 > dataStart+uint32(len(img.Data)) {
			return fmt.Errorf("%s: reloc %d offset %#x outside data", img.Name, i, r.Offset)
		}
	}
	for i, s := range img.Scopes {
		if s.Begin >= s.End || s.End > textEnd {
			return fmt.Errorf("%s: scope %d bad range [%#x,%#x)", img.Name, i, s.Begin, s.End)
		}
		if s.Target >= textEnd {
			return fmt.Errorf("%s: scope %d target %#x outside text", img.Name, i, s.Target)
		}
		if s.Filter != FilterCatchAll && s.Filter >= textEnd {
			return fmt.Errorf("%s: scope %d filter %#x outside text", img.Name, i, s.Filter)
		}
		if s.Func >= textEnd {
			return fmt.Errorf("%s: scope %d func %#x outside text", img.Name, i, s.Func)
		}
	}
	return nil
}

// Module is an image mapped into an address space.
type Module struct {
	Image *Image
	Base  uint64
	// ImportAddrs holds one resolved target per Image.Imports entry:
	// either the virtual address of another module's export (code import)
	// or an opaque native API handle (see NativeImportBit).
	ImportAddrs []uint64
}

// NativeImportBit marks an ImportAddrs entry as a native API handle rather
// than a code address. The low 32 bits carry the platform's API identifier.
// Bit 63 is far outside the simulated user address arena, so the two cannot
// collide.
const NativeImportBit = uint64(1) << 63

// VA converts a flat image offset to a virtual address.
func (m *Module) VA(off uint32) uint64 { return m.Base + uint64(off) }

// Contains reports whether the virtual address falls inside the module.
func (m *Module) Contains(addr uint64) bool {
	return addr >= m.Base && addr < m.Base+m.Image.Span()
}

// OffsetOf converts a virtual address inside the module to a flat offset.
func (m *Module) OffsetOf(addr uint64) uint32 { return uint32(addr - m.Base) }

// ScopesAt returns the scope entries guarding the given virtual address,
// innermost (smallest range) first.
func (m *Module) ScopesAt(addr uint64) []ScopeEntry {
	if !m.Contains(addr) {
		return nil
	}
	off := m.OffsetOf(addr)
	var out []ScopeEntry
	for _, s := range m.Image.Scopes {
		if s.Covers(off) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].End-out[i].Begin < out[j].End-out[j].Begin
	})
	return out
}

// ImportResolver resolves an import to either a code virtual address or a
// native API handle (with NativeImportBit set).
type ImportResolver func(imp Import) (uint64, error)

// Load validates img, maps its sections at the allocator-chosen base, applies
// relocations and resolves imports. Text is mapped r-x, data and BSS rw-.
func Load(as *mem.AddressSpace, alloc *mem.Allocator, img *Image, resolve ImportResolver) (*Module, error) {
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	base, err := alloc.Alloc(img.Span(), mem.PermRW)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", img.Name, err)
	}
	if err := as.WriteForce(base, img.Text); err != nil {
		return nil, fmt.Errorf("load %s text: %w", img.Name, err)
	}
	if len(img.Data) > 0 {
		if err := as.WriteForce(base+uint64(img.DataStart()), img.Data); err != nil {
			return nil, fmt.Errorf("load %s data: %w", img.Name, err)
		}
	}
	for _, r := range img.Relocs {
		var buf [8]byte
		v := base + uint64(r.Target)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		if err := as.WriteForce(base+uint64(r.Offset), buf[:]); err != nil {
			return nil, fmt.Errorf("load %s reloc: %w", img.Name, err)
		}
	}
	// Seal text as r-x after writing.
	textSpan := mem.RoundUp(uint64(len(img.Text)))
	if textSpan > 0 {
		if err := as.Protect(base, textSpan, mem.PermRX); err != nil {
			return nil, fmt.Errorf("load %s protect: %w", img.Name, err)
		}
	}

	m := &Module{Image: img, Base: base}
	if len(img.Imports) > 0 {
		if resolve == nil {
			return nil, fmt.Errorf("load %s: image has imports but no resolver", img.Name)
		}
		m.ImportAddrs = make([]uint64, len(img.Imports))
		for i, imp := range img.Imports {
			addr, err := resolve(imp)
			if err != nil {
				return nil, fmt.Errorf("load %s: resolve %s: %w", img.Name, imp, err)
			}
			m.ImportAddrs[i] = addr
		}
	}
	return m, nil
}
