package bin

import (
	"bytes"
	"testing"
)

// FuzzImageParse feeds arbitrary bytes to the CRX unmarshaller. Hostile
// input must never panic, and any image the parser accepts must survive a
// canonical round trip: marshalling it and re-parsing the result is a
// fixpoint (raw input bytes need not be reproduced — Marshal sorts the
// export table).
func FuzzImageParse(f *testing.F) {
	seed := &Image{
		Name:    "seed.dll",
		Kind:    KindLibrary,
		Text:    []byte{byte(1)},
		Entry:   0,
		Exports: map[string]uint32{"fn": 0},
		Symbols: []Symbol{{Name: "fn", Offset: 0, Size: 1}},
	}
	if data, err := Marshal(seed); err == nil {
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("CRX1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Unmarshal(data)
		if err != nil {
			return
		}
		m1, err := Marshal(img)
		if err != nil {
			t.Fatalf("Unmarshal accepted an image Marshal rejects: %v", err)
		}
		img2, err := Unmarshal(m1)
		if err != nil {
			t.Fatalf("Marshal produced bytes Unmarshal rejects: %v", err)
		}
		m2, err := Marshal(img2)
		if err != nil {
			t.Fatalf("second Marshal failed: %v", err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("canonical encoding not a fixpoint:\n m1 = %x\n m2 = %x", m1, m2)
		}
	})
}
