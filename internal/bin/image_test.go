package bin

import (
	"bytes"
	"reflect"
	"testing"

	"crashresist/internal/isa"
	"crashresist/internal/mem"
)

// testImage builds a small valid image: a function at 0 that loads from a
// pointer held in data, a filter at filterOff, plus a guarded region.
func testImage(t *testing.T) *Image {
	t.Helper()
	text, err := isa.EncodeAll([]isa.Instruction{
		{Op: isa.OpNop}, // 0
		{Op: isa.OpLoad8, A: isa.R0, B: isa.R1, Disp: 0}, // 1 (guarded)
		{Op: isa.OpRet}, // 8
		// filter at offset 9: return 1
		{Op: isa.OpMovRI, A: isa.R0, Imm: 1}, // 9
		{Op: isa.OpRet},                      // 19
	})
	if err != nil {
		t.Fatal(err)
	}
	img := &Image{
		Name:    "test.dll",
		Kind:    KindLibrary,
		Text:    text,
		Data:    make([]byte, 64),
		BSSSize: 128,
		Exports: map[string]uint32{"probe": 0, "filter": 9},
		Symbols: []Symbol{
			{Name: "probe", Offset: 0, Size: 9},
			{Name: "filter", Offset: 9, Size: 11},
		},
		Scopes: []ScopeEntry{
			{Func: 0, Begin: 1, End: 8, Filter: 9, Target: 8},
		},
	}
	img.Imports = nil
	img.Relocs = []Reloc{{Offset: img.DataStart() + 8, Target: 0}}
	return img
}

func TestImageLayout(t *testing.T) {
	img := testImage(t)
	if img.DataStart() != mem.PageSize {
		t.Errorf("DataStart = %#x, want page size", img.DataStart())
	}
	if img.BSSStart() != 2*mem.PageSize {
		t.Errorf("BSSStart = %#x", img.BSSStart())
	}
	if img.Span() != 3*mem.PageSize {
		t.Errorf("Span = %#x, want 3 pages", img.Span())
	}
}

func TestValidate(t *testing.T) {
	if err := testImage(t).Validate(); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*Image)
	}{
		{"no name", func(i *Image) { i.Name = "" }},
		{"bad kind", func(i *Image) { i.Kind = 0 }},
		{"bad export", func(i *Image) { i.Exports["x"] = 1 << 30 }},
		{"reloc in text", func(i *Image) { i.Relocs = []Reloc{{Offset: 0}} }},
		{"reloc past data", func(i *Image) { i.Relocs = []Reloc{{Offset: i.DataStart() + 60}} }},
		{"scope inverted", func(i *Image) { i.Scopes[0].Begin, i.Scopes[0].End = 8, 1 }},
		{"scope filter out of range", func(i *Image) { i.Scopes[0].Filter = 9999 }},
		{"scope target out of range", func(i *Image) { i.Scopes[0].Target = 9999 }},
		{"scope func out of range", func(i *Image) { i.Scopes[0].Func = 9999 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			img := testImage(t)
			tt.mutate(img)
			if err := img.Validate(); err == nil {
				t.Error("Validate accepted a broken image")
			}
		})
	}
}

func TestValidateEntryForExecutables(t *testing.T) {
	img := testImage(t)
	img.Kind = KindExecutable
	img.Entry = uint32(len(img.Text)) + 5
	if err := img.Validate(); err == nil {
		t.Error("entry outside text accepted")
	}
	img.Entry = 0
	if err := img.Validate(); err != nil {
		t.Errorf("valid executable rejected: %v", err)
	}
}

func TestScopeEntryHelpers(t *testing.T) {
	s := ScopeEntry{Begin: 10, End: 20, Filter: FilterCatchAll}
	if !s.Covers(10) || !s.Covers(19) || s.Covers(20) || s.Covers(9) {
		t.Error("Covers boundary behaviour wrong")
	}
	if !s.IsCatchAll() {
		t.Error("catch-all not detected")
	}
	if (ScopeEntry{Filter: 100}).IsCatchAll() {
		t.Error("offset filter misdetected as catch-all")
	}
}

func TestImportString(t *testing.T) {
	if got := (Import{Symbol: "VirtualQuery"}).String(); got != "api:VirtualQuery" {
		t.Errorf("got %q", got)
	}
	if got := (Import{Module: "ntdll.dll", Symbol: "f"}).String(); got != "ntdll.dll!f" {
		t.Errorf("got %q", got)
	}
}

func TestSymbolAt(t *testing.T) {
	img := testImage(t)
	s, ok := img.SymbolAt(5)
	if !ok || s.Name != "probe" {
		t.Errorf("SymbolAt(5) = %v %v, want probe", s, ok)
	}
	s, ok = img.SymbolAt(12)
	if !ok || s.Name != "filter" {
		t.Errorf("SymbolAt(12) = %v %v, want filter", s, ok)
	}
	if _, ok := img.SymbolAt(9999); ok {
		t.Error("SymbolAt out of range should miss")
	}
}

func TestLoad(t *testing.T) {
	img := testImage(t)
	as := mem.NewAddressSpace()
	alloc := mem.NewAllocator(as, 0x100000, 0x10000000, 7)
	mod, err := Load(as, alloc, img, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Text mapped r-x and content intact.
	perm, ok := as.PermAt(mod.Base)
	if !ok || perm != mem.PermRX {
		t.Errorf("text perm = %v %v, want r-x", perm, ok)
	}
	got, err := as.Read(mod.Base, uint64(len(img.Text)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img.Text) {
		t.Error("text content mismatch")
	}

	// Data mapped rw-.
	perm, ok = as.PermAt(mod.VA(img.DataStart()))
	if !ok || perm != mem.PermRW {
		t.Errorf("data perm = %v %v, want rw-", perm, ok)
	}

	// Reloc applied: data+8 holds base+0.
	v, err := as.ReadUint(mod.VA(img.DataStart()+8), 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != mod.Base {
		t.Errorf("reloc value = %#x, want %#x", v, mod.Base)
	}

	// Address helpers.
	if !mod.Contains(mod.Base) || mod.Contains(mod.Base+img.Span()) {
		t.Error("Contains boundary wrong")
	}
	if mod.OffsetOf(mod.VA(42)) != 42 {
		t.Error("VA/OffsetOf not inverse")
	}
}

func TestLoadResolvesImports(t *testing.T) {
	img := testImage(t)
	img.Imports = []Import{{Symbol: "NtProbe"}, {Module: "other.dll", Symbol: "fn"}}
	as := mem.NewAddressSpace()
	alloc := mem.NewAllocator(as, 0x100000, 0x10000000, 7)

	resolved := map[string]uint64{
		"api:NtProbe":  NativeImportBit | 33,
		"other.dll!fn": 0x123450,
	}
	mod, err := Load(as, alloc, img, func(imp Import) (uint64, error) {
		return resolved[imp.String()], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mod.ImportAddrs[0] != (NativeImportBit|33) || mod.ImportAddrs[1] != 0x123450 {
		t.Errorf("ImportAddrs = %#x", mod.ImportAddrs)
	}

	if _, err := Load(as, alloc, img, nil); err == nil {
		t.Error("load with imports but nil resolver should fail")
	}
}

func TestScopesAtOrdersInnermostFirst(t *testing.T) {
	img := testImage(t)
	img.Scopes = []ScopeEntry{
		{Func: 0, Begin: 0, End: 8, Filter: FilterCatchAll, Target: 8}, // outer
		{Func: 0, Begin: 1, End: 8, Filter: 9, Target: 8},              // inner
	}
	as := mem.NewAddressSpace()
	alloc := mem.NewAllocator(as, 0x100000, 0x10000000, 7)
	mod, err := Load(as, alloc, img, nil)
	if err != nil {
		t.Fatal(err)
	}
	scopes := mod.ScopesAt(mod.VA(2))
	if len(scopes) != 2 || scopes[0].Filter != 9 {
		t.Errorf("ScopesAt = %+v, want inner (filter 9) first", scopes)
	}
	if got := mod.ScopesAt(mod.VA(8)); got != nil {
		t.Errorf("ScopesAt outside guarded range = %+v", got)
	}
	if got := mod.ScopesAt(0x1); got != nil {
		t.Errorf("ScopesAt outside module = %+v", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	img := testImage(t)
	img.Imports = []Import{{Symbol: "read"}, {Module: "libc.dll", Symbol: "helper"}}

	blob, err := Marshal(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, img) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, img)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	img := testImage(t)
	a, err := Marshal(img)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(img)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Marshal not deterministic")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	tests := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("CRX1"),
		append([]byte("CRX1"), 0xFF, 0xFF, 0xFF, 0x7F), // absurd name length
	}
	for i, give := range tests {
		if _, err := Unmarshal(give); err == nil {
			t.Errorf("case %d: Unmarshal accepted garbage", i)
		}
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	blob, err := Marshal(testImage(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{5, len(blob) / 2, len(blob) - 1} {
		if _, err := Unmarshal(blob[:cut]); err == nil {
			t.Errorf("Unmarshal of %d/%d bytes should fail", cut, len(blob))
		}
	}
}

func TestKindString(t *testing.T) {
	if KindExecutable.String() != "exe" || KindLibrary.String() != "dll" || Kind(9).String() != "kind?" {
		t.Error("Kind.String wrong")
	}
}
