package bin

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// crxMagic identifies a serialized CRX image.
var crxMagic = [4]byte{'C', 'R', 'X', '1'}

// Marshal serializes the image to the CRX wire format. The format is a
// simple tagged little-endian layout; it exists so images can be written to
// disk by cmd/crasm and inspected or diffed.
func Marshal(img *Image) ([]byte, error) {
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("marshal: %w", err)
	}
	var b bytes.Buffer
	b.Write(crxMagic[:])
	writeString(&b, img.Name)
	b.WriteByte(byte(img.Kind))
	writeU32(&b, img.Entry)
	writeBytes(&b, img.Text)
	writeBytes(&b, img.Data)
	writeU32(&b, img.BSSSize)

	writeU32(&b, uint32(len(img.Imports)))
	for _, imp := range img.Imports {
		writeString(&b, imp.Module)
		writeString(&b, imp.Symbol)
	}

	// Exports are sorted for deterministic output.
	names := make([]string, 0, len(img.Exports))
	for n := range img.Exports {
		names = append(names, n)
	}
	sort.Strings(names)
	writeU32(&b, uint32(len(names)))
	for _, n := range names {
		writeString(&b, n)
		writeU32(&b, img.Exports[n])
	}

	writeU32(&b, uint32(len(img.Symbols)))
	for _, s := range img.Symbols {
		writeString(&b, s.Name)
		writeU32(&b, s.Offset)
		writeU32(&b, s.Size)
	}

	writeU32(&b, uint32(len(img.Relocs)))
	for _, r := range img.Relocs {
		writeU32(&b, r.Offset)
		writeU32(&b, r.Target)
	}

	writeU32(&b, uint32(len(img.Scopes)))
	for _, s := range img.Scopes {
		writeU32(&b, s.Func)
		writeU32(&b, s.Begin)
		writeU32(&b, s.End)
		writeU32(&b, s.Filter)
		writeU32(&b, s.Target)
	}
	return b.Bytes(), nil
}

// Unmarshal parses a serialized CRX image.
func Unmarshal(data []byte) (*Image, error) {
	r := &reader{data: data}
	var magic [4]byte
	r.read(magic[:])
	if magic != crxMagic {
		return nil, fmt.Errorf("unmarshal: bad magic %q", magic[:])
	}
	img := &Image{
		Name: r.str(),
		Kind: Kind(r.u8()),
	}
	img.Entry = r.u32()
	img.Text = r.bytes()
	img.Data = r.bytes()
	img.BSSSize = r.u32()

	nImp := r.u32()
	if err := r.checkCount(nImp, 2); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nImp; i++ {
		img.Imports = append(img.Imports, Import{Module: r.str(), Symbol: r.str()})
	}

	nExp := r.u32()
	if err := r.checkCount(nExp, 5); err != nil {
		return nil, err
	}
	if nExp > 0 {
		img.Exports = make(map[string]uint32, nExp)
	}
	for i := uint32(0); i < nExp; i++ {
		name := r.str()
		img.Exports[name] = r.u32()
	}

	nSym := r.u32()
	if err := r.checkCount(nSym, 9); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nSym; i++ {
		img.Symbols = append(img.Symbols, Symbol{Name: r.str(), Offset: r.u32(), Size: r.u32()})
	}

	nRel := r.u32()
	if err := r.checkCount(nRel, 8); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nRel; i++ {
		img.Relocs = append(img.Relocs, Reloc{Offset: r.u32(), Target: r.u32()})
	}

	nScope := r.u32()
	if err := r.checkCount(nScope, 20); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nScope; i++ {
		img.Scopes = append(img.Scopes, ScopeEntry{
			Func: r.u32(), Begin: r.u32(), End: r.u32(), Filter: r.u32(), Target: r.u32(),
		})
	}
	if r.err != nil {
		return nil, fmt.Errorf("unmarshal: %w", r.err)
	}
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("unmarshal: %w", err)
	}
	return img, nil
}

func writeU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func writeBytes(b *bytes.Buffer, data []byte) {
	writeU32(b, uint32(len(data)))
	b.Write(data)
}

func writeString(b *bytes.Buffer, s string) { writeBytes(b, []byte(s)) }

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) read(dst []byte) {
	if r.err != nil {
		return
	}
	if r.off+len(dst) > len(r.data) {
		r.err = fmt.Errorf("truncated at offset %d", r.off)
		return
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
}

func (r *reader) u8() uint8 {
	var b [1]byte
	r.read(b[:])
	return b[0]
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if r.off+int(n) > len(r.data) {
		r.err = fmt.Errorf("truncated byte field at offset %d (want %d)", r.off, n)
		return nil
	}
	out := make([]byte, n)
	r.read(out)
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

// checkCount guards against hostile length fields that would allocate more
// elements than the remaining input could possibly encode (minSize bytes
// each).
func (r *reader) checkCount(n uint32, minSize int) error {
	if r.err != nil {
		return r.err
	}
	if int64(n)*int64(minSize) > int64(len(r.data)-r.off) {
		r.err = fmt.Errorf("count %d exceeds remaining input at offset %d", n, r.off)
		return r.err
	}
	return nil
}
