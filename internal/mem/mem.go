// Package mem implements the paged virtual address space used by simulated
// processes: 4 KiB pages, per-page R/W/X permissions, precise fault reporting,
// and a seeded ASLR allocator.
//
// Faults are ordinary error values (*Fault) rather than panics, so the VM,
// the simulated kernel and analysis tooling can all distinguish "the access
// hit unmapped memory" from "the access hit mapped memory with the wrong
// permission" — a distinction the paper's mapped-only exception policy
// (§VII-C) depends on.
package mem

import (
	"fmt"
	"math/rand"
	"sort"
)

// PageSize is the granularity of mappings and permissions.
const PageSize = 4096

// Perm is a page permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec

	PermRW  = PermRead | PermWrite
	PermRX  = PermRead | PermExec
	PermRWX = PermRead | PermWrite | PermExec
)

// String renders the permission like "r-x".
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Access describes the kind of memory access that faulted.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota + 1
	AccessWrite
	AccessExec
)

// String returns "read", "write" or "exec".
func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return "access?"
	}
}

func (a Access) perm() Perm {
	switch a {
	case AccessRead:
		return PermRead
	case AccessWrite:
		return PermWrite
	case AccessExec:
		return PermExec
	default:
		return 0
	}
}

// Fault reports a failed memory access. Unmapped distinguishes an access to
// memory with no mapping at all from one that violated permissions on a
// mapped page.
type Fault struct {
	Addr     uint64
	Access   Access
	Unmapped bool
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "protection"
	if f.Unmapped {
		kind = "unmapped"
	}
	return fmt.Sprintf("%s fault: %s at %#x", kind, f.Access, f.Addr)
}

type page struct {
	data [PageSize]byte
	perm Perm
}

// AddressSpace is a sparse 64-bit paged address space. It is not safe for
// concurrent use; the VM serializes all accesses.
type AddressSpace struct {
	pages map[uint64]*page // keyed by addr >> 12
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[uint64]*page)}
}

// Map creates pages covering [addr, addr+length) with the given permission.
// addr and length must be page aligned and the range must not overlap an
// existing mapping.
func (as *AddressSpace) Map(addr, length uint64, perm Perm) error {
	if addr%PageSize != 0 || length%PageSize != 0 {
		return fmt.Errorf("map %#x+%#x: not page aligned", addr, length)
	}
	if length == 0 {
		return fmt.Errorf("map %#x: zero length", addr)
	}
	first, n := addr/PageSize, length/PageSize
	for i := uint64(0); i < n; i++ {
		if _, ok := as.pages[first+i]; ok {
			return fmt.Errorf("map %#x+%#x: overlaps existing page %#x", addr, length, (first+i)*PageSize)
		}
	}
	for i := uint64(0); i < n; i++ {
		as.pages[first+i] = &page{perm: perm}
	}
	return nil
}

// Unmap removes the pages covering [addr, addr+length). Unmapping holes is
// not an error, mirroring munmap semantics.
func (as *AddressSpace) Unmap(addr, length uint64) error {
	if addr%PageSize != 0 || length%PageSize != 0 {
		return fmt.Errorf("unmap %#x+%#x: not page aligned", addr, length)
	}
	first, n := addr/PageSize, length/PageSize
	for i := uint64(0); i < n; i++ {
		delete(as.pages, first+i)
	}
	return nil
}

// Protect changes the permission of all pages in [addr, addr+length). Every
// page in the range must be mapped.
func (as *AddressSpace) Protect(addr, length uint64, perm Perm) error {
	if addr%PageSize != 0 || length%PageSize != 0 {
		return fmt.Errorf("protect %#x+%#x: not page aligned", addr, length)
	}
	first, n := addr/PageSize, length/PageSize
	for i := uint64(0); i < n; i++ {
		if _, ok := as.pages[first+i]; !ok {
			return &Fault{Addr: (first + i) * PageSize, Access: AccessWrite, Unmapped: true}
		}
	}
	for i := uint64(0); i < n; i++ {
		as.pages[first+i].perm = perm
	}
	return nil
}

// Mapped reports whether addr lies on a mapped page.
func (as *AddressSpace) Mapped(addr uint64) bool {
	_, ok := as.pages[addr/PageSize]
	return ok
}

// PermAt returns the permission of the page containing addr, and whether the
// page is mapped.
func (as *AddressSpace) PermAt(addr uint64) (Perm, bool) {
	p, ok := as.pages[addr/PageSize]
	if !ok {
		return 0, false
	}
	return p.perm, true
}

// Check verifies that the whole range [addr, addr+length) is mapped with the
// permission needed for the given access, without transferring data. A nil
// return guarantees Read/Write on the same range cannot fault.
func (as *AddressSpace) Check(addr, length uint64, access Access) error {
	if length == 0 {
		return nil
	}
	need := access.perm()
	end := addr + length - 1
	if end < addr { // wrap-around
		return &Fault{Addr: addr, Access: access, Unmapped: true}
	}
	for pg := addr / PageSize; pg <= end/PageSize; pg++ {
		p, ok := as.pages[pg]
		if !ok {
			return &Fault{Addr: maxU64(pg*PageSize, addr), Access: access, Unmapped: true}
		}
		if p.perm&need == 0 {
			return &Fault{Addr: maxU64(pg*PageSize, addr), Access: access}
		}
	}
	return nil
}

// Read copies length bytes starting at addr into a fresh slice, checking
// read permission.
func (as *AddressSpace) Read(addr, length uint64) ([]byte, error) {
	if err := as.Check(addr, length, AccessRead); err != nil {
		return nil, err
	}
	out := make([]byte, length)
	as.copyOut(addr, out)
	return out, nil
}

// ReadInto fills buf from memory starting at addr, checking read permission.
func (as *AddressSpace) ReadInto(addr uint64, buf []byte) error {
	if err := as.Check(addr, uint64(len(buf)), AccessRead); err != nil {
		return err
	}
	as.copyOut(addr, buf)
	return nil
}

// Write copies data into memory at addr, checking write permission.
func (as *AddressSpace) Write(addr uint64, data []byte) error {
	if err := as.Check(addr, uint64(len(data)), AccessWrite); err != nil {
		return err
	}
	as.copyIn(addr, data)
	return nil
}

// WriteForce copies data into memory at addr ignoring write permission, but
// still requiring the pages to be mapped. Loaders and attacker corruption
// primitives use this.
func (as *AddressSpace) WriteForce(addr uint64, data []byte) error {
	length := uint64(len(data))
	if length == 0 {
		return nil
	}
	end := addr + length - 1
	for pg := addr / PageSize; pg <= end/PageSize; pg++ {
		if _, ok := as.pages[pg]; !ok {
			return &Fault{Addr: pg * PageSize, Access: AccessWrite, Unmapped: true}
		}
	}
	as.copyIn(addr, data)
	return nil
}

// ReadUint reads a little-endian unsigned integer of the given byte width.
func (as *AddressSpace) ReadUint(addr uint64, size int) (uint64, error) {
	var buf [8]byte
	if err := as.ReadInto(addr, buf[:size]); err != nil {
		return 0, err
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v, nil
}

// WriteUint writes a little-endian unsigned integer of the given byte width.
func (as *AddressSpace) WriteUint(addr uint64, size int, v uint64) error {
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return as.Write(addr, buf[:size])
}

// FetchExec reads up to max bytes of executable memory at addr for
// instruction decoding. It returns however many contiguous executable bytes
// are available (at least 1), or a fault if addr itself is not executable.
func (as *AddressSpace) FetchExec(addr uint64, max int, buf []byte) ([]byte, error) {
	if max <= 0 {
		return nil, nil
	}
	p, ok := as.pages[addr/PageSize]
	if !ok {
		return nil, &Fault{Addr: addr, Access: AccessExec, Unmapped: true}
	}
	if p.perm&PermExec == 0 {
		return nil, &Fault{Addr: addr, Access: AccessExec}
	}
	buf = buf[:0]
	for len(buf) < max {
		p, ok := as.pages[addr/PageSize]
		if !ok || p.perm&PermExec == 0 {
			break
		}
		off := addr % PageSize
		take := PageSize - off
		if int(take) > max-len(buf) {
			take = uint64(max - len(buf))
		}
		buf = append(buf, p.data[off:off+take]...)
		addr += take
	}
	return buf, nil
}

// Regions returns the mapped regions as sorted (addr, length, perm) triples,
// coalescing adjacent pages with identical permissions.
func (as *AddressSpace) Regions() []Region {
	if len(as.pages) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(as.pages))
	for k := range as.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var out []Region
	cur := Region{Addr: keys[0] * PageSize, Length: PageSize, Perm: as.pages[keys[0]].perm}
	for _, k := range keys[1:] {
		p := as.pages[k]
		if k*PageSize == cur.Addr+cur.Length && p.perm == cur.Perm {
			cur.Length += PageSize
			continue
		}
		out = append(out, cur)
		cur = Region{Addr: k * PageSize, Length: PageSize, Perm: p.perm}
	}
	return append(out, cur)
}

// Region is a coalesced run of identically-permissioned pages.
type Region struct {
	Addr   uint64
	Length uint64
	Perm   Perm
}

// String renders the region like "[0x1000, 0x3000) rw-".
func (r Region) String() string {
	return fmt.Sprintf("[%#x, %#x) %s", r.Addr, r.Addr+r.Length, r.Perm)
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Addr && addr < r.Addr+r.Length
}

func (as *AddressSpace) copyOut(addr uint64, buf []byte) {
	for len(buf) > 0 {
		p := as.pages[addr/PageSize]
		off := addr % PageSize
		n := copy(buf, p.data[off:])
		buf = buf[n:]
		addr += uint64(n)
	}
}

func (as *AddressSpace) copyIn(addr uint64, data []byte) {
	for len(data) > 0 {
		p := as.pages[addr/PageSize]
		off := addr % PageSize
		n := copy(p.data[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Allocator hands out randomized page-aligned base addresses inside a fixed
// arena, modelling ASLR. It is deterministic for a given seed, so every
// experiment in this repository is reproducible.
type Allocator struct {
	rng  *rand.Rand
	as   *AddressSpace
	low  uint64
	high uint64
}

// NewAllocator creates an allocator placing mappings inside [low, high) of
// the given address space. low and high must be page aligned.
func NewAllocator(as *AddressSpace, low, high uint64, seed int64) *Allocator {
	return &Allocator{
		rng:  rand.New(rand.NewSource(seed)),
		as:   as,
		low:  low,
		high: high,
	}
}

// Alloc maps length bytes (rounded up to pages) at a randomized address and
// returns the base. It retries until it finds a free slot.
func (a *Allocator) Alloc(length uint64, perm Perm) (uint64, error) {
	length = RoundUp(length)
	if length == 0 {
		length = PageSize
	}
	span := (a.high - a.low - length) / PageSize
	if a.high-a.low < length || span == 0 {
		return 0, fmt.Errorf("alloc %#x: arena [%#x,%#x) too small", length, a.low, a.high)
	}
	const maxTries = 4096
	for try := 0; try < maxTries; try++ {
		base := a.low + uint64(a.rng.Int63n(int64(span)))*PageSize
		if err := a.as.Map(base, length, perm); err == nil {
			return base, nil
		}
	}
	return 0, fmt.Errorf("alloc %#x: no free slot after retries", length)
}

// RoundUp rounds n up to a multiple of PageSize.
func RoundUp(n uint64) uint64 {
	return (n + PageSize - 1) &^ uint64(PageSize-1)
}
