package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestPermString(t *testing.T) {
	tests := []struct {
		give Perm
		want string
	}{
		{0, "---"},
		{PermRead, "r--"},
		{PermRW, "rw-"},
		{PermRX, "r-x"},
		{PermRWX, "rwx"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Perm(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestMapAndReadWrite(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	data := []byte("hello crash resistance")
	if err := as.Write(0x1100, data); err != nil {
		t.Fatal(err)
	}
	got, err := as.Read(0x1100, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("Read = %q, want %q", got, data)
	}
}

func TestReadWriteSpansPages(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 100)
	addr := uint64(0x1000 + PageSize - 50)
	if err := as.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got, err := as.Read(addr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page read mismatch")
	}
}

func TestMapRejectsUnaligned(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1001, PageSize, PermRW); err == nil {
		t.Error("unaligned addr should fail")
	}
	if err := as.Map(0x1000, 100, PermRW); err == nil {
		t.Error("unaligned length should fail")
	}
	if err := as.Map(0x1000, 0, PermRW); err == nil {
		t.Error("zero length should fail")
	}
}

func TestMapRejectsOverlap(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x1000+PageSize, PageSize, PermRead); err == nil {
		t.Error("overlapping map should fail")
	}
	// The failed map must not have created any partial mapping beyond it.
	if as.Mapped(0x1000 + 2*PageSize) {
		t.Error("failed map leaked pages")
	}
}

func TestUnmap(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, 2*PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if as.Mapped(0x1000) {
		t.Error("page still mapped after unmap")
	}
	if !as.Mapped(0x1000 + PageSize) {
		t.Error("second page should remain mapped")
	}
	var f *Fault
	if _, err := as.Read(0x1000, 1); !errors.As(err, &f) || !f.Unmapped {
		t.Errorf("read of unmapped page: err = %v, want unmapped fault", err)
	}
}

func TestProtect(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Protect(0x1000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(0x1000, []byte{1}); err == nil {
		t.Error("write to read-only page should fault")
	}
	if _, err := as.Read(0x1000, 1); err != nil {
		t.Errorf("read of read-only page failed: %v", err)
	}
	if err := as.Protect(0x8000, PageSize, PermRead); err == nil {
		t.Error("protect of unmapped page should fail")
	}
}

func TestFaultDetails(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}

	var f *Fault
	err := as.Write(0x1004, []byte{1})
	if !errors.As(err, &f) {
		t.Fatalf("want *Fault, got %v", err)
	}
	if f.Unmapped {
		t.Error("permission fault misreported as unmapped")
	}
	if f.Access != AccessWrite {
		t.Errorf("Access = %v, want write", f.Access)
	}
	if f.Addr != 0x1004 {
		t.Errorf("Addr = %#x, want 0x1004", f.Addr)
	}

	err = as.Check(0x1000, 2*PageSize, AccessRead)
	if !errors.As(err, &f) {
		t.Fatalf("want *Fault, got %v", err)
	}
	if !f.Unmapped || f.Addr != 0x1000+PageSize {
		t.Errorf("fault = %+v, want unmapped at second page", f)
	}
}

func TestCheckWrapAround(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Check(^uint64(0)-1, 10, AccessRead); err == nil {
		t.Error("wrap-around range should fault")
	}
}

func TestWriteForce(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, PageSize, PermRX); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteForce(0x1000, []byte{0xCC}); err != nil {
		t.Errorf("WriteForce to r-x page failed: %v", err)
	}
	if err := as.WriteForce(0x9000, []byte{0xCC}); err == nil {
		t.Error("WriteForce to unmapped page should fail")
	}
}

func TestReadWriteUint(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 2, 4, 8} {
		want := uint64(0x1122334455667788) & (^uint64(0) >> (64 - 8*size))
		if err := as.WriteUint(0x1000, size, want); err != nil {
			t.Fatal(err)
		}
		got, err := as.ReadUint(0x1000, size)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("size %d: got %#x, want %#x", size, got, want)
		}
	}
	// Verify little-endian layout.
	if err := as.WriteUint(0x1000, 4, 0x01020304); err != nil {
		t.Fatal(err)
	}
	raw, err := as.Read(0x1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, []byte{4, 3, 2, 1}) {
		t.Errorf("layout = %v, want little endian", raw)
	}
}

func TestFetchExec(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, PageSize, PermRX); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteForce(0x1000+PageSize-2, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	// Fetch that runs off the end of executable memory returns what exists.
	buf, err := as.FetchExec(0x1000+PageSize-2, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0xAA, 0xBB}) {
		t.Errorf("FetchExec = %v", buf)
	}
	// Fetch from non-exec page faults.
	if err := as.Map(0x10000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	var f *Fault
	if _, err := as.FetchExec(0x10000, 4, nil); !errors.As(err, &f) || f.Access != AccessExec {
		t.Errorf("FetchExec on rw- page: err = %v, want exec fault", err)
	}
	if _, err := as.FetchExec(0x99000, 4, nil); !errors.As(err, &f) || !f.Unmapped {
		t.Errorf("FetchExec on unmapped: err = %v, want unmapped exec fault", err)
	}
}

func TestRegions(t *testing.T) {
	as := NewAddressSpace()
	for _, m := range []struct {
		addr uint64
		n    uint64
		perm Perm
	}{
		{0x1000, 2 * PageSize, PermRW},
		{0x3000, PageSize, PermRW},  // adjacent, same perm: coalesces with prior
		{0x4000, PageSize, PermRX},  // adjacent, different perm
		{0x10000, PageSize, PermRW}, // hole before this
	} {
		if err := as.Map(m.addr, m.n, m.perm); err != nil {
			t.Fatal(err)
		}
	}
	regions := as.Regions()
	want := []Region{
		{Addr: 0x1000, Length: 3 * PageSize, Perm: PermRW},
		{Addr: 0x4000, Length: PageSize, Perm: PermRX},
		{Addr: 0x10000, Length: PageSize, Perm: PermRW},
	}
	if len(regions) != len(want) {
		t.Fatalf("Regions = %v, want %v", regions, want)
	}
	for i := range want {
		if regions[i] != want[i] {
			t.Errorf("region %d = %v, want %v", i, regions[i], want[i])
		}
	}
	if !regions[0].Contains(0x1000) || regions[0].Contains(0x4000) {
		t.Error("Contains misbehaves")
	}
}

func TestRegionsEmpty(t *testing.T) {
	if got := NewAddressSpace().Regions(); got != nil {
		t.Errorf("Regions of empty space = %v, want nil", got)
	}
}

func TestAllocatorDeterministic(t *testing.T) {
	bases1 := allocN(t, 42, 5)
	bases2 := allocN(t, 42, 5)
	for i := range bases1 {
		if bases1[i] != bases2[i] {
			t.Fatalf("same seed produced different layout: %v vs %v", bases1, bases2)
		}
	}
	bases3 := allocN(t, 43, 5)
	same := true
	for i := range bases1 {
		if bases1[i] != bases3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical layout (suspicious)")
	}
}

func allocN(t *testing.T, seed int64, n int) []uint64 {
	t.Helper()
	as := NewAddressSpace()
	alloc := NewAllocator(as, 0x10000, 0x10000000, seed)
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		base, err := alloc.Alloc(3*PageSize, PermRW)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, base)
	}
	return out
}

func TestAllocatorExhaustion(t *testing.T) {
	as := NewAddressSpace()
	alloc := NewAllocator(as, 0x1000, 0x3000, 1)
	if _, err := alloc.Alloc(16*PageSize, PermRW); err == nil {
		t.Error("oversized alloc should fail")
	}
}

func TestRoundUp(t *testing.T) {
	tests := []struct{ give, want uint64 }{
		{0, 0},
		{1, PageSize},
		{PageSize, PageSize},
		{PageSize + 1, 2 * PageSize},
	}
	for _, tt := range tests {
		if got := RoundUp(tt.give); got != tt.want {
			t.Errorf("RoundUp(%d) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

// TestQuickWriteRead property-tests that any successful write is read back
// identically at arbitrary offsets and lengths.
func TestQuickWriteRead(t *testing.T) {
	as := NewAddressSpace()
	const base, span = 0x100000, 16 * PageSize
	if err := as.Map(base, span, PermRW); err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := base + uint64(off)%(span-uint64(len(data)%span))
		if addr+uint64(len(data)) > base+span {
			return true // out of arena; skip
		}
		if err := as.Write(addr, data); err != nil {
			return false
		}
		got, err := as.Read(addr, uint64(len(data)))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCheckConsistency property-tests that Check agreeing implies
// Read/Write succeed and Check failing implies they fail identically.
func TestQuickCheckConsistency(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, PageSize, PermRead); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x3000, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	f := func(addrRaw uint16, lenRaw uint8) bool {
		addr := uint64(addrRaw) << 4
		length := uint64(lenRaw)
		checkErr := as.Check(addr, length, AccessRead)
		_, readErr := as.Read(addr, length)
		return (checkErr == nil) == (readErr == nil)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
