package service

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"crashresist"
	"crashresist/internal/metrics"
)

// Runner executes one resolved analysis request. The default is
// crashresist.Run; tests substitute controllable runners to exercise the
// queue without paying for real analyses.
type Runner func(ctx context.Context, req crashresist.Request) (*crashresist.Result, error)

// Config tunes a Service. Zero values select the documented defaults.
type Config struct {
	// Budget is the worker-token pool shared by all concurrent runs: a
	// job occupies max(1, min(request workers, Budget)) tokens while
	// running, so the service never oversubscribes the machine no matter
	// how many tenants submit at once. Default max(4, GOMAXPROCS).
	Budget int
	// MaxQueue bounds the total queued (not yet running) jobs across all
	// tenants; submissions beyond it are rejected with ErrQueueFull
	// (HTTP 429). Default 256.
	MaxQueue int
	// Retain bounds the completed-job retention ring; finishing a job
	// past the bound evicts the oldest completed job (its ID becomes 404).
	// Default 1024.
	Retain int
	// EventBuffer bounds each job's StageEvent replay buffer served to
	// late SSE subscribers; further events are counted, not stored.
	// Default 256.
	EventBuffer int
	// Cache, when set, is attached to every job that carries no cache of
	// its own, so all tenants share one warm content-addressed store.
	Cache *crashresist.AnalysisCache
	// AllowCacheDir permits submissions to name a server-side cache_dir.
	// Off by default: the service manages caching, and accepting paths
	// from the wire would let tenants open arbitrary directories.
	AllowCacheDir bool
	// Registry, when set, receives every run's RunStats (the /metrics
	// Prometheus families and /trace.json ring).
	Registry *metrics.Registry
	// Runner overrides the analysis executor (tests). Default
	// crashresist.Run.
	Runner Runner
	// RecordDispatch retains the scheduler's dispatch log for fairness
	// assertions (tests); see DispatchLog.
	RecordDispatch bool
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = max(4, runtime.GOMAXPROCS(0))
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.Retain <= 0 {
		c.Retain = 1024
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.Runner == nil {
		c.Runner = crashresist.Run
	}
	return c
}

// Dispatch is one scheduler decision, recorded when Config.RecordDispatch
// is on: which tenant's job started, and which tenants had jobs queued at
// that moment (chosen tenant included). Fairness tests replay the log.
type Dispatch struct {
	Tenant string
	JobID  string
	// Pending lists the tenants with at least one queued job at pick
	// time, sorted.
	Pending []string
}

// job is the service-internal record behind one JobView.
type job struct {
	id      string
	tenant  string
	req     crashresist.Request
	workers int // effective budget tokens

	// Guarded by Service.mu.
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	result    json.RawMessage

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// Event replay buffer and live subscribers, guarded by evMu (events
	// arrive from analysis worker goroutines while Service.mu is busy
	// elsewhere).
	evMu      sync.Mutex
	events    []metrics.StageEvent
	evDropped int
	evCap     int
	subs      map[chan metrics.StageEvent]struct{}
	evClosed  bool
}

// onEvent is the job's WithProgress callback: append to the bounded
// replay buffer and fan out to live subscribers (dropping per-subscriber
// when a client cannot keep up).
func (j *job) onEvent(ev metrics.StageEvent) {
	j.evMu.Lock()
	defer j.evMu.Unlock()
	if j.evClosed {
		return
	}
	if len(j.events) < j.evCap {
		j.events = append(j.events, ev)
	} else {
		j.evDropped++
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the pipeline
		}
	}
}

// closeEvents ends the event stream, closing every subscriber channel.
func (j *job) closeEvents() {
	j.evMu.Lock()
	defer j.evMu.Unlock()
	if j.evClosed {
		return
	}
	j.evClosed = true
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// subscribe returns the replay buffer and, for unfinished jobs, a live
// channel closed when the job ends.
func (j *job) subscribe() (replay []metrics.StageEvent, live chan metrics.StageEvent) {
	j.evMu.Lock()
	defer j.evMu.Unlock()
	replay = append([]metrics.StageEvent(nil), j.events...)
	if j.evClosed {
		return replay, nil
	}
	live = make(chan metrics.StageEvent, 64)
	if j.subs == nil {
		j.subs = make(map[chan metrics.StageEvent]struct{})
	}
	j.subs[live] = struct{}{}
	return replay, live
}

// unsubscribe detaches a live channel (client went away first).
func (j *job) unsubscribe(ch chan metrics.StageEvent) {
	j.evMu.Lock()
	defer j.evMu.Unlock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
}

// Service is the multi-tenant discovery job service. Construct with New,
// serve its Handler, and Close it to cancel running jobs and stop the
// scheduler.
type Service struct {
	cfg Config

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool

	jobs    map[string]*job
	queues  map[string][]*job // per-tenant FIFO
	rr      []string          // tenants with queued jobs, service order
	rrPos   int               // next tenant to serve
	queued  int
	running int
	tokens  int
	seq     uint64
	retired *metrics.Ring[*job] // terminal jobs, oldest evicted to 404

	dispatches []Dispatch

	met *svcMetrics

	wg sync.WaitGroup
}

// New starts a service: the scheduler goroutine runs until Close.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	if cfg.Registry != nil && cfg.Registry.Profile() == nil {
		// The registry's /profile endpoint serves the merge of every
		// completed job's exact-cost profile.
		cfg.Registry.SetProfile(crashresist.NewProfile())
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       make(map[string]*job),
		queues:     make(map[string][]*job),
		tokens:     cfg.Budget,
		retired:    metrics.NewRing[*job](cfg.Retain),
		met:        newSvcMetrics(),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.dispatchLoop()
	return s
}

// Budget returns the configured worker-token pool size.
func (s *Service) Budget() int { return s.cfg.Budget }

// Submit validates and enqueues one job, returning its queued view.
// ErrQueueFull signals backpressure; ErrBadRequest an invalid spec.
func (s *Service) Submit(spec JobSpec) (JobView, error) {
	if spec.Schema != "" && spec.Schema != Schema {
		return JobView{}, fmt.Errorf("%w: unsupported schema %q (want %q)", ErrBadRequest, spec.Schema, Schema)
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	req := spec.Request
	if req.CacheDir != "" && !s.cfg.AllowCacheDir {
		return JobView{}, fmt.Errorf("%w: cache_dir is not accepted here; the service manages caching", ErrBadRequest)
	}
	if err := req.Validate(); err != nil {
		return JobView{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if req.Cache == nil && req.CacheDir == "" {
		req.Cache = s.cfg.Cache
	}
	if s.cfg.Registry != nil {
		req.Sinks = append(req.Sinks, s.cfg.Registry)
		// Every run charges into a per-job profile, merged into the
		// registry's service-wide profile on completion (served at
		// /profile). Jobs submitting "profile": true additionally get
		// the per-job snapshot embedded in their Result.
		if req.Profile == nil {
			req.Profile = crashresist.NewProfile()
		}
	}

	workers := req.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > s.cfg.Budget {
		workers = s.cfg.Budget
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobView{}, ErrClosed
	}
	if s.queued >= s.cfg.MaxQueue {
		s.met.rejected(tenant)
		return JobView{}, fmt.Errorf("%w: %d job(s) queued (bound %d)", ErrQueueFull, s.queued, s.cfg.MaxQueue)
	}
	s.seq++
	jctx, jcancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:        fmt.Sprintf("j%08d", s.seq),
		tenant:    tenant,
		req:       req,
		workers:   workers,
		state:     StateQueued,
		submitted: time.Now(),
		ctx:       jctx,
		cancel:    jcancel,
		done:      make(chan struct{}),
		evCap:     s.cfg.EventBuffer,
	}
	j.req.Progress = j.onEvent
	s.jobs[j.id] = j
	if len(s.queues[tenant]) == 0 {
		s.enrollTenant(tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], j)
	s.queued++
	s.met.submitted(tenant)
	s.cond.Broadcast()
	return s.viewLocked(j, true), nil
}

// enrollTenant adds a tenant to the round-robin order, placed so it is
// served after every tenant currently awaiting service (join-at-tail: no
// queue-jumping ahead of waiters). Inserting just before the cursor and
// advancing it makes the newcomer the last stop of the current cycle.
func (s *Service) enrollTenant(tenant string) {
	if len(s.rr) == 0 || s.rrPos == 0 {
		s.rr = append(s.rr, tenant)
		return
	}
	s.rr = append(s.rr, "")
	copy(s.rr[s.rrPos+1:], s.rr[s.rrPos:])
	s.rr[s.rrPos] = tenant
	s.rrPos++
}

// dispatchLoop is the scheduler: strict per-tenant round-robin over the
// queued jobs, admitting the next job once its worker tokens are free.
// Head-of-line jobs too large for the remaining tokens wait (tokens
// always return, so progress is guaranteed); smaller jobs behind them are
// not reordered, keeping the fairness order exact.
func (s *Service) dispatchLoop() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var j *job
		for {
			if s.closed {
				return
			}
			j = s.peekLocked()
			if j != nil && j.workers <= s.tokens {
				break
			}
			s.cond.Wait()
		}
		s.popLocked(j)
		s.tokens -= j.workers
		s.running++
		j.state = StateRunning
		j.started = time.Now()
		if s.cfg.RecordDispatch {
			s.dispatches = append(s.dispatches, Dispatch{
				Tenant:  j.tenant,
				JobID:   j.id,
				Pending: s.pendingTenantsLocked(j.tenant),
			})
		}
		s.wg.Add(1)
		go s.execute(j)
	}
}

// peekLocked returns the next job in round-robin order without removing
// it, or nil when nothing is queued.
func (s *Service) peekLocked() *job {
	for i := 0; i < len(s.rr); i++ {
		t := s.rr[(s.rrPos+i)%len(s.rr)]
		if q := s.queues[t]; len(q) > 0 {
			return q[0]
		}
	}
	return nil
}

// popLocked removes j (the current round-robin head) from its tenant
// queue and advances the cursor past that tenant.
func (s *Service) popLocked(j *job) {
	idx := -1
	for i, t := range s.rr {
		if t == j.tenant {
			idx = i
			break
		}
	}
	q := s.queues[j.tenant]
	q = q[1:]
	if len(q) == 0 {
		delete(s.queues, j.tenant)
		if idx >= 0 {
			s.rr = append(s.rr[:idx], s.rr[idx+1:]...)
			if len(s.rr) == 0 {
				s.rrPos = 0
			} else {
				if idx < s.rrPos {
					s.rrPos--
				}
				s.rrPos %= len(s.rr)
			}
		}
	} else {
		s.queues[j.tenant] = q
		if idx >= 0 {
			s.rrPos = (idx + 1) % len(s.rr)
		}
	}
	s.queued--
}

// removeQueuedLocked deletes a queued job from its tenant queue (cancel
// path; the job need not be the round-robin head).
func (s *Service) removeQueuedLocked(j *job) {
	q := s.queues[j.tenant]
	for i, qj := range q {
		if qj == j {
			q = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(s.queues, j.tenant)
		for i, t := range s.rr {
			if t == j.tenant {
				s.rr = append(s.rr[:i], s.rr[i+1:]...)
				if len(s.rr) == 0 {
					s.rrPos = 0
				} else {
					if i < s.rrPos {
						s.rrPos--
					}
					s.rrPos %= len(s.rr)
				}
				break
			}
		}
	} else {
		s.queues[j.tenant] = q
	}
	s.queued--
}

// pendingTenantsLocked lists tenants with queued jobs, plus the tenant
// just chosen, sorted — the fairness log's ground truth.
func (s *Service) pendingTenantsLocked(chosen string) []string {
	seen := map[string]bool{chosen: true}
	for t, q := range s.queues {
		if len(q) > 0 {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// execute runs one admitted job and finalizes it.
func (s *Service) execute(j *job) {
	defer s.wg.Done()
	res, err := s.cfg.Runner(j.ctx, j.req)
	if s.cfg.Registry != nil && j.req.Profile != nil {
		if p := s.cfg.Registry.Profile(); p != nil {
			p.Merge(j.req.Profile)
		}
	}
	var raw json.RawMessage
	if err == nil && res != nil {
		raw, err = json.Marshal(res)
	}

	s.mu.Lock()
	s.tokens += j.workers
	s.running--
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = raw
		s.met.completed(j.tenant)
	case j.ctx.Err() != nil:
		j.state = StateCanceled
		s.met.canceled(j.tenant)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.met.failed(j.tenant)
	}
	s.met.observe(j.tenant, j.started.Sub(j.submitted), j.finished.Sub(j.started))
	s.retireLocked(j)
	s.cond.Broadcast()
	s.mu.Unlock()

	j.closeEvents()
	close(j.done)
}

// retireLocked pushes a terminal job into the retention ring, evicting
// (and forgetting) the oldest retired job past the bound.
func (s *Service) retireLocked(j *job) {
	if old, ok := s.retired.Push(j); ok {
		delete(s.jobs, old.id)
	}
}

// Cancel cancels a job: queued jobs finalize immediately, running jobs
// have their context cancelled and finalize when the pipeline unwinds.
// The returned view reflects the state after the call; terminal jobs are
// returned unchanged (cancelling them is a no-op).
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		s.removeQueuedLocked(j)
		j.state = StateCanceled
		j.finished = time.Now()
		s.met.canceled(j.tenant)
		s.retireLocked(j)
		s.cond.Broadcast()
		view := s.viewLocked(j, true)
		s.mu.Unlock()
		j.cancel()
		j.closeEvents()
		close(j.done)
		return view, nil
	case StateRunning:
		view := s.viewLocked(j, true)
		s.mu.Unlock()
		j.cancel()
		return view, nil
	default:
		view := s.viewLocked(j, true)
		s.mu.Unlock()
		return view, nil
	}
}

// Get returns a job's full view (result included once done).
func (s *Service) Get(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return s.viewLocked(j, true), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done,
// returning the final view.
func (s *Service) Wait(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, ErrNotFound
	}
	select {
	case <-j.done:
		return s.Get(id)
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// List returns job summaries (no result payloads), newest first,
// optionally filtered by tenant and state.
func (s *Service) List(tenant string, state State) []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		if tenant != "" && j.tenant != tenant {
			continue
		}
		if state != "" && j.state != state {
			continue
		}
		out = append(out, s.viewLocked(j, false))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// DispatchLog returns the recorded scheduler decisions (RecordDispatch).
func (s *Service) DispatchLog() []Dispatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Dispatch(nil), s.dispatches...)
}

// Counts returns the current queued and running job totals.
func (s *Service) Counts() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.running
}

// viewLocked renders a job; withResult includes the result payload.
func (s *Service) viewLocked(j *job, withResult bool) JobView {
	v := JobView{
		Schema:      Schema,
		ID:          j.id,
		Tenant:      j.tenant,
		State:       j.state,
		Pipeline:    j.req.Pipeline,
		Target:      j.req.Target,
		Workers:     j.workers,
		SubmittedNS: j.submitted.UnixNano(),
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		v.StartedNS = j.started.UnixNano()
	}
	if !j.finished.IsZero() {
		v.FinishedNS = j.finished.UnixNano()
	}
	if withResult {
		v.Result = j.result
	}
	j.evMu.Lock()
	v.EventsDropped = j.evDropped
	j.evMu.Unlock()
	return v
}

// Close stops the scheduler, cancels queued and running jobs, and waits
// for in-flight runs to unwind. Safe to call more than once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	// Finalize everything still queued so waiters unblock.
	var drained []*job
	for _, q := range s.queues {
		drained = append(drained, q...)
	}
	s.queues = make(map[string][]*job)
	s.rr = nil
	s.rrPos = 0
	s.queued = 0
	for _, j := range drained {
		j.state = StateCanceled
		j.finished = time.Now()
		s.met.canceled(j.tenant)
		s.retireLocked(j)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	s.cancelBase()
	for _, j := range drained {
		j.closeEvents()
		close(j.done)
	}
	s.wg.Wait()
}
