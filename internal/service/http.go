package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// retryAfterSeconds is the backpressure hint sent with 429 responses.
const retryAfterSeconds = 1

// Handler returns the service's HTTP surface:
//
//	POST   /v1/jobs             submit a JobSpec, 202 + queued JobView
//	GET    /v1/jobs?tenant=&state=   list job summaries (no results)
//	GET    /v1/jobs/{id}        full JobView, result included once done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events SSE stream of the run's StageEvents
//	GET    /metrics             job families + the run registry's families
//
// Every other path falls through to the run registry's observability
// handler (/trace.json, /debug/vars, /debug/pprof, /healthz) when one is
// configured.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Registry != nil {
		mux.Handle("/", s.cfg.Registry.Handler())
	}
	return mux
}

// writeJSON renders v with the service's canonical JSON settings.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps a service error to its HTTP status and JSON envelope.
func writeError(w http.ResponseWriter, err error) {
	e := apiError{Schema: Schema, Error: err.Error()}
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds))
		e.RetryAfterSeconds = retryAfterSeconds
		writeJSON(w, http.StatusTooManyRequests, e)
	case errors.Is(err, ErrBadRequest):
		writeJSON(w, http.StatusBadRequest, e)
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, e)
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, e)
	default:
		writeJSON(w, http.StatusInternalServerError, e)
	}
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("%w: decode body: %v", ErrBadRequest, err))
		return
	}
	view, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	state := State(r.URL.Query().Get("state"))
	writeJSON(w, http.StatusOK, jobList{Schema: Schema, Jobs: s.List(tenant, state)})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleEvents streams a job's StageEvents as server-sent events: first
// the replay buffer, then live events until the job ends or the client
// disconnects. Each event is one `data: {...}` line carrying the
// StageEvent JSON; the stream ends with an `event: done` record naming
// the job's final state.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, ErrNotFound)
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev any) bool {
		raw, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", raw); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}

	replay, live := j.subscribe()
	for _, ev := range replay {
		if !writeEvent(ev) {
			if live != nil {
				j.unsubscribe(live)
			}
			return
		}
	}
	if live != nil {
		defer j.unsubscribe(live)
		for {
			select {
			case ev, open := <-live:
				if !open {
					live = nil
				} else if !writeEvent(ev) {
					return
				}
			case <-r.Context().Done():
				return
			}
			if live == nil {
				break
			}
		}
	}

	view, err := s.Get(j.id)
	final := string(view.State)
	if err != nil {
		final = string(StateDone) // evicted between close and read: it ended
	}
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", strings.TrimSpace(fmt.Sprintf("%q", final)))
	if canFlush {
		fl.Flush()
	}
}

// handleMetrics renders the job families followed by the run registry's
// families (counters, stage latencies, span stats) in one scrape.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writePrometheus(w)
	if s.cfg.Registry != nil {
		_ = s.cfg.Registry.WritePrometheus(w)
	}
}
