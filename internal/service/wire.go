// Package service is the discovery-as-a-service layer: a multi-tenant
// HTTP/JSON job API over the unified crashresist.Request/Run surface.
//
// Tenants POST a job (a schema-v1 Request plus a tenant name), receive a
// run ID, and follow the run through its lifecycle: GET the status and
// result, stream the pipeline's live StageEvents over SSE, or list a
// tenant's jobs. Behind the API sits a bounded queue with per-tenant
// round-robin fairness and explicit backpressure (429 + Retry-After when
// full), a worker-token budget shared by all concurrent runs, and a
// bounded retention ring for completed results. See DESIGN.md §11.
package service

import (
	"encoding/json"
	"errors"

	"crashresist"
)

// Schema is the job API's wire-format version, shared with every other
// JSON document the toolkit emits.
const Schema = crashresist.SchemaV1

// DefaultTenant is used when a submission names no tenant.
const DefaultTenant = "default"

// State is a job's lifecycle phase.
type State string

// Job states. Queued and running jobs hold or await budget; the three
// terminal states release it.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Typed errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submission once the queue holds MaxQueue
	// jobs; the HTTP layer answers 429 with a Retry-After hint.
	ErrQueueFull = errors.New("job queue full")
	// ErrBadRequest marks an invalid submission (unknown schema, bad
	// target, rejected cache_dir); the HTTP layer answers 400.
	ErrBadRequest = errors.New("bad job request")
	// ErrNotFound marks an unknown or already-evicted job ID.
	ErrNotFound = errors.New("job not found")
	// ErrClosed rejects submissions to a closed service.
	ErrClosed = errors.New("service closed")
)

// JobSpec is the POST /v1/jobs body: a tenant name plus the serializable
// subset of crashresist.Request, flattened into one v1 JSON object.
type JobSpec struct {
	// Schema must be empty or "v1".
	Schema string `json:"schema,omitempty"`
	// Tenant names the submitting tenant (DefaultTenant when empty).
	// Fairness and job listing are scoped by it.
	Tenant string `json:"tenant,omitempty"`

	crashresist.Request
}

// JobView is the API's job representation: the submission echo plus
// lifecycle state, timings, and — once done — the Result envelope.
type JobView struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  State  `json:"state"`
	// Pipeline and Target echo the submission (Pipeline may be empty
	// until Run resolves it; the Result carries the resolved value).
	Pipeline string `json:"pipeline,omitempty"`
	Target   string `json:"target,omitempty"`
	// Workers is the job's effective worker-token cost against the
	// service budget.
	Workers int `json:"workers"`
	// SubmittedNS/StartedNS/FinishedNS are wall-clock Unix nanoseconds;
	// zero until the phase is reached.
	SubmittedNS int64 `json:"submitted_ns"`
	StartedNS   int64 `json:"started_ns,omitempty"`
	FinishedNS  int64 `json:"finished_ns,omitempty"`
	// Error is the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Result is the marshaled crashresist.Result of a done job. List
	// responses omit it; GET /v1/jobs/{id} carries it.
	Result json.RawMessage `json:"result,omitempty"`
	// EventsDropped counts StageEvents discarded past the per-job replay
	// buffer (live SSE subscribers still saw them).
	EventsDropped int `json:"events_dropped,omitempty"`
}

// jobList is the GET /v1/jobs response envelope.
type jobList struct {
	Schema string    `json:"schema"`
	Jobs   []JobView `json:"jobs"`
}

// apiError is the JSON error envelope for non-2xx responses.
type apiError struct {
	Schema string `json:"schema"`
	Error  string `json:"error"`
	// RetryAfterSeconds accompanies 429 responses, mirroring the
	// Retry-After header.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}
