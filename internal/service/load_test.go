package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"crashresist"
)

// loadJobs is the load-harness volume: ≥1000 concurrent submissions
// across ≥4 tenants, overridable with CRASHRESIST_LOAD_JOBS for bigger
// soak runs.
func loadJobs(t *testing.T) int {
	if v := os.Getenv("CRASHRESIST_LOAD_JOBS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("CRASHRESIST_LOAD_JOBS=%q: %v", v, err)
		}
		return n
	}
	return 1000
}

// loadP99SLO is the warm-cache per-run p99 latency objective asserted
// from the Prometheus summaries. Warm small-scale syscall runs take
// ~1-2ms; the bound leaves headroom for race-instrumented CI hosts.
const loadP99SLO = 2.0 // seconds

// TestLoadHarness is the discovery-as-a-service load test: it warms the
// shared cache, fires loadJobs concurrent HTTP submissions from four
// tenants, and asserts
//
//   - every accepted job is reported terminal — zero dropped-but-
//     unreported jobs,
//   - every result matches the direct library run byte-for-byte (Stats
//     stripped),
//   - the scheduler's fairness bound held across the whole run, and
//   - the warm-cache p99 run latency, read back from the Prometheus
//     summary quantiles, meets the SLO.
func TestLoadHarness(t *testing.T) {
	jobs := loadJobs(t)
	dir := t.TempDir()
	cache, err := crashresist.OpenAnalysisCache(dir)
	if err != nil {
		t.Fatal(err)
	}

	tenants := []string{"team-a", "team-b", "team-c", "team-d"}
	targets := []string{"nginx", "cherokee", "lighttpd", "memcached"}

	// Warm the cache and capture the expected (Stats-stripped) result
	// per target with direct library runs.
	want := make(map[string][]byte, len(targets))
	for _, tgt := range targets {
		res, err := crashresist.Run(context.Background(), crashresist.Request{
			Target: tgt, Seed: 42, Cache: cache,
		})
		if err != nil {
			t.Fatalf("warm %s: %v", tgt, err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		want[tgt] = stripStats(t, raw)
	}

	s := New(Config{
		Budget:         4,
		MaxQueue:       jobs + 8,
		Retain:         jobs + 8,
		Cache:          cache,
		Registry:       crashresist.NewMetricsRegistry(),
		RecordDispatch: true,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	// Fire all submissions concurrently from a worker pool wide enough
	// to keep the queue saturated without exhausting local ports.
	type submitted struct {
		id, tenant, target string
	}
	var (
		mu       sync.Mutex
		accepted []submitted
	)
	var wg sync.WaitGroup
	const submitters = 32
	wg.Add(submitters)
	errs := make(chan error, submitters)
	for w := 0; w < submitters; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < jobs; i += submitters {
				tn := tenants[i%len(tenants)]
				tgt := targets[(i/len(tenants))%len(targets)]
				body := fmt.Sprintf(`{"schema":"v1","tenant":%q,"target":%q,"seed":42}`, tn, tgt)
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- fmt.Errorf("submit %d: %w", i, err)
					return
				}
				var v JobView
				err = json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusAccepted {
					errs <- fmt.Errorf("submit %d: status %d err %v", i, resp.StatusCode, err)
					return
				}
				mu.Lock()
				accepted = append(accepted, submitted{v.ID, tn, tgt})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(accepted) != jobs {
		t.Fatalf("accepted %d of %d submissions", len(accepted), jobs)
	}

	// Every accepted job must reach a terminal, correct, reported state.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	perTenant := map[string]int{}
	for _, sub := range accepted {
		v, err := s.Wait(ctx, sub.id)
		if err != nil {
			t.Fatalf("job %s unreported: %v", sub.id, err)
		}
		if v.State != StateDone {
			t.Fatalf("job %s: state %s (%s)", sub.id, v.State, v.Error)
		}
		if got := stripStats(t, v.Result); !bytes.Equal(got, want[sub.target]) {
			t.Fatalf("job %s (%s): result differs from direct run", sub.id, sub.target)
		}
		perTenant[sub.tenant]++
	}
	for _, tn := range tenants {
		if perTenant[tn] != jobs/len(tenants) {
			t.Errorf("tenant %s: %d jobs done, want %d", tn, perTenant[tn], jobs/len(tenants))
		}
	}

	// The API's own accounting agrees: list per tenant, no job missing.
	for _, tn := range tenants {
		var list jobList
		resp, err := client.Get(ts.URL + "/v1/jobs?tenant=" + tn)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) != jobs/len(tenants) {
			t.Errorf("tenant %s listing: %d jobs, want %d", tn, len(list.Jobs), jobs/len(tenants))
		}
	}

	// Fairness: replay the dispatch log against the strict-RR bound.
	log := s.DispatchLog()
	if len(log) != jobs {
		t.Fatalf("dispatch log has %d entries, want %d", len(log), jobs)
	}
	maxPending := 0
	for _, d := range log {
		if len(d.Pending) > maxPending {
			maxPending = len(d.Pending)
		}
	}
	waits := map[string]int{}
	for i, d := range log {
		for _, u := range d.Pending {
			if u == d.Tenant {
				continue
			}
			waits[u]++
			if waits[u] > maxPending {
				t.Fatalf("dispatch %d: tenant %s passed over %d times (bound %d)", i, u, waits[u], maxPending)
			}
		}
		waits[d.Tenant] = 0
	}

	// SLO: read the p99 run latency for each tenant back out of the
	// Prometheus summary exposition.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, tn := range tenants {
		p99 := scrapeQuantile(t, scrape, "crashresist_job_run_seconds", tn, "0.99")
		if p99 > loadP99SLO {
			t.Errorf("tenant %s: warm-cache p99 run latency %.3fs exceeds SLO %.1fs", tn, p99, loadP99SLO)
		}
		count := scrapeValue(t, scrape, fmt.Sprintf(`crashresist_job_run_seconds_count{tenant=%q}`, tn))
		if int(count) != jobs/len(tenants) {
			t.Errorf("tenant %s: summary count %v, want %d", tn, count, jobs/len(tenants))
		}
		done := scrapeValue(t, scrape, fmt.Sprintf(`crashresist_jobs_completed_total{tenant=%q}`, tn))
		if int(done) != jobs/len(tenants) {
			t.Errorf("tenant %s: completed_total %v, want %d", tn, done, jobs/len(tenants))
		}
	}
}

// scrapeQuantile extracts one summary quantile sample from a Prometheus
// text scrape.
func scrapeQuantile(t *testing.T, scrape, family, tenant, q string) float64 {
	t.Helper()
	return scrapeValue(t, scrape, fmt.Sprintf(`%s{tenant=%q,quantile=%q}`, family, tenant, q))
}

// scrapeValue finds `series value` in a Prometheus text scrape.
func scrapeValue(t *testing.T, scrape, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` ([0-9eE.+-]+)$`)
	m := re.FindStringSubmatch(scrape)
	if m == nil {
		t.Fatalf("scrape has no sample for %s", series)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("sample %s: %v", series, err)
	}
	return v
}
