package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"crashresist"
)

// blockingRunner returns a Runner that signals each start on started and
// blocks until the job's context is cancelled or release is closed.
func blockingRunner(started chan<- string, release <-chan struct{}) Runner {
	return func(ctx context.Context, req crashresist.Request) (*crashresist.Result, error) {
		if started != nil {
			started <- req.Target
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return &crashresist.Result{Schema: Schema}, nil
		}
	}
}

// instantRunner completes immediately with an empty result.
func instantRunner(ctx context.Context, req crashresist.Request) (*crashresist.Result, error) {
	return &crashresist.Result{Schema: Schema}, nil
}

// spec builds a valid minimal JobSpec for tenant/target.
func spec(tenant, target string) JobSpec {
	return JobSpec{
		Tenant:  tenant,
		Request: crashresist.Request{Target: target, Seed: 42},
	}
}

// TestRoundRobinFairness drives seeded random arrivals from several
// tenants through a single-token service and asserts the strict-RR
// fairness bound: a tenant that stays pending is never passed over for
// more dispatches than the largest concurrent pending-tenant set.
func TestRoundRobinFairness(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			release := make(chan struct{})
			s := New(Config{
				Budget:         1,
				MaxQueue:       4096,
				Retain:         4096,
				Runner:         blockingRunner(nil, release),
				RecordDispatch: true,
			})
			defer s.Close()

			rng := rand.New(rand.NewSource(seed))
			tenants := []string{"alice", "bob", "carol", "dave", "erin"}
			const jobs = 200
			var ids []string
			released := 0
			for i := 0; i < jobs; i++ {
				tn := tenants[rng.Intn(len(tenants))]
				v, err := s.Submit(spec(tn, "nginx"))
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				ids = append(ids, v.ID)
				// Occasionally let the scheduler drain a few jobs so
				// tenant queues empty and re-enroll mid-run.
				if rng.Intn(10) == 0 {
					release <- struct{}{}
					released++
				}
			}
			for ; released < jobs; released++ {
				release <- struct{}{}
			}
			waitAllTerminal(t, s, ids)

			log := s.DispatchLog()
			if len(log) != jobs {
				t.Fatalf("dispatched %d of %d jobs", len(log), jobs)
			}
			maxPending := 0
			for _, d := range log {
				if len(d.Pending) > maxPending {
					maxPending = len(d.Pending)
				}
			}
			waits := map[string]int{}
			for i, d := range log {
				for _, u := range d.Pending {
					if u == d.Tenant {
						continue
					}
					waits[u]++
					if waits[u] > maxPending {
						t.Fatalf("dispatch %d: tenant %s passed over %d times (pending set max %d)",
							i, u, waits[u], maxPending)
					}
				}
				waits[d.Tenant] = 0
			}
		})
	}
}

// waitAllTerminal blocks until every id is terminal.
func waitAllTerminal(t *testing.T, s *Service, ids []string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		if _, err := s.Wait(ctx, id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
}

// TestBackpressureBound fills the queue against a blocked runner and
// asserts ErrQueueFull strikes exactly at the bound — the queue never
// holds more than MaxQueue jobs.
func TestBackpressureBound(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 1)
	s := New(Config{Budget: 1, MaxQueue: 8, Retain: 64, Runner: blockingRunner(started, release)})
	defer close(release)
	defer s.Close()

	// First job occupies the only token...
	if _, err := s.Submit(spec("t", "nginx")); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...then exactly MaxQueue jobs fit in the queue.
	for i := 0; i < 8; i++ {
		if _, err := s.Submit(spec("t", "nginx")); err != nil {
			t.Fatalf("submit %d within bound: %v", i, err)
		}
		if q, _ := s.Counts(); q > 8 {
			t.Fatalf("queue grew to %d past bound 8", q)
		}
	}
	_, err := s.Submit(spec("t", "nginx"))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit past bound: got %v, want ErrQueueFull", err)
	}
	if q, _ := s.Counts(); q != 8 {
		t.Fatalf("queue holds %d after rejection, want 8", q)
	}
}

// TestCancelRunningFreesBudget cancels a running job that holds the whole
// budget and asserts the next queued job gets its tokens.
func TestCancelRunningFreesBudget(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 4)
	s := New(Config{Budget: 2, MaxQueue: 16, Retain: 16, Runner: blockingRunner(started, release)})
	defer close(release)
	defer s.Close()

	hog, err := s.Submit(JobSpec{Tenant: "t", Request: crashresist.Request{Target: "nginx", Seed: 1, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // hog holds both tokens
	next, err := s.Submit(JobSpec{Tenant: "t", Request: crashresist.Request{Target: "cherokee", Seed: 1, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case tgt := <-started:
		t.Fatalf("job %q started while budget was exhausted", tgt)
	case <-time.After(50 * time.Millisecond):
	}

	if _, err := s.Cancel(hog.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case tgt := <-started:
		if tgt != "cherokee" {
			t.Fatalf("started %q, want cherokee", tgt)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued job never started after cancel freed the budget")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err := s.Wait(ctx, hog.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCanceled {
		t.Fatalf("cancelled job state %s, want canceled", v.State)
	}
	_ = next
}

// TestCancelQueued cancels a job before dispatch: it finalizes as
// canceled without ever running and the queue slot frees up.
func TestCancelQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 2)
	var runs sync.Map
	runner := func(ctx context.Context, req crashresist.Request) (*crashresist.Result, error) {
		runs.Store(req.Target, true)
		return blockingRunner(started, release)(ctx, req)
	}
	s := New(Config{Budget: 1, MaxQueue: 1, Retain: 16, Runner: runner})
	defer close(release)
	defer s.Close()

	if _, err := s.Submit(spec("t", "nginx")); err != nil {
		t.Fatal(err)
	}
	<-started
	queuedJob, err := s.Submit(spec("t", "cherokee"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec("t", "lighttpd")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full, got %v", err)
	}

	v, err := s.Cancel(queuedJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCanceled {
		t.Fatalf("state %s, want canceled", v.State)
	}
	if _, ok := runs.Load("cherokee"); ok {
		t.Fatal("cancelled queued job still ran")
	}
	// Its queue slot is free again.
	if _, err := s.Submit(spec("t", "memcached")); err != nil {
		t.Fatalf("slot not freed by cancel: %v", err)
	}
}

// TestWorkersClampedToBudget verifies an oversized request occupies at
// most the whole budget rather than deadlocking forever.
func TestWorkersClampedToBudget(t *testing.T) {
	s := New(Config{Budget: 2, MaxQueue: 4, Retain: 4, Runner: instantRunner})
	defer s.Close()
	v, err := s.Submit(JobSpec{Request: crashresist.Request{Target: "nginx", Seed: 1, Workers: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Workers != 2 {
		t.Fatalf("effective workers %d, want clamped to budget 2", v.Workers)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if fin, err := s.Wait(ctx, v.ID); err != nil || fin.State != StateDone {
		t.Fatalf("oversized job: state %v err %v", fin.State, err)
	}
}

// TestRetentionEviction retires more jobs than Retain and asserts the
// oldest become 404 while the newest stay addressable.
func TestRetentionEviction(t *testing.T) {
	s := New(Config{Budget: 1, MaxQueue: 64, Retain: 3, Runner: instantRunner})
	defer s.Close()
	var ids []string
	for i := 0; i < 8; i++ {
		v, err := s.Submit(spec("t", "nginx"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if _, err := s.Wait(ctx, v.ID); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}
	for _, id := range ids[:5] {
		if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("evicted job %s still addressable (err %v)", id, err)
		}
	}
	for _, id := range ids[5:] {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("retained job %s lost: %v", id, err)
		}
	}
}

// TestSubmitValidation covers the 400 paths: bad schema, unknown target,
// rejected cache_dir, pipeline/target mismatch.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{Budget: 1, MaxQueue: 4, Retain: 4, Runner: instantRunner})
	defer s.Close()
	cases := []JobSpec{
		{Schema: "v0", Request: crashresist.Request{Target: "nginx"}},
		{Request: crashresist.Request{Target: "no-such-server"}},
		{Request: crashresist.Request{Target: "nginx", CacheDir: "/tmp/x"}},
		{Request: crashresist.Request{Target: "nginx", Pipeline: "seh"}},
		{Request: crashresist.Request{}},
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d: got %v, want ErrBadRequest", i, err)
		}
	}
}

// TestCloseDrainsQueued closes a service with queued jobs and asserts
// they finalize as canceled rather than hanging their waiters.
func TestCloseDrainsQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 1)
	s := New(Config{Budget: 1, MaxQueue: 16, Retain: 16, Runner: blockingRunner(started, release)})
	if _, err := s.Submit(spec("t", "nginx")); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(spec("t", "cherokee"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan JobView, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		v, _ := s.Wait(ctx, queued.ID)
		done <- v
	}()
	s.Close()
	close(release)
	v := <-done
	if v.State != StateCanceled {
		t.Fatalf("queued job at close: state %s, want canceled", v.State)
	}
	if _, err := s.Submit(spec("t", "lighttpd")); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
}
