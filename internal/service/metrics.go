package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"crashresist/internal/metrics"
)

// latencySamples bounds the per-tenant wait/run sample rings behind the
// summary quantiles: enough to make p99 meaningful under the load
// harness, small enough to stay O(1) per job.
const latencySamples = 2048

// tenantStats accumulates one tenant's job counters and latency samples.
type tenantStats struct {
	submitted uint64
	rejected  uint64
	completed uint64
	failed    uint64
	canceled  uint64
	wait      *metrics.Ring[float64] // seconds queued before dispatch
	run       *metrics.Ring[float64] // seconds running
	waitSum   float64
	runSum    float64
	waitCount uint64
	runCount  uint64
}

// svcMetrics is the service-level Prometheus state: per-tenant job
// counters plus wait/run latency summaries. All methods are safe for
// concurrent use.
type svcMetrics struct {
	mu      sync.Mutex
	tenants map[string]*tenantStats
}

func newSvcMetrics() *svcMetrics {
	return &svcMetrics{tenants: make(map[string]*tenantStats)}
}

func (m *svcMetrics) tenant(name string) *tenantStats {
	t, ok := m.tenants[name]
	if !ok {
		t = &tenantStats{
			wait: metrics.NewRing[float64](latencySamples),
			run:  metrics.NewRing[float64](latencySamples),
		}
		m.tenants[name] = t
	}
	return t
}

func (m *svcMetrics) submitted(tenant string) {
	m.mu.Lock()
	m.tenant(tenant).submitted++
	m.mu.Unlock()
}

func (m *svcMetrics) rejected(tenant string) {
	m.mu.Lock()
	m.tenant(tenant).rejected++
	m.mu.Unlock()
}

func (m *svcMetrics) completed(tenant string) {
	m.mu.Lock()
	m.tenant(tenant).completed++
	m.mu.Unlock()
}

func (m *svcMetrics) failed(tenant string) {
	m.mu.Lock()
	m.tenant(tenant).failed++
	m.mu.Unlock()
}

func (m *svcMetrics) canceled(tenant string) {
	m.mu.Lock()
	m.tenant(tenant).canceled++
	m.mu.Unlock()
}

// observe records one finished job's queue wait and run duration.
func (m *svcMetrics) observe(tenant string, wait, run time.Duration) {
	m.mu.Lock()
	t := m.tenant(tenant)
	t.wait.Push(wait.Seconds())
	t.waitSum += wait.Seconds()
	t.waitCount++
	t.run.Push(run.Seconds())
	t.runSum += run.Seconds()
	t.runCount++
	m.mu.Unlock()
}

// quantile returns the q-quantile (0..1) of the retained samples via the
// nearest-rank method, or 0 with ok=false when empty.
func quantile(samples []float64, q float64) (float64, bool) {
	if len(samples) == 0 {
		return 0, false
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx], true
}

// Quantile exposes a tenant's retained latency quantile to tests and the
// load harness: kind is "wait" or "run".
func (s *Service) Quantile(tenant, kind string, q float64) (float64, bool) {
	s.met.mu.Lock()
	defer s.met.mu.Unlock()
	t, ok := s.met.tenants[tenant]
	if !ok {
		return 0, false
	}
	switch kind {
	case "wait":
		return quantile(t.wait.Items(), q)
	case "run":
		return quantile(t.run.Items(), q)
	default:
		return 0, false
	}
}

// tenantGauges is one tenant's instantaneous queue occupancy, sampled
// under Service.mu for the gauge families.
type tenantGauges struct {
	queued, running, tokens int
}

// writePrometheus renders the service job families in Prometheus text
// exposition format. Tenants are emitted in sorted order so scrapes are
// deterministic. The gauge families carry both the unlabeled service
// total (stable scrape surface) and one {tenant=...} series per tenant
// currently occupying the queue or the budget.
func (s *Service) writePrometheus(w io.Writer) {
	s.mu.Lock()
	queued, running, tokens := s.queued, s.running, s.tokens
	perTenant := make(map[string]*tenantGauges)
	at := func(name string) *tenantGauges {
		g, ok := perTenant[name]
		if !ok {
			g = &tenantGauges{}
			perTenant[name] = g
		}
		return g
	}
	for t, q := range s.queues {
		at(t).queued = len(q)
	}
	for _, j := range s.jobs {
		if j.state == StateRunning {
			g := at(j.tenant)
			g.running++
			g.tokens += j.workers
		}
	}
	s.mu.Unlock()
	tnames := make([]string, 0, len(perTenant))
	for t := range perTenant {
		tnames = append(tnames, t)
	}
	sort.Strings(tnames)

	fmt.Fprintf(w, "# HELP crashresist_jobs_queued Jobs waiting for dispatch.\n# TYPE crashresist_jobs_queued gauge\ncrashresist_jobs_queued %d\n", queued)
	for _, t := range tnames {
		if g := perTenant[t]; g.queued > 0 {
			fmt.Fprintf(w, "crashresist_jobs_queued{tenant=%q} %d\n", t, g.queued)
		}
	}
	fmt.Fprintf(w, "# HELP crashresist_jobs_running Jobs currently holding worker tokens.\n# TYPE crashresist_jobs_running gauge\ncrashresist_jobs_running %d\n", running)
	for _, t := range tnames {
		if g := perTenant[t]; g.running > 0 {
			fmt.Fprintf(w, "crashresist_jobs_running{tenant=%q} %d\n", t, g.running)
		}
	}
	fmt.Fprintf(w, "# HELP crashresist_worker_tokens_free Worker-budget tokens not held by running jobs.\n# TYPE crashresist_worker_tokens_free gauge\ncrashresist_worker_tokens_free %d\n", tokens)
	fmt.Fprintf(w, "# HELP crashresist_worker_tokens_held Worker-budget tokens held by a tenant's running jobs.\n# TYPE crashresist_worker_tokens_held gauge\n")
	for _, t := range tnames {
		if g := perTenant[t]; g.tokens > 0 {
			fmt.Fprintf(w, "crashresist_worker_tokens_held{tenant=%q} %d\n", t, g.tokens)
		}
	}

	s.met.mu.Lock()
	defer s.met.mu.Unlock()
	names := make([]string, 0, len(s.met.tenants))
	for t := range s.met.tenants {
		names = append(names, t)
	}
	sort.Strings(names)

	counters := []struct {
		name, help string
		get        func(*tenantStats) uint64
	}{
		{"crashresist_jobs_submitted_total", "Jobs accepted into the queue.", func(t *tenantStats) uint64 { return t.submitted }},
		{"crashresist_jobs_rejected_total", "Submissions rejected with backpressure (429).", func(t *tenantStats) uint64 { return t.rejected }},
		{"crashresist_jobs_completed_total", "Jobs finished successfully.", func(t *tenantStats) uint64 { return t.completed }},
		{"crashresist_jobs_failed_total", "Jobs finished with an error.", func(t *tenantStats) uint64 { return t.failed }},
		{"crashresist_jobs_canceled_total", "Jobs canceled before or during their run.", func(t *tenantStats) uint64 { return t.canceled }},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
		for _, name := range names {
			fmt.Fprintf(w, "%s{tenant=%q} %d\n", c.name, name, c.get(s.met.tenants[name]))
		}
	}

	summaries := []struct {
		name, help string
		ring       func(*tenantStats) *metrics.Ring[float64]
		sum        func(*tenantStats) float64
		count      func(*tenantStats) uint64
	}{
		{
			"crashresist_job_wait_seconds", "Queue wait before dispatch (retained-sample summary).",
			func(t *tenantStats) *metrics.Ring[float64] { return t.wait },
			func(t *tenantStats) float64 { return t.waitSum },
			func(t *tenantStats) uint64 { return t.waitCount },
		},
		{
			"crashresist_job_run_seconds", "Run duration from dispatch to finish (retained-sample summary).",
			func(t *tenantStats) *metrics.Ring[float64] { return t.run },
			func(t *tenantStats) float64 { return t.runSum },
			func(t *tenantStats) uint64 { return t.runCount },
		},
	}
	for _, sm := range summaries {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", sm.name, sm.help, sm.name)
		for _, name := range names {
			t := s.met.tenants[name]
			items := sm.ring(t).Items()
			for _, q := range []float64{0.5, 0.9, 0.99} {
				if v, ok := quantile(items, q); ok {
					fmt.Fprintf(w, "%s{tenant=%q,quantile=%q} %g\n", sm.name, name, fmt.Sprintf("%g", q), v)
				}
			}
			fmt.Fprintf(w, "%s_sum{tenant=%q} %g\n", sm.name, name, sm.sum(t))
			fmt.Fprintf(w, "%s_count{tenant=%q} %d\n", sm.name, name, sm.count(t))
		}
	}
}
