package service

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"crashresist"
	"crashresist/internal/metrics"
)

// TestTenantGaugeSeries pins the gauge families' shape: the unlabeled
// service totals stay exactly as before, and each tenant occupying the
// queue or the budget gets its own labeled series.
func TestTenantGaugeSeries(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 4)
	s := New(Config{Budget: 2, MaxQueue: 8, Retain: 8, Runner: blockingRunner(started, release)})
	defer s.Close()

	var ids []string
	for _, tn := range []string{"alice", "bob", "bob"} {
		v, err := s.Submit(spec(tn, "nginx"))
		if err != nil {
			t.Fatalf("submit %s: %v", tn, err)
		}
		ids = append(ids, v.ID)
	}
	// Two tokens: alice's job and bob's first job run; bob's second queues.
	<-started
	<-started

	var buf bytes.Buffer
	s.writePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		// Unlabeled totals are the stable scrape surface.
		"crashresist_jobs_queued 1\n",
		"crashresist_jobs_running 2\n",
		"crashresist_worker_tokens_free 0\n",
		// Per-tenant occupancy.
		`crashresist_jobs_queued{tenant="bob"} 1`,
		`crashresist_jobs_running{tenant="alice"} 1`,
		`crashresist_jobs_running{tenant="bob"} 1`,
		`crashresist_worker_tokens_held{tenant="alice"} 1`,
		`crashresist_worker_tokens_held{tenant="bob"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `crashresist_jobs_queued{tenant="alice"}`) {
		t.Error("alice has no queued jobs but got a queued series")
	}

	close(release)
	waitAllTerminal(t, s, ids)
}

// TestServiceMergesJobProfiles: with a registry attached, every job gets a
// per-job profile and its charges land in the registry's /profile merge
// once the job completes.
func TestServiceMergesJobProfiles(t *testing.T) {
	reg := metrics.NewRegistry()
	runner := func(ctx context.Context, req crashresist.Request) (*crashresist.Result, error) {
		if req.Profile == nil {
			t.Error("job carried no profile despite the attached registry")
			return &crashresist.Result{Schema: Schema}, nil
		}
		req.Profile.Add(crashresist.ProfileStack{
			Pipeline: "syscall", Stage: "validate", Target: req.Target, Unit: "read",
		}, crashresist.ProfClockTicks, 7)
		return &crashresist.Result{Schema: Schema}, nil
	}
	s := New(Config{Budget: 1, MaxQueue: 4, Retain: 4, Runner: runner, Registry: reg})
	defer s.Close()

	var ids []string
	for i := 0; i < 2; i++ {
		v, err := s.Submit(spec("alice", "nginx"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	waitAllTerminal(t, s, ids)

	p := reg.Profile()
	if p == nil {
		t.Fatal("service did not install a registry profile")
	}
	var buf bytes.Buffer
	if err := p.Snapshot().WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	if want := "clock_ticks;syscall;validate;nginx;read 14"; !strings.Contains(buf.String(), want) {
		t.Errorf("merged profile missing %q:\n%s", want, buf.String())
	}
}
