package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"crashresist"
)

// TestSSEDetectionReplay: detection events a runner streams mid-run are
// buffered and replayed to a subscriber who connects only after the job is
// done, with the typed Detection payload intact.
func TestSSEDetectionReplay(t *testing.T) {
	runner := func(ctx context.Context, req crashresist.Request) (*crashresist.Result, error) {
		if req.Progress == nil {
			t.Error("service did not wire the job's progress callback")
		} else {
			req.Progress(crashresist.StageEvent{
				Pipeline: "syscall", Target: "nginx", Stage: "detect",
				Kind: crashresist.StageDetection,
				Detection: &crashresist.DetectionEvent{
					Pipeline: "syscall", Target: "nginx",
					Detector: "vii-c-default", Tick: 1_000_000, WindowRate: 100,
				},
			})
		}
		return &crashresist.Result{Schema: Schema}, nil
	}
	_, ts := startServer(t, Config{Budget: 1, MaxQueue: 4, Retain: 4, Runner: runner})

	v := postJob(t, ts, `{"target":"nginx","seed":42}`)
	if fin := waitDone(t, ts, v.ID); fin.State != StateDone {
		t.Fatalf("state %s (%s)", fin.State, fin.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var detections int
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: {") {
			var ev crashresist.StageEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad event frame %q: %v", line, err)
			}
			if ev.Kind != crashresist.StageDetection {
				continue
			}
			detections++
			if ev.Detection == nil {
				t.Fatalf("detection frame lost its payload: %q", line)
			}
			if ev.Detection.Detector != "vii-c-default" || ev.Detection.Tick != 1_000_000 || ev.Detection.WindowRate != 100 {
				t.Errorf("detection payload mangled: %+v", ev.Detection)
			}
		}
		if line == "event: done" {
			sawDone = true
		}
	}
	if detections != 1 || !sawDone {
		t.Fatalf("late subscriber replay: %d detection frames, done=%v", detections, sawDone)
	}
}

// TestJobDetectSurface runs a real defended analysis through the job API:
// "detect":true on the wire embeds the detectability report in the stored
// result, and the service's own /defense endpoint serves the folded report
// because the registry rides along as a run sink.
func TestJobDetectSurface(t *testing.T) {
	_, ts := startServer(t, Config{Budget: 2, MaxQueue: 8, Retain: 8})

	v := postJob(t, ts, `{"target":"nginx","seed":42,"detect":true}`)
	fin := waitDone(t, ts, v.ID)
	if fin.State != StateDone {
		t.Fatalf("state %s (%s)", fin.State, fin.Error)
	}
	var res crashresist.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if res.Detect == nil || res.Detect.Schema != crashresist.DetectSchema {
		t.Fatalf("stored result has no detect report: %+v", res.Detect)
	}
	if len(res.Detect.Sections) != 1 || res.Detect.Sections[0].Target != "nginx" {
		t.Fatalf("detect sections = %+v", res.Detect.Sections)
	}
	if sec := res.Detect.Sections[0]; sec.Baseline == nil || len(sec.Baseline.Events) != 0 {
		t.Errorf("benign baseline missing or flagged: %+v", sec.Baseline)
	}

	var rep crashresist.DetectReport
	if code := getJSON(t, ts.URL+"/defense", &rep); code != http.StatusOK {
		t.Fatalf("/defense status %d", code)
	}
	if rep.Schema != crashresist.DetectSchema || len(rep.Sections) == 0 {
		t.Fatalf("service /defense report empty: %+v", rep)
	}
	if rep.Sections[0].Pipeline != "syscall" || rep.Sections[0].Target != "nginx" {
		t.Errorf("folded section = %s/%s", rep.Sections[0].Pipeline, rep.Sections[0].Target)
	}
}
