package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crashresist"
)

// startServer boots a service over httptest with real analyses.
func startServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = crashresist.NewMetricsRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// postJob submits a job over HTTP and decodes the accepted view.
func postJob(t *testing.T, ts *httptest.Server, body string) JobView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e apiError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/jobs: status %d (%s)", resp.StatusCode, e.Error)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// getJSON fetches a URL and decodes into out, returning the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitDone polls the job API until the job is terminal.
func waitDone(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// stripStats removes every "stats" key from a JSON document, the same
// normalization the chaos goldens use: Stats is the one run-dependent
// part of a report.
func stripStats(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("unmarshal for normalization: %v", err)
	}
	var walk func(v any)
	walk = func(v any) {
		switch vv := v.(type) {
		case map[string]any:
			delete(vv, "stats")
			for _, child := range vv {
				walk(child)
			}
		case []any:
			for _, child := range vv {
				walk(child)
			}
		}
	}
	walk(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAPIEquivalence submits the same analysis through the job API at
// several worker counts and asserts each result is byte-identical
// (Stats stripped) to a direct library Run — the API adds transport, not
// semantics.
func TestAPIEquivalence(t *testing.T) {
	_, ts := startServer(t, Config{Budget: 8, MaxQueue: 64, Retain: 64})

	for _, tc := range []struct {
		pipeline, target string
	}{
		{"syscall", "nginx"},
		{"seh", "ie"},
	} {
		tc := tc
		t.Run(tc.pipeline+"/"+tc.target, func(t *testing.T) {
			direct, err := crashresist.Run(context.Background(), crashresist.Request{
				Pipeline: tc.pipeline, Target: tc.target, Scale: "small", Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			directRaw, err := json.Marshal(direct)
			if err != nil {
				t.Fatal(err)
			}
			want := stripStats(t, directRaw)

			for _, workers := range []int{1, 4, 8} {
				body := fmt.Sprintf(`{"schema":"v1","tenant":"equiv","pipeline":%q,"target":%q,"scale":"small","seed":42,"workers":%d}`,
					tc.pipeline, tc.target, workers)
				v := postJob(t, ts, body)
				fin := waitDone(t, ts, v.ID)
				if fin.State != StateDone {
					t.Fatalf("workers=%d: state %s (%s)", workers, fin.State, fin.Error)
				}
				got := stripStats(t, fin.Result)
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: API result differs from direct library run", workers)
				}
			}
		})
	}
}

// TestHTTPLifecycle covers the submit → list → get → events → metrics
// path against one real small-scale run.
func TestHTTPLifecycle(t *testing.T) {
	_, ts := startServer(t, Config{Budget: 4, MaxQueue: 16, Retain: 16})

	v := postJob(t, ts, `{"tenant":"acme","target":"nginx","seed":42}`)
	if v.Schema != Schema || v.Tenant != "acme" || v.ID == "" {
		t.Fatalf("bad accepted view: %+v", v)
	}
	fin := waitDone(t, ts, v.ID)
	if fin.State != StateDone {
		t.Fatalf("state %s (%s)", fin.State, fin.Error)
	}
	var res crashresist.Result
	if err := json.Unmarshal(fin.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if res.Schema != Schema || res.Pipeline != "syscall" || res.Syscall == nil {
		t.Fatalf("bad result envelope: schema=%q pipeline=%q", res.Schema, res.Pipeline)
	}

	var list jobList
	if code := getJSON(t, ts.URL+"/v1/jobs?tenant=acme", &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != v.ID {
		t.Fatalf("tenant listing wrong: %+v", list.Jobs)
	}
	if list.Jobs[0].Result != nil {
		t.Fatal("list response must omit result payloads")
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?tenant=nobody", &list); code != http.StatusOK || len(list.Jobs) != 0 {
		t.Fatalf("foreign tenant sees %d jobs", len(list.Jobs))
	}

	// SSE replay after completion: data frames then the done event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var dataFrames int
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: {") {
			dataFrames++
			var ev crashresist.StageEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad event frame %q: %v", line, err)
			}
			if ev.Pipeline != "syscall" {
				t.Fatalf("event pipeline %q", ev.Pipeline)
			}
		}
		if line == "event: done" {
			sawDone = true
		}
	}
	if dataFrames == 0 || !sawDone {
		t.Fatalf("SSE stream: %d data frames, done=%v", dataFrames, sawDone)
	}

	// Metrics scrape carries the job families with the tenant label.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, want := range []string{
		`crashresist_jobs_submitted_total{tenant="acme"} 1`,
		`crashresist_jobs_completed_total{tenant="acme"} 1`,
		`crashresist_job_run_seconds_count{tenant="acme"} 1`,
		"crashresist_jobs_queued 0",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestHTTPErrors pins the error-path status codes: malformed JSON and
// unknown fields are 400, unknown jobs 404, a full queue 429 with a
// Retry-After hint.
func TestHTTPErrors(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := startServer(t, Config{Budget: 1, MaxQueue: 1, Runner: blockingRunner(nil, release)})

	for _, body := range []string{
		`{"target":`,                            // malformed
		`{"target":"nginx","bogus_field":true}`, // unknown field
		`{"target":"nginx","cache_dir":"/tmp/evil"}`,
		`{"schema":"v2","target":"nginx"}`,
		`{"target":"toaster"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/j99999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}

	// Occupy the runner, fill the queue, then overflow it.
	postJob(t, ts, `{"target":"nginx"}`)
	waitRunning(t, s)
	postJob(t, ts, `{"target":"nginx"}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"target":"nginx"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.RetryAfterSeconds == 0 {
		t.Errorf("429 body lacks retry_after_seconds: %+v err %v", e, err)
	}
}

// waitRunning blocks until one job is running (not merely queued).
func waitRunning(t *testing.T, s *Service) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, running := s.Counts(); running > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no job ever started running")
}
