package solver

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file cross-checks the bounded solver against exhaustive brute force,
// pinning the completeness claim of DESIGN.md §5: the solver is *complete*
// for the filter-idiom constraint family — boolean combinations of
// (optionally mask-projected) single-symbol comparisons against constants —
// and *sound* everywhere (a Sat verdict always carries a model that
// evaluates true). Outside the family, Unsat may be wrong and Unknown is
// acceptable; TestSolverCompletenessBoundary documents that edge.

// domainBits bounds the brute-force search: every symbol ranges over
// [0, 2^domainBits).
const domainBits = 8

// genFamilyExpr builds a random constraint from the filter-idiom family
// over the given symbols: atoms are cmp(sym, const) or
// cmp(sym & mask, const), composed with And/Or (boolean combination) up to
// the given depth. Constants stay inside the 8-bit brute-force domain so
// brute force can actually witness satisfying assignments.
func genFamilyExpr(rng *rand.Rand, syms []*Expr, depth int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		s := syms[rng.Intn(len(syms))]
		lhs := s
		if rng.Intn(2) == 0 {
			lhs = Bin(OpAnd, s, Const(uint64(rng.Intn(1<<domainBits))))
		}
		cmps := []Op{OpEq, OpNe, OpUlt, OpUle, OpSlt, OpSle}
		return Bin(cmps[rng.Intn(len(cmps))], lhs, Const(uint64(rng.Intn(1<<domainBits))))
	}
	composite := []Op{OpAnd, OpOr}
	a := genFamilyExpr(rng, syms, depth-1)
	b := genFamilyExpr(rng, syms, depth-1)
	return Bin(composite[rng.Intn(len(composite))], a, b)
}

// bruteForce exhaustively searches the 8-bit domain for an assignment
// satisfying every constraint (all constraints nonzero).
func bruteForce(constraints []*Expr, names []string) (map[string]uint64, bool) {
	model := make(map[string]uint64, len(names))
	var walk func(i int) bool
	walk = func(i int) bool {
		if i == len(names) {
			for _, c := range constraints {
				if c.Eval(model) == 0 {
					return false
				}
			}
			return true
		}
		for v := uint64(0); v < 1<<domainBits; v++ {
			model[names[i]] = v
			if walk(i + 1) {
				return true
			}
		}
		delete(model, names[i])
		return false
	}
	return model, walk(0)
}

// collectNames gathers the distinct symbols across a constraint set.
func collectNames(constraints []*Expr) []string {
	seen := make(map[string]bool)
	var names []string
	for _, c := range constraints {
		for _, n := range c.Symbols() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	return names
}

// TestSolverMatchesBruteForce generates seeded random in-family constraint
// DAGs over one and two symbols and requires verdict agreement with
// exhaustive 8-bit search: brute-force-Sat must be solver-Sat (with a
// model brute force validates), brute-force-Unsat must be solver-Unsat.
// Unknown is a completeness failure inside the family.
func TestSolverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	syms := []*Expr{Sym("a"), Sym("b")}
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		nsyms := 1 + trial%2
		nconstraints := 1 + rng.Intn(3)
		depth := rng.Intn(3)
		constraints := make([]*Expr, nconstraints)
		for i := range constraints {
			constraints[i] = genFamilyExpr(rng, syms[:nsyms], depth)
		}
		names := collectNames(constraints)
		// Pin every symbol into the brute-force domain with an in-family
		// atom; without this, signed comparisons admit 64-bit witnesses
		// (e.g. slt a 0) that exhaustive 8-bit search cannot see, and the
		// two searchers would disagree about the universe, not the
		// constraint.
		for _, n := range names {
			constraints = append(constraints, Bin(OpUlt, Sym(n), Const(1<<domainBits)))
		}

		_, bfSat := bruteForce(constraints, names)
		model, res := Solve(constraints)

		switch res {
		case Sat:
			if !bfSat {
				t.Fatalf("trial %d: solver Sat but domain has no witness: %s",
					trial, describe(constraints))
			}
			for _, c := range constraints {
				if c.Eval(model) == 0 {
					t.Fatalf("trial %d: Sat model %v does not satisfy %s (soundness)",
						trial, model, c)
				}
			}
		case Unsat:
			if bfSat {
				t.Fatalf("trial %d: solver Unsat but a witness exists: %s",
					trial, describe(constraints))
			}
		case Unknown:
			t.Fatalf("trial %d: Unknown inside the complete family: %s",
				trial, describe(constraints))
		}
	}
}

// TestSolverSatAlwaysSound checks soundness on a wider, not-necessarily-
// in-family mix: whenever the solver answers Sat, its model must evaluate
// every constraint true. (Completeness is not required here.)
func TestSolverSatAlwaysSound(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBEEF))
	a, b := Sym("a"), Sym("b")
	arith := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
	for trial := 0; trial < 300; trial++ {
		lhs := Bin(arith[rng.Intn(len(arith))], a, b)
		if rng.Intn(2) == 0 {
			lhs = Bin(arith[rng.Intn(len(arith))], lhs, Const(uint64(rng.Intn(256))))
		}
		c := Bin([]Op{OpEq, OpNe, OpUlt, OpUle}[rng.Intn(4)], lhs, Const(uint64(rng.Intn(256))))
		model, res := Solve([]*Expr{c})
		if res == Sat && c.Eval(model) == 0 {
			t.Fatalf("trial %d: Sat model %v does not satisfy %s", trial, model, c)
		}
	}
}

// TestSolverCompletenessBoundary documents where the bounded solver's
// completeness ends: a constraint whose witnesses lie outside the
// constant-neighbourhood candidate set — here a*a == 16, in-domain
// witnesses a ∈ {4, 252}, neither adjacent to the constant 16 nor a
// masked-atom combination — may be reported Unsat or Unknown even though
// brute force finds a model. This is the documented trade-off: exception
// filters never leave the comparison/mask family, so the bound never
// bites in the pipelines; anything that might is surfaced as Unknown →
// "needs manual vetting" (README "Caveats").
func TestSolverCompletenessBoundary(t *testing.T) {
	a := Sym("a")
	c := Bin(OpEq, Bin(OpMul, a, a), Const(16))

	if _, ok := bruteForce([]*Expr{c}, []string{"a"}); !ok {
		t.Fatal("brute force must find a*a==16 satisfiable (a=4)")
	}
	model, res := Solve([]*Expr{c})
	switch res {
	case Sat:
		// If the candidate heuristics ever grow strong enough to solve
		// this, the model must still be sound — and this test should be
		// updated to a harder boundary case.
		if c.Eval(model) == 0 {
			t.Fatalf("Sat model %v does not satisfy %s", model, c)
		}
		t.Logf("boundary case now solved; candidate heuristics improved")
	case Unsat, Unknown:
		// Expected: the witness escapes the bounded candidate set. The
		// pipelines treat this verdict as "needs manual vetting".
	}
}

func describe(constraints []*Expr) string {
	s := ""
	for i, c := range constraints {
		if i > 0 {
			s += " ∧ "
		}
		s += fmt.Sprint(c)
	}
	return s
}
