package solver

import "testing"

// BenchmarkSolveEquality is the dominant filter shape: code == CONST.
func BenchmarkSolveEquality(b *testing.B) {
	c := Bin(OpEq, Sym("code"), Const(0xC0000005))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, res := Solve([]*Expr{c}); res != Sat {
			b.Fatal(res)
		}
	}
}

// BenchmarkSolveMaskRange exercises the masked-equality + interval family.
func BenchmarkSolveMaskRange(b *testing.B) {
	code := Sym("code")
	cs := []*Expr{
		Bin(OpEq, Bin(OpAnd, code, Const(0xF0000000)), Const(0xC0000000)),
		Bin(OpUle, Const(0xC0000001), code),
		Bin(OpNe, code, Const(0xC0000094)),
	}
	for i := 0; i < b.N; i++ {
		if _, res := Solve(cs); res != Sat {
			b.Fatal(res)
		}
	}
}

// BenchmarkEval measures raw expression evaluation.
func BenchmarkEval(b *testing.B) {
	e := Bin(OpEq, Bin(OpAnd, Bin(OpAdd, Sym("a"), Sym("b")), Const(0xFF)), Const(0x42))
	m := map[string]uint64{"a": 0x40, "b": 0x2}
	for i := 0; i < b.N; i++ {
		if e.Eval(m) != 1 {
			b.Fatal("wrong eval")
		}
	}
}
