package solver

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	tests := []struct {
		name string
		give *Expr
		want uint64
	}{
		{"add", Bin(OpAdd, Const(2), Const(3)), 5},
		{"sub wrap", Bin(OpSub, Const(0), Const(1)), ^uint64(0)},
		{"mul", Bin(OpMul, Const(6), Const(7)), 42},
		{"and", Bin(OpAnd, Const(0xFF), Const(0x0F)), 0x0F},
		{"or", Bin(OpOr, Const(0xF0), Const(0x0F)), 0xFF},
		{"xor", Bin(OpXor, Const(0xFF), Const(0x0F)), 0xF0},
		{"shl", Bin(OpShl, Const(1), Const(8)), 256},
		{"shr", Bin(OpShr, Const(256), Const(4)), 16},
		{"shl mod 64", Bin(OpShl, Const(1), Const(64)), 1},
		{"eq true", Bin(OpEq, Const(5), Const(5)), 1},
		{"eq false", Bin(OpEq, Const(5), Const(6)), 0},
		{"ult", Bin(OpUlt, Const(1), Const(2)), 1},
		{"slt negative", Bin(OpSlt, Const(^uint64(0)), Const(0)), 1},
		{"sle", Bin(OpSle, Const(3), Const(3)), 1},
		{"ule", Bin(OpUle, Const(4), Const(3)), 0},
		{"ne", Bin(OpNe, Const(1), Const(2)), 1},
		{"not", Un(OpNot, Const(0)), ^uint64(0)},
		{"neg", Un(OpNeg, Const(1)), ^uint64(0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, ok := tt.give.IsConst()
			if !ok {
				t.Fatalf("not folded: %v", tt.give)
			}
			if v != tt.want {
				t.Errorf("got %#x, want %#x", v, tt.want)
			}
		})
	}
}

func TestIdentitySimplifications(t *testing.T) {
	x := Sym("x")
	tests := []struct {
		name string
		give *Expr
		want *Expr
	}{
		{"x+0", Bin(OpAdd, x, Const(0)), x},
		{"0+x", Bin(OpAdd, Const(0), x), x},
		{"x&0", Bin(OpAnd, x, Const(0)), Const(0)},
		{"x&~0", Bin(OpAnd, x, Const(^uint64(0))), x},
		{"x|0", Bin(OpOr, x, Const(0)), x},
		{"x*1", Bin(OpMul, x, Const(1)), x},
		{"x*0", Bin(OpMul, x, Const(0)), Const(0)},
		{"x-x", Bin(OpSub, x, x), Const(0)},
		{"x^x", Bin(OpXor, x, x), Const(0)},
		{"x==x", Bin(OpEq, x, x), Const(1)},
		{"x<x", Bin(OpUlt, x, x), Const(0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.give.String() != tt.want.String() {
				t.Errorf("got %v, want %v", tt.give, tt.want)
			}
		})
	}
}

func TestIteFolding(t *testing.T) {
	if got := Ite(Const(1), Const(10), Const(20)); got.V != 10 {
		t.Errorf("ite true = %v", got)
	}
	if got := Ite(Const(0), Const(10), Const(20)); got.V != 20 {
		t.Errorf("ite false = %v", got)
	}
	e := Ite(Sym("c"), Const(10), Const(20))
	if _, ok := e.IsConst(); ok {
		t.Error("symbolic ite folded")
	}
	if got := e.Eval(map[string]uint64{"c": 1}); got != 10 {
		t.Errorf("eval ite = %d", got)
	}
}

func TestEvalWithModel(t *testing.T) {
	// (x + 3) == 10
	e := Bin(OpEq, Bin(OpAdd, Sym("x"), Const(3)), Const(10))
	if e.Eval(map[string]uint64{"x": 7}) != 1 {
		t.Error("should hold for x=7")
	}
	if e.Eval(map[string]uint64{"x": 8}) != 0 {
		t.Error("should not hold for x=8")
	}
	if e.Eval(nil) != 0 {
		t.Error("unassigned symbol should default to 0")
	}
}

func TestSymbols(t *testing.T) {
	e := Bin(OpAdd, Sym("b"), Bin(OpXor, Sym("a"), Ite(Sym("c"), Const(1), Sym("a"))))
	syms := e.Symbols()
	want := []string{"a", "b", "c"}
	if len(syms) != len(want) {
		t.Fatalf("symbols = %v", syms)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Errorf("symbols = %v, want %v", syms, want)
		}
	}
}

func TestSolveSimpleEquality(t *testing.T) {
	// code == 0xC0000005
	c := Bin(OpEq, Sym("code"), Const(0xC0000005))
	model, res := Solve([]*Expr{c})
	if res != Sat {
		t.Fatalf("res = %v", res)
	}
	if model["code"] != 0xC0000005 {
		t.Errorf("model = %v", FormatModel(model))
	}
}

func TestSolveContradiction(t *testing.T) {
	x := Sym("x")
	cs := []*Expr{
		Bin(OpEq, x, Const(5)),
		Bin(OpEq, x, Const(6)),
	}
	if _, res := Solve(cs); res != Unsat {
		t.Errorf("res = %v, want unsat", res)
	}
}

func TestSolveConjunctionOfRanges(t *testing.T) {
	// 10 <= x && x < 20 && x != 15
	x := Sym("x")
	cs := []*Expr{
		Bin(OpUle, Const(10), x),
		Bin(OpUlt, x, Const(20)),
		Bin(OpNe, x, Const(15)),
	}
	model, res := Solve(cs)
	if res != Sat {
		t.Fatalf("res = %v", res)
	}
	v := model["x"]
	if v < 10 || v >= 20 || v == 15 {
		t.Errorf("model x = %d violates constraints", v)
	}
}

func TestSolveMaskTest(t *testing.T) {
	// (code & 0xF0000000) == 0xC0000000 — severity-error class check.
	code := Sym("code")
	c := Bin(OpEq, Bin(OpAnd, code, Const(0xF0000000)), Const(0xC0000000))
	model, res := Solve([]*Expr{c})
	if res != Sat {
		t.Fatalf("res = %v", res)
	}
	if model["code"]&0xF0000000 != 0xC0000000 {
		t.Errorf("model = %v", FormatModel(model))
	}
}

func TestSolveMultiSymbol(t *testing.T) {
	// a + b == 2 with a == 1.
	a, b := Sym("a"), Sym("b")
	cs := []*Expr{
		Bin(OpEq, Bin(OpAdd, a, b), Const(2)),
		Bin(OpEq, a, Const(1)),
	}
	model, res := Solve(cs)
	if res != Sat {
		t.Fatalf("res = %v", res)
	}
	if model["a"]+model["b"] != 2 {
		t.Errorf("model = %v", FormatModel(model))
	}
}

func TestSolveConstantConstraints(t *testing.T) {
	if _, res := Solve([]*Expr{Const(1), Const(5)}); res != Sat {
		t.Error("non-zero constants are sat")
	}
	if _, res := Solve([]*Expr{Const(1), Const(0)}); res != Unsat {
		t.Error("zero constant is unsat")
	}
	if _, res := Solve(nil); res != Sat {
		t.Error("empty constraints are sat")
	}
}

func TestSolveTooManySymbolsUnknown(t *testing.T) {
	cs := make([]*Expr, 0, 6)
	var sum *Expr = Const(0)
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		sum = Bin(OpAdd, sum, Sym(n))
	}
	cs = append(cs, Bin(OpEq, sum, Const(12345)))
	if _, res := Solve(cs); res != Unknown {
		t.Errorf("res = %v, want unknown beyond symbol budget", res)
	}
}

func TestSatisfiableWith(t *testing.T) {
	// Filter-accepts-AV query shape: path constraint (code & mask)==class,
	// fixed code = access violation.
	code := Sym("code")
	accept := Bin(OpEq, Bin(OpAnd, code, Const(0xFFFFFFFF)), Const(0xC0000005))
	if res := SatisfiableWith([]*Expr{accept}, map[string]uint64{"code": 0xC0000005}); res != Sat {
		t.Errorf("res = %v", res)
	}
	if res := SatisfiableWith([]*Expr{accept}, map[string]uint64{"code": 0xC0000094}); res != Unsat {
		t.Errorf("res = %v", res)
	}
}

// TestSolveMatchesBruteForce cross-validates the bounded solver against
// exhaustive enumeration for random filter-style constraint systems over a
// single 8-bit symbol.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mkAtom := func() *Expr {
		x := Bin(OpAnd, Sym("x"), Const(0xFF)) // treat x as 8-bit
		c := Const(uint64(rng.Intn(256)))
		switch rng.Intn(5) {
		case 0:
			return Bin(OpEq, x, c)
		case 1:
			return Bin(OpNe, x, c)
		case 2:
			return Bin(OpUlt, x, c)
		case 3:
			return Bin(OpUle, c, x)
		default:
			mask := Const(uint64(rng.Intn(256)))
			return Bin(OpEq, Bin(OpAnd, x, mask), Bin(OpAnd, c, mask))
		}
	}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(3)
		cs := make([]*Expr, n)
		for i := range cs {
			cs[i] = mkAtom()
		}
		_, got := Solve(cs)

		// Brute force over 0..255 (x only matters mod 256 given the
		// masking in every atom).
		bruteSat := false
		for v := 0; v < 256; v++ {
			ok := true
			m := map[string]uint64{"x": uint64(v)}
			for _, c := range cs {
				if c.Eval(m) == 0 {
					ok = false
					break
				}
			}
			if ok {
				bruteSat = true
				break
			}
		}
		want := Unsat
		if bruteSat {
			want = Sat
		}
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v constraints=%v", trial, got, want, cs)
		}
	}
}

// TestQuickEvalDeterministic property-tests that evaluation is a pure
// function of the model.
func TestQuickEvalDeterministic(t *testing.T) {
	f := func(a, b uint64) bool {
		e := Bin(OpXor, Bin(OpAdd, Sym("a"), Sym("b")), Bin(OpMul, Sym("a"), Const(3)))
		m := map[string]uint64{"a": a, "b": b}
		return e.Eval(m) == e.Eval(m) && e.Eval(m) == (a+b)^(a*3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatModel(t *testing.T) {
	if got := FormatModel(nil); got != "{}" {
		t.Errorf("empty model = %q", got)
	}
	got := FormatModel(map[string]uint64{"b": 2, "a": 1})
	if got != "{a=0x1 b=0x2}" {
		t.Errorf("model = %q", got)
	}
}

func TestOpAndResultStrings(t *testing.T) {
	for op := OpConst; op <= OpIte; op++ {
		if op.String() == "op?" {
			t.Errorf("op %d has no name", op)
		}
	}
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("result strings wrong")
	}
}

func TestExprString(t *testing.T) {
	e := Bin(OpEq, Bin(OpAnd, Sym("code"), Const(0xFF)), Const(5))
	if got := e.String(); got != "(eq (and code 0xff) 0x5)" {
		t.Errorf("String = %q", got)
	}
}
