// Package solver provides the bitvector expression language and
// satisfiability checker used by the symbolic executor — this repository's
// substitute for Z3 in the paper's exception-filter analysis.
//
// Expressions are immutable DAGs over 64-bit values; predicates evaluate to
// 0 or 1. Satisfiability is decided by bounded small-domain enumeration: the
// candidate values for each symbol are the constants appearing in the
// constraints, their ±1 neighbours, and a handful of distinguished values
// (0, 1, all-ones, sign bit). This procedure is *complete* for the
// constraint family real exception filters compile to — conjunctions and
// disjunctions of equality, inequality and masked-bit tests against
// constants — because any satisfiable such system is satisfied at one of the
// boundary values the enumeration covers. TestSolveMatchesBruteForce
// cross-checks this claim against exhaustive 8-bit enumeration.
package solver

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates expression operators.
type Op uint8

// Operators. Arithmetic/bitwise produce 64-bit values; predicates produce
// 0 or 1.
const (
	OpConst Op = iota + 1
	OpSym

	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	OpNot // unary bitwise complement
	OpNeg // unary two's complement

	OpEq
	OpNe
	OpUlt
	OpUle
	OpSlt
	OpSle

	OpIte // if-then-else: Cond ? Then : Else
)

func (o Op) String() string {
	switch o {
	case OpConst:
		return "const"
	case OpSym:
		return "sym"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpShl:
		return "shl"
	case OpShr:
		return "shr"
	case OpNot:
		return "not"
	case OpNeg:
		return "neg"
	case OpEq:
		return "eq"
	case OpNe:
		return "ne"
	case OpUlt:
		return "ult"
	case OpUle:
		return "ule"
	case OpSlt:
		return "slt"
	case OpSle:
		return "sle"
	case OpIte:
		return "ite"
	default:
		return "op?"
	}
}

// Expr is an immutable expression node.
type Expr struct {
	Op   Op
	V    uint64 // OpConst value
	Name string // OpSym name
	A    *Expr  // first operand (or condition for Ite)
	B    *Expr  // second operand (or then-branch)
	C    *Expr  // else-branch for Ite
}

// Const builds a constant.
func Const(v uint64) *Expr { return &Expr{Op: OpConst, V: v} }

// Sym builds a symbolic variable.
func Sym(name string) *Expr { return &Expr{Op: OpSym, Name: name} }

// Bin builds a binary expression, constant-folding and applying identities.
func Bin(op Op, a, b *Expr) *Expr {
	if a.Op == OpConst && b.Op == OpConst {
		return Const(evalBin(op, a.V, b.V))
	}
	// Identity simplifications with a constant operand.
	if b.Op == OpConst {
		switch {
		case op == OpAdd && b.V == 0,
			op == OpSub && b.V == 0,
			op == OpOr && b.V == 0,
			op == OpXor && b.V == 0,
			op == OpShl && b.V == 0,
			op == OpShr && b.V == 0:
			return a
		case op == OpAnd && b.V == 0:
			return Const(0)
		case op == OpAnd && b.V == ^uint64(0):
			return a
		case op == OpMul && b.V == 1:
			return a
		case op == OpMul && b.V == 0:
			return Const(0)
		}
	}
	if a.Op == OpConst {
		switch {
		case op == OpAdd && a.V == 0, op == OpOr && a.V == 0, op == OpXor && a.V == 0:
			return b
		case op == OpAnd && a.V == 0, op == OpMul && a.V == 0:
			return Const(0)
		case op == OpMul && a.V == 1:
			return b
		}
	}
	// x op x simplifications.
	if sameExpr(a, b) {
		switch op {
		case OpSub, OpXor:
			return Const(0)
		case OpAnd, OpOr:
			return a
		case OpEq, OpUle, OpSle:
			return Const(1)
		case OpNe, OpUlt, OpSlt:
			return Const(0)
		}
	}
	return &Expr{Op: op, A: a, B: b}
}

// Un builds a unary expression with constant folding.
func Un(op Op, a *Expr) *Expr {
	if a.Op == OpConst {
		switch op {
		case OpNot:
			return Const(^a.V)
		case OpNeg:
			return Const(-a.V)
		}
	}
	return &Expr{Op: op, A: a}
}

// Ite builds cond ? then : else, folding constant conditions.
func Ite(cond, then, els *Expr) *Expr {
	if cond.Op == OpConst {
		if cond.V != 0 {
			return then
		}
		return els
	}
	return &Expr{Op: OpIte, A: cond, B: then, C: els}
}

// IsConst reports whether e is a constant, returning its value.
func (e *Expr) IsConst() (uint64, bool) {
	if e.Op == OpConst {
		return e.V, true
	}
	return 0, false
}

// Eval computes the expression under a symbol assignment. Unassigned
// symbols evaluate to 0.
func (e *Expr) Eval(model map[string]uint64) uint64 {
	switch e.Op {
	case OpConst:
		return e.V
	case OpSym:
		return model[e.Name]
	case OpNot:
		return ^e.A.Eval(model)
	case OpNeg:
		return -e.A.Eval(model)
	case OpIte:
		if e.A.Eval(model) != 0 {
			return e.B.Eval(model)
		}
		return e.C.Eval(model)
	default:
		return evalBin(e.Op, e.A.Eval(model), e.B.Eval(model))
	}
}

// Symbols returns the sorted set of symbol names in the expression.
func (e *Expr) Symbols() []string {
	set := make(map[string]bool)
	e.collectSymbols(set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (e *Expr) collectSymbols(set map[string]bool) {
	switch e.Op {
	case OpConst:
	case OpSym:
		set[e.Name] = true
	case OpNot, OpNeg:
		e.A.collectSymbols(set)
	case OpIte:
		e.A.collectSymbols(set)
		e.B.collectSymbols(set)
		e.C.collectSymbols(set)
	default:
		e.A.collectSymbols(set)
		e.B.collectSymbols(set)
	}
}

// String renders the expression in prefix form.
func (e *Expr) String() string {
	switch e.Op {
	case OpConst:
		return fmt.Sprintf("%#x", e.V)
	case OpSym:
		return e.Name
	case OpNot, OpNeg:
		return fmt.Sprintf("(%s %s)", e.Op, e.A)
	case OpIte:
		return fmt.Sprintf("(ite %s %s %s)", e.A, e.B, e.C)
	default:
		return fmt.Sprintf("(%s %s %s)", e.Op, e.A, e.B)
	}
}

func evalBin(op Op, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpEq:
		return b2u(a == b)
	case OpNe:
		return b2u(a != b)
	case OpUlt:
		return b2u(a < b)
	case OpUle:
		return b2u(a <= b)
	case OpSlt:
		return b2u(int64(a) < int64(b))
	case OpSle:
		return b2u(int64(a) <= int64(b))
	default:
		return 0
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func sameExpr(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a.Op != b.Op {
		return false
	}
	switch a.Op {
	case OpConst:
		return a.V == b.V
	case OpSym:
		return a.Name == b.Name
	default:
		return false
	}
}

// Result reports the outcome of a satisfiability query.
type Result uint8

// Query outcomes. Unknown is returned when the enumeration bound was hit
// without finding a model; for the filter constraint family this does not
// happen (see package comment), but the tri-state keeps callers honest.
const (
	Sat Result = iota + 1
	Unsat
	Unknown
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Unknown:
		return "unknown"
	default:
		return "result?"
	}
}

// solve limits.
const (
	maxEnumSymbols  = 4
	maxCandidates   = 768
	maxEnumerations = 2_000_000
)

// Solve decides whether all constraints (1-bit expressions) can
// simultaneously evaluate to non-zero. On Sat, the returned model is a
// witness assignment.
func Solve(constraints []*Expr) (map[string]uint64, Result) {
	// Fast path: constant constraints.
	pending := make([]*Expr, 0, len(constraints))
	for _, c := range constraints {
		if v, ok := c.IsConst(); ok {
			if v == 0 {
				return nil, Unsat
			}
			continue
		}
		pending = append(pending, c)
	}
	if len(pending) == 0 {
		return map[string]uint64{}, Sat
	}

	symSet := make(map[string]bool)
	for _, c := range pending {
		c.collectSymbols(symSet)
	}
	syms := make([]string, 0, len(symSet))
	for s := range symSet {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	if len(syms) > maxEnumSymbols {
		return nil, Unknown
	}

	candidates := candidateValues(pending)
	total := 1
	for range syms {
		total *= len(candidates)
		if total > maxEnumerations {
			return nil, Unknown
		}
	}

	model := make(map[string]uint64, len(syms))
	if enumerate(pending, syms, candidates, model, 0) {
		return model, Sat
	}
	return nil, Unsat
}

// SatisfiableWith is a convenience wrapper: can the constraints hold with
// the given fixed bindings? The bindings are added as equality constraints.
func SatisfiableWith(constraints []*Expr, fixed map[string]uint64) Result {
	all := make([]*Expr, 0, len(constraints)+len(fixed))
	all = append(all, constraints...)
	// Sorted for determinism.
	names := make([]string, 0, len(fixed))
	for n := range fixed {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		all = append(all, Bin(OpEq, Sym(n), Const(fixed[n])))
	}
	_, res := Solve(all)
	return res
}

func enumerate(constraints []*Expr, syms []string, candidates []uint64, model map[string]uint64, i int) bool {
	if i == len(syms) {
		for _, c := range constraints {
			if c.Eval(model) == 0 {
				return false
			}
		}
		return true
	}
	for _, v := range candidates {
		model[syms[i]] = v
		if enumerate(constraints, syms, candidates, model, i+1) {
			return true
		}
	}
	delete(model, syms[i])
	return false
}

// maskedAtom records an (expr & m) == c test found in the constraints.
type maskedAtom struct{ m, c uint64 }

// candidateValues gathers the candidate set for enumeration. Two families:
//
//  1. Boundary values: every constant in the constraints, its ±1
//     neighbours and complement, plus distinguished values.
//  2. Mask witnesses: for each combination of masked-equality atoms
//     (x & m) == c, the values that pin the masked bits to c while taking
//     the free bits from all-zeros, all-ones, or any boundary constant k —
//     i.e. V, V|^M and (k &^ M)|V. The last form lands next to comparison
//     thresholds while respecting every mask test, which makes the
//     enumeration complete for conjunctions of masked-equality and
//     interval atoms over one variable (cross-checked by the brute-force
//     test).
func candidateValues(constraints []*Expr) []uint64 {
	set := map[uint64]bool{
		0: true, 1: true, ^uint64(0): true, 1 << 63: true, 1 << 31: true,
	}
	var atoms []maskedAtom
	var walk func(e *Expr)
	walk = func(e *Expr) {
		switch e.Op {
		case OpConst:
			set[e.V] = true
			set[e.V+1] = true
			set[e.V-1] = true
			set[^e.V] = true
		case OpSym:
		case OpNot, OpNeg:
			walk(e.A)
		case OpIte:
			walk(e.A)
			walk(e.B)
			walk(e.C)
		default:
			if e.Op == OpEq || e.Op == OpNe {
				if m, c, ok := maskedEqParts(e); ok {
					atoms = append(atoms, maskedAtom{m: m, c: c})
				}
			}
			walk(e.A)
			walk(e.B)
		}
	}
	for _, c := range constraints {
		walk(c)
	}

	base := make([]uint64, 0, len(set))
	for v := range set {
		base = append(base, v)
	}
	sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })

	// Combine masked atoms: singles, pairs, and the full conjunction.
	var combos []maskedAtom
	for i, a := range atoms {
		combos = append(combos, a)
		for _, b := range atoms[i+1:] {
			combos = append(combos, maskedAtom{m: a.m | b.m, c: a.c | b.c})
		}
	}
	if len(atoms) > 2 {
		all := maskedAtom{}
		for _, a := range atoms {
			all.m |= a.m
			all.c |= a.c
		}
		combos = append(combos, all)
	}
	for _, cb := range combos {
		set[cb.c] = true
		set[cb.c|^cb.m] = true
		for _, k := range base {
			set[(k&^cb.m)|cb.c] = true
		}
	}

	out := make([]uint64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > maxCandidates {
		out = out[:maxCandidates]
	}
	return out
}

// maskedEqParts recognizes (X & const) ==/!= const shapes (either operand
// order) and returns the mask and comparison value.
func maskedEqParts(e *Expr) (m, c uint64, ok bool) {
	l, r := e.A, e.B
	if l.Op == OpConst {
		l, r = r, l
	}
	cv, isConst := r.IsConst()
	if !isConst || l.Op != OpAnd {
		return 0, 0, false
	}
	if mv, isMask := l.B.IsConst(); isMask {
		return mv, cv & mv, true
	}
	if mv, isMask := l.A.IsConst(); isMask {
		return mv, cv & mv, true
	}
	return 0, 0, false
}

// FormatModel renders a model deterministically for reports.
func FormatModel(model map[string]uint64) string {
	if len(model) == 0 {
		return "{}"
	}
	names := make([]string, 0, len(model))
	for n := range model {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%#x", n, model[n])
	}
	return "{" + strings.Join(parts, " ") + "}"
}
