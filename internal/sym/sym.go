// Package sym implements a symbolic executor for M64 exception-filter
// functions — the analysis the paper performs with Z3 to decide which SEH
// filters can accept access violations (§IV-C).
//
// A filter receives the exception code in R1 and the fault address in R2 and
// returns an SEH disposition in R0. The executor runs the filter's code with
// R1/R2 (and every other non-SP register) as symbolic variables, forking at
// data-dependent branches, reading concrete globals from the loaded module
// image, and logging stores to a path-local symbolic memory. Each terminal
// path yields (constraints, return expression); the verdict asks the solver
// whether any path can return EXECUTE_HANDLER while the code equals
// ACCESS_VIOLATION.
//
// Filters that escape the executor's fragment — calling through imports,
// blocking, exceeding the path/step budget, or computing addresses the
// executor cannot concretize — produce VerdictUnknown, the "needs manual
// verification" bucket the paper describes for the post-update Internet
// Explorer filter (§VII-A).
package sym

import (
	"fmt"

	"crashresist/internal/bin"
	"crashresist/internal/faultinject"
	"crashresist/internal/isa"
	"crashresist/internal/solver"
	"crashresist/internal/vm"
)

// Analysis budgets.
const (
	maxPaths     = 128
	maxStepsPath = 2048
	maxCallDepth = 8
)

// Distinguished symbolic names.
const (
	SymCode = "code" // exception code (filter argument R1)
	SymAddr = "addr" // fault address (filter argument R2)
)

// retMagic is the concrete return address seeded at the virtual stack top; a
// RET landing on it terminates the path.
const retMagic = 0xFFFF000000000001

// virtualStackTop is the concrete SP the executor starts with. It lies
// outside any mapped region; stack traffic goes through the symbolic store.
const virtualStackTop = 0xFFFF0000E0000000

// Verdict classifies a filter.
type Verdict uint8

// Verdicts.
const (
	// VerdictAccepts: some path returns EXECUTE_HANDLER with
	// code == ACCESS_VIOLATION.
	VerdictAccepts Verdict = iota + 1
	// VerdictRejects: no path can do so.
	VerdictRejects
	// VerdictUnknown: analysis escaped the supported fragment.
	VerdictUnknown
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAccepts:
		return "accepts-av"
	case VerdictRejects:
		return "rejects-av"
	case VerdictUnknown:
		return "unknown"
	default:
		return "verdict?"
	}
}

// ProfileClass returns the verdict's cost-profile attribution label
// ("filter:rejects-av", ...). The discovery pipelines attribute symbolic
// execution steps by filter verdict class — the axis that actually
// dominates symex cost (reject proofs must exhaust every path, so
// rejecting filters cost an order of magnitude more than accepting ones)
// — with the module as a drill-down sub-frame. The label is stable wire
// surface: ranked reports and CI assertions key on it.
func (v Verdict) ProfileClass() string { return "filter:" + v.String() }

// verdictTokens are the stable JSON wire names.
var verdictTokens = map[Verdict]string{
	VerdictAccepts: "accepts",
	VerdictRejects: "rejects",
	VerdictUnknown: "unknown",
}

// Token returns the verdict's stable wire name (the JSON token), used for
// provenance records.
func (v Verdict) Token() string {
	if tok, ok := verdictTokens[v]; ok {
		return tok
	}
	return fmt.Sprintf("verdict_%d", uint8(v))
}

// MarshalJSON encodes the verdict as a stable string token.
func (v Verdict) MarshalJSON() ([]byte, error) {
	tok, ok := verdictTokens[v]
	if !ok {
		return nil, fmt.Errorf("marshal: invalid verdict %d", uint8(v))
	}
	return []byte(`"` + tok + `"`), nil
}

// UnmarshalJSON decodes a verdict token.
func (v *Verdict) UnmarshalJSON(b []byte) error {
	s := string(b)
	for val, tok := range verdictTokens {
		if s == `"`+tok+`"` {
			*v = val
			return nil
		}
	}
	return fmt.Errorf("unmarshal: unknown verdict %s", s)
}

// Path is one terminal execution path of a filter.
type Path struct {
	Constraints []*solver.Expr
	Ret         *solver.Expr
	// Escaped marks a path that left the supported fragment before
	// returning.
	Escaped bool
	Reason  string
}

// Report is the full analysis output for one filter.
type Report struct {
	FilterVA uint64
	Verdict  Verdict
	Paths    []Path
	// Model is a witness assignment for an accepting path (if any).
	Model map[string]uint64
	// Steps counts total symbolic instructions executed.
	Steps int
}

// Executor analyzes filters inside a loaded process image.
type Executor struct {
	proc *vm.Process

	// Cache, when non-nil, memoizes AnalyzeFilterIn results by filter
	// body. It may be shared with other executors.
	Cache *Cache

	// FaultPlan, when non-nil, injects deterministic analysis failures at
	// the sym.filter site (see TryAnalyzeFilterIn). FaultAttempt is the
	// retry attempt the owning shard is on; the pool's retry wrapper sets
	// it before each attempt so transient injections clear on retry.
	FaultPlan    *faultinject.Plan
	FaultAttempt int

	// Purity tracking for the cache: while tracking, any dependence on
	// state outside [trackLo, trackHi) clears pure (see Cache).
	tracking bool
	trackLo  uint64
	trackHi  uint64
	pure     bool
	// lastPure records whether the most recent AnalyzeFilterIn call was
	// pure — a function of the filter body bytes alone (see
	// LastAnalysisPure).
	lastPure bool
}

// NewExecutor creates an executor bound to a process (for module lookup and
// concrete global reads).
func NewExecutor(p *vm.Process) *Executor {
	return &Executor{proc: p}
}

// Proc returns the process the executor is bound to.
func (e *Executor) Proc() *vm.Process {
	return e.proc
}

type cmpState struct {
	a, b   *solver.Expr
	isTest bool
	valid  bool
}

type state struct {
	regs    [isa.NumRegisters]*solver.Expr
	pc      uint64
	cmp     cmpState
	cons    []*solver.Expr
	mem     map[uint64]*solver.Expr // symbolic store log, 8-byte granules? per-byte
	depth   int
	callTop int
}

func (s *state) clone() *state {
	ns := &state{
		regs:    s.regs,
		pc:      s.pc,
		cmp:     s.cmp,
		depth:   s.depth,
		callTop: s.callTop,
	}
	ns.cons = append([]*solver.Expr(nil), s.cons...)
	ns.mem = make(map[uint64]*solver.Expr, len(s.mem))
	for k, v := range s.mem {
		ns.mem[k] = v
	}
	return ns
}

// AnalyzeFilter symbolically executes the filter function at filterVA and
// classifies it against access violations: can it return
// EXECUTE_HANDLER (1) when the code equals ACCESS_VIOLATION?
func (e *Executor) AnalyzeFilter(filterVA uint64) Report {
	return e.analyze(filterVA, vm.DispositionExecuteHandler)
}

// AnalyzeVEH classifies a vectored exception handler: VEH resolves a fault
// by returning EXCEPTION_CONTINUE_EXECUTION (-1) rather than
// EXECUTE_HANDLER, so the accepting disposition differs from scope filters.
func (e *Executor) AnalyzeVEH(handlerVA uint64) Report {
	return e.analyze(handlerVA, vm.DispositionContinueExecution)
}

func (e *Executor) analyze(filterVA, disposition uint64) Report {
	rep := Report{FilterVA: filterVA}

	init := &state{
		pc:  filterVA,
		mem: make(map[uint64]*solver.Expr),
	}
	for r := 0; r < isa.NumRegisters; r++ {
		init.regs[r] = solver.Sym(fmt.Sprintf("init_r%d", r))
	}
	init.regs[isa.R1] = solver.Sym(SymCode)
	init.regs[isa.R2] = solver.Sym(SymAddr)
	init.regs[isa.SP] = solver.Const(virtualStackTop)
	// Seed the return address.
	e.storeN(init, virtualStackTop, 8, solver.Const(retMagic))

	work := []*state{init}
	for len(work) > 0 && len(rep.Paths) < maxPaths {
		st := work[len(work)-1]
		work = work[:len(work)-1]
		e.runPath(st, &rep, &work)
	}
	if len(work) > 0 {
		// Path budget exhausted with work remaining.
		rep.Paths = append(rep.Paths, Path{Escaped: true, Reason: "path budget exceeded"})
	}

	rep.Verdict = e.verdict(&rep, disposition)
	return rep
}

// verdict inspects the collected paths against the accepting disposition.
func (e *Executor) verdict(rep *Report, disposition uint64) Verdict {
	unknown := false
	for _, p := range rep.Paths {
		if p.Escaped {
			unknown = true
			continue
		}
		cs := make([]*solver.Expr, 0, len(p.Constraints)+2)
		cs = append(cs, p.Constraints...)
		cs = append(cs,
			solver.Bin(solver.OpEq, solver.Sym(SymCode), solver.Const(uint64(vm.ExcAccessViolation))),
			solver.Bin(solver.OpEq, p.Ret, solver.Const(disposition)),
		)
		model, res := solver.Solve(cs)
		switch res {
		case solver.Sat:
			rep.Model = model
			return VerdictAccepts
		case solver.Unknown:
			unknown = true
		}
	}
	if unknown {
		return VerdictUnknown
	}
	return VerdictRejects
}

// runPath executes one state to a terminal, possibly pushing forked states.
func (e *Executor) runPath(st *state, rep *Report, work *[]*state) {
	for steps := 0; steps < maxStepsPath; steps++ {
		rep.Steps++
		if st.pc == retMagic {
			rep.Paths = append(rep.Paths, Path{Constraints: st.cons, Ret: st.regs[isa.R0]})
			return
		}
		ins, size, err := e.fetch(st.pc)
		if err != nil {
			rep.Paths = append(rep.Paths, Path{Escaped: true, Reason: err.Error(), Constraints: st.cons})
			return
		}
		next := st.pc + uint64(size)
		done, escaped, reason := e.execSym(st, ins, next, work)
		if escaped {
			rep.Paths = append(rep.Paths, Path{Escaped: true, Reason: reason, Constraints: st.cons})
			return
		}
		if done {
			rep.Paths = append(rep.Paths, Path{Constraints: st.cons, Ret: st.regs[isa.R0]})
			return
		}
	}
	rep.Paths = append(rep.Paths, Path{Escaped: true, Reason: "step budget exceeded", Constraints: st.cons})
}

// fetch decodes the instruction at a concrete PC from process memory.
func (e *Executor) fetch(pc uint64) (isa.Instruction, int, error) {
	if e.tracking && (pc < e.trackLo || pc >= e.trackHi) {
		e.pure = false
	}
	var buf [10]byte
	code, err := e.proc.AS.FetchExec(pc, len(buf), buf[:0])
	if err != nil {
		return isa.Instruction{}, 0, fmt.Errorf("fetch %#x: %w", pc, err)
	}
	ins, size, err := isa.Decode(code)
	if err != nil {
		return isa.Instruction{}, 0, fmt.Errorf("decode %#x: %w", pc, err)
	}
	return ins, size, nil
}

// execSym executes one instruction symbolically. It returns done for path
// termination (RET to magic) and escaped for unsupported constructs.
func (e *Executor) execSym(st *state, ins isa.Instruction, next uint64, work *[]*state) (done, escaped bool, reason string) {
	switch ins.Op {
	case isa.OpNop, isa.OpYield:
		st.pc = next
	case isa.OpHalt, isa.OpSyscall, isa.OpRaise:
		return false, true, "filter executes " + ins.Op.String()
	case isa.OpCallI:
		// Code imports (cross-module calls) are ordinary code and can
		// be inlined; native platform APIs cannot be modelled and
		// escape to "unknown" — the paper's manual-vetting bucket.
		// Either way the outcome depends on the module's import table,
		// not just the filter body.
		e.pure = false
		mod, ok := e.proc.FindModule(st.pc)
		if !ok || int(ins.Disp) < 0 || int(ins.Disp) >= len(mod.ImportAddrs) {
			return false, true, "filter calls through unresolvable import slot"
		}
		target := mod.ImportAddrs[ins.Disp]
		if target&bin.NativeImportBit != 0 {
			return false, true, "filter calls a native platform API"
		}
		return e.symCall(st, target, next)
	case isa.OpCallR, isa.OpJmpR:
		target, ok := st.regs[ins.A].IsConst()
		if !ok {
			return false, true, "indirect transfer to symbolic target"
		}
		if ins.Op == isa.OpJmpR {
			st.pc = target
			return false, false, ""
		}
		return e.symCall(st, target, next)
	case isa.OpCall:
		return e.symCall(st, next+uint64(int64(ins.Disp)), next)
	case isa.OpRet:
		spv, ok := st.regs[isa.SP].IsConst()
		if !ok {
			return false, true, "ret with symbolic SP"
		}
		retExpr, ok := e.loadN(st, spv, 8)
		if !ok {
			return false, true, "ret reads unresolvable stack slot"
		}
		ret, ok := retExpr.IsConst()
		if !ok {
			return false, true, "ret to symbolic address"
		}
		st.regs[isa.SP] = solver.Const(spv + 8)
		if ret == retMagic {
			return true, false, ""
		}
		st.callTop--
		st.pc = ret

	case isa.OpPush:
		spv, ok := st.regs[isa.SP].IsConst()
		if !ok {
			return false, true, "push with symbolic SP"
		}
		e.storeN(st, spv-8, 8, st.regs[ins.A])
		st.regs[isa.SP] = solver.Const(spv - 8)
		st.pc = next
	case isa.OpPop:
		spv, ok := st.regs[isa.SP].IsConst()
		if !ok {
			return false, true, "pop with symbolic SP"
		}
		v, ok := e.loadN(st, spv, 8)
		if !ok {
			return false, true, "pop reads unresolvable stack slot"
		}
		st.regs[ins.A] = v
		st.regs[isa.SP] = solver.Const(spv + 8)
		st.pc = next

	case isa.OpMovRR:
		st.regs[ins.A] = st.regs[ins.B]
		st.pc = next
	case isa.OpMovRI:
		st.regs[ins.A] = solver.Const(ins.Imm)
		st.pc = next
	case isa.OpLea:
		// Materializes an absolute VA, which shifts with the module base.
		e.pure = false
		st.regs[ins.A] = solver.Const(next + uint64(int64(ins.Disp)))
		st.pc = next
	case isa.OpNot:
		st.regs[ins.A] = solver.Un(solver.OpNot, st.regs[ins.A])
		st.pc = next
	case isa.OpNeg:
		st.regs[ins.A] = solver.Un(solver.OpNeg, st.regs[ins.A])
		st.pc = next

	case isa.OpAddRR, isa.OpSubRR, isa.OpAndRR, isa.OpOrRR, isa.OpXorRR,
		isa.OpShlRR, isa.OpShrRR, isa.OpMulRR:
		st.regs[ins.A] = solver.Bin(aluToSolver(ins.Op), st.regs[ins.A], st.regs[ins.B])
		st.pc = next
	case isa.OpDivRR:
		return false, true, "filter divides (unsupported symbolically)"
	case isa.OpAddRI, isa.OpSubRI, isa.OpAndRI, isa.OpOrRI, isa.OpXorRI,
		isa.OpShlRI, isa.OpShrRI, isa.OpMulRI:
		imm := solver.Const(uint64(int64(ins.Disp)))
		st.regs[ins.A] = solver.Bin(aluToSolver(ins.Op), st.regs[ins.A], imm)
		st.pc = next

	case isa.OpCmpRR:
		st.cmp = cmpState{a: st.regs[ins.A], b: st.regs[ins.B], valid: true}
		st.pc = next
	case isa.OpCmpRI:
		st.cmp = cmpState{a: st.regs[ins.A], b: solver.Const(uint64(int64(ins.Disp))), valid: true}
		st.pc = next
	case isa.OpTestRR:
		st.cmp = cmpState{a: st.regs[ins.A], b: st.regs[ins.B], isTest: true, valid: true}
		st.pc = next
	case isa.OpTestRI:
		st.cmp = cmpState{a: st.regs[ins.A], b: solver.Const(uint64(int64(ins.Disp))), isTest: true, valid: true}
		st.pc = next

	case isa.OpLoad1, isa.OpLoad2, isa.OpLoad4, isa.OpLoad8:
		addrExpr := solver.Bin(solver.OpAdd, st.regs[ins.B], solver.Const(uint64(int64(ins.Disp))))
		addr, ok := addrExpr.IsConst()
		if !ok {
			return false, true, "load from symbolic address"
		}
		v, ok := e.loadN(st, addr, ins.LoadSize())
		if !ok {
			return false, true, fmt.Sprintf("load from unreadable %#x", addr)
		}
		st.regs[ins.A] = v
		st.pc = next
	case isa.OpStore1, isa.OpStore2, isa.OpStore4, isa.OpStore8:
		addrExpr := solver.Bin(solver.OpAdd, st.regs[ins.A], solver.Const(uint64(int64(ins.Disp))))
		addr, ok := addrExpr.IsConst()
		if !ok {
			return false, true, "store to symbolic address"
		}
		e.storeN(st, addr, ins.StoreSize(), st.regs[ins.B])
		st.pc = next

	case isa.OpJmp:
		st.pc = next + uint64(int64(ins.Disp))
	case isa.OpJz, isa.OpJnz, isa.OpJl, isa.OpJge, isa.OpJle, isa.OpJg, isa.OpJb, isa.OpJae:
		if !st.cmp.valid {
			return false, true, "conditional jump without preceding compare"
		}
		cond := condExpr(ins.Op, st.cmp)
		target := next + uint64(int64(ins.Disp))
		if v, ok := cond.IsConst(); ok {
			if v != 0 {
				st.pc = target
			} else {
				st.pc = next
			}
			return false, false, ""
		}
		// Fork: taken branch goes to the worklist, fall-through
		// continues here.
		taken := st.clone()
		taken.cons = append(taken.cons, solver.Bin(solver.OpNe, cond, solver.Const(0)))
		taken.pc = target
		*work = append(*work, taken)
		st.cons = append(st.cons, solver.Bin(solver.OpEq, cond, solver.Const(0)))
		st.pc = next

	default:
		return false, true, "unsupported opcode " + ins.Op.String()
	}
	return false, false, ""
}

func (e *Executor) symCall(st *state, target, retPC uint64) (done, escaped bool, reason string) {
	if st.callTop+1 > maxCallDepth {
		return false, true, "call depth exceeded"
	}
	spv, ok := st.regs[isa.SP].IsConst()
	if !ok {
		return false, true, "call with symbolic SP"
	}
	e.storeN(st, spv-8, 8, solver.Const(retPC))
	st.regs[isa.SP] = solver.Const(spv - 8)
	st.callTop++
	st.pc = target
	return false, false, ""
}

// loadN reads size bytes at a concrete address: first from the path-local
// store log, then from concrete process memory; virtual-stack bytes that
// were never written become fresh symbols.
func (e *Executor) loadN(st *state, addr uint64, size int) (*solver.Expr, bool) {
	var out *solver.Expr = solver.Const(0)
	for i := size - 1; i >= 0; i-- {
		b, ok := e.loadByte(st, addr+uint64(i))
		if !ok {
			return nil, false
		}
		out = solver.Bin(solver.OpOr, solver.Bin(solver.OpShl, out, solver.Const(8)), b)
	}
	return out, true
}

func (e *Executor) loadByte(st *state, addr uint64) (*solver.Expr, bool) {
	if v, ok := st.mem[addr]; ok {
		return v, true
	}
	// Concrete memory.
	if b, err := e.proc.AS.ReadUint(addr, 1); err == nil {
		if e.tracking && (addr < e.trackLo || addr >= e.trackHi) {
			e.pure = false
		}
		return solver.Const(b), true
	}
	// Virtual stack: untouched slots are unconstrained.
	if addr >= virtualStackTop-1<<20 && addr < virtualStackTop+4096 {
		s := solver.Sym(fmt.Sprintf("stack_%x", addr))
		st.mem[addr] = s
		return s, true
	}
	return nil, false
}

// storeN writes a value's bytes into the path-local store log.
func (e *Executor) storeN(st *state, addr uint64, size int, v *solver.Expr) {
	for i := 0; i < size; i++ {
		st.mem[addr+uint64(i)] = solver.Bin(solver.OpAnd,
			solver.Bin(solver.OpShr, v, solver.Const(uint64(8*i))),
			solver.Const(0xFF))
	}
}

func aluToSolver(op isa.Op) solver.Op {
	switch op {
	case isa.OpAddRR, isa.OpAddRI:
		return solver.OpAdd
	case isa.OpSubRR, isa.OpSubRI:
		return solver.OpSub
	case isa.OpAndRR, isa.OpAndRI:
		return solver.OpAnd
	case isa.OpOrRR, isa.OpOrRI:
		return solver.OpOr
	case isa.OpXorRR, isa.OpXorRI:
		return solver.OpXor
	case isa.OpShlRR, isa.OpShlRI:
		return solver.OpShl
	case isa.OpShrRR, isa.OpShrRI:
		return solver.OpShr
	case isa.OpMulRR, isa.OpMulRI:
		return solver.OpMul
	default:
		return solver.OpAdd
	}
}

func condExpr(op isa.Op, c cmpState) *solver.Expr {
	if c.isTest {
		// TEST: Z = (a & b) == 0; only JZ/JNZ are meaningful.
		z := solver.Bin(solver.OpEq, solver.Bin(solver.OpAnd, c.a, c.b), solver.Const(0))
		switch op {
		case isa.OpJz:
			return z
		case isa.OpJnz:
			return solver.Bin(solver.OpEq, z, solver.Const(0))
		default:
			// L/B flags are cleared by TEST; jl/jb never taken,
			// jge/jae always taken.
			switch op {
			case isa.OpJl, isa.OpJb:
				return solver.Const(0)
			case isa.OpJge, isa.OpJae:
				return solver.Const(1)
			case isa.OpJle:
				return z
			case isa.OpJg:
				return solver.Bin(solver.OpEq, z, solver.Const(0))
			}
			return solver.Const(0)
		}
	}
	switch op {
	case isa.OpJz:
		return solver.Bin(solver.OpEq, c.a, c.b)
	case isa.OpJnz:
		return solver.Bin(solver.OpNe, c.a, c.b)
	case isa.OpJl:
		return solver.Bin(solver.OpSlt, c.a, c.b)
	case isa.OpJge:
		return solver.Bin(solver.OpSle, c.b, c.a)
	case isa.OpJle:
		return solver.Bin(solver.OpSle, c.a, c.b)
	case isa.OpJg:
		return solver.Bin(solver.OpSlt, c.b, c.a)
	case isa.OpJb:
		return solver.Bin(solver.OpUlt, c.a, c.b)
	case isa.OpJae:
		return solver.Bin(solver.OpUle, c.b, c.a)
	default:
		return solver.Const(0)
	}
}

// AnalyzeScope is a convenience: catch-all scopes accept trivially; others
// are analyzed through their filter function.
func (e *Executor) AnalyzeScope(mod *bin.Module, scope bin.ScopeEntry) Report {
	if scope.IsCatchAll() {
		return Report{Verdict: VerdictAccepts}
	}
	return e.AnalyzeFilter(mod.VA(scope.Filter))
}
