package sym

import (
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

// loadFilters builds a library of filter functions and loads it into a
// process; returns the process and a VA lookup by exported name.
func loadFilters(t *testing.T, fill func(b *asm.Builder)) (*vm.Process, func(string) uint64) {
	t.Helper()
	b := asm.NewBuilder("filters.dll", bin.KindLibrary)
	fill(b)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 11})
	mod, err := p.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	return p, func(name string) uint64 {
		off, ok := img.Export(name)
		if !ok {
			t.Fatalf("no export %q", name)
		}
		return mod.VA(off)
	}
}

func TestFilterAcceptAll(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").MovRI(isa.R0, 1).Ret().EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts (paths: %+v)", rep.Verdict, rep.Paths)
	}
	if rep.Model[SymCode] != uint64(vm.ExcAccessViolation) {
		t.Errorf("model = %v", rep.Model)
	}
}

func TestFilterRejectAll(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").MovRI(isa.R0, 0).Ret().EndFunc() // continue search always
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictRejects {
		t.Errorf("verdict = %v, want rejects", rep.Verdict)
	}
}

func TestFilterEqualityOnAV(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			MovRI(isa.R3, uint64(vm.ExcAccessViolation)).
			CmpRR(isa.R1, isa.R3).
			Jz("yes").
			MovRI(isa.R0, 0).
			Ret().
			Label("yes").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts", rep.Verdict)
	}
}

func TestFilterEqualityOnOtherCode(t *testing.T) {
	// Accepts only divide-by-zero: must be classified as rejecting AV.
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			MovRI(isa.R3, uint64(vm.ExcDivideByZero)).
			CmpRR(isa.R1, isa.R3).
			Jz("yes").
			MovRI(isa.R0, 0).
			Ret().
			Label("yes").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictRejects {
		t.Errorf("verdict = %v, want rejects", rep.Verdict)
	}
}

func TestFilterExcludesAVExplicitly(t *testing.T) {
	// Catch everything except AV (Firefox-style exclusion inverted):
	// if code == AV → continue search, else execute handler.
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			MovRI(isa.R3, uint64(vm.ExcAccessViolation)).
			CmpRR(isa.R1, isa.R3).
			Jz("no").
			MovRI(isa.R0, 1).
			Ret().
			Label("no").
			MovRI(isa.R0, 0).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictRejects {
		t.Errorf("verdict = %v, want rejects", rep.Verdict)
	}
}

func TestFilterSeverityMask(t *testing.T) {
	// Accept any error-severity exception: (code >> 30) == 3. AV qualifies.
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			MovRR(isa.R3, isa.R1).
			ShrRI(isa.R3, 30).
			CmpRI(isa.R3, 3).
			Jz("yes").
			MovRI(isa.R0, 0).
			Ret().
			Label("yes").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts", rep.Verdict)
	}
}

func TestFilterRangeCheckExcludingAV(t *testing.T) {
	// Accept software exceptions 0xE0000000..0xEFFFFFFF only.
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			MovRI(isa.R3, 0xE0000000).
			CmpRR(isa.R1, isa.R3).
			Jb("no").
			MovRI(isa.R3, 0xF0000000).
			CmpRR(isa.R1, isa.R3).
			Jae("no").
			MovRI(isa.R0, 1).
			Ret().
			Label("no").
			MovRI(isa.R0, 0).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictRejects {
		t.Errorf("verdict = %v, want rejects", rep.Verdict)
	}
}

func TestFilterReadsConfigGlobal(t *testing.T) {
	// The post-security-update IE pattern, simplified: the filter's
	// behaviour depends on a config global. Here the global is concrete
	// in the image (0 → reject AV; the code still has an accept path for
	// software exceptions). With config=0 the AV path is dead.
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			LeaData(isa.R4, "config").
			Load(8, isa.R4, isa.R4, 0).
			TestRR(isa.R4, isa.R4).
			Jnz("maybe").
			MovRI(isa.R0, 0).
			Ret().
			Label("maybe").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.DataU64("config", 0)
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictRejects {
		t.Errorf("config=0: verdict = %v, want rejects", rep.Verdict)
	}

	// Flip the config in memory: now it accepts.
	p2, va2 := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			LeaData(isa.R4, "config").
			Load(8, isa.R4, isa.R4, 0).
			TestRR(isa.R4, isa.R4).
			Jnz("maybe").
			MovRI(isa.R0, 0).
			Ret().
			Label("maybe").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.DataU64("config", 1)
		b.Export("f", "f")
	})
	rep2 := NewExecutor(p2).AnalyzeFilter(va2("f"))
	if rep2.Verdict != VerdictAccepts {
		t.Errorf("config=1: verdict = %v, want accepts", rep2.Verdict)
	}
}

func TestFilterCallsHelperInline(t *testing.T) {
	// Filter calls a helper in the same module that computes the check;
	// the executor inlines direct calls.
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			Call("is_av").
			TestRR(isa.R0, isa.R0).
			Jnz("yes").
			MovRI(isa.R0, 0).
			Ret().
			Label("yes").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Func("is_av").
			MovRI(isa.R3, uint64(vm.ExcAccessViolation)).
			CmpRR(isa.R1, isa.R3).
			Jz("t").
			MovRI(isa.R0, 0).
			Ret().
			Label("t").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts (paths %+v)", rep.Verdict, rep.Paths)
	}
}

func TestFilterCallingCodeImportIsInlined(t *testing.T) {
	// Cross-module calls to ordinary code are inlined by the executor.
	lib := asm.NewBuilder("helper.dll", bin.KindLibrary)
	lib.Func("decide").MovRI(isa.R0, 1).Ret().EndFunc()
	lib.Export("decide", "decide")
	libImg, err := lib.Build()
	if err != nil {
		t.Fatal(err)
	}

	b := asm.NewBuilder("filters.dll", bin.KindLibrary)
	b.Func("f").
		CallImport("helper.dll", "decide").
		Ret().
		EndFunc()
	b.Export("f", "f")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 11})
	if _, err := p.LoadImage(libImg); err != nil {
		t.Fatal(err)
	}
	mod, err := p.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewExecutor(p).AnalyzeFilter(mod.VA(img.Exports["f"]))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts (code import inlined)", rep.Verdict)
	}
}

type acceptAllAPI struct{}

func (acceptAllAPI) Resolve(string) (uint32, error) { return 7, nil }

func (acceptAllAPI) Call(p *vm.Process, t *vm.Thread, id uint32) *vm.Exception {
	t.SetReg(0, 1)
	return nil
}

func TestFilterCallingNativeAPIIsUnknown(t *testing.T) {
	// The post-update IE filter consults a platform API to decide —
	// §VII-A says this requires manual verification. Native APIs cannot
	// be modelled symbolically.
	b := asm.NewBuilder("filters.dll", bin.KindLibrary)
	b.Func("f").
		CallImport("", "RtlQueryExceptionPolicy").
		Ret().
		EndFunc()
	b.Export("f", "f")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 11})
	p.API = acceptAllAPI{}
	mod, err := p.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewExecutor(p).AnalyzeFilter(mod.VA(img.Exports["f"]))
	if rep.Verdict != VerdictUnknown {
		t.Errorf("verdict = %v, want unknown", rep.Verdict)
	}
}

func TestAnalyzeVEHDisposition(t *testing.T) {
	// A vectored handler accepts by returning CONTINUE_EXECUTION (-1);
	// the same function is NOT an accepting scope filter.
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("veh").
			MovRI(isa.R3, uint64(vm.ExcAccessViolation)).
			CmpRR(isa.R1, isa.R3).
			Jz("resolve").
			MovRI(isa.R0, 0).
			Ret().
			Label("resolve").
			MovRI(isa.R0, 0).
			Not(isa.R0). // -1
			Ret().
			EndFunc()
		b.Export("veh", "veh")
	})
	exec := NewExecutor(p)
	if rep := exec.AnalyzeVEH(va("veh")); rep.Verdict != VerdictAccepts {
		t.Errorf("AnalyzeVEH = %v, want accepts", rep.Verdict)
	}
	if rep := exec.AnalyzeFilter(va("veh")); rep.Verdict != VerdictRejects {
		t.Errorf("AnalyzeFilter on VEH = %v, want rejects (never returns 1)", rep.Verdict)
	}
}

func TestFilterUsesStackLocals(t *testing.T) {
	// Spill the code to a stack local, reload, compare.
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			SubRI(isa.SP, 16).
			Store(8, isa.SP, 0, isa.R1).
			Load(8, isa.R5, isa.SP, 0).
			AddRI(isa.SP, 16).
			MovRI(isa.R3, uint64(vm.ExcAccessViolation)).
			CmpRR(isa.R5, isa.R3).
			Jz("yes").
			MovRI(isa.R0, 0).
			Ret().
			Label("yes").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts (paths %+v)", rep.Verdict, rep.Paths)
	}
}

func TestFilterInfiniteLoopBudget(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			Label("spin").
			Jmp("spin").
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictUnknown {
		t.Errorf("verdict = %v, want unknown (budget)", rep.Verdict)
	}
}

func TestFilterManyBranches(t *testing.T) {
	// A chain of comparisons against distinct codes, the last being AV.
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f")
		codes := []uint64{0xC0000094, 0xC000001D, 0xC00000FD, uint64(vm.ExcAccessViolation)}
		for i, c := range codes {
			lbl := "c" + string(rune('0'+i))
			b.MovRI(isa.R3, c).
				CmpRR(isa.R1, isa.R3).
				Jnz(lbl)
			if c == uint64(vm.ExcAccessViolation) {
				b.MovRI(isa.R0, 1).Ret()
			} else {
				b.MovRI(isa.R0, 0).Ret()
			}
			b.Label(lbl)
		}
		b.MovRI(isa.R0, 0).Ret().EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts", rep.Verdict)
	}
}

func TestAnalyzeScopeCatchAll(t *testing.T) {
	p, _ := loadFilters(t, func(b *asm.Builder) {
		b.Func("g").Label("g0").Nop().Label("g1").Ret().EndFunc()
		b.Guard("g", "g0", "g1", asm.CatchAll, "g1")
	})
	_ = p
	mod := p.Modules()[0]
	rep := NewExecutor(p).AnalyzeScope(mod, mod.Image.Scopes[0])
	if rep.Verdict != VerdictAccepts {
		t.Errorf("catch-all scope verdict = %v", rep.Verdict)
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictAccepts.String() != "accepts-av" || VerdictRejects.String() != "rejects-av" ||
		VerdictUnknown.String() != "unknown" || Verdict(9).String() != "verdict?" {
		t.Error("verdict strings wrong")
	}
}
