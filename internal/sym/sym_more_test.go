package sym

import (
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

// TestFilterAllALUOps exercises every ALU opcode through the symbolic
// lifter: each transformation must preserve the deciding comparison.
func TestFilterAllALUOps(t *testing.T) {
	// ((code + 1 - 1) | 0) ^ 0 stays code; (code * 1) stays code;
	// (code << 4) >> 4 stays code for 32-bit inputs; & 0xFFFFFFFF keeps it.
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			MovRR(isa.R3, isa.R1).
			AddRI(isa.R3, 1).
			SubRI(isa.R3, 1).
			OrRI(isa.R3, 0).
			XorRI(isa.R3, 0).
			MulRI(isa.R3, 1).
			ShlRI(isa.R3, 4).
			ShrRI(isa.R3, 4).
			MovRI(isa.R4, 0xFFFFFFFF).
			AndRR(isa.R3, isa.R4).
			MovRI(isa.R5, uint64(vm.ExcAccessViolation)).
			CmpRR(isa.R3, isa.R5).
			Jz("y").
			MovRI(isa.R0, 0).
			Ret().
			Label("y").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts", rep.Verdict)
	}
}

// TestFilterRegisterPairOps exercises register-register ALU, NOT/NEG and
// the signed/unsigned conditional family.
func TestFilterRegisterPairOps(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		// Accept when code-5 signed-less-than AV-4 and code signed-
		// greater than 0x1000 — i.e. 0x1000 < code < AV+1: AV qualifies.
		b.Func("f").
			MovRR(isa.R3, isa.R1).
			MovRI(isa.R4, 5).
			SubRR(isa.R3, isa.R4).
			MovRI(isa.R5, uint64(vm.ExcAccessViolation)-4).
			CmpRR(isa.R3, isa.R5).
			Jge("no").
			CmpRI(isa.R1, 0x1000).
			Jle("no").
			MovRI(isa.R0, 1).
			Ret().
			Label("no").
			MovRI(isa.R0, 0).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	// Signed compare: AV (0xC0000005) is NEGATIVE as int32 but positive
	// as int64; R1 is 64-bit so 0x1000 < 0xC0000005 signed holds.
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts (paths: %d)", rep.Verdict, len(rep.Paths))
	}
}

// TestFilterNotNeg covers the unary ops.
func TestFilterNotNeg(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		// ~(-code) == code - 1; accept when that equals AV-1.
		b.Func("f").
			MovRR(isa.R3, isa.R1).
			Neg(isa.R3).
			Not(isa.R3).
			MovRI(isa.R4, uint64(vm.ExcAccessViolation)-1).
			CmpRR(isa.R3, isa.R4).
			Jz("y").
			MovRI(isa.R0, 0).
			Ret().
			Label("y").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts", rep.Verdict)
	}
}

// TestFilterIndirectJumpConstantTarget covers jmpr with a concrete target.
func TestFilterIndirectJumpConstantTarget(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			LeaCode(isa.R5, "tail").
			JmpR(isa.R5).
			MovRI(isa.R0, 0). // skipped
			Ret().
			Label("tail").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts", rep.Verdict)
	}
}

// TestFilterIndirectCallSymbolicTargetEscapes covers callr on a symbolic
// register.
func TestFilterIndirectCallSymbolicTargetEscapes(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			CallR(isa.R9). // R9 is unconstrained
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictUnknown {
		t.Errorf("verdict = %v, want unknown", rep.Verdict)
	}
}

// TestFilterSyscallEscapes covers the syscall escape.
func TestFilterSyscallEscapes(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			Syscall().
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	if rep := NewExecutor(p).AnalyzeFilter(va("f")); rep.Verdict != VerdictUnknown {
		t.Errorf("verdict = %v, want unknown", rep.Verdict)
	}
}

// TestFilterDivEscapes covers the division escape.
func TestFilterDivEscapes(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			MovRI(isa.R3, 2).
			DivRR(isa.R1, isa.R3).
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	if rep := NewExecutor(p).AnalyzeFilter(va("f")); rep.Verdict != VerdictUnknown {
		t.Errorf("verdict = %v, want unknown", rep.Verdict)
	}
}

// TestFilterLoadFromSymbolicAddressEscapes: dereferencing the fault address
// is outside the executor's fragment.
func TestFilterLoadFromSymbolicAddressEscapes(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			Load(8, isa.R0, isa.R2, 0). // [fault address]
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	if rep := NewExecutor(p).AnalyzeFilter(va("f")); rep.Verdict != VerdictUnknown {
		t.Errorf("verdict = %v, want unknown", rep.Verdict)
	}
}

// TestFilterStoreToGlobalThenReload covers the store log round trip through
// all access widths.
func TestFilterStoreToGlobalThenReload(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			LeaData(isa.R4, "cell").
			Store(4, isa.R4, 0, isa.R1). // spill low 32 bits of code
			Load(4, isa.R5, isa.R4, 0).
			MovRI(isa.R3, uint64(vm.ExcAccessViolation)).
			CmpRR(isa.R5, isa.R3).
			Jz("y").
			MovRI(isa.R0, 0).
			Ret().
			Label("y").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.BSS("cell", 8)
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts (paths %+v)", rep.Verdict, len(rep.Paths))
	}
}

// TestFilterTestInstructionConditionals covers the TEST-flag conditional
// family in the lifter.
func TestFilterTestInstructionConditionals(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		// test code, 0x4: AV (0xC0000005) has bit 2 set → jnz taken.
		b.Func("f").
			TestRI(isa.R1, 0x4).
			Jnz("y").
			MovRI(isa.R0, 0).
			Ret().
			Label("y").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts", rep.Verdict)
	}

	// jl after test is never taken (L cleared); jge always taken.
	p2, va2 := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			TestRR(isa.R1, isa.R1).
			Jl("y"). // never
			MovRI(isa.R0, 0).
			Ret().
			Label("y").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	if rep := NewExecutor(p2).AnalyzeFilter(va2("f")); rep.Verdict != VerdictRejects {
		t.Errorf("jl-after-test verdict = %v, want rejects", rep.Verdict)
	}
}

// TestFilterPushPopRoundTrip covers stack opcode lifting.
func TestFilterPushPopRoundTrip(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			Push(isa.R1).
			MovRI(isa.R1, 0). // clobber
			Pop(isa.R1).      // restore
			MovRI(isa.R3, uint64(vm.ExcAccessViolation)).
			CmpRR(isa.R1, isa.R3).
			Jz("y").
			MovRI(isa.R0, 0).
			Ret().
			Label("y").
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	rep := NewExecutor(p).AnalyzeFilter(va("f"))
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts", rep.Verdict)
	}
}

// TestAnalyzeScopeWithFilter covers AnalyzeScope's non-catch-all branch.
func TestAnalyzeScopeWithFilter(t *testing.T) {
	p, _ := loadFilters(t, func(b *asm.Builder) {
		b.Func("g").Label("g0").Nop().Label("g1").Ret().EndFunc()
		b.Func("flt").MovRI(isa.R0, 1).Ret().EndFunc()
		b.Guard("g", "g0", "g1", "flt", "g1")
	})
	mod := p.Modules()[0]
	rep := NewExecutor(p).AnalyzeScope(mod, mod.Image.Scopes[0])
	if rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts", rep.Verdict)
	}
}

// TestFilterRaiseEscapes covers the raise escape.
func TestFilterRaiseEscapes(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			Raise(0xE0000001).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	if rep := NewExecutor(p).AnalyzeFilter(va("f")); rep.Verdict != VerdictUnknown {
		t.Errorf("verdict = %v, want unknown", rep.Verdict)
	}
}

// TestFilterYieldAndNop are transparent to the lifter.
func TestFilterYieldAndNop(t *testing.T) {
	p, va := loadFilters(t, func(b *asm.Builder) {
		b.Func("f").
			Nop().
			Yield().
			MovRI(isa.R0, 1).
			Ret().
			EndFunc()
		b.Export("f", "f")
	})
	if rep := NewExecutor(p).AnalyzeFilter(va("f")); rep.Verdict != VerdictAccepts {
		t.Errorf("verdict = %v, want accepts", rep.Verdict)
	}
}
