package sym

import (
	"fmt"
	"sync"

	"crashresist/internal/bin"
	"crashresist/internal/faultinject"
	"crashresist/internal/vm"
)

// Cache memoizes filter classifications across modules and executors.
//
// The 187-DLL corpus builds its exception filters from a handful of code
// idioms, so thousands of AnalyzeFilter calls collapse onto a few dozen
// distinct byte sequences. The cache keys on the filter's body bytes (via
// its function symbol) plus the accepting disposition, and replays the
// stored report with only the FilterVA rewritten for the new module.
//
// A cached verdict is only valid if the analysis was *pure*: a function of
// the body bytes alone. The executor tracks purity during the miss run and
// refuses to store a report whenever the analysis touched anything
// module-specific:
//
//   - instruction fetch outside the body (tail calls, fallthrough into a
//     neighbour, inlined cross-module calls);
//   - a concrete memory read outside the body (globals, import thunks,
//     loaded data — their values differ between images);
//   - OpCallI, which resolves through the module's import address table;
//   - OpLea, which materializes an absolute, module-base-dependent VA.
//
// Reads of the virtual stack and of path-local stores remain pure: they
// are synthesized by the executor, not read from the process image.
//
// A Cache is safe for concurrent use; worker executors in the parallel
// SEH pipeline share one. Two workers racing on the same body both run
// the analysis and store identical reports, so last-write-wins is benign.
type Cache struct {
	mu          sync.Mutex
	m           map[cacheKey]*Report
	hits        int
	misses      int
	uncacheable int
}

type cacheKey struct {
	disposition uint64
	body        string
}

// NewCache returns an empty filter-classification cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]*Report)}
}

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	// Hits counts analyses answered from the cache.
	Hits int
	// Misses counts analyses executed and stored.
	Misses int
	// Uncacheable counts analyses executed but not stored, either because
	// the filter has no sized function symbol or because the run was
	// impure (see type comment).
	Uncacheable int
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Uncacheable: c.uncacheable}
}

func (c *Cache) lookup(k cacheKey) (*Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, ok := c.m[k]
	if ok {
		c.hits++
	}
	return rep, ok
}

func (c *Cache) store(k cacheKey, rep *Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = rep
	c.misses++
}

func (c *Cache) markUncacheable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.uncacheable++
}

// TryAnalyzeFilterIn is AnalyzeFilterIn with fault injection: when the
// executor carries a plan, the sym.filter site may fail the analysis with a
// host-level error (keyed by module and filter offset, parameterized by the
// executor's FaultAttempt) before any execution happens. The discover
// pipeline's retry wrapper drives the attempt number; without a plan this
// is exactly AnalyzeFilterIn.
func (e *Executor) TryAnalyzeFilterIn(mod *bin.Module, off uint32) (Report, error) {
	if e.FaultPlan != nil {
		key := faultinject.Key(mod.Image.Name, "filter", fmt.Sprintf("%#x", off))
		if err := e.FaultPlan.ErrAttempt(faultinject.SiteSymFilter, key, e.FaultAttempt); err != nil {
			return Report{}, fmt.Errorf("symex %s filter %#x: %w", mod.Image.Name, off, err)
		}
	}
	return e.AnalyzeFilterIn(mod, off), nil
}

// AnalyzeFilterIn classifies the filter at flat offset off inside mod,
// answering from the attached cache when the filter body has been analyzed
// before. Without a cache it is equivalent to AnalyzeFilter(mod.VA(off)).
func (e *Executor) AnalyzeFilterIn(mod *bin.Module, off uint32) Report {
	e.lastPure = false
	if e.Cache == nil {
		return e.AnalyzeFilter(mod.VA(off))
	}
	body := filterBody(mod.Image, off)
	if body == nil {
		e.Cache.markUncacheable()
		return e.AnalyzeFilter(mod.VA(off))
	}
	key := cacheKey{disposition: vm.DispositionExecuteHandler, body: string(body)}
	va := mod.VA(off)
	if rep, ok := e.Cache.lookup(key); ok {
		e.lastPure = true
		out := *rep
		out.FilterVA = va
		return out
	}
	e.tracking = true
	e.trackLo = va
	e.trackHi = va + uint64(len(body))
	e.pure = true
	rep := e.analyze(va, vm.DispositionExecuteHandler)
	pure := e.pure
	e.tracking = false
	e.lastPure = pure
	if pure {
		stored := rep
		e.Cache.store(key, &stored)
	} else {
		e.Cache.markUncacheable()
	}
	return rep
}

// LastAnalysisPure reports whether the most recent AnalyzeFilterIn was pure:
// its verdict depended on the filter's body bytes alone, not on module
// placement, imports, or image data. Pure verdicts are position- and
// seed-independent, which is what licenses persisting them beyond the
// process (see internal/cas); an impure or symbol-less analysis poisons the
// module for persistence.
func (e *Executor) LastAnalysisPure() bool { return e.lastPure }

// filterBody extracts the byte range of the function symbol starting at
// off, or nil when no sized symbol starts exactly there.
func filterBody(img *bin.Image, off uint32) []byte {
	s, ok := img.SymbolAt(off)
	if !ok || s.Offset != off || s.Size == 0 {
		return nil
	}
	end := uint64(s.Offset) + uint64(s.Size)
	if end > uint64(len(img.Text)) {
		return nil
	}
	return img.Text[s.Offset:end]
}
