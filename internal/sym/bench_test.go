package sym

import (
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

// BenchmarkAnalyzeFilter measures one filter classification — the unit cost
// behind the 5,751-filter corpus sweep.
func BenchmarkAnalyzeFilter(b *testing.B) {
	bb := asm.NewBuilder("filters.dll", bin.KindLibrary)
	bb.Func("f").
		MovRI(isa.R3, 0xC0000000).
		CmpRR(isa.R1, isa.R3).
		Jb("no").
		MovRI(isa.R3, 0xD0000000).
		CmpRR(isa.R1, isa.R3).
		Jae("no").
		MovRI(isa.R0, 1).
		Ret().
		Label("no").
		MovRI(isa.R0, 0).
		Ret().
		EndFunc()
	bb.Export("f", "f")
	img, err := bb.Build()
	if err != nil {
		b.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 1})
	mod, err := p.LoadImage(img)
	if err != nil {
		b.Fatal(err)
	}
	va := mod.VA(img.Exports["f"])
	exec := NewExecutor(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := exec.AnalyzeFilter(va); rep.Verdict != VerdictAccepts {
			b.Fatal(rep.Verdict)
		}
	}
}
