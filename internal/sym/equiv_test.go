package sym

import (
	"fmt"
	"math/rand"
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

// TestSymbolicMatchesConcrete is the differential oracle for the whole
// filter-analysis stack (executor + solver): for randomly generated filter
// programs that depend only on the exception code, the symbolic verdict
// "accepts access violations" must coincide with concretely executing the
// filter with code = ACCESS_VIOLATION and observing its return value.
func TestSymbolicMatchesConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(20170625)) // DSN'17 conference date
	for trial := 0; trial < 120; trial++ {
		src := generateFilter(rng)
		img, err := buildFilterImage(t, src)
		if err != nil {
			t.Fatalf("trial %d: %v\nprogram: %+v", trial, err, src)
		}

		concrete := runConcrete(t, img)
		symbolic := runSymbolic(t, img)

		wantAccept := concrete == 1
		gotAccept := symbolic == VerdictAccepts
		if symbolic == VerdictUnknown {
			t.Fatalf("trial %d: symbolic unknown for code-only filter\nprogram: %+v", trial, src)
		}
		if wantAccept != gotAccept {
			t.Fatalf("trial %d: concrete(code=AV) returned %d but symbolic says %v\nprogram: %+v",
				trial, concrete, symbolic, src)
		}
	}
}

// filterStage is one decision of a generated filter.
type filterStage struct {
	// kind: 0 = plain compare, 1 = masked compare, 2 = shifted compare.
	kind int
	code uint64
	mask uint64
	jump string // jz, jnz, jb, jae
	// leaf is the disposition (0/1) returned if the branch is taken.
	leaf uint64
}

type filterProgram struct {
	stages   []filterStage
	fallback uint64
}

var interestingCodes = []uint64{
	uint64(vm.ExcAccessViolation),
	uint64(vm.ExcDivideByZero),
	uint64(vm.ExcIllegalInstruction),
	uint64(vm.ExcStackOverflow),
	0xE0001234, 0xC0000000, 0xD0000000, 0x80000001,
}

func generateFilter(rng *rand.Rand) filterProgram {
	jumps := []string{"jz", "jnz", "jb", "jae"}
	n := 1 + rng.Intn(4)
	p := filterProgram{fallback: uint64(rng.Intn(2))}
	for i := 0; i < n; i++ {
		p.stages = append(p.stages, filterStage{
			kind: rng.Intn(3),
			code: interestingCodes[rng.Intn(len(interestingCodes))],
			mask: []uint64{0xF0000000, 0xFFFF0000, 0xFF, 0xC0000005}[rng.Intn(4)],
			jump: jumps[rng.Intn(len(jumps))],
			leaf: uint64(rng.Intn(2)),
		})
	}
	return p
}

// buildFilterImage assembles the program plus a concrete-execution harness.
func buildFilterImage(t *testing.T, p filterProgram) (*bin.Image, error) {
	t.Helper()
	b := asm.NewBuilder("equiv.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		MovRI(isa.R1, uint64(vm.ExcAccessViolation)).
		MovRI(isa.R2, 0x12340000). // arbitrary fault address
		Call("filter").
		Halt().
		EndFunc()

	b.Func("filter")
	for i, st := range p.stages {
		leaf := fmt.Sprintf("leaf%d", i)
		switch st.kind {
		case 1: // masked compare
			b.MovRR(isa.R3, isa.R1).
				AndRI(isa.R3, int32(uint32(st.mask))).
				MovRI(isa.R4, st.code&st.mask).
				CmpRR(isa.R3, isa.R4)
		case 2: // shifted compare (severity class)
			b.MovRR(isa.R3, isa.R1).
				ShrRI(isa.R3, 30).
				CmpRI(isa.R3, int32(st.code&3))
		default:
			b.MovRI(isa.R3, st.code).
				CmpRR(isa.R1, isa.R3)
		}
		switch st.jump {
		case "jz":
			b.Jz(leaf)
		case "jnz":
			b.Jnz(leaf)
		case "jb":
			b.Jb(leaf)
		default:
			b.Jae(leaf)
		}
	}
	b.MovRI(isa.R0, p.fallback).Ret()
	for i, st := range p.stages {
		b.Label(fmt.Sprintf("leaf%d", i)).
			MovRI(isa.R0, st.leaf).
			Ret()
	}
	b.EndFunc()
	b.Export("filter", "filter")
	return b.Build()
}

func runConcrete(t *testing.T, img *bin.Image) uint64 {
	t.Helper()
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 9})
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	res := p.RunUntilIdle(1_000_000)
	if res.State != vm.ProcExited {
		t.Fatalf("concrete run state = %v crash=%v", res.State, p.Crash)
	}
	return p.ExitCode
}

func runSymbolic(t *testing.T, img *bin.Image) Verdict {
	t.Helper()
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 9})
	mod, err := p.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	return NewExecutor(p).AnalyzeFilter(mod.VA(img.Exports["filter"])).Verdict
}
