// Package cas is a disk-backed, content-addressed store for analysis
// results. The discovery pipelines derive every verdict deterministically
// from target bytes plus a seed, so a result keyed by a content hash of its
// inputs can be replayed from disk on any later run: a warm run is
// byte-identical to a cold run, only faster. A changed byte anywhere in the
// hashed inputs changes the key and invalidates exactly that unit.
//
// The cache is strictly an accelerator, never an authority:
//
//   - A nil *Cache is a valid receiver for every method and behaves as an
//     always-miss store, so pipelines thread an optional cache with no
//     branching at call sites.
//   - Every miss, checksum mismatch, torn or truncated entry, and I/O
//     error degrades to recompute. No cache failure is ever surfaced to a
//     pipeline as an analysis error.
//   - Entries are validated on read: magic, format version, the stored key
//     hash (catches files renamed across keys), and a payload checksum
//     (catches bit rot and truncation). Anything that fails validation is
//     counted as a bad entry and treated as a miss; the subsequent Put
//     atomically replaces the damaged file.
//
// On disk an entry lives at dir/family/kk/<keyhex>.cce, where kk is the
// first byte of the key hex — a 256-way fanout that keeps directories small
// at corpus scale. Writers publish with create-temp + rename in the shard
// directory, so concurrent writers and readers (including separate
// processes sharing one cache dir) never observe torn entries: a reader
// sees either the complete old bytes, the complete new bytes, or no file.
package cas

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"sync/atomic"

	"crashresist/internal/faultinject"
)

// Key is the 32-byte content hash addressing one cache entry.
type Key [32]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// bits folds the key into the 64-bit space fault-injection plans key on.
func (k Key) bits() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Hasher accumulates the inputs that define a cache key. Every part is
// written length-prefixed, so ("ab","c") and ("a","bc") hash differently;
// the schema string seeds the hash so distinct key families (or format
// revisions of one family) can never collide.
type Hasher struct {
	h   hash.Hash
	buf [10]byte
}

// NewHasher starts a key over the given schema identifier (by convention
// "family/vN" — bump N whenever the payload format or the semantics of the
// cached computation change).
func NewHasher(schema string) *Hasher {
	h := &Hasher{h: sha256.New()}
	return h.Bytes([]byte(schema))
}

// Bytes appends a length-prefixed byte part.
func (h *Hasher) Bytes(b []byte) *Hasher {
	n := binary.PutUvarint(h.buf[:], uint64(len(b)))
	h.h.Write(h.buf[:n])
	h.h.Write(b)
	return h
}

// String appends a length-prefixed string part.
func (h *Hasher) String(s string) *Hasher { return h.Bytes([]byte(s)) }

// Uint64 appends a fixed-width integer part.
func (h *Hasher) Uint64(v uint64) *Hasher {
	binary.BigEndian.PutUint64(h.buf[:8], v)
	h.h.Write(h.buf[:8])
	return h
}

// Int64 appends a signed integer part.
func (h *Hasher) Int64(v int64) *Hasher { return h.Uint64(uint64(v)) }

// Int appends an int part.
func (h *Hasher) Int(v int) *Hasher { return h.Int64(int64(v)) }

// Bool appends a boolean part.
func (h *Hasher) Bool(v bool) *Hasher {
	if v {
		return h.Uint64(1)
	}
	return h.Uint64(0)
}

// Key finalizes the accumulated parts into a Key.
func (h *Hasher) Key() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// Entry wire format, all integers big-endian:
//
//	offset  size  field
//	0       4     magic "CRC1"
//	4       2     format version (1)
//	6       32    key hash — must match the key the entry is read under
//	38      32    sha256 of the payload
//	70      8     payload length
//	78      n     payload (JSON)
const (
	entryMagic   = "CRC1"
	entryVersion = 1
	headerSize   = 4 + 2 + 32 + 32 + 8
)

// entrySuffix names published entries; temp files use a distinct prefix so
// a crashed writer's leftovers are never mistaken for entries.
const entrySuffix = ".cce"

// EncodeEntry frames a payload into the versioned on-disk entry format.
func EncodeEntry(key Key, payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	copy(out[0:4], entryMagic)
	binary.BigEndian.PutUint16(out[4:6], entryVersion)
	copy(out[6:38], key[:])
	sum := sha256.Sum256(payload)
	copy(out[38:70], sum[:])
	binary.BigEndian.PutUint64(out[70:78], uint64(len(payload)))
	copy(out[headerSize:], payload)
	return out
}

// Decode errors. All of them mean "treat as a miss"; they are distinguished
// only for tests and diagnostics.
var (
	ErrTruncated   = errors.New("cas: entry truncated")
	ErrBadMagic    = errors.New("cas: bad entry magic")
	ErrBadVersion  = errors.New("cas: unsupported entry version")
	ErrKeyMismatch = errors.New("cas: entry key mismatch")
	ErrBadChecksum = errors.New("cas: payload checksum mismatch")
)

// DecodeEntry validates an entry's framing and checksum and returns the
// stored key and payload. It never panics on arbitrary input (see
// FuzzCacheEntryDecode) and fails closed: any malformed byte yields an
// error, which callers treat as a cache miss.
func DecodeEntry(data []byte) (Key, []byte, error) {
	var key Key
	if len(data) < headerSize {
		return key, nil, ErrTruncated
	}
	if string(data[0:4]) != entryMagic {
		return key, nil, ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != entryVersion {
		return key, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	copy(key[:], data[6:38])
	plen := binary.BigEndian.Uint64(data[70:78])
	if plen != uint64(len(data)-headerSize) {
		return key, nil, ErrTruncated
	}
	payload := data[headerSize:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[38:70]) {
		return key, nil, ErrBadChecksum
	}
	return key, payload, nil
}

// Stats are a cache's lifetime counters.
type Stats struct {
	// Hits counts Gets served from a validated on-disk entry.
	Hits uint64
	// Misses counts Gets that degraded to recompute for any reason:
	// absent entry, I/O error, failed validation, or an injected fault.
	Misses uint64
	// BadEntries counts present entries that failed validation (torn,
	// truncated, corrupted, or written under a different key).
	BadEntries uint64
	// Bytes counts entry bytes transferred: read on hits plus written on
	// successful puts.
	Bytes uint64
}

// Cache is one content-addressed store rooted at a directory. It is safe
// for concurrent use by any number of goroutines, and a directory may be
// shared by multiple Cache instances (including in other processes). The
// zero value of *Cache — nil — is a valid always-miss cache.
type Cache struct {
	dir  string
	plan *faultinject.Plan

	hits   atomic.Uint64
	misses atomic.Uint64
	bad    atomic.Uint64
	bytes  atomic.Uint64
}

// Open roots a cache at dir, creating it if needed, and verifies the
// directory is writable (so callers can warn once and run uncached instead
// of failing on every Put).
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".cas-probe-*")
	if err != nil {
		return nil, fmt.Errorf("cas: dir not writable: %w", err)
	}
	name := probe.Name()
	probe.Close()
	os.Remove(name)
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// SetFaultPlan attaches a fault-injection plan exercising the cas.read and
// cas.write sites: a read fault degrades the Get to a miss, a write fault
// drops the Put. Configure before sharing the cache across goroutines.
func (c *Cache) SetFaultPlan(p *faultinject.Plan) {
	if c != nil {
		c.plan = p
	}
}

// Stats snapshots the lifetime counters. Nil-safe.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		BadEntries: c.bad.Load(),
		Bytes:      c.bytes.Load(),
	}
}

// GetResult describes one Get for callers mirroring cache traffic into
// per-run metrics.
type GetResult struct {
	// Hit reports whether out was populated from a validated entry.
	Hit bool
	// Bad reports that an entry was present but failed validation.
	Bad bool
	// Bytes is the entry size read on a hit.
	Bytes uint64
}

// PutResult describes one Put.
type PutResult struct {
	// Stored reports whether the entry was published.
	Stored bool
	// Bytes is the entry size written.
	Bytes uint64
}

// EntryPath returns where the entry for (family, key) lives on disk. The
// family must be a path-safe label (letters, digits, dashes).
func (c *Cache) EntryPath(family string, key Key) string {
	name := key.String()
	return filepath.Join(c.dir, family, name[:2], name+entrySuffix)
}

// Get looks up (family, key) and, on a validated hit, unmarshals the JSON
// payload into out. Every failure path — nil cache, injected fault, absent
// file, I/O error, framing or checksum mismatch, unmarshalable payload —
// returns Hit=false so the caller recomputes.
func (c *Cache) Get(family string, key Key, out any) GetResult {
	if c == nil {
		return GetResult{}
	}
	if c.plan.Should(faultinject.SiteCASRead, key.bits()^faultinject.Key(family)) {
		c.misses.Add(1)
		return GetResult{}
	}
	data, err := os.ReadFile(c.EntryPath(family, key))
	if err != nil {
		c.misses.Add(1)
		return GetResult{}
	}
	storedKey, payload, err := DecodeEntry(data)
	if err == nil && storedKey != key {
		err = ErrKeyMismatch
	}
	if err == nil {
		err = json.Unmarshal(payload, out)
	}
	if err != nil {
		c.bad.Add(1)
		c.misses.Add(1)
		return GetResult{Bad: true}
	}
	c.hits.Add(1)
	c.bytes.Add(uint64(len(data)))
	return GetResult{Hit: true, Bytes: uint64(len(data))}
}

// Put publishes v as the entry for (family, key), atomically replacing any
// existing (possibly damaged) entry. Failures are silent by design: the
// cache degrades to recompute-next-time rather than failing the analysis.
func (c *Cache) Put(family string, key Key, v any) PutResult {
	if c == nil {
		return PutResult{}
	}
	if c.plan.Should(faultinject.SiteCASWrite, key.bits()^faultinject.Key(family)) {
		return PutResult{}
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return PutResult{}
	}
	data := EncodeEntry(key, payload)
	final := c.EntryPath(family, key)
	shard := filepath.Dir(final)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return PutResult{}
	}
	// Publish via create-temp + rename: the entry appears in one atomic
	// step, so concurrent readers never see a partial write and racing
	// writers of the same key each publish a complete entry (last one
	// wins; for content-addressed entries both are identical anyway).
	tmp, err := os.CreateTemp(shard, ".tmp-*")
	if err != nil {
		return PutResult{}
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return PutResult{}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return PutResult{}
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return PutResult{}
	}
	c.bytes.Add(uint64(len(data)))
	return PutResult{Stored: true, Bytes: uint64(len(data))}
}
