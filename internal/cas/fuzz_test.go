package cas

import (
	"bytes"
	"testing"
)

// FuzzCacheEntryDecode drives DecodeEntry with arbitrary bytes. The decoder
// guards every Get, so it must never panic, and whenever it does accept an
// input the accepted (key, payload) must re-encode to exactly the input —
// i.e. the only decodable bytes are genuine encoder output.
func FuzzCacheEntryDecode(f *testing.F) {
	key := NewHasher("fuzz/v1").String("seed").Key()
	f.Add([]byte{})
	f.Add([]byte(entryMagic))
	f.Add(EncodeEntry(key, nil))
	f.Add(EncodeEntry(key, []byte(`{"name":"mmap","count":7}`)))
	long := EncodeEntry(key, bytes.Repeat([]byte{0xa5}, 300))
	f.Add(long)
	f.Add(long[:headerSize])
	f.Add(append(append([]byte(nil), long...), 1, 2, 3))

	f.Fuzz(func(t *testing.T, data []byte) {
		gotKey, payload, err := DecodeEntry(data)
		if err != nil {
			return
		}
		// Accepted input must round-trip: DecodeEntry∘EncodeEntry = id.
		if !bytes.Equal(EncodeEntry(gotKey, payload), data) {
			t.Fatalf("accepted entry does not re-encode to itself (len %d)", len(data))
		}
	})
}
