package cas

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"crashresist/internal/faultinject"
)

type payload struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func testKey(parts ...string) Key {
	h := NewHasher("test/v1")
	for _, p := range parts {
		h.String(p)
	}
	return h.Key()
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("roundtrip")
	in := payload{Name: "mmap", Count: 7}

	var miss payload
	if res := c.Get("fam", key, &miss); res.Hit || res.Bad {
		t.Fatalf("Get before Put = %+v, want miss", res)
	}
	pr := c.Put("fam", key, in)
	if !pr.Stored || pr.Bytes == 0 {
		t.Fatalf("Put = %+v, want stored with bytes", pr)
	}
	var out payload
	res := c.Get("fam", key, &out)
	if !res.Hit || res.Bad {
		t.Fatalf("Get after Put = %+v, want hit", res)
	}
	if out != in {
		t.Errorf("round trip got %+v, want %+v", out, in)
	}
	if res.Bytes != pr.Bytes {
		t.Errorf("read %d bytes, wrote %d", res.Bytes, pr.Bytes)
	}

	st := c.Stats()
	want := Stats{Hits: 1, Misses: 1, BadEntries: 0, Bytes: pr.Bytes * 2}
	if st != want {
		t.Errorf("Stats = %+v, want %+v", st, want)
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	key := testKey("nil")
	var out payload
	if res := c.Get("fam", key, &out); res.Hit || res.Bad || res.Bytes != 0 {
		t.Errorf("nil Get = %+v", res)
	}
	if res := c.Put("fam", key, payload{}); res.Stored || res.Bytes != 0 {
		t.Errorf("nil Put = %+v", res)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil Stats = %+v", st)
	}
	if c.Dir() != "" {
		t.Errorf("nil Dir = %q", c.Dir())
	}
	c.SetFaultPlan(faultinject.Default(1)) // must not panic
}

func TestEntryPathSharding(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("shard")
	p := c.EntryPath("fam", key)
	hexName := key.String()
	wantRel := filepath.Join("fam", hexName[:2], hexName+".cce")
	if !strings.HasSuffix(p, wantRel) {
		t.Errorf("EntryPath = %q, want suffix %q", p, wantRel)
	}
	if !strings.HasPrefix(p, c.Dir()) {
		t.Errorf("EntryPath %q not under Dir %q", p, c.Dir())
	}
	c.Put("fam", key, payload{Name: "x"})
	if _, err := os.Stat(p); err != nil {
		t.Errorf("entry not at EntryPath: %v", err)
	}
}

func TestOpenRejectsUnwritableDir(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("running as root; permission bits are not enforced")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if _, err := Open(filepath.Join(dir, "cache")); err == nil {
		t.Error("Open under read-only parent should fail")
	}
}

func TestOpenReusesExistingDir(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("reuse")
	c1.Put("fam", key, payload{Name: "persisted", Count: 3})

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if res := c2.Get("fam", key, &out); !res.Hit {
		t.Fatalf("second Open does not see first instance's entry: %+v", res)
	}
	if out.Name != "persisted" || out.Count != 3 {
		t.Errorf("got %+v", out)
	}
}

func TestHasherBoundariesAndOrder(t *testing.T) {
	if testKey("ab", "c") == testKey("a", "bc") {
		t.Error("Hasher collides across part boundaries")
	}
	if testKey("a", "b") == testKey("b", "a") {
		t.Error("Hasher ignores part order")
	}
	if testKey("x") == testKey("x", "") {
		t.Error("Hasher ignores empty trailing part")
	}
	if NewHasher("fam/v1").Key() == NewHasher("fam/v2").Key() {
		t.Error("Hasher ignores schema")
	}
	if NewHasher("s").Uint64(1).Key() == NewHasher("s").Uint64(2).Key() {
		t.Error("Uint64 not hashed")
	}
	if NewHasher("s").Bool(true).Key() == NewHasher("s").Bool(false).Key() {
		t.Error("Bool not hashed")
	}
	if NewHasher("s").Int(-1).Key() == NewHasher("s").Int(1).Key() {
		t.Error("Int sign lost")
	}
	sub := NewHasher("inner").Key()
	if NewHasher("s").Bytes(sub[:]).Key() == NewHasher("s").Key() {
		t.Error("nested key part not hashed")
	}
}

func TestDecodeEntryErrors(t *testing.T) {
	key := testKey("decode")
	good := EncodeEntry(key, []byte(`{"ok":true}`))

	gotKey, payload, err := DecodeEntry(good)
	if err != nil || gotKey != key || string(payload) != `{"ok":true}` {
		t.Fatalf("DecodeEntry(good) = %x, %q, %v", gotKey, payload, err)
	}

	for name, tc := range map[string]struct {
		mutate func([]byte) []byte
		want   error
	}{
		"empty":          {func(b []byte) []byte { return nil }, ErrTruncated},
		"short header":   {func(b []byte) []byte { return b[:headerSize-1] }, ErrTruncated},
		"cut payload":    {func(b []byte) []byte { return b[:len(b)-1] }, ErrTruncated},
		"extra tail":     {func(b []byte) []byte { return append(b, 0) }, ErrTruncated},
		"bad magic":      {func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrBadMagic},
		"bad version":    {func(b []byte) []byte { b[5] = 99; return b }, ErrBadVersion},
		"flipped sum":    {func(b []byte) []byte { b[38] ^= 1; return b }, ErrBadChecksum},
		"flipped body":   {func(b []byte) []byte { b[headerSize] ^= 1; return b }, ErrBadChecksum},
		"length too big": {func(b []byte) []byte { b[77] += 1; return b }, ErrTruncated},
	} {
		data := tc.mutate(append([]byte(nil), good...))
		if _, _, err := DecodeEntry(data); err == nil {
			t.Errorf("%s: decoded successfully, want %v", name, tc.want)
		}
	}
}

// TestEveryBitFlipIsDetected is the corruption property test: flipping any
// single bit of a published entry must either be caught by framing
// validation or change the stored key (caught by Get's key comparison).
// Either way a warm Get must degrade to a miss, count the damage, and let
// the subsequent Put repair the file — without ever returning wrong data.
func TestEveryBitFlipIsDetected(t *testing.T) {
	key := testKey("bitflip")
	good := EncodeEntry(key, []byte(`{"name":"probe","count":11}`))
	for byteIdx := 0; byteIdx < len(good); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			data := append([]byte(nil), good...)
			data[byteIdx] ^= 1 << bit
			storedKey, _, err := DecodeEntry(data)
			if err == nil && storedKey == key {
				t.Fatalf("flip of byte %d bit %d undetected", byteIdx, bit)
			}
		}
	}
}

// TestCorruptionDegradesAndRepairs covers the full Get path over damaged
// files: every corruption style is counted as a bad entry plus a miss, the
// caller's recompute-and-Put rewrites the file, and the next Get hits.
func TestCorruptionDegradesAndRepairs(t *testing.T) {
	in := payload{Name: "victim", Count: 5}
	for name, corrupt := range map[string]func(string) error{
		"bit flip": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 0x40
			return os.WriteFile(path, data, 0o644)
		},
		"truncate": func(path string) error {
			return os.Truncate(path, int64(headerSize/2))
		},
		"zero fill": func(path string) error {
			st, err := os.Stat(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, make([]byte, st.Size()), 0o644)
		},
		"wrong key": func(path string) error {
			// A valid entry written under a different key: framing is
			// intact, so only the stored-key check can catch it.
			return os.WriteFile(path, EncodeEntry(testKey("other"), []byte(`{}`)), 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			c, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := testKey("corrupt", name)
			c.Put("fam", key, in)
			if err := corrupt(c.EntryPath("fam", key)); err != nil {
				t.Fatal(err)
			}

			var out payload
			res := c.Get("fam", key, &out)
			if res.Hit {
				t.Fatalf("corrupted entry served as a hit: %+v", out)
			}
			if !res.Bad {
				t.Errorf("corruption not counted as bad entry (res = %+v)", res)
			}
			if st := c.Stats(); st.BadEntries != 1 || st.Misses != 1 {
				t.Errorf("Stats = %+v, want 1 bad, 1 miss", st)
			}

			// The recompute path rewrites the entry atomically...
			if pr := c.Put("fam", key, in); !pr.Stored {
				t.Fatalf("repair Put = %+v", pr)
			}
			// ...and the cache is healthy again.
			out = payload{}
			if res := c.Get("fam", key, &out); !res.Hit || out != in {
				t.Errorf("after repair: res=%+v out=%+v", res, out)
			}
		})
	}
}

func TestGetIgnoresForeignJSONShape(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("shape")
	// Valid framing around a payload that cannot unmarshal into the target
	// type: must degrade to a bad-entry miss, not a partial fill.
	data := EncodeEntry(key, []byte(`[1,2,3]`))
	path := c.EntryPath("fam", key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if res := c.Get("fam", key, &out); res.Hit || !res.Bad {
		t.Errorf("mis-shaped payload: res = %+v", res)
	}
}

func TestFaultPlanDegradesReadsAndWrites(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("faulty")
	c.Put("fam", key, payload{Name: "ok"})

	always := faultinject.New(3).
		Enable(faultinject.SiteCASRead, faultinject.SiteConfig{Rate: 1, Mode: faultinject.ModePermanent}).
		Enable(faultinject.SiteCASWrite, faultinject.SiteConfig{Rate: 1, Mode: faultinject.ModePermanent})
	c.SetFaultPlan(always)

	var out payload
	if res := c.Get("fam", key, &out); res.Hit || res.Bad {
		t.Errorf("read fault should be a plain miss: %+v", res)
	}
	key2 := testKey("faulty2")
	if res := c.Put("fam", key2, payload{}); res.Stored {
		t.Error("write fault should drop the Put")
	}

	c.SetFaultPlan(nil)
	if res := c.Get("fam", key, &out); !res.Hit {
		t.Errorf("entry should survive injected read faults: %+v", res)
	}
	if _, err := os.Stat(c.EntryPath("fam", key2)); !os.IsNotExist(err) {
		t.Error("dropped Put left a file behind")
	}
}

// TestConcurrentWritersAndReaders is the -race stress test: two Cache
// instances over one directory (two processes' worth of state) with many
// goroutines hammering the same and disjoint keys. Every Get must be either
// a clean hit with intact data or a clean miss — a torn read would surface
// as a bad entry or wrong payload.
func TestConcurrentWritersAndReaders(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		iterations = 200
		sharedKeys = 4
	)
	var wg sync.WaitGroup
	errc := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			caches := [2]*Cache{a, b}
			for i := 0; i < iterations; i++ {
				c := caches[(g+i)%2]
				// Alternate between keys contended by every goroutine and
				// keys owned by this goroutine alone.
				var name string
				if i%2 == 0 {
					name = "shared" + string(rune('0'+i%sharedKeys))
				} else {
					name = "own" + string(rune('0'+g))
				}
				key := testKey(name)
				want := payload{Name: name, Count: len(name)}
				c.Put("stress", key, want)
				var got payload
				res := c.Get("stress", key, &got)
				if res.Bad {
					errc <- "bad entry under concurrent publish: " + name
					return
				}
				if res.Hit && got != want {
					errc <- "torn or foreign payload for " + name
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Error(msg)
	}
	if st := a.Stats(); st.BadEntries != 0 {
		t.Errorf("cache a saw %d bad entries", st.BadEntries)
	}
	if st := b.Stats(); st.BadEntries != 0 {
		t.Errorf("cache b saw %d bad entries", st.BadEntries)
	}
	// No temp-file litter: a crashed rename path would leave .tmp-* files.
	var leftovers []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			leftovers = append(leftovers, path)
		}
		return nil
	})
	if len(leftovers) > 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}
