package fuzz

import (
	"testing"

	"crashresist/internal/winapi"
)

func smallRegistry(t *testing.T) *winapi.Registry {
	t.Helper()
	r := winapi.NewRegistry()
	r.Register(winapi.Descriptor{Name: "Pure", NArgs: 2, Cat: winapi.CatNoPointer})
	r.Register(winapi.Descriptor{Name: "Graceful1", NArgs: 2, PtrArgs: []int{0}, Cat: winapi.CatKernelValidated})
	r.Register(winapi.Descriptor{Name: "Graceful2", NArgs: 3, PtrArgs: []int{1}, Cat: winapi.CatQueryStruct, Writes: true})
	r.Register(winapi.Descriptor{Name: "Crashy1", NArgs: 2, PtrArgs: []int{0}, Cat: winapi.CatUserDeref})
	r.Register(winapi.Descriptor{Name: "Crashy2", NArgs: 2, PtrArgs: []int{0, 1}, Cat: winapi.CatUserDeref, Writes: true})
	return r
}

func TestFuzzOneGraceful(t *testing.T) {
	r := smallRegistry(t)
	d, _ := r.Lookup("Graceful1")
	f := New(r, 5)
	res, err := f.FuzzOne(d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CrashResistant {
		t.Errorf("Graceful1 should be crash resistant: %+v", res.Probes)
	}
	if len(res.Probes) != len(InvalidPointers) {
		t.Errorf("probes = %d, want %d", len(res.Probes), len(InvalidPointers))
	}
	for _, pr := range res.Probes {
		if pr.Outcome != OutcomeGraceful {
			t.Errorf("probe %#x outcome = %v", pr.Pointer, pr.Outcome)
		}
		if pr.Ret != winapi.ErrInvalidPointer {
			t.Errorf("probe %#x ret = %d, want error status", pr.Pointer, pr.Ret)
		}
	}
}

func TestFuzzOneCrashy(t *testing.T) {
	r := smallRegistry(t)
	d, _ := r.Lookup("Crashy1")
	f := New(r, 5)
	res, err := f.FuzzOne(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.CrashResistant {
		t.Errorf("Crashy1 must not be crash resistant: %+v", res.Probes)
	}
	crashes := 0
	for _, pr := range res.Probes {
		if pr.Outcome == OutcomeCrash {
			crashes++
		}
	}
	if crashes == 0 {
		t.Error("no probe crashed")
	}
}

func TestFuzzAllSummary(t *testing.T) {
	r := smallRegistry(t)
	f := New(r, 5)
	sum, err := f.FuzzAll()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 5 {
		t.Errorf("Total = %d", sum.Total)
	}
	if sum.WithPointer != 4 {
		t.Errorf("WithPointer = %d", sum.WithPointer)
	}
	if sum.CrashResistant != 2 {
		t.Errorf("CrashResistant = %d, want 2", sum.CrashResistant)
	}
	if len(sum.Results) != 4 {
		t.Errorf("Results = %d", len(sum.Results))
	}
}

func TestFuzzAllOnGeneratedCorpusSample(t *testing.T) {
	// A scaled-down corpus with the paper's proportions: the fuzzer must
	// rediscover exactly the generated crash-resistant count, black-box.
	reg, err := winapi.GenerateCorpus(winapi.CorpusParams{
		Seed:             99,
		Total:            200,
		WithPointer:      120,
		CrashResistant:   9,
		QueryStructShare: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := New(reg, 6)
	sum, err := f.FuzzAll()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 200 || sum.WithPointer != 120 {
		t.Errorf("funnel head = %d/%d", sum.Total, sum.WithPointer)
	}
	if sum.CrashResistant != 9 {
		t.Errorf("CrashResistant = %d, want 9 (black-box rediscovery)", sum.CrashResistant)
	}
	// Cross-check against the generator's hidden categories.
	for _, res := range sum.Results {
		d, ok := reg.ByID(res.ID)
		if !ok {
			t.Fatalf("unknown id %d", res.ID)
		}
		wantResistant := d.Cat == winapi.CatKernelValidated || d.Cat == winapi.CatQueryStruct
		if res.CrashResistant != wantResistant {
			t.Errorf("%s (%v): fuzzer says resistant=%v", d.Name, d.Cat, res.CrashResistant)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeGraceful.String() != "graceful" || OutcomeCrash.String() != "crash" || Outcome(9).String() != "outcome?" {
		t.Error("outcome strings wrong")
	}
}
