// Package fuzz implements the black-box Windows-API fuzzer of §IV-B/§V-B:
// it calls every API function that takes a pointer argument (per its
// documented signature) with a battery of invalid pointers and classifies
// the function as crash-resistant when every probe returns gracefully
// instead of faulting.
//
// The fuzzer knows only each function's documented signature (argument
// count and which arguments are pointers — the MSDN-derived information the
// paper used); it never consults the generator's behaviour category. Each
// probe runs in a fresh single-shot harness process so a crash cannot
// poison subsequent probes.
package fuzz

import (
	"fmt"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/faultinject"
	"crashresist/internal/vm"
	"crashresist/internal/winapi"
)

// InvalidPointers is the probe battery: NULL, unmapped low, unmapped high,
// and a kernel-space-looking address.
var InvalidPointers = []uint64{
	0,
	0x00000000dead0000,
	0x00007ffffff00000,
	0xffff800000000000,
}

// Outcome classifies one probe.
type Outcome uint8

// Probe outcomes.
const (
	OutcomeGraceful Outcome = iota + 1 // returned, process alive
	OutcomeCrash                       // process died on the probe
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeGraceful:
		return "graceful"
	case OutcomeCrash:
		return "crash"
	default:
		return "outcome?"
	}
}

// Probe is one invalid-pointer invocation result.
type Probe struct {
	Pointer uint64
	Outcome Outcome
	// Ret is the API return value for graceful probes.
	Ret uint64
	// Instructions counts the instructions the probe's harness process
	// retired — the probe's exact virtual cost, attributable per pointer
	// by the cost profiler. Per-probe costs sum to the FuncResult's Stats.
	Instructions uint64
}

// FuncResult is the fuzzing result for one API function.
type FuncResult struct {
	Name string
	ID   uint32
	// CrashResistant: every invalid-pointer probe returned gracefully.
	CrashResistant bool
	Probes         []Probe
	// Stats sums the harness processes' VM counters across all probes.
	Stats vm.Stats
}

// Summary aggregates a corpus-wide fuzzing campaign — the first three
// stages of the paper's §V-B funnel.
type Summary struct {
	Total          int // functions in the corpus
	WithPointer    int // functions with ≥1 documented pointer argument
	CrashResistant int // functions surviving the whole battery
	Results        []FuncResult
}

// Fuzzer drives probe campaigns against an API registry.
type Fuzzer struct {
	reg  *winapi.Registry
	seed int64

	// FaultPlan, when non-nil, is attached to every harness process so
	// chaos runs exercise the fuzzer's crash/graceful classification under
	// injected VM faults. Probes stay deterministic: injection is keyed by
	// the harness's virtual clock, which restarts from zero per probe.
	FaultPlan *faultinject.Plan
}

// New creates a fuzzer over the registry. The seed feeds harness-process
// ASLR only.
func New(reg *winapi.Registry, seed int64) *Fuzzer {
	return &Fuzzer{reg: reg, seed: seed}
}

// FuzzAll probes every pointer-taking function in the registry.
func (f *Fuzzer) FuzzAll() (Summary, error) {
	sum := Summary{Total: f.reg.Len()}
	for _, d := range f.reg.All() {
		if !d.HasPointerArg() {
			continue
		}
		sum.WithPointer++
		res, err := f.FuzzOne(d)
		if err != nil {
			return Summary{}, fmt.Errorf("fuzz %s: %w", d.Name, err)
		}
		if res.CrashResistant {
			sum.CrashResistant++
		}
		sum.Results = append(sum.Results, res)
	}
	return sum, nil
}

// FuzzOne runs the invalid-pointer battery against one function.
func (f *Fuzzer) FuzzOne(d *winapi.Descriptor) (FuncResult, error) {
	img, err := harnessImage(d)
	if err != nil {
		return FuncResult{}, err
	}
	res := FuncResult{Name: d.Name, ID: d.ID, CrashResistant: true}
	for _, ptr := range InvalidPointers {
		outcome, ret, stats, err := f.runProbe(img, d, ptr)
		if err != nil {
			return FuncResult{}, err
		}
		res.Stats.Add(stats)
		res.Probes = append(res.Probes, Probe{Pointer: ptr, Outcome: outcome, Ret: ret, Instructions: stats.Instructions})
		if outcome != OutcomeGraceful {
			res.CrashResistant = false
		}
	}
	return res, nil
}

// runProbe executes one harness run with the probe pointer in every
// documented pointer-argument slot.
func (f *Fuzzer) runProbe(img *bin.Image, d *winapi.Descriptor, ptr uint64) (Outcome, uint64, vm.Stats, error) {
	p := vm.NewProcess(vm.Config{
		Platform:  vm.PlatformWindows,
		Seed:      f.seed,
		StackSize: 16 * 1024,
		FaultPlan: f.FaultPlan,
	})
	p.API = f.reg
	if _, err := p.LoadImage(img); err != nil {
		return 0, 0, vm.Stats{}, err
	}

	args := make([]uint64, 5)
	isPtr := make(map[int]bool, len(d.PtrArgs))
	for _, ai := range d.PtrArgs {
		isPtr[ai] = true
	}
	for i := 0; i < 5; i++ {
		if isPtr[i] {
			args[i] = ptr
		} else {
			args[i] = 1
		}
	}
	if _, err := p.Start(args...); err != nil {
		return 0, 0, vm.Stats{}, err
	}
	p.RunUntilIdle(100_000)
	switch p.State {
	case vm.ProcExited:
		return OutcomeGraceful, p.ExitCode, p.Stats, nil
	default:
		return OutcomeCrash, 0, p.Stats, nil
	}
}

// harnessImage builds the one-shot caller: the five argument registers are
// seeded by Start, the import is the function under test, and the return
// value becomes the exit code.
func harnessImage(d *winapi.Descriptor) (*bin.Image, error) {
	b := asm.NewBuilder("fuzz-harness.exe", bin.KindExecutable)
	// R0 holds the API return value at HALT, becoming the exit code.
	b.Func("main").Entry("main").
		CallImport("", d.Name).
		Halt().
		EndFunc()
	return b.Build()
}
