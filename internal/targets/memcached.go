package targets

import (
	"fmt"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/kernel"
)

// MemcachedPort is the memcached model's TCP port; MemcachedUDPPort is the
// auxiliary datagram-style port.
const (
	MemcachedPort    = 11211
	MemcachedUDPPort = 11212
)

// Memcached builds the Memcached-1.4 model: the main thread accepts
// connections and hands them to a single shared connection-handling event
// thread — the architecture behind the paper's epoll_wait false positive.
//
// Code-path inventory:
//   - read: request buffer pointer from the connection struct; -EFAULT
//     closes just that connection — the usable primitive.
//   - epoll_wait: event-array pointer from the worker context; on error
//     the connection-handling thread *exits* while the main thread keeps
//     the process alive. The framework's default aliveness validation
//     calls this usable; only the deeper service check catches that no
//     connection is ever processed again (Table I's false positive).
//   - recvfrom: the UDP-style port handler clears the source-address
//     struct through a writable pointer before the call — invalid
//     candidate.
//   - send: response sent through the connection's response pointer after
//     a user-mode store — invalid candidate.
//   - open: static config path — observed only.
func Memcached() (*Server, error) {
	b := asm.NewBuilder("memcached", bin.KindExecutable)

	b.Func("main").Entry("main")
	// open("/etc/memcached.conf") — static.
	b.LeaData(isa.R1, "s_confpath").MovRI(isa.R2, 0)
	sys(b, kernel.SysOpen)
	b.MovRR(isa.R12, isa.R0)
	b.MovRR(isa.R1, isa.R12).LeaData(isa.R2, "cfgbuf").MovRI(isa.R3, 64)
	sys(b, kernel.SysRead)
	b.MovRR(isa.R1, isa.R12)
	sys(b, kernel.SysClose)

	// TCP listener.
	emitListen(b, MemcachedPort)
	// UDP-style listener on the auxiliary port.
	sys(b, kernel.SysSocket)
	b.MovRR(isa.R5, isa.R0)
	b.MovRR(isa.R1, isa.R5).MovRI(isa.R2, MemcachedUDPPort)
	sys(b, kernel.SysBind)
	b.MovRR(isa.R1, isa.R5)
	sys(b, kernel.SysListen)
	b.LeaData(isa.R12, "udp_listen_fd").Store(8, isa.R12, 0, isa.R5)

	// Event thread setup: its own epoll; context carries the event-array
	// pointer (the false-positive candidate's provenance).
	emitEpollCreate(b)
	b.LeaData(isa.R12, "worker_epfd").Store(8, isa.R12, 0, isa.R9)
	// Watch the UDP listener from the event thread (fd moved out of R5,
	// which emitEpollAdd scratches).
	b.MovRR(isa.R7, isa.R5)
	emitEpollAdd(b, isa.R7, "ev_scratch")
	b.LeaData(isa.R12, "worker_ctx").
		LeaData(isa.R14, "ev_array").
		Store(8, isa.R12, 0, isa.R14)
	b.LeaCode(isa.R1, "event_thread").MovRI(isa.R2, 0)
	sys(b, kernel.SysSpawnThread)

	// Main accept loop: blocking accept on TCP, register with the event
	// thread's epoll.
	b.Label("accept_loop")
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
	sys(b, kernel.SysAccept)
	b.MovRR(isa.R7, isa.R0)
	b.CmpRI(isa.R7, 0).Jl("accept_loop")
	// conn = conn_pool + fd*32
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	b.LeaData(isa.R14, "conn_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 0, isa.R14)
	b.LeaData(isa.R14, "resp_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 8, isa.R14)
	// Add to the event thread's epoll.
	b.LeaData(isa.R12, "worker_epfd").Load(8, isa.R9, isa.R12, 0)
	emitEpollAdd(b, isa.R7, "ev_scratch")
	b.Jmp("accept_loop")
	b.EndFunc()

	// event_thread: the single shared connection handler.
	b.Func("event_thread")
	b.LeaData(isa.R10, "worker_ctx")
	b.LeaData(isa.R12, "worker_epfd").Load(8, isa.R9, isa.R12, 0)
	b.Label("et_loop")
	// epoll_wait(epfd, [ctx.evptr], 2, 1s)
	b.Load(8, isa.R2, isa.R10, 0).
		MovRR(isa.R1, isa.R9).
		MovRI(isa.R3, 2).
		MovRI(isa.R4, kernel.TicksPerSecond)
	sys(b, kernel.SysEpollWait)
	b.CmpRI(isa.R0, 0).Jz("et_loop") // timeout: keep polling
	b.CmpRI(isa.R0, 0).Jg("et_ready")
	// epoll error: the handling thread gives up and exits — the process
	// stays alive but no connection is ever served again.
	sys(b, kernel.SysExitThread)
	b.Label("et_ready")
	// fd from the event array, through the pointer epoll_wait validated
	// (still in R2).
	b.Load(8, isa.R7, isa.R2, 8)
	b.LeaData(isa.R12, "udp_listen_fd").Load(8, isa.R12, isa.R12, 0)
	b.CmpRR(isa.R7, isa.R12).Jnz("et_tcp")
	// UDP-style path: accept the datagram peer, then recvfrom with the
	// source-address out-pointer, which the handler clears through the
	// pointer first (user-mode store — the recvfrom crash point).
	b.MovRR(isa.R1, isa.R12).MovRI(isa.R2, 1)
	sys(b, kernel.SysAccept)
	b.CmpRI(isa.R0, 0).Jl("et_loop")
	b.MovRR(isa.R7, isa.R0)
	b.LeaData(isa.R11, "srcaddr_ptr").
		Load(8, isa.R4, isa.R11, 0).
		MovRI(isa.R13, 0).
		Store(8, isa.R4, 0, isa.R13) // user-mode clear of srcaddr
	b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "udp_buf").MovRI(isa.R3, 48)
	sys(b, kernel.SysRecvfrom)
	b.CmpRI(isa.R0, 0).Jg("et_udp_reply")
	b.MovRR(isa.R1, isa.R7)
	sys(b, kernel.SysClose)
	b.Jmp("et_loop")
	b.Label("et_udp_reply")
	b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "udp_resp").MovRI(isa.R3, 8)
	sys(b, kernel.SysWrite)
	b.Jmp("et_loop")
	b.Label("et_tcp")
	// conn = conn_pool + fd*32; read(fd, conn.bufptr, 48).
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	b.Load(8, isa.R2, isa.R12, 0).
		MovRR(isa.R1, isa.R7).
		MovRI(isa.R3, 48)
	sys(b, kernel.SysRead)
	b.CmpRI(isa.R0, 0).Jg("et_got")
	// Error/EOF: close this connection gracefully, keep handling others
	// — the usable read primitive.
	b.MovRR(isa.R1, isa.R7)
	sys(b, kernel.SysClose)
	b.Jmp("et_loop")
	b.Label("et_got")
	// Respond via send through the response pointer (user-mode store
	// first — the send crash point).
	b.Load(8, isa.R2, isa.R12, 8).
		MovRI(isa.R13, 0x0a444e45). // "END\n"
		Store(8, isa.R2, 0, isa.R13).
		MovRR(isa.R1, isa.R7).
		MovRI(isa.R3, 16).
		MovRI(isa.R4, 0)
	sys(b, kernel.SysSend)
	b.Jmp("et_loop")
	b.EndFunc()

	b.Data("s_confpath", []byte("/etc/memcached.conf\x00"))
	b.Data("udp_resp", []byte("VERSION\n"))
	b.BSS("cfgbuf", 64)
	b.BSS("udp_listen_fd", 8)
	b.BSS("worker_epfd", 8)
	b.BSS("worker_ctx", 16)
	b.BSS("ev_array", 32)
	b.BSS("ev_scratch", 16)
	b.BSS("udp_buf", 64)
	b.BSS("srcaddr", 16)
	b.BSS("conn_pool", 32*32)
	b.BSS("conn_bufs", 32*64)
	b.BSS("resp_bufs", 32*64)
	b.DataPtr("srcaddr_ptr", "srcaddr")
	b.Export("worker_ctx", "worker_ctx")
	b.Export("conn_pool", "conn_pool")

	img, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("memcached: %w", err)
	}
	return &Server{
		Name:         "memcached",
		Port:         MemcachedPort,
		Image:        img,
		Suite:        memcachedSuite,
		ServiceCheck: memcachedServiceCheck,
	}, nil
}

func memcachedSuite(env *ServerEnv) error {
	for i := 0; i < 2; i++ {
		env.Request(MemcachedPort, []byte("get key\n\n"))
	}
	// Exercise the UDP-style path once.
	env.Request(MemcachedUDPPort, []byte("version\n"))
	return nil
}

func memcachedServiceCheck(env *ServerEnv) bool {
	if !env.Alive() {
		return false
	}
	_, served := env.Request(MemcachedPort, []byte("get probe\n\n"))
	return served
}
