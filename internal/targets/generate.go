package targets

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/kernel"
	"crashresist/internal/vm"
)

// This file is the generative target universe (ROADMAP item 3): seeded
// deterministic generators that synthesize DLLs with randomized
// scope-table shapes/filter idioms and servers with randomized
// syscall/taint profiles, so the hand-built paper corpus becomes the
// *small* setting. Every generated target is a pure function of
// (seed, index): each one draws from a private RNG derived from both, so
// generation parallelizes without any scheduling dependence, and the
// generator can declare the expected analysis outcome alongside the
// image. Generated scale is property-checked against those declarations
// (scale_test.go at the repo root) instead of golden-filed.

// DefaultGenSeed seeds the generated populations selected by the -scale
// knob. Changing it (or any generator emission order) changes every
// generated image byte and therefore every content-addressed cache key;
// the golden-seed digest pin in generate_test.go fails loudly if that
// happens by accident.
const DefaultGenSeed = 7171

// Generated population sizes per scale. Large is ≥10× the paper corpus
// (187 hand-built DLLs, 6 servers), mega is ≥100×.
const (
	GenDLLsLarge = 1870
	GenDLLsMega  = 18700

	GenServersSmall = 4
	GenServersPaper = 6
	GenServersLarge = 60
	GenServersMega  = 600
)

// genServerSalt separates the generated-server RNG stream from the
// generated-DLL stream under the same user seed.
const genServerSalt = 0x5eed5a17

// genRNG derives the private RNG for generated target i — the same
// golden-ratio derivation BuildSysDLLs uses for the hand-built corpus —
// so generation is a pure function of (seed, index) and independent of
// scheduling and of whatever else is being built around it.
func genRNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(i)*0x9e3779b9))
}

// genParallel runs fn(0..n-1) over a bounded worker pool. Results must be
// index-addressed by the caller; the pool only distributes indices.
func genParallel(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Generated filter styles. The pure styles reuse the hand-built corpus
// idioms; the impure styles consult module state before classifying the
// exception (symbolic execution still reaches a verdict, but the module
// becomes uncacheable), and the unknown style delegates to a native
// platform API (no verdict at all — §VII-A).
const (
	genFltPureAccept = iota
	genFltImpureAccept
	genFltPureReject
	genFltImpureReject
	genFltUnknown
)

// GenDLLSpec is the generator's declaration of one generated DLL: its
// name plus the exact Tables II/III row the SEH pipeline must rediscover.
// The scale property harness checks conservation against these — every
// generated module appears exactly once, with exactly these counts.
type GenDLLSpec struct {
	Name string
	// Handlers / AVHandlers / OnPath / CatchAll is the expected Table II
	// row; Filters / AVFilters is the expected Table III row, and
	// UnknownFilters the expected §VII-A unresolvable count.
	Handlers   int
	AVHandlers int
	OnPath     int
	CatchAll   int

	Filters        int
	AVFilters      int
	UnknownFilters int

	// Pure reports whether every filter body is self-contained, i.e.
	// whether the module's symex results are persistable to the
	// content-addressed cache. Modules mixing the impure or unknown
	// idioms recompute on every run.
	Pure bool
}

// genDLLShape is the randomized scope-table shape of one generated DLL.
type genDLLShape struct {
	styles   []int // one emitted filter per entry
	catchAll int   // leading catch-all scope entries
	extras   int   // extra handlers re-referencing filters round-robin
}

func drawGenDLLShape(rng *rand.Rand) genDLLShape {
	var sh genDLLShape
	add := func(style, n int) {
		for i := 0; i < n; i++ {
			sh.styles = append(sh.styles, style)
		}
	}
	add(genFltPureAccept, rng.Intn(3))
	if rng.Intn(3) == 0 {
		add(genFltImpureAccept, 1)
	}
	add(genFltPureReject, 1+rng.Intn(3)) // every DLL rejects something
	if rng.Intn(3) == 0 {
		add(genFltImpureReject, 1)
	}
	if rng.Intn(3) == 0 {
		add(genFltUnknown, 1)
	}
	sh.catchAll = rng.Intn(2)
	sh.extras = rng.Intn(3)
	return sh
}

func genFltAccepting(style int) bool {
	return style == genFltPureAccept || style == genFltImpureAccept
}

func genFltPure(style int) bool {
	return style == genFltPureAccept || style == genFltPureReject
}

// GenDLLName names generated DLL i.
func GenDLLName(i int) string { return fmt.Sprintf("gdl%05d.dll", i) }

// buildGenDLL assembles generated DLL i of the seed's universe, returning
// the image, its declared spec, and the browse sites for its on-path
// handlers.
func buildGenDLL(seed int64, i int) (*bin.Image, GenDLLSpec, []SitePlan, error) {
	rng := genRNG(seed, i)
	name := GenDLLName(i)
	b := asm.NewBuilder(name, bin.KindLibrary)
	sh := drawGenDLLShape(rng)

	// Filters. Pure styles reuse the hand-built idiom pool so the
	// in-memory symex cache keeps deduplicating identical bodies.
	for fi, style := range sh.styles {
		fname := fmt.Sprintf("gflt%03d", fi)
		switch style {
		case genFltPureAccept:
			emitAcceptingFilter(b, fname, rng.Intn(5))
		case genFltPureReject:
			emitRejectingFilter(b, fname, rng.Intn(5))
		case genFltImpureAccept:
			emitImpureAcceptingFilter(b, fname)
		case genFltImpureReject:
			emitImpureRejectingFilter(b, fname)
		case genFltUnknown:
			emitUnknownFilter(b, fname)
		}
	}

	// Handler scope order mirrors buildDLL: catch-all entries first, then
	// one handler per filter (so every emitted filter is referenced and
	// the extracted unique-filter count equals the emitted count), then
	// extras round-robin.
	accepting := make([]bool, 0, sh.catchAll+len(sh.styles)+sh.extras)
	filterOf := make([]string, 0, cap(accepting))
	for k := 0; k < sh.catchAll; k++ {
		accepting = append(accepting, true)
		filterOf = append(filterOf, asm.CatchAll)
	}
	for fi, style := range sh.styles {
		accepting = append(accepting, genFltAccepting(style))
		filterOf = append(filterOf, fmt.Sprintf("gflt%03d", fi))
	}
	for e := 0; e < sh.extras; e++ {
		fi := e % len(sh.styles)
		accepting = append(accepting, genFltAccepting(sh.styles[fi]))
		filterOf = append(filterOf, fmt.Sprintf("gflt%03d", fi))
	}

	accTotal := 0
	for _, acc := range accepting {
		if acc {
			accTotal++
		}
	}
	onPath := 0
	if accTotal > 0 {
		onPath = rng.Intn(minInt(accTotal, 2) + 1)
	}

	// Emit handlers in scope order; the first onPath accepting ones get
	// exported browse-site wrappers.
	var sites []SitePlan
	left := onPath
	for k, filter := range filterOf {
		fn := fmt.Sprintf("ggd%03d", k)
		emitGuardedFunc(b, fn, filter)
		if accepting[k] && left > 0 {
			export := fmt.Sprintf("gpath%03d", k)
			emitSiteWrapper(b, export, fn)
			b.Export(export, export)
			sites = append(sites, SitePlan{Module: name, Export: export, Scope: k})
			left--
		}
	}

	b.DataU64("gcfg_flag", 1)
	b.BSS("scratch", 64)
	img, err := b.Build()
	if err != nil {
		return nil, GenDLLSpec{}, nil, fmt.Errorf("gen dll %s: %w", name, err)
	}

	spec := GenDLLSpec{
		Name:     name,
		Handlers: len(filterOf),
		OnPath:   len(sites),
		CatchAll: sh.catchAll,
		Filters:  len(sh.styles),
		Pure:     true,
	}
	for _, acc := range accepting {
		if acc {
			spec.AVHandlers++
		}
	}
	for _, style := range sh.styles {
		if genFltAccepting(style) {
			spec.AVFilters++
		}
		if style == genFltUnknown {
			spec.UnknownFilters++
		}
		if !genFltPure(style) {
			spec.Pure = false
		}
	}
	return img, spec, sites, nil
}

// GenDLLCorpus synthesizes n generated system DLLs from seed, returning
// the images, their declared specs, and the browse site plans, all in
// index order. The output is byte-identical however many workers build it
// and whatever corpus it is embedded in: BuildSysDLLs with
// GenSeed/GenDLLs set produces these exact images after its hand-built
// population.
func GenDLLCorpus(seed int64, n int) ([]*bin.Image, []GenDLLSpec, []SitePlan, error) {
	if n < 0 {
		return nil, nil, nil, fmt.Errorf("gen dll corpus: negative n %d", n)
	}
	images := make([]*bin.Image, n)
	specs := make([]GenDLLSpec, n)
	sites := make([][]SitePlan, n)
	errs := make([]error, n)
	genParallel(n, func(i int) {
		images[i], specs[i], sites[i], errs[i] = buildGenDLL(seed, i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	var flat []SitePlan
	for _, s := range sites {
		flat = append(flat, s...)
	}
	return images, specs, flat, nil
}

// emitImpureAcceptingFilter writes a filter that consults a module
// configuration flag before testing the exception code. The flag load is
// a concrete out-of-body read: symbolic execution still proves the filter
// accepts access violations (the flag is constant 1), but the analysis is
// position-dependent, so the module's verdicts never enter the persistent
// cache.
func emitImpureAcceptingFilter(b *asm.Builder, name string) {
	yes, no := name+"_y", name+"_n"
	b.Func(name).
		LeaData(isa.R3, "gcfg_flag").
		Load(8, isa.R3, isa.R3, 0).
		CmpRI(isa.R3, 0).
		Jz(no). // handling disabled (never: the flag is 1)
		MovRI(isa.R3, uint64(vm.ExcAccessViolation)).
		CmpRR(isa.R1, isa.R3).
		Jz(yes).
		Label(no).
		MovRI(isa.R0, 0).Ret().
		Label(yes).
		MovRI(isa.R0, 1).Ret().
		EndFunc()
}

// emitImpureRejectingFilter is the impure counterpart that only ever
// accepts divide-by-zero — never access violations.
func emitImpureRejectingFilter(b *asm.Builder, name string) {
	yes, no := name+"_y", name+"_n"
	b.Func(name).
		LeaData(isa.R3, "gcfg_flag").
		Load(8, isa.R3, isa.R3, 0).
		CmpRI(isa.R3, 0).
		Jz(no).
		MovRI(isa.R3, uint64(vm.ExcDivideByZero)).
		CmpRR(isa.R1, isa.R3).
		Jz(yes).
		Label(no).
		MovRI(isa.R0, 0).Ret().
		Label(yes).
		MovRI(isa.R0, 1).Ret().
		EndFunc()
}

// emitUnknownFilter writes the post-security-update idiom: the filter
// delegates the decision to a native platform API, so symbolic execution
// reports it unknown (jscript9's cfg_filter, generalized).
func emitUnknownFilter(b *asm.Builder, name string) {
	b.Func(name).
		CallImport("", "RtlQueryExceptionPolicy").
		Ret().
		EndFunc()
}

// LargeBrowserParams is the paper corpus plus a 10× generated DLL
// population (2,057 modules total). The browse trigger budget is
// unchanged, so workload cost stays flat while extraction, symbolic
// execution and cross-referencing scale with the corpus.
func LargeBrowserParams() BrowserParams {
	p := PaperBrowserParams()
	p.Corpus.GenSeed = DefaultGenSeed
	p.Corpus.GenDLLs = GenDLLsLarge
	return p
}

// MegaBrowserParams is the paper corpus plus a 100× generated DLL
// population (18,887 modules total).
func MegaBrowserParams() BrowserParams {
	p := PaperBrowserParams()
	p.Corpus.GenSeed = DefaultGenSeed
	p.Corpus.GenDLLs = GenDLLsMega
	return p
}

// GenServerProfile is the generator's declaration of one generated
// server: its name, port, and the Table I dispositions the syscall
// pipeline must rediscover for the syscalls its code paths exercise.
// Syscalls not named here are unconstrained (the server may or may not
// reach them).
type GenServerProfile struct {
	Name string
	Port uint64
	// Usable syscalls must classify ⊕ (EFAULT-driven, service intact),
	// Invalid ± (corruption crashes in user mode first), Observed as
	// observed-only (no corruptible pointer).
	Usable   []string
	Invalid  []string
	Observed []string
}

// genServerChoices is the randomized syscall/taint profile of one
// generated server. Every choice maps to a code-path idiom proven by the
// hand-built Table I servers.
type genServerChoices struct {
	port        uint64
	useRecv     bool // recv (cherokee idiom) vs read (lighttpd idiom)
	readLen     int
	respInvalid bool // response via conn pointer (±) vs static buffer
	openInvalid bool // served-file open via user-terminated pointer (±)
	chmodMode   int  // 0 none, 1 static path, 2 via pointer (±)
	unlinkStale bool // startup unlink via scanned pointer (±)
	mkdirCache  bool // static mkdir — observed only
	symlinkConf bool // static symlink — observed only
	requests    int  // suite request count
}

func drawGenServer(rng *rand.Rand) genServerChoices {
	return genServerChoices{
		port:        uint64(8000 + rng.Intn(1000)),
		useRecv:     rng.Intn(2) == 0,
		readLen:     16 * (1 + rng.Intn(4)),
		respInvalid: rng.Intn(2) == 0,
		openInvalid: rng.Intn(2) == 0,
		chmodMode:   rng.Intn(3),
		unlinkStale: rng.Intn(2) == 0,
		mkdirCache:  rng.Intn(2) == 0,
		symlinkConf: rng.Intn(2) == 0,
		requests:    2 + rng.Intn(3),
	}
}

func (c genServerChoices) profile(name string) GenServerProfile {
	p := GenServerProfile{Name: name, Port: c.port}
	reqSys := "read"
	if c.useRecv {
		reqSys = "recv"
	}
	p.Usable = append(p.Usable, reqSys)
	if c.openInvalid {
		p.Invalid = append(p.Invalid, "open")
		if c.useRecv {
			// The served file is read through a static buffer; with the
			// request arriving via recv, that is the only read.
			p.Observed = append(p.Observed, "read")
		}
	}
	if c.respInvalid {
		p.Invalid = append(p.Invalid, "write")
	} else {
		p.Observed = append(p.Observed, "write")
	}
	switch c.chmodMode {
	case 1:
		p.Observed = append(p.Observed, "chmod")
	case 2:
		p.Invalid = append(p.Invalid, "chmod")
	}
	if c.unlinkStale {
		p.Invalid = append(p.Invalid, "unlink")
	}
	if c.mkdirCache {
		p.Observed = append(p.Observed, "mkdir")
	}
	if c.symlinkConf {
		p.Observed = append(p.Observed, "symlink")
	}
	p.Observed = append(p.Observed, "epoll_ctl", "epoll_wait")
	sortStrings(p.Usable)
	sortStrings(p.Invalid)
	sortStrings(p.Observed)
	return p
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// GenServerName names generated server i.
func GenServerName(i int) string { return "gen-" + strconv.Itoa(i) }

// ParseGenServerRef parses a canonical generated-server reference
// ("gen-0", "gen-17", …) into its index.
func ParseGenServerRef(name string) (int, bool) {
	const prefix = "gen-"
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	idx, err := strconv.Atoi(name[len(prefix):])
	if err != nil || idx < 0 || GenServerName(idx) != name {
		return 0, false
	}
	return idx, true
}

// GenServerProfiles returns the declared profiles of generated servers
// 0..n-1 without building the images.
func GenServerProfiles(seed int64, n int) []GenServerProfile {
	out := make([]GenServerProfile, n)
	for i := range out {
		rng := genRNG(seed+genServerSalt, i)
		out[i] = drawGenServer(rng).profile(GenServerName(i))
	}
	return out
}

// GenServer builds generated server index of the seed's universe: a
// single-threaded epoll server assembled from the hand-built servers'
// code-path idioms according to its drawn profile.
func GenServer(seed int64, index int) (*Server, error) {
	if index < 0 {
		return nil, fmt.Errorf("gen server: negative index %d", index)
	}
	rng := genRNG(seed+genServerSalt, index)
	c := drawGenServer(rng)
	name := GenServerName(index)
	b := asm.NewBuilder(name, bin.KindExecutable)

	b.Func("main").Entry("main")
	if c.mkdirCache {
		b.LeaData(isa.R1, "g_cachedir")
		sys(b, kernel.SysMkdir)
	}
	if c.symlinkConf {
		b.LeaData(isa.R1, "g_confpath").LeaData(isa.R2, "g_linkpath")
		sys(b, kernel.SysSymlink)
	}
	switch c.chmodMode {
	case 1:
		b.LeaData(isa.R1, "g_logpath")
		sys(b, kernel.SysChmod)
	case 2:
		// chmod through a writable pointer, NUL-terminating through it
		// first in user mode (cherokee idiom).
		b.LeaData(isa.R10, "g_logpath_ptr").
			Load(8, isa.R1, isa.R10, 0).
			MovRI(isa.R13, 0).
			Store(1, isa.R1, 19, isa.R13)
		sys(b, kernel.SysChmod)
	}
	if c.unlinkStale {
		// Stale-socket cleanup through a writable pointer with a
		// user-mode scan first (lighttpd idiom).
		b.LeaData(isa.R10, "g_sock_path_ptr").
			Load(8, isa.R1, isa.R10, 0).
			Load(1, isa.R11, isa.R1, 0)
		sys(b, kernel.SysUnlink)
	}

	emitListen(b, c.port)
	emitEpollCreate(b)
	emitEpollAdd(b, isa.R6, "ev_scratch")

	b.Label("loop")
	b.MovRR(isa.R1, isa.R9).LeaData(isa.R2, "events").MovRI(isa.R3, 8).MovRI(isa.R4, ^uint64(0))
	sys(b, kernel.SysEpollWait)
	b.MovRR(isa.R11, isa.R0)
	b.CmpRI(isa.R11, 0).Jle("loop")
	b.MovRI(isa.R10, 0)
	b.Label("evloop")
	b.CmpRR(isa.R10, isa.R11).Jge("loop")
	b.LeaData(isa.R12, "events").
		MovRR(isa.R13, isa.R10).
		MulRI(isa.R13, 16).
		AddRR(isa.R12, isa.R13).
		Load(8, isa.R7, isa.R12, 8)
	b.CmpRR(isa.R7, isa.R6).Jnz("client")
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 1) // nonblocking accept
	sys(b, kernel.SysAccept)
	b.MovRR(isa.R7, isa.R0)
	b.CmpRI(isa.R7, 0).Jl("nextev")
	// conn = conn_pool + fd*32 with fresh buffer pointers.
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	b.LeaData(isa.R14, "conn_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 0, isa.R14)
	b.LeaData(isa.R14, "resp_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 8, isa.R14)
	emitEpollAdd(b, isa.R7, "ev_scratch")
	b.Jmp("nextev")
	b.Label("client")
	b.Call("serve_conn")
	b.Label("nextev")
	b.AddRI(isa.R10, 1).Jmp("evloop")
	b.EndFunc()

	// serve_conn: fd in R7. One-shot request per readiness event.
	b.Func("serve_conn")
	b.Push(isa.R10).Push(isa.R11)
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	// Request through conn.bufptr — the usable primitive: -EFAULT falls
	// through to the graceful close.
	b.Load(8, isa.R2, isa.R12, 0).
		MovRR(isa.R1, isa.R7).
		MovRI(isa.R3, uint64(c.readLen))
	if c.useRecv {
		b.MovRI(isa.R4, 1)
		sys(b, kernel.SysRecv)
	} else {
		sys(b, kernel.SysRead)
	}
	b.MovRR(isa.R15, isa.R0)
	b.CmpRI(isa.R15, 0).Jg("sc_got")
	b.MovRR(isa.R1, isa.R7)
	sys(b, kernel.SysClose)
	b.Jmp("sc_out")
	b.Label("sc_got")
	if c.openInvalid {
		// Served-file path through doc_path_ptr, NUL-terminated through
		// the pointer in user mode first.
		b.LeaData(isa.R10, "g_doc_path_ptr").
			Load(8, isa.R1, isa.R10, 0).
			MovRI(isa.R13, 0).
			Store(1, isa.R1, 19, isa.R13)
		sys(b, kernel.SysOpen)
		b.MovRR(isa.R14, isa.R0)
		b.CmpRI(isa.R14, 0).Jl("sc_respond")
		b.MovRR(isa.R1, isa.R14).LeaData(isa.R2, "filebuf").MovRI(isa.R3, 64)
		sys(b, kernel.SysRead)
		b.MovRR(isa.R1, isa.R14)
		sys(b, kernel.SysClose)
	}
	b.Label("sc_respond")
	if c.respInvalid {
		// Response through conn.rbufptr (user-mode store first).
		b.Load(8, isa.R2, isa.R12, 8).
			MovRI(isa.R13, 0x0a4b4f). // "OK\n"
			Store(8, isa.R2, 0, isa.R13).
			MovRR(isa.R1, isa.R7).
			MovRI(isa.R3, 16)
	} else {
		// Static response buffer — observed only.
		b.LeaData(isa.R2, "g_resp").
			MovRR(isa.R1, isa.R7).
			MovRI(isa.R3, 16)
	}
	sys(b, kernel.SysWrite)
	b.Label("sc_out")
	b.Pop(isa.R11).Pop(isa.R10)
	b.Ret()
	b.EndFunc()

	b.Data("g_cachedir", []byte("/var/cache/gensrv\x00"))
	b.Data("g_confpath", []byte("/etc/gensrv.conf\x00"))
	b.Data("g_linkpath", []byte("/etc/gensrv.link\x00"))
	b.Data("g_logpath", []byte("/var/log/gensrv.log\x00"))
	b.DataPtr("g_logpath_ptr", "g_logpath")
	b.Data("g_sock_path", []byte("/var/run/gensrv.sock\x00"))
	b.DataPtr("g_sock_path_ptr", "g_sock_path")
	b.Data("g_doc_path", []byte("/var/www/index.html\x00\x00\x00\x00"))
	b.DataPtr("g_doc_path_ptr", "g_doc_path")
	b.Data("g_resp", []byte("OK generated...."))
	b.BSS("ev_scratch", 16)
	b.BSS("events", 8*16)
	b.BSS("filebuf", 64)
	b.BSS("conn_pool", 32*32)
	b.BSS("conn_bufs", 32*64)
	b.BSS("resp_bufs", 32*64)
	b.Export("conn_pool", "conn_pool")

	img, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("gen server %s: %w", name, err)
	}
	port, requests := c.port, c.requests
	return &Server{
		Name:  name,
		Port:  port,
		Image: img,
		Suite: func(env *ServerEnv) error {
			for i := 0; i < requests; i++ {
				env.Request(port, []byte("GET /index.html\n\n"))
			}
			return nil
		},
		ServiceCheck: httpServiceCheck(port),
	}, nil
}

// GenServers builds generated servers 0..n-1 in index order; like the
// DLL corpus, each is derived independently from (seed, index).
func GenServers(seed int64, n int) ([]*Server, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen servers: negative n %d", n)
	}
	out := make([]*Server, n)
	errs := make([]error, n)
	genParallel(n, func(i int) {
		out[i], errs[i] = GenServer(seed, i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
