package targets

import (
	"fmt"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/kernel"
)

// PostgresPort is the PostgreSQL model's port.
const PostgresPort = 5432

// Postgres builds the PostgreSQL-9.0 model: the postmaster accepts
// connections and spawns one worker per connection; workers are *expected*
// to terminate when their connection ends, so a graceful worker exit is not
// abnormal (§V-A).
//
// Code-path inventory:
//   - epoll_wait: each worker polls its connection through an event-array
//     pointer in its per-connection context; on error the worker exits
//     gracefully while fresh connections get fresh workers — the usable
//     primitive.
//   - read: query buffer pointer from the connection struct, but the error
//     path hands the buffer to the parser, which dereferences it in user
//     mode — invalid candidate.
//   - connect: per-worker replication-peer sockaddr filled through a
//     writable pointer in user mode — invalid candidate.
//   - sendmsg: the response msghdr length is updated through a writable
//     pointer before the call — invalid candidate.
//   - open/unlink: static paths at startup — observed only.
func Postgres() (*Server, error) {
	b := asm.NewBuilder("postgresql", bin.KindExecutable)

	b.Func("main").Entry("main")
	// open("/etc/postgresql.conf") — static.
	b.LeaData(isa.R1, "s_confpath").MovRI(isa.R2, 0)
	sys(b, kernel.SysOpen)
	b.MovRR(isa.R12, isa.R0)
	b.MovRR(isa.R1, isa.R12).LeaData(isa.R2, "cfgbuf").MovRI(isa.R3, 64)
	sys(b, kernel.SysRead)
	b.MovRR(isa.R1, isa.R12)
	sys(b, kernel.SysClose)
	// unlink("/var/run/postgresql.pid") — static.
	b.LeaData(isa.R1, "s_pidpath")
	sys(b, kernel.SysUnlink)

	emitListen(b, PostgresPort)

	// Postmaster loop: accept, prepare the worker context, spawn.
	b.Label("pm_loop")
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
	sys(b, kernel.SysAccept)
	b.MovRR(isa.R7, isa.R0)
	b.CmpRI(isa.R7, 0).Jl("pm_loop")
	// ctx = worker_ctxs + fd*16; ctx.evptr = ev_arrays + fd*16
	b.LeaData(isa.R12, "worker_ctxs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 16).
		AddRR(isa.R12, isa.R13).
		LeaData(isa.R14, "ev_arrays").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 16).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 0, isa.R14)
	// conn = conn_pool + fd*32 with query/response buffers.
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	b.LeaData(isa.R14, "query_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 0, isa.R14)
	// msghdr = msg_hdrs + fd*16: {bufptr, len}; point it at the static
	// response and record its address in the conn struct.
	b.LeaData(isa.R14, "msg_hdrs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 16).
		AddRR(isa.R14, isa.R13).
		LeaData(isa.R15, "resp_text").
		Store(8, isa.R14, 0, isa.R15).
		Store(8, isa.R12, 8, isa.R14)
	// spawn worker(fd)
	b.LeaCode(isa.R1, "worker").MovRR(isa.R2, isa.R7)
	sys(b, kernel.SysSpawnThread)
	b.Jmp("pm_loop")
	b.EndFunc()

	// worker: connection fd arrives in R1.
	b.Func("worker")
	b.MovRR(isa.R7, isa.R1)
	// Replication health probe: fill the peer sockaddr through its
	// writable pointer (user-mode store — the connect crash point).
	sys(b, kernel.SysSocket)
	b.MovRR(isa.R13, isa.R0)
	b.LeaData(isa.R10, "peer_addr_ptr").
		Load(8, isa.R2, isa.R10, 0).
		MovRI(isa.R11, 5433).
		Store(8, isa.R2, 0, isa.R11).
		MovRR(isa.R1, isa.R13)
	sys(b, kernel.SysConnect)
	b.MovRR(isa.R1, isa.R13)
	sys(b, kernel.SysClose)
	// Own epoll watching just this connection.
	emitEpollCreate(b)
	b.MovRR(isa.R8, isa.R7) // fd out of emitEpollAdd scratch range
	emitEpollAdd(b, isa.R8, "ev_scratch")
	// ctx = worker_ctxs + fd*16
	b.LeaData(isa.R10, "worker_ctxs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 16).
		AddRR(isa.R10, isa.R13)
	// conn = conn_pool + fd*32
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	b.Label("w_loop")
	// epoll_wait(epfd, [ctx.evptr], 1, 1s)
	b.Load(8, isa.R2, isa.R10, 0).
		MovRR(isa.R1, isa.R9).
		MovRI(isa.R3, 1).
		MovRI(isa.R4, kernel.TicksPerSecond)
	sys(b, kernel.SysEpollWait)
	b.CmpRI(isa.R0, 0).Jz("w_loop") // timeout
	b.CmpRI(isa.R0, 0).Jg("w_ready")
	// epoll error: this worker terminates gracefully; the postmaster
	// keeps accepting and spawning fresh workers — the usable primitive.
	sys(b, kernel.SysExitThread)
	b.Label("w_ready")
	// read(fd, conn.bufptr, 48)
	b.Load(8, isa.R2, isa.R12, 0).
		MovRR(isa.R1, isa.R7).
		MovRI(isa.R3, 48)
	sys(b, kernel.SysRead)
	b.MovRR(isa.R15, isa.R0)
	b.CmpRI(isa.R15, 0).Jg("w_got")
	// Error/EOF: the protocol layer hands the buffer to the parser for
	// diagnostics, which dereferences it (user mode — the read crash
	// point), then the worker closes and exits as expected.
	b.Load(8, isa.R2, isa.R12, 0).
		Load(1, isa.R14, isa.R2, 0)
	b.MovRR(isa.R1, isa.R7)
	sys(b, kernel.SysClose)
	sys(b, kernel.SysExitThread)
	b.Label("w_got")
	// Respond via sendmsg: update the msghdr length through its pointer
	// (user-mode store — the sendmsg crash point).
	b.Load(8, isa.R2, isa.R12, 8).
		MovRI(isa.R13, 9).
		Store(8, isa.R2, 8, isa.R13). // msghdr.len = 9
		MovRR(isa.R1, isa.R7)
	sys(b, kernel.SysSendmsg)
	b.Jmp("w_loop")
	b.EndFunc()

	b.Data("s_confpath", []byte("/etc/postgresql.conf\x00"))
	b.Data("s_pidpath", []byte("/var/run/postgresql.pid\x00"))
	b.Data("resp_text", []byte("SELECT 1\n\x00\x00\x00\x00\x00\x00\x00"))
	b.BSS("cfgbuf", 64)
	b.BSS("ev_scratch", 16)
	b.BSS("peer_addr", 16)
	b.DataPtr("peer_addr_ptr", "peer_addr")
	b.BSS("worker_ctxs", 32*16)
	b.BSS("ev_arrays", 32*16)
	b.BSS("conn_pool", 32*32)
	b.BSS("query_bufs", 32*64)
	b.BSS("msg_hdrs", 32*16)
	b.Export("worker_ctxs", "worker_ctxs")
	b.Export("conn_pool", "conn_pool")

	img, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("postgresql: %w", err)
	}
	return &Server{
		Name:         "postgresql",
		Port:         PostgresPort,
		Image:        img,
		Suite:        postgresSuite,
		ServiceCheck: postgresServiceCheck,
	}, nil
}

func postgresSuite(env *ServerEnv) error {
	for i := 0; i < 2; i++ {
		env.Request(PostgresPort, []byte("SELECT version();\n\n"))
	}
	return nil
}

func postgresServiceCheck(env *ServerEnv) bool {
	if !env.Alive() {
		return false
	}
	_, served := env.Request(PostgresPort, []byte("SELECT 1;\n\n"))
	return served
}
