package targets

import (
	"testing"

	"crashresist/internal/seh"
	"crashresist/internal/trace"
	"crashresist/internal/vm"
)

func TestSysDLLCorpusCounts(t *testing.T) {
	params := SmallCorpusParams()
	images, plan, err := BuildSysDLLs(params)
	if err != nil {
		t.Fatal(err)
	}
	wantDLLs := len(params.Named) + params.FillerDLLs
	if len(images) != wantDLLs {
		t.Fatalf("images = %d, want %d", len(images), wantDLLs)
	}
	h, f, af, ah, p := plan.Totals()
	if h != params.TotalHandlers || f != params.TotalFilters || af != params.TotalAVFilters ||
		ah != params.TotalAVHandlers || p != params.TotalOnPath {
		t.Errorf("plan totals = %d/%d/%d/%d/%d, want %d/%d/%d/%d/%d",
			h, f, af, ah, p,
			params.TotalHandlers, params.TotalFilters, params.TotalAVFilters,
			params.TotalAVHandlers, params.TotalOnPath)
	}

	// Verify the *measured* scope-table population matches the specs.
	proc := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 5})
	proc.API = anyAPIStub{}
	byName := make(map[string]DLLSpec, len(plan.Specs))
	for _, s := range plan.Specs {
		byName[s.Name] = s
	}
	var totalHandlers, totalFilters int
	for _, img := range images {
		mod, err := proc.LoadImage(img)
		if err != nil {
			t.Fatal(err)
		}
		inv := seh.Extract(mod)
		spec := byName[img.Name]
		// Measured filters exclude catch-all; jscript9 carries one
		// extra "unknown" filter already included in its spec.
		if got := len(inv.Handlers); got != spec.Handlers {
			t.Errorf("%s: measured handlers = %d, want %d", img.Name, got, spec.Handlers)
		}
		if got := len(inv.Filters); got != spec.Filters {
			t.Errorf("%s: measured filters = %d, want %d", img.Name, got, spec.Filters)
		}
		totalHandlers += len(inv.Handlers)
		totalFilters += len(inv.Filters)
	}
	if totalHandlers != params.TotalHandlers || totalFilters != params.TotalFilters {
		t.Errorf("measured totals = %d handlers / %d filters, want %d / %d",
			totalHandlers, totalFilters, params.TotalHandlers, params.TotalFilters)
	}
}

// anyAPIStub resolves every import so corpus DLLs load standalone.
type anyAPIStub struct{}

func (anyAPIStub) Resolve(string) (uint32, error) { return 1, nil }

func (anyAPIStub) Call(p *vm.Process, t *vm.Thread, id uint32) *vm.Exception {
	t.SetReg(0, 0)
	return nil
}

func TestPaperCorpusParamsConsistency(t *testing.T) {
	params := PaperCorpusParams()
	specs, err := expandSpecs(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 187 {
		t.Errorf("DLL count = %d, want 187", len(specs))
	}
	var h, f, af, ah, p int
	for _, s := range specs {
		h += s.Handlers
		f += s.Filters
		af += s.AVFilters
		ah += s.AVHandlers
		p += s.OnPath
	}
	if h != 6745 || f != 5751 || af != 808 || ah != 1797 || p != 385 {
		t.Errorf("totals = %d/%d/%d/%d/%d, want 6745/5751/808/1797/385", h, f, af, ah, p)
	}
}

func TestIEBrowserBrowse(t *testing.T) {
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	env, err := br.NewEnv(900)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Start(); err != nil {
		t.Fatal(err)
	}

	rec := trace.NewRecorder()
	rec.EnableAPIHarvest()
	rec.EnableCoverage()
	rec.AddContextModule("jscript9.dll")
	rec.Attach(env.Proc)

	if err := env.Browse(); err != nil {
		t.Fatalf("browse: %v (crash=%v)", err, env.Proc.Crash)
	}

	// Every planned site must be covered.
	hits := rec.ScopeHits()
	for _, site := range br.Plan.Sites {
		key := trace.ScopeKey{Module: site.Module, Index: site.Scope}
		if hits[key] == 0 {
			t.Errorf("site %s!%s (scope %d) not covered", site.Module, site.Export, site.Scope)
		}
	}

	// Trigger volume: the sum over planned sites must equal TriggerTotal.
	var total uint64
	siteKeys := make(map[trace.ScopeKey]bool, len(br.Plan.Sites))
	for _, site := range br.Plan.Sites {
		siteKeys[trace.ScopeKey{Module: site.Module, Index: site.Scope}] = true
	}
	for key, n := range hits {
		if siteKeys[key] {
			total += n
		}
	}
	if total != uint64(br.Params.TriggerTotal) {
		t.Errorf("trigger total = %d, want %d", total, br.Params.TriggerTotal)
	}

	// API funnel raw material: the JS-context APIs must be tagged.
	jsTagged := 0
	for _, js := range br.JSAPIs {
		d, ok := env.Reg.Lookup(js.API)
		if !ok {
			t.Fatalf("missing API %s", js.API)
		}
		st, ok := rec.APIs()[d.ID]
		if !ok {
			t.Errorf("JS API %s never called", js.API)
			continue
		}
		if st.FromContext {
			jsTagged++
		}
	}
	if jsTagged != len(br.JSAPIs) {
		t.Errorf("JS-context tagged = %d, want %d", jsTagged, len(br.JSAPIs))
	}

	// Non-JS path APIs must be called but not tagged.
	for _, api := range br.PathAPIs {
		d, _ := env.Reg.Lookup(api)
		st, ok := rec.APIs()[d.ID]
		if !ok {
			t.Errorf("path API %s never called", api)
			continue
		}
		isJS := false
		for _, js := range br.JSAPIs {
			if js.API == api {
				isJS = true
			}
		}
		if !isJS && st.FromContext {
			t.Errorf("non-JS API %s wrongly tagged as JS context", api)
		}
	}
}

func TestIEMutxProbePrimitive(t *testing.T) {
	// The §VI-A PoC mechanics: overwrite the debug_info pointer, trigger
	// js_run, read the status field.
	br, err := IE(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	env, err := br.NewEnv(901)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Start(); err != nil {
		t.Fatal(err)
	}
	dbgPtrVA, err := env.ExportVA("jscript9.dll", "critsec")
	if err != nil {
		t.Fatal(err)
	}
	dbgPtrVA += 16 // debug_info field
	engineVA, err := env.ExportVA("jscript9.dll", "script_engine")
	if err != nil {
		t.Fatal(err)
	}

	status := func() uint64 {
		v, err := env.Proc.AS.ReadUint(engineVA+8, 8)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	// Baseline: valid debug_info → no exception, status 0.
	if _, err := env.Call("jscript9.dll", "js_run", 1); err != nil {
		t.Fatal(err)
	}
	if status() != 0 {
		t.Fatalf("baseline status = %d, want 0", status())
	}

	// Probe unmapped: status 1, no crash.
	if err := env.Proc.AS.WriteUint(dbgPtrVA, 8, 0xdead0000-16); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Call("jscript9.dll", "js_run", 1); err != nil {
		t.Fatal(err)
	}
	if status() != 1 {
		t.Errorf("unmapped probe status = %d, want 1", status())
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("probe crashed the browser: %v", env.Proc.Crash)
	}

	// Probe mapped: status back to 0.
	scratch, err := env.ExportVA("jscript9.dll", "debug_info")
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Proc.AS.WriteUint(dbgPtrVA, 8, scratch); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Call("jscript9.dll", "js_run", 1); err != nil {
		t.Fatal(err)
	}
	if status() != 0 {
		t.Errorf("mapped probe status = %d, want 0", status())
	}
}

func TestFirefoxWorkerProbeAndVEH(t *testing.T) {
	br, err := Firefox(SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	env, err := br.NewEnv(902)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Start(); err != nil {
		t.Fatal(err)
	}
	if len(env.Proc.VEHandlers()) != 1 {
		t.Fatalf("VEH handlers = %d, want 1 (registered at runtime)", len(env.Proc.VEHandlers()))
	}

	slotVA, err := env.ExportVA("xul.dll", "probe_slot")
	if err != nil {
		t.Fatal(err)
	}
	resultVA, err := env.ExportVA("xul.dll", "probe_result")
	if err != nil {
		t.Fatal(err)
	}

	probe := func(addr uint64) uint64 {
		if err := env.Proc.AS.WriteUint(slotVA, 8, addr); err != nil {
			t.Fatal(err)
		}
		// Give the background worker a chance to act.
		for i := 0; i < 50; i++ {
			env.Proc.Run(10_000)
			v, err := env.Proc.AS.ReadUint(slotVA, 8)
			if err != nil {
				t.Fatal(err)
			}
			if v == 0 {
				break
			}
		}
		res, err := env.Proc.AS.ReadUint(resultVA, 8)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Probe a mapped location holding a known value.
	markerVA := slotVA // probing the slot itself would race; use result
	if err := env.Proc.AS.WriteUint(resultVA, 8, 0); err != nil {
		t.Fatal(err)
	}
	_ = markerVA
	known, err := env.ExportVA("xul.dll", "guard_region")
	if err != nil {
		t.Fatal(err)
	}
	// guard_region start may coincide with the protected page; write a
	// marker right before the aligned page if possible, else use the
	// probe of an unmapped address only.
	if got := probe(0xdead0000); got != ^uint64(0) {
		t.Errorf("unmapped probe result = %#x, want -1", got)
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("probe crashed firefox: %v", env.Proc.Crash)
	}
	_ = known

	// asm.js bursts: guard faults are handled by the VEH.
	pre := env.Proc.Stats.Faults
	if _, err := env.Call("xul.dll", "asmjs_run", 5); err != nil {
		t.Fatalf("asmjs_run: %v (crash=%v)", err, env.Proc.Crash)
	}
	burst := env.Proc.Stats.Faults - pre
	if burst != 5 {
		t.Errorf("asm.js burst faults = %d, want 5", burst)
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatal("asm.js burst crashed the process")
	}
}
