package targets

import (
	"fmt"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/kernel"
)

// Nginx builds the Nginx-1.9 model: a single-process event-loop server that
// keeps per-connection buffer structures (the ngx_buf_t shape of §VI-C).
//
// Code-path inventory (what the discovery pipeline should find):
//   - recv: request buffer pointer loaded from the connection struct each
//     iteration; the -EFAULT path closes the connection gracefully — the
//     usable primitive.
//   - write: response buffer pointer also lives in the connection struct,
//     but the server builds the response *through* it in user mode first —
//     corrupting it crashes (invalid candidate).
//   - open: config path pointer held in writable data; the parser touches
//     the path in user mode before open — invalid candidate.
//   - connect: upstream sockaddr pointer in writable data; the server
//     fills the struct in user mode first — invalid candidate.
//   - mkdir/unlink/read/epoll_wait/epoll_ctl: pointers are code-relative
//     (LEA) — observed but not attacker-reachable candidates.
func Nginx() (*Server, error) {
	b := asm.NewBuilder("nginx", bin.KindExecutable)

	b.Func("main").Entry("main")
	// mkdir("/tmp/nginx") — static path.
	b.LeaData(isa.R1, "s_tmpdir")
	sys(b, kernel.SysMkdir)
	// unlink("/var/run/nginx.pid") — static path.
	b.LeaData(isa.R1, "s_pidpath")
	sys(b, kernel.SysUnlink)
	// open(config) through a pointer in writable data; the config parser
	// reads the path's first byte in user mode before the call.
	b.LeaData(isa.R10, "cfg_path_ptr").
		Load(8, isa.R1, isa.R10, 0).
		Load(1, isa.R11, isa.R1, 0). // user-mode deref of the path
		MovRI(isa.R2, 0)
	sys(b, kernel.SysOpen)
	b.MovRR(isa.R12, isa.R0)
	// read(configfd, cfgbuf, 64) — static buffer.
	b.MovRR(isa.R1, isa.R12).LeaData(isa.R2, "cfgbuf").MovRI(isa.R3, 64)
	sys(b, kernel.SysRead)
	b.MovRR(isa.R1, isa.R12)
	sys(b, kernel.SysClose)
	// Upstream health probe: fill the sockaddr through its pointer, then
	// connect.
	sys(b, kernel.SysSocket)
	b.MovRR(isa.R13, isa.R0)
	b.LeaData(isa.R10, "upstream_ptr").
		Load(8, isa.R2, isa.R10, 0).
		MovRI(isa.R11, 9090).
		Store(8, isa.R2, 0, isa.R11). // user-mode write into the sockaddr
		MovRR(isa.R1, isa.R13)
	sys(b, kernel.SysConnect)
	b.MovRR(isa.R1, isa.R13)
	sys(b, kernel.SysClose)

	emitListen(b, HTTPPort)
	emitEpollCreate(b)
	emitEpollAdd(b, isa.R6, "ev_scratch")

	b.Label("loop")
	b.MovRR(isa.R1, isa.R9).LeaData(isa.R2, "events").MovRI(isa.R3, 8).MovRI(isa.R4, ^uint64(0))
	sys(b, kernel.SysEpollWait)
	b.MovRR(isa.R11, isa.R0) // n
	b.CmpRI(isa.R11, 0).Jle("loop")
	b.MovRI(isa.R10, 0) // i
	b.Label("evloop")
	b.CmpRR(isa.R10, isa.R11).Jge("loop")
	b.LeaData(isa.R12, "events").
		MovRR(isa.R13, isa.R10).
		MulRI(isa.R13, 16).
		AddRR(isa.R12, isa.R13).
		Load(8, isa.R7, isa.R12, 8) // fd from event data
	b.CmpRR(isa.R7, isa.R6).Jnz("client")
	// Accept a new connection and set up its conn struct.
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0)
	sys(b, kernel.SysAccept)
	b.MovRR(isa.R7, isa.R0)
	b.CmpRI(isa.R7, 0).Jl("nextev")
	// conn = conn_pool + fd*32
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	// conn.bufptr = conn_bufs + fd*64
	b.LeaData(isa.R14, "conn_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 0, isa.R14)
	// conn.rbufptr = resp_bufs + fd*64
	b.LeaData(isa.R14, "resp_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 8, isa.R14)
	// conn.used = 0
	b.MovRI(isa.R13, 0).Store(8, isa.R12, 16, isa.R13)
	// conn_table[fd] = conn
	b.LeaData(isa.R14, "conn_table").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 8).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R14, 0, isa.R12)
	emitEpollAdd(b, isa.R7, "ev_scratch")
	b.Jmp("nextev")
	b.Label("client")
	b.Call("handle_conn")
	b.Label("nextev")
	b.AddRI(isa.R10, 1).Jmp("evloop")
	b.EndFunc()

	// handle_conn: fd in R7.
	b.Func("handle_conn")
	b.Push(isa.R10).Push(isa.R11)
	// conn = conn_table[fd]
	b.LeaData(isa.R12, "conn_table").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 8).
		AddRR(isa.R12, isa.R13).
		Load(8, isa.R12, isa.R12, 0)
	// recv(fd, conn.bufptr + conn.used, 32) — the usable primitive: the
	// buffer pointer is re-loaded from the struct on every iteration.
	b.Load(8, isa.R2, isa.R12, 0).
		Load(8, isa.R14, isa.R12, 16).
		AddRR(isa.R2, isa.R14).
		MovRR(isa.R1, isa.R7).
		MovRI(isa.R3, 32)
	sys(b, kernel.SysRecv)
	b.MovRR(isa.R15, isa.R0)
	b.CmpRI(isa.R15, 0).Jg("hc_got")
	// Error or EOF: terminate the connection gracefully.
	b.MovRR(isa.R1, isa.R7)
	sys(b, kernel.SysClose)
	b.LeaData(isa.R12, "conn_table").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 8).
		AddRR(isa.R12, isa.R13).
		MovRI(isa.R14, 0).
		Store(8, isa.R12, 0, isa.R14)
	b.Jmp("hc_out")
	b.Label("hc_got")
	// used += n
	b.Load(8, isa.R14, isa.R12, 16).
		AddRR(isa.R14, isa.R15).
		Store(8, isa.R12, 16, isa.R14)
	// Request complete when the last two bytes are "\n\n".
	b.CmpRI(isa.R14, 2).Jl("hc_out")
	b.Load(8, isa.R2, isa.R12, 0).
		AddRR(isa.R2, isa.R14).
		Load(1, isa.R13, isa.R2, -1).
		CmpRI(isa.R13, 10).
		Jnz("hc_out").
		Load(1, isa.R13, isa.R2, -2).
		CmpRI(isa.R13, 10).
		Jnz("hc_out")
	// Respond: build the response through the response-buffer pointer
	// (user-mode store — this is why corrupting it crashes), then write.
	b.Load(8, isa.R2, isa.R12, 8).
		MovRI(isa.R13, 0x0a4b4f). // "OK\n"
		Store(8, isa.R2, 0, isa.R13).
		MovRR(isa.R1, isa.R7).
		MovRI(isa.R3, 16)
	sys(b, kernel.SysWrite)
	b.MovRI(isa.R13, 0).Store(8, isa.R12, 16, isa.R13)
	b.Label("hc_out")
	b.Pop(isa.R11).Pop(isa.R10)
	b.Ret()
	b.EndFunc()

	b.Data("s_tmpdir", []byte("/tmp/nginx\x00"))
	b.Data("s_pidpath", []byte("/var/run/nginx.pid\x00"))
	b.Data("cfg_path", []byte("/etc/nginx.conf\x00"))
	b.DataPtr("cfg_path_ptr", "cfg_path")
	b.BSS("upstream_addr", 16)
	b.DataPtr("upstream_ptr", "upstream_addr")
	b.BSS("cfgbuf", 64)
	b.BSS("ev_scratch", 16)
	b.BSS("events", 8*16)
	b.BSS("conn_pool", 32*32)
	b.BSS("conn_bufs", 32*64)
	b.BSS("resp_bufs", 32*64)
	b.BSS("conn_table", 32*8)
	b.Export("conn_pool", "conn_pool")
	b.Export("conn_bufs", "conn_bufs")

	img, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("nginx: %w", err)
	}
	return &Server{
		Name:         "nginx",
		Port:         HTTPPort,
		Image:        img,
		Suite:        nginxSuite,
		ServiceCheck: httpServiceCheck(HTTPPort),
	}, nil
}

// nginxSuite is the workload: complete requests plus the partial-request
// shape the §VI-C PoC depends on.
func nginxSuite(env *ServerEnv) error {
	for i := 0; i < 2; i++ {
		env.Request(HTTPPort, []byte("GET /index.html\n\n"))
	}
	cc, err := env.Kern.Connect(HTTPPort)
	if err != nil {
		return nil // server gone; validation judges via Alive/ServiceCheck
	}
	env.Step()
	cc.Send([]byte("GET /partial")) // partial request: buffer stays allocated
	env.Step()
	cc.Send([]byte("\n\n")) // completion
	env.Step()
	cc.Recv()
	cc.Close()
	env.Step()
	return nil
}

// httpServiceCheck probes liveness with one fresh request.
func httpServiceCheck(port uint64) func(env *ServerEnv) bool {
	return func(env *ServerEnv) bool {
		if !env.Alive() {
			return false
		}
		_, served := env.Request(port, []byte("GET /check\n\n"))
		return served
	}
}
