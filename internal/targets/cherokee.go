package targets

import (
	"fmt"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/kernel"
)

// CherokeeThreads is the worker-thread count of the Cherokee model
// (cherokee 1.2's default configuration starts multiple threads).
const CherokeeThreads = 4

// Cherokee builds the Cherokee-1.2 model: a multi-threaded server where
// every worker runs its own epoll loop with a one-second timeout (§VI-D).
//
// Code-path inventory:
//   - epoll_wait: each worker reloads its event-array pointer from its
//     thread context (writable) every iteration; -EFAULT sends the worker
//     into a tight failing loop while the process keeps serving through
//     its siblings — the usable primitive and the timing side channel.
//   - chmod: log path pointer in writable data, NUL-terminated through the
//     pointer in user mode at startup — invalid candidate.
//   - recv: buffer pointer from the connection struct, but the error path
//     resets the buffer through the same pointer — invalid candidate.
//   - write: response built through the connection's response pointer —
//     invalid candidate.
//   - open: static config path — observed only.
func Cherokee() (*Server, error) {
	b := asm.NewBuilder("cherokee", bin.KindExecutable)

	b.Func("main").Entry("main")
	// open("/etc/cherokee.conf") — static.
	b.LeaData(isa.R1, "s_confpath").MovRI(isa.R2, 0)
	sys(b, kernel.SysOpen)
	b.MovRR(isa.R12, isa.R0)
	b.MovRR(isa.R1, isa.R12).LeaData(isa.R2, "cfgbuf").MovRI(isa.R3, 64)
	sys(b, kernel.SysRead)
	b.MovRR(isa.R1, isa.R12)
	sys(b, kernel.SysClose)
	// chmod(log path) through a writable pointer, NUL-terminating through
	// it first (user mode).
	b.LeaData(isa.R10, "log_path_ptr").
		Load(8, isa.R1, isa.R10, 0).
		MovRI(isa.R13, 0).
		Store(1, isa.R1, 19, isa.R13) // user-mode terminator
	sys(b, kernel.SysChmod)

	emitListen(b, HTTPPort)
	// Publish the listener fd for workers.
	b.LeaData(isa.R12, "listen_fd").Store(8, isa.R12, 0, isa.R6)

	// Create one epoll per worker, record it, seed the worker context
	// with its event-array pointer, and spawn the worker.
	b.MovRI(isa.R8, 0) // i
	b.Label("spawn_loop")
	b.CmpRI(isa.R8, CherokeeThreads).Jge("spawned")
	emitEpollCreate(b) // R9 = epfd
	// Every worker also watches the listener.
	emitEpollAdd(b, isa.R6, "ev_scratch")
	b.LeaData(isa.R12, "epoll_table").
		MovRR(isa.R13, isa.R8).
		MulRI(isa.R13, 8).
		AddRR(isa.R12, isa.R13).
		Store(8, isa.R12, 0, isa.R9)
	// thread_ctx[i].evptr = ev_arrays + i*32
	b.LeaData(isa.R12, "thread_ctxs").
		MovRR(isa.R13, isa.R8).
		MulRI(isa.R13, 16).
		AddRR(isa.R12, isa.R13).
		LeaData(isa.R14, "ev_arrays").
		MovRR(isa.R13, isa.R8).
		MulRI(isa.R13, 32).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 0, isa.R14)
	// spawn_thread(worker, i)
	b.LeaCode(isa.R1, "worker").MovRR(isa.R2, isa.R8)
	sys(b, kernel.SysSpawnThread)
	b.AddRI(isa.R8, 1).Jmp("spawn_loop")
	b.Label("spawned")
	// Main thread sleeps forever in one-second naps (supervisor).
	b.Label("supervise")
	b.MovRI(isa.R1, kernel.TicksPerSecond)
	sys(b, kernel.SysNanosleep)
	b.Jmp("supervise")
	b.EndFunc()

	// worker: index arrives in R1.
	b.Func("worker")
	b.MovRR(isa.R8, isa.R1)
	// epfd = epoll_table[i]
	b.LeaData(isa.R12, "epoll_table").
		MovRR(isa.R13, isa.R8).
		MulRI(isa.R13, 8).
		AddRR(isa.R12, isa.R13).
		Load(8, isa.R9, isa.R12, 0)
	// ctx = thread_ctxs + i*16
	b.LeaData(isa.R10, "thread_ctxs").
		MovRR(isa.R13, isa.R8).
		MulRI(isa.R13, 16).
		AddRR(isa.R10, isa.R13)
	b.Label("w_loop")
	// epoll_wait(epfd, [ctx.evptr], 2, 1s) — evptr reloaded every
	// iteration; a corrupted pointer yields an immediate -EFAULT and the
	// loop spins (performance degradation, no crash).
	b.Load(8, isa.R2, isa.R10, 0).
		MovRR(isa.R1, isa.R9).
		MovRI(isa.R3, 2).
		MovRI(isa.R4, kernel.TicksPerSecond)
	sys(b, kernel.SysEpollWait)
	b.CmpRI(isa.R0, 0).Jle("w_loop")
	// fd = event[0].data, read through the pointer epoll_wait just
	// validated (still in R2) — re-loading it from the context here would
	// dereference a possibly newly-corrupted value. Keep it in R15 for
	// the rest of this event's handling.
	b.Load(8, isa.R7, isa.R2, 8).
		MovRR(isa.R15, isa.R2)
	b.LeaData(isa.R12, "listen_fd").Load(8, isa.R12, isa.R12, 0)
	b.CmpRR(isa.R7, isa.R12).Jnz("w_serve")
	// Nonblocking accept; losers of the race just loop.
	b.MovRR(isa.R1, isa.R12).MovRI(isa.R2, 1)
	sys(b, kernel.SysAccept)
	b.CmpRI(isa.R0, 0).Jl("w_loop")
	b.MovRR(isa.R7, isa.R0)
	// conn = conn_pool + fd*32; buffers per fd.
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	b.LeaData(isa.R14, "conn_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 0, isa.R14)
	b.LeaData(isa.R14, "resp_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 8, isa.R14)
	// The accepting worker owns the connection: add to MY epoll, using
	// the upper half of my per-worker event array (via the validated
	// pointer in R15) as ctl scratch — the shared scratch would race
	// between workers.
	b.MovRR(isa.R4, isa.R15).
		AddRI(isa.R4, 16).
		MovRI(isa.R5, kernel.EpollIn).
		Store(4, isa.R4, 0, isa.R5).
		Store(8, isa.R4, 8, isa.R7).
		MovRR(isa.R1, isa.R9).
		MovRI(isa.R2, kernel.EpollCtlAdd).
		MovRR(isa.R3, isa.R7)
	sys(b, kernel.SysEpollCtl)
	b.Jmp("w_loop")
	b.Label("w_serve")
	// conn = conn_pool + fd*32
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	// recv(fd, conn.bufptr, 48, DONTWAIT)
	b.Load(8, isa.R2, isa.R12, 0).
		MovRR(isa.R1, isa.R7).
		MovRI(isa.R3, 48).
		MovRI(isa.R4, 1)
	sys(b, kernel.SysRecv)
	b.MovRR(isa.R15, isa.R0)
	b.CmpRI(isa.R15, 0).Jg("w_got")
	// EAGAIN: another thread raced us; just loop.
	b.MovRI(isa.R14, 0).SubRI(isa.R14, int32(kernel.EAGAIN)).
		CmpRR(isa.R15, isa.R14).
		Jz("w_loop")
	// Real error/EOF: reset the buffer through its pointer (user-mode
	// store — the crash point for corrupted recv pointers), then close.
	b.Load(8, isa.R2, isa.R12, 0).
		MovRI(isa.R13, 0).
		Store(1, isa.R2, 0, isa.R13)
	b.MovRR(isa.R1, isa.R7)
	sys(b, kernel.SysClose)
	b.Jmp("w_loop")
	b.Label("w_got")
	// Respond through conn.rbufptr (user-mode store first).
	b.Load(8, isa.R2, isa.R12, 8).
		MovRI(isa.R13, 0x0a4b4f). // "OK\n"
		Store(8, isa.R2, 0, isa.R13).
		MovRR(isa.R1, isa.R7).
		MovRI(isa.R3, 16)
	sys(b, kernel.SysWrite)
	b.Jmp("w_loop")
	b.EndFunc()

	b.Data("s_confpath", []byte("/etc/cherokee.conf\x00"))
	b.Data("log_path", []byte("/var/log/access.log\x00\x00\x00\x00"))
	b.DataPtr("log_path_ptr", "log_path")
	b.BSS("cfgbuf", 64)
	b.BSS("listen_fd", 8)
	b.BSS("ev_scratch", 16)
	b.BSS("ev_scratch2", 16)
	b.BSS("epoll_table", CherokeeThreads*8)
	b.BSS("thread_ctxs", CherokeeThreads*16)
	b.BSS("ev_arrays", CherokeeThreads*32)
	b.BSS("conn_pool", 32*32)
	b.BSS("conn_bufs", 32*64)
	b.BSS("resp_bufs", 32*64)
	b.Export("thread_ctxs", "thread_ctxs")
	b.Export("conn_pool", "conn_pool")

	img, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cherokee: %w", err)
	}
	return &Server{
		Name:         "cherokee",
		Port:         HTTPPort,
		Image:        img,
		Suite:        cherokeeSuite,
		ServiceCheck: httpServiceCheck(HTTPPort),
	}, nil
}

func cherokeeSuite(env *ServerEnv) error {
	for i := 0; i < 4; i++ {
		env.Request(HTTPPort, []byte("GET /index.html\n\n"))
	}
	return nil
}
