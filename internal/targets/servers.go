package targets

import (
	"errors"
	"fmt"
)

// ErrUnknownServer is wrapped by ServerByName for unrecognized names, so
// callers can match with errors.Is regardless of the formatted message.
var ErrUnknownServer = errors.New("unknown server")

// AllServers builds the five server targets of Table I in the paper's
// column order.
func AllServers() ([]*Server, error) {
	builders := []func() (*Server, error){Nginx, Cherokee, Lighttpd, Memcached, Postgres}
	out := make([]*Server, 0, len(builders))
	for _, build := range builders {
		s, err := build()
		if err != nil {
			return nil, fmt.Errorf("build servers: %w", err)
		}
		out = append(out, s)
	}
	return out, nil
}

// ServerNames lists the Table I server names in column order without
// building the targets (TestServerNamesMatchBuilders pins the list
// against AllServers). Request validation uses it to reject unknown
// targets cheaply; generated references ("gen-0", "gen-1", …) are not
// enumerated here — ParseGenServerRef recognizes them and ServerByName
// builds them on demand.
func ServerNames() []string {
	return []string{"nginx", "cherokee", "lighttpd", "memcached", "postgresql"}
}

// ServerByName builds one server target by its Table I name or by a
// generated-server reference ("gen-<index>", built from DefaultGenSeed).
func ServerByName(name string) (*Server, error) {
	if idx, ok := ParseGenServerRef(name); ok {
		return GenServer(DefaultGenSeed, idx)
	}
	all, err := AllServers()
	if err != nil {
		return nil, err
	}
	for _, s := range all {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownServer, name)
}
