// Package targets builds the synthetic analysis subjects of the evaluation:
// five Linux-model server programs reproducing the dispatch architectures of
// Nginx 1.9, Cherokee 1.2, Lighttpd 1.4, Memcached 1.4 and PostgreSQL 9.0
// (Table I), two Windows-model browser processes reproducing the Internet
// Explorer 11 and Firefox 46 case studies (§VI-A/B, §VII-A), and the
// 187-DLL system library corpus behind Tables II and III.
//
// Every target is real M64 code assembled through internal/asm; the
// discovery pipelines analyze these binaries exactly as the paper's tools
// analyzed ELF servers and PE DLLs. Generator-side knowledge (which syscall
// should end up usable, which filter accepts access violations) exists only
// to *construct* the binaries — the analyses rediscover it from the code.
package targets

import (
	"fmt"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/kernel"
	"crashresist/internal/taint"
	"crashresist/internal/vm"
)

// Default ports and sizing.
const (
	HTTPPort = 80
	// StartupBudget bounds the virtual ticks a server may spend in
	// initialization before its listener must be up.
	StartupBudget = 5_000_000
	// SuiteBudget bounds one test-suite step.
	SuiteBudget = 20_000_000
)

// Server describes one server target: its binary plus the test-suite driver
// the discovery pipeline replays (the paper ran each server's standard test
// suite under instrumentation).
type Server struct {
	Name  string
	Port  uint64
	Image *bin.Image
	// Suite drives the server's workload: connections, requests,
	// responses. It must be deterministic and tolerate unserved
	// connections (validation replays run with corrupted state).
	Suite func(env *ServerEnv) error
	// ServiceCheck opens a fresh connection after the suite and reports
	// whether the server still serves it — the deeper liveness check
	// the paper proposes to kill the Memcached false positive.
	ServiceCheck func(env *ServerEnv) bool
}

// ServerEnv is one instantiated run of a server: process, kernel, taint.
type ServerEnv struct {
	Proc  *vm.Process
	Kern  *kernel.Kernel
	Taint *taint.Engine
}

// NewEnv boots a fresh environment for the server: loads the image,
// attaches kernel and taint engine, starts main and runs initialization
// until the process goes idle (listening).
func (s *Server) NewEnv(seed int64) (*ServerEnv, error) {
	env, err := s.NewEnvNoStart(seed)
	if err != nil {
		return nil, err
	}
	if err := env.Boot(); err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	return env, nil
}

// NewEnvNoStart prepares the environment without starting execution, so
// callers can install tracers or corruption hooks first.
func (s *Server) NewEnvNoStart(seed int64) (*ServerEnv, error) {
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformLinux, Seed: seed})
	k := kernel.New()
	k.Attach(p)
	te := taint.New()
	te.Attach(p)
	env := &ServerEnv{Proc: p, Kern: k, Taint: te}
	seedFilesystem(k)
	if _, err := p.LoadImage(s.Image); err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name, err)
	}
	return env, nil
}

// Boot starts the main thread and runs until the server idles in its event
// loop.
func (e *ServerEnv) Boot() error {
	if _, err := e.Proc.Start(); err != nil {
		return err
	}
	res := e.Proc.RunUntilIdle(StartupBudget)
	if res.State == vm.ProcCrashed {
		return fmt.Errorf("crashed during startup: %v", e.Proc.Crash)
	}
	return nil
}

// Step runs the process until it goes idle again (or the budget expires).
func (e *ServerEnv) Step() vm.RunResult {
	return e.Proc.RunUntilIdle(SuiteBudget)
}

// Alive reports whether the server process has not crashed or exited.
func (e *ServerEnv) Alive() bool { return e.Proc.Alive() }

// Request opens a connection, sends the payload, pumps the VM in small
// slices until the server responds (or the budget runs out), and returns the
// response. served is false when the server never wrote back.
func (e *ServerEnv) Request(port uint64, payload []byte) (resp []byte, served bool) {
	resp, _, served = e.RequestTimed(port, payload)
	return resp, served
}

// RequestTimed is Request plus the virtual ticks that elapsed between
// sending the payload and the response arriving — the measurement behind the
// Cherokee timing side channel (§VI-D). On an unserved request the tick
// count covers the whole (exhausted) budget.
func (e *ServerEnv) RequestTimed(port uint64, payload []byte) (resp []byte, ticks uint64, served bool) {
	cc, err := e.Kern.Connect(port)
	if err != nil {
		return nil, 0, false
	}
	cc.Send(payload)
	start := e.Proc.Clock
	// The slice is the measurement granularity: it must sit well below a
	// request's service time difference for the Cherokee timing side
	// channel (§VI-D) to be observable.
	const slice = 64
	for e.Proc.Clock-start < requestBudget && e.Proc.Alive() {
		res := e.Proc.Run(slice)
		if resp = cc.Recv(); len(resp) > 0 {
			break
		}
		if res.State == vm.ProcIdle && res.Ticks == 0 {
			// Fully idle with no pending timers: the virtual clock
			// cannot advance, so the request will never be served.
			break
		}
	}
	ticks = e.Proc.Clock - start
	cc.Close()
	e.Proc.Run(slice)
	return resp, ticks, len(resp) > 0
}

// requestBudget bounds the virtual time one request may take before being
// declared unserved (covers several worker timeout periods).
const requestBudget = 4 * kernel.TicksPerSecond

// seedFilesystem installs the configuration files every server model opens
// at startup.
func seedFilesystem(k *kernel.Kernel) {
	k.AddFile("/etc/nginx.conf", []byte("worker_processes 1;\n"))
	k.AddFile("/etc/cherokee.conf", []byte("server!threads = 4\n"))
	k.AddFile("/etc/lighttpd.conf", []byte("server.port = 80\n"))
	k.AddFile("/etc/memcached.conf", []byte("-m 64\n"))
	k.AddFile("/etc/postgresql.conf", []byte("max_connections = 8\n"))
	k.AddFile("/var/www/index.html", []byte("<html>hello</html>"))
	k.AddFile("/var/run/server.pid", []byte("1\n"))
	k.AddFile("/var/log/access.log", nil)
}

// sys emits "R0 = num; syscall".
func sys(b *asm.Builder, num uint64) *asm.Builder {
	return b.MovRI(isa.R0, num).Syscall()
}

// emitListen emits socket/bind(port)/listen, leaving the listener fd in R6.
func emitListen(b *asm.Builder, port uint64) {
	sys(b, kernel.SysSocket)
	b.MovRR(isa.R6, isa.R0)
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, port)
	sys(b, kernel.SysBind)
	b.MovRR(isa.R1, isa.R6)
	sys(b, kernel.SysListen)
}

// emitEpollCreate emits epoll_create, leaving the epoll fd in R9.
func emitEpollCreate(b *asm.Builder) {
	sys(b, kernel.SysEpollCreate)
	b.MovRR(isa.R9, isa.R0)
}

// emitEpollAdd registers fdReg (read interest) on the epoll fd in R9, using
// the scratch event struct at the named symbol. The event's data field is
// the fd itself. Clobbers R1..R5; fdReg must not be R4 or R5.
func emitEpollAdd(b *asm.Builder, fdReg isa.Register, evSym string) {
	b.LeaData(isa.R4, evSym).
		MovRI(isa.R5, kernel.EpollIn).
		Store(4, isa.R4, 0, isa.R5).
		Store(8, isa.R4, 8, fdReg).
		MovRR(isa.R1, isa.R9).
		MovRI(isa.R2, kernel.EpollCtlAdd).
		MovRR(isa.R3, fdReg)
	sys(b, kernel.SysEpollCtl)
}
