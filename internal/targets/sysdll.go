package targets

import (
	"fmt"
	"math/rand"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

// DLLSpec sizes one system DLL's exception-handling population.
type DLLSpec struct {
	Name string
	// Filters is the number of unique filter functions (Table III,
	// before symbolic execution). Catch-all scope entries are not filter
	// functions and are counted separately.
	Filters int
	// AVFilters of those accept access violations (Table III, after SE).
	AVFilters int
	// CatchAll is the number of guarded locations using the catch-all
	// marker (always accepting, but not filter functions).
	CatchAll int
	// Handlers is the number of guarded code locations (Table II,
	// "before SE"), including the catch-all ones.
	Handlers int
	// AVHandlers of those are guarded by AV-accepting filters or
	// catch-all entries (Table II, "after SE").
	AVHandlers int
	// OnPath of the AV-guarded locations are exercised by the browse
	// workload (Table II, "execution path").
	OnPath int
}

// validate checks internal consistency. Unique filter functions only exist
// through scope-table references, so each side's filter population must fit
// inside its referencing handler population:
//
//	AVHandlers-CatchAll ≥ AVFilters  and  Handlers-AVHandlers ≥ Filters-AVFilters
func (s DLLSpec) validate() error {
	switch {
	case s.AVFilters > s.Filters:
		return fmt.Errorf("%s: AVFilters %d > Filters %d", s.Name, s.AVFilters, s.Filters)
	case s.AVHandlers > s.Handlers:
		return fmt.Errorf("%s: AVHandlers %d > Handlers %d", s.Name, s.AVHandlers, s.Handlers)
	case s.OnPath > s.AVHandlers:
		return fmt.Errorf("%s: OnPath %d > AVHandlers %d", s.Name, s.OnPath, s.AVHandlers)
	case s.CatchAll > s.AVHandlers:
		return fmt.Errorf("%s: CatchAll %d > AVHandlers %d", s.Name, s.CatchAll, s.AVHandlers)
	case s.AVHandlers > s.CatchAll && s.AVFilters == 0:
		return fmt.Errorf("%s: filter-backed AV handlers but no AV filters", s.Name)
	case s.Handlers-s.AVHandlers > 0 && s.Filters-s.AVFilters == 0:
		return fmt.Errorf("%s: rejecting handlers but no rejecting filters", s.Name)
	case s.AVFilters > 0 && s.AVHandlers-s.CatchAll < s.AVFilters:
		return fmt.Errorf("%s: %d AV filters cannot all be referenced by %d filter-backed AV handlers",
			s.Name, s.AVFilters, s.AVHandlers-s.CatchAll)
	case s.Filters-s.AVFilters > s.Handlers-s.AVHandlers:
		return fmt.Errorf("%s: %d rejecting filters cannot all be referenced by %d rejecting handlers",
			s.Name, s.Filters-s.AVFilters, s.Handlers-s.AVHandlers)
	}
	return nil
}

// CorpusParams sizes the whole system-DLL corpus.
type CorpusParams struct {
	Seed int64
	// Named are the DLLs reported individually in Tables II/III.
	Named []DLLSpec
	// FillerDLLs unnamed libraries complete the population.
	FillerDLLs int
	// Totals the corpus must reach across named + filler DLLs.
	TotalHandlers   int
	TotalFilters    int
	TotalAVFilters  int
	TotalAVHandlers int
	TotalOnPath     int

	// Extend lets a browser builder append extra (unguarded) code to a
	// named DLL — e.g. the JS-API wrapper functions in jscript9. Applied
	// after the generic population; must not add scope entries.
	Extend map[string]func(b *asm.Builder)

	// GenDLLs appends that many generated DLLs (generate.go) after the
	// hand-built population, each derived solely from (GenSeed, index) so
	// the generated images are byte-identical to a standalone
	// GenDLLCorpus(GenSeed, GenDLLs) run. Zero (the paper and small
	// settings) leaves the corpus exactly as before, keeping every golden
	// table byte-identical.
	GenSeed int64
	GenDLLs int
}

// PaperCorpusParams reproduces the paper's population: 187 DLLs, 6,745
// C-specific handlers, 5,751 unique filter functions, 808 surviving
// symbolic execution, used by 1,797 handlers, 385 guarded locations on the
// browse execution path. Per-DLL numbers follow Tables II/III where the
// paper states them; kernelbase/ntdll handler counts and the rpcrt4 filter
// counts are not in the paper and are chosen consistently (see
// EXPERIMENTS.md).
func PaperCorpusParams() CorpusParams {
	return CorpusParams{
		Seed: 424242,
		Named: []DLLSpec{
			{Name: "user32.dll", Filters: 10, AVFilters: 5, Handlers: 70, AVHandlers: 63, OnPath: 40, CatchAll: 2},
			{Name: "kernel32.dll", Filters: 30, AVFilters: 22, Handlers: 76, AVHandlers: 66, OnPath: 14, CatchAll: 3},
			{Name: "msvcrt.dll", Filters: 129, AVFilters: 9, Handlers: 129, AVHandlers: 9, OnPath: 3},
			{Name: "jscript9.dll", Filters: 21, AVFilters: 5, Handlers: 22, AVHandlers: 6, OnPath: 4, CatchAll: 1},
			{Name: "rpcrt4.dll", Filters: 54, AVFilters: 12, Handlers: 62, AVHandlers: 20, OnPath: 6},
			{Name: "sechost.dll", Filters: 126, AVFilters: 4, Handlers: 133, AVHandlers: 11, OnPath: 0},
			{Name: "ws2_32.dll", Filters: 78, AVFilters: 25, Handlers: 82, AVHandlers: 29, OnPath: 10},
			{Name: "xmllite.dll", Filters: 8, AVFilters: 0, Handlers: 10, AVHandlers: 2, OnPath: 1, CatchAll: 2},
			{Name: "kernelbase.dll", Filters: 76, AVFilters: 21, Handlers: 85, AVHandlers: 30, OnPath: 8},
			{Name: "ntdll.dll", Filters: 79, AVFilters: 25, Handlers: 95, AVHandlers: 40, OnPath: 5},
		},
		FillerDLLs:      177,
		TotalHandlers:   6745,
		TotalFilters:    5751,
		TotalAVFilters:  808,
		TotalAVHandlers: 1797,
		TotalOnPath:     385,
	}
}

// SmallCorpusParams is a scaled-down corpus for tests.
func SmallCorpusParams() CorpusParams {
	return CorpusParams{
		Seed: 7,
		Named: []DLLSpec{
			{Name: "user32.dll", Filters: 4, AVFilters: 2, Handlers: 8, AVHandlers: 5, OnPath: 3, CatchAll: 1},
			{Name: "jscript9.dll", Filters: 5, AVFilters: 2, Handlers: 6, AVHandlers: 3, OnPath: 2, CatchAll: 1},
			{Name: "ntdll.dll", Filters: 6, AVFilters: 2, Handlers: 7, AVHandlers: 3, OnPath: 1},
		},
		FillerDLLs:      4,
		TotalHandlers:   45,
		TotalFilters:    39, // named 15 + derived filler 24
		TotalAVFilters:  12,
		TotalAVHandlers: 17,
		TotalOnPath:     8,
	}
}

// SitePlan is one browse-workload call target.
type SitePlan struct {
	Module string
	Export string
	// Scope is the scope-table index of the guarded location the export
	// exercises.
	Scope int
}

// CorpusPlan records what the generator built, for the browse-workload
// generator and for verifying totals.
type CorpusPlan struct {
	Specs []DLLSpec
	Sites []SitePlan
	// Gen holds the declared specs of the generated population (empty
	// unless CorpusParams.GenDLLs > 0). Sites includes the generated
	// on-path sites after the hand-built ones.
	Gen []GenDLLSpec
}

// Totals sums the plan's hand-built populations (generated DLLs are
// declared in Gen and summed by GenTotals).
func (p *CorpusPlan) Totals() (handlers, filters, avFilters, avHandlers, onPath int) {
	for _, s := range p.Specs {
		handlers += s.Handlers
		filters += s.Filters
		avFilters += s.AVFilters
		avHandlers += s.AVHandlers
		onPath += s.OnPath
	}
	return handlers, filters, avFilters, avHandlers, onPath
}

// GenTotals sums the declared generated populations.
func (p *CorpusPlan) GenTotals() (handlers, filters, avFilters, avHandlers, onPath int) {
	for _, s := range p.Gen {
		handlers += s.Handlers
		filters += s.Filters
		avFilters += s.AVFilters
		avHandlers += s.AVHandlers
		onPath += s.OnPath
	}
	return handlers, filters, avFilters, avHandlers, onPath
}

// BuildSysDLLs generates the corpus images plus the plan: the hand-built
// population first, then any generated population (CorpusParams.GenDLLs).
// DLLs are assembled in parallel: each gets a private RNG derived from
// the relevant seed and its index, so the generated bytes are a pure
// function of (params, index) and independent of scheduling; results land
// in index-addressed slices and are concatenated in spec order.
func BuildSysDLLs(params CorpusParams) ([]*bin.Image, *CorpusPlan, error) {
	specs, err := expandSpecs(params)
	if err != nil {
		return nil, nil, err
	}
	if params.GenDLLs < 0 {
		return nil, nil, fmt.Errorf("corpus: negative GenDLLs %d", params.GenDLLs)
	}
	plan := &CorpusPlan{Specs: specs, Gen: make([]GenDLLSpec, params.GenDLLs)}
	total := len(specs) + params.GenDLLs
	images := make([]*bin.Image, total)
	sites := make([][]SitePlan, total)
	errs := make([]error, total)

	genParallel(total, func(i int) {
		if i < len(specs) {
			rng := rand.New(rand.NewSource(params.Seed + int64(i)*0x9e3779b9))
			images[i], sites[i], errs[i] = buildDLL(specs[i], rng, params.Extend[specs[i].Name])
			return
		}
		gi := i - len(specs)
		images[i], plan.Gen[gi], sites[i], errs[i] = buildGenDLL(params.GenSeed, gi)
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	for _, s := range sites {
		plan.Sites = append(plan.Sites, s...)
	}
	return images, plan, nil
}

// expandSpecs appends filler DLL specs so the corpus meets the totals.
func expandSpecs(params CorpusParams) ([]DLLSpec, error) {
	var nH, nF, nAF, nAH, nP int
	for _, s := range params.Named {
		if err := s.validate(); err != nil {
			return nil, err
		}
		nH += s.Handlers
		nF += s.Filters
		nAF += s.AVFilters
		nAH += s.AVHandlers
		nP += s.OnPath
	}
	remH := params.TotalHandlers - nH
	remF := params.TotalFilters - nF
	remAF := params.TotalAVFilters - nAF
	remAH := params.TotalAVHandlers - nAH
	remP := params.TotalOnPath - nP
	n := params.FillerDLLs
	if n < 0 || remH < 0 || remF < 0 || remAF < 0 || remAH < 0 || remP < 0 {
		return nil, fmt.Errorf("corpus totals smaller than named sums")
	}
	specs := append([]DLLSpec(nil), params.Named...)
	if n == 0 {
		if remH != 0 || remF != 0 {
			return nil, fmt.Errorf("no filler DLLs but remainder nonzero")
		}
		return specs, nil
	}
	share := func(total, i int) int {
		base := total / n
		if i < total%n {
			base++
		}
		return base
	}
	// Filler filter counts are *derived*: every rejecting handler
	// references its own rejecting filter and every AV filter is
	// referenced, so F_i = (H_i - AVH_i) + AVF_i. The corpus totals must
	// be consistent with that identity; PaperCorpusParams is tuned so
	// the derived sum lands exactly on TotalFilters.
	sumF := 0
	for i := 0; i < n; i++ {
		s := DLLSpec{
			Name:       fmt.Sprintf("lib%03d.dll", i),
			Handlers:   share(remH, i),
			AVFilters:  share(remAF, i),
			AVHandlers: share(remAH, i),
			OnPath:     share(remP, i),
		}
		s.Filters = (s.Handlers - s.AVHandlers) + s.AVFilters
		sumF += s.Filters
		if err := s.validate(); err != nil {
			return nil, fmt.Errorf("filler: %w", err)
		}
		specs = append(specs, s)
	}
	if sumF != remF {
		return nil, fmt.Errorf("corpus params inconsistent: filler filters derive to %d, need %d", sumF, remF)
	}
	return specs, nil
}

// buildDLL assembles one corpus DLL: filter functions, guarded functions,
// and exported browse entry points. The case-study DLLs (jscript9, ntdll)
// carry hand-written extras; their generic population is reduced so the
// DLL's *measured* totals still equal the spec.
func buildDLL(spec DLLSpec, rng *rand.Rand, extend func(*asm.Builder)) (*bin.Image, []SitePlan, error) {
	b := asm.NewBuilder(spec.Name, bin.KindLibrary)

	gen := spec
	switch spec.Name {
	case "jscript9.dll":
		// Extras: MUTX::Enter (catch-all guarded handler, on the
		// browse path via js_run) and guarded_cfg with the
		// import-calling cfg_filter (a filter function whose verdict
		// is unknown, so it does not count as accepting).
		gen.Handlers -= 2
		gen.AVHandlers--
		gen.CatchAll--
		gen.Filters--
		gen.OnPath--
	case "ntdll.dll":
		// Extra: RtlSafeRead with its accepting exclusion filter (not
		// on the IE browse path).
		gen.Handlers--
		gen.AVHandlers--
		gen.Filters--
		gen.AVFilters--
	}
	if err := gen.validate(); err != nil {
		return nil, nil, fmt.Errorf("sysdll %s: after extras: %w", spec.Name, err)
	}

	// Filter functions: the first AVFilters accept access violations.
	filterLabels := make([]string, gen.Filters)
	for i := 0; i < gen.Filters; i++ {
		name := fmt.Sprintf("flt%03d", i)
		filterLabels[i] = name
		if i < gen.AVFilters {
			emitAcceptingFilter(b, name, rng.Intn(5))
		} else {
			emitRejectingFilter(b, name, rng.Intn(5))
		}
	}

	// Guarded functions. AV-backed ones come first so the on-path subset
	// is well defined; the catch-all quota is drawn from the AV group.
	var sites []SitePlan
	for i := 0; i < gen.Handlers; i++ {
		fn := fmt.Sprintf("grd%03d", i)
		var filter string
		switch {
		case i < gen.CatchAll:
			filter = asm.CatchAll
		case i < gen.AVHandlers:
			filter = filterLabels[(i-gen.CatchAll)%maxInt(gen.AVFilters, 1)]
		default:
			filter = filterLabels[gen.AVFilters+(i-gen.AVHandlers)%maxInt(gen.Filters-gen.AVFilters, 1)]
		}
		emitGuardedFunc(b, fn, filter)
		if i < gen.OnPath {
			export := fmt.Sprintf("path%03d", i)
			emitSiteWrapper(b, export, fn)
			b.Export(export, export)
			sites = append(sites, SitePlan{Module: spec.Name, Export: export, Scope: i})
		}
	}

	// Special population for the case-study DLLs.
	switch spec.Name {
	case "jscript9.dll":
		emitJscript9Extras(b)
		// js_run drives MUTX::Enter, whose guard is the first extra
		// scope entry.
		sites = append(sites, SitePlan{Module: spec.Name, Export: "js_run", Scope: gen.Handlers})
	case "ntdll.dll":
		emitNtdllExtras(b)
	}
	if extend != nil {
		extend(b)
	}

	b.BSS("scratch", 64)
	img, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("sysdll %s: %w", spec.Name, err)
	}
	return img, sites, nil
}

// emitAcceptingFilter writes a filter that accepts access violations, in
// one of several real-world idioms.
func emitAcceptingFilter(b *asm.Builder, name string, variant int) {
	yes, no := name+"_y", name+"_n"
	b.Func(name)
	switch variant % 5 {
	case 0: // accept everything
		b.MovRI(isa.R0, 1).Ret()
	case 1: // code == ACCESS_VIOLATION
		b.MovRI(isa.R3, uint64(vm.ExcAccessViolation)).
			CmpRR(isa.R1, isa.R3).
			Jz(yes).
			MovRI(isa.R0, 0).Ret().
			Label(yes).MovRI(isa.R0, 1).Ret()
	case 2: // error severity: code >> 30 == 3
		b.MovRR(isa.R3, isa.R1).
			ShrRI(isa.R3, 30).
			CmpRI(isa.R3, 3).
			Jz(yes).
			MovRI(isa.R0, 0).Ret().
			Label(yes).MovRI(isa.R0, 1).Ret()
	case 3: // range 0xC0000000..0xCFFFFFFF
		b.MovRI(isa.R3, 0xC0000000).
			CmpRR(isa.R1, isa.R3).
			Jb(no).
			MovRI(isa.R3, 0xD0000000).
			CmpRR(isa.R1, isa.R3).
			Jae(no).
			MovRI(isa.R0, 1).Ret().
			Label(no).MovRI(isa.R0, 0).Ret()
	default: // broad: everything except divide-by-zero
		b.MovRI(isa.R3, uint64(vm.ExcDivideByZero)).
			CmpRR(isa.R1, isa.R3).
			Jz(no).
			MovRI(isa.R0, 1).Ret().
			Label(no).MovRI(isa.R0, 0).Ret()
	}
	b.EndFunc()
}

// emitRejectingFilter writes a filter that cannot accept access violations.
func emitRejectingFilter(b *asm.Builder, name string, variant int) {
	yes, no := name+"_y", name+"_n"
	b.Func(name)
	switch variant % 5 {
	case 0: // never handle
		b.MovRI(isa.R0, 0).Ret()
	case 1: // only divide-by-zero
		b.MovRI(isa.R3, uint64(vm.ExcDivideByZero)).
			CmpRR(isa.R1, isa.R3).
			Jz(yes).
			MovRI(isa.R0, 0).Ret().
			Label(yes).MovRI(isa.R0, 1).Ret()
	case 2: // only software exceptions 0xE0000000..0xEFFFFFFF
		b.MovRI(isa.R3, 0xE0000000).
			CmpRR(isa.R1, isa.R3).
			Jb(no).
			MovRI(isa.R3, 0xF0000000).
			CmpRR(isa.R1, isa.R3).
			Jae(no).
			MovRI(isa.R0, 1).Ret().
			Label(no).MovRI(isa.R0, 0).Ret()
	case 3: // everything except access violations (the exclusion idiom)
		b.MovRI(isa.R3, uint64(vm.ExcAccessViolation)).
			CmpRR(isa.R1, isa.R3).
			Jz(no).
			MovRI(isa.R0, 1).Ret().
			Label(no).MovRI(isa.R0, 0).Ret()
	default: // only stack overflow
		b.MovRI(isa.R3, uint64(vm.ExcStackOverflow)).
			CmpRR(isa.R1, isa.R3).
			Jz(yes).
			MovRI(isa.R0, 0).Ret().
			Label(yes).MovRI(isa.R0, 1).Ret()
	}
	b.EndFunc()
}

// emitGuardedFunc writes a function whose body dereferences its pointer
// argument (R1) inside a guarded region; the handler returns ^0.
func emitGuardedFunc(b *asm.Builder, name, filter string) {
	try, tryEnd, land := name+"_t", name+"_e", name+"_l"
	b.Func(name).
		Label(try).
		Load(8, isa.R0, isa.R1, 0).
		Label(tryEnd).
		Ret().
		Label(land).
		MovRI(isa.R0, ^uint64(0)).
		Ret().
		EndFunc()
	b.Guard(name, try, tryEnd, filter, land)
}

// emitSiteWrapper writes an exported entry point that calls the guarded
// function count (R1) times with a valid scratch pointer.
func emitSiteWrapper(b *asm.Builder, export, target string) {
	loop := export + "_l"
	b.Func(export).
		MovRR(isa.R3, isa.R1).
		LeaData(isa.R4, "scratch").
		Label(loop).
		MovRR(isa.R1, isa.R4).
		Call(target).
		SubRI(isa.R3, 1).
		TestRR(isa.R3, isa.R3).
		Jnz(loop).
		Ret().
		EndFunc()
}

// emitJscript9Extras adds the script-engine machinery of the IE 11 case
// study (§VI-A): the ScriptEngine object, MUTX::Enter guarded by a
// catch-all scope entry around an EnterCriticalSection-style call whose
// user-mode stub dereferences the debug-information pointer, and the
// post-security-update filter that consults another function (unresolvable
// statically — §VII-A). buildDLL deducts these from the generic population
// so the DLL's measured Table II/III counts match its spec.
func emitJscript9Extras(b *asm.Builder) {
	// ScriptEngine object: +0 critsec pointer, +8 status word. The
	// CRITICAL_SECTION: +16 debug_info pointer. The structures are built
	// from consecutive 8-aligned data symbols (the assembler lays data
	// symbols out contiguously), with load-time relocations wiring the
	// pointers so that normal script execution never faults.
	b.DataPtr("script_engine", "critsec")  // +0: critsec ptr
	b.DataU64("script_engine_status", 0)   // +8: status
	b.Data("critsec", make([]byte, 16))    // +0..15: lock fields
	b.DataPtr("critsec_dbg", "debug_info") // +16: debug_info ptr
	b.BSS("debug_info", 32)

	// mutx_enter: status=0; EnterCriticalSection(critsec.debug_info+16);
	// catch-all handler sets status=1.
	b.Func("mutx_enter").
		LeaData(isa.R10, "script_engine").
		MovRI(isa.R11, 0).
		Store(8, isa.R10, 8, isa.R11). // status = 0
		Load(8, isa.R12, isa.R10, 0).  // critsec ptr
		Load(8, isa.R1, isa.R12, 16).  // debug_info ptr
		AddRI(isa.R1, 16).             // field at +0x10
		Label("mutx_try").
		CallImport("", "RtlpEnterCriticalSection").
		Label("mutx_try_end").
		Ret().
		Label("mutx_land").
		LeaData(isa.R10, "script_engine").
		MovRI(isa.R11, 1).
		Store(8, isa.R10, 8, isa.R11). // status = 1
		Ret().
		EndFunc()
	b.Guard("mutx_enter", "mutx_try", "mutx_try_end", asm.CatchAll, "mutx_land")
	b.Export("mutx_enter", "mutx_enter")
	b.Export("script_engine", "script_engine")
	b.Export("critsec", "critsec")
	b.Export("debug_info", "debug_info")

	// js_run models the engine processing new script R1 times: each
	// evaluation enters the MUTX first (the PoC trigger path).
	b.Func("js_run").
		MovRR(isa.R3, isa.R1).
		Label("jsr_loop").
		Call("mutx_enter").
		SubRI(isa.R3, 1).
		TestRR(isa.R3, isa.R3).
		Jnz("jsr_loop").
		Ret().
		EndFunc()
	b.Export("js_run", "js_run")

	// Post-update variant: the filter asks a helper (through the import
	// table) whether the exception class is enabled — symbolic execution
	// reports it unknown.
	b.Func("cfg_filter").
		CallImport("", "RtlQueryExceptionPolicy").
		Ret().
		EndFunc()
	b.Func("guarded_cfg").
		Label("gc_try").
		Load(8, isa.R0, isa.R1, 0).
		Label("gc_end").
		Ret().
		Label("gc_land").
		MovRI(isa.R0, ^uint64(0)).
		Ret().
		EndFunc()
	b.Guard("guarded_cfg", "gc_try", "gc_end", "cfg_filter", "gc_land")
	b.Export("guarded_cfg", "guarded_cfg")
}

// emitNtdllExtras adds the RtlSafeRead oracle of the Firefox 46 case study
// (§VI-B): a guarded read whose filter excludes a few exception classes but
// accepts access violations.
func emitNtdllExtras(b *asm.Builder) {
	b.Func("rtl_safe_filter").
		MovRI(isa.R3, uint64(vm.ExcDivideByZero)).
		CmpRR(isa.R1, isa.R3).
		Jz("rsf_no").
		MovRI(isa.R3, uint64(vm.ExcIllegalInstruction)).
		CmpRR(isa.R1, isa.R3).
		Jz("rsf_no").
		MovRI(isa.R0, 1).
		Ret().
		Label("rsf_no").
		MovRI(isa.R0, 0).
		Ret().
		EndFunc()
	b.Func("RtlSafeRead").
		Label("rsr_try").
		Load(8, isa.R0, isa.R1, 0).
		Label("rsr_end").
		Ret().
		Label("rsr_land").
		MovRI(isa.R0, ^uint64(0)).
		Ret().
		EndFunc()
	b.Guard("RtlSafeRead", "rsr_try", "rsr_end", "rtl_safe_filter", "rsr_land")
	b.Export("RtlSafeRead", "RtlSafeRead")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
