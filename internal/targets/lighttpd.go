package targets

import (
	"fmt"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/kernel"
)

// Lighttpd builds the Lighttpd-1.4 model: a single-threaded epoll server
// that serves files named in the request.
//
// Code-path inventory:
//   - read: request buffer pointer from the connection struct; -EFAULT
//     closes the connection gracefully — the usable primitive.
//   - open: the served file path is built through a pointer held in
//     writable data (the server NUL-terminates through it in user mode
//     before open) — invalid candidate.
//   - unlink: startup stale-socket cleanup through a pointer in writable
//     data with a user-mode length scan first — invalid candidate.
//   - write: response built through the connection's response pointer in
//     user mode — invalid candidate.
//   - mkdir/symlink/epoll_wait: static (LEA) pointers — observed only.
func Lighttpd() (*Server, error) {
	b := asm.NewBuilder("lighttpd", bin.KindExecutable)

	b.Func("main").Entry("main")
	// mkdir("/var/cache/lighttpd") — static.
	b.LeaData(isa.R1, "s_cachedir")
	sys(b, kernel.SysMkdir)
	// symlink("/etc/lighttpd.conf", "/etc/lighttpd.link") — static.
	b.LeaData(isa.R1, "s_confpath").LeaData(isa.R2, "s_linkpath")
	sys(b, kernel.SysSymlink)
	// unlink(stale unix socket) through a writable pointer; the cleanup
	// code scans the path's first byte in user mode first.
	b.LeaData(isa.R10, "sock_path_ptr").
		Load(8, isa.R1, isa.R10, 0).
		Load(1, isa.R11, isa.R1, 0) // user-mode scan
	sys(b, kernel.SysUnlink)

	emitListen(b, HTTPPort)
	emitEpollCreate(b)
	emitEpollAdd(b, isa.R6, "ev_scratch")

	b.Label("loop")
	b.MovRR(isa.R1, isa.R9).LeaData(isa.R2, "events").MovRI(isa.R3, 8).MovRI(isa.R4, ^uint64(0))
	sys(b, kernel.SysEpollWait)
	b.MovRR(isa.R11, isa.R0)
	b.CmpRI(isa.R11, 0).Jle("loop")
	b.MovRI(isa.R10, 0)
	b.Label("evloop")
	b.CmpRR(isa.R10, isa.R11).Jge("loop")
	b.LeaData(isa.R12, "events").
		MovRR(isa.R13, isa.R10).
		MulRI(isa.R13, 16).
		AddRR(isa.R12, isa.R13).
		Load(8, isa.R7, isa.R12, 8)
	b.CmpRR(isa.R7, isa.R6).Jnz("client")
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 1) // nonblocking accept
	sys(b, kernel.SysAccept)
	b.MovRR(isa.R7, isa.R0)
	b.CmpRI(isa.R7, 0).Jl("nextev")
	// conn = conn_pool + fd*32 with fresh buffer pointers.
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	b.LeaData(isa.R14, "conn_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 0, isa.R14)
	b.LeaData(isa.R14, "resp_bufs").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 64).
		AddRR(isa.R14, isa.R13).
		Store(8, isa.R12, 8, isa.R14)
	emitEpollAdd(b, isa.R7, "ev_scratch")
	b.Jmp("nextev")
	b.Label("client")
	b.Call("serve_conn")
	b.Label("nextev")
	b.AddRI(isa.R10, 1).Jmp("evloop")
	b.EndFunc()

	// serve_conn: fd in R7. One-shot request per readiness event.
	b.Func("serve_conn")
	b.Push(isa.R10).Push(isa.R11)
	b.LeaData(isa.R12, "conn_pool").
		MovRR(isa.R13, isa.R7).
		MulRI(isa.R13, 32).
		AddRR(isa.R12, isa.R13)
	// read(fd, conn.bufptr, 48) — the usable primitive.
	b.Load(8, isa.R2, isa.R12, 0).
		MovRR(isa.R1, isa.R7).
		MovRI(isa.R3, 48)
	sys(b, kernel.SysRead)
	b.MovRR(isa.R15, isa.R0)
	b.CmpRI(isa.R15, 0).Jg("sc_got")
	// Error/EOF: close gracefully.
	b.MovRR(isa.R1, isa.R7)
	sys(b, kernel.SysClose)
	b.Jmp("sc_out")
	b.Label("sc_got")
	// Build the served file path through doc_path_ptr: copy a fixed
	// prefix marker and NUL-terminate through the pointer (user mode).
	b.LeaData(isa.R10, "doc_path_ptr").
		Load(8, isa.R1, isa.R10, 0).
		MovRI(isa.R13, 0). // NUL terminator
		Store(1, isa.R1, 19, isa.R13)
	sys(b, kernel.SysOpen)
	b.MovRR(isa.R14, isa.R0)
	b.CmpRI(isa.R14, 0).Jl("sc_respond")
	// read file contents into the static file buffer, close.
	b.MovRR(isa.R1, isa.R14).LeaData(isa.R2, "filebuf").MovRI(isa.R3, 64)
	sys(b, kernel.SysRead)
	b.MovRR(isa.R1, isa.R14)
	sys(b, kernel.SysClose)
	b.Label("sc_respond")
	// Response through conn.rbufptr (user-mode store first).
	b.Load(8, isa.R2, isa.R12, 8).
		MovRI(isa.R13, 0x0a4b4f). // "OK\n"
		Store(8, isa.R2, 0, isa.R13).
		MovRR(isa.R1, isa.R7).
		MovRI(isa.R3, 16)
	sys(b, kernel.SysWrite)
	b.Label("sc_out")
	b.Pop(isa.R11).Pop(isa.R10)
	b.Ret()
	b.EndFunc()

	b.Data("s_cachedir", []byte("/var/cache/lighttpd\x00"))
	b.Data("s_confpath", []byte("/etc/lighttpd.conf\x00"))
	b.Data("s_linkpath", []byte("/etc/lighttpd.link\x00"))
	b.Data("sock_path", []byte("/var/run/lighttpd.sock\x00"))
	b.DataPtr("sock_path_ptr", "sock_path")
	b.Data("doc_path", []byte("/var/www/index.html\x00\x00\x00\x00"))
	b.DataPtr("doc_path_ptr", "doc_path")
	b.BSS("ev_scratch", 16)
	b.BSS("events", 8*16)
	b.BSS("filebuf", 64)
	b.BSS("conn_pool", 32*32)
	b.BSS("conn_bufs", 32*64)
	b.BSS("resp_bufs", 32*64)
	b.Export("conn_pool", "conn_pool")

	img, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("lighttpd: %w", err)
	}
	return &Server{
		Name:         "lighttpd",
		Port:         HTTPPort,
		Image:        img,
		Suite:        lighttpdSuite,
		ServiceCheck: httpServiceCheck(HTTPPort),
	}, nil
}

func lighttpdSuite(env *ServerEnv) error {
	for i := 0; i < 3; i++ {
		env.Request(HTTPPort, []byte("GET /index.html\n\n"))
	}
	return nil
}
