package targets

import (
	"bytes"
	"testing"

	"crashresist/internal/vm"
)

func TestAllServersBuildAndServe(t *testing.T) {
	servers, err := AllServers()
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 5 {
		t.Fatalf("servers = %d", len(servers))
	}
	for _, srv := range servers {
		srv := srv
		t.Run(srv.Name, func(t *testing.T) {
			env, err := srv.NewEnv(200)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Suite(env); err != nil {
				t.Fatalf("suite: %v", err)
			}
			if env.Proc.State == vm.ProcCrashed {
				t.Fatalf("suite crashed the server: %v", env.Proc.Crash)
			}
			if !srv.ServiceCheck(env) {
				t.Error("service check failed on healthy server")
			}
		})
	}
}

func TestServerByName(t *testing.T) {
	s, err := ServerByName("cherokee")
	if err != nil || s.Name != "cherokee" {
		t.Errorf("ServerByName = %v, %v", s, err)
	}
	if _, err := ServerByName("apache"); err == nil {
		t.Error("unknown server should fail")
	}
}

func TestLighttpdReadCorruptionGraceful(t *testing.T) {
	srv, err := Lighttpd()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(201)
	if err != nil {
		t.Fatal(err)
	}
	// One good request to learn the accepted fd range; lighttpd startup
	// fds: conf open (none kept), listener, epoll. First conn fd varies;
	// find the conn struct by probing the pool after a partial send.
	cc, err := env.Kern.Connect(HTTPPort)
	if err != nil {
		t.Fatal(err)
	}
	env.Step()
	// Locate the conn struct: scan the pool for a non-zero bufptr.
	mod := env.Proc.Modules()[0]
	poolOff, _ := mod.Image.Export("conn_pool")
	poolVA := mod.VA(poolOff)
	connVA := uint64(0)
	for i := 0; i < 32; i++ {
		v, err := env.Proc.AS.ReadUint(poolVA+uint64(i)*32, 8)
		if err == nil && v != 0 {
			connVA = poolVA + uint64(i)*32
		}
	}
	if connVA == 0 {
		t.Fatal("no live conn struct found")
	}
	if err := env.Proc.AS.WriteUint(connVA, 8, 0xdead0000); err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("GET /index.html\n\n"))
	env.Step()
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("read corruption crashed lighttpd: %v", env.Proc.Crash)
	}
	if got := cc.Recv(); len(got) != 0 {
		t.Errorf("corrupted read produced response %q", got)
	}
	if !srv.ServiceCheck(env) {
		t.Error("lighttpd stopped serving after corrupted probe")
	}
}

func TestCherokeeEpollCorruptionDegradesNotCrashes(t *testing.T) {
	srv, err := Cherokee()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(202)
	if err != nil {
		t.Fatal(err)
	}
	// Serve one request as baseline.
	if _, served := env.Request(HTTPPort, []byte("GET /a\n\n")); !served {
		t.Fatalf("baseline request unserved (crash=%v)", env.Proc.Crash)
	}

	// Corrupt worker 0's event-array pointer.
	mod := env.Proc.Modules()[0]
	ctxOff, _ := mod.Image.Export("thread_ctxs")
	if err := env.Proc.AS.WriteUint(mod.VA(ctxOff), 8, 0xdead0000); err != nil {
		t.Fatal(err)
	}
	// The process must stay alive and keep serving through siblings.
	for i := 0; i < 3; i++ {
		if _, served := env.Request(HTTPPort, []byte("GET /b\n\n")); !served {
			t.Fatalf("request %d unserved after corruption (state=%v crash=%v)",
				i, env.Proc.State, env.Proc.Crash)
		}
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("cherokee crashed: %v", env.Proc.Crash)
	}
}

func TestCherokeeTimingSideChannel(t *testing.T) {
	// Serving N requests must consume measurably more virtual time when a
	// worker is stalled in the failing epoll loop (§VI-D).
	measure := func(corrupt bool) uint64 {
		srv, err := Cherokee()
		if err != nil {
			t.Fatal(err)
		}
		env, err := srv.NewEnv(203)
		if err != nil {
			t.Fatal(err)
		}
		if corrupt {
			mod := env.Proc.Modules()[0]
			ctxOff, _ := mod.Image.Export("thread_ctxs")
			if err := env.Proc.AS.WriteUint(mod.VA(ctxOff), 8, 0xdead0000); err != nil {
				t.Fatal(err)
			}
		}
		start := env.Proc.Clock
		for i := 0; i < 20; i++ {
			env.Request(HTTPPort, []byte("GET /t\n\n"))
		}
		return env.Proc.Clock - start
	}
	base := measure(false)
	slow := measure(true)
	if slow <= base {
		t.Errorf("stalled-thread run (%d ticks) not slower than baseline (%d ticks)", slow, base)
	}
}

func TestMemcachedEpollFalsePositive(t *testing.T) {
	srv, err := Memcached()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(204)
	if err != nil {
		t.Fatal(err)
	}
	if _, served := env.Request(MemcachedPort, []byte("get k\n\n")); !served {
		t.Fatalf("baseline unserved (crash=%v)", env.Proc.Crash)
	}

	// Corrupt the shared event thread's event-array pointer.
	mod := env.Proc.Modules()[0]
	ctxOff, _ := mod.Image.Export("worker_ctx")
	if err := env.Proc.AS.WriteUint(mod.VA(ctxOff), 8, 0xdead0000); err != nil {
		t.Fatal(err)
	}
	env.Step()

	// The naive aliveness check still passes (the false positive)...
	if !env.Alive() {
		t.Fatal("process should stay alive (main thread accepts)")
	}
	// ...but the deeper service check fails: the handling thread is gone.
	if srv.ServiceCheck(env) {
		t.Error("service check should fail: connection thread exited")
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("crashed: %v", env.Proc.Crash)
	}
}

func TestMemcachedReadCorruptionGraceful(t *testing.T) {
	srv, err := Memcached()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(205)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := env.Kern.Connect(MemcachedPort)
	if err != nil {
		t.Fatal(err)
	}
	env.Step()
	// Find the conn struct (first one with a live bufptr).
	mod := env.Proc.Modules()[0]
	poolOff, _ := mod.Image.Export("conn_pool")
	poolVA := mod.VA(poolOff)
	connVA := uint64(0)
	for i := 0; i < 32; i++ {
		v, err := env.Proc.AS.ReadUint(poolVA+uint64(i)*32, 8)
		if err == nil && v != 0 {
			connVA = poolVA + uint64(i)*32
		}
	}
	if connVA == 0 {
		t.Fatal("no conn struct")
	}
	if err := env.Proc.AS.WriteUint(connVA, 8, 0xdead0000); err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("get x\n\n"))
	env.Step()
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("crashed: %v", env.Proc.Crash)
	}
	if got := cc.Recv(); len(got) != 0 {
		t.Errorf("corrupted read produced %q", got)
	}
	// The event thread survives; new connections still served.
	if !srv.ServiceCheck(env) {
		t.Error("memcached stopped serving after graceful read EFAULT")
	}
}

func TestPostgresEpollCorruptionUsable(t *testing.T) {
	srv, err := Postgres()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(206)
	if err != nil {
		t.Fatal(err)
	}
	// Open a connection so a worker spawns; keep it alive.
	cc, err := env.Kern.Connect(PostgresPort)
	if err != nil {
		t.Fatal(err)
	}
	env.Step()
	// Corrupt that worker's event-array pointer: the worker must exit
	// gracefully without taking the postmaster down.
	mod := env.Proc.Modules()[0]
	ctxsOff, _ := mod.Image.Export("worker_ctxs")
	ctxsVA := mod.VA(ctxsOff)
	corrupted := false
	for i := 0; i < 32; i++ {
		v, err := env.Proc.AS.ReadUint(ctxsVA+uint64(i)*16, 8)
		if err == nil && v != 0 {
			if err := env.Proc.AS.WriteUint(ctxsVA+uint64(i)*16, 8, 0xdead0000); err != nil {
				t.Fatal(err)
			}
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("no worker ctx found")
	}
	env.Step()
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("crashed: %v", env.Proc.Crash)
	}
	cc.Close()
	env.Step()
	// Fresh connections get fresh workers: still serviceable.
	if !srv.ServiceCheck(env) {
		t.Error("postgres stopped serving after worker-probe corruption")
	}
}

func TestPostgresResponds(t *testing.T) {
	srv, err := Postgres()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(207)
	if err != nil {
		t.Fatal(err)
	}
	resp, served := env.Request(PostgresPort, []byte("SELECT 1;\n\n"))
	if !served {
		t.Fatalf("unserved (state=%v crash=%v)", env.Proc.State, env.Proc.Crash)
	}
	if !bytes.Contains(resp, []byte("SELECT")) {
		t.Errorf("response = %q", resp)
	}
}

// TestServerNamesMatchBuilders pins the static ServerNames list against
// the servers AllServers actually builds, so Request validation can never
// drift from the real target set.
func TestServerNamesMatchBuilders(t *testing.T) {
	all, err := AllServers()
	if err != nil {
		t.Fatal(err)
	}
	names := ServerNames()
	if len(names) != len(all) {
		t.Fatalf("ServerNames lists %d servers, AllServers builds %d", len(names), len(all))
	}
	for i, srv := range all {
		if names[i] != srv.Name {
			t.Errorf("ServerNames[%d] = %q, AllServers[%d].Name = %q", i, names[i], i, srv.Name)
		}
	}
}
