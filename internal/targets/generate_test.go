package targets

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crashresist/internal/bin"
)

var updateGenDigest = flag.Bool("update", false, "rewrite testdata/gen_seed_digest.txt from the current generators")

// genSeedDigest hashes a fixed-seed generated corpus — every DLL image,
// every site plan, every server image and profile — into one hex digest.
// The generators feed the content-addressed analysis cache, so silent
// drift in their output would invalidate CAS entries without any test
// noticing; this digest turns drift into an explicit, reviewed event.
func genSeedDigest(t *testing.T) string {
	t.Helper()
	h := sha256.New()

	images, specs, sites, err := GenDLLCorpus(DefaultGenSeed, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range images {
		data, err := bin.Marshal(img)
		if err != nil {
			t.Fatalf("marshal %s: %v", img.Name, err)
		}
		fmt.Fprintf(h, "dll %d %s %+v\n", i, img.Name, specs[i])
		h.Write(data)
	}
	for _, s := range sites {
		fmt.Fprintf(h, "site %s %s %d\n", s.Module, s.Export, s.Scope)
	}

	profiles := GenServerProfiles(DefaultGenSeed, 8)
	for i, p := range profiles {
		srv, err := GenServer(DefaultGenSeed, i)
		if err != nil {
			t.Fatal(err)
		}
		data, err := bin.Marshal(srv.Image)
		if err != nil {
			t.Fatalf("marshal %s: %v", srv.Name, err)
		}
		fmt.Fprintf(h, "server %d %s port=%d %+v\n", i, srv.Name, srv.Port, p)
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGenSeedDigestPinned pins the fixed-seed generator output. On
// intentional generator changes run
//
//	go test ./internal/targets -run TestGenSeedDigestPinned -update
//
// and review the new digest alongside the change: committing it is the
// acknowledgement that every cached analysis of generated targets is
// invalidated.
func TestGenSeedDigestPinned(t *testing.T) {
	got := genSeedDigest(t)
	path := filepath.Join("testdata", "gen_seed_digest.txt")
	if *updateGenDigest {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read pinned digest (use -update to create): %v", err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Errorf("generator output drifted from the pinned seed digest:\n  got  %s\n  want %s\n"+
			"If intentional, re-pin with -update; note this invalidates CAS entries for generated targets.",
			got, strings.TrimSpace(string(want)))
	}
}

// TestGenDLLCorpusDeterministic builds the same corpus twice and checks
// the images are byte-identical — generation must be a pure function of
// (seed, index) regardless of scheduling.
func TestGenDLLCorpusDeterministic(t *testing.T) {
	a, aspecs, asites, err := GenDLLCorpus(4242, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, bspecs, bsites, err := GenDLLCorpus(4242, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		ma, _ := bin.Marshal(a[i])
		mb, _ := bin.Marshal(b[i])
		if string(ma) != string(mb) {
			t.Errorf("image %d differs between identical builds", i)
		}
		if aspecs[i] != bspecs[i] {
			t.Errorf("spec %d differs between identical builds", i)
		}
	}
	if len(asites) != len(bsites) {
		t.Fatalf("site counts differ: %d vs %d", len(asites), len(bsites))
	}
	for i := range asites {
		if asites[i] != bsites[i] {
			t.Errorf("site %d differs between identical builds", i)
		}
	}
}

// TestGenDLLEmbeddingInvariant checks that a generated DLL's bytes do not
// depend on the base corpus it is appended to: the standalone corpus and
// the one embedded by BuildSysDLLs after the hand-built population must
// produce identical images. This is what keeps CAS entries for generated
// modules valid across -scale settings.
func TestGenDLLEmbeddingInvariant(t *testing.T) {
	const n = 10
	standalone, specs, _, err := GenDLLCorpus(DefaultGenSeed, n)
	if err != nil {
		t.Fatal(err)
	}
	params := SmallCorpusParams()
	params.GenSeed = DefaultGenSeed
	params.GenDLLs = n
	images, plan, err := BuildSysDLLs(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Gen) != n {
		t.Fatalf("plan has %d generated specs, want %d", len(plan.Gen), n)
	}
	base := len(plan.Specs)
	for i := 0; i < n; i++ {
		ms, _ := bin.Marshal(standalone[i])
		me, _ := bin.Marshal(images[base+i])
		if string(ms) != string(me) {
			t.Errorf("generated DLL %d: embedded bytes differ from standalone build", i)
		}
		if specs[i] != plan.Gen[i] {
			t.Errorf("generated DLL %d: embedded spec %+v differs from standalone %+v", i, plan.Gen[i], specs[i])
		}
	}
}

// TestGenServerDeterministic builds the same server twice.
func TestGenServerDeterministic(t *testing.T) {
	a, err := GenServer(99, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenServer(99, 3)
	if err != nil {
		t.Fatal(err)
	}
	ma, _ := bin.Marshal(a.Image)
	mb, _ := bin.Marshal(b.Image)
	if string(ma) != string(mb) {
		t.Error("server image differs between identical builds")
	}
	if a.Port != b.Port || a.Name != b.Name {
		t.Errorf("server identity differs: %s:%d vs %s:%d", a.Name, a.Port, b.Name, b.Port)
	}
}

// TestParseGenServerRef pins the reference grammar used by request
// validation and ServerByName.
func TestParseGenServerRef(t *testing.T) {
	cases := []struct {
		name string
		idx  int
		ok   bool
	}{
		{"gen-0", 0, true},
		{"gen-59", 59, true},
		{"gen-", 0, false},
		{"gen-01", 0, false}, // not canonical: GenServerName(1) == "gen-1"
		{"gen--1", 0, false},
		{"gen-x", 0, false},
		{"gen", 0, false},
		{"nginx", 0, false},
	}
	for _, tc := range cases {
		idx, ok := ParseGenServerRef(tc.name)
		if ok != tc.ok || (ok && idx != tc.idx) {
			t.Errorf("ParseGenServerRef(%q) = (%d, %v), want (%d, %v)", tc.name, idx, ok, tc.idx, tc.ok)
		}
	}
}
