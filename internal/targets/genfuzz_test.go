package targets_test

// Fuzz targets for the generative universe (external test package so the
// real pipelines, which import targets, can be driven end to end). The
// property under fuzz: ANY (seed, n) — not just the pinned production
// seeds — yields images that survive the canonical internal/bin round
// trip and run through the discovery pipelines without panicking. Wired
// into `make fuzz-short`.

import (
	"bytes"
	"testing"

	"crashresist"
	"crashresist/internal/bin"
	"crashresist/internal/targets"
)

// fuzzRoundTrip asserts img survives Marshal → Unmarshal → Marshal as a
// fixpoint, the same contract FuzzImageParse pins for hostile bytes.
func fuzzRoundTrip(t *testing.T, img *bin.Image) {
	m1, err := bin.Marshal(img)
	if err != nil {
		t.Fatalf("generated image %s does not marshal: %v", img.Name, err)
	}
	img2, err := bin.Unmarshal(m1)
	if err != nil {
		t.Fatalf("generated image %s does not re-parse: %v", img.Name, err)
	}
	m2, err := bin.Marshal(img2)
	if err != nil {
		t.Fatalf("re-parsed image %s does not marshal: %v", img.Name, err)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatalf("generated image %s is not a canonical fixpoint", img.Name)
	}
}

// FuzzGenDLL builds a small generated DLL corpus from an arbitrary seed,
// checks every image parses, and runs the SEH pipeline over a browser
// embedding it.
func FuzzGenDLL(f *testing.F) {
	f.Add(int64(targets.DefaultGenSeed), uint8(4))
	f.Add(int64(0), uint8(1))
	f.Add(int64(-1), uint8(7))

	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		count := int(n)%8 + 1 // keep each iteration cheap
		images, specs, sites, err := targets.GenDLLCorpus(seed, count)
		if err != nil {
			t.Fatalf("GenDLLCorpus(%d, %d): %v", seed, count, err)
		}
		if len(images) != count || len(specs) != count {
			t.Fatalf("got %d images / %d specs, want %d", len(images), len(specs), count)
		}
		for i, img := range images {
			if img.Name != targets.GenDLLName(i) {
				t.Fatalf("image %d named %q, want %q", i, img.Name, targets.GenDLLName(i))
			}
			fuzzRoundTrip(t, img)
		}
		for _, s := range specs {
			if s.AVHandlers > s.Handlers || s.OnPath > s.AVHandlers ||
				s.AVFilters > s.Filters || s.CatchAll > s.Handlers {
				t.Fatalf("inconsistent spec %+v", s)
			}
		}

		params := crashresist.SmallBrowserParams()
		params.Corpus.GenSeed = seed
		params.Corpus.GenDLLs = count
		br, err := crashresist.IE(params)
		if err != nil {
			t.Fatalf("IE with generated corpus: %v", err)
		}
		if len(br.Plan.Sites) < len(sites) {
			t.Fatalf("browser plan lost generated sites: %d < %d", len(br.Plan.Sites), len(sites))
		}
		if _, err := crashresist.AnalyzeBrowserSEH(br, 42, crashresist.WithWorkers(2)); err != nil {
			t.Fatalf("SEH pipeline on generated corpus: %v", err)
		}
	})
}

// FuzzGenServer builds a generated server from an arbitrary seed, checks
// the image parses and its declared profile is well formed, and runs the
// syscall pipeline over it.
func FuzzGenServer(f *testing.F) {
	f.Add(int64(targets.DefaultGenSeed), uint8(0))
	f.Add(int64(1), uint8(3))
	f.Add(int64(-99), uint8(255))

	f.Fuzz(func(t *testing.T, seed int64, idx uint8) {
		i := int(idx) % 64
		srv, err := targets.GenServer(seed, i)
		if err != nil {
			t.Fatalf("GenServer(%d, %d): %v", seed, i, err)
		}
		if srv.Name != targets.GenServerName(i) {
			t.Fatalf("server named %q, want %q", srv.Name, targets.GenServerName(i))
		}
		fuzzRoundTrip(t, srv.Image)
		if srv.Suite == nil || srv.ServiceCheck == nil {
			t.Fatal("generated server is missing its workload suite or service check")
		}

		profiles := targets.GenServerProfiles(seed, i+1)
		p := profiles[i]
		seen := map[string]string{}
		for _, group := range []struct {
			label string
			list  []string
		}{{"usable", p.Usable}, {"invalid", p.Invalid}, {"observed", p.Observed}} {
			for _, s := range group.list {
				if prev, dup := seen[s]; dup {
					t.Fatalf("profile lists %s as both %s and %s", s, prev, group.label)
				}
				seen[s] = group.label
			}
		}

		rep, err := crashresist.AnalyzeServer(srv, 42, crashresist.WithWorkers(2))
		if err != nil {
			t.Fatalf("syscall pipeline on generated server: %v", err)
		}
		if rep.Server != srv.Name {
			t.Fatalf("report names %q, want %q", rep.Server, srv.Name)
		}
	})
}
