package targets

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/mem"
	"crashresist/internal/vm"
	"crashresist/internal/winapi"
)

// JS-wrapper argument shapes, determining why the pointer argument is (not)
// controllable — the three exclusion reasons of §V-B.
const (
	// ShapeStack: the wrapper passes a stack-allocated structure.
	ShapeStack = iota + 1
	// ShapeDerefOutside: the pointer lives in a writable object, but the
	// wrapper also dereferences it outside the API call.
	ShapeDerefOutside
	// ShapeVolatile: the pointer is a freshly computed value with no
	// stored reference anywhere in memory.
	ShapeVolatile
)

// JSAPISite is one API reachable from the scripting context.
type JSAPISite struct {
	API     string
	Wrapper string // jscript9 export
	Shape   int
}

// BrowserParams sizes a browser model.
type BrowserParams struct {
	Corpus CorpusParams
	API    winapi.CorpusParams
	// TriggerTotal guarded-location executions during one browse run
	// (736,512 in the paper).
	TriggerTotal int
	// OnPathAPIs crash-resistant API functions appear on the browse
	// execution path (25 in the paper); JSContextAPIs of them are called
	// from the script engine (12 in the paper).
	OnPathAPIs    int
	JSContextAPIs int
	// NoisePathAPIs non-crash-resistant APIs also called during browse.
	NoisePathAPIs int
	Seed          int64
}

// PaperBrowserParams returns the full-scale evaluation sizing.
func PaperBrowserParams() BrowserParams {
	return BrowserParams{
		Corpus:        PaperCorpusParams(),
		API:           winapi.DefaultCorpusParams(),
		TriggerTotal:  736512,
		OnPathAPIs:    25,
		JSContextAPIs: 12,
		NoisePathAPIs: 60,
		Seed:          2024,
	}
}

// SmallBrowserParams returns a test-scale sizing.
func SmallBrowserParams() BrowserParams {
	return BrowserParams{
		Corpus: SmallCorpusParams(),
		API: winapi.CorpusParams{
			Seed: 31, Total: 120, WithPointer: 80,
			CrashResistant: 14, QueryStructShare: 50,
		},
		TriggerTotal:  200,
		OnPathAPIs:    6,
		JSContextAPIs: 4,
		NoisePathAPIs: 5,
		Seed:          2025,
	}
}

// Browser is a buildable browser target.
type Browser struct {
	Name   string
	Params BrowserParams
	Plan   *CorpusPlan
	// JSAPIs are the script-reachable crash-resistant APIs with their
	// wrapper shapes; PathAPIs is the full on-path crash-resistant set.
	JSAPIs   []JSAPISite
	PathAPIs []string

	images []*bin.Image
	exe    *bin.Image

	digestOnce sync.Once
	digest     []byte
	digestErr  error
}

// ContentDigest returns a digest over every loaded image's marshaled bytes
// (DLL corpus, support libraries, executable) in load order. It is the
// content-hash input for whole-process cache keys: any changed byte in any
// module changes the digest. Computed once and memoized.
func (br *Browser) ContentDigest() ([]byte, error) {
	br.digestOnce.Do(func() {
		h := sha256.New()
		h.Write([]byte(br.Name))
		for _, img := range append(append([]*bin.Image{}, br.images...), br.exe) {
			data, err := bin.Marshal(img)
			if err != nil {
				br.digestErr = fmt.Errorf("digest %s: %w", img.Name, err)
				return
			}
			var n [8]byte
			binary.BigEndian.PutUint64(n[:], uint64(len(data)))
			h.Write(n[:])
			h.Write(data)
		}
		br.digest = h.Sum(nil)
	})
	return br.digest, br.digestErr
}

// BrowserEnv is one instantiated browser process.
type BrowserEnv struct {
	Proc    *vm.Process
	Reg     *winapi.Registry
	Browser *Browser
	// GuardPage is the Firefox model's protected (mapped, no-access)
	// page; zero for IE.
	GuardPage uint64
}

// IE builds the Internet Explorer 11 model.
func IE(params BrowserParams) (*Browser, error) { return buildBrowser("iexplore", params) }

// Firefox builds the Firefox 46 model.
func Firefox(params BrowserParams) (*Browser, error) { return buildBrowser("firefox", params) }

// buildBrowser constructs the DLL corpus, the script-engine glue, the
// browser executable and its browse workload.
func buildBrowser(name string, params BrowserParams) (*Browser, error) {
	apiReg, err := winapi.GenerateCorpus(params.API)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	jsAPIs, pathAPIs, noiseAPIs, err := chooseAPIs(apiReg, params)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}

	// Merge the script-engine glue with any caller-provided extensions
	// (the incremental-cache tests mutate individual DLLs this way), so
	// a caller extension of jscript9.dll composes with the JS wrappers
	// instead of replacing them.
	corpus := params.Corpus
	ext := make(map[string]func(*asm.Builder), len(corpus.Extend)+1)
	for name, fn := range corpus.Extend {
		ext[name] = fn
	}
	userJS := ext["jscript9.dll"]
	ext["jscript9.dll"] = func(b *asm.Builder) {
		if userJS != nil {
			userJS(b)
		}
		emitJSWrappers(b, apiReg, jsAPIs)
	}
	corpus.Extend = ext
	images, plan, err := BuildSysDLLs(corpus)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}

	br := &Browser{
		Name:     name,
		Params:   params,
		Plan:     plan,
		JSAPIs:   jsAPIs,
		PathAPIs: pathAPIs,
		images:   images,
	}

	if name == "firefox" {
		xul, err := buildXul()
		if err != nil {
			return nil, err
		}
		br.images = append(br.images, xul)
	}

	exe, err := buildBrowserExe(name, apiReg, br, noiseAPIs)
	if err != nil {
		return nil, err
	}
	br.exe = exe
	return br, nil
}

// chooseAPIs deterministically selects the on-path crash-resistant APIs,
// the JS-context subset with wrapper shapes, and the noise set.
func chooseAPIs(reg *winapi.Registry, params BrowserParams) (js []JSAPISite, path, noise []string, err error) {
	var resistant, userDeref []string
	for _, d := range reg.All() {
		switch d.Cat {
		case winapi.CatKernelValidated, winapi.CatQueryStruct:
			resistant = append(resistant, d.Name)
		case winapi.CatUserDeref:
			userDeref = append(userDeref, d.Name)
		}
	}
	sort.Strings(resistant)
	sort.Strings(userDeref)
	if len(resistant) < params.OnPathAPIs || params.JSContextAPIs > params.OnPathAPIs {
		return nil, nil, nil, fmt.Errorf("api corpus too small for params")
	}
	path = resistant[:params.OnPathAPIs]
	nStack := params.JSContextAPIs * 5 / 12
	nDeref := params.JSContextAPIs * 4 / 12
	if nStack == 0 && params.JSContextAPIs > 0 {
		nStack = 1
	}
	if nDeref == 0 && params.JSContextAPIs > 1 {
		nDeref = 1
	}
	for i := 0; i < params.JSContextAPIs; i++ {
		shape := ShapeVolatile
		switch {
		case i < nStack:
			shape = ShapeStack
		case i < nStack+nDeref:
			shape = ShapeDerefOutside
		}
		js = append(js, JSAPISite{
			API:     path[i],
			Wrapper: fmt.Sprintf("js_api_%02d", i),
			Shape:   shape,
		})
	}
	n := params.NoisePathAPIs
	if n > len(userDeref) {
		n = len(userDeref)
	}
	noise = userDeref[:n]
	return js, path, noise, nil
}

// emitJSWrappers writes the script-engine entry points that reach the
// JS-context APIs, one per site, with the shape that determines
// controllability.
func emitJSWrappers(b *asm.Builder, reg *winapi.Registry, sites []JSAPISite) {
	for i, site := range sites {
		d, ok := reg.Lookup(site.API)
		if !ok {
			continue
		}
		isPtr := make(map[int]bool, len(d.PtrArgs))
		for _, ai := range d.PtrArgs {
			isPtr[ai] = true
		}
		b.Func(site.Wrapper)
		switch site.Shape {
		case ShapeStack:
			// Stack-allocated result structure.
			b.SubRI(isa.SP, 64)
			for ai := 0; ai < 5; ai++ {
				r := isa.Register(1 + ai)
				if isPtr[ai] {
					b.MovRR(r, isa.SP)
				} else {
					b.MovRI(r, 1)
				}
			}
			b.CallImport("", site.API)
			b.AddRI(isa.SP, 64)
		case ShapeDerefOutside:
			objPtr := fmt.Sprintf("jsobj_ptr_%02d", i)
			objBuf := fmt.Sprintf("jsobj_buf_%02d", i)
			b.DataPtr(objPtr, objBuf)
			b.BSS(objBuf, 64)
			b.LeaData(isa.R10, objPtr).Load(8, isa.R11, isa.R10, 0)
			for ai := 0; ai < 5; ai++ {
				r := isa.Register(1 + ai)
				if isPtr[ai] {
					b.MovRR(r, isa.R11)
				} else {
					b.MovRI(r, 1)
				}
			}
			b.CallImport("", site.API)
			// The engine updates the object through the same
			// pointer after the call — the user-mode dereference
			// outside the crash-resistant function.
			b.LeaData(isa.R10, objPtr).
				Load(8, isa.R11, isa.R10, 0).
				MovRI(isa.R12, 0).
				Store(8, isa.R11, 0, isa.R12)
		default: // ShapeVolatile
			b.CallImport("", "JsAllocTemp").
				MovRR(isa.R11, isa.R0)
			for ai := 0; ai < 5; ai++ {
				r := isa.Register(1 + ai)
				if isPtr[ai] {
					b.MovRR(r, isa.R11)
				} else {
					b.MovRI(r, 1)
				}
			}
			b.CallImport("", site.API)
		}
		b.Ret().EndFunc()
		b.Export(site.Wrapper, site.Wrapper)
	}
}

// buildXul writes the Firefox support library: the background probing
// worker around ntdll!RtlSafeRead, the asm.js guard-page machinery and its
// vectored handler.
func buildXul() (*bin.Image, error) {
	b := asm.NewBuilder("xul.dll", bin.KindLibrary)

	// Background worker: poll probe_slot; when set, probe it via the
	// guarded ntdll helper, publish the result, clear the slot, nap.
	b.Func("ff_worker")
	b.Label("ffw_loop")
	b.LeaData(isa.R10, "probe_slot").
		Load(8, isa.R1, isa.R10, 0).
		TestRR(isa.R1, isa.R1).
		Jnz("ffw_probe")
	b.MovRI(isa.R1, 1000) // nap 1000 ticks
	b.CallImport("", "Sleep")
	b.Jmp("ffw_loop")
	b.Label("ffw_probe")
	b.CallImport("ntdll.dll", "RtlSafeRead")
	b.LeaData(isa.R11, "probe_result").
		Store(8, isa.R11, 0, isa.R0).
		LeaData(isa.R10, "probe_slot").
		MovRI(isa.R12, 0).
		Store(8, isa.R10, 0, isa.R12)
	b.Jmp("ffw_loop")
	b.EndFunc()
	b.Export("ff_worker", "ff_worker")
	b.BSS("probe_slot", 8)
	b.BSS("probe_result", 8)
	b.Export("probe_slot", "probe_slot")
	b.Export("probe_result", "probe_result")

	// asm.js: bursts of expected guard-page faults, resolved by the VEH.
	// asmjs_run(R1 = burst size): performs R1 stores into the protected
	// page; each faults and is skipped by the vectored handler.
	b.Func("asmjs_run")
	b.MovRR(isa.R3, isa.R1)
	b.LeaData(isa.R4, "guard_region").
		AddRI(isa.R4, int32(mem.PageSize-1)).
		AndRI(isa.R4, -int32(mem.PageSize)) // aligned guard page
	b.Label("aj_loop")
	b.Store(8, isa.R4, 0, isa.R3) // faults; VEH skips
	b.SubRI(isa.R3, 1).
		TestRR(isa.R3, isa.R3).
		Jnz("aj_loop")
	b.Ret()
	b.EndFunc()
	b.Export("asmjs_run", "asmjs_run")

	// The vectored handler: resolve faults inside the guard page,
	// decline everything else.
	b.Func("asmjs_veh")
	b.LeaData(isa.R4, "guard_region").
		AddRI(isa.R4, int32(mem.PageSize-1)).
		AndRI(isa.R4, -int32(mem.PageSize))
	b.CmpRR(isa.R2, isa.R4).
		Jb("veh_decline")
	b.MovRR(isa.R5, isa.R4).
		AddRI(isa.R5, int32(mem.PageSize)).
		CmpRR(isa.R2, isa.R5).
		Jae("veh_decline")
	b.MovRI(isa.R0, 0).Not(isa.R0).Ret() // -1: continue execution
	b.Label("veh_decline")
	b.MovRI(isa.R0, 0).Ret()
	b.EndFunc()
	b.Export("asmjs_veh", "asmjs_veh")
	b.BSS("guard_region", 2*mem.PageSize)
	b.Export("guard_region", "guard_region")

	return b.Build()
}

// buildBrowserExe writes the browser executable: main registers the
// vectored handler and starts the background worker (Firefox), then idles;
// the exported browse function drives the whole workload.
func buildBrowserExe(name string, reg *winapi.Registry, br *Browser, noiseAPIs []string) (*bin.Image, error) {
	b := asm.NewBuilder(name+".exe", bin.KindExecutable)

	b.Func("main").Entry("main")
	if name == "firefox" {
		// Register the run-time vectored handler (invisible to the
		// static pipeline) and start the probing worker thread.
		b.LeaData(isa.R1, "veh_ptr").
			Load(8, isa.R1, isa.R1, 0).
			CallImport("", "AddVectoredExceptionHandler")
		b.LeaData(isa.R1, "worker_ptr").
			Load(8, isa.R1, isa.R1, 0).
			MovRI(isa.R2, 0).
			CallImport("", "CreateThread")
	}
	b.Label("idle")
	b.MovRI(isa.R1, 100_000)
	b.CallImport("", "Sleep")
	b.Jmp("idle")
	b.EndFunc()

	// browse: the deterministic Alexa-500 stand-in. Executes every
	// corpus site with its trigger count, the JS wrappers, the non-JS
	// crash-resistant APIs, and the noise APIs.
	nSites := len(br.Plan.Sites)
	per, rem := 0, 0
	if nSites > 0 {
		per, rem = br.Params.TriggerTotal/nSites, br.Params.TriggerTotal%nSites
	}
	b.Func("browse")
	for i, site := range br.Plan.Sites {
		count := per
		if i < rem {
			count++
		}
		if count <= 0 {
			count = 1
		}
		b.MovRI(isa.R1, uint64(count))
		b.CallImport(site.Module, site.Export)
	}
	for _, js := range br.JSAPIs {
		b.MovRI(isa.R1, 1)
		b.CallImport("jscript9.dll", js.Wrapper)
	}
	jsSet := make(map[string]bool, len(br.JSAPIs))
	for _, js := range br.JSAPIs {
		jsSet[js.API] = true
	}
	for _, api := range br.PathAPIs {
		if jsSet[api] {
			continue
		}
		emitValidAPICall(b, reg, api)
	}
	for _, api := range noiseAPIs {
		emitValidAPICall(b, reg, api)
	}
	b.Ret()
	b.EndFunc()
	b.Export("browse", "browse")
	b.BSS("api_scratch", 128)

	if name == "firefox" {
		// Cross-module data pointers are not expressible as load-time
		// relocations, so the registered handler and worker entry are
		// local thunks that tail into xul through the import table.
		b.Func("veh_thunk").CallImport("xul.dll", "asmjs_veh").Ret().EndFunc()
		b.Func("worker_thunk").CallImport("xul.dll", "ff_worker").Ret().EndFunc()
		b.DataPtr("veh_ptr", "veh_thunk")
		b.DataPtr("worker_ptr", "worker_thunk")
	}

	return b.Build()
}

// emitValidAPICall calls an API with every pointer argument aimed at the
// executable's scratch buffer.
func emitValidAPICall(b *asm.Builder, reg *winapi.Registry, api string) {
	d, ok := reg.Lookup(api)
	if !ok {
		return
	}
	isPtr := make(map[int]bool, len(d.PtrArgs))
	for _, ai := range d.PtrArgs {
		isPtr[ai] = true
	}
	for ai := 0; ai < 5; ai++ {
		r := isa.Register(1 + ai)
		if isPtr[ai] {
			b.LeaData(r, "api_scratch")
		} else {
			b.MovRI(r, 1)
		}
	}
	b.CallImport("", api)
}

// NewEnv instantiates the browser: a Windows-model process with the API
// registry (corpus plus browser natives), all DLLs and the executable
// loaded, main started and idling.
func (br *Browser) NewEnv(seed int64) (*BrowserEnv, error) {
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: seed})
	reg, err := winapi.GenerateCorpus(br.Params.API)
	if err != nil {
		return nil, err
	}
	env := &BrowserEnv{Proc: p, Reg: reg, Browser: br}
	registerBrowserNatives(reg, env)
	p.API = reg

	for _, img := range br.images {
		if _, err := p.LoadImage(img); err != nil {
			return nil, fmt.Errorf("%s: %w", br.Name, err)
		}
	}
	if _, err := p.LoadImage(br.exe); err != nil {
		return nil, fmt.Errorf("%s: %w", br.Name, err)
	}

	if br.Name == "firefox" {
		// Seal the asm.js guard page: mapped but inaccessible.
		mod, _ := p.Module("xul.dll")
		off, ok := mod.Image.Export("guard_region")
		if !ok {
			return nil, fmt.Errorf("xul has no guard region")
		}
		base := (mod.VA(off) + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
		if err := p.AS.Protect(base, mem.PageSize, 0); err != nil {
			return nil, err
		}
		env.GuardPage = base
	}
	return env, nil
}

// Start boots main (registering VEH / worker on Firefox) and lets it idle.
func (e *BrowserEnv) Start() error {
	if _, err := e.Proc.Start(); err != nil {
		return err
	}
	e.Proc.Run(1_000_000)
	if e.Proc.State == vm.ProcCrashed {
		return fmt.Errorf("%s crashed at startup: %v", e.Browser.Name, e.Proc.Crash)
	}
	return nil
}

// Alive reports whether the browser process has not crashed or exited.
func (e *BrowserEnv) Alive() bool { return e.Proc.Alive() }

// ExportVA resolves module!symbol to a virtual address.
func (e *BrowserEnv) ExportVA(module, symbol string) (uint64, error) {
	mod, ok := e.Proc.Module(module)
	if !ok {
		return 0, fmt.Errorf("module %q not loaded", module)
	}
	off, ok := mod.Image.Export(symbol)
	if !ok {
		return 0, fmt.Errorf("%s does not export %q", module, symbol)
	}
	return mod.VA(off), nil
}

// Call runs module!symbol(args...) on a fresh thread to completion and
// returns its R0. The process must survive the call.
func (e *BrowserEnv) Call(module, symbol string, args ...uint64) (uint64, error) {
	va, err := e.ExportVA(module, symbol)
	if err != nil {
		return 0, err
	}
	t, err := e.Proc.StartThread(symbol, va, args...)
	if err != nil {
		return 0, err
	}
	for iter := 0; t.State != vm.ThreadDone && e.Proc.Alive(); iter++ {
		if iter > 10_000 {
			return 0, fmt.Errorf("%s!%s: run budget exhausted", module, symbol)
		}
		res := e.Proc.Run(1_000_000)
		if res.State == vm.ProcIdle && t.State != vm.ThreadDone {
			return 0, fmt.Errorf("%s!%s deadlocked", module, symbol)
		}
	}
	if !e.Proc.Alive() {
		return 0, fmt.Errorf("%s died during %s!%s: %v", e.Browser.Name, module, symbol, e.Proc.Crash)
	}
	return t.Reg(isa.R0), nil
}

// Browse runs one full browse workload.
func (e *BrowserEnv) Browse() error {
	_, err := e.Call(e.Browser.Name+".exe", "browse")
	return err
}

// registerBrowserNatives installs the special-cased APIs the browser models
// rely on.
func registerBrowserNatives(reg *winapi.Registry, env *BrowserEnv) {
	// Sleep(ticks): blocks the calling thread on the virtual clock.
	reg.RegisterNative(winapi.Descriptor{Name: "Sleep", NArgs: 1},
		func(p *vm.Process, t *vm.Thread) *vm.Exception {
			ticks := t.Reg(isa.R1)
			if ticks == 0 {
				ticks = 1
			}
			t.Block(p.Clock+ticks, func(bool) { t.SetReg(0, 0) })
			return nil
		})
	// AddVectoredExceptionHandler(handler): run-time registration.
	reg.RegisterNative(winapi.Descriptor{Name: "AddVectoredExceptionHandler", NArgs: 1},
		func(p *vm.Process, t *vm.Thread) *vm.Exception {
			p.AddVEHandler(t.Reg(isa.R1))
			t.SetReg(0, 1)
			return nil
		})
	// CreateThread(entry, arg): spawns a thread.
	reg.RegisterNative(winapi.Descriptor{Name: "CreateThread", NArgs: 2},
		func(p *vm.Process, t *vm.Thread) *vm.Exception {
			nt, err := p.StartThread("apithread", t.Reg(isa.R1), t.Reg(isa.R2))
			if err != nil {
				t.SetReg(0, 0)
				return nil
			}
			t.SetReg(0, uint64(nt.ID)+1)
			return nil
		})
	// RtlpEnterCriticalSection(ptr): the user-mode lock stub that
	// dereferences the debug-information field (the IE PoC's fault site).
	reg.Register(winapi.Descriptor{
		Name: "RtlpEnterCriticalSection", NArgs: 1,
		PtrArgs: []int{0}, Cat: winapi.CatUserDeref,
	})
	// RtlQueryExceptionPolicy(): the post-update configuration check.
	reg.RegisterNative(winapi.Descriptor{Name: "RtlQueryExceptionPolicy", NArgs: 1},
		func(p *vm.Process, t *vm.Thread) *vm.Exception {
			t.SetReg(0, 1)
			return nil
		})
	// JsAllocTemp(): returns a fresh temporary allocation — a pointer
	// value with no stored reference anywhere (the "volatile heap
	// pointer" exclusion reason).
	var tempBase uint64
	reg.RegisterNative(winapi.Descriptor{Name: "JsAllocTemp", NArgs: 0},
		func(p *vm.Process, t *vm.Thread) *vm.Exception {
			if tempBase == 0 {
				base, err := p.Alloc.Alloc(mem.PageSize, mem.PermRW)
				if err != nil {
					t.SetReg(0, 0)
					return nil
				}
				tempBase = base
			}
			t.SetReg(0, tempBase)
			return nil
		})
}
