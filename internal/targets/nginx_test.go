package targets

import (
	"bytes"
	"testing"

	"crashresist/internal/vm"
)

func TestNginxServesRequests(t *testing.T) {
	srv, err := Nginx()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(101)
	if err != nil {
		t.Fatal(err)
	}
	resp, served := env.Request(HTTPPort, []byte("GET /index.html\n\n"))
	if !served {
		t.Fatalf("no response (state=%v crash=%v)", env.Proc.State, env.Proc.Crash)
	}
	if !bytes.Contains(resp, []byte("OK")) {
		t.Errorf("response = %q", resp)
	}
	// Partial then complete.
	cc, err := env.Kern.Connect(HTTPPort)
	if err != nil {
		t.Fatal(err)
	}
	env.Step()
	cc.Send([]byte("GET /x"))
	env.Step()
	if got := cc.Recv(); len(got) != 0 {
		t.Errorf("premature response %q", got)
	}
	cc.Send([]byte("\n\n"))
	env.Step()
	if got := cc.Recv(); !bytes.Contains(got, []byte("OK")) {
		t.Errorf("completion response = %q", got)
	}
	if !env.Alive() {
		t.Error("server died")
	}
}

func TestNginxSuiteAndServiceCheck(t *testing.T) {
	srv, err := Nginx()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(102)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Suite(env); err != nil {
		t.Fatal(err)
	}
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("suite crashed server: %v", env.Proc.Crash)
	}
	if !srv.ServiceCheck(env) {
		t.Error("service check failed on healthy server")
	}
}

func TestNginxRecvCorruptionGraceful(t *testing.T) {
	// Manually emulate what the validation stage does for the recv
	// candidate: corrupt a connection's buffer pointer, complete the
	// request, expect graceful close and continued service.
	srv, err := Nginx()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(103)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := env.Kern.Connect(HTTPPort)
	if err != nil {
		t.Fatal(err)
	}
	env.Step()
	cc.Send([]byte("GET /y")) // partial: conn struct now holds buffer ptrs
	env.Step()

	// Find the connection's conn struct by scanning the pool for a live
	// buffer pointer (fd numbers depend on descriptor reuse).
	mod := env.Proc.Modules()[0]
	poolOff, ok := mod.Image.Export("conn_pool")
	if !ok {
		t.Fatal("no conn_pool export")
	}
	connVA := uint64(0)
	for i := 0; i < 32; i++ {
		v, err := env.Proc.AS.ReadUint(mod.VA(poolOff)+uint64(i)*32, 8)
		if err == nil && v != 0 {
			connVA = mod.VA(poolOff) + uint64(i)*32
		}
	}
	if connVA == 0 {
		t.Fatal("no live conn struct")
	}
	if err := env.Proc.AS.WriteUint(connVA, 8, 0xdead0000); err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("\n\n"))
	env.Step()
	if env.Proc.State == vm.ProcCrashed {
		t.Fatalf("server crashed: %v", env.Proc.Crash)
	}
	if got := cc.Recv(); len(got) != 0 {
		t.Errorf("corrupted probe produced a response %q (want graceful close)", got)
	}
	if !srv.ServiceCheck(env) {
		t.Error("server no longer serves after corrupted probe")
	}
}

func TestNginxWriteCorruptionCrashes(t *testing.T) {
	srv, err := Nginx()
	if err != nil {
		t.Fatal(err)
	}
	env, err := srv.NewEnv(104)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := env.Kern.Connect(HTTPPort)
	if err != nil {
		t.Fatal(err)
	}
	env.Step()
	cc.Send([]byte("GET /z")) // allocate conn struct
	env.Step()
	mod := env.Proc.Modules()[0]
	poolOff, _ := mod.Image.Export("conn_pool")
	connVA := uint64(0)
	for i := 0; i < 32; i++ {
		v, err := env.Proc.AS.ReadUint(mod.VA(poolOff)+uint64(i)*32, 8)
		if err == nil && v != 0 {
			connVA = mod.VA(poolOff) + uint64(i)*32
		}
	}
	if connVA == 0 {
		t.Fatal("no live conn struct")
	}
	// Corrupt the response buffer pointer (conn+8): the server stores the
	// response through it in user mode.
	if err := env.Proc.AS.WriteUint(connVA+8, 8, 0xdead0000); err != nil {
		t.Fatal(err)
	}
	cc.Send([]byte("\n\n"))
	env.Step()
	if env.Proc.State != vm.ProcCrashed {
		t.Error("write-pointer corruption should crash nginx (invalid candidate)")
	}
}
