// Package taint implements byte-granular dynamic data-flow tracking over the
// M64 VM, in the style of libdft extended with byte-granular labels — the
// engine the paper's Linux syscall pipeline runs server test suites under.
//
// Labels are bit positions in a 64-bit mask; the kernel assigns one label per
// client connection, so a register's taint mask answers "bytes from which
// connections influenced this value". The engine additionally tracks
// register provenance — the memory address a register's value was last
// loaded from — which the discovery pipeline's validation stage uses to
// corrupt the *stored* pointer rather than a transient register, mirroring a
// real attacker's memory write primitive.
//
// The propagation policy is libdft's: direct copies and arithmetic combine
// labels; implicit flows (through control dependencies) are not tracked.
package taint

import (
	"crashresist/internal/isa"
	"crashresist/internal/mem"
	"crashresist/internal/vm"
)

// MaxLabel is the highest usable taint label (bit position in the mask).
const MaxLabel = 63

// regTaint is the per-register byte-lane taint state.
type regTaint [8]uint64

func (r *regTaint) union() uint64 {
	var m uint64
	for _, l := range r {
		m |= l
	}
	return m
}

type threadState struct {
	regs [isa.NumRegisters]regTaint
	// prov[r] is the address register r was last loaded from, if provOK.
	prov   [isa.NumRegisters]uint64
	provOK [isa.NumRegisters]bool
}

// Engine is a byte-granular taint tracker. It implements vm.DataFlow.
type Engine struct {
	threads map[int]*threadState
	// shadow maps page index → per-byte label masks, allocated lazily.
	shadow map[uint64]*[mem.PageSize]uint64
}

var _ vm.DataFlow = (*Engine)(nil)

// New creates an empty taint engine.
func New() *Engine {
	return &Engine{
		threads: make(map[int]*threadState),
		shadow:  make(map[uint64]*[mem.PageSize]uint64),
	}
}

// Attach installs the engine as the process's data-flow sink.
func (e *Engine) Attach(p *vm.Process) { p.Flow = e }

// Reset clears all taint and provenance state.
func (e *Engine) Reset() {
	e.threads = make(map[int]*threadState)
	e.shadow = make(map[uint64]*[mem.PageSize]uint64)
}

func (e *Engine) thread(tid int) *threadState {
	ts, ok := e.threads[tid]
	if !ok {
		ts = &threadState{}
		e.threads[tid] = ts
	}
	return ts
}

// shadowByte returns a pointer to the label mask for one memory byte,
// allocating the shadow page if create is set; nil otherwise.
func (e *Engine) shadowByte(addr uint64, create bool) *uint64 {
	pg, ok := e.shadow[addr/mem.PageSize]
	if !ok {
		if !create {
			return nil
		}
		pg = &[mem.PageSize]uint64{}
		e.shadow[addr/mem.PageSize] = pg
	}
	return &pg[addr%mem.PageSize]
}

// CopyRegReg implements vm.DataFlow: dst = src copies lanes and provenance.
func (e *Engine) CopyRegReg(tid int, dst, src isa.Register) {
	ts := e.thread(tid)
	ts.regs[dst] = ts.regs[src]
	ts.prov[dst] = ts.prov[src]
	ts.provOK[dst] = ts.provOK[src]
}

// SetRegImm implements vm.DataFlow: constants clear taint and provenance.
func (e *Engine) SetRegImm(tid int, dst isa.Register) {
	ts := e.thread(tid)
	ts.regs[dst] = regTaint{}
	ts.provOK[dst] = false
}

// CombineReg implements vm.DataFlow: binary ALU ops merge the source's
// labels into every destination lane (conservative cross-lane smear, since
// carries and shifts move bits across byte lanes). Provenance survives:
// pointer arithmetic on a loaded pointer still originates at the load.
func (e *Engine) CombineReg(tid int, dst, src isa.Register) {
	ts := e.thread(tid)
	srcUnion := ts.regs[src].union()
	if srcUnion == 0 {
		return
	}
	for i := range ts.regs[dst] {
		ts.regs[dst][i] |= srcUnion
	}
}

// LoadMem implements vm.DataFlow: dst lanes take the shadow of the loaded
// bytes; upper lanes clear (loads zero-extend). Provenance records the load
// address.
func (e *Engine) LoadMem(tid int, dst isa.Register, addr uint64, size int) {
	ts := e.thread(tid)
	var rt regTaint
	for i := 0; i < size && i < 8; i++ {
		if sb := e.shadowByte(addr+uint64(i), false); sb != nil {
			rt[i] = *sb
		}
	}
	ts.regs[dst] = rt
	ts.prov[dst] = addr
	ts.provOK[dst] = true
}

// StoreMem implements vm.DataFlow: memory bytes take the register's lane
// labels.
func (e *Engine) StoreMem(tid int, src isa.Register, addr uint64, size int) {
	ts := e.thread(tid)
	for i := 0; i < size && i < 8; i++ {
		label := ts.regs[src][i]
		if sb := e.shadowByte(addr+uint64(i), label != 0); sb != nil {
			*sb = label
		}
	}
}

// ClearMem implements vm.DataFlow.
func (e *Engine) ClearMem(addr uint64, size int) {
	for i := 0; i < size; i++ {
		if sb := e.shadowByte(addr+uint64(i), false); sb != nil {
			*sb = 0
		}
	}
}

// MarkMem implements vm.DataFlow: taints [addr, addr+size) with the label.
func (e *Engine) MarkMem(label uint8, addr uint64, size int) {
	if label == 0 || label > MaxLabel {
		return
	}
	bit := uint64(1) << label
	for i := 0; i < size; i++ {
		sb := e.shadowByte(addr+uint64(i), true)
		*sb |= bit
	}
}

// RegTaint implements vm.DataFlow: the union mask of all lanes.
func (e *Engine) RegTaint(tid int, r isa.Register) uint64 {
	ts, ok := e.threads[tid]
	if !ok {
		return 0
	}
	return ts.regs[r].union()
}

// MemTaint implements vm.DataFlow: the union mask of a byte range.
func (e *Engine) MemTaint(addr uint64, size int) uint64 {
	var m uint64
	for i := 0; i < size; i++ {
		if sb := e.shadowByte(addr+uint64(i), false); sb != nil {
			m |= *sb
		}
	}
	return m
}

// RegProvenance returns the memory address register r was last loaded from,
// if any. Surviving through MOV and pointer arithmetic, this is where an
// attacker's write primitive must aim to influence the register's next
// value.
func (e *Engine) RegProvenance(tid int, r isa.Register) (uint64, bool) {
	ts, ok := e.threads[tid]
	if !ok || !ts.provOK[r] {
		return 0, false
	}
	return ts.prov[r], true
}

// LabelMask returns the mask bit for a label.
func LabelMask(label uint8) uint64 {
	if label == 0 || label > MaxLabel {
		return 0
	}
	return uint64(1) << label
}

// HasLabel reports whether the mask contains the label.
func HasLabel(mask uint64, label uint8) bool {
	return mask&LabelMask(label) != 0
}
