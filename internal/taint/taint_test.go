package taint

import (
	"testing"
	"testing/quick"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/kernel"
	"crashresist/internal/vm"
)

func TestLabelMask(t *testing.T) {
	if LabelMask(0) != 0 {
		t.Error("label 0 must have no mask")
	}
	if LabelMask(1) != 2 {
		t.Errorf("LabelMask(1) = %#x", LabelMask(1))
	}
	if LabelMask(63) != 1<<63 {
		t.Errorf("LabelMask(63) = %#x", LabelMask(63))
	}
	if LabelMask(64) != 0 {
		t.Error("label above MaxLabel must have no mask")
	}
	if !HasLabel(LabelMask(5)|LabelMask(7), 5) || HasLabel(LabelMask(5), 6) {
		t.Error("HasLabel wrong")
	}
}

func TestMarkAndMemTaint(t *testing.T) {
	e := New()
	e.MarkMem(3, 0x1000, 4)
	if got := e.MemTaint(0x1000, 4); got != LabelMask(3) {
		t.Errorf("MemTaint = %#x", got)
	}
	if got := e.MemTaint(0x1004, 4); got != 0 {
		t.Errorf("adjacent bytes tainted: %#x", got)
	}
	e.MarkMem(5, 0x1002, 4)
	if got := e.MemTaint(0x1000, 8); got != LabelMask(3)|LabelMask(5) {
		t.Errorf("union = %#x", got)
	}
	// Label 0 and out-of-range labels are no-ops.
	e.MarkMem(0, 0x2000, 4)
	e.MarkMem(64, 0x2000, 4)
	if e.MemTaint(0x2000, 4) != 0 {
		t.Error("label 0/64 should not taint")
	}
}

func TestClearMem(t *testing.T) {
	e := New()
	e.MarkMem(1, 0x1000, 8)
	e.ClearMem(0x1002, 2)
	if e.MemTaint(0x1002, 2) != 0 {
		t.Error("cleared bytes still tainted")
	}
	if e.MemTaint(0x1000, 2) == 0 || e.MemTaint(0x1004, 4) == 0 {
		t.Error("neighbours lost taint")
	}
}

func TestLoadStorePropagation(t *testing.T) {
	e := New()
	e.MarkMem(7, 0x1000, 8)
	e.LoadMem(0, isa.R1, 0x1000, 8)
	if e.RegTaint(0, isa.R1) != LabelMask(7) {
		t.Error("load did not pick up taint")
	}
	e.StoreMem(0, isa.R1, 0x2000, 8)
	if e.MemTaint(0x2000, 8) != LabelMask(7) {
		t.Error("store did not write taint")
	}
}

func TestByteGranularity(t *testing.T) {
	e := New()
	// Taint only byte 2 of an 8-byte word.
	e.MarkMem(4, 0x1002, 1)
	e.LoadMem(0, isa.R1, 0x1000, 8)
	if e.RegTaint(0, isa.R1) != LabelMask(4) {
		t.Error("whole-register union missing byte taint")
	}
	// Store back only the low 2 bytes: the tainted lane (2) is not
	// included, so the destination stays clean.
	e.StoreMem(0, isa.R1, 0x2000, 2)
	if e.MemTaint(0x2000, 2) != 0 {
		t.Error("byte lanes not preserved through load/store")
	}
	// Storing 4 bytes includes lane 2.
	e.StoreMem(0, isa.R1, 0x3000, 4)
	if e.MemTaint(0x3000, 4) != LabelMask(4) {
		t.Error("lane 2 taint lost on 4-byte store")
	}
	if e.MemTaint(0x3002, 1) != LabelMask(4) || e.MemTaint(0x3000, 1) != 0 {
		t.Error("taint not at the right byte offset")
	}
}

func TestLoadSmallClearsUpperLanes(t *testing.T) {
	e := New()
	e.MarkMem(2, 0x1000, 8)
	e.LoadMem(0, isa.R1, 0x1000, 8)
	// Now load 1 clean byte into the same register: upper lanes clear.
	e.LoadMem(0, isa.R1, 0x5000, 1)
	if e.RegTaint(0, isa.R1) != 0 {
		t.Error("narrow load kept stale upper-lane taint")
	}
}

func TestCopyAndCombine(t *testing.T) {
	e := New()
	e.MarkMem(1, 0x1000, 8)
	e.LoadMem(0, isa.R1, 0x1000, 8)
	e.CopyRegReg(0, isa.R2, isa.R1)
	if e.RegTaint(0, isa.R2) != LabelMask(1) {
		t.Error("copy lost taint")
	}
	e.SetRegImm(0, isa.R3)
	e.CombineReg(0, isa.R3, isa.R2)
	if e.RegTaint(0, isa.R3) != LabelMask(1) {
		t.Error("combine lost taint")
	}
	// Combining a clean source is a no-op.
	e.SetRegImm(0, isa.R4)
	e.CombineReg(0, isa.R2, isa.R4)
	if e.RegTaint(0, isa.R2) != LabelMask(1) {
		t.Error("clean combine changed taint")
	}
	e.SetRegImm(0, isa.R2)
	if e.RegTaint(0, isa.R2) != 0 {
		t.Error("immediate did not clear taint")
	}
}

func TestThreadsIsolated(t *testing.T) {
	e := New()
	e.MarkMem(1, 0x1000, 8)
	e.LoadMem(1, isa.R1, 0x1000, 8)
	if e.RegTaint(2, isa.R1) != 0 {
		t.Error("taint leaked across threads")
	}
	if e.RegTaint(1, isa.R1) == 0 {
		t.Error("thread 1 lost its taint")
	}
}

func TestProvenance(t *testing.T) {
	e := New()
	e.LoadMem(0, isa.R1, 0x1234, 8)
	addr, ok := e.RegProvenance(0, isa.R1)
	if !ok || addr != 0x1234 {
		t.Errorf("provenance = %#x %v", addr, ok)
	}
	// MOV propagates provenance.
	e.CopyRegReg(0, isa.R2, isa.R1)
	if addr, ok := e.RegProvenance(0, isa.R2); !ok || addr != 0x1234 {
		t.Errorf("copied provenance = %#x %v", addr, ok)
	}
	// Arithmetic keeps it (pointer adjustment).
	e.CombineReg(0, isa.R2, isa.R3)
	if _, ok := e.RegProvenance(0, isa.R2); !ok {
		t.Error("combine dropped provenance")
	}
	// Constants clear it.
	e.SetRegImm(0, isa.R2)
	if _, ok := e.RegProvenance(0, isa.R2); ok {
		t.Error("immediate kept provenance")
	}
	if _, ok := e.RegProvenance(9, isa.R1); ok {
		t.Error("unknown thread has provenance")
	}
}

func TestReset(t *testing.T) {
	e := New()
	e.MarkMem(1, 0x1000, 8)
	e.LoadMem(0, isa.R1, 0x1000, 8)
	e.Reset()
	if e.MemTaint(0x1000, 8) != 0 || e.RegTaint(0, isa.R1) != 0 {
		t.Error("Reset left state behind")
	}
}

// TestQuickMarkQuery property-tests that marking then querying any range
// returns exactly the marked label for overlapping queries and nothing for
// disjoint ones.
func TestQuickMarkQuery(t *testing.T) {
	f := func(addrRaw uint32, sizeRaw, labelRaw uint8) bool {
		e := New()
		addr := uint64(addrRaw)
		size := int(sizeRaw%64) + 1
		label := labelRaw%MaxLabel + 1
		e.MarkMem(label, addr, size)
		if e.MemTaint(addr, size) != LabelMask(label) {
			return false
		}
		if e.MemTaint(addr+uint64(size), 8) != 0 {
			return false
		}
		if addr >= 8 && e.MemTaint(addr-8, 8) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEndToEndNetworkTaintReachesSyscall is the integration scenario behind
// Table I: client bytes arrive via read(), the server loads a
// pointer-influencing value from them, and the taint engine flags the next
// syscall's pointer argument as attacker controlled.
func TestEndToEndNetworkTaintReachesSyscall(t *testing.T) {
	b := asm.NewBuilder("srv.exe", bin.KindExecutable)
	b.Func("main").Entry("main")
	// socket/bind/listen/accept
	b.MovRI(isa.R0, kernel.SysSocket).Syscall()
	b.MovRR(isa.R6, isa.R0)
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 80).MovRI(isa.R0, kernel.SysBind).Syscall()
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R0, kernel.SysListen).Syscall()
	b.MovRR(isa.R1, isa.R6).MovRI(isa.R2, 0).MovRI(isa.R0, kernel.SysAccept).Syscall()
	b.MovRR(isa.R7, isa.R0)
	// read(conn, buf, 16) — buf bytes become tainted
	b.MovRR(isa.R1, isa.R7).LeaData(isa.R2, "buf").MovRI(isa.R3, 16).MovRI(isa.R0, kernel.SysRead).Syscall()
	// Use the first 8 client bytes as a pointer for write(conn, ptr, 4).
	b.LeaData(isa.R2, "buf").Load(8, isa.R2, isa.R2, 0)
	b.MovRR(isa.R1, isa.R7).MovRI(isa.R3, 4).MovRI(isa.R0, kernel.SysWrite).Syscall()
	b.MovRI(isa.R1, 0).MovRI(isa.R0, kernel.SysExit).Syscall()
	b.EndFunc()
	b.BSS("buf", 16)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	p := vm.NewProcess(vm.Config{Platform: vm.PlatformLinux, Seed: 3})
	k := kernel.New()
	k.Attach(p)
	e := New()
	e.Attach(p)

	// Observe the write syscall's pointer-argument taint at entry.
	var writePtrTaint uint64
	var writeProv uint64
	var writeProvOK bool
	obs := &syscallProbe{onEnter: func(ev kernel.Event) {
		if ev.Num == kernel.SysWrite {
			writePtrTaint = e.RegTaint(ev.Thread.ID, isa.R2)
			writeProv, writeProvOK = e.RegProvenance(ev.Thread.ID, isa.R2)
		}
	}}
	k.SetObserver(obs)

	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.RunUntilIdle(1_000_000)

	cc, err := k.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	// The 8 pointer bytes: aim at the buffer itself so write succeeds.
	mod := p.Modules()[0]
	bufVA := mod.VA(mod.Image.BSSStart())
	ptrBytes := make([]byte, 16)
	for i := 0; i < 8; i++ {
		ptrBytes[i] = byte(bufVA >> (8 * i))
	}
	cc.Send(ptrBytes)
	p.RunUntilIdle(1_000_000)

	if p.State != vm.ProcExited {
		t.Fatalf("state = %v crash=%v", p.State, p.Crash)
	}
	if !HasLabel(writePtrTaint, cc.Label()) {
		t.Errorf("write pointer arg taint = %#x, want label %d set", writePtrTaint, cc.Label())
	}
	if !writeProvOK || writeProv != bufVA {
		t.Errorf("write pointer provenance = %#x %v, want buf VA %#x", writeProv, writeProvOK, bufVA)
	}
}

type syscallProbe struct {
	onEnter func(kernel.Event)
}

func (s *syscallProbe) SyscallEnter(ev kernel.Event) {
	if s.onEnter != nil {
		s.onEnter(ev)
	}
}

func (s *syscallProbe) SyscallExit(kernel.Event, uint64) {}
