package taint

import (
	"testing"

	"crashresist/internal/isa"
)

// BenchmarkPropagation measures the per-instruction data-flow cost: one
// load + one combine + one store, the hot path of a taint-tracked run.
func BenchmarkPropagation(b *testing.B) {
	e := New()
	e.MarkMem(3, 0x1000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LoadMem(0, isa.R1, 0x1000, 8)
		e.CombineReg(0, isa.R2, isa.R1)
		e.StoreMem(0, isa.R2, 0x2000, 8)
	}
}

// BenchmarkCleanPath measures the same sequence on untainted data — the
// common case during normal execution.
func BenchmarkCleanPath(b *testing.B) {
	e := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LoadMem(0, isa.R1, 0x9000, 8)
		e.CombineReg(0, isa.R2, isa.R1)
		e.StoreMem(0, isa.R2, 0xA000, 8)
	}
}
