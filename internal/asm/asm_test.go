package asm

import (
	"strings"
	"testing"

	"crashresist/internal/bin"
	"crashresist/internal/isa"
)

func TestBuildSimpleFunction(t *testing.T) {
	b := NewBuilder("t.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		MovRI(isa.R0, 42).
		Ret().
		EndFunc()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != 0 {
		t.Errorf("Entry = %d, want 0", img.Entry)
	}
	ins, err := isa.DecodeAll(img.Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 || ins[0].Op != isa.OpMovRI || ins[0].Imm != 42 || ins[1].Op != isa.OpRet {
		t.Errorf("text = %v", ins)
	}
	if len(img.Symbols) != 1 || img.Symbols[0].Name != "main" || img.Symbols[0].Size != uint32(len(img.Text)) {
		t.Errorf("symbols = %+v", img.Symbols)
	}
}

func TestBranchResolution(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Func("f").
		Label("top").
		SubRI(isa.R1, 1).
		Jnz("top"). // backward
		Jmp("done").
		Nop().
		Label("done").
		Ret().
		EndFunc()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lines, err := isa.Scan(img.Text)
	if err != nil {
		t.Fatal(err)
	}
	// Verify each branch lands on an instruction boundary at the right label.
	offsets := make(map[int]bool, len(lines))
	for _, l := range lines {
		offsets[l.Offset] = true
	}
	for _, l := range lines {
		if l.Ins.IsCond() || l.Ins.Op == isa.OpJmp {
			dst := l.Offset + l.Ins.Size() + int(l.Ins.Disp)
			if !offsets[dst] {
				t.Errorf("branch at %d targets %d: not an instruction boundary", l.Offset, dst)
			}
		}
	}
	// jnz must target offset 0 (label top).
	if lines[1].Ins.Op != isa.OpJnz {
		t.Fatalf("expected jnz second, got %v", lines[1].Ins)
	}
	if got := lines[1].Offset + lines[1].Ins.Size() + int(lines[1].Ins.Disp); got != 0 {
		t.Errorf("jnz targets %d, want 0", got)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Func("f").Jmp("nowhere").Ret().EndFunc()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("Build error = %v, want undefined label", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Label("x").Label("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Build error = %v, want duplicate", err)
	}
}

func TestDataAndBSSSymbols(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Func("f").
		LeaData(isa.R1, "greeting").
		LeaData(isa.R2, "buf").
		Ret().
		EndFunc()
	b.Data("greeting", []byte("hi")).
		Data("other", []byte{1, 2, 3}).
		BSS("buf", 100).
		Export("greeting", "greeting").
		Export("buf", "buf")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	wantGreeting := img.DataStart()
	if img.Exports["greeting"] != wantGreeting {
		t.Errorf("greeting export = %#x, want %#x", img.Exports["greeting"], wantGreeting)
	}
	if img.Exports["buf"] != img.BSSStart() {
		t.Errorf("buf export = %#x, want %#x", img.Exports["buf"], img.BSSStart())
	}

	// The LEA displacements must point at those flat offsets.
	lines, err := isa.Scan(img.Text)
	if err != nil {
		t.Fatal(err)
	}
	leaTarget := func(i int) uint32 {
		return uint32(lines[i].Offset + lines[i].Ins.Size() + int(lines[i].Ins.Disp))
	}
	if leaTarget(0) != wantGreeting {
		t.Errorf("lea greeting resolves to %#x, want %#x", leaTarget(0), wantGreeting)
	}
	if leaTarget(1) != img.BSSStart() {
		t.Errorf("lea buf resolves to %#x, want %#x", leaTarget(1), img.BSSStart())
	}
}

func TestDataAlignment(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Func("f").Ret().EndFunc()
	b.Data("a", []byte{1}).DataU64("b", 0x0102030405060708)
	b.Export("b", "b")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	off := img.Exports["b"] - img.DataStart()
	if off%8 != 0 {
		t.Errorf("u64 symbol at unaligned data offset %d", off)
	}
	if img.Data[off] != 8 || img.Data[off+7] != 1 {
		t.Errorf("u64 not little endian: % x", img.Data[off:off+8])
	}
}

func TestDataPtrReloc(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Func("handler").Ret().EndFunc()
	b.DataPtr("vec", "handler")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Relocs) != 1 {
		t.Fatalf("relocs = %+v", img.Relocs)
	}
	if img.Relocs[0].Offset != img.DataStart() || img.Relocs[0].Target != 0 {
		t.Errorf("reloc = %+v", img.Relocs[0])
	}
}

func TestImportsDeduplicated(t *testing.T) {
	b := NewBuilder("t.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		CallImport("", "read").
		CallImport("libc.dll", "helper").
		CallImport("", "read"). // duplicate
		Halt().
		EndFunc()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Imports) != 2 {
		t.Fatalf("imports = %+v, want 2 entries", img.Imports)
	}
	lines, err := isa.Scan(img.Text)
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Ins.Disp != 0 || lines[1].Ins.Disp != 1 || lines[2].Ins.Disp != 0 {
		t.Errorf("import slots = %d %d %d", lines[0].Ins.Disp, lines[1].Ins.Disp, lines[2].Ins.Disp)
	}
}

func TestGuardEmitsScopeEntry(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Func("probe").
		Label("try_begin").
		Load(8, isa.R0, isa.R1, 0).
		Label("try_end").
		Ret().
		Label("landing").
		MovRI(isa.R0, ^uint64(0)).
		Ret().
		EndFunc()
	b.Func("filter").
		MovRI(isa.R0, 1).
		Ret().
		EndFunc()
	b.Guard("probe", "try_begin", "try_end", "filter", "landing")
	b.Guard("probe", "try_begin", "try_end", CatchAll, "landing")

	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Scopes) != 2 {
		t.Fatalf("scopes = %+v", img.Scopes)
	}
	s := img.Scopes[0]
	if s.Func != 0 || s.Begin != 0 || s.End != 7 {
		t.Errorf("scope range = %+v", s)
	}
	if s.Filter == bin.FilterCatchAll {
		t.Error("first scope should reference the filter function")
	}
	if !img.Scopes[1].IsCatchAll() {
		t.Error("second scope should be catch-all")
	}
	sym, ok := img.SymbolAt(s.Filter)
	if !ok || sym.Name != "filter" {
		t.Errorf("filter offset %#x resolves to %v", s.Filter, sym)
	}
}

func TestGuardWithBadLabels(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Func("f").Ret().EndFunc()
	b.Guard("f", "missing", "f", CatchAll, "f")
	if _, err := b.Build(); err == nil {
		t.Error("guard with undefined label should fail build")
	}
}

func TestUnclosedFunc(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Func("f").Ret()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "never closed") {
		t.Errorf("Build error = %v", err)
	}
}

func TestEndFuncWithoutFunc(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.EndFunc()
	if _, err := b.Build(); err == nil {
		t.Error("EndFunc without Func should fail")
	}
}

func TestBadLoadSize(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Func("f").Load(3, isa.R0, isa.R1, 0).Ret().EndFunc()
	if _, err := b.Build(); err == nil {
		t.Error("load size 3 should fail")
	}
}

func TestExportOfCodeLabel(t *testing.T) {
	b := NewBuilder("t.dll", bin.KindLibrary)
	b.Func("a").Nop().Ret().EndFunc()
	b.Func("entrypoint").Ret().EndFunc()
	b.Export("EntryPoint", "entrypoint")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantOff := img.Symbols[1].Offset
	if img.Exports["EntryPoint"] != wantOff {
		t.Errorf("export = %#x, want %#x", img.Exports["EntryPoint"], wantOff)
	}
}

func TestForwardCall(t *testing.T) {
	b := NewBuilder("t.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		Call("callee").
		Halt().
		EndFunc()
	b.Func("callee").Ret().EndFunc()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lines, err := isa.Scan(img.Text)
	if err != nil {
		t.Fatal(err)
	}
	calleeOff := img.Symbols[1].Offset
	got := uint32(lines[0].Offset + lines[0].Ins.Size() + int(lines[0].Ins.Disp))
	if got != calleeOff {
		t.Errorf("call resolves to %#x, want %#x", got, calleeOff)
	}
}

// TestBuilderFullInstructionSurface drives every emitter through the
// builder and validates the decoded stream.
func TestBuilderFullInstructionSurface(t *testing.T) {
	b := NewBuilder("all.exe", bin.KindExecutable)
	b.Func("main").Entry("main").
		MovRI(isa.R1, 7).
		MovRR(isa.R2, isa.R1).
		AddRR(isa.R2, isa.R1).
		SubRR(isa.R2, isa.R1).
		AndRR(isa.R2, isa.R1).
		OrRR(isa.R2, isa.R1).
		XorRR(isa.R2, isa.R1).
		MulRR(isa.R2, isa.R1).
		DivRR(isa.R2, isa.R1).
		ShlRR(isa.R2, isa.R1).
		ShrRR(isa.R2, isa.R1).
		AddRI(isa.R2, 1).
		SubRI(isa.R2, 1).
		AndRI(isa.R2, -1).
		OrRI(isa.R2, 0).
		XorRI(isa.R2, 0).
		MulRI(isa.R2, 1).
		ShlRI(isa.R2, 1).
		ShrRI(isa.R2, 1).
		Not(isa.R2).
		Neg(isa.R2).
		CmpRR(isa.R2, isa.R1).
		CmpRI(isa.R2, 5).
		TestRR(isa.R2, isa.R1).
		TestRI(isa.R2, 5).
		Jz("x").Jnz("x").Jl("x").Jge("x").Jle("x").Jg("x").Jb("x").Jae("x").
		Label("x").
		LeaCode(isa.R3, "main").
		JmpR(isa.R3)
	b.Halt().EndFunc()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ins, err := isa.DecodeAll(img.Text)
	if err != nil {
		t.Fatal(err)
	}
	// One instruction per emitter call above.
	if len(ins) != 36 {
		t.Errorf("decoded %d instructions", len(ins))
	}
}

// TestTextALUMatrix assembles every mnemonic in both RR and RI forms and
// checks opcode selection.
func TestTextALUMatrix(t *testing.T) {
	src := `
.module alu.exe exe
.entry main
.func main
    add r1, r2
    add r1, 4
    sub r1, r2
    sub r1, 4
    and r1, r2
    and r1, 4
    or r1, r2
    or r1, 4
    xor r1, r2
    xor r1, 4
    shl r1, r2
    shl r1, 4
    shr r1, r2
    shr r1, 4
    mul r1, r2
    mul r1, 4
    div r1, r2
    cmp r1, r2
    cmp r1, 4
    test r1, r2
    test r1, 4
    mov r1, r2
    mov r1, 4
    not r1
    neg r1
    jmpr r1
.endfunc
`
	img, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := isa.DecodeAll(img.Text)
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Op{
		isa.OpAddRR, isa.OpAddRI, isa.OpSubRR, isa.OpSubRI,
		isa.OpAndRR, isa.OpAndRI, isa.OpOrRR, isa.OpOrRI,
		isa.OpXorRR, isa.OpXorRI, isa.OpShlRR, isa.OpShlRI,
		isa.OpShrRR, isa.OpShrRI, isa.OpMulRR, isa.OpMulRI,
		isa.OpDivRR, isa.OpCmpRR, isa.OpCmpRI, isa.OpTestRR, isa.OpTestRI,
		isa.OpMovRR, isa.OpMovRI, isa.OpNot, isa.OpNeg, isa.OpJmpR,
	}
	if len(ins) != len(want) {
		t.Fatalf("decoded %d, want %d", len(ins), len(want))
	}
	for i := range want {
		if ins[i].Op != want[i] {
			t.Errorf("op %d = %v, want %v", i, ins[i].Op, want[i])
		}
	}
}
