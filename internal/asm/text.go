package asm

import (
	"fmt"
	"strconv"
	"strings"

	"crashresist/internal/bin"
	"crashresist/internal/isa"
)

// Assemble parses M64 assembler text and builds a CRX image. The syntax is
// line oriented; ';' starts a comment. Directives:
//
//	.module NAME exe|dll        image name and kind (required, first)
//	.entry LABEL                executable entry point
//	.func NAME / .endfunc       function span (defines label NAME)
//	.export NAME SYMBOL         export a code label or data/bss symbol
//	.data NAME str:"..."        initialized data (string, supports \n \0 \\ \")
//	.data NAME u64:VALUE        8-byte little-endian value
//	.data NAME zero:SIZE        SIZE zero bytes of initialized data
//	.dataptr NAME TARGET        8-byte pointer to a symbol (load-time reloc)
//	.bss NAME SIZE              zero-initialized storage
//	.guard FUNC BEGIN END FILTER TARGET
//	                            scope-table entry; FILTER may be 'catchall'
//
// Labels are "name:" on their own line or before an instruction.
// Instructions use the disassembler's mnemonics:
//
//	mov r1, r2        mov r1, 0x42      add/sub/and/or/xor/shl/shr/mul/div
//	cmp r1, 7         test r1, r2       not r1      neg r1
//	load8 r1, [r2+8]  store4 [r2-4], r3 (widths 1/2/4/8)
//	lea r1, sym       push r1           pop r1
//	jmp label         jz/jnz/jl/jge/jle/jg/jb/jae label
//	call label        callr r1          jmpr r1
//	calli api:NAME    calli mod.dll!sym
//	syscall  yield  nop  halt  ret      raise 0xC0000005
func Assemble(source string) (*bin.Image, error) {
	p := &textParser{}
	for i, raw := range strings.Split(source, "\n") {
		if err := p.line(raw); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	if p.b == nil {
		return nil, fmt.Errorf("missing .module directive")
	}
	return p.b.Build()
}

type textParser struct {
	b      *Builder
	inFunc bool
}

func (p *textParser) line(raw string) error {
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		raw = raw[:i]
	}
	line := strings.TrimSpace(raw)
	if line == "" {
		return nil
	}

	if strings.HasPrefix(line, ".") {
		return p.directive(line)
	}
	if p.b == nil {
		return fmt.Errorf("code before .module")
	}

	// Leading label?
	if i := strings.IndexByte(line, ':'); i >= 0 && isIdent(line[:i]) && !strings.Contains(line[:i], " ") {
		p.b.Label(line[:i])
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	return p.instruction(line)
}

func (p *textParser) directive(line string) error {
	fields := splitFields(line)
	switch fields[0] {
	case ".module":
		if p.b != nil {
			return fmt.Errorf("duplicate .module")
		}
		if len(fields) != 3 {
			return fmt.Errorf(".module NAME exe|dll")
		}
		kind := bin.KindExecutable
		switch fields[2] {
		case "exe":
		case "dll":
			kind = bin.KindLibrary
		default:
			return fmt.Errorf("unknown module kind %q", fields[2])
		}
		p.b = NewBuilder(fields[1], kind)
		return nil
	}
	if p.b == nil {
		return fmt.Errorf("%s before .module", fields[0])
	}
	switch fields[0] {
	case ".entry":
		if len(fields) != 2 {
			return fmt.Errorf(".entry LABEL")
		}
		p.b.Entry(fields[1])
	case ".func":
		if len(fields) != 2 {
			return fmt.Errorf(".func NAME")
		}
		if p.inFunc {
			return fmt.Errorf("nested .func")
		}
		p.inFunc = true
		p.b.Func(fields[1])
	case ".endfunc":
		if !p.inFunc {
			return fmt.Errorf(".endfunc without .func")
		}
		p.inFunc = false
		p.b.EndFunc()
	case ".export":
		if len(fields) != 3 {
			return fmt.Errorf(".export NAME SYMBOL")
		}
		p.b.Export(fields[1], fields[2])
	case ".data":
		if len(fields) < 3 {
			return fmt.Errorf(".data NAME kind:value")
		}
		return p.data(fields[1], strings.Join(fields[2:], " "))
	case ".dataptr":
		if len(fields) != 3 {
			return fmt.Errorf(".dataptr NAME TARGET")
		}
		p.b.DataPtr(fields[1], fields[2])
	case ".bss":
		if len(fields) != 3 {
			return fmt.Errorf(".bss NAME SIZE")
		}
		size, err := parseUint(fields[2])
		if err != nil {
			return err
		}
		p.b.BSS(fields[1], uint32(size))
	case ".guard":
		if len(fields) != 6 {
			return fmt.Errorf(".guard FUNC BEGIN END FILTER TARGET")
		}
		filter := fields[4]
		if filter == "catchall" {
			filter = CatchAll
		}
		p.b.Guard(fields[1], fields[2], fields[3], filter, fields[5])
	default:
		return fmt.Errorf("unknown directive %s", fields[0])
	}
	return nil
}

func (p *textParser) data(name, spec string) error {
	switch {
	case strings.HasPrefix(spec, "str:"):
		s, err := unquote(strings.TrimPrefix(spec, "str:"))
		if err != nil {
			return err
		}
		p.b.Data(name, []byte(s))
	case strings.HasPrefix(spec, "u64:"):
		v, err := parseUint(strings.TrimPrefix(spec, "u64:"))
		if err != nil {
			return err
		}
		p.b.DataU64(name, v)
	case strings.HasPrefix(spec, "zero:"):
		n, err := parseUint(strings.TrimPrefix(spec, "zero:"))
		if err != nil {
			return err
		}
		p.b.Data(name, make([]byte, n))
	default:
		return fmt.Errorf("unknown data kind in %q (want str:/u64:/zero:)", spec)
	}
	return nil
}

// instruction parses one mnemonic line.
func (p *textParser) instruction(line string) error {
	mnem := line
	rest := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	ops := splitOperands(rest)
	b := p.b

	switch mnem {
	case "nop":
		b.Nop()
	case "halt":
		b.Halt()
	case "ret":
		b.Ret()
	case "syscall":
		b.Syscall()
	case "yield":
		b.Yield()

	case "push", "pop", "not", "neg", "callr", "jmpr":
		if len(ops) != 1 {
			return fmt.Errorf("%s takes one register", mnem)
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		switch mnem {
		case "push":
			b.Push(r)
		case "pop":
			b.Pop(r)
		case "not":
			b.Not(r)
		case "neg":
			b.Neg(r)
		case "callr":
			b.CallR(r)
		case "jmpr":
			b.JmpR(r)
		}

	case "mov", "add", "sub", "and", "or", "xor", "shl", "shr", "mul", "div", "cmp", "test":
		if len(ops) != 2 {
			return fmt.Errorf("%s takes two operands", mnem)
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		if src, err := parseReg(ops[1]); err == nil {
			return p.aluRR(mnem, dst, src)
		}
		imm, err := parseInt(ops[1])
		if err != nil {
			return fmt.Errorf("%s: bad operand %q", mnem, ops[1])
		}
		return p.aluRI(mnem, dst, imm)

	case "load1", "load2", "load4", "load8":
		if len(ops) != 2 {
			return fmt.Errorf("%s dst, [base+disp]", mnem)
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		base, disp, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		b.Load(int(mnem[4]-'0'), dst, base, disp)
	case "store1", "store2", "store4", "store8":
		if len(ops) != 2 {
			return fmt.Errorf("%s [base+disp], src", mnem)
		}
		base, disp, err := parseMem(ops[0])
		if err != nil {
			return err
		}
		src, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Store(int(mnem[5]-'0'), base, disp, src)

	case "lea":
		if len(ops) != 2 {
			return fmt.Errorf("lea reg, symbol")
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		// LeaData resolves code labels, data and bss symbols alike.
		b.LeaData(r, strings.TrimPrefix(ops[1], "@"))

	case "jmp", "jz", "jnz", "jl", "jge", "jle", "jg", "jb", "jae", "call":
		if len(ops) != 1 {
			return fmt.Errorf("%s label", mnem)
		}
		label := ops[0]
		switch mnem {
		case "jmp":
			b.Jmp(label)
		case "jz":
			b.Jz(label)
		case "jnz":
			b.Jnz(label)
		case "jl":
			b.Jl(label)
		case "jge":
			b.Jge(label)
		case "jle":
			b.Jle(label)
		case "jg":
			b.Jg(label)
		case "jb":
			b.Jb(label)
		case "jae":
			b.Jae(label)
		case "call":
			b.Call(label)
		}

	case "calli":
		if len(ops) != 1 {
			return fmt.Errorf("calli api:NAME or calli mod!sym")
		}
		switch {
		case strings.HasPrefix(ops[0], "api:"):
			b.CallImport("", strings.TrimPrefix(ops[0], "api:"))
		case strings.Contains(ops[0], "!"):
			parts := strings.SplitN(ops[0], "!", 2)
			b.CallImport(parts[0], parts[1])
		default:
			return fmt.Errorf("calli operand %q (want api:NAME or mod!sym)", ops[0])
		}

	case "raise":
		if len(ops) != 1 {
			return fmt.Errorf("raise CODE")
		}
		code, err := parseUint(ops[0])
		if err != nil {
			return err
		}
		b.Raise(uint32(code))

	default:
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	return nil
}

func (p *textParser) aluRR(mnem string, dst, src isa.Register) error {
	switch mnem {
	case "mov":
		p.b.MovRR(dst, src)
	case "add":
		p.b.AddRR(dst, src)
	case "sub":
		p.b.SubRR(dst, src)
	case "and":
		p.b.AndRR(dst, src)
	case "or":
		p.b.OrRR(dst, src)
	case "xor":
		p.b.XorRR(dst, src)
	case "shl":
		p.b.ShlRR(dst, src)
	case "shr":
		p.b.ShrRR(dst, src)
	case "mul":
		p.b.MulRR(dst, src)
	case "div":
		p.b.DivRR(dst, src)
	case "cmp":
		p.b.CmpRR(dst, src)
	case "test":
		p.b.TestRR(dst, src)
	}
	return nil
}

func (p *textParser) aluRI(mnem string, dst isa.Register, imm int64) error {
	switch mnem {
	case "mov":
		p.b.MovRI(dst, uint64(imm))
	case "add":
		p.b.AddRI(dst, int32(imm))
	case "sub":
		p.b.SubRI(dst, int32(imm))
	case "and":
		p.b.AndRI(dst, int32(imm))
	case "or":
		p.b.OrRI(dst, int32(imm))
	case "xor":
		p.b.XorRI(dst, int32(imm))
	case "shl":
		p.b.ShlRI(dst, int32(imm))
	case "shr":
		p.b.ShrRI(dst, int32(imm))
	case "mul":
		p.b.MulRI(dst, int32(imm))
	case "div":
		return fmt.Errorf("div takes a register source")
	case "cmp":
		p.b.CmpRI(dst, int32(imm))
	case "test":
		p.b.TestRI(dst, int32(imm))
	}
	return nil
}

// --- lexical helpers ---

func splitFields(s string) []string {
	// Fields, but keep quoted strings intact for .data.
	var out []string
	for len(s) > 0 {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		if i := strings.IndexAny(s, " \t"); i >= 0 && !strings.Contains(s[:i], `"`) {
			out = append(out, s[:i])
			s = s[i:]
			continue
		}
		out = append(out, s)
		break
	}
	return out
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func parseReg(s string) (isa.Register, error) {
	if s == "sp" {
		return isa.SP, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 16 {
			return isa.Register(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseMem(s string) (isa.Register, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sign := int64(1)
	regPart, dispPart := inner, ""
	if i := strings.IndexAny(inner, "+-"); i >= 0 {
		if inner[i] == '-' {
			sign = -1
		}
		regPart, dispPart = inner[:i], inner[i+1:]
	}
	base, err := parseReg(strings.TrimSpace(regPart))
	if err != nil {
		return 0, 0, err
	}
	var disp int64
	if dispPart != "" {
		disp, err = parseInt(strings.TrimSpace(dispPart))
		if err != nil {
			return 0, 0, err
		}
	}
	return base, int32(sign * disp), nil
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(s, "+"), 0, 64)
}

func parseInt(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func unquote(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("string literal must be quoted: %q", s)
	}
	body := s[1 : len(s)-1]
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		switch body[i] {
		case 'n':
			out.WriteByte('\n')
		case 't':
			out.WriteByte('\t')
		case '0':
			out.WriteByte(0)
		case '\\':
			out.WriteByte('\\')
		case '"':
			out.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out.String(), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}
