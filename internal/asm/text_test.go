package asm

import (
	"strings"
	"testing"

	"crashresist/internal/bin"
	"crashresist/internal/isa"
)

const sampleSource = `
; sample program: sums 1..10 and exits
.module sum.exe exe
.entry main

.func main
    mov r1, 0            ; sum
    mov r2, 1            ; i
loop:
    cmp r2, 10
    jg done
    add r1, r2
    add r2, 1
    jmp loop
done:
    mov r0, r1
    halt
.endfunc
`

func TestAssembleAndRunSample(t *testing.T) {
	img, err := Assemble(sampleSource)
	if err != nil {
		t.Fatal(err)
	}
	if img.Name != "sum.exe" || img.Kind != bin.KindExecutable {
		t.Errorf("header = %s %v", img.Name, img.Kind)
	}
	ins, err := isa.DecodeAll(img.Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 9 {
		t.Errorf("instruction count = %d", len(ins))
	}
}

func TestAssembleDataBssExports(t *testing.T) {
	img, err := Assemble(`
.module lib.dll dll
.func probe
    lea r1, greeting
    load8 r0, [r1+0]
    ret
.endfunc
.data greeting str:"GET /\n\0"
.data magic u64:0xdeadbeef
.data pad zero:16
.dataptr vec probe
.bss buf 128
.export probe probe
.export buf buf
`)
	if err != nil {
		t.Fatal(err)
	}
	if string(img.Data[:7]) != "GET /\n\x00" {
		t.Errorf("greeting bytes = %q", img.Data[:7])
	}
	if len(img.Relocs) != 1 || img.Relocs[0].Target != 0 {
		t.Errorf("relocs = %+v", img.Relocs)
	}
	if img.BSSSize < 128 {
		t.Errorf("bss = %d", img.BSSSize)
	}
	if _, ok := img.Exports["probe"]; !ok {
		t.Error("probe not exported")
	}
	if off, ok := img.Exports["buf"]; !ok || off < img.BSSStart() {
		t.Errorf("buf export = %#x %v", off, ok)
	}
}

func TestAssembleGuardAndFilter(t *testing.T) {
	img, err := Assemble(`
.module g.dll dll
.func probe
try:
    load8 r0, [r1+0]
try_end:
    ret
land:
    mov r0, 0xffffffffffffffff
    ret
.endfunc
.func flt
    cmp r1, 0xC0000005
    jz yes
    mov r0, 0
    ret
yes:
    mov r0, 1
    ret
.endfunc
.guard probe try try_end flt land
.guard probe try try_end catchall land
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Scopes) != 2 {
		t.Fatalf("scopes = %d", len(img.Scopes))
	}
	if img.Scopes[0].IsCatchAll() || !img.Scopes[1].IsCatchAll() {
		t.Errorf("scope kinds wrong: %+v", img.Scopes)
	}
}

func TestAssembleMemoryAndImports(t *testing.T) {
	img, err := Assemble(`
.module m.exe exe
.entry main
.func main
    load4 r1, [r2-16]
    store2 [sp+8], r3
    push r4
    pop r4
    callr r5
    calli api:read
    calli libc.dll!helper
    raise 0xC0000094
    syscall
    yield
    nop
    halt
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Imports) != 2 {
		t.Fatalf("imports = %+v", img.Imports)
	}
	if img.Imports[0].String() != "api:read" || img.Imports[1].String() != "libc.dll!helper" {
		t.Errorf("imports = %v", img.Imports)
	}
	lines, err := isa.Scan(img.Text)
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Ins.Op != isa.OpLoad4 || lines[0].Ins.Disp != -16 {
		t.Errorf("load = %+v", lines[0].Ins)
	}
	if lines[1].Ins.Op != isa.OpStore2 || lines[1].Ins.A != isa.SP || lines[1].Ins.Disp != 8 {
		t.Errorf("store = %+v", lines[1].Ins)
	}
}

func TestAssembleRoundTripThroughDisassembler(t *testing.T) {
	img, err := Assemble(sampleSource)
	if err != nil {
		t.Fatal(err)
	}
	text := isa.Disassemble(img.Text)
	for _, want := range []string{"mov r1, 0x0", "cmp r2, 10", "jg", "add r1, r2", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"no module", ".func f\nret\n.endfunc", "before .module"},
		{"dup module", ".module a exe\n.module b exe", "duplicate"},
		{"bad kind", ".module a elf", "unknown module kind"},
		{"bad mnemonic", ".module a exe\nfrobnicate r1", "unknown mnemonic"},
		{"bad register", ".module a exe\nmov r99, 1", "bad register"},
		{"bad mem operand", ".module a exe\nload8 r1, r2", "bad memory operand"},
		{"nested func", ".module a exe\n.func f\n.func g", "nested"},
		{"endfunc alone", ".module a exe\n.endfunc", "without"},
		{"calli bare", ".module a exe\n.func f\ncalli read\nret\n.endfunc", "calli operand"},
		{"div imm", ".module a exe\n.func f\ndiv r1, 5\nret\n.endfunc", "register source"},
		{"bad data kind", ".module a exe\n.data x hex:FF", "unknown data kind"},
		{"unterminated string", `.module a exe` + "\n" + `.data x str:"abc`, "quoted"},
		{"bad escape", `.module a exe` + "\n" + `.data x str:"a\q"`, "unknown escape"},
		{"undefined label", ".module a exe\n.func f\njmp nowhere\nret\n.endfunc", "nowhere"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble(tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("err = %v, want contains %q", err, tt.want)
			}
		})
	}
}

func TestAssembleLineNumbersInErrors(t *testing.T) {
	_, err := Assemble(".module a exe\n\n\nbogus r1\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("err = %v, want line 4", err)
	}
}

func TestAssembleCommentsAndWhitespace(t *testing.T) {
	img, err := Assemble(`
   ; full-line comment
.module c.exe exe
.entry main
.func main
    nop ; trailing comment
	halt
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := isa.DecodeAll(img.Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 || ins[0].Op != isa.OpNop || ins[1].Op != isa.OpHalt {
		t.Errorf("ins = %v", ins)
	}
}
