// Package asm provides a programmatic two-pass assembler for building CRX
// images: label-based control flow, data and BSS symbols, import and export
// tables, data-pointer relocations, and SEH-style guarded regions.
//
// Every synthetic target in this repository — the five server programs, the
// browser models and the 187-DLL system corpus — is written against this
// builder, which guarantees that the produced metadata (scope tables,
// symbols, imports) is structurally valid before any analysis runs on it.
package asm

import (
	"fmt"

	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/mem"
)

// CatchAll is the filter label that marks a guarded region as catching every
// exception class (scope-table filter field = 1).
const CatchAll = "\x00catch-all"

type refKind uint8

const (
	refNone refKind = iota
	refCode         // Disp = code label offset - next pc (branches, LEA of code)
	refData         // Disp = data/bss symbol flat offset - next pc (LEA of data)
	refImm          // Disp already final
)

type entry struct {
	ins  isa.Instruction
	kind refKind
	ref  string
	off  uint32 // assigned in layout pass
}

type scopeRef struct {
	fn, begin, end, filter, target string
}

type relocRef struct {
	dataSym string // reloc lives at this data symbol
	add     uint32 // plus this many bytes
	target  string // code label or data symbol whose flat offset is written
}

// Builder accumulates code and data for one image.
type Builder struct {
	name      string
	kind      bin.Kind
	entries   []entry
	codeSyms  map[string]int // label → entry index
	codeOrder []string

	data     []byte
	dataSyms map[string]uint32 // symbol → offset within data section
	bssSyms  map[string]uint32 // symbol → offset within bss
	bssSize  uint32

	imports   []bin.Import
	importIdx map[string]int

	exports map[string]string // export name → label or data symbol
	funcs   []funcSpan
	scopes  []scopeRef
	relocs  []relocRef
	entry   string

	err error
}

type funcSpan struct {
	name       string
	start, end int // entry index range
}

// NewBuilder creates a builder for an image with the given name and kind.
func NewBuilder(name string, kind bin.Kind) *Builder {
	return &Builder{
		name:      name,
		kind:      kind,
		codeSyms:  make(map[string]int),
		dataSyms:  make(map[string]uint32),
		bssSyms:   make(map[string]uint32),
		importIdx: make(map[string]int),
		exports:   make(map[string]string),
	}
}

// fail records the first error; subsequent calls keep the original.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Label defines a code label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.codeSyms[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.codeSyms[name] = len(b.entries)
	b.codeOrder = append(b.codeOrder, name)
	return b
}

// Func starts a function: defines a label and records a symbol span until the
// matching EndFunc.
func (b *Builder) Func(name string) *Builder {
	b.Label(name)
	b.funcs = append(b.funcs, funcSpan{name: name, start: len(b.entries), end: -1})
	return b
}

// EndFunc closes the most recently opened function span.
func (b *Builder) EndFunc() *Builder {
	for i := len(b.funcs) - 1; i >= 0; i-- {
		if b.funcs[i].end < 0 {
			b.funcs[i].end = len(b.entries)
			return b
		}
	}
	b.fail("EndFunc without Func")
	return b
}

// Entry marks the label used as the executable's entry point.
func (b *Builder) Entry(label string) *Builder {
	b.entry = label
	return b
}

// Export exposes a code label or data/BSS symbol under the given name.
func (b *Builder) Export(name, label string) *Builder {
	b.exports[name] = label
	return b
}

// emit appends a raw instruction.
func (b *Builder) emit(ins isa.Instruction) *Builder {
	b.entries = append(b.entries, entry{ins: ins, kind: refImm})
	return b
}

// emitRef appends an instruction whose Disp is patched from a symbol.
func (b *Builder) emitRef(ins isa.Instruction, kind refKind, ref string) *Builder {
	b.entries = append(b.entries, entry{ins: ins, kind: kind, ref: ref})
	return b
}

// --- plain instructions ---

// Nop emits nop.
func (b *Builder) Nop() *Builder { return b.emit(isa.Instruction{Op: isa.OpNop}) }

// Halt emits halt.
func (b *Builder) Halt() *Builder { return b.emit(isa.Instruction{Op: isa.OpHalt}) }

// Ret emits ret.
func (b *Builder) Ret() *Builder { return b.emit(isa.Instruction{Op: isa.OpRet}) }

// Syscall emits syscall.
func (b *Builder) Syscall() *Builder { return b.emit(isa.Instruction{Op: isa.OpSyscall}) }

// Yield emits yield.
func (b *Builder) Yield() *Builder { return b.emit(isa.Instruction{Op: isa.OpYield}) }

// Push emits push r.
func (b *Builder) Push(r isa.Register) *Builder { return b.emit(isa.Instruction{Op: isa.OpPush, A: r}) }

// Pop emits pop r.
func (b *Builder) Pop(r isa.Register) *Builder { return b.emit(isa.Instruction{Op: isa.OpPop, A: r}) }

// Not emits not r.
func (b *Builder) Not(r isa.Register) *Builder { return b.emit(isa.Instruction{Op: isa.OpNot, A: r}) }

// Neg emits neg r.
func (b *Builder) Neg(r isa.Register) *Builder { return b.emit(isa.Instruction{Op: isa.OpNeg, A: r}) }

// MovRR emits mov dst, src.
func (b *Builder) MovRR(dst, src isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpMovRR, A: dst, B: src})
}

// MovRI emits mov dst, imm64.
func (b *Builder) MovRI(dst isa.Register, imm uint64) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpMovRI, A: dst, Imm: imm})
}

// AddRR emits add dst, src.
func (b *Builder) AddRR(dst, src isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpAddRR, A: dst, B: src})
}

// SubRR emits sub dst, src.
func (b *Builder) SubRR(dst, src isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpSubRR, A: dst, B: src})
}

// AndRR emits and dst, src.
func (b *Builder) AndRR(dst, src isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpAndRR, A: dst, B: src})
}

// OrRR emits or dst, src.
func (b *Builder) OrRR(dst, src isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpOrRR, A: dst, B: src})
}

// XorRR emits xor dst, src.
func (b *Builder) XorRR(dst, src isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpXorRR, A: dst, B: src})
}

// MulRR emits mul dst, src.
func (b *Builder) MulRR(dst, src isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpMulRR, A: dst, B: src})
}

// DivRR emits div dst, src.
func (b *Builder) DivRR(dst, src isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpDivRR, A: dst, B: src})
}

// ShlRR emits shl dst, src.
func (b *Builder) ShlRR(dst, src isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpShlRR, A: dst, B: src})
}

// ShrRR emits shr dst, src.
func (b *Builder) ShrRR(dst, src isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpShrRR, A: dst, B: src})
}

// AddRI emits add dst, imm32.
func (b *Builder) AddRI(dst isa.Register, imm int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpAddRI, A: dst, Disp: imm})
}

// SubRI emits sub dst, imm32.
func (b *Builder) SubRI(dst isa.Register, imm int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpSubRI, A: dst, Disp: imm})
}

// AndRI emits and dst, imm32.
func (b *Builder) AndRI(dst isa.Register, imm int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpAndRI, A: dst, Disp: imm})
}

// OrRI emits or dst, imm32.
func (b *Builder) OrRI(dst isa.Register, imm int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpOrRI, A: dst, Disp: imm})
}

// XorRI emits xor dst, imm32.
func (b *Builder) XorRI(dst isa.Register, imm int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpXorRI, A: dst, Disp: imm})
}

// MulRI emits mul dst, imm32.
func (b *Builder) MulRI(dst isa.Register, imm int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpMulRI, A: dst, Disp: imm})
}

// ShlRI emits shl dst, imm32.
func (b *Builder) ShlRI(dst isa.Register, imm int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpShlRI, A: dst, Disp: imm})
}

// ShrRI emits shr dst, imm32.
func (b *Builder) ShrRI(dst isa.Register, imm int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpShrRI, A: dst, Disp: imm})
}

// CmpRR emits cmp a, b.
func (b *Builder) CmpRR(x, y isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpCmpRR, A: x, B: y})
}

// CmpRI emits cmp a, imm32.
func (b *Builder) CmpRI(x isa.Register, imm int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpCmpRI, A: x, Disp: imm})
}

// TestRR emits test a, b.
func (b *Builder) TestRR(x, y isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpTestRR, A: x, B: y})
}

// TestRI emits test a, imm32.
func (b *Builder) TestRI(x isa.Register, imm int32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpTestRI, A: x, Disp: imm})
}

// Load emits a load of the given width: dst = mem[base+disp].
func (b *Builder) Load(size int, dst, base isa.Register, disp int32) *Builder {
	op, ok := loadOp(size)
	if !ok {
		b.fail("load size %d", size)
		return b
	}
	return b.emit(isa.Instruction{Op: op, A: dst, B: base, Disp: disp})
}

// Store emits a store of the given width: mem[base+disp] = src.
func (b *Builder) Store(size int, base isa.Register, disp int32, src isa.Register) *Builder {
	op, ok := storeOp(size)
	if !ok {
		b.fail("store size %d", size)
		return b
	}
	return b.emit(isa.Instruction{Op: op, A: base, B: src, Disp: disp})
}

// Jmp emits an unconditional branch to a label.
func (b *Builder) Jmp(label string) *Builder { return b.branch(isa.OpJmp, label) }

// Jz emits jump-if-zero to a label.
func (b *Builder) Jz(label string) *Builder { return b.branch(isa.OpJz, label) }

// Jnz emits jump-if-not-zero to a label.
func (b *Builder) Jnz(label string) *Builder { return b.branch(isa.OpJnz, label) }

// Jl emits jump-if-signed-less to a label.
func (b *Builder) Jl(label string) *Builder { return b.branch(isa.OpJl, label) }

// Jge emits jump-if-signed-greater-or-equal to a label.
func (b *Builder) Jge(label string) *Builder { return b.branch(isa.OpJge, label) }

// Jle emits jump-if-signed-less-or-equal to a label.
func (b *Builder) Jle(label string) *Builder { return b.branch(isa.OpJle, label) }

// Jg emits jump-if-signed-greater to a label.
func (b *Builder) Jg(label string) *Builder { return b.branch(isa.OpJg, label) }

// Jb emits jump-if-unsigned-below to a label.
func (b *Builder) Jb(label string) *Builder { return b.branch(isa.OpJb, label) }

// Jae emits jump-if-unsigned-above-or-equal to a label.
func (b *Builder) Jae(label string) *Builder { return b.branch(isa.OpJae, label) }

// Call emits a direct call to a label in this image.
func (b *Builder) Call(label string) *Builder { return b.branch(isa.OpCall, label) }

func (b *Builder) branch(op isa.Op, label string) *Builder {
	return b.emitRef(isa.Instruction{Op: op}, refCode, label)
}

// CallR emits an indirect call through a register.
func (b *Builder) CallR(r isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpCallR, A: r})
}

// JmpR emits an indirect jump through a register.
func (b *Builder) JmpR(r isa.Register) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpJmpR, A: r})
}

// CallImport emits calli through the import slot for module!symbol (module ""
// means a native system API).
func (b *Builder) CallImport(module, symbol string) *Builder {
	key := bin.Import{Module: module, Symbol: symbol}.String()
	idx, ok := b.importIdx[key]
	if !ok {
		idx = len(b.imports)
		b.imports = append(b.imports, bin.Import{Module: module, Symbol: symbol})
		b.importIdx[key] = idx
	}
	return b.emit(isa.Instruction{Op: isa.OpCallI, Disp: int32(idx)})
}

// Raise emits a software exception with the given code.
func (b *Builder) Raise(code uint32) *Builder {
	return b.emit(isa.Instruction{Op: isa.OpRaise, Disp: isa.CodeToDisp(code)})
}

// LeaCode emits lea dst, <code label> (PC-relative).
func (b *Builder) LeaCode(dst isa.Register, label string) *Builder {
	return b.emitRef(isa.Instruction{Op: isa.OpLea, A: dst}, refCode, label)
}

// LeaData emits lea dst, <data or bss symbol> (PC-relative).
func (b *Builder) LeaData(dst isa.Register, symbol string) *Builder {
	return b.emitRef(isa.Instruction{Op: isa.OpLea, A: dst}, refData, symbol)
}

// --- data section ---

// Data defines an initialized data symbol with the given contents, 8-byte
// aligned.
func (b *Builder) Data(symbol string, contents []byte) *Builder {
	if _, dup := b.dataSyms[symbol]; dup {
		b.fail("duplicate data symbol %q", symbol)
		return b
	}
	for len(b.data)%8 != 0 {
		b.data = append(b.data, 0)
	}
	b.dataSyms[symbol] = uint32(len(b.data))
	b.data = append(b.data, contents...)
	return b
}

// DataU64 defines an 8-byte little-endian data symbol.
func (b *Builder) DataU64(symbol string, v uint64) *Builder {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	return b.Data(symbol, buf[:])
}

// DataPtr defines an 8-byte data symbol holding the absolute address of a
// code label or data symbol, emitted as a load-time relocation.
func (b *Builder) DataPtr(symbol, target string) *Builder {
	b.Data(symbol, make([]byte, 8))
	b.relocs = append(b.relocs, relocRef{dataSym: symbol, target: target})
	return b
}

// BSS reserves size zero-initialized bytes under the given symbol, 8-byte
// aligned.
func (b *Builder) BSS(symbol string, size uint32) *Builder {
	if _, dup := b.bssSyms[symbol]; dup {
		b.fail("duplicate bss symbol %q", symbol)
		return b
	}
	b.bssSize = (b.bssSize + 7) &^ 7
	b.bssSyms[symbol] = b.bssSize
	b.bssSize += size
	return b
}

// Guard records a scope-table entry: while executing [begin, end) inside
// function fn, exceptions are filtered by the filter label (or CatchAll) and
// handled at target.
func (b *Builder) Guard(fn, begin, end, filter, target string) *Builder {
	b.scopes = append(b.scopes, scopeRef{fn: fn, begin: begin, end: end, filter: filter, target: target})
	return b
}

// Build lays out the image, resolves all references and returns the final
// validated CRX image.
func (b *Builder) Build() (*bin.Image, error) {
	if b.err != nil {
		return nil, fmt.Errorf("asm %s: %w", b.name, b.err)
	}

	// Pass 1: assign offsets.
	off := uint32(0)
	for i := range b.entries {
		b.entries[i].off = off
		off += uint32(b.entries[i].ins.Size())
	}
	textLen := off

	img := &bin.Image{Name: b.name, Kind: b.kind}

	codeOff := func(label string) (uint32, error) {
		idx, ok := b.codeSyms[label]
		if !ok {
			return 0, fmt.Errorf("asm %s: undefined label %q", b.name, label)
		}
		if idx == len(b.entries) {
			return textLen, nil
		}
		return b.entries[idx].off, nil
	}

	// Flat offsets for data/bss need the final text length.
	dataStart := uint32(mem.RoundUp(uint64(textLen)))
	bssStart := dataStart + uint32(mem.RoundUp(uint64(len(b.data))))
	flatOff := func(sym string) (uint32, error) {
		if o, ok := b.dataSyms[sym]; ok {
			return dataStart + o, nil
		}
		if o, ok := b.bssSyms[sym]; ok {
			return bssStart + o, nil
		}
		if _, ok := b.codeSyms[sym]; ok {
			return codeOff(sym)
		}
		return 0, fmt.Errorf("asm %s: undefined symbol %q", b.name, sym)
	}

	// Pass 2: patch references and encode.
	for i := range b.entries {
		e := &b.entries[i]
		next := int64(e.off) + int64(e.ins.Size())
		switch e.kind {
		case refCode:
			target, err := codeOff(e.ref)
			if err != nil {
				return nil, err
			}
			e.ins.Disp = int32(int64(target) - next)
		case refData:
			target, err := flatOff(e.ref)
			if err != nil {
				return nil, err
			}
			e.ins.Disp = int32(int64(target) - next)
		}
		var err error
		img.Text, err = isa.Encode(img.Text, e.ins)
		if err != nil {
			return nil, fmt.Errorf("asm %s: %w", b.name, err)
		}
	}

	img.Data = append([]byte(nil), b.data...)
	img.BSSSize = b.bssSize
	img.Imports = append([]bin.Import(nil), b.imports...)

	if b.entry != "" {
		e, err := codeOff(b.entry)
		if err != nil {
			return nil, err
		}
		img.Entry = e
	}

	if len(b.exports) > 0 {
		img.Exports = make(map[string]uint32, len(b.exports))
		for name, sym := range b.exports {
			o, err := flatOff(sym)
			if err != nil {
				return nil, err
			}
			img.Exports[name] = o
		}
	}

	for _, f := range b.funcs {
		if f.end < 0 {
			return nil, fmt.Errorf("asm %s: function %q never closed", b.name, f.name)
		}
		start, err := codeOff(f.name)
		if err != nil {
			return nil, err
		}
		end := textLen
		if f.end < len(b.entries) {
			end = b.entries[f.end].off
		}
		img.Symbols = append(img.Symbols, bin.Symbol{Name: f.name, Offset: start, Size: end - start})
	}

	for _, r := range b.relocs {
		at, err := flatOff(r.dataSym)
		if err != nil {
			return nil, err
		}
		target, err := flatOff(r.target)
		if err != nil {
			return nil, err
		}
		img.Relocs = append(img.Relocs, bin.Reloc{Offset: at + r.add, Target: target})
	}

	for _, s := range b.scopes {
		fn, err := codeOff(s.fn)
		if err != nil {
			return nil, err
		}
		begin, err := codeOff(s.begin)
		if err != nil {
			return nil, err
		}
		end, err := codeOff(s.end)
		if err != nil {
			return nil, err
		}
		target, err := codeOff(s.target)
		if err != nil {
			return nil, err
		}
		filter := bin.FilterCatchAll
		if s.filter != CatchAll {
			filter, err = codeOff(s.filter)
			if err != nil {
				return nil, err
			}
		}
		img.Scopes = append(img.Scopes, bin.ScopeEntry{
			Func: fn, Begin: begin, End: end, Filter: filter, Target: target,
		})
	}

	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("asm %s: %w", b.name, err)
	}
	return img, nil
}

func loadOp(size int) (isa.Op, bool) {
	switch size {
	case 1:
		return isa.OpLoad1, true
	case 2:
		return isa.OpLoad2, true
	case 4:
		return isa.OpLoad4, true
	case 8:
		return isa.OpLoad8, true
	}
	return 0, false
}

func storeOp(size int) (isa.Op, bool) {
	switch size {
	case 1:
		return isa.OpStore1, true
	case 2:
		return isa.OpStore2, true
	case 4:
		return isa.OpStore4, true
	case 8:
		return isa.OpStore8, true
	}
	return 0, false
}
