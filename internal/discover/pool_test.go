package discover

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"crashresist/internal/targets"
)

func TestRunIndexedCoversAllJobs(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 37
			out := make([]int, n)
			if err := runIndexed(context.Background(), workers, n, nil, func(i int) error {
				out[i] = i * i
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("slot %d = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestRunIndexedReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("job 3 failed")
	errB := errors.New("job 9 failed")
	err := runIndexed(context.Background(), 4, 12, nil, func(i int) error {
		switch i {
		case 3:
			return errA
		case 9:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want lowest-index error %v", err, errA)
	}
}

func TestRunIndexedZeroJobs(t *testing.T) {
	if err := runIndexed(context.Background(), 4, 0, nil, func(int) error {
		t.Fatal("fn called for empty job set")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunShardedStateIsolation(t *testing.T) {
	// Each worker state is a private counter; the per-state sums must
	// add up to the job count without any synchronization in fn.
	const n = 200
	var created atomic.Int32
	counters := make([]*int64, 0, 8)
	err := runSharded(context.Background(), 4, n, nil,
		func() (*int64, error) {
			created.Add(1)
			c := new(int64)
			counters = append(counters, c)
			return c, nil
		},
		func(c *int64, i int) error {
			*c++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := created.Load(); got != 4 {
		t.Fatalf("created %d states, want 4", got)
	}
	var total int64
	for _, c := range counters {
		total += *c
	}
	if total != n {
		t.Fatalf("jobs executed = %d, want %d", total, n)
	}
}

func TestRunShardedStateError(t *testing.T) {
	boom := errors.New("no state for you")
	err := runSharded(context.Background(), 3, 10, nil,
		func() (int, error) { return 0, boom },
		func(int, int) error {
			t.Fatal("fn called despite state construction failure")
			return nil
		})
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

func TestRunShardedCapsWorkersAtJobs(t *testing.T) {
	var created atomic.Int32
	err := runSharded(context.Background(), 16, 2, nil,
		func() (struct{}, error) {
			created.Add(1)
			return struct{}{}, nil
		},
		func(struct{}, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := created.Load(); got != 2 {
		t.Fatalf("created %d states for 2 jobs, want 2", got)
	}
}

// TestSEHAnalyzeWorkerInvariance is the core determinism property of the
// parallel SEH pipeline: every worker count yields a deeply equal report.
func TestSEHAnalyzeWorkerInvariance(t *testing.T) {
	br, err := targets.IE(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	base := &SEHAnalyzer{Seed: 42, Workers: 1}
	want, err := base.Analyze(br)
	if err != nil {
		t.Fatal(err)
	}
	// RunStats carries wall-clock times and shard splits, which are
	// legitimately worker-dependent; everything else must match exactly.
	want.Stats = nil
	for _, workers := range []int{2, 4, 8} {
		a := &SEHAnalyzer{Seed: 42, Workers: workers}
		got, err := a.Analyze(br)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got.Stats = nil
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d report differs from sequential:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestAPIAnalyzeWorkerInvariance: the funnel is byte-identical for any
// worker count.
func TestAPIAnalyzeWorkerInvariance(t *testing.T) {
	br, err := targets.IE(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	base := &APIAnalyzer{Seed: 42, Workers: 1}
	want, err := base.Analyze(br)
	if err != nil {
		t.Fatal(err)
	}
	want.Stats = nil
	for _, workers := range []int{2, 8} {
		a := &APIAnalyzer{Seed: 42, Workers: workers}
		got, err := a.Analyze(br)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got.Stats = nil
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d funnel differs from sequential:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestSyscallAnalyzeWorkerInvariance: per-candidate validation fan-out and
// AnalyzeAll server fan-out both reproduce the sequential reports.
func TestSyscallAnalyzeWorkerInvariance(t *testing.T) {
	servers, err := targets.AllServers()
	if err != nil {
		t.Fatal(err)
	}
	// Two servers keep the 3× replay cost reasonable; the golden tests
	// cover all five at paper scale.
	servers = servers[:2]
	seq := &SyscallAnalyzer{Seed: 42, Workers: 1}
	var want []*SyscallReport
	for _, srv := range servers {
		rep, err := seq.Analyze(srv)
		if err != nil {
			t.Fatal(err)
		}
		rep.Stats = nil
		want = append(want, rep)
	}
	for _, workers := range []int{2, 8} {
		a := &SyscallAnalyzer{Seed: 42, Workers: workers}
		got, err := a.AnalyzeAll(servers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(got), len(want))
		}
		for i := range got {
			got[i].Stats = nil
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d report[%d] (%s) differs from sequential", workers, i, want[i].Server)
			}
		}
	}
}

// TestSEHCacheEffective pins the memoizing symex cache behaviour at paper
// scale: the 5,751 filters collapse onto a handful of unique bodies, and
// the lone import-calling filter is refused (impure).
func TestSEHCacheEffective(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale corpus build in -short mode")
	}
	br, err := targets.IE(targets.PaperBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	a := &SEHAnalyzer{Seed: 42}
	rep, err := a.Analyze(br)
	if err != nil {
		t.Fatal(err)
	}
	st := a.CacheStats
	if total := st.Hits + st.Misses + st.Uncacheable; total != rep.TotalFilters {
		t.Errorf("cache saw %d analyses, want TotalFilters=%d", total, rep.TotalFilters)
	}
	if st.Hits < 10*st.Misses {
		t.Errorf("cache hits (%d) not dominating misses (%d)", st.Hits, st.Misses)
	}
	if st.Uncacheable == 0 {
		t.Error("expected the import-calling cfg_filter to be uncacheable")
	}
}
