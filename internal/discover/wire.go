package discover

// WireSchemaV1 versions every JSON document the toolkit emits: the three
// pipeline reports, the crtables/crprobe artifact bundles, and the
// discovery service's job API payloads. Consumers check the schema field
// before relying on field names; producers stamp it at report-construction
// time so it survives any marshal path (CLI, cache replay, job API).
//
// The v1 contract: all field names are snake_case, enums use their stable
// string tokens, and observability lives only under "stats" — stripping
// that one key yields the deterministic, worker-count-invariant identity
// of a report.
const WireSchemaV1 = "v1"
