package discover

import (
	"fmt"

	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/sym"
	"crashresist/internal/vm"
)

// VEHAPIName is the registration API the scanner looks for.
const VEHAPIName = "AddVectoredExceptionHandler"

// VEHFinding is one statically discovered vectored-handler registration —
// the extension the paper sketches in §VII-A ("locating all calls to
// AddVectoredExceptionHandler and extracting the handler address").
type VEHFinding struct {
	Module string `json:"module"`
	// CallPC is the registration call site.
	CallPC uint64 `json:"call_pc"`
	// HandlerVA is the recovered handler address (0 if unresolved).
	HandlerVA uint64 `json:"handler_va,omitempty"`
	// HandlerSym names the handler when a symbol covers it.
	HandlerSym string `json:"handler_sym,omitempty"`
	// Resolved reports whether the static value tracking recovered the
	// handler argument.
	Resolved bool `json:"resolved"`
	// Verdict classifies the handler against access violations
	// (VEH accepts by returning CONTINUE_EXECUTION).
	Verdict sym.Verdict `json:"verdict,omitempty"`
}

// String renders the finding.
func (f VEHFinding) String() string {
	if !f.Resolved {
		return fmt.Sprintf("%s: VEH registration at %#x (handler unresolved)", f.Module, f.CallPC)
	}
	return fmt.Sprintf("%s: VEH registration at %#x → %s (%#x), %v",
		f.Module, f.CallPC, f.HandlerSym, f.HandlerVA, f.Verdict)
}

// VEHScan statically locates vectored-handler registrations in every loaded
// module: it finds each module's import slot for the registration API, then
// linearly tracks constant/PC-relative/loaded register values through the
// text to recover the handler argument (R1) at each call site. Recovered
// handlers are classified with the symbolic executor.
//
// The value tracking is a linear-sweep approximation (no joins at control
// flow merges); registrations whose handler argument it cannot prove are
// reported unresolved rather than guessed.
func VEHScan(p *vm.Process) []VEHFinding {
	var out []VEHFinding
	exec := sym.NewExecutor(p)
	for _, mod := range p.Modules() {
		slot := vehImportSlot(mod)
		if slot < 0 {
			continue
		}
		for _, f := range scanModuleVEH(p, mod, slot) {
			if f.Resolved {
				f.Verdict = exec.AnalyzeVEH(f.HandlerVA).Verdict
				if m, ok := p.FindModule(f.HandlerVA); ok {
					if s, ok := m.Image.SymbolAt(m.OffsetOf(f.HandlerVA)); ok {
						f.HandlerSym = m.Image.Name + "!" + s.Name
					}
				}
			}
			out = append(out, f)
		}
	}
	return out
}

// vehImportSlot returns the module's import slot for the registration API,
// or -1.
func vehImportSlot(mod *bin.Module) int {
	for i, imp := range mod.Image.Imports {
		if imp.Module == "" && imp.Symbol == VEHAPIName {
			return i
		}
	}
	return -1
}

// absVal is an abstract register value for the linear sweep.
type absVal struct {
	known bool
	v     uint64
}

// scanModuleVEH sweeps the module text once.
func scanModuleVEH(p *vm.Process, mod *bin.Module, slot int) []VEHFinding {
	var (
		out  []VEHFinding
		regs [isa.NumRegisters]absVal
	)
	text := mod.Image.Text
	for off := 0; off < len(text); {
		ins, size, err := isa.Decode(text[off:])
		if err != nil {
			// Sections can hold padding after code; stop the sweep.
			break
		}
		pc := mod.VA(uint32(off))
		next := pc + uint64(size)

		switch ins.Op {
		case isa.OpMovRI:
			regs[ins.A] = absVal{known: true, v: ins.Imm}
		case isa.OpLea:
			regs[ins.A] = absVal{known: true, v: next + uint64(int64(ins.Disp))}
		case isa.OpMovRR:
			regs[ins.A] = regs[ins.B]
		case isa.OpAddRI:
			if regs[ins.A].known {
				regs[ins.A].v += uint64(int64(ins.Disp))
			}
		case isa.OpSubRI:
			if regs[ins.A].known {
				regs[ins.A].v -= uint64(int64(ins.Disp))
			}
		case isa.OpLoad8:
			if regs[ins.B].known {
				addr := regs[ins.B].v + uint64(int64(ins.Disp))
				if v, err := p.AS.ReadUint(addr, 8); err == nil {
					regs[ins.A] = absVal{known: true, v: v}
					break
				}
			}
			regs[ins.A] = absVal{}
		case isa.OpCallI:
			if int(ins.Disp) == slot {
				f := VEHFinding{Module: mod.Image.Name, CallPC: pc}
				if regs[isa.R1].known {
					f.Resolved = true
					f.HandlerVA = regs[isa.R1].v
				}
				out = append(out, f)
			}
			// Calls clobber the return register.
			regs[isa.R0] = absVal{}
		case isa.OpCall, isa.OpCallR:
			regs[isa.R0] = absVal{}
		default:
			// Any other write invalidates the destination register.
			switch isa.LayoutOf(ins.Op) {
			case isa.LayoutR, isa.LayoutRR, isa.LayoutRI32, isa.LayoutRI64:
				if ins.Op != isa.OpCmpRR && ins.Op != isa.OpCmpRI &&
					ins.Op != isa.OpTestRR && ins.Op != isa.OpTestRI &&
					ins.Op != isa.OpPush {
					regs[ins.A] = absVal{}
				}
			case isa.LayoutRRD:
				if ins.LoadSize() != 0 {
					regs[ins.A] = absVal{}
				}
			}
		}
		off += size
	}
	return out
}
