package discover

import (
	"testing"

	"crashresist/internal/targets"
)

func TestSEHPipelineIE(t *testing.T) {
	params := targets.SmallBrowserParams()
	br, err := targets.IE(params)
	if err != nil {
		t.Fatal(err)
	}
	a := &SEHAnalyzer{Seed: 6161}
	rep, err := a.Analyze(br)
	if err != nil {
		t.Fatal(err)
	}

	// Totals must match the corpus plan (the analyses rediscover what
	// the generator encoded in real scope tables and filter code).
	wantH, wantF, wantAF, wantAH, wantP := br.Plan.Totals()
	if rep.TotalHandlers != wantH {
		t.Errorf("TotalHandlers = %d, want %d", rep.TotalHandlers, wantH)
	}
	if rep.TotalFilters != wantF {
		t.Errorf("TotalFilters = %d, want %d", rep.TotalFilters, wantF)
	}
	if rep.TotalAVFilters != wantAF {
		t.Errorf("TotalAVFilters = %d, want %d", rep.TotalAVFilters, wantAF)
	}
	if rep.TotalAVHandlers != wantAH {
		t.Errorf("TotalAVHandlers = %d, want %d", rep.TotalAVHandlers, wantAH)
	}
	if rep.TotalOnPath != wantP {
		t.Errorf("TotalOnPath = %d, want %d", rep.TotalOnPath, wantP)
	}
	if rep.TriggerEvents != uint64(params.TriggerTotal) {
		t.Errorf("TriggerEvents = %d, want %d", rep.TriggerEvents, params.TriggerTotal)
	}

	// Per-module rows must match the specs.
	for _, spec := range br.Plan.Specs {
		row, ok := rep.Row(spec.Name)
		if !ok {
			if spec.Handlers > 0 {
				t.Errorf("module %s missing from report", spec.Name)
			}
			continue
		}
		if row.Handlers != spec.Handlers || row.Filters != spec.Filters {
			t.Errorf("%s: handlers/filters = %d/%d, want %d/%d",
				spec.Name, row.Handlers, row.Filters, spec.Handlers, spec.Filters)
		}
		if row.AVHandlers != spec.AVHandlers {
			t.Errorf("%s: AVHandlers = %d, want %d", spec.Name, row.AVHandlers, spec.AVHandlers)
		}
		if row.OnPath != spec.OnPath {
			t.Errorf("%s: OnPath = %d, want %d", spec.Name, row.OnPath, spec.OnPath)
		}
		if row.AVFilters != spec.AVFilters {
			t.Errorf("%s: AVFilters = %d, want %d", spec.Name, row.AVFilters, spec.AVFilters)
		}
	}

	// Candidates must all be accepting and on path.
	if len(rep.Candidates) != wantP {
		t.Errorf("candidates = %d, want %d", len(rep.Candidates), wantP)
	}
	for _, c := range rep.Candidates {
		if c.Hits == 0 {
			t.Errorf("candidate %s/%d has no hits", c.Module, c.Scope)
		}
	}

	// Prior-work verification (§VII-A), IE side.
	pw := PriorWork(rep)
	if !pw.IECatchAllFound {
		t.Error("MUTX::Enter catch-all not rediscovered")
	}
	if !pw.IEPostUpdateNeedsManual {
		t.Error("post-update config filter not flagged for manual vetting")
	}
	if pw.FirefoxVEHMissed {
		t.Error("IE model should have no VEH registered")
	}
}

func TestSEHPipelineFirefoxVEHMiss(t *testing.T) {
	br, err := targets.Firefox(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	a := &SEHAnalyzer{Seed: 6262}
	rep, err := a.Analyze(br)
	if err != nil {
		t.Fatal(err)
	}
	pw := PriorWork(rep)
	if !pw.FirefoxVEHMissed {
		t.Error("runtime-registered VEH not reported as missed")
	}
	// The ntdll primitive (RtlSafeRead's accepting filter) must appear
	// in the module inventory even though it is not on the IE-style
	// browse path.
	row, ok := rep.Row("ntdll.dll")
	if !ok || row.AVFilters == 0 {
		t.Errorf("ntdll row = %+v %v, want accepting filters", row, ok)
	}
}

func TestVEHScanExtensionFindsFirefoxHandler(t *testing.T) {
	// The §VII-A extension: static scanning for
	// AddVectoredExceptionHandler call sites recovers the Firefox guard
	// handler the scope-table pipeline misses.
	br, err := targets.Firefox(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	a := &SEHAnalyzer{Seed: 6363}
	rep, err := a.Analyze(br)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.VEHFindings) == 0 {
		t.Fatal("no VEH registrations found statically")
	}
	found := false
	for _, f := range rep.VEHFindings {
		t.Logf("finding: %s", f)
		if f.Resolved && f.Module == "firefox.exe" {
			found = true
			if f.Verdict.String() != "accepts-av" {
				t.Errorf("verdict = %v, want accepts-av", f.Verdict)
			}
			if f.HandlerVA == 0 {
				t.Error("handler VA not recovered")
			}
		}
	}
	if !found {
		t.Error("firefox.exe registration not resolved")
	}
	pw := PriorWork(rep)
	if !pw.FirefoxVEHFoundByExtension {
		t.Error("extension result not surfaced in PriorWork")
	}
}

func TestVEHScanIEHasNone(t *testing.T) {
	br, err := targets.IE(targets.SmallBrowserParams())
	if err != nil {
		t.Fatal(err)
	}
	a := &SEHAnalyzer{Seed: 6464}
	rep, err := a.Analyze(br)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.VEHFindings) != 0 {
		t.Errorf("IE model has VEH findings: %v", rep.VEHFindings)
	}
	if PriorWork(rep).FirefoxVEHFoundByExtension {
		t.Error("extension flag set without findings")
	}
}
