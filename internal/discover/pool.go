package discover

// Bounded worker pool shared by the three discovery pipelines.
//
// All fan-out in this package goes through runIndexed / runSharded so that
// parallel runs stay byte-identical to sequential ones: jobs are numbered,
// every worker writes its result into the slot owned by its job index, and
// the caller merges the index-addressed slice in order afterwards. Nothing
// is ever appended under a lock, so scheduling order cannot leak into
// report contents.
//
// Both runners take a context and an optional metrics stage span. Workers
// stop claiming jobs once the context is cancelled; the lowest-index job
// error still wins, and ctx.Err() is only reported when no job failed.
// The span receives a JobDone per executed job and the final per-worker
// task distribution; a nil span records nothing.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"crashresist/internal/metrics"
)

// poolWorkers resolves a worker-count setting: values <= 0 select
// GOMAXPROCS, everything else is used as-is.
func poolWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// runIndexed runs fn(0) .. fn(n-1) on up to workers goroutines. Workers
// pull job indices from a shared atomic counter; each job's error lands in
// its own slot and the lowest-index error is returned, so the reported
// failure is independent of scheduling. With one worker the jobs run on
// the calling goroutine.
func runIndexed(ctx context.Context, workers, n int, span *metrics.Stage, fn func(i int) error) error {
	workers = poolWorkers(workers)
	if workers > n {
		workers = n
	}
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 1 {
		sh := span.Shard(0)
		defer sh.End()
		tasks := 0
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				span.ShardTasks([]int{tasks})
				return err
			}
			js := sh.Job(i)
			err := fn(i)
			js.End()
			if err != nil {
				span.ShardTasks([]int{tasks})
				return err
			}
			tasks++
			span.JobDone()
		}
		span.ShardTasks([]int{tasks})
		return nil
	}
	errs := make([]error, n)
	tasks := make([]int, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := span.Shard(w)
			defer sh.End()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				js := sh.Job(i)
				errs[i] = fn(i)
				js.End()
				tasks[w]++
				span.JobDone()
			}
		}(w)
	}
	wg.Wait()
	span.ShardTasks(tasks)
	if err := firstError(errs); err != nil {
		return err
	}
	return ctx.Err()
}

// runSharded is runIndexed for jobs that need per-worker state (a private
// VM environment, a private symbolic executor). newState runs once per
// worker, up-front on the calling goroutine so construction order is
// deterministic; fn receives the state of whichever worker claimed the
// job. States never travel between goroutines after handoff.
func runSharded[S any](ctx context.Context, workers, n int, span *metrics.Stage, newState func() (S, error), fn func(s S, i int) error) error {
	workers = poolWorkers(workers)
	if workers > n {
		workers = n
	}
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 1 {
		s, err := newState()
		if err != nil {
			return err
		}
		sh := span.Shard(0)
		defer sh.End()
		tasks := 0
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				span.ShardTasks([]int{tasks})
				return err
			}
			js := sh.Job(i)
			err := fn(s, i)
			js.End()
			if err != nil {
				span.ShardTasks([]int{tasks})
				return err
			}
			tasks++
			span.JobDone()
		}
		span.ShardTasks([]int{tasks})
		return nil
	}
	states := make([]S, workers)
	for w := range states {
		s, err := newState()
		if err != nil {
			return err
		}
		states[w] = s
	}
	errs := make([]error, n)
	tasks := make([]int, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, s S) {
			defer wg.Done()
			sh := span.Shard(w)
			defer sh.End()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				js := sh.Job(i)
				errs[i] = fn(s, i)
				js.End()
				tasks[w]++
				span.JobDone()
			}
		}(w, states[w])
	}
	wg.Wait()
	span.ShardTasks(tasks)
	if err := firstError(errs); err != nil {
		return err
	}
	return ctx.Err()
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
