package discover

// Bounded worker pool shared by the three discovery pipelines.
//
// All fan-out in this package goes through runIndexed / runSharded so that
// parallel runs stay byte-identical to sequential ones: jobs are numbered,
// every worker writes its result into the slot owned by its job index, and
// the caller merges the index-addressed slice in order afterwards. Nothing
// is ever appended under a lock, so scheduling order cannot leak into
// report contents.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// poolWorkers resolves a worker-count setting: values <= 0 select
// GOMAXPROCS, everything else is used as-is.
func poolWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// runIndexed runs fn(0) .. fn(n-1) on up to workers goroutines. Workers
// pull job indices from a shared atomic counter; each job's error lands in
// its own slot and the lowest-index error is returned, so the reported
// failure is independent of scheduling. With one worker the jobs run on
// the calling goroutine.
func runIndexed(workers, n int, fn func(i int) error) error {
	workers = poolWorkers(workers)
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return firstError(errs)
}

// runSharded is runIndexed for jobs that need per-worker state (a private
// VM environment, a private symbolic executor). newState runs once per
// worker, up-front on the calling goroutine so construction order is
// deterministic; fn receives the state of whichever worker claimed the
// job. States never travel between goroutines after handoff.
func runSharded[S any](workers, n int, newState func() (S, error), fn func(s S, i int) error) error {
	workers = poolWorkers(workers)
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	if workers <= 1 {
		s, err := newState()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := fn(s, i); err != nil {
				return err
			}
		}
		return nil
	}
	states := make([]S, workers)
	for w := range states {
		s, err := newState()
		if err != nil {
			return err
		}
		states[w] = s
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(s S) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(s, i)
			}
		}(states[w])
	}
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
