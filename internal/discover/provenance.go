package discover

// Per-primitive provenance: the evidence chain that carried each discovered
// primitive through its pipeline's funnel. The paper's final step is manual
// vetting of the surviving candidates; a chain gives the vetter the same
// decision trail the pipeline saw — which taint flow nominated a syscall,
// which probe outcomes classified an API, which symex verdict accepted an
// SEH filter — without re-running the analysis.
//
// Chains live next to Stats in the reports and surface only through
// -format=json; text-table formatters never read them, so golden tables are
// unaffected. Every field is derived from the deterministic substrate, so
// chains are byte-identical at any worker count.

import "fmt"

// EvidenceStep is one link of a provenance chain: what a pipeline stage
// concluded about the primitive.
type EvidenceStep struct {
	// Stage names the pipeline stage that produced the evidence (taint,
	// validate, fuzz, classify, symex, crossref, ...).
	Stage string `json:"stage"`
	// Verdict is the stage's machine-readable conclusion token, empty for
	// purely informational steps.
	Verdict string `json:"verdict,omitempty"`
	// Detail is a human-readable account of the evidence.
	Detail string `json:"detail,omitempty"`
}

// PrimitiveProvenance is the evidence chain of one discovered primitive —
// one report-table row.
type PrimitiveProvenance struct {
	// Primitive keys the chain to its table row (syscall name, API name, or
	// "module/scope" for SEH rows).
	Primitive string `json:"primitive"`
	// Chain lists the evidence in pipeline order.
	Chain []EvidenceStep `json:"chain"`
}

// step builds one EvidenceStep with a formatted detail.
func step(stage, verdict, format string, args ...any) EvidenceStep {
	return EvidenceStep{Stage: stage, Verdict: verdict, Detail: fmt.Sprintf(format, args...)}
}
