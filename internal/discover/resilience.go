package discover

// Resilience machinery shared by the three pipelines: deterministic fault
// injection at the pool.job site, bounded per-job retry with virtual
// backoff, and graceful degradation.
//
// The design preserves the package's determinism contract. Injection
// decisions are stateless hashes of (plan seed, site, job key, attempt), so
// every worker count draws the same faults; retried attempts advance the
// attempt number, so transient faults clear deterministically. A job that
// exhausts its retries does not abort the run: it leaves its
// index-addressed result slot at the zero value and files a typed Degraded
// record, and the merge stages skip the empty slots. Records are ordered by
// (stage execution order, job index), never by scheduling.
//
// A nil *resilience (no plan, no retries) short-circuits every wrapper to a
// plain fn(0) call with the error propagated unchanged, so the default
// configuration is byte-identical to the pre-resilience pipelines.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"crashresist/internal/faultinject"
	"crashresist/internal/metrics"
	"crashresist/internal/prof"
)

// ErrDegraded marks a pipeline result that is partial because one or more
// jobs exhausted their retries. Use errors.Is to detect it through wrapping.
var ErrDegraded = errors.New("pipeline degraded")

// Degraded records one job that failed past its retry budget and was
// dropped from the report instead of aborting the run. The records a run
// produces are a deterministic function of the fault plan's seed.
type Degraded struct {
	// Stage names the pipeline stage the job belonged to.
	Stage string `json:"stage"`
	// Key identifies the job within the stage (syscall/arg, API name,
	// module name, ...).
	Key string `json:"key"`
	// Job is the job's index in the stage's work list.
	Job int `json:"job"`
	// Attempts counts how many times the job ran before degrading.
	Attempts int `json:"attempts"`
	// Err is the final attempt's error text.
	Err string `json:"error"`
}

// resilience carries one run's fault plan, retry budget and degradation
// log. Methods on a nil receiver behave as "inactive".
type resilience struct {
	target  string
	plan    *faultinject.Plan
	retries int
	col     *metrics.Collector
	rp      runProf

	mu    sync.Mutex
	order map[string]int // stage name -> first-seen ordinal
	recs  []degradedRec
}

type degradedRec struct {
	ord int
	d   Degraded
}

// newResilience returns nil when neither a plan nor a retry budget is
// configured, keeping the default path allocation- and branch-free.
func newResilience(target string, plan *faultinject.Plan, retries int, col *metrics.Collector, rp runProf) *resilience {
	if plan == nil && retries <= 0 {
		return nil
	}
	return &resilience{target: target, plan: plan, retries: retries, col: col, rp: rp}
}

// run executes one job with injection, bounded retry and degradation. The
// job key feeds the pool.job injection site as Key(target, stage, jobKey).
// Context errors are returned immediately — cancellation is never retried
// or degraded. Transient failures retry up to the budget, accumulating
// 1<<attempt virtual backoff ticks per retry (no wall-clock sleep, so runs
// stay fast and deterministic). A job that exhausts the budget, or fails
// permanently, files a Degraded record and returns nil so the stage
// continues; its result slot keeps the zero value.
func (r *resilience) run(ctx context.Context, stage, jobKey string, job int, fn func(attempt int) error) error {
	if r == nil {
		return fn(0)
	}
	key := faultinject.Key(r.target, stage, jobKey)
	var err error
	attempts := 0
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		attempts = attempt + 1
		if ierr := r.plan.ErrAttempt(faultinject.SitePoolJob, key, attempt); ierr != nil {
			r.col.Add(metrics.CtrFaultsInjected, 1)
			err = fmt.Errorf("%s job %q: %w", stage, jobKey, ierr)
		} else {
			err = fn(attempt)
		}
		if err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if attempt < r.retries && faultinject.IsTransient(err) {
			r.col.Add(metrics.CtrRetries, 1)
			r.col.Add(metrics.CtrBackoffTicks, uint64(1)<<attempt)
			// Retry decisions are a stateless hash of (seed, site, key,
			// attempt), so these charges are scheduling-independent too.
			r.rp.add(stage, jobKey, prof.KindRetries, 1)
			r.rp.add(stage, jobKey, prof.KindBackoffTicks, uint64(1)<<attempt)
			continue
		}
		break
	}
	r.degrade(stage, jobKey, job, attempts, err)
	return nil
}

// degrade files one degradation record and bumps the counter.
func (r *resilience) degrade(stage, jobKey string, job, attempts int, err error) {
	r.col.Add(metrics.CtrDegraded, 1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.order == nil {
		r.order = make(map[string]int)
	}
	ord, ok := r.order[stage]
	if !ok {
		ord = len(r.order)
		r.order[stage] = ord
	}
	r.recs = append(r.recs, degradedRec{ord: ord, d: Degraded{
		Stage:    stage,
		Key:      jobKey,
		Job:      job,
		Attempts: attempts,
		Err:      err.Error(),
	}})
}

// take returns the accumulated records ordered by stage execution order,
// then job index. Nil when nothing degraded (so omitempty elides the
// report field).
func (r *resilience) take() []Degraded {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recs) == 0 {
		return nil
	}
	sort.Slice(r.recs, func(i, j int) bool {
		if r.recs[i].ord != r.recs[j].ord {
			return r.recs[i].ord < r.recs[j].ord
		}
		return r.recs[i].d.Job < r.recs[j].d.Job
	})
	out := make([]Degraded, len(r.recs))
	for i, rec := range r.recs {
		out[i] = rec.d
	}
	return out
}

// stageCtx derives the context a pool stage runs under: the analyzer's
// per-stage timeout when one is set, the parent context otherwise. The
// cancel func must always be called.
func stageCtx(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}
