package discover

import (
	"crashresist/internal/defense"
	"crashresist/internal/metrics"
)

// runDetect adapts one run's pipeline/target to an optional shared
// defense.Detect observer, mirroring runProf: a zero-value runDetect (nil
// observer) makes every call a no-op, so detection points need no nil
// checks and cost nothing when detection is off. All feed methods fold
// commutatively into the observer, preserving worker-count and cache
// invariance; finish renders the section deterministically after every
// job has merged.
type runDetect struct {
	d                *defense.Detect
	pipeline, target string
}

// newRunDetect binds the observer to this run's identity.
func newRunDetect(d *defense.Detect, pipeline, target string) runDetect {
	return runDetect{d: d, pipeline: pipeline, target: target}
}

// on reports whether detection is enabled for the run.
func (r runDetect) on() bool { return r.d != nil }

// primitive folds one primitive's measured probe totals into its
// detectability row.
func (r runDetect) primitive(name string, probes, faults, ticks uint64, profile map[uint64]uint64) {
	if r.d == nil {
		return
	}
	r.d.AddPrimitive(r.pipeline, r.target, name, probes, faults, ticks, profile)
}

// baseline folds the benign phase's fault series into the section baseline.
func (r runDetect) baseline(phase string, faults, ticks uint64, series map[uint64]uint64) {
	if r.d == nil {
		return
	}
	r.d.AddBaseline(r.pipeline, r.target, phase, faults, ticks, series)
}

// series folds a fault series into the run-level stream the online
// detector watches.
func (r runDetect) series(buckets map[uint64]uint64) {
	if r.d == nil {
		return
	}
	r.d.AddSeries(r.pipeline, r.target, buckets)
}

// finish renders the run's section, streams its detections as typed events
// (live stream first, then baseline trips), and attaches the section to
// the collector so RunStats carries it. Call after all stages merged and
// before col.Finish.
func (r runDetect) finish(col *metrics.Collector) {
	if r.d == nil {
		return
	}
	sec := r.d.Section(r.pipeline, r.target)
	if sec == nil {
		return
	}
	for _, ev := range sec.Events {
		col.Detection(ev)
	}
	if sec.Baseline != nil {
		for _, ev := range sec.Baseline.Events {
			col.Detection(ev)
		}
	}
	col.SetDetect(sec)
}
