package discover

import (
	"fmt"
	"sort"

	"crashresist/internal/fuzz"
	"crashresist/internal/isa"
	"crashresist/internal/taint"
	"crashresist/internal/targets"
	"crashresist/internal/trace"
	"crashresist/internal/vm"
	"crashresist/internal/winapi"
)

// ExclusionReason classifies why a JS-reachable crash-resistant API cannot
// be turned into a primitive — the three reasons of §V-B — or that it can.
type ExclusionReason uint8

// Reasons.
const (
	// ReasonStackTransient: the pointer argument is a short-lived stack
	// location (query functions called with stack-allocated structs).
	ReasonStackTransient ExclusionReason = iota + 1
	// ReasonVolatile: the pointer value has no stored reference in
	// memory, so an attacker's write primitive has nothing to target.
	ReasonVolatile
	// ReasonDerefOutside: the pointer is stored in corruptible memory,
	// but the surrounding code dereferences it outside the
	// crash-resistant function — corrupting it crashes the process.
	ReasonDerefOutside
	// ReasonControllable: the pointer is corruptible and the corrupted
	// call survives — a usable primitive.
	ReasonControllable
	// ReasonUntriggered: the corrupted replay never exercised the call.
	ReasonUntriggered
)

// String renders the reason.
func (r ExclusionReason) String() string {
	switch r {
	case ReasonStackTransient:
		return "stack-transient"
	case ReasonVolatile:
		return "volatile-pointer"
	case ReasonDerefOutside:
		return "deref-outside"
	case ReasonControllable:
		return "controllable"
	case ReasonUntriggered:
		return "untriggered"
	default:
		return "reason?"
	}
}

// APIClassification is the final-stage result for one JS-context API.
type APIClassification struct {
	API        string
	Reason     ExclusionReason
	Provenance uint64 // pointer storage address (when one exists)
	Detail     string
}

// APIFunnelReport reproduces the §V-B funnel.
type APIFunnelReport struct {
	Browser string
	// The funnel: 20,672 → 11,521 → 400 → 25 → 12 → 0 in the paper.
	Total          int // API functions in the corpus
	WithPointer    int // with at least one documented pointer argument
	CrashResistant int // surviving the invalid-pointer fuzzing battery
	OnPath         int // crash-resistant and observed on the browse path
	JSContext      int // of those, reachable from the scripting context
	Controllable   int // of those, with a corruptible, safely-probing pointer

	// OnPathAPIs and JSContextAPIs name the surviving functions.
	OnPathAPIs    []string
	JSContextAPIs []string
	// Classifications explain each JS-context API's fate.
	Classifications []APIClassification
}

// APIAnalyzer drives the Windows-API pipeline against a browser target.
type APIAnalyzer struct {
	Seed int64
	// InvalidAddr overrides the corruption value.
	InvalidAddr uint64
	// Workers bounds the fuzzing and classification fan-out; <= 0 selects
	// GOMAXPROCS.
	Workers int
}

// Analyze runs fuzzing, call-site harvesting, context filtering and
// controllability classification. The fuzzing battery fans out across the
// worker pool one descriptor per job (each probe already runs in its own
// single-shot harness process), and the final controllability stage fans
// out per JS-context API (each replay builds its own environment). Both
// stages write into index-addressed slices, keeping the funnel
// byte-identical for any worker count.
func (a *APIAnalyzer) Analyze(br *targets.Browser) (*APIFunnelReport, error) {
	invalid := a.InvalidAddr
	if invalid == 0 {
		invalid = InvalidProbeAddr
	}

	// Stage 1-3: black-box fuzzing of the API corpus, sharded per
	// descriptor in registry order.
	reg, err := winapi.GenerateCorpus(br.Params.API)
	if err != nil {
		return nil, err
	}
	fz := fuzz.New(reg, a.Seed)
	var ptrAPIs []*winapi.Descriptor
	for _, d := range reg.All() {
		if d.HasPointerArg() {
			ptrAPIs = append(ptrAPIs, d)
		}
	}
	results := make([]fuzz.FuncResult, len(ptrAPIs))
	err = runIndexed(a.Workers, len(ptrAPIs), func(i int) error {
		res, err := fz.FuzzOne(ptrAPIs[i])
		if err != nil {
			return fmt.Errorf("fuzz %s: %w", ptrAPIs[i].Name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("fuzz corpus: %w", err)
	}
	resistant := make(map[string]bool)
	crashResistant := 0
	for _, res := range results {
		if res.CrashResistant {
			resistant[res.Name] = true
			crashResistant++
		}
	}

	report := &APIFunnelReport{
		Browser:        br.Name,
		Total:          reg.Len(),
		WithPointer:    len(ptrAPIs),
		CrashResistant: crashResistant,
	}

	// Stage 4-5: instrumented browse — call-site harvesting and context
	// tagging.
	obs, err := a.observeBrowse(br)
	if err != nil {
		return nil, fmt.Errorf("browse %s: %w", br.Name, err)
	}
	for name := range obs.called {
		if resistant[name] {
			report.OnPathAPIs = append(report.OnPathAPIs, name)
			if obs.fromJS[name] {
				report.JSContextAPIs = append(report.JSContextAPIs, name)
			}
		}
	}
	sort.Strings(report.OnPathAPIs)
	sort.Strings(report.JSContextAPIs)
	report.OnPath = len(report.OnPathAPIs)
	report.JSContext = len(report.JSContextAPIs)

	// Stage 6: pointer-argument controllability for the JS-context set,
	// one corrupted-replay environment per API.
	report.Classifications = make([]APIClassification, len(report.JSContextAPIs))
	err = runIndexed(a.Workers, len(report.JSContextAPIs), func(i int) error {
		api := report.JSContextAPIs[i]
		cls, err := a.classify(br, api, obs.args[api], invalid)
		if err != nil {
			return fmt.Errorf("classify %s: %w", api, err)
		}
		report.Classifications[i] = cls
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, cls := range report.Classifications {
		if cls.Reason == ReasonControllable {
			report.Controllable++
		}
	}
	return report, nil
}

// argObservation captures one API call's pointer-argument state.
type argObservation struct {
	value   uint64
	provOK  bool
	prov    uint64
	onStack bool
}

type browseObservation struct {
	called map[string]bool
	fromJS map[string]bool
	args   map[string]argObservation
}

// apiArgTracer extends the generic recorder with pointer-argument capture
// at API call sites.
type apiArgTracer struct {
	*trace.Recorder

	reg   *winapi.Registry
	taint *taint.Engine
	proc  *vm.Process
	obs   *browseObservation
}

// OnAPICall records the first observation of each API's first pointer arg.
func (a *apiArgTracer) OnAPICall(t *vm.Thread, callPC uint64, id uint32) {
	a.Recorder.OnAPICall(t, callPC, id)
	d, ok := a.reg.ByID(id)
	if !ok {
		return
	}
	a.obs.called[d.Name] = true
	if a.stackInJS(t) {
		a.obs.fromJS[d.Name] = true
	}
	if _, seen := a.obs.args[d.Name]; seen || len(d.PtrArgs) == 0 {
		return
	}
	reg := isa.Register(1 + d.PtrArgs[0])
	val := t.Reg(reg)
	prov, provOK := a.taint.RegProvenance(t.ID, reg)
	a.obs.args[d.Name] = argObservation{
		value:   val,
		provOK:  provOK,
		prov:    prov,
		onStack: t.OnStack(val) || (provOK && t.OnStack(prov)),
	}
}

func (a *apiArgTracer) stackInJS(t *vm.Thread) bool {
	for _, f := range t.Frames() {
		if m, ok := a.proc.FindModule(f.FuncEntry); ok && m.Image.Name == "jscript9.dll" {
			return true
		}
	}
	return false
}

// observeBrowse runs one instrumented browse.
func (a *APIAnalyzer) observeBrowse(br *targets.Browser) (*browseObservation, error) {
	env, err := br.NewEnv(a.Seed)
	if err != nil {
		return nil, err
	}
	te := taint.New()
	te.Attach(env.Proc)

	rec := trace.NewRecorder()
	rec.EnableAPIHarvest()
	rec.AddContextModule("jscript9.dll")

	obs := &browseObservation{
		called: make(map[string]bool),
		fromJS: make(map[string]bool),
		args:   make(map[string]argObservation),
	}
	tracer := &apiArgTracer{Recorder: rec, reg: env.Reg, taint: te, proc: env.Proc, obs: obs}
	rec.Attach(env.Proc)
	env.Proc.Tracer = tracer

	if err := env.Start(); err != nil {
		return nil, err
	}
	if err := env.Browse(); err != nil {
		return nil, err
	}
	return obs, nil
}

// classify decides an API's exclusion reason from its observed argument and
// (when a corruptible pointer exists) a corrupted replay.
func (a *APIAnalyzer) classify(br *targets.Browser, api string, obs argObservation, invalid uint64) (APIClassification, error) {
	cls := APIClassification{API: api}
	switch {
	case obs.onStack:
		cls.Reason = ReasonStackTransient
		cls.Detail = fmt.Sprintf("pointer %#x lives on a thread stack", obs.value)
		return cls, nil
	case !obs.provOK:
		cls.Reason = ReasonVolatile
		cls.Detail = fmt.Sprintf("pointer %#x has no stored reference", obs.value)
		return cls, nil
	}
	cls.Provenance = obs.prov

	// Corrupted replay: rebuild the environment (same seed, same
	// layout), corrupt the stored pointer, re-browse.
	env, err := br.NewEnv(a.Seed)
	if err != nil {
		return cls, err
	}
	te := taint.New()
	cor := &corruptingFlow{inner: te, as: env.Proc.AS, target: obs.prov, value: invalid}
	env.Proc.Flow = cor
	cor.corrupt()
	if err := env.Start(); err != nil {
		cls.Reason = ReasonDerefOutside
		cls.Detail = fmt.Sprintf("corrupted startup crash: %v", env.Proc.Crash)
		return cls, nil
	}
	browseErr := env.Browse()
	switch {
	case env.Proc.State == vm.ProcCrashed:
		cls.Reason = ReasonDerefOutside
		cls.Detail = fmt.Sprintf("pointer dereferenced outside the API: %v", env.Proc.Crash)
	case browseErr != nil:
		cls.Reason = ReasonUntriggered
		cls.Detail = browseErr.Error()
	default:
		cls.Reason = ReasonControllable
		cls.Detail = "corrupted call returned gracefully; probe primitive usable"
	}
	return cls, nil
}
