package discover

import (
	"context"
	"fmt"
	"sort"
	"time"

	"crashresist/internal/cas"
	"crashresist/internal/defense"
	"crashresist/internal/faultinject"
	"crashresist/internal/fuzz"
	"crashresist/internal/isa"
	"crashresist/internal/metrics"
	"crashresist/internal/prof"
	"crashresist/internal/taint"
	"crashresist/internal/targets"
	"crashresist/internal/trace"
	"crashresist/internal/vm"
	"crashresist/internal/winapi"
)

// ExclusionReason classifies why a JS-reachable crash-resistant API cannot
// be turned into a primitive — the three reasons of §V-B — or that it can.
type ExclusionReason uint8

// Reasons.
const (
	// ReasonStackTransient: the pointer argument is a short-lived stack
	// location (query functions called with stack-allocated structs).
	ReasonStackTransient ExclusionReason = iota + 1
	// ReasonVolatile: the pointer value has no stored reference in
	// memory, so an attacker's write primitive has nothing to target.
	ReasonVolatile
	// ReasonDerefOutside: the pointer is stored in corruptible memory,
	// but the surrounding code dereferences it outside the
	// crash-resistant function — corrupting it crashes the process.
	ReasonDerefOutside
	// ReasonControllable: the pointer is corruptible and the corrupted
	// call survives — a usable primitive.
	ReasonControllable
	// ReasonUntriggered: the corrupted replay never exercised the call.
	ReasonUntriggered
)

// String renders the reason.
func (r ExclusionReason) String() string {
	switch r {
	case ReasonStackTransient:
		return "stack-transient"
	case ReasonVolatile:
		return "volatile-pointer"
	case ReasonDerefOutside:
		return "deref-outside"
	case ReasonControllable:
		return "controllable"
	case ReasonUntriggered:
		return "untriggered"
	default:
		return "reason?"
	}
}

// reasonTokens are the stable JSON wire names.
var reasonTokens = map[ExclusionReason]string{
	ReasonStackTransient: "stack_transient",
	ReasonVolatile:       "volatile",
	ReasonDerefOutside:   "deref_outside",
	ReasonControllable:   "controllable",
	ReasonUntriggered:    "untriggered",
}

// Token returns the reason's stable wire name (the JSON token), used for
// provenance verdicts.
func (r ExclusionReason) Token() string {
	if tok, ok := reasonTokens[r]; ok {
		return tok
	}
	return fmt.Sprintf("reason_%d", uint8(r))
}

// MarshalJSON encodes the reason as a stable string token.
func (r ExclusionReason) MarshalJSON() ([]byte, error) {
	tok, ok := reasonTokens[r]
	if !ok {
		return nil, fmt.Errorf("marshal: invalid exclusion reason %d", uint8(r))
	}
	return []byte(`"` + tok + `"`), nil
}

// UnmarshalJSON decodes a reason token.
func (r *ExclusionReason) UnmarshalJSON(b []byte) error {
	s := string(b)
	for val, tok := range reasonTokens {
		if s == `"`+tok+`"` {
			*r = val
			return nil
		}
	}
	return fmt.Errorf("unmarshal: unknown exclusion reason %s", s)
}

// APIClassification is the final-stage result for one JS-context API.
type APIClassification struct {
	API        string          `json:"api"`
	Reason     ExclusionReason `json:"reason"`
	Provenance uint64          `json:"provenance,omitempty"` // pointer storage address (when one exists)
	Detail     string          `json:"detail,omitempty"`
}

// APIFunnelReport reproduces the §V-B funnel.
type APIFunnelReport struct {
	// Schema versions the report's wire format (WireSchemaV1).
	Schema  string `json:"schema"`
	Browser string `json:"browser"`
	// The funnel: 20,672 → 11,521 → 400 → 25 → 12 → 0 in the paper.
	Total          int `json:"total"`           // API functions in the corpus
	WithPointer    int `json:"with_pointer"`    // with at least one documented pointer argument
	CrashResistant int `json:"crash_resistant"` // surviving the invalid-pointer fuzzing battery
	OnPath         int `json:"on_path"`         // crash-resistant and observed on the browse path
	JSContext      int `json:"js_context"`      // of those, reachable from the scripting context
	Controllable   int `json:"controllable"`    // of those, with a corruptible, safely-probing pointer

	// OnPathAPIs and JSContextAPIs name the surviving functions.
	OnPathAPIs    []string `json:"on_path_apis,omitempty"`
	JSContextAPIs []string `json:"js_context_apis,omitempty"`
	// Classifications explain each JS-context API's fate.
	Classifications []APIClassification `json:"classifications,omitempty"`
	// Provenance holds one evidence chain per classified API (fuzz battery
	// → browse harvest → controllability verdict). Exported via JSON only;
	// table formatters never read it.
	Provenance []PrimitiveProvenance `json:"provenance,omitempty"`
	// Stats is the run's observability record (never rendered in tables).
	Stats *metrics.RunStats `json:"stats,omitempty"`
	// Degraded lists jobs dropped after exhausting their retry budget;
	// empty unless a fault plan or retry budget is configured.
	Degraded []Degraded `json:"degraded,omitempty"`
}

// APIAnalyzer drives the Windows-API pipeline against a browser target.
type APIAnalyzer struct {
	Seed int64
	// InvalidAddr overrides the corruption value.
	InvalidAddr uint64
	// Workers bounds the fuzzing and classification fan-out; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// Progress receives live stage events (corpus → fuzz → harvest →
	// classify). Must be safe for concurrent use.
	Progress func(metrics.StageEvent)
	// Sinks receive the run's live events and final RunStats.
	Sinks []metrics.Sink
	// FaultPlan, when non-nil, injects deterministic failures into the
	// harness processes, browse runs and pool-job sites (chaos mode).
	FaultPlan *faultinject.Plan
	// Retries bounds per-job re-runs after a transient failure; setting
	// Retries (or FaultPlan) switches failed jobs from aborting the run
	// to degrading into Report.Degraded.
	Retries int
	// StageTimeout bounds each fanned-out stage; zero means no limit.
	StageTimeout time.Duration
	// Cache, when non-nil, persists fuzzing batteries and classification
	// verdicts across runs, keyed by content (see internal/cas). Ignored
	// while a FaultPlan is attached: chaos runs must neither read nor
	// write entries shared with clean runs.
	Cache *cas.Cache
	// Profile, when non-nil, receives the run's deterministic cost
	// attribution (see internal/prof). Profiling never touches report
	// contents.
	Profile *prof.Profile
	// Detect, when non-nil, receives the run's detection inputs: the
	// instrumented browse as benign baseline and each crash-resistant
	// API's fuzzing battery as a detectability row. Never touches report
	// rows — the rendered section rides RunStats.
	Detect *defense.Detect
}

// Analyze runs fuzzing, call-site harvesting, context filtering and
// controllability classification. The fuzzing battery fans out across the
// worker pool one descriptor per job (each probe already runs in its own
// single-shot harness process), and the final controllability stage fans
// out per JS-context API (each replay builds its own environment). Both
// stages write into index-addressed slices, keeping the funnel
// byte-identical for any worker count.
func (a *APIAnalyzer) Analyze(br *targets.Browser) (*APIFunnelReport, error) {
	return a.AnalyzeContext(context.Background(), br)
}

// AnalyzeContext is Analyze with cancellation, checked between stages and
// before each fuzzing or classification job.
func (a *APIAnalyzer) AnalyzeContext(ctx context.Context, br *targets.Browser) (*APIFunnelReport, error) {
	invalid := a.InvalidAddr
	if invalid == 0 {
		invalid = InvalidProbeAddr
	}
	col := newRunCollector("api", br.Name, a.Workers, a.Progress, a.Sinks)
	rp := newRunProf(a.Profile, "api", br.Name)
	rd := newRunDetect(a.Detect, "api", br.Name)
	res := newResilience(br.Name, a.FaultPlan, a.Retries, col, rp)
	rc := runCache{col: col, rp: rp}
	if a.FaultPlan == nil {
		rc.c = a.Cache
	}
	var apiParams []byte
	if rc.c != nil {
		apiParams = marshalAPIParams(br.Params.API)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 1: generate the API corpus and select the pointer-taking
	// descriptors in registry order.
	span := col.StartStage("corpus", 0)
	reg, err := winapi.GenerateCorpus(br.Params.API)
	if err != nil {
		span.End()
		return nil, err
	}
	fz := fuzz.New(reg, a.Seed)
	fz.FaultPlan = a.FaultPlan
	var ptrAPIs []*winapi.Descriptor
	for _, d := range reg.All() {
		if d.HasPointerArg() {
			ptrAPIs = append(ptrAPIs, d)
		}
	}
	span.End()

	// Stage 2-3: black-box fuzzing of the corpus, sharded per descriptor.
	results := make([]fuzz.FuncResult, len(ptrAPIs))
	span = col.StartStage("fuzz", len(ptrAPIs))
	span.NameJobs(func(i int) string { return "fuzz/" + ptrAPIs[i].Name })
	fctx, cancel := stageCtx(ctx, a.StageTimeout)
	err = runIndexed(fctx, a.Workers, len(ptrAPIs), span, func(i int) error {
		return res.run(fctx, "fuzz", ptrAPIs[i].Name, i, func(int) error {
			var key cas.Key
			haveKey := false
			if rc.c != nil && apiParams != nil {
				key = fuzzDescKey(apiParams, a.Seed, ptrAPIs[i])
				haveKey = true
				var ent apiFuzzEntry
				if rc.get(casFamilyFuzz, key, &ent, "fuzz", ptrAPIs[i].Name) {
					col.Add(metrics.CtrProbes, uint64(len(ent.Probes)))
					harvestVMStats(col, ent.Stats)
					span.Observe(ent.Stats.Instructions)
					profileFuzz(rp, ptrAPIs[i].Name, ent)
					detectFuzz(rd, ent)
					results[i] = ent
					return nil
				}
			}
			fres, err := fz.FuzzOne(ptrAPIs[i])
			if err != nil {
				return fmt.Errorf("fuzz %s: %w", ptrAPIs[i].Name, err)
			}
			if haveKey {
				rc.put(casFamilyFuzz, key, fres, "fuzz", ptrAPIs[i].Name)
			}
			col.Add(metrics.CtrProbes, uint64(len(fres.Probes)))
			harvestVMStats(col, fres.Stats)
			// The harness processes' summed instruction count is the
			// job's deterministic cost.
			span.Observe(fres.Stats.Instructions)
			profileFuzz(rp, ptrAPIs[i].Name, fres)
			detectFuzz(rd, fres)
			results[i] = fres
			return nil
		})
	})
	cancel()
	span.End()
	if err != nil {
		return nil, fmt.Errorf("fuzz corpus: %w", err)
	}
	// A degraded fuzz slot keeps its zero FuncResult, i.e. the API is
	// conservatively treated as not crash-resistant.
	resistant := make(map[string]bool)
	crashResistant := 0
	for _, fres := range results {
		if fres.CrashResistant {
			resistant[fres.Name] = true
			crashResistant++
		}
	}

	report := &APIFunnelReport{
		Schema:         WireSchemaV1,
		Browser:        br.Name,
		Total:          reg.Len(),
		WithPointer:    len(ptrAPIs),
		CrashResistant: crashResistant,
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 4-5: instrumented browse — call-site harvesting and context
	// tagging.
	span = col.StartStage("harvest", 0)
	var obs *browseObservation
	err = res.run(ctx, "harvest", br.Name, 0, func(int) error {
		o, err := a.observeBrowse(br, col, span, rp, rd)
		if err != nil {
			return err
		}
		obs = o
		return nil
	})
	span.End()
	if err != nil {
		return nil, fmt.Errorf("browse %s: %w", br.Name, err)
	}
	// A degraded harvest behaves like a browse that called nothing: the
	// funnel narrows to zero past the fuzzing stage.
	if obs == nil {
		obs = &browseObservation{
			called: make(map[string]bool),
			fromJS: make(map[string]bool),
			args:   make(map[string]argObservation),
		}
	}
	for name := range obs.called {
		if resistant[name] {
			report.OnPathAPIs = append(report.OnPathAPIs, name)
			if obs.fromJS[name] {
				report.JSContextAPIs = append(report.JSContextAPIs, name)
			}
		}
	}
	sort.Strings(report.OnPathAPIs)
	sort.Strings(report.JSContextAPIs)
	report.OnPath = len(report.OnPathAPIs)
	report.JSContext = len(report.JSContextAPIs)

	// Stage 6: pointer-argument controllability for the JS-context set,
	// one corrupted-replay environment per API.
	classifications := make([]APIClassification, len(report.JSContextAPIs))
	span = col.StartStage("classify", len(report.JSContextAPIs))
	span.NameJobs(func(i int) string { return "classify/" + report.JSContextAPIs[i] })
	cctx, cancel2 := stageCtx(ctx, a.StageTimeout)
	err = runIndexed(cctx, a.Workers, len(report.JSContextAPIs), span, func(i int) error {
		api := report.JSContextAPIs[i]
		return res.run(cctx, "classify", api, i, func(int) error {
			var key cas.Key
			haveKey := false
			if rc.c != nil {
				if digest, derr := br.ContentDigest(); derr == nil {
					key = classifyKey(digest, a.Seed, invalid, api, obs.args[api])
					haveKey = true
					var ent classifyEntry
					if rc.get(casFamilyClassify, key, &ent, "classify", api) {
						span.Observe(ent.Cost.Clock)
						if ent.Cost.HasEnv {
							harvestVMStats(col, ent.Cost.Stats)
						}
						profileClassify(rp, api, ent.Cost)
						classifications[i] = ent.Cls
						return nil
					}
				}
			}
			cls, cost, err := a.classify(br, api, obs.args[api], invalid)
			if err != nil {
				return fmt.Errorf("classify %s: %w", api, err)
			}
			// The replay's virtual clock is the job's deterministic
			// cost; statically-excluded APIs record zero.
			span.Observe(cost.Clock)
			if cost.HasEnv {
				harvestVMStats(col, cost.Stats)
			}
			profileClassify(rp, api, cost)
			if haveKey {
				rc.put(casFamilyClassify, key, classifyEntry{Cls: cls, Cost: cost}, "classify", api)
			}
			classifications[i] = cls
			return nil
		})
	})
	cancel2()
	span.End()
	if err != nil {
		return nil, err
	}
	// Degraded classify slots hold the zero value, whose invalid Reason
	// cannot marshal — compact them out (their APIs appear in Degraded).
	for _, cls := range classifications {
		if cls.Reason == 0 {
			continue
		}
		report.Classifications = append(report.Classifications, cls)
		if cls.Reason == ReasonControllable {
			report.Controllable++
		}
	}
	fuzzByName := make(map[string]*fuzz.FuncResult, len(results))
	for i := range results {
		fuzzByName[results[i].Name] = &results[i]
	}
	for _, cls := range report.Classifications {
		chain := make([]EvidenceStep, 0, 3)
		if fres := fuzzByName[cls.API]; fres != nil {
			graceful := 0
			for _, p := range fres.Probes {
				if p.Outcome == fuzz.OutcomeGraceful {
					graceful++
				}
			}
			chain = append(chain, step("fuzz", "crash_resistant",
				"%d/%d invalid-pointer probes returned gracefully", graceful, len(fres.Probes)))
		}
		harvest := step("harvest", "js_context",
			"observed on the browse path with a call from the scripting context")
		if arg, ok := obs.args[cls.API]; ok && arg.provOK {
			harvest.Detail += fmt.Sprintf("; pointer arg %#x stored at %#x", arg.value, arg.prov)
		}
		chain = append(chain, harvest, step("classify", cls.Reason.Token(), "%s", cls.Detail))
		report.Provenance = append(report.Provenance, PrimitiveProvenance{Primitive: cls.API, Chain: chain})
	}
	report.Degraded = res.take()
	rd.finish(col)
	stats, err := col.Finish()
	if err != nil {
		return nil, fmt.Errorf("flush metrics %s: %w", br.Name, err)
	}
	report.Stats = stats
	return report, nil
}

// argObservation captures one API call's pointer-argument state.
type argObservation struct {
	value   uint64
	provOK  bool
	prov    uint64
	onStack bool
}

type browseObservation struct {
	called map[string]bool
	fromJS map[string]bool
	args   map[string]argObservation
}

// apiArgTracer extends the generic recorder with pointer-argument capture
// at API call sites.
type apiArgTracer struct {
	*trace.Recorder

	reg   *winapi.Registry
	taint *taint.Engine
	proc  *vm.Process
	obs   *browseObservation
}

// OnAPICall records the first observation of each API's first pointer arg.
func (a *apiArgTracer) OnAPICall(t *vm.Thread, callPC uint64, id uint32) {
	a.Recorder.OnAPICall(t, callPC, id)
	d, ok := a.reg.ByID(id)
	if !ok {
		return
	}
	a.obs.called[d.Name] = true
	if a.stackInJS(t) {
		a.obs.fromJS[d.Name] = true
	}
	if _, seen := a.obs.args[d.Name]; seen || len(d.PtrArgs) == 0 {
		return
	}
	reg := isa.Register(1 + d.PtrArgs[0])
	val := t.Reg(reg)
	prov, provOK := a.taint.RegProvenance(t.ID, reg)
	a.obs.args[d.Name] = argObservation{
		value:   val,
		provOK:  provOK,
		prov:    prov,
		onStack: t.OnStack(val) || (provOK && t.OnStack(prov)),
	}
}

func (a *apiArgTracer) stackInJS(t *vm.Thread) bool {
	for _, f := range t.Frames() {
		if m, ok := a.proc.FindModule(f.FuncEntry); ok && m.Image.Name == "jscript9.dll" {
			return true
		}
	}
	return false
}

// profileFuzz charges one API's fuzzing battery, one sub-frame per probe
// pointer so flamegraphs break an API's cost down by battery entry.
// Per-probe instruction counts are persisted in the cache entry, so cold
// computes and warm replays charge identical stacks.
func profileFuzz(rp runProf, api string, res fuzz.FuncResult) {
	for _, pr := range res.Probes {
		rp.addSub("fuzz", api, fmt.Sprintf("ptr:%#x", pr.Pointer), prof.KindVMInstructions, pr.Instructions)
	}
}

// detectFuzz folds one crash-resistant API's fuzzing battery into its
// detectability row: every battery probe is one oracle query, and every
// ErrInvalidPointer return is a kernel-validated rejection — the Windows
// analogue of an EFAULT return, and exactly what a kernel-boundary
// defender counts (crash-resistant APIs raise no user-mode fault). The
// harness processes each start at virtual clock zero, so their rejections
// land in the run stream's first virtual second. Inputs come from the
// cache entry, so cold computes and warm replays fold identical rows.
func detectFuzz(rd runDetect, res fuzz.FuncResult) {
	if !rd.on() || !res.CrashResistant {
		return
	}
	var faults uint64
	for _, pr := range res.Probes {
		if pr.Outcome == fuzz.OutcomeGraceful && pr.Ret == winapi.ErrInvalidPointer {
			faults++
		}
	}
	rd.primitive(res.Name, uint64(len(res.Probes)), faults, res.Stats.Instructions, nil)
	if faults > 0 {
		rd.series(map[uint64]uint64{0: faults})
	}
}

// profileClassify charges one classification job's replay cost, identically
// for cold computes and warm cache replays (the entry persists the cost).
func profileClassify(rp runProf, api string, cost classifyCost) {
	rp.add("classify", api, prof.KindClockTicks, cost.Clock)
	if cost.HasEnv {
		rp.add("classify", api, prof.KindVMInstructions, cost.Stats.Instructions)
	}
}

// observeBrowse runs one instrumented browse.
func (a *APIAnalyzer) observeBrowse(br *targets.Browser, col *metrics.Collector, span *metrics.Stage, rp runProf, rd runDetect) (*browseObservation, error) {
	env, err := br.NewEnv(a.Seed)
	if err != nil {
		return nil, err
	}
	env.Proc.FaultPlan = a.FaultPlan
	te := taint.New()
	te.Attach(env.Proc)

	rec := trace.NewRecorder()
	rec.EnableAPIHarvest()
	rec.AddContextModule("jscript9.dll")
	if rd.on() {
		rec.EnableExceptionLog()
	}

	obs := &browseObservation{
		called: make(map[string]bool),
		fromJS: make(map[string]bool),
		args:   make(map[string]argObservation),
	}
	tracer := &apiArgTracer{Recorder: rec, reg: env.Reg, taint: te, proc: env.Proc, obs: obs}
	rec.Attach(env.Proc)
	env.Proc.Tracer = tracer

	if err := env.Start(); err != nil {
		return nil, err
	}
	browseErr := env.Browse()
	span.Observe(env.Proc.Clock)
	harvestVMStats(col, env.Proc.Stats)
	rp.add("harvest", "browse", prof.KindClockTicks, env.Proc.Clock)
	rp.add("harvest", "browse", prof.KindVMInstructions, env.Proc.Stats.Instructions)
	if rd.on() {
		series := defense.BucketExc(rec.Exceptions())
		var faults uint64
		for _, n := range series {
			faults += n
		}
		rd.baseline("browse", faults, env.Proc.Clock, series)
		rd.series(series)
	}
	if browseErr != nil {
		return nil, browseErr
	}
	return obs, nil
}

// classify decides an API's exclusion reason from its observed argument and
// (when a corruptible pointer exists) a corrupted replay. The returned cost
// carries the replay's deterministic counters; the caller observes them, so
// a cache hit can replay the identical observations.
func (a *APIAnalyzer) classify(br *targets.Browser, api string, obs argObservation, invalid uint64) (APIClassification, classifyCost, error) {
	cls := APIClassification{API: api}
	switch {
	case obs.onStack:
		cls.Reason = ReasonStackTransient
		cls.Detail = fmt.Sprintf("pointer %#x lives on a thread stack", obs.value)
		return cls, classifyCost{}, nil
	case !obs.provOK:
		cls.Reason = ReasonVolatile
		cls.Detail = fmt.Sprintf("pointer %#x has no stored reference", obs.value)
		return cls, classifyCost{}, nil
	}
	cls.Provenance = obs.prov

	// Corrupted replay: rebuild the environment (same seed, same
	// layout), corrupt the stored pointer, re-browse.
	env, err := br.NewEnv(a.Seed)
	if err != nil {
		return cls, classifyCost{}, err
	}
	env.Proc.FaultPlan = a.FaultPlan
	cost := func() classifyCost {
		return classifyCost{Clock: env.Proc.Clock, Stats: env.Proc.Stats, HasEnv: true}
	}
	te := taint.New()
	cor := &corruptingFlow{inner: te, as: env.Proc.AS, target: obs.prov, value: invalid}
	env.Proc.Flow = cor
	cor.corrupt()
	if err := env.Start(); err != nil {
		cls.Reason = ReasonDerefOutside
		cls.Detail = fmt.Sprintf("corrupted startup crash: %v", env.Proc.Crash)
		return cls, cost(), nil
	}
	browseErr := env.Browse()
	switch {
	case env.Proc.State == vm.ProcCrashed:
		cls.Reason = ReasonDerefOutside
		cls.Detail = fmt.Sprintf("pointer dereferenced outside the API: %v", env.Proc.Crash)
	case browseErr != nil:
		cls.Reason = ReasonUntriggered
		cls.Detail = browseErr.Error()
	default:
		cls.Reason = ReasonControllable
		cls.Detail = "corrupted call returned gracefully; probe primitive usable"
	}
	return cls, cost(), nil
}
