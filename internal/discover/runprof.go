package discover

// Cost-attribution glue between the pipelines and the prof package. Each
// analyzer optionally carries a *prof.Profile; runProf binds it to one
// run's pipeline and target so job bodies can charge their deterministic
// virtual costs with just (stage, unit, kind, n).
//
// Taps sit exactly where the pipelines already call span.Observe and the
// harvest helpers: the one place where a unit's identity and its
// deterministic cost coexist. Cache hits replay the costs stored in their
// entries (Steps, Stats, Clock), so a warm run charges the profile
// identically to the cold run that populated the cache, and every charge
// is a commutative addition on a per-job value, so profiles are
// byte-identical at any worker count.

import "crashresist/internal/prof"

// runProf charges one run's costs to a profile. The zero value (nil
// profile) records nothing, keeping unprofiled runs allocation-free.
type runProf struct {
	p        *prof.Profile
	pipeline string
	target   string
}

func newRunProf(p *prof.Profile, pipeline, target string) runProf {
	return runProf{p: p, pipeline: pipeline, target: target}
}

// add charges n units of kind k to pipeline;stage;target;unit.
func (r runProf) add(stage, unit string, k prof.Kind, n uint64) {
	if r.p == nil {
		return
	}
	r.p.Add(prof.Stack{Pipeline: r.pipeline, Stage: stage, Target: r.target, Unit: unit}, k, n)
}

// addSub is add with a drill-down sub-frame below the unit (for example
// the module a filter-class observation came from).
func (r runProf) addSub(stage, unit, sub string, k prof.Kind, n uint64) {
	if r.p == nil {
		return
	}
	r.p.Add(prof.Stack{Pipeline: r.pipeline, Stage: stage, Target: r.target, Unit: unit, Sub: sub}, k, n)
}
