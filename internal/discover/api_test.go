package discover

import (
	"testing"

	"crashresist/internal/targets"
)

func TestAPIFunnelIE(t *testing.T) {
	params := targets.SmallBrowserParams()
	br, err := targets.IE(params)
	if err != nil {
		t.Fatal(err)
	}
	a := &APIAnalyzer{Seed: 5151}
	rep, err := a.Analyze(br)
	if err != nil {
		t.Fatal(err)
	}

	// Funnel head: black-box rediscovery of the corpus proportions.
	if rep.Total != params.API.Total {
		t.Errorf("Total = %d, want %d", rep.Total, params.API.Total)
	}
	if rep.WithPointer != params.API.WithPointer {
		t.Errorf("WithPointer = %d, want %d", rep.WithPointer, params.API.WithPointer)
	}
	if rep.CrashResistant != params.API.CrashResistant {
		t.Errorf("CrashResistant = %d, want %d", rep.CrashResistant, params.API.CrashResistant)
	}

	// Funnel middle: exactly the planned on-path and JS-context counts.
	if rep.OnPath != params.OnPathAPIs {
		t.Errorf("OnPath = %d (%v), want %d", rep.OnPath, rep.OnPathAPIs, params.OnPathAPIs)
	}
	if rep.JSContext != params.JSContextAPIs {
		t.Errorf("JSContext = %d (%v), want %d", rep.JSContext, rep.JSContextAPIs, params.JSContextAPIs)
	}

	// Funnel tail: zero controllable, with the right mix of exclusions.
	if rep.Controllable != 0 {
		t.Errorf("Controllable = %d, want 0 (paper's negative result)", rep.Controllable)
	}
	reasons := make(map[ExclusionReason]int)
	for _, cls := range rep.Classifications {
		reasons[cls.Reason]++
	}
	wantShapes := map[ExclusionReason]int{}
	for _, js := range br.JSAPIs {
		switch js.Shape {
		case targets.ShapeStack:
			wantShapes[ReasonStackTransient]++
		case targets.ShapeDerefOutside:
			wantShapes[ReasonDerefOutside]++
		default:
			wantShapes[ReasonVolatile]++
		}
	}
	for reason, want := range wantShapes {
		if reasons[reason] != want {
			t.Errorf("reason %v count = %d, want %d (all: %v)", reason, reasons[reason], want, reasons)
		}
	}
	for _, cls := range rep.Classifications {
		if cls.Detail == "" {
			t.Errorf("%s: empty detail", cls.API)
		}
	}
}

func TestExclusionReasonStrings(t *testing.T) {
	for r := ReasonStackTransient; r <= ReasonUntriggered; r++ {
		if r.String() == "reason?" {
			t.Errorf("reason %d unnamed", r)
		}
	}
}
