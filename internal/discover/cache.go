package discover

// Persistent-cache wiring for the three pipelines. Each cacheable unit is
// keyed by a content hash of everything its result depends on — target
// bytes, seed, corruption address, candidate identity — so a changed byte
// anywhere in the inputs invalidates exactly that unit and nothing else.
// Entries store the result *and* its deterministic costs (virtual clock,
// VM/kernel counters, symbolic steps), so a warm run replays the same
// span.Observe and counter harvests a cold run performs: reports stay
// byte-identical and latency histograms stay consistent whether a unit was
// computed or served from disk.
//
// Three key families:
//
//	seh-symex         marshaled DLL image bytes → filter verdicts +
//	                  Table III tallies. Persisted only when every filter
//	                  analysis in the module was pure (a function of body
//	                  bytes alone, see sym.Executor.LastAnalysisPure), so
//	                  entries are position- and seed-independent.
//	api-fuzz          API corpus params + seed + descriptor → the fuzzing
//	                  battery's FuncResult.
//	api-classify      browser content digest + seed + corruption address +
//	                  API + observed argument → controllability verdict.
//	syscall-validate  server image bytes + seed + corruption address +
//	                  candidate → validation Finding.
//
// Chaos runs (a pipeline-level fault plan) bypass the persistent cache in
// both directions: injected analysis faults change computed results, which
// must neither be served from nor leak into the cache shared with clean
// runs. The cache's own cas.read/cas.write fault sites remain exercisable
// by attaching a plan to the cache itself.

import (
	"encoding/json"

	"crashresist/internal/bin"
	"crashresist/internal/cas"
	"crashresist/internal/fuzz"
	"crashresist/internal/kernel"
	"crashresist/internal/metrics"
	"crashresist/internal/prof"
	"crashresist/internal/sym"
	"crashresist/internal/vm"
	"crashresist/internal/winapi"
)

// Cache key families (on-disk directory names).
const (
	casFamilySEH      = "seh-symex"
	casFamilyFuzz     = "api-fuzz"
	casFamilyClassify = "api-classify"
	casFamilyValidate = "syscall-validate"
)

// runCache binds an optional persistent cache to one run's collector and
// profile, mirroring every lookup into the run's cache_* counters and
// charging entry byte traffic to the unit that owns the entry. The zero
// value (nil cache) is a valid always-miss cache that counts nothing.
type runCache struct {
	c   *cas.Cache
	col *metrics.Collector
	rp  runProf
}

// get is Cache.Get plus per-run counter and profile accounting; stage and
// unit attribute the transferred bytes. An entry read on a warm hit has
// the same encoded size as the cold run's store of it, so per-unit cache
// byte charges agree between cold and warm runs.
func (r runCache) get(family string, key cas.Key, out any, stage, unit string) bool {
	if r.c == nil {
		return false
	}
	res := r.c.Get(family, key, out)
	if res.Hit {
		r.col.Add(metrics.CtrCacheHits, 1)
		r.col.Add(metrics.CtrCacheBytes, res.Bytes)
		r.rp.add(stage, unit, prof.KindCacheBytes, res.Bytes)
	} else {
		r.col.Add(metrics.CtrCacheMisses, 1)
	}
	if res.Bad {
		r.col.Add(metrics.CtrCacheBadEntries, 1)
	}
	return res.Hit
}

// put is Cache.Put plus per-run counter and profile accounting.
func (r runCache) put(family string, key cas.Key, v any, stage, unit string) {
	if r.c == nil {
		return
	}
	if res := r.c.Put(family, key, v); res.Stored {
		r.col.Add(metrics.CtrCacheBytes, res.Bytes)
		r.rp.add(stage, unit, prof.KindCacheBytes, res.Bytes)
	}
}

// sehSymexEntry is the persisted form of one module's filter classification.
// ClassSteps carries the per-filter-class step breakdown the cost profiler
// attributes, so warm hits charge identical stacks to the cold compute.
type sehSymexEntry struct {
	Verdicts       map[uint32]sym.Verdict `json:"verdicts,omitempty"`
	AVFilters      int                    `json:"av_filters,omitempty"`
	UnknownFilters int                    `json:"unknown_filters,omitempty"`
	Steps          uint64                 `json:"steps,omitempty"`
	ClassSteps     map[string]uint64      `json:"class_steps,omitempty"`
}

// result rehydrates the in-memory stage result. A replayed module counts as
// pure by construction — only all-pure modules are persisted.
func (e sehSymexEntry) result() sehSymexResult {
	v := e.Verdicts
	if v == nil {
		v = make(map[uint32]sym.Verdict)
	}
	return sehSymexResult{
		verdicts:       v,
		avFilters:      e.AVFilters,
		unknownFilters: e.UnknownFilters,
		steps:          e.Steps,
		classSteps:     e.ClassSteps,
		pure:           true,
	}
}

// sehEntryOf is the inverse of result.
func sehEntryOf(sx sehSymexResult) sehSymexEntry {
	return sehSymexEntry{
		Verdicts:       sx.verdicts,
		AVFilters:      sx.avFilters,
		UnknownFilters: sx.unknownFilters,
		Steps:          sx.steps,
		ClassSteps:     sx.classSteps,
	}
}

// sehModuleKey keys a module's symex results by its full marshaled image —
// code, data, symbols, scope tables — so any changed byte re-analyzes
// exactly that DLL. v2 entries add the per-class step breakdown; bumping
// the schema string retires v1 entries (which lack it) by key mismatch
// rather than by a decode-time migration.
func sehModuleKey(img *bin.Image) (cas.Key, bool) {
	data, err := bin.Marshal(img)
	if err != nil {
		return cas.Key{}, false
	}
	return cas.NewHasher("seh-symex/v2").Bytes(data).Key(), true
}

// fuzzDescKey keys one descriptor's fuzzing battery. The corpus parameters
// pin the registry the harness resolves against; the descriptor fields pin
// the function's full calling contract. v2 entries add per-probe
// instruction counts; the schema bump retires v1 entries (which lack
// them) by key mismatch.
func fuzzDescKey(apiParams []byte, seed int64, d *winapi.Descriptor) cas.Key {
	h := cas.NewHasher("api-fuzz/v2").
		Bytes(apiParams).
		Int64(seed).
		String(d.Name).
		Uint64(uint64(d.ID)).
		Int(d.NArgs).
		Int(int(d.Cat)).
		Bool(d.Writes).
		Int(len(d.PtrArgs))
	for _, ai := range d.PtrArgs {
		h.Int(ai)
	}
	return h.Key()
}

// classifyCost carries a classification's deterministic cost for replay.
type classifyCost struct {
	Clock  uint64   `json:"clock,omitempty"`
	Stats  vm.Stats `json:"stats,omitempty"`
	HasEnv bool     `json:"has_env,omitempty"`
}

// classifyEntry is the persisted form of one API's controllability verdict.
type classifyEntry struct {
	Cls  APIClassification `json:"cls"`
	Cost classifyCost      `json:"cost"`
}

// classifyKey keys one API's corrupted-replay verdict. The replay loads the
// whole browser, so the key covers its full content digest: any changed
// byte in any module invalidates the verdict.
func classifyKey(digest []byte, seed int64, invalid uint64, api string, obs argObservation) cas.Key {
	return cas.NewHasher("api-classify/v1").
		Bytes(digest).
		Int64(seed).
		Uint64(invalid).
		String(api).
		Uint64(obs.value).
		Bool(obs.provOK).
		Uint64(obs.prov).
		Bool(obs.onStack).
		Key()
}

// validateCost carries a validation replay's deterministic cost.
type validateCost struct {
	Clock  uint64        `json:"clock,omitempty"`
	Stats  vm.Stats      `json:"stats,omitempty"`
	Kernel kernel.Counts `json:"kernel,omitempty"`
}

// validateEntry is the persisted form of one candidate's validation.
type validateEntry struct {
	Finding Finding      `json:"finding"`
	Cost    validateCost `json:"cost"`
}

// validateKey keys one candidate's corrupted-suite replay by the server's
// marshaled image, the run seed, the corruption value and the candidate's
// identity (syscall, argument, provenance address, taint, count). v2
// entries add the kernel's fault-event bucket series to the stored cost;
// the schema bump retires v1 entries (which lack it) by key mismatch.
func validateKey(srvImage []byte, name string, seed int64, invalid uint64, cand Candidate) cas.Key {
	return cas.NewHasher("syscall-validate/v2").
		String(name).
		Bytes(srvImage).
		Int64(seed).
		Uint64(invalid).
		String(cand.Syscall).
		Uint64(cand.Num).
		Int(cand.ArgIndex).
		Uint64(cand.Provenance).
		Uint64(cand.TaintMask).
		Int(cand.Count).
		Key()
}

// marshalAPIParams canonicalizes the API corpus parameters for hashing.
func marshalAPIParams(p winapi.CorpusParams) []byte {
	data, err := json.Marshal(p)
	if err != nil {
		return nil
	}
	return data
}

// apiFuzzEntry aliases the fuzzing result; all fields are exported and
// round-trip through JSON unchanged.
type apiFuzzEntry = fuzz.FuncResult
