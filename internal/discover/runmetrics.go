package discover

// Instrumentation glue between the pipelines and the metrics package: one
// collector per analysis run, harvesting the emulator's, kernel model's and
// symex cache's counters into it. Everything here mirrors deterministic
// totals — harvest calls are commutative additions, so run counters are
// identical at any worker count.

import (
	"crashresist/internal/kernel"
	"crashresist/internal/metrics"
	"crashresist/internal/sym"
	"crashresist/internal/vm"
)

// newRunCollector builds the per-run collector for a pipeline, wiring the
// analyzer's progress callback and sinks.
func newRunCollector(pipeline, target string, workers int, progress func(metrics.StageEvent), sinks []metrics.Sink) *metrics.Collector {
	col := metrics.NewCollector(pipeline, target, poolWorkers(workers))
	col.SetProgress(progress)
	for _, s := range sinks {
		col.AddSink(s)
	}
	return col
}

// harvestVMStats mirrors a finished process's counters into the collector.
func harvestVMStats(col *metrics.Collector, s vm.Stats) {
	col.Add(metrics.CtrInstructions, s.Instructions)
	col.Add(metrics.CtrFaults, s.Faults)
	col.Add(metrics.CtrFaultsUnmapped, s.FaultsUnmapped)
	col.Add(metrics.CtrFaultsHandled, s.FaultsHandled)
	col.Add(metrics.CtrSyscalls, s.Syscalls)
	col.Add(metrics.CtrAPICalls, s.APICalls)
	col.Add(metrics.CtrFaultsInjected, s.FaultsInjected)
}

// harvestKernelCounts mirrors a kernel model's dispatch counters,
// including the per-process fault-event time series.
func harvestKernelCounts(col *metrics.Collector, c kernel.Counts) {
	col.Add(metrics.CtrEFAULTReturns, c.EFAULTReturns)
	col.Add(metrics.CtrFaultsInjected, c.Injected)
	col.AddFaultEvents(c.EFAULTBuckets)
}

// harvestCacheStats mirrors the symex cache counters.
func harvestCacheStats(col *metrics.Collector, s sym.CacheStats) {
	col.Add(metrics.CtrSymexCacheHits, uint64(s.Hits))
	col.Add(metrics.CtrSymexCacheMisses, uint64(s.Misses))
	col.Add(metrics.CtrSymexCacheUncacheable, uint64(s.Uncacheable))
}
