// Package discover implements the paper's contribution: the three
// semi-automated pipelines that locate crash-resistant primitives in binary
// executables.
//
//   - SyscallAnalyzer (§IV-A): runs a server's test suite under byte-granular
//     taint tracking, flags EFAULT-capable syscalls whose pointer arguments
//     originate in attacker-writable memory, then validates each candidate by
//     corrupting the pointer at its storage location and replaying the suite
//     — reproducing Table I.
//   - APIAnalyzer (§IV-B): black-box fuzzes the platform API corpus, harvests
//     call sites from an instrumented browser run, filters for calls
//     reachable from a scripting context, and classifies pointer-argument
//     controllability — reproducing the §V-B funnel.
//   - SEHAnalyzer (§IV-C): statically extracts scope tables, symbolically
//     executes every filter against the access-violation code, and
//     cross-references survivors with execution coverage — reproducing
//     Tables II and III.
package discover

import (
	"context"
	"fmt"
	"sort"
	"time"

	"crashresist/internal/bin"
	"crashresist/internal/cas"
	"crashresist/internal/defense"
	"crashresist/internal/faultinject"
	"crashresist/internal/isa"
	"crashresist/internal/kernel"
	"crashresist/internal/mem"
	"crashresist/internal/metrics"
	"crashresist/internal/prof"
	"crashresist/internal/targets"
	"crashresist/internal/vm"
)

// InvalidProbeAddr is the unmapped address used to invalidate candidate
// pointers during validation. The user arena starts at 1<<32, so this is
// never mapped.
const InvalidProbeAddr = 0x00000000dead0000

// SyscallStatus classifies one (server, syscall) cell of Table I.
type SyscallStatus uint8

// Statuses, in increasing order of attacker value.
const (
	// StatusNotObserved: the syscall never executed during the suite.
	StatusNotObserved SyscallStatus = iota + 1
	// StatusObserved: executed, but no pointer argument is corruptible
	// (all pointer operands are code-derived or register-only).
	StatusObserved
	// StatusUntriggered: a corruptible pointer exists, but the corrupted
	// replay never drove the syscall into its EFAULT path, so nothing can
	// be concluded (the candidate is unconfirmed).
	StatusUntriggered
	// StatusInvalidCandidate: corrupting the pointer crashes the server —
	// the "±" cells of Table I.
	StatusInvalidCandidate
	// StatusFalsePositive: the naive aliveness validation passes but the
	// service check shows the server no longer processes connections —
	// Table I's Memcached epoll_wait entry.
	StatusFalsePositive
	// StatusUsable: the corrupted probe returns -EFAULT, the server stays
	// alive and keeps serving — a crash-resistant primitive ("⊕").
	StatusUsable
)

// String renders the status as in the paper's table legend.
func (s SyscallStatus) String() string {
	switch s {
	case StatusNotObserved:
		return "not-observed"
	case StatusObserved:
		return "observed"
	case StatusUntriggered:
		return "untriggered"
	case StatusInvalidCandidate:
		return "invalid(±)"
	case StatusFalsePositive:
		return "false-positive(✗)"
	case StatusUsable:
		return "usable(⊕)"
	default:
		return "status?"
	}
}

// syscallStatusTokens are the stable JSON wire names. The display strings
// above carry table-legend punctuation, so the wire uses separate tokens.
var syscallStatusTokens = map[SyscallStatus]string{
	StatusNotObserved:      "not_observed",
	StatusObserved:         "observed",
	StatusUntriggered:      "untriggered",
	StatusInvalidCandidate: "invalid_candidate",
	StatusFalsePositive:    "false_positive",
	StatusUsable:           "usable",
}

// Token returns the status's stable wire name (the JSON token), used for
// provenance verdicts.
func (s SyscallStatus) Token() string {
	if tok, ok := syscallStatusTokens[s]; ok {
		return tok
	}
	return fmt.Sprintf("status_%d", uint8(s))
}

// MarshalJSON encodes the status as a stable string token.
func (s SyscallStatus) MarshalJSON() ([]byte, error) {
	tok, ok := syscallStatusTokens[s]
	if !ok {
		return nil, fmt.Errorf("marshal: invalid syscall status %d", uint8(s))
	}
	return []byte(`"` + tok + `"`), nil
}

// UnmarshalJSON decodes a status token.
func (s *SyscallStatus) UnmarshalJSON(b []byte) error {
	str := string(b)
	for val, tok := range syscallStatusTokens {
		if str == `"`+tok+`"` {
			*s = val
			return nil
		}
	}
	return fmt.Errorf("unmarshal: unknown syscall status %s", str)
}

// Mark returns the compact Table I cell mark.
func (s SyscallStatus) Mark() string {
	switch s {
	case StatusNotObserved:
		return ""
	case StatusObserved:
		return "·"
	case StatusUntriggered:
		return "?"
	case StatusInvalidCandidate:
		return "±"
	case StatusFalsePositive:
		return "✗"
	case StatusUsable:
		return "⊕"
	default:
		return "?"
	}
}

// Candidate is one corruptible pointer argument observed at a syscall.
type Candidate struct {
	Syscall    string `json:"syscall"`
	Num        uint64 `json:"num"`
	ArgIndex   int    `json:"arg_index"`
	Provenance uint64 `json:"provenance"` // memory address the pointer value was loaded from
	TaintMask  uint64 `json:"taint_mask"` // network-input taint labels on the pointer value
	Count      int    `json:"count"`      // times observed
}

// Finding is a validated candidate.
type Finding struct {
	Candidate
	Status SyscallStatus `json:"status"`
	Detail string        `json:"detail,omitempty"`
}

// SyscallReport is the per-server Table I result.
type SyscallReport struct {
	// Schema versions the report's wire format (WireSchemaV1).
	Schema string `json:"schema"`
	Server string `json:"server"`
	// Status holds the final per-syscall classification for every
	// EFAULT-capable syscall.
	Status map[string]SyscallStatus `json:"status"`
	// Findings holds every validated candidate with detail.
	Findings []Finding `json:"findings,omitempty"`
	// ObservedOnly lists EFAULT-capable syscalls that ran without any
	// corruptible pointer.
	ObservedOnly []string `json:"observed_only,omitempty"`
	// Provenance holds one evidence chain per finding (taint nomination →
	// validation verdict), keyed "<syscall>/arg<k>". Exported via JSON only;
	// table formatters never read it.
	Provenance []PrimitiveProvenance `json:"provenance,omitempty"`
	// Stats is the run's observability record. It never feeds table
	// rendering, so report formatting stays byte-identical.
	Stats *metrics.RunStats `json:"stats,omitempty"`
	// Degraded lists jobs dropped after exhausting their retry budget;
	// empty unless a fault plan or retry budget is configured.
	Degraded []Degraded `json:"degraded,omitempty"`
}

// Usable returns the names of syscalls classified usable.
func (r *SyscallReport) Usable() []string {
	var out []string
	for name, st := range r.Status {
		if st == StatusUsable {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// SyscallAnalyzer drives the Linux pipeline for one or more servers.
type SyscallAnalyzer struct {
	// Seed fixes ASLR so provenance addresses stay valid between the
	// observation run and validation replays.
	Seed int64
	// InvalidAddr overrides the corruption value (default
	// InvalidProbeAddr).
	InvalidAddr uint64
	// Workers bounds the fan-out of AnalyzeAll (per server) and of the
	// validation replays within one Analyze (per candidate); <= 0 selects
	// GOMAXPROCS.
	Workers int
	// Progress receives live stage events (taint → candidate → validate).
	// When AnalyzeAll fans servers out, events from concurrent runs
	// interleave; the callback must be safe for concurrent use.
	Progress func(metrics.StageEvent)
	// Sinks receive each run's live events and final RunStats.
	Sinks []metrics.Sink
	// FaultPlan, when non-nil, injects deterministic failures into the
	// run's VM, kernel and pool-job sites (chaos mode).
	FaultPlan *faultinject.Plan
	// Retries bounds per-job re-runs after a transient failure. Setting
	// Retries (or FaultPlan) switches failed jobs from aborting the run
	// to degrading: they are dropped and recorded in Report.Degraded.
	Retries int
	// StageTimeout bounds each fanned-out stage; zero means no limit. A
	// timeout cancels the stage and surfaces as a context error.
	StageTimeout time.Duration
	// Cache, when non-nil, persists validation outcomes across runs,
	// keyed by server content and candidate identity (see internal/cas).
	// Ignored while a FaultPlan is attached: chaos runs must neither
	// read nor write entries shared with clean runs.
	Cache *cas.Cache
	// Profile, when non-nil, receives each run's deterministic cost
	// attribution (see internal/prof). Profiling never touches report
	// contents.
	Profile *prof.Profile
	// Detect, when non-nil, receives the run's detection inputs: the
	// benign observe phase as baseline, each validation replay's fault
	// series and per-primitive probe costs. Like Profile, it never
	// touches report rows — the rendered section rides RunStats.
	Detect *defense.Detect
}

// AnalyzeAll runs the pipeline for every server, fanning the servers out
// across the worker pool. Reports are returned in input order and each is
// identical to what a standalone Analyze(srv) would produce.
func (a *SyscallAnalyzer) AnalyzeAll(servers []*targets.Server) ([]*SyscallReport, error) {
	return a.AnalyzeAllContext(context.Background(), servers)
}

// AnalyzeAllContext is AnalyzeAll with cancellation: workers stop claiming
// servers once ctx is done and the context error is returned.
func (a *SyscallAnalyzer) AnalyzeAllContext(ctx context.Context, servers []*targets.Server) ([]*SyscallReport, error) {
	reports := make([]*SyscallReport, len(servers))
	err := runIndexed(ctx, a.Workers, len(servers), nil, func(i int) error {
		rep, err := a.AnalyzeContext(ctx, servers[i])
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}

// Analyze runs observation plus per-candidate validation for one server.
// Validation replays are independent (each builds a fresh corrupted
// environment), so they fan out across the worker pool; findings land in
// candidate order and statuses merge sequentially afterwards.
func (a *SyscallAnalyzer) Analyze(srv *targets.Server) (*SyscallReport, error) {
	return a.AnalyzeContext(context.Background(), srv)
}

// AnalyzeContext is Analyze with cancellation, checked between stages and
// before each validation replay.
func (a *SyscallAnalyzer) AnalyzeContext(ctx context.Context, srv *targets.Server) (*SyscallReport, error) {
	invalid := a.InvalidAddr
	if invalid == 0 {
		invalid = InvalidProbeAddr
	}
	col := newRunCollector("syscall", srv.Name, a.Workers, a.Progress, a.Sinks)
	rp := newRunProf(a.Profile, "syscall", srv.Name)
	rd := newRunDetect(a.Detect, "syscall", srv.Name)
	res := newResilience(srv.Name, a.FaultPlan, a.Retries, col, rp)
	rc := runCache{col: col, rp: rp}
	var srvImage []byte
	if a.FaultPlan == nil && a.Cache != nil {
		if data, merr := bin.Marshal(srv.Image); merr == nil {
			rc.c = a.Cache
			srvImage = data
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var (
		observed   map[string]bool
		candidates []Candidate
	)
	err := res.run(ctx, "observe", srv.Name, 0, func(int) error {
		o, c, err := a.observe(srv, col, rp, rd)
		if err != nil {
			return err
		}
		observed, candidates = o, c
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("observe %s: %w", srv.Name, err)
	}
	// A degraded observation run behaves like a server that never booted:
	// every EFAULT-capable syscall stays not-observed.
	if observed == nil {
		observed = make(map[string]bool)
		candidates = nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	report := &SyscallReport{
		Schema: WireSchemaV1,
		Server: srv.Name,
		Status: make(map[string]SyscallStatus),
	}
	for _, spec := range kernel.Specs() {
		if spec.CanEFAULT {
			report.Status[spec.Name] = StatusNotObserved
		}
	}
	for name := range observed {
		if _, ok := report.Status[name]; ok {
			report.Status[name] = StatusObserved
		}
	}

	findings := make([]Finding, len(candidates))
	span := col.StartStage("validate", len(candidates))
	span.NameJobs(func(i int) string {
		return fmt.Sprintf("validate/%s/arg%d", candidates[i].Syscall, candidates[i].ArgIndex)
	})
	vctx, cancel := stageCtx(ctx, a.StageTimeout)
	err = runIndexed(vctx, a.Workers, len(candidates), span, func(i int) error {
		cand := candidates[i]
		jobKey := fmt.Sprintf("%s/%d", cand.Syscall, cand.ArgIndex)
		return res.run(vctx, "validate", jobKey, i, func(int) error {
			var key cas.Key
			haveKey := false
			if rc.c != nil {
				key = validateKey(srvImage, srv.Name, a.Seed, invalid, cand)
				haveKey = true
				var ent validateEntry
				if rc.get(casFamilyValidate, key, &ent, "validate", jobKey) {
					span.Observe(ent.Cost.Clock)
					harvestVMStats(col, ent.Cost.Stats)
					harvestKernelCounts(col, ent.Cost.Kernel)
					profileValidate(rp, jobKey, ent.Cost)
					detectValidate(rd, cand, ent.Cost)
					findings[i] = ent.Finding
					return nil
				}
			}
			finding, cost, err := a.validate(srv, cand, invalid)
			if err != nil {
				return fmt.Errorf("validate %s/%s: %w", srv.Name, cand.Syscall, err)
			}
			// The replay's virtual clock is the job's deterministic cost.
			span.Observe(cost.Clock)
			harvestVMStats(col, cost.Stats)
			harvestKernelCounts(col, cost.Kernel)
			profileValidate(rp, jobKey, cost)
			detectValidate(rd, cand, cost)
			if haveKey {
				rc.put(casFamilyValidate, key, validateEntry{Finding: finding, Cost: cost}, "validate", jobKey)
			}
			findings[i] = finding
			return nil
		})
	})
	cancel()
	span.End()
	if err != nil {
		return nil, err
	}
	for _, finding := range findings {
		if finding.Status == 0 {
			continue // degraded slot: candidate dropped from the report
		}
		report.Findings = append(report.Findings, finding)
		if finding.Status > report.Status[finding.Syscall] {
			report.Status[finding.Syscall] = finding.Status
		}
	}

	for name, st := range report.Status {
		if st == StatusObserved {
			report.ObservedOnly = append(report.ObservedOnly, name)
		}
	}
	sort.Strings(report.ObservedOnly)
	sort.Slice(report.Findings, func(i, j int) bool {
		if report.Findings[i].Syscall != report.Findings[j].Syscall {
			return report.Findings[i].Syscall < report.Findings[j].Syscall
		}
		return report.Findings[i].ArgIndex < report.Findings[j].ArgIndex
	})
	for _, f := range report.Findings {
		report.Provenance = append(report.Provenance, PrimitiveProvenance{
			Primitive: fmt.Sprintf("%s/arg%d", f.Syscall, f.ArgIndex),
			Chain: []EvidenceStep{
				step("taint", "corruptible_pointer",
					"pointer arg %d of %s loaded from writable address %#x with taint mask %#x, observed %d time(s)",
					f.ArgIndex, f.Syscall, f.Provenance, f.TaintMask, f.Count),
				step("validate", f.Status.Token(),
					"pointer storage corrupted to %#x and suite replayed: %s", invalid, f.Detail),
			},
		})
	}
	report.Degraded = res.take()
	rd.finish(col)
	stats, err := col.Finish()
	if err != nil {
		return nil, fmt.Errorf("flush metrics %s: %w", srv.Name, err)
	}
	report.Stats = stats
	return report, nil
}

// profileValidate charges one validation replay's cost, identically for
// cold computes and warm cache replays (the entry persists the cost).
func profileValidate(rp runProf, jobKey string, cost validateCost) {
	rp.add("validate", jobKey, prof.KindClockTicks, cost.Clock)
	rp.add("validate", jobKey, prof.KindVMInstructions, cost.Stats.Instructions)
}

// detectValidate feeds one validation replay into the detection engine,
// identically for cold computes and warm cache replays: the corrupted
// invocations that returned -EFAULT are the primitive's probes, the
// replay's virtual clock their measured cost, and the kernel's bucket
// series both the row profile and part of the run-level stream.
func detectValidate(rd runDetect, cand Candidate, cost validateCost) {
	if !rd.on() {
		return
	}
	faults := cost.Kernel.EFAULTReturns
	probes := faults
	if probes == 0 {
		probes = 1
	}
	primitive := fmt.Sprintf("%s/arg%d", cand.Syscall, cand.ArgIndex)
	rd.primitive(primitive, probes, faults, cost.Clock, cost.Kernel.EFAULTBuckets)
	rd.series(cost.Kernel.EFAULTBuckets)
}

// observe runs the suite once under taint tracking, collecting observed
// EFAULT-capable syscalls and corruptible-pointer candidates. The run is
// the "taint" span; candidate distillation afterwards is "candidate".
func (a *SyscallAnalyzer) observe(srv *targets.Server, col *metrics.Collector, rp runProf, rd runDetect) (map[string]bool, []Candidate, error) {
	env, err := srv.NewEnvNoStart(a.Seed)
	if err != nil {
		return nil, nil, err
	}
	env.Proc.FaultPlan = a.FaultPlan
	env.Kern.SetFaultPlan(a.FaultPlan)

	observed := make(map[string]bool)
	candByKey := make(map[string]*Candidate)

	obs := &observationSink{onEnter: func(ev kernel.Event) {
		spec, ok := kernel.SpecFor(ev.Num)
		if !ok || !spec.CanEFAULT {
			return
		}
		observed[spec.Name] = true
		for _, pa := range spec.PtrArgs {
			reg := isa.Register(1 + pa.Index)
			prov, ok := env.Taint.RegProvenance(ev.Thread.ID, reg)
			if !ok {
				continue
			}
			perm, mapped := env.Proc.AS.PermAt(prov)
			if !mapped || perm&mem.PermWrite == 0 {
				continue
			}
			key := fmt.Sprintf("%s/%d", spec.Name, pa.Index)
			if c, dup := candByKey[key]; dup {
				c.Count++
				c.TaintMask |= env.Taint.RegTaint(ev.Thread.ID, reg)
				continue
			}
			candByKey[key] = &Candidate{
				Syscall:    spec.Name,
				Num:        spec.Num,
				ArgIndex:   pa.Index,
				Provenance: prov,
				TaintMask:  env.Taint.RegTaint(ev.Thread.ID, reg),
				Count:      1,
			}
		}
	}}
	env.Kern.SetObserver(obs)

	span := col.StartStage("taint", 0)
	if err := env.Boot(); err != nil {
		// A server that cannot even boot yields an empty observation.
		span.Observe(env.Proc.Clock)
		span.End()
		counts := env.Kern.Counts()
		harvestVMStats(col, env.Proc.Stats)
		harvestKernelCounts(col, counts)
		rp.add("taint", "suite", prof.KindClockTicks, env.Proc.Clock)
		rp.add("taint", "suite", prof.KindVMInstructions, env.Proc.Stats.Instructions)
		rd.baseline("observe", counts.EFAULTReturns, env.Proc.Clock, counts.EFAULTBuckets)
		rd.series(counts.EFAULTBuckets)
		return observed, nil, nil
	}
	suiteErr := srv.Suite(env)
	span.Observe(env.Proc.Clock)
	span.End()
	counts := env.Kern.Counts()
	harvestVMStats(col, env.Proc.Stats)
	harvestKernelCounts(col, counts)
	rp.add("taint", "suite", prof.KindClockTicks, env.Proc.Clock)
	rp.add("taint", "suite", prof.KindVMInstructions, env.Proc.Stats.Instructions)
	// The uncorrupted suite run is the pipeline's benign baseline: what
	// the defender sees when no one is probing.
	rd.baseline("observe", counts.EFAULTReturns, env.Proc.Clock, counts.EFAULTBuckets)
	rd.series(counts.EFAULTBuckets)
	if suiteErr != nil {
		return nil, nil, suiteErr
	}

	span = col.StartStage("candidate", len(candByKey))
	keys := make([]string, 0, len(candByKey))
	for k := range candByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Candidate, 0, len(keys))
	for _, k := range keys {
		out = append(out, *candByKey[k])
		span.JobDone()
	}
	span.End()
	return observed, out, nil
}

// validate replays the suite with the candidate's pointer storage corrupted
// and classifies the outcome. The returned cost carries the replay's
// deterministic counters; the caller observes them, so a cache hit can
// replay the identical observations.
func (a *SyscallAnalyzer) validate(srv *targets.Server, cand Candidate, invalid uint64) (Finding, validateCost, error) {
	env, err := srv.NewEnvNoStart(a.Seed)
	if err != nil {
		return Finding{}, validateCost{}, err
	}
	env.Proc.FaultPlan = a.FaultPlan
	env.Kern.SetFaultPlan(a.FaultPlan)
	cost := func() validateCost {
		return validateCost{Clock: env.Proc.Clock, Stats: env.Proc.Stats, Kernel: env.Kern.Counts()}
	}

	// Corrupt the stored pointer now (covers load-time relocations) and
	// after every subsequent program store to it (covers runtime
	// initialization), exactly what an attacker's write primitive does.
	cor := &corruptingFlow{
		inner:  env.Proc.Flow,
		as:     env.Proc.AS,
		target: cand.Provenance,
		value:  invalid,
	}
	env.Proc.Flow = cor
	cor.corrupt()

	// Track whether the corrupted pointer actually reached the syscall's
	// EFAULT path. Once it has, the probe is complete and the attacker
	// stops writing — the corruptor disarms, so storage slots recycled
	// for later connections behave normally again.
	efaultSeen := false
	env.Kern.SetObserver(&observationSink{onExit: func(ev kernel.Event, ret uint64) {
		if ev.Num == cand.Num && int64(ret) == -int64(kernel.EFAULT) {
			efaultSeen = true
			cor.disarm()
		}
	}})

	finding := Finding{Candidate: cand}
	if err := env.Boot(); err != nil {
		finding.Status = StatusInvalidCandidate
		finding.Detail = fmt.Sprintf("server crashed during startup: %v", env.Proc.Crash)
		return finding, cost(), nil
	}
	_ = srv.Suite(env)

	switch {
	case env.Proc.State == vm.ProcCrashed:
		finding.Status = StatusInvalidCandidate
		finding.Detail = fmt.Sprintf("crash: %v", env.Proc.Crash)
	case !efaultSeen:
		finding.Status = StatusUntriggered
		finding.Detail = "corrupted pointer never reached the syscall"
	case srv.ServiceCheck != nil && !srv.ServiceCheck(env):
		finding.Status = StatusFalsePositive
		finding.Detail = "server alive but no longer serves connections"
	default:
		finding.Status = StatusUsable
		finding.Detail = "EFAULT returned, server alive and serving"
	}
	return finding, cost(), nil
}

// observationSink adapts closures to kernel.Observer.
type observationSink struct {
	onEnter func(kernel.Event)
	onExit  func(kernel.Event, uint64)
}

func (o *observationSink) SyscallEnter(ev kernel.Event) {
	if o.onEnter != nil {
		o.onEnter(ev)
	}
}

func (o *observationSink) SyscallExit(ev kernel.Event, ret uint64) {
	if o.onExit != nil {
		o.onExit(ev, ret)
	}
}

// corruptingFlow decorates a vm.DataFlow, rewriting the 8 bytes at target
// with an invalid pointer value after every program store that touches them
// — the analysis-side emulation of the attacker's arbitrary-write primitive.
type corruptingFlow struct {
	inner    vm.DataFlow
	as       *mem.AddressSpace
	target   uint64
	value    uint64
	writes   int
	disarmed bool
}

var _ vm.DataFlow = (*corruptingFlow)(nil)

// disarm stops further corruption (the attacker's probe has completed).
func (c *corruptingFlow) disarm() { c.disarmed = true }

func (c *corruptingFlow) corrupt() {
	if c.disarmed || !c.as.Mapped(c.target) {
		return
	}
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(c.value >> (8 * i))
	}
	if err := c.as.WriteForce(c.target, buf[:]); err == nil {
		c.writes++
	}
}

// StoreMem implements vm.DataFlow.
func (c *corruptingFlow) StoreMem(tid int, src isa.Register, addr uint64, size int) {
	if c.inner != nil {
		c.inner.StoreMem(tid, src, addr, size)
	}
	if addr < c.target+8 && c.target < addr+uint64(size) {
		c.corrupt()
	}
}

// CopyRegReg implements vm.DataFlow.
func (c *corruptingFlow) CopyRegReg(tid int, dst, src isa.Register) {
	if c.inner != nil {
		c.inner.CopyRegReg(tid, dst, src)
	}
}

// SetRegImm implements vm.DataFlow.
func (c *corruptingFlow) SetRegImm(tid int, dst isa.Register) {
	if c.inner != nil {
		c.inner.SetRegImm(tid, dst)
	}
}

// CombineReg implements vm.DataFlow.
func (c *corruptingFlow) CombineReg(tid int, dst, src isa.Register) {
	if c.inner != nil {
		c.inner.CombineReg(tid, dst, src)
	}
}

// LoadMem implements vm.DataFlow.
func (c *corruptingFlow) LoadMem(tid int, dst isa.Register, addr uint64, size int) {
	if c.inner != nil {
		c.inner.LoadMem(tid, dst, addr, size)
	}
}

// ClearMem implements vm.DataFlow.
func (c *corruptingFlow) ClearMem(addr uint64, size int) {
	if c.inner != nil {
		c.inner.ClearMem(addr, size)
	}
}

// MarkMem implements vm.DataFlow.
func (c *corruptingFlow) MarkMem(label uint8, addr uint64, size int) {
	if c.inner != nil {
		c.inner.MarkMem(label, addr, size)
	}
	if addr < c.target+8 && c.target < addr+uint64(size) {
		c.corrupt()
	}
}

// RegTaint implements vm.DataFlow.
func (c *corruptingFlow) RegTaint(tid int, r isa.Register) uint64 {
	if c.inner != nil {
		return c.inner.RegTaint(tid, r)
	}
	return 0
}

// MemTaint implements vm.DataFlow.
func (c *corruptingFlow) MemTaint(addr uint64, size int) uint64 {
	if c.inner != nil {
		return c.inner.MemTaint(addr, size)
	}
	return 0
}
