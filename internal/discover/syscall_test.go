package discover

import (
	"testing"

	"crashresist/internal/targets"
)

// analyzeServer runs the full pipeline for one server.
func analyzeServer(t *testing.T, name string) *SyscallReport {
	t.Helper()
	srv, err := targets.ServerByName(name)
	if err != nil {
		t.Fatal(err)
	}
	a := &SyscallAnalyzer{Seed: 4242}
	rep, err := a.Analyze(srv)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func wantStatus(t *testing.T, rep *SyscallReport, syscall string, want SyscallStatus) {
	t.Helper()
	if got := rep.Status[syscall]; got != want {
		t.Errorf("%s/%s = %v, want %v", rep.Server, syscall, got, want)
		for _, f := range rep.Findings {
			if f.Syscall == syscall {
				t.Logf("  finding: %+v", f)
			}
		}
	}
}

func TestAnalyzeNginx(t *testing.T) {
	rep := analyzeServer(t, "nginx")
	wantStatus(t, rep, "recv", StatusUsable)
	wantStatus(t, rep, "write", StatusInvalidCandidate)
	wantStatus(t, rep, "open", StatusInvalidCandidate)
	wantStatus(t, rep, "connect", StatusInvalidCandidate)
	wantStatus(t, rep, "mkdir", StatusObserved)
	wantStatus(t, rep, "unlink", StatusObserved)
	wantStatus(t, rep, "epoll_wait", StatusObserved)
	wantStatus(t, rep, "read", StatusObserved)
	wantStatus(t, rep, "chmod", StatusNotObserved)
	wantStatus(t, rep, "symlink", StatusNotObserved)
	if got := rep.Usable(); len(got) != 1 || got[0] != "recv" {
		t.Errorf("usable = %v, want [recv]", got)
	}
}

func TestAnalyzeCherokee(t *testing.T) {
	rep := analyzeServer(t, "cherokee")
	wantStatus(t, rep, "epoll_wait", StatusUsable)
	wantStatus(t, rep, "chmod", StatusInvalidCandidate)
	wantStatus(t, rep, "recv", StatusInvalidCandidate)
	wantStatus(t, rep, "write", StatusInvalidCandidate)
	wantStatus(t, rep, "open", StatusObserved)
	// epoll_ctl shares the epoll_wait pointer's storage; once the worker
	// stalls in failing epoll_wait calls, the corrupted value never
	// reaches epoll_ctl, so the candidate is reported unconfirmed.
	wantStatus(t, rep, "epoll_ctl", StatusUntriggered)
	if got := rep.Usable(); len(got) != 1 || got[0] != "epoll_wait" {
		t.Errorf("usable = %v, want [epoll_wait]", got)
	}
}

func TestAnalyzeLighttpd(t *testing.T) {
	rep := analyzeServer(t, "lighttpd")
	wantStatus(t, rep, "read", StatusUsable)
	wantStatus(t, rep, "open", StatusInvalidCandidate)
	wantStatus(t, rep, "unlink", StatusInvalidCandidate)
	wantStatus(t, rep, "write", StatusInvalidCandidate)
	wantStatus(t, rep, "mkdir", StatusObserved)
	wantStatus(t, rep, "symlink", StatusObserved)
	wantStatus(t, rep, "epoll_wait", StatusObserved)
	if got := rep.Usable(); len(got) != 1 || got[0] != "read" {
		t.Errorf("usable = %v, want [read]", got)
	}
}

func TestAnalyzeMemcached(t *testing.T) {
	rep := analyzeServer(t, "memcached")
	wantStatus(t, rep, "read", StatusUsable)
	// The epoll_wait candidate is the paper's false positive: the naive
	// aliveness check passes, the service check exposes it.
	wantStatus(t, rep, "epoll_wait", StatusFalsePositive)
	wantStatus(t, rep, "recvfrom", StatusInvalidCandidate)
	wantStatus(t, rep, "send", StatusInvalidCandidate)
	wantStatus(t, rep, "open", StatusObserved)
	if got := rep.Usable(); len(got) != 1 || got[0] != "read" {
		t.Errorf("usable = %v, want [read]", got)
	}
}

func TestAnalyzePostgres(t *testing.T) {
	rep := analyzeServer(t, "postgresql")
	wantStatus(t, rep, "epoll_wait", StatusUsable)
	wantStatus(t, rep, "read", StatusInvalidCandidate)
	wantStatus(t, rep, "connect", StatusInvalidCandidate)
	wantStatus(t, rep, "sendmsg", StatusInvalidCandidate)
	wantStatus(t, rep, "open", StatusObserved)
	wantStatus(t, rep, "unlink", StatusObserved)
	if got := rep.Usable(); len(got) != 1 || got[0] != "epoll_wait" {
		t.Errorf("usable = %v, want [epoll_wait]", got)
	}
}

func TestReportDetails(t *testing.T) {
	rep := analyzeServer(t, "nginx")
	if rep.Server != "nginx" {
		t.Errorf("server = %q", rep.Server)
	}
	// Every finding must carry a provenance address and detail.
	for _, f := range rep.Findings {
		if f.Provenance == 0 {
			t.Errorf("finding %s has zero provenance", f.Syscall)
		}
		if f.Detail == "" {
			t.Errorf("finding %s has no detail", f.Syscall)
		}
		if f.Count <= 0 {
			t.Errorf("finding %s has count %d", f.Syscall, f.Count)
		}
	}
	// Status marks render distinctly.
	seen := map[string]bool{}
	for _, st := range []SyscallStatus{
		StatusNotObserved, StatusObserved, StatusUntriggered,
		StatusInvalidCandidate, StatusFalsePositive, StatusUsable,
	} {
		if st.String() == "status?" {
			t.Errorf("status %d unnamed", st)
		}
		if seen[st.Mark()] && st.Mark() != "" {
			t.Errorf("duplicate mark %q", st.Mark())
		}
		seen[st.Mark()] = true
	}
}

func TestAnalyzerDeterministic(t *testing.T) {
	a := analyzeServer(t, "lighttpd")
	b := analyzeServer(t, "lighttpd")
	for name, st := range a.Status {
		if b.Status[name] != st {
			t.Errorf("nondeterministic status for %s: %v vs %v", name, st, b.Status[name])
		}
	}
}
