package discover

import (
	"context"
	"fmt"
	"sort"
	"time"

	"crashresist/internal/bin"
	"crashresist/internal/cas"
	"crashresist/internal/defense"
	"crashresist/internal/faultinject"
	"crashresist/internal/metrics"
	"crashresist/internal/prof"
	"crashresist/internal/seh"
	"crashresist/internal/sym"
	"crashresist/internal/targets"
	"crashresist/internal/trace"
)

// ModuleSEH is one row of Tables II/III for a loaded module.
type ModuleSEH struct {
	Module string `json:"module"`
	// Table II columns.
	Handlers   int `json:"handlers"`    // guarded code locations before symbolic execution
	AVHandlers int `json:"av_handlers"` // guarded by AV-accepting filters or catch-all, after SE
	OnPath     int `json:"on_path"`     // of the accepting set, seen on the browse path
	// Table III columns.
	Filters        int `json:"filters"`         // unique filter functions before SE
	AVFilters      int `json:"av_filters"`      // accepting access violations, after SE
	UnknownFilters int `json:"unknown_filters"` // outside the symbolic executor's fragment (manual)
	CatchAll       int `json:"catch_all"`       // catch-all scope entries (not filter functions)
}

// SEHCandidate is one crash-resistant handler candidate on the execution
// path — the set handed to manual vetting in the paper.
type SEHCandidate struct {
	Module   string `json:"module"`
	Scope    int    `json:"scope"`
	FuncName string `json:"func_name"`
	CatchAll bool   `json:"catch_all"`
	Hits     uint64 `json:"hits"`
}

// SEHReport is the exception-handler pipeline result for one browser.
type SEHReport struct {
	// Schema versions the report's wire format (WireSchemaV1).
	Schema  string      `json:"schema"`
	Browser string      `json:"browser"`
	Modules []ModuleSEH `json:"modules,omitempty"`
	// Totals across all modules.
	TotalModules    int `json:"total_modules"`
	TotalHandlers   int `json:"total_handlers"`
	TotalFilters    int `json:"total_filters"`
	TotalAVFilters  int `json:"total_av_filters"`
	TotalAVHandlers int `json:"total_av_handlers"`
	TotalOnPath     int `json:"total_on_path"`
	// TriggerEvents counts executions of accepting guarded locations
	// during the browse run (736,512 in the paper).
	TriggerEvents uint64 `json:"trigger_events"`
	// Candidates lists the on-path accepting handlers.
	Candidates []SEHCandidate `json:"candidates,omitempty"`
	// Provenance holds one evidence chain per candidate (scope-table
	// extraction → filter symex verdict → coverage cross-ref), keyed
	// "<module>/scope-<index>". Exported via JSON only; table formatters
	// never read it.
	Provenance []PrimitiveProvenance `json:"provenance,omitempty"`
	// UnknownFilterModules lists modules whose filters need manual
	// vetting (the §VII-A post-update IE case).
	UnknownFilterModules []string `json:"unknown_filter_modules,omitempty"`
	// VEHRegistered reports run-time vectored handlers present in the
	// process that the scope-table pipeline cannot attribute to any
	// static metadata (the §VII-A Firefox miss).
	VEHRegistered int `json:"veh_registered"`
	// VEHFindings is the §VII-A *extension* the paper proposes: static
	// discovery of AddVectoredExceptionHandler registrations with
	// handler-argument recovery and symbolic classification.
	VEHFindings []VEHFinding `json:"veh_findings,omitempty"`
	// Stats is the run's observability record (never rendered in tables).
	Stats *metrics.RunStats `json:"stats,omitempty"`
	// Degraded lists jobs dropped after exhausting their retry budget;
	// empty unless a fault plan or retry budget is configured.
	Degraded []Degraded `json:"degraded,omitempty"`
}

// Row returns the module row by name.
func (r *SEHReport) Row(module string) (ModuleSEH, bool) {
	for _, m := range r.Modules {
		if m.Module == module {
			return m, true
		}
	}
	return ModuleSEH{}, false
}

// SEHAnalyzer drives the exception-handler pipeline against a browser.
type SEHAnalyzer struct {
	Seed int64
	// Workers bounds the per-DLL fan-out; <= 0 selects GOMAXPROCS.
	Workers int
	// Progress receives live stage events (browse → extract → symex →
	// cross-ref). Must be safe for concurrent use.
	Progress func(metrics.StageEvent)
	// Sinks receive the run's live events and final RunStats.
	Sinks []metrics.Sink
	// FaultPlan, when non-nil, injects deterministic failures into the
	// browse run, the symbolic executors and the pool-job sites.
	FaultPlan *faultinject.Plan
	// Retries bounds per-job re-runs after a transient failure; setting
	// Retries (or FaultPlan) switches failed jobs from aborting the run
	// to degrading into Report.Degraded.
	Retries int
	// StageTimeout bounds the symex fan-out; zero means no limit.
	StageTimeout time.Duration
	// Cache, when non-nil, persists per-DLL symex results across runs,
	// keyed by image content (see internal/cas). Ignored while a
	// FaultPlan is attached: chaos runs must neither read nor write
	// entries shared with clean runs.
	Cache *cas.Cache
	// Profile, when non-nil, receives the run's deterministic cost
	// attribution (see internal/prof). Profiling never touches report
	// contents.
	Profile *prof.Profile
	// Detect, when non-nil, receives the run's detection inputs: the
	// instrumented browse's exception log as benign baseline and each
	// on-path candidate's trigger census as a detectability row. Never
	// touches report rows — the rendered section rides RunStats.
	Detect *defense.Detect

	// CacheStats holds the symex cache counters of the last Analyze call.
	CacheStats sym.CacheStats
}

// sehSymexResult is one DLL's filter-classification output, produced by a
// worker and consumed by the sequential cross-ref stage.
type sehSymexResult struct {
	verdicts       map[uint32]sym.Verdict
	avFilters      int
	unknownFilters int
	// steps sums the symbolic steps across the module's filter analyses —
	// the module job's deterministic cost. The shared cache replays stored
	// Reports including their Steps, so the sum is identical no matter
	// which worker paid for the cache miss.
	steps uint64
	// classSteps breaks steps down by filter class (see filterClass) for
	// cost attribution: the corpus spreads its thousands of filters evenly
	// across modules, so the class axis — not the module axis — is where a
	// hot spot can show.
	classSteps map[string]uint64
	// pure reports that every filter analysis in the module was pure —
	// the license for persisting the result beyond the process.
	pure bool
}

// Analyze extracts every module's scope table, symbolically executes each
// unique filter, runs an instrumented browse to collect coverage, and
// cross-references the two.
func (a *SEHAnalyzer) Analyze(br *targets.Browser) (*SEHReport, error) {
	return a.AnalyzeContext(context.Background(), br)
}

// AnalyzeContext is Analyze with cancellation. The pipeline runs four
// stages — browse, extract, symex, cross-ref. Only symex fans out: every
// worker owns a private process environment and symbolic executor, sharing
// only the memoizing filter cache, and results land in an index-addressed
// slice keyed by module load order, so the report is byte-identical for
// any worker count.
func (a *SEHAnalyzer) AnalyzeContext(ctx context.Context, br *targets.Browser) (*SEHReport, error) {
	col := newRunCollector("seh", br.Name, a.Workers, a.Progress, a.Sinks)
	rp := newRunProf(a.Profile, "seh", br.Name)
	rd := newRunDetect(a.Detect, "seh", br.Name)
	res := newResilience(br.Name, a.FaultPlan, a.Retries, col, rp)
	rc := runCache{col: col, rp: rp}
	if a.FaultPlan == nil {
		rc.c = a.Cache
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 1: instrumented browse for coverage, plus the run-time VEH
	// census and the §VII-A registration scan. Each retry rebuilds the
	// environment from scratch (same seed, same layout).
	span := col.StartStage("browse", 0)
	var (
		env  *targets.BrowserEnv
		hits map[trace.ScopeKey]uint64
	)
	err := res.run(ctx, "browse", br.Name, 0, func(int) error {
		e, err := br.NewEnv(a.Seed)
		if err != nil {
			return err
		}
		e.Proc.FaultPlan = a.FaultPlan
		rec := trace.NewRecorder()
		rec.EnableCoverage()
		if rd.on() {
			rec.EnableExceptionLog()
		}
		rec.Attach(e.Proc)

		if err := e.Start(); err != nil {
			return err
		}
		browseErr := e.Browse()
		span.Observe(e.Proc.Clock)
		harvestVMStats(col, e.Proc.Stats)
		rp.add("browse", "browse", prof.KindClockTicks, e.Proc.Clock)
		rp.add("browse", "browse", prof.KindVMInstructions, e.Proc.Stats.Instructions)
		if browseErr != nil {
			return browseErr
		}
		env, hits = e, rec.ScopeHits()
		if rd.on() {
			series := defense.BucketExc(rec.Exceptions())
			var faults uint64
			for _, n := range series {
				faults += n
			}
			rd.baseline("browse", faults, e.Proc.Clock, series)
			rd.series(series)
		}
		return nil
	})
	span.End()
	if err != nil {
		return nil, fmt.Errorf("browse: %w", err)
	}

	report := &SEHReport{Schema: WireSchemaV1, Browser: br.Name}

	// The paper's per-DLL analysis covers libraries; the executable
	// itself carries no scope tables here. A degraded browse leaves no
	// environment: the report keeps its totals at zero and records the
	// loss in Degraded.
	var libs []string
	if env != nil {
		report.VEHRegistered = len(env.Proc.VEHandlers())
		report.VEHFindings = VEHScan(env.Proc)
		for _, mod := range env.Proc.Modules() {
			if mod.Image.Kind == bin.KindLibrary {
				libs = append(libs, mod.Image.Name)
			}
		}
	}
	report.TotalModules = len(libs)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 2: static scope-table extraction, sequential on the main
	// environment's modules. Modules without guarded locations are
	// analyzed but contribute no row and no symex work.
	invs := make([]seh.ModuleInventory, len(libs))
	span = col.StartStage("extract", len(libs))
	var work []int // indices into libs with at least one handler
	err = runIndexed(ctx, 1, len(libs), span, func(i int) error {
		mod, ok := env.Proc.Module(libs[i])
		if !ok {
			return fmt.Errorf("module %s missing from environment", libs[i])
		}
		invs[i] = seh.Extract(mod)
		return nil
	})
	span.End()
	if err != nil {
		return nil, err
	}
	for i := range invs {
		if len(invs[i].Handlers) > 0 {
			work = append(work, i)
		}
	}

	// Stage 3: symbolic execution of each unique filter, fanned out per
	// DLL with private worker environments and a shared memoizing cache.
	cache := sym.NewCache()
	symex := make([]sehSymexResult, len(libs))
	symexOK := make([]bool, len(libs))
	span = col.StartStage("symex", len(work))
	span.NameJobs(func(w int) string { return "symex/" + libs[work[w]] })
	sctx, cancel := stageCtx(ctx, a.StageTimeout)
	err = runSharded(sctx, a.Workers, len(work), span,
		func() (*sym.Executor, error) {
			wenv, err := br.NewEnv(a.Seed)
			if err != nil {
				return nil, err
			}
			exec := sym.NewExecutor(wenv.Proc)
			exec.Cache = cache
			exec.FaultPlan = a.FaultPlan
			return exec, nil
		},
		func(exec *sym.Executor, w int) error {
			i := work[w]
			return res.run(sctx, "symex", libs[i], i, func(attempt int) error {
				exec.FaultAttempt = attempt
				mod, ok := exec.Proc().Module(libs[i])
				if !ok {
					return fmt.Errorf("module %s missing from worker environment", libs[i])
				}
				var key cas.Key
				haveKey := false
				if rc.c != nil {
					key, haveKey = sehModuleKey(mod.Image)
					var ent sehSymexEntry
					if haveKey && rc.get(casFamilySEH, key, &ent, "symex", libs[i]) {
						sx := ent.result()
						span.Observe(sx.steps)
						profileSymex(rp, libs[i], sx)
						symex[i] = sx
						symexOK[i] = true
						return nil
					}
				}
				sx, err := classifyModuleFilters(exec, mod, invs[i])
				if err != nil {
					return err
				}
				if haveKey && sx.pure {
					rc.put(casFamilySEH, key, sehEntryOf(sx), "symex", libs[i])
				}
				span.Observe(sx.steps)
				profileSymex(rp, libs[i], sx)
				symex[i] = sx
				symexOK[i] = true
				return nil
			})
		})
	cancel()
	span.End()
	if err != nil {
		return nil, err
	}
	a.CacheStats = cache.Stats()
	harvestCacheStats(col, a.CacheStats)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Stage 4: cross-reference accepting handlers with browse coverage,
	// sequentially in module load order.
	span = col.StartStage("cross-ref", len(work))
	for _, i := range work {
		if !symexOK[i] {
			continue // degraded module: no row, recorded in Degraded
		}
		row, cands, triggers := crossRefModuleSEH(libs[i], invs[i], symex[i], hits)
		report.Modules = append(report.Modules, row)
		report.Candidates = append(report.Candidates, cands...)
		report.TriggerEvents += triggers
		if row.UnknownFilters > 0 {
			report.UnknownFilterModules = append(report.UnknownFilterModules, row.Module)
		}
		report.TotalHandlers += row.Handlers
		report.TotalFilters += row.Filters
		report.TotalAVFilters += row.AVFilters
		report.TotalAVHandlers += row.AVHandlers
		report.TotalOnPath += row.OnPath
		span.JobDone()
	}
	span.End()

	sort.Slice(report.Candidates, func(i, j int) bool {
		if report.Candidates[i].Module != report.Candidates[j].Module {
			return report.Candidates[i].Module < report.Candidates[j].Module
		}
		return report.Candidates[i].Scope < report.Candidates[j].Scope
	})
	sort.Strings(report.UnknownFilterModules)

	// Evidence chains, one per candidate, in candidate order (so provenance
	// ordering follows the sorted rows, not module load order).
	invByModule := make(map[string]seh.ModuleInventory, len(work))
	sxByModule := make(map[string]sehSymexResult, len(work))
	for _, i := range work {
		if symexOK[i] {
			invByModule[libs[i]] = invs[i]
			sxByModule[libs[i]] = symex[i]
		}
	}
	for _, c := range report.Candidates {
		var handler seh.Handler
		for _, h := range invByModule[c.Module].Handlers {
			if h.Index == c.Scope {
				handler = h
				break
			}
		}
		extract := step("extract", "guarded_location",
			"scope entry %d of %s guards %s", c.Scope, c.Module, c.FuncName)
		var symexStep EvidenceStep
		if c.CatchAll {
			symexStep = step("symex", "catch_all",
				"catch-all scope entry: no filter, every exception class is accepted")
		} else {
			verdict := sxByModule[c.Module].verdicts[handler.Entry.Filter]
			symexStep = step("symex", verdict.Token(),
				"filter at offset %#x classified %s by symbolic execution against the AV code",
				handler.Entry.Filter, verdict)
		}
		report.Provenance = append(report.Provenance, PrimitiveProvenance{
			Primitive: fmt.Sprintf("%s/scope-%d", c.Module, c.Scope),
			Chain: []EvidenceStep{
				extract,
				symexStep,
				step("crossref", "on_path",
					"guarded location triggered %d time(s) during the instrumented browse", c.Hits),
			},
		})
	}
	// Detectability rows: each on-path candidate, driven as an oracle,
	// raises one absorbed AV per probe; the browse-measured trigger census
	// is the row's probe loop.
	if rd.on() && env != nil {
		for _, c := range report.Candidates {
			rd.primitive(fmt.Sprintf("%s/scope-%d", c.Module, c.Scope),
				c.Hits, c.Hits, env.Proc.Clock, nil)
		}
	}
	report.Degraded = res.take()
	rd.finish(col)
	stats, err := col.Finish()
	if err != nil {
		return nil, fmt.Errorf("flush metrics %s: %w", br.Name, err)
	}
	report.Stats = stats
	return report, nil
}

// classifyModuleFilters symbolically executes each unique filter of one
// module. It reads only the module, the inventory and the executor's own
// process, so module jobs are independent. With a fault plan attached to
// the executor an analysis may fail with an injected error, aborting the
// module so the whole unit can retry or degrade atomically.
func classifyModuleFilters(exec *sym.Executor, mod *bin.Module, inv seh.ModuleInventory) (sehSymexResult, error) {
	res := sehSymexResult{verdicts: make(map[uint32]sym.Verdict, len(inv.Filters)), pure: true}
	if len(inv.Filters) > 0 {
		res.classSteps = make(map[string]uint64, 3)
	}
	for _, f := range inv.Filters {
		rep, err := exec.TryAnalyzeFilterIn(mod, f)
		if err != nil {
			return sehSymexResult{}, err
		}
		if !exec.LastAnalysisPure() {
			res.pure = false
		}
		res.steps += uint64(rep.Steps)
		res.classSteps[filterClass(rep.Verdict)] += uint64(rep.Steps)
		res.verdicts[f] = rep.Verdict
		switch rep.Verdict {
		case sym.VerdictAccepts:
			res.avFilters++
		case sym.VerdictUnknown:
			res.unknownFilters++
		}
	}
	return res, nil
}

// filterClass names the cost-attribution unit for one filter analysis: its
// verdict class. The corpus builds thousands of filters from a handful of
// idioms spread evenly over the modules, so per-module (or per-filter)
// attribution is flat noise; the class axis is where symbolic-execution
// cost genuinely concentrates. The module stays visible as the profile's
// sub-frame.
func filterClass(v sym.Verdict) string {
	return v.ProfileClass()
}

// profileSymex charges one module job's symbolic steps to its filter
// classes. Cold computes and warm cache replays carry the same breakdown
// (sehSymexEntry persists it), so the charges agree in both directions.
func profileSymex(rp runProf, module string, sx sehSymexResult) {
	for class, n := range sx.classSteps {
		rp.addSub("symex", class, module, prof.KindSymexSteps, n)
	}
}

// crossRefModuleSEH builds one module's table row from its inventory,
// filter verdicts and the browse coverage map.
func crossRefModuleSEH(module string, inv seh.ModuleInventory, sx sehSymexResult, hits map[trace.ScopeKey]uint64) (ModuleSEH, []SEHCandidate, uint64) {
	row := ModuleSEH{
		Module:         module,
		Handlers:       len(inv.Handlers),
		Filters:        len(inv.Filters),
		AVFilters:      sx.avFilters,
		UnknownFilters: sx.unknownFilters,
	}
	var (
		cands    []SEHCandidate
		triggers uint64
	)
	for _, h := range inv.Handlers {
		accepting := false
		if h.IsCatchAll() {
			row.CatchAll++
			accepting = true
		} else if sx.verdicts[h.Entry.Filter] == sym.VerdictAccepts {
			accepting = true
		}
		if !accepting {
			continue
		}
		row.AVHandlers++
		key := trace.ScopeKey{Module: module, Index: h.Index}
		if n := hits[key]; n > 0 {
			row.OnPath++
			triggers += n
			cands = append(cands, SEHCandidate{
				Module:   module,
				Scope:    h.Index,
				FuncName: h.FuncName,
				CatchAll: h.IsCatchAll(),
				Hits:     n,
			})
		}
	}
	return row, cands, triggers
}

// PriorWorkFindings reproduces §VII-A: whether the pipeline rediscovers the
// previously published primitives.
type PriorWorkFindings struct {
	// IECatchAllFound: the jscript9 MUTX::Enter catch-all scope entry is
	// among the accepting candidates.
	IECatchAllFound bool `json:"ie_catch_all_found"`
	// IEPostUpdateNeedsManual: the configuration-dependent filter calls
	// another function, so symbolic execution reports it unknown.
	IEPostUpdateNeedsManual bool `json:"ie_post_update_needs_manual"`
	// FirefoxVEHMissed: a run-time vectored handler exists in the
	// process but no scope-table candidate corresponds to it.
	FirefoxVEHMissed bool `json:"firefox_veh_missed"`
	// FirefoxVEHFoundByExtension: the §VII-A extension (static scanning
	// for AddVectoredExceptionHandler call sites) recovers the handler
	// and classifies it as resolving access violations.
	FirefoxVEHFoundByExtension bool `json:"firefox_veh_found_by_extension"`
}

// PriorWork inspects a report for the §VII-A verification cases.
func PriorWork(rep *SEHReport) PriorWorkFindings {
	var out PriorWorkFindings
	for _, c := range rep.Candidates {
		if c.Module == "jscript9.dll" && c.CatchAll && c.FuncName == "mutx_enter" {
			out.IECatchAllFound = true
		}
	}
	for _, m := range rep.UnknownFilterModules {
		if m == "jscript9.dll" {
			out.IEPostUpdateNeedsManual = true
		}
	}
	out.FirefoxVEHMissed = rep.VEHRegistered > 0
	for _, f := range rep.VEHFindings {
		if f.Resolved && f.Verdict == sym.VerdictAccepts {
			out.FirefoxVEHFoundByExtension = true
		}
	}
	return out
}
