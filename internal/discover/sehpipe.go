package discover

import (
	"fmt"
	"sort"

	"crashresist/internal/bin"
	"crashresist/internal/seh"
	"crashresist/internal/sym"
	"crashresist/internal/targets"
	"crashresist/internal/trace"
)

// ModuleSEH is one row of Tables II/III for a loaded module.
type ModuleSEH struct {
	Module string
	// Table II columns.
	Handlers   int // guarded code locations before symbolic execution
	AVHandlers int // guarded by AV-accepting filters or catch-all, after SE
	OnPath     int // of the accepting set, seen on the browse path
	// Table III columns.
	Filters        int // unique filter functions before SE
	AVFilters      int // accepting access violations, after SE
	UnknownFilters int // outside the symbolic executor's fragment (manual)
	CatchAll       int // catch-all scope entries (not filter functions)
}

// SEHCandidate is one crash-resistant handler candidate on the execution
// path — the set handed to manual vetting in the paper.
type SEHCandidate struct {
	Module   string
	Scope    int
	FuncName string
	CatchAll bool
	Hits     uint64
}

// SEHReport is the exception-handler pipeline result for one browser.
type SEHReport struct {
	Browser string
	Modules []ModuleSEH
	// Totals across all modules.
	TotalModules    int
	TotalHandlers   int
	TotalFilters    int
	TotalAVFilters  int
	TotalAVHandlers int
	TotalOnPath     int
	// TriggerEvents counts executions of accepting guarded locations
	// during the browse run (736,512 in the paper).
	TriggerEvents uint64
	// Candidates lists the on-path accepting handlers.
	Candidates []SEHCandidate
	// UnknownFilterModules lists modules whose filters need manual
	// vetting (the §VII-A post-update IE case).
	UnknownFilterModules []string
	// VEHRegistered reports run-time vectored handlers present in the
	// process that the scope-table pipeline cannot attribute to any
	// static metadata (the §VII-A Firefox miss).
	VEHRegistered int
	// VEHFindings is the §VII-A *extension* the paper proposes: static
	// discovery of AddVectoredExceptionHandler registrations with
	// handler-argument recovery and symbolic classification.
	VEHFindings []VEHFinding
}

// Row returns the module row by name.
func (r *SEHReport) Row(module string) (ModuleSEH, bool) {
	for _, m := range r.Modules {
		if m.Module == module {
			return m, true
		}
	}
	return ModuleSEH{}, false
}

// SEHAnalyzer drives the exception-handler pipeline against a browser.
type SEHAnalyzer struct {
	Seed int64
	// Workers bounds the per-DLL fan-out; <= 0 selects GOMAXPROCS.
	Workers int

	// CacheStats holds the symex cache counters of the last Analyze call.
	CacheStats sym.CacheStats
}

// sehModuleResult is one DLL's contribution, produced by a worker and
// merged in module load order so the report is scheduling-independent.
type sehModuleResult struct {
	row      ModuleSEH
	hasRow   bool
	cands    []SEHCandidate
	unknown  bool
	triggers uint64
}

// Analyze extracts every module's scope table, symbolically executes each
// unique filter, runs an instrumented browse to collect coverage, and
// cross-references the two. The per-DLL analysis fans out across a worker
// pool; every worker owns a private process environment and symbolic
// executor, sharing only the read-only coverage map and the memoizing
// filter cache. Results land in an index-addressed slice keyed by module
// load order, so the report is byte-identical for any worker count.
func (a *SEHAnalyzer) Analyze(br *targets.Browser) (*SEHReport, error) {
	env, err := br.NewEnv(a.Seed)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	rec.EnableCoverage()
	rec.Attach(env.Proc)

	if err := env.Start(); err != nil {
		return nil, err
	}
	if err := env.Browse(); err != nil {
		return nil, fmt.Errorf("browse: %w", err)
	}
	hits := rec.ScopeHits()

	report := &SEHReport{Browser: br.Name, VEHRegistered: len(env.Proc.VEHandlers())}
	report.VEHFindings = VEHScan(env.Proc)

	// The paper's per-DLL analysis covers libraries; the executable
	// itself carries no scope tables here.
	var libs []string
	for _, mod := range env.Proc.Modules() {
		if mod.Image.Kind == bin.KindLibrary {
			libs = append(libs, mod.Image.Name)
		}
	}
	report.TotalModules = len(libs)

	cache := sym.NewCache()
	results := make([]sehModuleResult, len(libs))
	err = runSharded(a.Workers, len(libs),
		func() (*sym.Executor, error) {
			wenv, err := br.NewEnv(a.Seed)
			if err != nil {
				return nil, err
			}
			exec := sym.NewExecutor(wenv.Proc)
			exec.Cache = cache
			return exec, nil
		},
		func(exec *sym.Executor, i int) error {
			mod, ok := exec.Proc().Module(libs[i])
			if !ok {
				return fmt.Errorf("module %s missing from worker environment", libs[i])
			}
			results[i] = analyzeModuleSEH(exec, mod, hits)
			return nil
		})
	if err != nil {
		return nil, err
	}
	a.CacheStats = cache.Stats()

	for _, res := range results {
		if !res.hasRow {
			continue
		}
		row := res.row
		report.Modules = append(report.Modules, row)
		report.Candidates = append(report.Candidates, res.cands...)
		report.TriggerEvents += res.triggers
		if res.unknown {
			report.UnknownFilterModules = append(report.UnknownFilterModules, row.Module)
		}
		report.TotalHandlers += row.Handlers
		report.TotalFilters += row.Filters
		report.TotalAVFilters += row.AVFilters
		report.TotalAVHandlers += row.AVHandlers
		report.TotalOnPath += row.OnPath
	}

	sort.Slice(report.Candidates, func(i, j int) bool {
		if report.Candidates[i].Module != report.Candidates[j].Module {
			return report.Candidates[i].Module < report.Candidates[j].Module
		}
		return report.Candidates[i].Scope < report.Candidates[j].Scope
	})
	sort.Strings(report.UnknownFilterModules)
	return report, nil
}

// analyzeModuleSEH runs the scope-table + symbolic-execution analysis for
// one module. It reads only the module, the (frozen) coverage map and the
// executor's own process, so module jobs are independent.
func analyzeModuleSEH(exec *sym.Executor, mod *bin.Module, hits map[trace.ScopeKey]uint64) sehModuleResult {
	inv := seh.Extract(mod)
	if len(inv.Handlers) == 0 {
		// Analyzed, but nothing to report.
		return sehModuleResult{}
	}

	// Classify each unique filter once.
	verdicts := make(map[uint32]sym.Verdict, len(inv.Filters))
	res := sehModuleResult{hasRow: true}
	res.row = ModuleSEH{Module: mod.Image.Name, Handlers: len(inv.Handlers), Filters: len(inv.Filters)}
	for _, f := range inv.Filters {
		rep := exec.AnalyzeFilterIn(mod, f)
		verdicts[f] = rep.Verdict
		switch rep.Verdict {
		case sym.VerdictAccepts:
			res.row.AVFilters++
		case sym.VerdictUnknown:
			res.row.UnknownFilters++
		}
	}

	for _, h := range inv.Handlers {
		accepting := false
		if h.IsCatchAll() {
			res.row.CatchAll++
			accepting = true
		} else if verdicts[h.Entry.Filter] == sym.VerdictAccepts {
			accepting = true
		}
		if !accepting {
			continue
		}
		res.row.AVHandlers++
		key := trace.ScopeKey{Module: mod.Image.Name, Index: h.Index}
		if n := hits[key]; n > 0 {
			res.row.OnPath++
			res.triggers += n
			res.cands = append(res.cands, SEHCandidate{
				Module:   mod.Image.Name,
				Scope:    h.Index,
				FuncName: h.FuncName,
				CatchAll: h.IsCatchAll(),
				Hits:     n,
			})
		}
	}
	res.unknown = res.row.UnknownFilters > 0
	return res
}

// PriorWorkFindings reproduces §VII-A: whether the pipeline rediscovers the
// previously published primitives.
type PriorWorkFindings struct {
	// IECatchAllFound: the jscript9 MUTX::Enter catch-all scope entry is
	// among the accepting candidates.
	IECatchAllFound bool
	// IEPostUpdateNeedsManual: the configuration-dependent filter calls
	// another function, so symbolic execution reports it unknown.
	IEPostUpdateNeedsManual bool
	// FirefoxVEHMissed: a run-time vectored handler exists in the
	// process but no scope-table candidate corresponds to it.
	FirefoxVEHMissed bool
	// FirefoxVEHFoundByExtension: the §VII-A extension (static scanning
	// for AddVectoredExceptionHandler call sites) recovers the handler
	// and classifies it as resolving access violations.
	FirefoxVEHFoundByExtension bool
}

// PriorWork inspects a report for the §VII-A verification cases.
func PriorWork(rep *SEHReport) PriorWorkFindings {
	var out PriorWorkFindings
	for _, c := range rep.Candidates {
		if c.Module == "jscript9.dll" && c.CatchAll && c.FuncName == "mutx_enter" {
			out.IECatchAllFound = true
		}
	}
	for _, m := range rep.UnknownFilterModules {
		if m == "jscript9.dll" {
			out.IEPostUpdateNeedsManual = true
		}
	}
	out.FirefoxVEHMissed = rep.VEHRegistered > 0
	for _, f := range rep.VEHFindings {
		if f.Resolved && f.Verdict == sym.VerdictAccepts {
			out.FirefoxVEHFoundByExtension = true
		}
	}
	return out
}
