package seh

import (
	"reflect"
	"testing"

	"crashresist/internal/bin"
)

func validScopes() []bin.ScopeEntry {
	return []bin.ScopeEntry{
		{Func: 0, Begin: 4, End: 12, Filter: 40, Target: 20},
		{Func: 24, Begin: 28, End: 36, Filter: bin.FilterCatchAll, Target: 36},
	}
}

func TestScopeTableRoundTrip(t *testing.T) {
	want := validScopes()
	raw := AppendScopeTable(nil, want)
	got, err := ParseScopeTable(raw)
	if err != nil {
		t.Fatalf("ParseScopeTable: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	if again := AppendScopeTable(nil, got); string(again) != string(raw) {
		t.Errorf("re-encoding is not canonical:\n got %x\nwant %x", again, raw)
	}
}

func TestScopeTableEmpty(t *testing.T) {
	raw := AppendScopeTable(nil, nil)
	got, err := ParseScopeTable(raw)
	if err != nil {
		t.Fatalf("ParseScopeTable(empty): %v", err)
	}
	if got != nil {
		t.Errorf("empty table parsed to %+v, want nil", got)
	}
}

func TestScopeTableRejects(t *testing.T) {
	valid := AppendScopeTable(nil, validScopes())
	cases := []struct {
		name string
		data []byte
	}{
		{"nil", nil},
		{"short count", []byte{1, 2, 3}},
		{"count exceeds input", []byte{0xff, 0xff, 0xff, 0xff}},
		{"truncated entry", valid[:len(valid)-1]},
		{"trailing byte", append(append([]byte(nil), valid...), 0)},
		{"inverted range", AppendScopeTable(nil, []bin.ScopeEntry{{Begin: 8, End: 8}})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got, err := ParseScopeTable(tc.data); err == nil {
				t.Errorf("ParseScopeTable accepted %q: %+v", tc.name, got)
			}
		})
	}
}

// FuzzScopeTableParse checks the parser is total (no panics, no
// out-of-range reads on arbitrary input) and that accepted input
// round-trips exactly through AppendScopeTable.
func FuzzScopeTableParse(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0, 0, 0, 0})
	f.Add(AppendScopeTable(nil, validScopes()))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		scopes, err := ParseScopeTable(data)
		if err != nil {
			return
		}
		reenc := AppendScopeTable(nil, scopes)
		if string(reenc) != string(data) {
			t.Fatalf("accepted input is not canonical:\n in  %x\n out %x", data, reenc)
		}
		again, err := ParseScopeTable(reenc)
		if err != nil {
			t.Fatalf("re-encoded table rejected: %v", err)
		}
		if !reflect.DeepEqual(again, scopes) {
			t.Fatalf("round trip diverged:\n first  %+v\n second %+v", scopes, again)
		}
	})
}
