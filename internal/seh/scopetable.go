package seh

// Raw scope-table section parsing. CRX images embed their scope tables in
// the image container, but the paper's pipeline starts from the PE
// .pdata/.xdata sections — a standalone length-prefixed record array. This
// file implements that raw section encoding: the same little-endian layout
// the container uses (count u32, then five u32 fields per entry), but
// self-contained, strict (no trailing bytes) and hardened against hostile
// length fields, so a section blob can be parsed without trusting the
// surrounding image. ParseScopeTable and AppendScopeTable are exact
// inverses on valid input; FuzzScopeTableParse holds them to that.

import (
	"encoding/binary"
	"fmt"

	"crashresist/internal/bin"
)

// scopeEntrySize is the wire size of one scope record: five u32 fields.
const scopeEntrySize = 5 * 4

// ParseScopeTable parses a raw scope-table section: a u32 entry count
// followed by exactly count records of (Func, Begin, End, Filter, Target),
// all little-endian. It rejects truncated input, trailing bytes, counts
// that exceed the input, and inverted guarded ranges, so any returned
// entries are structurally sound.
func ParseScopeTable(data []byte) ([]bin.ScopeEntry, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("scope table: %d bytes, want at least a count", len(data))
	}
	count := binary.LittleEndian.Uint32(data)
	rest := data[4:]
	// The count is attacker-controlled: bound it by what the input could
	// possibly encode before allocating anything.
	if uint64(count)*scopeEntrySize > uint64(len(rest)) {
		return nil, fmt.Errorf("scope table: count %d exceeds %d remaining bytes", count, len(rest))
	}
	if n := uint64(len(rest)) - uint64(count)*scopeEntrySize; n != 0 {
		return nil, fmt.Errorf("scope table: %d trailing bytes after %d entries", n, count)
	}
	if count == 0 {
		return nil, nil
	}
	out := make([]bin.ScopeEntry, count)
	for i := range out {
		rec := rest[i*scopeEntrySize:]
		out[i] = bin.ScopeEntry{
			Func:   binary.LittleEndian.Uint32(rec[0:]),
			Begin:  binary.LittleEndian.Uint32(rec[4:]),
			End:    binary.LittleEndian.Uint32(rec[8:]),
			Filter: binary.LittleEndian.Uint32(rec[12:]),
			Target: binary.LittleEndian.Uint32(rec[16:]),
		}
		if out[i].Begin >= out[i].End {
			return nil, fmt.Errorf("scope table: entry %d has inverted range [%d, %d)", i, out[i].Begin, out[i].End)
		}
	}
	return out, nil
}

// AppendScopeTable appends the raw section encoding of scopes to dst and
// returns the extended slice. The output is canonical: parsing it yields
// exactly scopes again.
func AppendScopeTable(dst []byte, scopes []bin.ScopeEntry) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(scopes)))
	for _, s := range scopes {
		dst = binary.LittleEndian.AppendUint32(dst, s.Func)
		dst = binary.LittleEndian.AppendUint32(dst, s.Begin)
		dst = binary.LittleEndian.AppendUint32(dst, s.End)
		dst = binary.LittleEndian.AppendUint32(dst, s.Filter)
		dst = binary.LittleEndian.AppendUint32(dst, s.Target)
	}
	return dst
}
