package seh

import (
	"testing"

	"crashresist/internal/asm"
	"crashresist/internal/bin"
	"crashresist/internal/isa"
	"crashresist/internal/vm"
)

func buildModule(t *testing.T) (*vm.Process, *bin.Module) {
	t.Helper()
	b := asm.NewBuilder("sample.dll", bin.KindLibrary)
	// Two guarded functions sharing one filter, one catch-all region, and
	// a second filter used once.
	b.Func("fa").
		Label("a0").Nop().Label("a1").
		Ret().
		Label("a_land").Ret().
		EndFunc()
	b.Func("fb").
		Label("b0").Nop().Label("b1").
		Label("b2").Nop().Label("b3").
		Ret().
		Label("b_land").Ret().
		EndFunc()
	b.Func("filter1").MovRI(isa.R0, 1).Ret().EndFunc()
	b.Func("filter2").MovRI(isa.R0, 0).Ret().EndFunc()
	b.Guard("fa", "a0", "a1", "filter1", "a_land")
	b.Guard("fb", "b0", "b1", "filter1", "b_land")
	b.Guard("fb", "b2", "b3", "filter2", "b_land")
	b.Guard("fb", "b2", "b3", asm.CatchAll, "b_land")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 13})
	mod, err := p.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	return p, mod
}

func TestExtract(t *testing.T) {
	_, mod := buildModule(t)
	inv := Extract(mod)

	if inv.Module != "sample.dll" {
		t.Errorf("module = %q", inv.Module)
	}
	if len(inv.Handlers) != 4 {
		t.Fatalf("handlers = %d, want 4", len(inv.Handlers))
	}
	if inv.CatchAllHandlers != 1 {
		t.Errorf("catch-all handlers = %d, want 1", inv.CatchAllHandlers)
	}
	// filter1 shared by two handlers, filter2 by one → 2 unique filters.
	if len(inv.Filters) != 2 {
		t.Errorf("unique filters = %d, want 2", len(inv.Filters))
	}
	if inv.Handlers[0].FuncName != "fa" || inv.Handlers[1].FuncName != "fb" {
		t.Errorf("func names = %q %q", inv.Handlers[0].FuncName, inv.Handlers[1].FuncName)
	}
	if !inv.Handlers[3].IsCatchAll() || inv.Handlers[0].IsCatchAll() {
		t.Error("catch-all detection wrong")
	}
}

func TestExtractEmptyModule(t *testing.T) {
	b := asm.NewBuilder("plain.dll", bin.KindLibrary)
	b.Func("f").Ret().EndFunc()
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := vm.NewProcess(vm.Config{Platform: vm.PlatformWindows, Seed: 13})
	mod, err := p.LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	inv := Extract(mod)
	if len(inv.Handlers) != 0 || len(inv.Filters) != 0 || inv.CatchAllHandlers != 0 {
		t.Errorf("empty module inventory = %+v", inv)
	}
}

func TestInventoryAndTotals(t *testing.T) {
	p, _ := buildModule(t)

	// Load a second module with one guarded region.
	b := asm.NewBuilder("second.dll", bin.KindLibrary)
	b.Func("g").Label("g0").Nop().Label("g1").Ret().EndFunc()
	b.Func("flt").MovRI(isa.R0, 1).Ret().EndFunc()
	b.Guard("g", "g0", "g1", "flt", "g1")
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadImage(img); err != nil {
		t.Fatal(err)
	}

	invs := Inventory(p)
	if len(invs) != 2 {
		t.Fatalf("inventories = %d", len(invs))
	}
	tot := Total(invs)
	if tot.Modules != 2 || tot.Handlers != 5 || tot.Filters != 3 {
		t.Errorf("totals = %+v, want {2 5 3}", tot)
	}
}
