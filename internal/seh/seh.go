// Package seh performs the static extraction half of the paper's
// exception-handler pipeline (§IV-C): it parses each loaded module's
// scope-table metadata (the CRX equivalent of the PE .pdata/.xdata sections,
// which 64-bit Windows requires every function to carry), producing the
// inventory of guarded code regions, their handlers and their unique filter
// functions that the symbolic-execution stage then narrows down.
package seh

import (
	"sort"

	"crashresist/internal/bin"
	"crashresist/internal/vm"
)

// Handler is one guarded code region (scope-table entry) in a module.
type Handler struct {
	Module string
	// Index is the scope-table index within the module.
	Index int
	Entry bin.ScopeEntry
	// FuncName is the symbol of the guarded function, if known.
	FuncName string
}

// IsCatchAll reports whether the handler catches all exception classes.
func (h Handler) IsCatchAll() bool { return h.Entry.IsCatchAll() }

// FilterKey identifies a filter function (or the catch-all marker) within a
// module.
type FilterKey struct {
	Module string
	// Offset is the filter's flat offset; bin.FilterCatchAll for
	// catch-all entries.
	Offset uint32
}

// ModuleInventory is the extraction result for one module.
type ModuleInventory struct {
	Module   string
	Handlers []Handler
	// Filters holds the unique filter-function offsets referenced by the
	// module's handlers, sorted; the catch-all marker is excluded (it is
	// not a function).
	Filters []uint32
	// CatchAllHandlers counts handlers using the catch-all marker.
	CatchAllHandlers int
}

// Extract parses one module's scope table.
func Extract(mod *bin.Module) ModuleInventory {
	inv := ModuleInventory{Module: mod.Image.Name}
	filterSet := make(map[uint32]bool)
	for i, s := range mod.Image.Scopes {
		h := Handler{Module: mod.Image.Name, Index: i, Entry: s}
		if sym, ok := mod.Image.SymbolAt(s.Func); ok {
			h.FuncName = sym.Name
		}
		inv.Handlers = append(inv.Handlers, h)
		if s.IsCatchAll() {
			inv.CatchAllHandlers++
			continue
		}
		filterSet[s.Filter] = true
	}
	inv.Filters = make([]uint32, 0, len(filterSet))
	for f := range filterSet {
		inv.Filters = append(inv.Filters, f)
	}
	sort.Slice(inv.Filters, func(i, j int) bool { return inv.Filters[i] < inv.Filters[j] })
	return inv
}

// Inventory extracts every loaded module of a process, in load order.
func Inventory(p *vm.Process) []ModuleInventory {
	mods := p.Modules()
	out := make([]ModuleInventory, 0, len(mods))
	for _, m := range mods {
		out = append(out, Extract(m))
	}
	return out
}

// Totals aggregates handler/filter counts across inventories.
type Totals struct {
	Modules  int
	Handlers int
	// Filters counts unique filter functions (catch-all excluded).
	Filters int
}

// Total sums the counts over a set of inventories.
func Total(invs []ModuleInventory) Totals {
	var t Totals
	for _, inv := range invs {
		t.Modules++
		t.Handlers += len(inv.Handlers)
		t.Filters += len(inv.Filters)
	}
	return t
}
