package kernel

import (
	"sort"

	"crashresist/internal/mem"
	"crashresist/internal/vm"
)

// epollFD is an epoll instance.
type epollFD struct {
	interest map[int]epollReg
}

type epollReg struct {
	events uint32
	data   uint64
}

func (e *epollFD) kind() string { return "epoll" }

func (k *Kernel) epolls() []*epollFD {
	var out []*epollFD
	for _, f := range k.fds {
		if e, ok := f.(*epollFD); ok {
			out = append(out, e)
		}
	}
	return out
}

func (k *Kernel) sysEpollCreate(t *vm.Thread, ev Event) {
	fd := k.installFD(&epollFD{interest: make(map[int]epollReg)})
	k.complete(t, ev, uint64(fd))
}

// sysEpollCtl registers interest: args are (epfd, op, fd, eventPtr). The
// event struct is read through an EFAULT-checked pointer.
func (k *Kernel) sysEpollCtl(t *vm.Thread, ev Event) {
	e, ok := k.fds[int(ev.Args[0])].(*epollFD)
	if !ok {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	op, fd := int(ev.Args[1]), int(ev.Args[2])
	switch op {
	case EpollCtlDel:
		delete(e.interest, fd)
		k.complete(t, ev, 0)
		return
	case EpollCtlAdd, EpollCtlMod:
		events, err := k.proc.AS.ReadUint(ev.Args[3], 4)
		if err != nil {
			k.complete(t, ev, errRet(EFAULT))
			return
		}
		data, err := k.proc.AS.ReadUint(ev.Args[3]+8, 8)
		if err != nil {
			k.complete(t, ev, errRet(EFAULT))
			return
		}
		if _, exists := k.fds[fd]; !exists {
			k.complete(t, ev, errRet(EBADF))
			return
		}
		e.interest[fd] = epollReg{events: uint32(events), data: data}
		k.complete(t, ev, 0)
		return
	default:
		k.complete(t, ev, errRet(EINVAL))
	}
}

// sysEpollWait: args are (epfd, eventsPtr, maxevents, timeoutTicks).
// timeout 0 = poll, ^0 = infinite. The events output pointer is validated on
// every attempt; a pointer corrupted to an unmapped address produces an
// immediate -EFAULT without blocking — the tight failing loop the Cherokee
// PoC (§VI-D) turns into a timing side channel.
func (k *Kernel) sysEpollWait(t *vm.Thread, ev Event) {
	e, ok := k.fds[int(ev.Args[0])].(*epollFD)
	if !ok {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	eventsPtr, maxEvents := ev.Args[1], ev.Args[2]
	if maxEvents == 0 {
		k.complete(t, ev, errRet(EINVAL))
		return
	}
	if err := k.proc.AS.Check(eventsPtr, maxEvents*EpollEventSize, mem.AccessWrite); err != nil {
		k.complete(t, ev, errRet(EFAULT))
		return
	}

	ready := k.readyFDs(e, int(maxEvents))
	if len(ready) == 0 {
		timeout := ev.Args[3]
		if timeout == 0 {
			k.complete(t, ev, 0)
			return
		}
		wakeAt := uint64(0) // infinite
		if timeout != ^uint64(0) {
			wakeAt = k.proc.Clock + timeout
		}
		k.retry(t, ev, wakeAt)
		return
	}

	for i, r := range ready {
		base := eventsPtr + uint64(i)*EpollEventSize
		if err := k.proc.AS.WriteUint(base, 4, uint64(r.events)); err != nil {
			k.complete(t, ev, errRet(EFAULT))
			return
		}
		if err := k.proc.AS.WriteUint(base+8, 8, r.data); err != nil {
			k.complete(t, ev, errRet(EFAULT))
			return
		}
	}
	k.complete(t, ev, uint64(len(ready)))
}

type readyEvent struct {
	fd     int
	events uint32
	data   uint64
}

// readyFDs evaluates readiness for every registered descriptor, in
// deterministic fd order.
func (k *Kernel) readyFDs(e *epollFD, max int) []readyEvent {
	fds := make([]int, 0, len(e.interest))
	for fd := range e.interest {
		fds = append(fds, fd)
	}
	sort.Ints(fds)

	var out []readyEvent
	for _, fd := range fds {
		if len(out) >= max {
			break
		}
		reg := e.interest[fd]
		f, ok := k.fds[fd]
		if !ok {
			continue
		}
		var events uint32
		switch obj := f.(type) {
		case *listener:
			if len(obj.backlog) > 0 {
				events |= EpollIn
			}
		case *serverConn:
			if obj.readable() {
				events |= EpollIn
			}
			if obj.closedByClient {
				events |= EpollHup
			}
		}
		events &= reg.events | EpollHup
		if events != 0 {
			out = append(out, readyEvent{fd: fd, events: events, data: reg.data})
		}
	}
	return out
}
