package kernel

import (
	"fmt"

	"crashresist/internal/mem"
	"crashresist/internal/vm"
)

// listener is a bound, listening socket.
type listener struct {
	port    uint64
	backlog []*serverConn
}

func (l *listener) kind() string { return "listener" }

// socketFD is an unbound/unconnected socket.
type socketFD struct {
	bound bool
	port  uint64
}

func (s *socketFD) kind() string { return "socket" }

// serverConn is the server side of a simulated TCP stream; the test monitor
// holds the matching ClientConn.
type serverConn struct {
	id    int
	label uint8 // taint label for bytes received from this client

	in  []byte // client → server, pending
	out []byte // server → client, pending

	closedByClient bool
	closedByServer bool
}

func (c *serverConn) kind() string { return "conn" }

func (c *serverConn) readable() bool { return len(c.in) > 0 || c.closedByClient }

func (k *Kernel) sysSocket(t *vm.Thread, ev Event) {
	fd := k.installFD(&socketFD{})
	k.complete(t, ev, uint64(fd))
}

func (k *Kernel) sysBind(t *vm.Thread, ev Event) {
	s, ok := k.fds[int(ev.Args[0])].(*socketFD)
	if !ok {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	s.bound = true
	s.port = ev.Args[1]
	k.complete(t, ev, 0)
}

func (k *Kernel) sysListen(t *vm.Thread, ev Event) {
	s, ok := k.fds[int(ev.Args[0])].(*socketFD)
	if !ok || !s.bound {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	l := &listener{port: s.port}
	k.fds[int(ev.Args[0])] = l
	k.listeners[s.port] = l
	k.complete(t, ev, 0)
}

// sysAccept accepts a pending connection. A non-zero second argument makes
// the call nonblocking: it returns -EAGAIN when the backlog is empty,
// matching accept on an O_NONBLOCK listener.
func (k *Kernel) sysAccept(t *vm.Thread, ev Event) {
	l, ok := k.fds[int(ev.Args[0])].(*listener)
	if !ok {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	if len(l.backlog) == 0 {
		if ev.Args[1] != 0 {
			k.complete(t, ev, errRet(EAGAIN))
			return
		}
		k.retry(t, ev, 0)
		return
	}
	conn := l.backlog[0]
	l.backlog = l.backlog[1:]
	fd := k.installFD(conn)
	k.complete(t, ev, uint64(fd))
}

// sysConnect models an outbound connection: it validates the sockaddr
// pointer (EFAULT-capable) and always reports connection refused, since the
// simulated network has no outbound peers. The EFAULT path is what matters
// for the discovery pipeline.
func (k *Kernel) sysConnect(t *vm.Thread, ev Event) {
	if _, ok := k.fds[int(ev.Args[0])].(*socketFD); !ok {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	if _, err := k.proc.AS.ReadUint(ev.Args[1], 8); err != nil {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	k.complete(t, ev, errRet(EINVAL))
}

func (k *Kernel) sysRecv(t *vm.Thread, ev Event) {
	conn, ok := k.fds[int(ev.Args[0])].(*serverConn)
	if !ok {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	buf, n := ev.Args[1], ev.Args[2]
	// recvfrom also validates its (optional) source-address out-pointer.
	if ev.Num == SysRecvfrom && ev.Args[3] != 0 {
		if err := k.proc.AS.Check(ev.Args[3], 8, mem.AccessWrite); err != nil {
			k.complete(t, ev, errRet(EFAULT))
			return
		}
	}
	k.streamRead(t, ev, conn, buf, n)
}

func (k *Kernel) sysSend(t *vm.Thread, ev Event) {
	conn, ok := k.fds[int(ev.Args[0])].(*serverConn)
	if !ok {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	k.streamWrite(t, ev, conn, ev.Args[1], ev.Args[2])
}

// sysSendmsg reads a struct msghdr {buf u64, len u64} through the
// EFAULT-checked header pointer, then sends like send().
func (k *Kernel) sysSendmsg(t *vm.Thread, ev Event) {
	conn, ok := k.fds[int(ev.Args[0])].(*serverConn)
	if !ok {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	hdr := ev.Args[1]
	buf, err := k.proc.AS.ReadUint(hdr, 8)
	if err != nil {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	n, err := k.proc.AS.ReadUint(hdr+8, 8)
	if err != nil {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	k.streamWrite(t, ev, conn, buf, n)
}

// streamRead copies pending client bytes into the user buffer, blocking when
// nothing is pending. The user pointer is validated on every attempt — a
// pointer corrupted while the thread was blocked produces EFAULT, not a
// fault.
func (k *Kernel) streamRead(t *vm.Thread, ev Event, conn *serverConn, buf, n uint64) {
	if n == 0 {
		k.complete(t, ev, 0)
		return
	}
	if err := k.proc.AS.Check(buf, 1, mem.AccessWrite); err != nil {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	if len(conn.in) == 0 {
		if conn.closedByClient {
			k.complete(t, ev, 0) // EOF
			return
		}
		// recv honours a MSG_DONTWAIT-style flag in its fourth
		// argument (recvfrom's fourth argument is the source-address
		// out-pointer instead): return -EAGAIN rather than blocking.
		if ev.Num == SysRecv && ev.Args[3] != 0 {
			k.complete(t, ev, errRet(EAGAIN))
			return
		}
		k.retry(t, ev, 0)
		return
	}
	take := int(n)
	if take > len(conn.in) {
		take = len(conn.in)
	}
	// Validate the full destination range; partial writes to user memory
	// never happen (matching copy_to_user all-or-nothing on page faults).
	if err := k.proc.AS.Check(buf, uint64(take), mem.AccessWrite); err != nil {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	data := conn.in[:take]
	conn.in = conn.in[take:]
	if err := k.proc.AS.Write(buf, data); err != nil {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	if k.proc.Flow != nil {
		// Bytes from the network are attacker input: taint them.
		k.proc.Flow.MarkMem(conn.label, buf, take)
	}
	k.complete(t, ev, uint64(take))
}

// streamWrite copies user bytes to the client side.
func (k *Kernel) streamWrite(t *vm.Thread, ev Event, conn *serverConn, buf, n uint64) {
	if conn.closedByServer || conn.closedByClient {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	data, err := k.proc.AS.Read(buf, n)
	if err != nil {
		k.complete(t, ev, errRet(EFAULT))
		return
	}
	conn.out = append(conn.out, data...)
	k.complete(t, ev, n)
}

func (k *Kernel) sysClose(t *vm.Thread, ev Event) {
	fd := int(ev.Args[0])
	f, ok := k.fds[fd]
	if !ok {
		k.complete(t, ev, errRet(EBADF))
		return
	}
	if conn, ok := f.(*serverConn); ok {
		conn.closedByServer = true
	}
	delete(k.fds, fd)
	// Deregister from any epoll sets.
	for _, e := range k.epolls() {
		delete(e.interest, fd)
	}
	k.complete(t, ev, 0)
}

// --- monitor-facing client API ---

// ClientConn is the test monitor's handle on one simulated TCP connection.
type ClientConn struct {
	k *Kernel
	c *serverConn
}

// Connect opens a client connection to a listening port, delivering it to
// the server's accept backlog and waking any kernel sleepers.
func (k *Kernel) Connect(port uint64) (*ClientConn, error) {
	l, ok := k.listeners[port]
	if !ok {
		return nil, fmt.Errorf("connect: no listener on port %d", port)
	}
	k.nextConn++
	conn := &serverConn{
		id:    k.nextConn,
		label: uint8(1 + (k.nextConn-1)%63),
	}
	k.conns = append(k.conns, conn)
	l.backlog = append(l.backlog, conn)
	k.wakeAll()
	return &ClientConn{k: k, c: conn}, nil
}

// Send delivers bytes from the client to the server.
func (cc *ClientConn) Send(data []byte) {
	cc.c.in = append(cc.c.in, data...)
	cc.k.wakeAll()
}

// Recv drains everything the server has written to this connection.
func (cc *ClientConn) Recv() []byte {
	out := cc.c.out
	cc.c.out = nil
	return out
}

// Close closes the client end; server reads observe EOF.
func (cc *ClientConn) Close() {
	cc.c.closedByClient = true
	cc.k.wakeAll()
}

// ClosedByServer reports whether the server closed this connection.
func (cc *ClientConn) ClosedByServer() bool { return cc.c.closedByServer }

// Label returns the taint label the kernel assigns to this connection's
// bytes.
func (cc *ClientConn) Label() uint8 { return cc.c.label }
